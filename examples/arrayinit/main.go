// Arrayinit walks the paper's §3.1 motivating example end to end: the
// expand method's copy loop fills a freshly allocated array in order, and
// the array analysis proves every store initializing by inferring the
// loop invariant  ∀j : i ≤ j < new_ta.length : new_ta[j] = null  through
// stride-matched state merges (Figure 1 of the paper).
package main

import (
	"fmt"
	"log"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const src = `
class T { int v; T(int v0) { v = v0; } }
class Util {
    // The paper's expand(T[] ta) example, §3.1.
    static T[] expand(T[] ta) {
        T[] new_ta = new T[ta.length * 2];
        for (int i = 0; i < ta.length; i = i + 1)
            new_ta[i] = ta[i];
        return new_ta;
    }
    static void main() {
        T[] ta = new T[4];
        for (int i = 0; i < ta.length; i = i + 1) ta[i] = new T(i * i);
        T[] grown = Util.expand(ta);
        print(grown.length);
        print(grown[3].v);
    }
}
`

func main() {
	for _, mode := range []core.Options{
		{Mode: core.ModeField},
		{Mode: core.ModeFieldArray},
		{Mode: core.ModeFieldArray, NoStrideInference: true},
	} {
		build, err := pipeline.Compile("arrayinit", src, pipeline.Options{InlineLimit: 100, Analysis: mode})
		if err != nil {
			log.Fatal(err)
		}
		label := mode.Mode.String()
		if mode.NoStrideInference {
			label += " (stride inference disabled)"
		}
		fmt.Printf("== analysis mode %s ==\n", label)
		m := build.Program.Method(bytecode.MethodRef{Class: "Util", Name: "expand"})
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op == bytecode.OpAAStore {
				verdict := "barrier kept"
				if in.Elide {
					verdict = "barrier ELIDED"
				}
				fmt.Printf("  expand pc %d aastore: %s\n", pc, verdict)
			}
		}
		res, err := build.Run(vm.Config{Barrier: satb.ModeConditional})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Counters.Summarize()
		fmt.Printf("  dynamic: %d array barrier execs, %d elided\n\n", s.ArrayExecs, s.ArrayElided)
	}
}
