// Quickstart: compile a small MiniJava program, run the SATB barrier-
// elision analyses, and see which stores lose their write barriers — then
// execute the program and confirm the dynamic counts agree.
package main

import (
	"fmt"
	"log"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const src = `
class Node {
    int v;
    Node next;
    Node(int v0) { v = v0; }
}
class List {
    static Node shared;
    static void main() {
        Node head = null;
        for (int i = 0; i < 10; i = i + 1) {
            Node n = new Node(i);
            n.next = head;    // pre-null while n is thread-local: elided
            head = n;
        }
        List.shared = head;   // the list escapes here
        head.next = null;     // after escape: barrier kept
        int s = 0;
        Node c = List.shared;
        while (c != null) { s = s + c.v; c = c.next; }
        print(s);
    }
}
`

func main() {
	build, err := pipeline.Compile("quickstart", src, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== annotated bytecode for List.main ==")
	m := build.Program.Method(bytecode.MethodRef{Class: "List", Name: "main"})
	fmt.Print(bytecode.Disassemble(m))

	fmt.Println("\n== static analysis report ==")
	fmt.Print(build.Report.String())

	res, err := build.Run(vm.Config{Barrier: satb.ModeConditional})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== dynamic run ==")
	fmt.Printf("program output: %v\n", res.Output)
	fmt.Println(res.Counters.Summarize().String())
	fmt.Printf("execution engine: %s\n", res.Engine)

	// A second compile of the same source is served from the build cache.
	again, err := pipeline.Compile("quickstart", src, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray},
	})
	if err != nil {
		log.Fatal(err)
	}
	cs := pipeline.Stats()
	fmt.Printf("recompile cache hit: %v (%d hits / %d misses)\n",
		again.CacheHit, cs.Hits, cs.Misses)
}
