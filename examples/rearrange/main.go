// Rearrange demonstrates the paper's §4.3 array-rearrangement protocol on
// db's dominant pattern: a sort whose element swaps account for most
// barrier executions. With the extension enabled, the swap stores stop
// logging pre-values; instead they read the array's tracing state and
// schedule a retrace when the collector's scan overlapped the swap. Both
// configurations run under real concurrent SATB marking with the snapshot
// invariant machine-checked every cycle.
package main

import (
	"fmt"
	"log"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

func run(rearrange bool) {
	w, err := workloads.Get("db")
	if err != nil {
		log.Fatal(err)
	}
	build, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray, Rearrange: rearrange},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := build.Run(vm.Config{
		Barrier:            satb.ModeConditional,
		GC:                 vm.GCSATB,
		TriggerEveryAllocs: 150,
		MarkStepBudget:     4,
		CheckInvariant:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Counters.Summarize()
	label := "without rearrangement"
	if rearrange {
		label = "with rearrangement"
	}
	fmt.Printf("== db %s ==\n", label)
	fmt.Printf("  output %v, %d marking cycles (snapshot invariant verified)\n", res.Output, res.Cycles)
	fmt.Printf("  barriers: %d total; pre-null elided %.1f%%; swap-covered %.1f%%; retraces %d\n",
		s.TotalExecs,
		100*float64(s.ElidedExecs)/float64(s.TotalExecs),
		100*float64(s.RearrangeExecs)/float64(s.TotalExecs),
		s.Retraces)
	fmt.Printf("  barrier cost: %d units; SATB log entries: %d\n\n", res.Counters.Cost, res.Counters.Logged)
	if len(s.UnsoundSites) > 0 {
		fmt.Printf("  !! unsound: %v\n", s.UnsoundSites)
	}
}

func main() {
	run(false)
	run(true)
}
