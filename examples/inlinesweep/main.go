// Inlinesweep reproduces Figure 2's story on one workload: as the inline
// limit grows, constructors and helpers are expanded into their callers,
// the intra-procedural analyses see more pre-null stores, and the
// elimination rate climbs — while analysis time grows with the larger
// method bodies.
package main

import (
	"fmt"
	"log"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

func main() {
	w, err := workloads.Get("jess")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %s\n\n", w.Name, w.Description)
	fmt.Printf("%6s %6s %8s %12s %12s\n", "limit", "mode", "% elim", "analysis", "bytecode")
	for _, limit := range []int{0, 25, 50, 100, 200} {
		for _, mode := range []core.Mode{core.ModeNone, core.ModeField, core.ModeFieldArray} {
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: limit,
				Analysis:    core.Options{Mode: mode},
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := b.Run(vm.Config{Barrier: satb.ModeConditional})
			if err != nil {
				log.Fatal(err)
			}
			s := res.Counters.Summarize()
			elim := 0.0
			if s.TotalExecs > 0 {
				elim = 100 * float64(s.ElidedExecs) / float64(s.TotalExecs)
			}
			fmt.Printf("%6d %6s %8.1f %12v %12d\n",
				limit, mode, elim, b.AnalysisTime.Round(time.Microsecond), b.BytecodeBytes)
		}
	}
}
