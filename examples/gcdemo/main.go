// Gcdemo runs a mutation-heavy program under real concurrent marking in
// three configurations and reports what the barriers did:
//
//  1. SATB marking with full barriers,
//  2. SATB marking with analysis-elided barriers (validating the
//     snapshot invariant every cycle — a wrong elision would trip it),
//  3. incremental-update (card-marking) baseline, showing the much larger
//     final stop-the-world rescan the paper's §1 motivates SATB with.
package main

import (
	"fmt"
	"log"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const src = `
class Node { int v; Node next; Node(int v0) { v = v0; } }
class App {
    static Node keep;
    static void main() {
        int total = 0;
        for (int round = 0; round < 30; round = round + 1) {
            Node head = null;
            for (int i = 0; i < 40; i = i + 1) {
                Node n = new Node(i + round);
                n.next = head;     // initializing: SATB can skip it
                head = n;
            }
            App.keep = head;       // previous round's list becomes garbage
            // Unlink half the kept list: these overwrite non-null
            // pointers and must be logged while marking runs.
            Node c = App.keep;
            while (c != null && c.next != null) {
                c.next = c.next.next;
                c = c.next;
            }
            total = total + App.keep.v;
        }
        print(total);
    }
}
`

func run(name string, analysis core.Options, barrier satb.BarrierMode, kind vm.GCKind) {
	build, err := pipeline.Compile("gcdemo", src, pipeline.Options{InlineLimit: 100, Analysis: analysis})
	if err != nil {
		log.Fatal(err)
	}
	res, err := build.Run(vm.Config{
		Barrier:            barrier,
		GC:                 kind,
		TriggerEveryAllocs: 120,
		MarkStepBudget:     8,
		CheckInvariant:     kind == vm.GCSATB,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := res.Counters.Summarize()
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("  output %v; %d marking cycles; %d objects swept\n", res.Output, res.Cycles, res.Swept)
	fmt.Printf("  barrier execs %d (elided %d), log entries %d, barrier cost %d units\n",
		s.TotalExecs, s.ElidedExecs, res.Counters.Logged, res.Counters.Cost)
	if res.Cycles > 0 {
		fmt.Printf("  mean final-pause work: %.1f scan units\n", float64(res.FinalPauseWork)/float64(res.Cycles))
	}
	if len(s.UnsoundSites) > 0 {
		fmt.Printf("  !! unsound elisions: %v\n", s.UnsoundSites)
	} else if kind == vm.GCSATB {
		fmt.Printf("  SATB snapshot invariant verified on every cycle\n")
	}
	fmt.Println()
}

func main() {
	run("SATB, full barriers", core.Options{Mode: core.ModeNone}, satb.ModeConditional, vm.GCSATB)
	run("SATB, elided barriers", core.Options{Mode: core.ModeFieldArray}, satb.ModeConditional, vm.GCSATB)
	run("incremental update (card marking)", core.Options{Mode: core.ModeNone}, satb.ModeCardMarking, vm.GCIncremental)
}
