// Package satbelim's top-level benchmarks regenerate every table and
// figure of the paper's evaluation:
//
//   - BenchmarkTable1_*  — dynamic barrier elimination per workload
//     (Table 1; custom metrics carry the elimination percentages),
//   - BenchmarkTable2_*  — jbb end-to-end barrier cost by mode (Table 2;
//     relCost metric is throughput relative to no-barrier),
//   - BenchmarkFig2_*    — compile+analysis time by inline limit and
//     analysis mode (Figure 2; the elim%% metric is the other axis),
//   - BenchmarkFig3      — compiled code-size reduction (Figure 3),
//   - BenchmarkAnalysisScaling_* — analysis time vs method size (§4.4),
//   - BenchmarkAblation* — the design-choice ablations from DESIGN.md §5.
//
// Run: go test -bench=. -benchmem .
package satbelim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// buildWorkload compiles one workload, failing the benchmark on error.
func buildWorkload(b *testing.B, name string, inlineLimit int, opts core.Options) *pipeline.Build {
	b.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: inlineLimit, Analysis: opts})
	if err != nil {
		b.Fatal(err)
	}
	return bd
}

func runBuild(b *testing.B, bd *pipeline.Build, cfg vm.Config) *vm.Result {
	b.Helper()
	res, err := bd.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// benchTable1 runs one workload with mode-A analysis and conditional
// barriers, reporting Table 1's row as custom metrics.
func benchTable1(b *testing.B, name string) {
	bd := buildWorkload(b, name, report.DefaultInlineLimit, core.Options{Mode: core.ModeFieldArray})
	var s satb.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBuild(b, bd, vm.Config{Barrier: satb.ModeConditional})
		s = res.Counters.Summarize()
	}
	b.StopTimer()
	if len(s.UnsoundSites) > 0 {
		b.Fatalf("unsound elisions: %v", s.UnsoundSites)
	}
	b.ReportMetric(float64(s.TotalExecs), "barriers/op")
	b.ReportMetric(pct(s.ElidedExecs, s.TotalExecs), "elim%")
	b.ReportMetric(pct(s.PotPreNull, s.TotalExecs), "potPreNull%")
	b.ReportMetric(pct(s.FieldElided, s.FieldExecs), "fieldElim%")
	b.ReportMetric(pct(s.ArrayElided, s.ArrayExecs), "arrayElim%")
}

func BenchmarkTable1_jess(b *testing.B)  { benchTable1(b, "jess") }
func BenchmarkTable1_db(b *testing.B)    { benchTable1(b, "db") }
func BenchmarkTable1_javac(b *testing.B) { benchTable1(b, "javac") }
func BenchmarkTable1_mtrt(b *testing.B)  { benchTable1(b, "mtrt") }
func BenchmarkTable1_jack(b *testing.B)  { benchTable1(b, "jack") }
func BenchmarkTable1_jbb(b *testing.B)   { benchTable1(b, "jbb") }

// benchTable2 measures one of the jbb end-to-end barrier modes; the
// relTP metric is cost-model throughput relative to no-barrier.
func benchTable2(b *testing.B, mode satb.BarrierMode, analysis core.Options) {
	base := buildWorkload(b, "jbb", report.DefaultInlineLimit, core.Options{Mode: core.ModeNone})
	baseRes := runBuild(b, base, vm.Config{Barrier: satb.ModeNoBarrier})
	baseTP := float64(baseRes.Steps) / float64(baseRes.TotalCost())

	bd := buildWorkload(b, "jbb", report.DefaultInlineLimit, analysis)
	var rel float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBuild(b, bd, vm.Config{Barrier: mode})
		rel = (float64(res.Steps) / float64(res.TotalCost())) / baseTP
	}
	b.ReportMetric(rel, "relTP")
}

func BenchmarkTable2_NoBarrier(b *testing.B) {
	benchTable2(b, satb.ModeNoBarrier, core.Options{Mode: core.ModeNone})
}

func BenchmarkTable2_AlwaysLog(b *testing.B) {
	benchTable2(b, satb.ModeAlwaysLog, core.Options{Mode: core.ModeNone})
}

func BenchmarkTable2_AlwaysLogElim(b *testing.B) {
	benchTable2(b, satb.ModeAlwaysLog, core.Options{Mode: core.ModeFieldArray})
}

// benchFig2 times the compile pipeline (the figure's compile-time axis)
// at one (limit, mode) point, aggregated over all six workloads, and
// reports the dynamic elimination as a metric (the effectiveness axis).
func benchFig2(b *testing.B, limit int, mode core.Mode) {
	// The effectiveness axis (dynamic elimination) is measured once,
	// outside the timed loop; the timed loop measures the figure's
	// compile-time axis.
	var elided, total uint64
	for _, w := range workloads.All() {
		bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: limit,
			Analysis:    core.Options{Mode: mode},
		})
		if err != nil {
			b.Fatal(err)
		}
		res := runBuild(b, bd, vm.Config{Barrier: satb.ModeConditional})
		s := res.Counters.Summarize()
		elided += s.ElidedExecs
		total += s.TotalExecs
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.All() {
			if _, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: limit,
				Analysis:    core.Options{Mode: mode},
			}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(pct(elided, total), "elim%")
}

func BenchmarkFig2_Limit0_B(b *testing.B)   { benchFig2(b, 0, core.ModeNone) }
func BenchmarkFig2_Limit0_F(b *testing.B)   { benchFig2(b, 0, core.ModeField) }
func BenchmarkFig2_Limit0_A(b *testing.B)   { benchFig2(b, 0, core.ModeFieldArray) }
func BenchmarkFig2_Limit25_B(b *testing.B)  { benchFig2(b, 25, core.ModeNone) }
func BenchmarkFig2_Limit25_F(b *testing.B)  { benchFig2(b, 25, core.ModeField) }
func BenchmarkFig2_Limit25_A(b *testing.B)  { benchFig2(b, 25, core.ModeFieldArray) }
func BenchmarkFig2_Limit50_B(b *testing.B)  { benchFig2(b, 50, core.ModeNone) }
func BenchmarkFig2_Limit50_F(b *testing.B)  { benchFig2(b, 50, core.ModeField) }
func BenchmarkFig2_Limit50_A(b *testing.B)  { benchFig2(b, 50, core.ModeFieldArray) }
func BenchmarkFig2_Limit100_B(b *testing.B) { benchFig2(b, 100, core.ModeNone) }
func BenchmarkFig2_Limit100_F(b *testing.B) { benchFig2(b, 100, core.ModeField) }
func BenchmarkFig2_Limit100_A(b *testing.B) { benchFig2(b, 100, core.ModeFieldArray) }
func BenchmarkFig2_Limit200_B(b *testing.B) { benchFig2(b, 200, core.ModeNone) }
func BenchmarkFig2_Limit200_F(b *testing.B) { benchFig2(b, 200, core.ModeField) }
func BenchmarkFig2_Limit200_A(b *testing.B) { benchFig2(b, 200, core.ModeFieldArray) }

// BenchmarkFig3 computes the compiled-code-size rows, reporting the mean
// mode-A reduction percentage (paper: 2–6%).
func BenchmarkFig3(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, err := report.Figure3(report.DefaultInlineLimit)
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.ReduceAPct
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "codeCut%")
}

// genMethodSource builds a class whose work method has roughly n
// "statements" (alternating field and array initializing stores inside a
// loop nest), for the §4.4 analysis-time scaling measurement.
func genMethodSource(n int) string {
	var sb strings.Builder
	sb.WriteString("class T { T a; T b; T c; T(int x) { } }\n")
	sb.WriteString("class Gen {\n  static void work(int p) {\n")
	sb.WriteString("    T[] arr = new T[p];\n")
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "    T t%d = new T(%d);\n", i, i)
		case 1:
			fmt.Fprintf(&sb, "    t%d.a = new T(%d);\n", i-1, i)
		case 2:
			fmt.Fprintf(&sb, "    t%d.b = t%d.a;\n", i-2, i-2)
		default:
			fmt.Fprintf(&sb, "    if (p > %d) { t%d.c = t%d.b; }\n", i, i-3, i-3)
		}
	}
	sb.WriteString("    for (int i = 0; i < p; i = i + 1) arr[i] = new T(i);\n")
	sb.WriteString("  }\n  static void main() { Gen.work(3); }\n}\n")
	return sb.String()
}

// benchAnalysisScaling times AnalyzeProgram on generated methods of
// growing size (§4.4's analysis-time-vs-code-size data).
func benchAnalysisScaling(b *testing.B, stmts int) {
	src := genMethodSource(stmts)
	bd, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.AnalyzeProgram(bd.Program, core.Options{Mode: core.ModeFieldArray}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bd.BytecodeBytes), "bytecodeBytes")
}

func BenchmarkAnalysisScaling_50(b *testing.B)  { benchAnalysisScaling(b, 50) }
func BenchmarkAnalysisScaling_100(b *testing.B) { benchAnalysisScaling(b, 100) }
func BenchmarkAnalysisScaling_200(b *testing.B) { benchAnalysisScaling(b, 200) }
func BenchmarkAnalysisScaling_400(b *testing.B) { benchAnalysisScaling(b, 400) }
func BenchmarkAnalysisScaling_800(b *testing.B) { benchAnalysisScaling(b, 800) }

// benchPipelineWorkers times the full pipeline over all six workloads at
// a fixed fan-out width. Comparing the _1/_2/_4/_8 variants gives the
// parallel-speedup curve of the per-method verify+analysis stages; the
// frontend and inliner stay sequential, so this is the end-to-end
// (Amdahl-limited) number rather than the analysis-only one.
func benchPipelineWorkers(b *testing.B, workers int) {
	opts := pipeline.Options{
		InlineLimit: report.DefaultInlineLimit,
		Analysis:    core.Options{Mode: core.ModeFieldArray},
		Workers:     workers,
	}
	var analysis time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis = 0
		for _, w := range workloads.All() {
			bd, err := pipeline.Compile(w.Name, w.Source, opts)
			if err != nil {
				b.Fatal(err)
			}
			analysis += bd.VerifyTime + bd.AnalysisTime
		}
	}
	b.ReportMetric(float64(analysis.Nanoseconds()), "parStageNs/op")
}

func BenchmarkPipelineWorkers_1(b *testing.B) { benchPipelineWorkers(b, 1) }
func BenchmarkPipelineWorkers_2(b *testing.B) { benchPipelineWorkers(b, 2) }
func BenchmarkPipelineWorkers_4(b *testing.B) { benchPipelineWorkers(b, 4) }
func BenchmarkPipelineWorkers_8(b *testing.B) { benchPipelineWorkers(b, 8) }

// benchAblation measures mode-A elimination across all workloads under
// one ablated analysis configuration (DESIGN.md §5).
func benchAblation(b *testing.B, opts core.Options) {
	var elided, total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elided, total = 0, 0
		for _, w := range workloads.All() {
			bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: report.DefaultInlineLimit,
				Analysis:    opts,
			})
			if err != nil {
				b.Fatal(err)
			}
			res := runBuild(b, bd, vm.Config{Barrier: satb.ModeConditional})
			s := res.Counters.Summarize()
			if len(s.UnsoundSites) > 0 {
				b.Fatalf("%s: unsound %v", w.Name, s.UnsoundSites)
			}
			elided += s.ElidedExecs
			total += s.TotalExecs
		}
	}
	b.ReportMetric(pct(elided, total), "elim%")
}

func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, core.Options{Mode: core.ModeFieldArray})
}

func BenchmarkAblationSingleRef(b *testing.B) {
	benchAblation(b, core.Options{Mode: core.ModeFieldArray, SingleRefPerSite: true})
}

func BenchmarkAblationFlowInsensitiveEscape(b *testing.B) {
	benchAblation(b, core.Options{Mode: core.ModeFieldArray, FlowInsensitiveEscape: true})
}

func BenchmarkAblationNoStride(b *testing.B) {
	benchAblation(b, core.Options{Mode: core.ModeFieldArray, NoStrideInference: true})
}

// BenchmarkInterprocedural measures elimination at inline limit 0 with
// escape summaries across all workloads (the §2.4 future-work extension).
func BenchmarkInterprocedural(b *testing.B) {
	benchLimit0 := func(b *testing.B, opts core.Options) {
		var elided, total uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			elided, total = 0, 0
			for _, w := range workloads.All() {
				bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: 0, Analysis: opts})
				if err != nil {
					b.Fatal(err)
				}
				res := runBuild(b, bd, vm.Config{Barrier: satb.ModeConditional})
				s := res.Counters.Summarize()
				elided += s.ElidedExecs
				total += s.TotalExecs
			}
		}
		b.ReportMetric(pct(elided, total), "elim%")
	}
	b.Run("intra", func(b *testing.B) { benchLimit0(b, core.Options{Mode: core.ModeFieldArray}) })
	b.Run("summaries", func(b *testing.B) {
		benchLimit0(b, core.Options{Mode: core.ModeFieldArray, Interprocedural: true})
	})
}

// BenchmarkRearrangeDB measures the §4.3 retrace protocol on db: the
// rearr% metric is the share of barrier executions covered by swap-pair
// elision on top of the pre-null eliminations.
func BenchmarkRearrangeDB(b *testing.B) {
	bd := buildWorkload(b, "db", report.DefaultInlineLimit,
		core.Options{Mode: core.ModeFieldArray, Rearrange: true})
	var s satb.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runBuild(b, bd, vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 200,
			CheckInvariant:     true,
		})
		s = res.Counters.Summarize()
	}
	b.StopTimer()
	if len(s.UnsoundSites) > 0 {
		b.Fatalf("unsound: %v", s.UnsoundSites)
	}
	b.ReportMetric(pct(s.RearrangeExecs, s.TotalExecs), "rearr%")
	b.ReportMetric(float64(s.Retraces), "retraces")
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
