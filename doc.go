// Package satbelim is a complete Go reproduction of "Compile-Time
// Concurrent Marking Write Barrier Removal" (V. Krishna Nandivada and
// David Detlefs, CGO 2005): static analyses that remove snapshot-at-the-
// beginning write barriers for provably initializing stores, together
// with every substrate the paper's evaluation needs — a MiniJava
// compiler, a bytecode VM, SATB and incremental-update collectors, and
// the six benchmark workloads.
//
// The root package carries the benchmark harness (bench_test.go), one
// benchmark per table and figure of the paper's evaluation. The library
// lives under internal/ (see README.md for the architecture map), and
// three command-line tools expose it:
//
//	cmd/satbc      compile + analyze MiniJava, print elision reports
//	cmd/satbvm     run programs under chosen barriers and collectors
//	cmd/satbbench  regenerate the paper's tables and figures
package satbelim
