// Package cfg builds basic-block control-flow graphs over bytecode
// methods. The barrier-elision analyses and the verifier both iterate over
// these blocks in the standard dataflow style (paper §2: "this pass
// analyzes basic blocks with modified start states, propagating changes to
// successor blocks, until a fixed point is reached").
package cfg

import (
	"fmt"

	"satbelim/internal/bytecode"
)

// Block is a maximal straight-line instruction sequence.
type Block struct {
	ID    int
	Start int // first pc (inclusive)
	End   int // last pc + 1 (exclusive)
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of one method.
type Graph struct {
	Method *bytecode.Method
	Blocks []*Block
	// blockOf maps each pc to its containing block id.
	blockOf []int
	// rpo and rpoIndex cache ReversePostorder and its inverse.
	rpo      []int
	rpoIndex []int
}

// Build constructs the CFG for a method.
func Build(m *bytecode.Method) (*Graph, error) {
	n := len(m.Code)
	if n == 0 {
		return nil, fmt.Errorf("%s: empty method body", m.QualifiedName())
	}

	leader := make([]bool, n)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		in := &m.Code[pc]
		if in.IsBranch() {
			t := int(in.A)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("%s: pc %d: branch target %d out of range", m.QualifiedName(), pc, t)
			}
			leader[t] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		} else if in.IsTerminator() && pc+1 < n {
			leader[pc+1] = true
		}
	}

	g := &Graph{Method: m, blockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, &Block{ID: len(g.Blocks), Start: pc})
		}
		g.blockOf[pc] = len(g.Blocks) - 1
	}
	for i, b := range g.Blocks {
		if i+1 < len(g.Blocks) {
			b.End = g.Blocks[i+1].Start
		} else {
			b.End = n
		}
	}

	for _, b := range g.Blocks {
		last := &m.Code[b.End-1]
		addSucc := func(pc int) {
			sid := g.blockOf[pc]
			b.Succs = append(b.Succs, sid)
			g.Blocks[sid].Preds = append(g.Blocks[sid].Preds, b.ID)
		}
		if last.IsBranch() {
			addSucc(int(last.A))
			if last.Op != bytecode.OpGoto && b.End < n {
				addSucc(b.End)
			}
		} else if !last.IsTerminator() {
			if b.End >= n {
				return nil, fmt.Errorf("%s: control falls off the end of the method", m.QualifiedName())
			}
			addSucc(b.End)
		}
	}
	return g, nil
}

// BlockOf returns the id of the block containing pc.
func (g *Graph) BlockOf(pc int) int { return g.blockOf[pc] }

// ReversePostorder returns block ids in reverse postorder from the entry,
// the classic iteration order for forward dataflow problems. Unreachable
// blocks are appended at the end in id order so that analyses still visit
// them (conservatively). The order is computed once and cached; callers
// must not modify the returned slice.
func (g *Graph) ReversePostorder() []int {
	if g.rpo != nil {
		return g.rpo
	}
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, id)
	}
	dfs(0)
	order := make([]int, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		order = append(order, post[i])
	}
	for id := range g.Blocks {
		if !seen[id] {
			order = append(order, id)
		}
	}
	g.rpo = order
	return order
}

// RPOIndex returns the position of each block in ReversePostorder:
// RPOIndex()[id] is block id's priority for worklist scheduling (lower
// runs earlier, so predecessors tend to stabilize before successors).
// Callers must not modify the returned slice.
func (g *Graph) RPOIndex() []int {
	if g.rpoIndex != nil {
		return g.rpoIndex
	}
	order := g.ReversePostorder()
	idx := make([]int, len(g.Blocks))
	for i, id := range order {
		idx[id] = i
	}
	g.rpoIndex = idx
	return idx
}

// Reachable reports which blocks are reachable from the entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[id].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// String renders the graph for debugging.
func (g *Graph) String() string {
	s := ""
	for _, b := range g.Blocks {
		s += fmt.Sprintf("B%d [%d,%d) -> %v\n", b.ID, b.Start, b.End, b.Succs)
	}
	return s
}
