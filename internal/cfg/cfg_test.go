package cfg

import (
	"testing"

	"satbelim/internal/bytecode"
)

// loopMethod builds:
//
//	0: const 0        B0
//	1: store 0
//	2: load 0         B1 (loop head)
//	3: const 10
//	4: cmplt
//	5: iffalse -> 10
//	6: load 0         B2 (body)
//	7: const 1
//	8: add
//	9: goto -> 2  ... wait, 9 stores? keep simple: add then goto (value dropped is fine for CFG)
//	10: return        B3
func loopMethod() *bytecode.Method {
	b := bytecode.NewBuilder("T", "m", true)
	s := b.DeclareSlot(bytecode.Int)
	b.Const(0)
	b.Store(s)
	b.Label("head")
	b.Load(s)
	b.Const(10)
	b.Op(bytecode.OpCmpLT)
	b.IfFalse("end")
	b.Load(s)
	b.Const(1)
	b.Op(bytecode.OpAdd)
	b.Store(s)
	b.Goto("head")
	b.Label("end")
	b.Return()
	return b.Build()
}

func TestBuildLoopCFG(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4:\n%s", len(g.Blocks), g)
	}
	// B0 -> B1; B1 -> B3 (branch) and B2 (fallthrough); B2 -> B1; B3 end.
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != 1 {
		t.Errorf("B0 succs = %v", g.Blocks[0].Succs)
	}
	if len(g.Blocks[1].Succs) != 2 {
		t.Errorf("B1 succs = %v", g.Blocks[1].Succs)
	}
	if len(g.Blocks[2].Succs) != 1 || g.Blocks[2].Succs[0] != 1 {
		t.Errorf("B2 succs = %v", g.Blocks[2].Succs)
	}
	if len(g.Blocks[3].Succs) != 0 {
		t.Errorf("B3 succs = %v", g.Blocks[3].Succs)
	}
	if len(g.Blocks[1].Preds) != 2 {
		t.Errorf("B1 preds = %v", g.Blocks[1].Preds)
	}
}

func TestBlockOf(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockOf(0) != 0 || g.BlockOf(2) != 1 || g.BlockOf(6) != 2 {
		t.Errorf("BlockOf: %d %d %d", g.BlockOf(0), g.BlockOf(2), g.BlockOf(6))
	}
}

func TestReversePostorderVisitsAll(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	order := g.ReversePostorder()
	if len(order) != len(g.Blocks) {
		t.Fatalf("order length %d", len(order))
	}
	if order[0] != 0 {
		t.Error("entry block should be first")
	}
	seen := map[int]bool{}
	for _, id := range order {
		seen[id] = true
	}
	for id := range g.Blocks {
		if !seen[id] {
			t.Errorf("block %d missing from RPO", id)
		}
	}
}

func TestUnreachableBlockStillListed(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Return()
	// Dead code after return.
	b.Const(1)
	b.Op(bytecode.OpPop)
	b.Return()
	g, err := Build(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	reach := g.Reachable()
	if !reach[0] || reach[1] {
		t.Errorf("reachable = %v", reach)
	}
	order := g.ReversePostorder()
	if len(order) != 2 {
		t.Errorf("RPO should include unreachable blocks: %v", order)
	}
}

func TestEmptyMethodRejected(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m"}
	if _, err := Build(m); err == nil {
		t.Fatal("expected error for empty method")
	}
}

func TestFallOffEndRejected(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Const(1)
	b.Op(bytecode.OpPop)
	if _, err := Build(b.Build()); err == nil {
		t.Fatal("expected error when control falls off the method end")
	}
}

func TestBranchTargetOutOfRange(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m", Code: []bytecode.Instr{
		{Op: bytecode.OpGoto, A: 5},
	}}
	if _, err := Build(m); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestSingleBlock(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Const(1)
	b.Op(bytecode.OpPrint)
	b.Return()
	g, err := Build(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || g.Blocks[0].Start != 0 || g.Blocks[0].End != 3 {
		t.Errorf("single block shape: %s", g)
	}
}
