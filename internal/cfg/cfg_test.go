package cfg

import (
	"testing"

	"satbelim/internal/bytecode"
)

// loopMethod builds:
//
//	0: const 0        B0
//	1: store 0
//	2: load 0         B1 (loop head)
//	3: const 10
//	4: cmplt
//	5: iffalse -> 10
//	6: load 0         B2 (body)
//	7: const 1
//	8: add
//	9: goto -> 2  ... wait, 9 stores? keep simple: add then goto (value dropped is fine for CFG)
//	10: return        B3
func loopMethod() *bytecode.Method {
	b := bytecode.NewBuilder("T", "m", true)
	s := b.DeclareSlot(bytecode.Int)
	b.Const(0)
	b.Store(s)
	b.Label("head")
	b.Load(s)
	b.Const(10)
	b.Op(bytecode.OpCmpLT)
	b.IfFalse("end")
	b.Load(s)
	b.Const(1)
	b.Op(bytecode.OpAdd)
	b.Store(s)
	b.Goto("head")
	b.Label("end")
	b.Return()
	return b.Build()
}

func TestBuildLoopCFG(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4:\n%s", len(g.Blocks), g)
	}
	// B0 -> B1; B1 -> B3 (branch) and B2 (fallthrough); B2 -> B1; B3 end.
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != 1 {
		t.Errorf("B0 succs = %v", g.Blocks[0].Succs)
	}
	if len(g.Blocks[1].Succs) != 2 {
		t.Errorf("B1 succs = %v", g.Blocks[1].Succs)
	}
	if len(g.Blocks[2].Succs) != 1 || g.Blocks[2].Succs[0] != 1 {
		t.Errorf("B2 succs = %v", g.Blocks[2].Succs)
	}
	if len(g.Blocks[3].Succs) != 0 {
		t.Errorf("B3 succs = %v", g.Blocks[3].Succs)
	}
	if len(g.Blocks[1].Preds) != 2 {
		t.Errorf("B1 preds = %v", g.Blocks[1].Preds)
	}
}

func TestBlockOf(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	if g.BlockOf(0) != 0 || g.BlockOf(2) != 1 || g.BlockOf(6) != 2 {
		t.Errorf("BlockOf: %d %d %d", g.BlockOf(0), g.BlockOf(2), g.BlockOf(6))
	}
}

func TestReversePostorderVisitsAll(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	order := g.ReversePostorder()
	if len(order) != len(g.Blocks) {
		t.Fatalf("order length %d", len(order))
	}
	if order[0] != 0 {
		t.Error("entry block should be first")
	}
	seen := map[int]bool{}
	for _, id := range order {
		seen[id] = true
	}
	for id := range g.Blocks {
		if !seen[id] {
			t.Errorf("block %d missing from RPO", id)
		}
	}
}

func TestUnreachableBlockStillListed(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Return()
	// Dead code after return.
	b.Const(1)
	b.Op(bytecode.OpPop)
	b.Return()
	g, err := Build(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(g.Blocks))
	}
	reach := g.Reachable()
	if !reach[0] || reach[1] {
		t.Errorf("reachable = %v", reach)
	}
	order := g.ReversePostorder()
	if len(order) != 2 {
		t.Errorf("RPO should include unreachable blocks: %v", order)
	}
}

func TestRPOIndexIsInverseOfOrder(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	order := g.ReversePostorder()
	idx := g.RPOIndex()
	if len(idx) != len(g.Blocks) {
		t.Fatalf("RPOIndex length %d, want %d", len(idx), len(g.Blocks))
	}
	for i, id := range order {
		if idx[id] != i {
			t.Errorf("RPOIndex[%d] = %d, want %d", id, idx[id], i)
		}
	}
}

func TestRPOLoopOrdersHeadBeforeBody(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	idx := g.RPOIndex()
	// B0 (entry) < B1 (head) < B2 (body); the exit B3 comes after the
	// head. This is the property the priority worklist relies on: a
	// block's forward predecessors have smaller indices.
	if !(idx[0] < idx[1] && idx[1] < idx[2]) {
		t.Errorf("loop RPO order wrong: idx=%v", idx)
	}
	if idx[3] < idx[1] {
		t.Errorf("exit scheduled before loop head: idx=%v", idx)
	}
}

// TestRPOIrreducibleLoop builds a two-entry (irreducible) loop: the entry
// branches into both halves of a cycle L <-> R. Every block must appear
// exactly once and the entry must come first.
//
//	0: iftrue -> 3    B0 [0,1): succs B2(pc3), B1(pc1)
//	1: nop            B1 [1,3): L
//	2: goto -> 3      ... -> B2
//	3: nop            B2 [3,5): R
//	4: goto -> 1      ... -> B1
func TestRPOIrreducibleLoop(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m", Code: []bytecode.Instr{
		{Op: bytecode.OpIfTrue, A: 3},
		{Op: bytecode.OpNop},
		{Op: bytecode.OpGoto, A: 3},
		{Op: bytecode.OpNop},
		{Op: bytecode.OpGoto, A: 1},
	}}
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3:\n%s", len(g.Blocks), g)
	}
	order := g.ReversePostorder()
	if len(order) != 3 || order[0] != 0 {
		t.Fatalf("RPO = %v", order)
	}
	seen := map[int]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("block %d repeated in RPO %v", id, order)
		}
		seen[id] = true
	}
	idx := g.RPOIndex()
	for _, id := range order {
		if idx[order[idx[id]]] != idx[id] {
			t.Errorf("RPOIndex inconsistent at block %d", id)
		}
	}
}

// TestRPOUnreachableAppendedInIDOrder checks that blocks unreachable from
// the entry are scheduled after every reachable block, in id order.
//
//	0: goto -> 5      B0: entry, jumps over the dead middle
//	1: nop            B1: dead
//	2: goto -> 1      ... dead self-loop
//	3: nop            B2: dead (falls into B3? no - pc3 leader via target)
//	4: return         ...
//	5: return         B3: reachable exit
func TestRPOUnreachableAppendedInIDOrder(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m", Code: []bytecode.Instr{
		{Op: bytecode.OpGoto, A: 5},
		{Op: bytecode.OpNop},
		{Op: bytecode.OpGoto, A: 1},
		{Op: bytecode.OpNop},
		{Op: bytecode.OpReturn},
		{Op: bytecode.OpReturn},
	}}
	g, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	reach := g.Reachable()
	order := g.ReversePostorder()
	if len(order) != len(g.Blocks) {
		t.Fatalf("RPO misses blocks: %v of %d", order, len(g.Blocks))
	}
	// All reachable blocks first, then unreachable ones in ascending id.
	firstDead := -1
	for i, id := range order {
		if !reach[id] && firstDead == -1 {
			firstDead = i
		}
		if reach[id] && firstDead != -1 {
			t.Fatalf("reachable block %d after unreachable in %v", id, order)
		}
	}
	if firstDead == -1 {
		t.Fatal("expected unreachable blocks in this CFG")
	}
	for i := firstDead; i+1 < len(order); i++ {
		if order[i] > order[i+1] {
			t.Errorf("unreachable tail not in id order: %v", order)
		}
	}
}

func TestRPOCached(t *testing.T) {
	g, err := Build(loopMethod())
	if err != nil {
		t.Fatal(err)
	}
	o1, o2 := g.ReversePostorder(), g.ReversePostorder()
	if &o1[0] != &o2[0] {
		t.Error("ReversePostorder should return the cached order")
	}
	i1, i2 := g.RPOIndex(), g.RPOIndex()
	if &i1[0] != &i2[0] {
		t.Error("RPOIndex should return the cached index")
	}
}

func TestEmptyMethodRejected(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m"}
	if _, err := Build(m); err == nil {
		t.Fatal("expected error for empty method")
	}
}

func TestFallOffEndRejected(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Const(1)
	b.Op(bytecode.OpPop)
	if _, err := Build(b.Build()); err == nil {
		t.Fatal("expected error when control falls off the method end")
	}
}

func TestBranchTargetOutOfRange(t *testing.T) {
	m := &bytecode.Method{Class: "T", Name: "m", Code: []bytecode.Instr{
		{Op: bytecode.OpGoto, A: 5},
	}}
	if _, err := Build(m); err == nil {
		t.Fatal("expected error for out-of-range target")
	}
}

func TestSingleBlock(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", true)
	b.Const(1)
	b.Op(bytecode.OpPrint)
	b.Return()
	g, err := Build(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 || g.Blocks[0].Start != 0 || g.Blocks[0].End != 3 {
		t.Errorf("single block shape: %s", g)
	}
}
