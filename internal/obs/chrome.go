package obs

import (
	"encoding/json"
	"sort"
)

// This file exports a collector as Chrome trace-event JSON (the
// "JSON Array Format with metadata" flavor), loadable in Perfetto and
// chrome://tracing. Each obs lane becomes one thread row: lane "main" is
// tid 0, remaining lanes are assigned tids in sorted order so the export
// is deterministic for a deterministic recording.

// chromePID is the single process id used in exports.
const chromePID = 1

// chromeEvent is one trace-event record. Complete events ('X') carry
// ts/dur in fractional microseconds, per the trace-event spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata record (process/thread names, sort order).
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromeDoc is the top-level export document.
type chromeDoc struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// laneTIDs assigns each lane a stable thread id: "main" is 0, the rest
// follow in lexicographic order.
func laneTIDs(events []Event) map[string]int {
	set := map[string]bool{}
	for _, ev := range events {
		set[ev.Lane] = true
	}
	lanes := make([]string, 0, len(set))
	for l := range set {
		if l != "main" {
			lanes = append(lanes, l)
		}
	}
	sort.Strings(lanes)
	tids := map[string]int{"main": 0}
	for i, l := range lanes {
		tids[l] = i + 1
	}
	return tids
}

// ChromeTrace renders the recorded events as Chrome trace-event JSON.
func (c *Collector) ChromeTrace() ([]byte, error) {
	events := c.Events()
	tids := laneTIDs(events)

	var raws []json.RawMessage
	appendRaw := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		raws = append(raws, data)
		return nil
	}

	if err := appendRaw(chromeMeta{Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "satbelim"}}); err != nil {
		return nil, err
	}
	laneNames := make([]string, 0, len(tids))
	for l := range tids {
		laneNames = append(laneNames, l)
	}
	sort.Slice(laneNames, func(i, j int) bool { return tids[laneNames[i]] < tids[laneNames[j]] })
	for _, l := range laneNames {
		if err := appendRaw(chromeMeta{Name: "thread_name", Ph: "M", PID: chromePID, TID: tids[l],
			Args: map[string]any{"name": l}}); err != nil {
			return nil, err
		}
		if err := appendRaw(chromeMeta{Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: tids[l],
			Args: map[string]any{"sort_index": tids[l]}}); err != nil {
			return nil, err
		}
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Cat,
			Ph:   string(ev.Phase),
			TS:   float64(ev.Start.Nanoseconds()) / 1e3,
			Dur:  float64(ev.Dur.Nanoseconds()) / 1e3,
			PID:  chromePID,
			TID:  tids[ev.Lane],
		}
		if ev.Phase == 'i' {
			ce.S = "t"
		}
		if len(ev.Args) > 0 {
			ce.Args = make(map[string]any, len(ev.Args))
			for _, kv := range ev.Args {
				if kv.S != "" {
					ce.Args[kv.K] = kv.S
				} else {
					ce.Args[kv.K] = kv.V
				}
			}
		}
		if err := appendRaw(ce); err != nil {
			return nil, err
		}
	}

	return json.MarshalIndent(chromeDoc{TraceEvents: raws, DisplayTimeUnit: "ms"}, "", " ")
}
