// Package obs is the process-wide observability layer: a tracer and
// metrics registry every other layer hooks into — pipeline stage spans,
// per-method analysis spans, VM execution counters, GC cycle spans, and
// build-cache events. It exists so the evaluation (and every future perf
// PR) measures the same pipeline through one surface instead of three
// drifting ad-hoc ones.
//
// The cardinal rule is zero overhead when disabled: every hook first
// loads a single atomic pointer; when no collector is installed the hook
// returns immediately without allocating, locking, or reading the clock.
// TestTracerDisabledZeroAlloc and BenchmarkTracerDisabled pin that
// contract, and the pipeline differential test proves that enabling
// tracing leaves program results bit-identical.
//
// Recording never alters semantics: hooks only observe. Spans carry a
// lane name (rendered as a Chrome-trace thread), a category, and optional
// key/value args recorded at End.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// active is the installed collector; nil means tracing is disabled. A
// single atomic pointer load is the entire disabled-path cost of every
// hook.
var active atomic.Pointer[Collector]

// Enabled reports whether a collector is installed.
func Enabled() bool { return active.Load() != nil }

// Enable installs a fresh collector and returns it. Any previously
// installed collector is replaced (it keeps its recorded data).
func Enable() *Collector {
	c := NewCollector()
	active.Store(c)
	return c
}

// EnableCollector installs a caller-built collector (tests use this to
// inject a deterministic clock).
func EnableCollector(c *Collector) { active.Store(c) }

// Disable uninstalls the current collector and returns it (nil when
// tracing was not enabled). The returned collector's recorded events and
// counters remain readable/exportable.
func Disable() *Collector {
	return active.Swap(nil)
}

// Active returns the installed collector, or nil when disabled.
func Active() *Collector { return active.Load() }

// KV is one span argument. V carries numeric values; S, when non-empty,
// carries a string value instead.
type KV struct {
	K string
	V int64
	S string
}

// Event is one recorded trace event.
type Event struct {
	// Lane is the logical thread the event renders under ("main",
	// "analysis/w3", "vm", "vm/gc", "vm/thread1", ...).
	Lane string
	Cat  string
	Name string
	// Phase: 'X' = complete span, 'i' = instant.
	Phase byte
	// Start is the offset from the collector's epoch; Dur is the span
	// duration (0 for instants).
	Start time.Duration
	Dur   time.Duration
	Args  []KV
}

// Collector accumulates trace events and named counters for one
// observation session. All methods are safe for concurrent use.
type Collector struct {
	mu       sync.Mutex
	now      func() time.Time
	t0       time.Time
	events   []Event
	counters map[string]int64
}

// NewCollector returns an empty collector using the real clock.
func NewCollector() *Collector { return NewCollectorAt(time.Now) }

// NewCollectorAt returns an empty collector reading timestamps from now
// (injectable for deterministic exporter tests).
func NewCollectorAt(now func() time.Time) *Collector {
	return &Collector{now: now, t0: now(), counters: map[string]int64{}}
}

// since returns the current offset from the collector epoch.
func (c *Collector) since() time.Duration { return c.now().Sub(c.t0) }

// count adds delta to a named counter.
func (c *Collector) count(name string, delta int64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// add records a finished event.
func (c *Collector) add(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a snapshot of the recorded events in recording order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Counters returns a snapshot of the counter registry.
func (c *Collector) Counters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Span is an in-flight trace span. The zero Span (returned by every hook
// while tracing is disabled) is inert: End and EndArgs on it do nothing.
type Span struct {
	c     *Collector
	lane  string
	cat   string
	name  string
	start time.Duration
}

// StartSpan opens a span on a lane. Disabled path: one atomic load, no
// clock read, no allocation.
func StartSpan(lane, cat, name string) Span {
	c := active.Load()
	if c == nil {
		return Span{}
	}
	return Span{c: c, lane: lane, cat: cat, name: name, start: c.since()}
}

// End closes the span.
func (s Span) End() { s.EndArgs() }

// EndArgs closes the span, attaching args. The variadic slice is copied,
// never retained, so call sites do not force their args to the heap.
func (s Span) EndArgs(args ...KV) {
	if s.c == nil {
		return
	}
	ev := Event{Lane: s.lane, Cat: s.cat, Name: s.name, Phase: 'X',
		Start: s.start, Dur: s.c.since() - s.start}
	if len(args) > 0 {
		ev.Args = append(make([]KV, 0, len(args)), args...)
	}
	s.c.add(ev)
}

// Recording reports whether the span will record on End (i.e. tracing
// was enabled when it started).
func (s Span) Recording() bool { return s.c != nil }

// Instant records a zero-duration event on a lane.
func Instant(lane, cat, name string) {
	c := active.Load()
	if c == nil {
		return
	}
	c.add(Event{Lane: lane, Cat: cat, Name: name, Phase: 'i', Start: c.since()})
}

// Count adds delta to a named counter. Disabled path: one atomic load.
func Count(name string, delta int64) {
	c := active.Load()
	if c == nil {
		return
	}
	c.count(name, delta)
}
