package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fakeClock advances 1ms per reading, so every recorded timestamp and
// duration is deterministic.
func fakeClock() func() time.Time {
	t := time.Unix(1000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

// record builds the fixed scenario both exporter goldens pin.
func record(t *testing.T) *Collector {
	t.Helper()
	c := NewCollectorAt(fakeClock())
	EnableCollector(c)
	defer Disable()

	sp := StartSpan("main", "pipeline", "parse")
	sp.End()
	sp = StartSpan("main", "pipeline", "analyze")
	Instant("main", "cache", "cache-miss")
	msp := StartSpan("analysis/w0", "analysis", "A.main")
	msp.EndArgs(KV{K: "visits", V: 7}, KV{K: "degraded", S: "none"})
	msp = StartSpan("analysis/w1", "analysis", "Node.sum")
	msp.EndArgs(KV{K: "visits", V: 3})
	sp.End()
	run := StartSpan("vm", "vm", "run")
	g := StartSpan("vm/gc", "gc", "mark-cycle")
	g.EndArgs(KV{K: "marked", V: 42})
	run.EndArgs(KV{K: "engine", S: "fused"})
	Count("vm.steps", 1234)
	Count("vm.steps", 766)
	Count("pipeline.cache.misses", 1)
	return c
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s mismatch:\n got: %s\nwant: %s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	c := record(t)
	data, err := c.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.golden.json", data)
}

func TestMetricsGolden(t *testing.T) {
	c := record(t)
	data, err := json.MarshalIndent(c.Metrics(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.json", data)
}

// TestChromeTraceSchema validates the export against the trace-event
// format contract Perfetto relies on: a traceEvents array whose entries
// all carry name/ph/pid/tid, with ph one of the phases we emit, complete
// events carrying ts+dur, and every referenced tid named by a
// thread_name metadata record.
func TestChromeTraceSchema(t *testing.T) {
	c := record(t)
	data, err := c.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	named := map[float64]bool{} // tids with a thread_name record
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "thread_name" {
			named[ev["tid"].(float64)] = true
		}
	}
	for i, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event %d missing %q: %v", i, k, ev)
			}
		}
		ph := ev["ph"].(string)
		switch ph {
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Errorf("event %d: complete event without ts", i)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("event %d: complete event without dur", i)
			}
		case "i", "M":
		default:
			t.Errorf("event %d: unexpected phase %q", i, ph)
		}
		if ph != "M" && !named[ev["tid"].(float64)] {
			t.Errorf("event %d: tid %v has no thread_name metadata", i, ev["tid"])
		}
	}
}

// disabledHooks exercises every hook shape the hot paths use; the
// zero-alloc test and benchmark both run it with tracing disabled.
func disabledHooks() {
	sp := StartSpan("main", "pipeline", "analyze")
	sp.End()
	sp = StartSpan("analysis/w0", "analysis", "method")
	sp.EndArgs(KV{K: "visits", V: 7}, KV{K: "degraded", S: "none"})
	Count("vm.steps", 1)
	Instant("main", "cache", "cache-hit")
	_ = Enabled()
}

func TestTracerDisabledZeroAlloc(t *testing.T) {
	if Enabled() {
		t.Fatal("tracer unexpectedly enabled")
	}
	if n := testing.AllocsPerRun(1000, disabledHooks); n != 0 {
		t.Errorf("disabled hooks allocate %v allocs/op, want 0", n)
	}
}

// BenchmarkTracerDisabled is the disabled-hot-path benchmark the CI
// alloc gate parses: it must report 0 allocs/op.
func BenchmarkTracerDisabled(b *testing.B) {
	if Enabled() {
		b.Fatal("tracer unexpectedly enabled")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledHooks()
	}
}

func TestEnableDisable(t *testing.T) {
	c := Enable()
	if !Enabled() || Active() != c {
		t.Fatal("Enable did not install collector")
	}
	Count("x", 2)
	Count("x", 3)
	if got := Disable(); got != c {
		t.Fatal("Disable returned wrong collector")
	}
	if Enabled() {
		t.Fatal("still enabled after Disable")
	}
	Count("x", 100) // must be dropped
	if c.Counters()["x"] != 5 {
		t.Errorf("counter x = %d, want 5", c.Counters()["x"])
	}
}
