package obs

import "sort"

// Metrics is the flat machine-readable rollup of one observation session:
// every named counter plus per-span aggregates. The three CLIs embed it
// in the versioned report.Document (-metrics FILE); the human-readable
// rendering lives in internal/report.
type Metrics struct {
	Counters map[string]int64 `json:"counters"`
	Spans    []SpanStat       `json:"spans"`
}

// SpanStat aggregates all spans sharing a category and name.
type SpanStat struct {
	Cat     string `json:"cat"`
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MaxNS   int64  `json:"max_ns"`
}

// Metrics rolls the recorded events and counters up into a Metrics
// document. Span aggregates are keyed by (cat, name) and sorted, so the
// document is deterministic for a deterministic recording.
func (c *Collector) Metrics() Metrics {
	type key struct{ cat, name string }
	agg := map[key]*SpanStat{}
	for _, ev := range c.Events() {
		if ev.Phase != 'X' {
			continue
		}
		k := key{ev.Cat, ev.Name}
		s := agg[k]
		if s == nil {
			s = &SpanStat{Cat: ev.Cat, Name: ev.Name}
			agg[k] = s
		}
		s.Count++
		s.TotalNS += ev.Dur.Nanoseconds()
		if d := ev.Dur.Nanoseconds(); d > s.MaxNS {
			s.MaxNS = d
		}
	}
	spans := make([]SpanStat, 0, len(agg))
	for _, s := range agg {
		spans = append(spans, *s)
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Cat != spans[j].Cat {
			return spans[i].Cat < spans[j].Cat
		}
		return spans[i].Name < spans[j].Name
	})
	return Metrics{Counters: c.Counters(), Spans: spans}
}
