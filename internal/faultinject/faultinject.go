// Package faultinject provides seeded, off-by-default fault-injection
// hooks for the chaos testing of long-running services (cmd/satbd). An
// Injector owns a deterministic PRNG and fires four fault families at
// configured probabilities: slow stages (added latency on a pipeline
// stage), cache-shard failures (a build-cache shard pretends the entry
// is gone), worker stalls (a request-lane worker sleeps mid-request),
// and spurious panics (a request handler panics at a hook point).
//
// Everything is opt-in: the zero Config fires nothing, and every method
// is safe on a nil *Injector (one nil check, no locking), so production
// paths carry the hooks at zero cost. Fault decisions are drawn from one
// seeded source, so a single-threaded fault sequence is reproducible;
// under concurrency the interleaving of draws is scheduling-dependent,
// but the chaos suites assert invariants (availability, schema validity),
// never exact fault placement.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config sets the per-family fault probabilities (0 disables a family)
// and the latency each latency-family injects when it fires.
type Config struct {
	// Seed seeds the injector's PRNG (same seed, same single-threaded
	// fault sequence).
	Seed int64
	// SlowStage is the probability that a SlowStage hook sleeps for
	// SlowStageDelay.
	SlowStage      float64
	SlowStageDelay time.Duration
	// CacheFail is the probability that a build-cache shard operation
	// fails (a get misses, a put is dropped).
	CacheFail float64
	// Panic is the probability that a MaybePanic hook panics.
	Panic float64
	// Stall is the probability that a Stall hook sleeps for StallDelay.
	Stall      float64
	StallDelay time.Duration
}

// Enabled reports whether any fault family has a nonzero probability.
func (c Config) Enabled() bool {
	return c.SlowStage > 0 || c.CacheFail > 0 || c.Panic > 0 || c.Stall > 0
}

// ParseSpec parses a fault specification of the form
//
//	slow=0.1:5ms,cachefail=0.2,panic=0.05,stall=0.1:10ms,seed=42
//
// Families not mentioned stay off. The :duration suffix (slow and stall
// only) sets the injected latency; it defaults to 1ms.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{SlowStageDelay: time.Millisecond, StallDelay: time.Millisecond}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad spec element %q (want key=value)", part)
		}
		prob, dur, err := parseValue(v)
		if err != nil {
			return cfg, fmt.Errorf("faultinject: %s: %w", k, err)
		}
		if k != "seed" && (prob < 0 || prob > 1) {
			return cfg, fmt.Errorf("faultinject: %s: probability %v out of [0,1]", k, prob)
		}
		switch k {
		case "slow":
			cfg.SlowStage = prob
			if dur > 0 {
				cfg.SlowStageDelay = dur
			}
		case "cachefail":
			cfg.CacheFail = prob
		case "panic":
			cfg.Panic = prob
		case "stall":
			cfg.Stall = prob
			if dur > 0 {
				cfg.StallDelay = dur
			}
		case "seed":
			cfg.Seed = int64(prob)
		default:
			return cfg, fmt.Errorf("faultinject: unknown fault family %q", k)
		}
	}
	return cfg, nil
}

// parseValue splits "0.1:5ms" into probability and optional duration.
func parseValue(v string) (float64, time.Duration, error) {
	ps, ds, hasDur := strings.Cut(v, ":")
	prob, err := strconv.ParseFloat(ps, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad value %q", ps)
	}
	if !hasDur {
		return prob, 0, nil
	}
	dur, err := time.ParseDuration(ds)
	if err != nil {
		return 0, 0, fmt.Errorf("bad duration %q", ds)
	}
	return prob, dur, nil
}

// Injector fires faults per Config. All methods are safe for concurrent
// use and safe on a nil receiver (no fault ever fires).
type Injector struct {
	cfg   Config
	mu    sync.Mutex
	rng   *rand.Rand
	fired map[string]int64
	sleep func(time.Duration) // injectable for tests
}

// New builds an Injector. A nil return for a zero config keeps call
// sites on the nil fast path.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		fired: map[string]int64{},
		sleep: time.Sleep,
	}
}

// Enabled reports whether this injector can fire at all.
func (in *Injector) Enabled() bool { return in != nil }

// hit draws one decision and, when it fires, records it under site.
func (in *Injector) hit(p float64, site string) bool {
	if in == nil || p <= 0 {
		return false
	}
	in.mu.Lock()
	fired := in.rng.Float64() < p
	if fired {
		in.fired[site]++
	}
	in.mu.Unlock()
	return fired
}

// SlowStage sleeps for the configured delay with probability
// Config.SlowStage. site labels the stage in the fired-count map.
func (in *Injector) SlowStage(site string) {
	if in.hit(in.cfgSlow(), "slow:"+site) {
		in.sleep(in.cfg.SlowStageDelay)
	}
}

// Stall sleeps for the configured stall delay with probability
// Config.Stall, modeling a stuck worker.
func (in *Injector) Stall(site string) {
	if in.hit(in.cfgStall(), "stall:"+site) {
		in.sleep(in.cfg.StallDelay)
	}
}

// CacheFault reports whether a cache shard operation should fail. Its
// signature matches pipeline.CacheFaultHook so an Injector plugs straight
// into Cache.SetFaultHook.
func (in *Injector) CacheFault(op string, shard int) bool {
	if in == nil {
		return false
	}
	return in.hit(in.cfg.CacheFail, fmt.Sprintf("cachefail:%s:shard%d", op, shard))
}

// MaybePanic panics with probability Config.Panic. The panic value is a
// *InjectedPanic so recovery sites can distinguish injected faults from
// real bugs.
func (in *Injector) MaybePanic(site string) {
	if in.hit(in.cfgPanic(), "panic:"+site) {
		panic(&InjectedPanic{Site: site})
	}
}

func (in *Injector) cfgSlow() float64 {
	if in == nil {
		return 0
	}
	return in.cfg.SlowStage
}

func (in *Injector) cfgStall() float64 {
	if in == nil {
		return 0
	}
	return in.cfg.Stall
}

func (in *Injector) cfgPanic() float64 {
	if in == nil {
		return 0
	}
	return in.cfg.Panic
}

// InjectedPanic is the panic value MaybePanic throws.
type InjectedPanic struct{ Site string }

func (p *InjectedPanic) Error() string {
	return "faultinject: injected panic at " + p.Site
}

// Fired returns a copy of the per-site fired counts.
func (in *Injector) Fired() map[string]int64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]int64, len(in.fired))
	for k, v := range in.fired {
		out[k] = v
	}
	return out
}

// TotalFired sums the fired counts across sites.
func (in *Injector) TotalFired() int64 {
	var n int64
	for _, v := range in.Fired() {
		n += v
	}
	return n
}

// Summary renders the fired counts, sorted by site, for logs.
func (in *Injector) Summary() string {
	fired := in.Fired()
	if len(fired) == 0 {
		return "faultinject: no faults fired"
	}
	sites := make([]string, 0, len(fired))
	for k := range fired {
		sites = append(sites, k)
	}
	sort.Strings(sites)
	var b strings.Builder
	b.WriteString("faultinject fired:")
	for _, s := range sites {
		fmt.Fprintf(&b, " %s=%d", s, fired[s])
	}
	return b.String()
}
