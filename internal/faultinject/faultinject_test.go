package faultinject

import (
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	in.SlowStage("parse") // must not panic
	in.Stall("worker")
	in.MaybePanic("handler")
	if in.CacheFault("get", 3) {
		t.Error("nil injector fired a cache fault")
	}
	if in.Fired() != nil || in.TotalFired() != 0 {
		t.Error("nil injector recorded fires")
	}
	if New(Config{}) != nil {
		t.Error("New with a zero config must return nil (all-off fast path)")
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() map[string]int64 {
		in := New(Config{Seed: 42, Panic: 0.5})
		for i := 0; i < 200; i++ {
			func() {
				defer func() { recover() }()
				in.MaybePanic("site")
			}()
		}
		return in.Fired()
	}
	a, b := run(), run()
	if a["panic:site"] == 0 {
		t.Fatal("p=0.5 over 200 draws never fired")
	}
	if a["panic:site"] != b["panic:site"] {
		t.Errorf("same seed, different fire counts: %d vs %d", a["panic:site"], b["panic:site"])
	}
}

func TestProbabilityOneAlwaysFires(t *testing.T) {
	slept := 0
	in := New(Config{SlowStage: 1, SlowStageDelay: time.Millisecond, Stall: 1, StallDelay: time.Millisecond, CacheFail: 1, Panic: 1})
	in.sleep = func(time.Duration) { slept++ }
	in.SlowStage("analyze")
	in.Stall("w0")
	if slept != 2 {
		t.Errorf("slept %d times, want 2", slept)
	}
	if !in.CacheFault("put", 0) {
		t.Error("p=1 cache fault did not fire")
	}
	caught := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if ip, ok := r.(*InjectedPanic); !ok || ip.Site != "handler" {
					t.Errorf("panic value = %#v, want *InjectedPanic{handler}", r)
				}
				caught = true
			}
		}()
		in.MaybePanic("handler")
	}()
	if !caught {
		t.Error("p=1 panic did not fire")
	}
	if in.TotalFired() != 4 {
		t.Errorf("TotalFired = %d, want 4 (%s)", in.TotalFired(), in.Summary())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("slow=0.1:5ms,cachefail=0.2,panic=0.05,stall=0.3:10ms,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, SlowStage: 0.1, SlowStageDelay: 5 * time.Millisecond,
		CacheFail: 0.2, Panic: 0.05, Stall: 0.3, StallDelay: 10 * time.Millisecond}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Error("parsed config should be enabled")
	}

	if cfg, err := ParseSpec(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec: cfg=%+v err=%v, want disabled, nil", cfg, err)
	}
	for _, bad := range []string{"slow", "slow=x", "slow=2", "slow=-0.1", "warp=0.5", "slow=0.1:zz"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted a bad spec", bad)
		}
	}
}
