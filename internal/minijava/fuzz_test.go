package minijava_test

import (
	"testing"

	"satbelim/internal/codegen"
	"satbelim/internal/minijava"
	"satbelim/internal/progen"
	"satbelim/internal/verifier"
)

// FuzzParse feeds arbitrary bytes through the frontend. The contract
// under fuzzing is crash-freedom plus a pipeline invariant: any input
// that parses and typechecks must also compile to bytecode that passes
// the verifier — the frontend may reject, but it must never hand the
// backend an ill-formed program.
func FuzzParse(f *testing.F) {
	f.Add("class A { static void main() { print(1); } }")
	f.Add(`class N { N next; }
class A { static void main() { N n = new N(); n.next = new N(); } }`)
	f.Add(`class W { W next; void work() { this.next = new W(); } }
class A { static void main() { W w = new W(); spawn w.work(); } }`)
	f.Add("class A { static void main() { int[] a = new int[3]; a[0] = 1; print(a[0]); } }")
	f.Add("class A {")
	f.Add("x = ;;")
	for _, src := range progen.Corpus(9000, 3, progen.DefaultConfig()) {
		f.Add(src)
	}
	// Campaign-config sources add the strided-init, alloc-reuse,
	// aliasing, and escape-store idioms the metamorphic harness
	// generates from (cmd/satbtest).
	for _, src := range progen.Corpus(17000, 3, progen.CampaignConfig()) {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Pathological nesting makes the recursive-descent parser's cost
		// quadratic-ish; bound input size to keep iterations fast.
		if len(src) > 1<<12 {
			t.Skip()
		}
		ast, err := minijava.Parse("fuzz.mj", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		checked, err := minijava.Check("fuzz.mj", ast)
		if err != nil {
			return
		}
		prog, err := codegen.Compile(checked)
		if err != nil {
			t.Fatalf("checked program failed codegen: %v\nsource:\n%s", err, src)
		}
		if err := verifier.VerifyProgram(prog); err != nil {
			t.Fatalf("checked program failed verification: %v\nsource:\n%s", err, src)
		}
	})
}

// TestFuzzSeedsAreInteresting sanity-checks the seed corpus exercises
// both accept and reject paths when run as a plain test (go test runs
// the fuzz target over seeds only).
func TestFuzzSeedsAreInteresting(t *testing.T) {
	accepted, rejected := 0, 0
	seeds := []string{
		"class A { static void main() { print(1); } }",
		"class A {",
	}
	for _, s := range seeds {
		if _, err := minijava.Parse("s.mj", s); err != nil {
			rejected++
		} else {
			accepted++
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Errorf("seed corpus should cover accept and reject: %d/%d", accepted, rejected)
	}
}
