// Package minijava implements the front end for the MiniJava-style source
// language used by this repository's workloads and examples: a lexer, a
// recursive-descent parser, and a type checker. The language is a small
// Java subset — classes with instance/static fields, constructors, static
// and instance methods, int/boolean/class/array types — chosen so that the
// bytecode it compiles to exercises exactly the instruction forms over
// which the CGO'05 barrier-elision analyses are defined.
package minijava

import (
	"fmt"
	"unicode"
)

// TokenKind identifies a lexical token class.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokKeyword
	TokPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Val  int64 // for TokInt
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokInt:
		return fmt.Sprintf("integer %d", t.Val)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

var keywords = map[string]bool{
	"class": true, "static": true, "void": true, "int": true, "boolean": true,
	"if": true, "else": true, "while": true, "for": true, "return": true,
	"new": true, "this": true, "null": true, "true": true, "false": true,
	"print": true, "spawn": true, "length": true,
}

// Lexer splits MiniJava source text into tokens.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
	file string
}

// NewLexer returns a lexer over src; file is used in error positions.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1, file: file}
}

// SyntaxError is a lexing or parsing failure with a source position.
type SyntaxError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(line, col int, format string, args ...any) error {
	return &SyntaxError{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf(line, col, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// twoCharPuncts are the multi-rune operators, checked before single runes.
var twoCharPuncts = map[string]bool{
	"==": true, "!=": true, "<=": true, ">=": true, "&&": true, "||": true,
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	r := l.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
		}
		text := string(l.src[start:l.pos])
		var v int64
		for _, d := range text {
			nv := v*10 + int64(d-'0')
			if nv < v {
				return Token{}, l.errorf(line, col, "integer literal %s overflows int64", text)
			}
			v = nv
		}
		return Token{Kind: TokInt, Text: text, Val: v, Line: line, Col: col}, nil
	default:
		if l.pos+1 < len(l.src) {
			two := string(l.src[l.pos : l.pos+2])
			if twoCharPuncts[two] {
				l.advance()
				l.advance()
				return Token{Kind: TokPunct, Text: two, Line: line, Col: col}, nil
			}
		}
		switch r {
		case '{', '}', '(', ')', '[', ']', ';', ',', '.', '=', '<', '>', '+', '-', '*', '/', '%', '!':
			l.advance()
			return Token{Kind: TokPunct, Text: string(r), Line: line, Col: col}, nil
		}
		return Token{}, l.errorf(line, col, "unexpected character %q", string(r))
	}
}

// LexAll tokenizes the whole input (including the trailing EOF token).
func LexAll(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, tok)
		if tok.Kind == TokEOF {
			return out, nil
		}
	}
}
