package minijava

import (
	"strings"
	"testing"

	"satbelim/internal/bytecode"
)

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	prog := mustParse(t, src)
	ch, err := Check("t.mj", prog)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return ch
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	prog, err := Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, err = Check("t.mj", prog)
	if err == nil {
		t.Fatalf("expected type error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestCheckResolvesLocalsAndFields(t *testing.T) {
	ch := mustCheck(t, `
class T {
    int f;
    static int s;
    void m(int p) {
        int x = p + f + s;
        this.f = x;
        T.s = x;
    }
}
`)
	md := ch.Classes["T"].Methods["m"].Decl
	slots := ch.Slots[md]
	// receiver, p, x
	if len(slots) != 3 {
		t.Fatalf("slots = %d, want 3", len(slots))
	}
	if slots[0].Class != "T" {
		t.Error("slot 0 should be the receiver")
	}
	if slots[1] != bytecode.Int || slots[2] != bytecode.Int {
		t.Error("p and x should be int slots")
	}
	// The initializer `p + f + s` resolved p as local, f as instance
	// field, s as static field.
	vd := md.Body.Stmts[0].(*VarDecl)
	sum := vd.Init.(*Binary)
	inner := sum.X.(*Binary)
	p := inner.X.(*Ident)
	f := inner.Y.(*Ident)
	s := sum.Y.(*Ident)
	if p.Kind != SymLocal || p.Slot != 1 {
		t.Errorf("p resolution: kind=%v slot=%d", p.Kind, p.Slot)
	}
	if f.Kind != SymField || f.Field.Name != "f" {
		t.Errorf("f resolution: kind=%v", f.Kind)
	}
	if s.Kind != SymStaticField {
		t.Errorf("s resolution: kind=%v", s.Kind)
	}
}

func TestCheckStaticAccessThroughClassName(t *testing.T) {
	ch := mustCheck(t, `
class Other { static int counter; static int get() { return counter; } }
class T { static void main() { Other.counter = Other.get() + 1; } }
`)
	md := ch.Classes["T"].Methods["main"].Decl
	asg := md.Body.Stmts[0].(*Assign)
	fa := asg.LHS.(*FieldAccess)
	if !fa.Static || fa.Field.Class != "Other" {
		t.Errorf("static field access: static=%v class=%s", fa.Static, fa.Field.Class)
	}
	call := asg.RHS.(*Binary).X.(*Call)
	if !call.Static || call.Method.Class != "Other" {
		t.Errorf("static call: static=%v class=%s", call.Static, call.Method.Class)
	}
}

func TestCheckVariableShadowsClassName(t *testing.T) {
	// A local variable named like a class takes priority.
	ch := mustCheck(t, `
class Other { int f; }
class T { static void main() { Other Other = new Other(); Other.f = 1; } }
`)
	md := ch.Classes["T"].Methods["main"].Decl
	asg := md.Body.Stmts[1].(*Assign)
	fa := asg.LHS.(*FieldAccess)
	if fa.Static {
		t.Error("access should be instance access via the local, not static")
	}
}

func TestCheckCtorResolution(t *testing.T) {
	ch := mustCheck(t, `
class P { int x; P(int x0) { x = x0; } }
class T { static void main() { P p = new P(3); } }
`)
	md := ch.Classes["T"].Methods["main"].Decl
	no := md.Body.Stmts[0].(*VarDecl).Init.(*NewObject)
	if no.Ctor == nil || no.Ctor.Name != "<init>" || no.Ctor.Class != "P" {
		t.Errorf("ctor = %v", no.Ctor)
	}
}

func TestCheckNullAssignability(t *testing.T) {
	mustCheck(t, `
class T {
    T next;
    static void main() {
        T t = null;
        t = new T();
        t.next = null;
        T[] arr = null;
        arr = new T[2];
        arr[0] = null;
        boolean b = t == null;
        b = null != arr;
    }
}
`)
}

func TestCheckSpawnRules(t *testing.T) {
	mustCheck(t, `
class W { void run() { } }
class T { static void main() { W w = new W(); spawn w.run(); } }
`)
	checkErr(t, `
class W { void run(int x) { } }
class T { static void main() { W w = new W(); spawn w.run(1); } }
`, "spawn target must be a void method with no parameters")
	checkErr(t, `
class W { static void run() { } }
class T { static void main() { spawn W.run(); } }
`, "spawn requires an instance method call")
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class A {} class A {}`, "duplicate class"},
		{`class A { int x; int x; }`, "duplicate field"},
		{`class A { void m() {} void m() {} }`, "duplicate method"},
		{`class A { Unknown u; }`, "unknown type"},
		{`class A { static void main() { x = 1; } }`, "undefined: x"},
		{`class A { static void main() { int x = true; } }`, "cannot initialize"},
		{`class A { static void main() { int x = 0; int x = 1; } }`, "duplicate variable"},
		{`class A { int f; static void main() { f = 1; } }`, "instance field f referenced from static method"},
		{`class A { static void main() { this.m(); } void m() {} }`, "this is not available"},
		{`class A { static void main() { if (1) print(1); } }`, "must be boolean"},
		{`class A { static void main() { while (2) {} } }`, "must be boolean"},
		{`class A { static void main() { print(true); } }`, "print requires an int"},
		{`class A { int m() { return true; } }`, "cannot return"},
		{`class A { void m() { return 1; } }`, "void method cannot return"},
		{`class A { int m() { return; } }`, "missing return value"},
		{`class A { static void main() { int x = 1; x.f = 2; } }`, "field access on non-object"},
		{`class A { static void main() { A a = new A(); a.nope = 1; } }`, "no field nope"},
		{`class A { static void main() { int x = 5; int y = x[0]; } }`, "indexing non-array"},
		{`class A { static void main() { int[] a = new int[2]; a[true] = 1; } }`, "index must be int"},
		{`class A { static void main() { int n = 3 . length; } }`, ".length on non-array"},
		{`class A { static void main() { B b = new B(); } }`, "unknown type"},
		{`class A { A(int x) {} static void main() { A a = new A(); } }`, "expects 1 arguments"},
		{`class A { static void main() { A a = new A(true); } }`, "expects 0 arguments"},
		{`class A { void m() {} static void main() { m(); } }`, "called from static method"},
		{`class A { static void main() { A a = new A(); a.zap(); } }`, "no method zap"},
		{`class A { static void m() {} static void main() { A a = new A(); a.m(); } }`, "called through instance"},
		{`class A { void m(int x) {} static void main() { A a = new A(); a.m(); } }`, "expects 1 arguments"},
		{`class A { void m(int x) {} static void main() { A a = new A(); a.m(true); } }`, "cannot use boolean as int"},
		{`class A { static void main() { int x = true + 1; } }`, "requires ints"},
		{`class A { static void main() { boolean b = 1 && true; } }`, "requires booleans"},
		{`class A { static void main() { boolean b = 1 == true; } }`, "matching category"},
		{`class A { static void main() { boolean b = !3; } }`, "requires boolean"},
		{`class A { static void main() { int x = -true; } }`, "requires int"},
		{`class A { static void main() { int[] a = new int[true]; } }`, "length must be int"},
		{`class A { static void main() { A a = new A(); a = 5; } }`, "cannot assign"},
		{`class A { int f; static void main() { A.f = 1; } }`, "no static field"},
		{`class A { static void main() { A = 3; } }`, "cannot assign to class"},
	}
	for _, c := range cases {
		checkErr(t, c.src, c.want)
	}
}

func TestCheckBlockScoping(t *testing.T) {
	mustCheck(t, `
class A { static void main() {
    { int x = 1; print(x); }
    { int x = 2; print(x); }
    for (int i = 0; i < 2; i = i + 1) { }
    for (int i = 0; i < 3; i = i + 1) { }
} }
`)
	checkErr(t, `
class A { static void main() { { int x = 1; } print(x); } }
`, "undefined: x")
}

func TestFindMain(t *testing.T) {
	ch := mustCheck(t, `class A { static void main() {} }`)
	ref, err := ch.FindMain()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Class != "A" || ref.Name != "main" {
		t.Errorf("main = %v", ref)
	}

	ch2 := mustCheck(t, `class A { void helper() {} }`)
	if _, err := ch2.FindMain(); err == nil {
		t.Error("expected no-main error")
	}

	ch3 := mustCheck(t, `class A { static void main() {} } class B { static void main() {} }`)
	if _, err := ch3.FindMain(); err == nil {
		t.Error("expected ambiguous-main error")
	}
}

func TestCheckPaperExpandExample(t *testing.T) {
	// The motivating example from §3.1 of the paper, transliterated.
	ch := mustCheck(t, `
class T { int v; }
class Util {
    static T[] expand(T[] ta) {
        T[] new_ta = new T[ta.length * 2];
        for (int i = 0; i < ta.length; i = i + 1)
            new_ta[i] = ta[i];
        return new_ta;
    }
}
`)
	sig := ch.Classes["Util"].Methods["expand"]
	if !sig.Static || !sig.Return.IsRefArray() {
		t.Error("expand signature")
	}
}
