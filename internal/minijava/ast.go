package minijava

import "satbelim/internal/bytecode"

// Program is a parsed compilation unit (one or more classes).
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl is a parsed class.
type ClassDecl struct {
	Name    string
	Fields  []*FieldDecl
	Methods []*MethodDecl
	Line    int
}

// FieldDecl is a parsed field declaration.
type FieldDecl struct {
	Name   string
	Type   *TypeExpr
	Static bool
	Line   int
}

// Param is a formal parameter.
type Param struct {
	Name string
	Type *TypeExpr
	Line int
}

// MethodDecl is a parsed method or constructor.
type MethodDecl struct {
	Name   string
	Static bool
	Ctor   bool
	Params []*Param
	Return *TypeExpr // nil for void and constructors
	Body   *Block
	Line   int
}

// TypeExpr is a syntactic type: a base name plus array dimensions.
type TypeExpr struct {
	Base string // "int", "boolean", or a class name
	Dims int
	Line int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes. After type checking,
// Type() returns the expression's static type.
type Expr interface {
	exprNode()
	Type() *bytecode.Type
}

// exprType carries the checker-assigned static type.
type exprType struct{ T *bytecode.Type }

func (e *exprType) Type() *bytecode.Type { return e.T }

// setType is used by the checker.
func (e *exprType) setType(t *bytecode.Type) { e.T = t }

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Line  int
}

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Name     string
	TypeExpr *TypeExpr
	Init     Expr // may be nil
	Line     int

	// Set by the checker:
	Slot     int
	DeclType *bytecode.Type
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Line int
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
	Line int
}

// For is a C-style for loop. Init and Post may be nil; Cond may be nil
// (meaning true).
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
	Line int
}

// Return exits the enclosing method.
type Return struct {
	Value Expr // may be nil
	Line  int
}

// ExprStmt evaluates an expression (a call) for effect.
type ExprStmt struct {
	E    Expr
	Line int
}

// Print emits an integer on the VM output.
type Print struct {
	E    Expr
	Line int
}

// Spawn starts an instance method on a new thread.
type Spawn struct {
	Call *CallExpr
	Line int
}

// Assign stores RHS into an lvalue (local, field, static field, or array
// element).
type Assign struct {
	LHS  Expr
	RHS  Expr
	Line int
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*Print) stmtNode()    {}
func (*Spawn) stmtNode()    {}
func (*Assign) stmtNode()   {}

// IntLit is an integer literal.
type IntLit struct {
	exprType
	Val  int64
	Line int
}

// BoolLit is true or false.
type BoolLit struct {
	exprType
	Val  bool
	Line int
}

// NullLit is the null literal.
type NullLit struct {
	exprType
	Line int
}

// This is the receiver reference.
type This struct {
	exprType
	Line int
}

// SymKind says what an identifier resolved to.
type SymKind int

const (
	SymUnresolved SymKind = iota
	// SymLocal: a local variable or parameter; Slot is set.
	SymLocal
	// SymField: an instance field of the enclosing class accessed through
	// the implicit this; Field is set.
	SymField
	// SymStaticField: a static field of the enclosing class; Field is set.
	SymStaticField
	// SymClass: a class name (only legal as the receiver of a static
	// member access).
	SymClass
)

// Ident is a bare identifier.
type Ident struct {
	exprType
	Name string
	Line int

	// Set by the checker:
	Kind  SymKind
	Slot  int
	Field bytecode.FieldRef
}

// FieldAccess is obj.name (instance) or Class.name (static).
type FieldAccess struct {
	exprType
	Obj  Expr
	Name string
	Line int

	// Set by the checker:
	Static bool
	Field  bytecode.FieldRef
}

// Index is arr[i].
type Index struct {
	exprType
	Arr   Expr
	Index Expr
	Line  int
}

// Length is arr.length.
type Length struct {
	exprType
	Arr  Expr
	Line int
}

// NewObject is new C(args).
type NewObject struct {
	exprType
	ClassName string
	Args      []Expr
	Line      int

	// Set by the checker: the constructor, if the class declares one.
	Ctor *bytecode.MethodRef
}

// NewArray is new Elem[len] with optional extra [] dims on the element.
type NewArray struct {
	exprType
	Elem *TypeExpr // element type (extra dims folded in)
	Len  Expr
	Line int

	// Set by the checker:
	ElemType *bytecode.Type
}

// Call is recv.name(args), Class.name(args), or name(args).
type Call struct {
	exprType
	Recv Expr // nil for a bare call
	Name string
	Args []Expr
	Line int

	// Set by the checker:
	Static bool
	Method bytecode.MethodRef
}

// CallExpr is an alias kept for readability at spawn sites.
type CallExpr = Call

// Unary is -x or !x.
type Unary struct {
	exprType
	Op   string
	X    Expr
	Line int
}

// Binary is x op y. && and || short-circuit.
type Binary struct {
	exprType
	Op   string
	X, Y Expr
	Line int
}

func (*IntLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*This) exprNode()        {}
func (*Ident) exprNode()       {}
func (*FieldAccess) exprNode() {}
func (*Index) exprNode()       {}
func (*Length) exprNode()      {}
func (*NewObject) exprNode()   {}
func (*NewArray) exprNode()    {}
func (*Call) exprNode()        {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
