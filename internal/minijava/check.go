package minijava

import (
	"fmt"

	"satbelim/internal/bytecode"
)

// TypeError is a semantic-analysis failure with a source line.
type TypeError struct {
	File string
	Line int
	Msg  string
}

func (e *TypeError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

// MethodSig is a resolved method signature.
type MethodSig struct {
	Decl   *MethodDecl
	Class  string
	Params []*bytecode.Type
	Return *bytecode.Type
	Static bool
	Ctor   bool
}

// Ref returns the bytecode reference for the method.
func (s *MethodSig) Ref() bytecode.MethodRef {
	return bytecode.MethodRef{Class: s.Class, Name: s.Decl.Name}
}

// ClassInfo is the resolved symbol table of one class.
type ClassInfo struct {
	Decl    *ClassDecl
	Fields  map[string]*bytecode.Field
	Methods map[string]*MethodSig
	Ctor    *MethodSig // nil when the class declares no constructor
}

// Checked is the result of semantic analysis: the annotated AST plus
// symbol tables consumed by the code generator.
type Checked struct {
	Prog    *Program
	Classes map[string]*ClassInfo
	// Slots maps each method decl to its local slot types (receiver
	// first for instance methods, then parameters, then locals).
	Slots map[*MethodDecl][]*bytecode.Type
}

// checker carries type-checking state.
type checker struct {
	file    string
	classes map[string]*ClassInfo
	slots   map[*MethodDecl][]*bytecode.Type

	// Per-method state.
	class  *ClassInfo
	method *MethodSig
	scopes []map[string]int // name -> slot
	types  []*bytecode.Type // slot -> type
}

// Check performs semantic analysis on a parsed program.
func Check(file string, prog *Program) (*Checked, error) {
	c := &checker{
		file:    file,
		classes: map[string]*ClassInfo{},
		slots:   map[*MethodDecl][]*bytecode.Type{},
	}
	if err := c.collect(prog); err != nil {
		return nil, err
	}
	for _, cd := range prog.Classes {
		ci := c.classes[cd.Name]
		for _, md := range cd.Methods {
			if err := c.checkMethod(ci, md); err != nil {
				return nil, err
			}
		}
	}
	return &Checked{Prog: prog, Classes: c.classes, Slots: c.slots}, nil
}

func (c *checker) errorf(line int, format string, args ...any) error {
	return &TypeError{File: c.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(te *TypeExpr) (*bytecode.Type, error) {
	var base *bytecode.Type
	switch te.Base {
	case "int":
		base = bytecode.Int
	case "boolean":
		base = bytecode.Bool
	default:
		if _, ok := c.classes[te.Base]; !ok {
			return nil, c.errorf(te.Line, "unknown type %s", te.Base)
		}
		base = bytecode.ClassType(te.Base)
	}
	for i := 0; i < te.Dims; i++ {
		base = bytecode.ArrayOf(base)
	}
	return base, nil
}

// collect builds the class symbol tables (two-pass: names first so that
// classes may reference each other).
func (c *checker) collect(prog *Program) error {
	for _, cd := range prog.Classes {
		if _, dup := c.classes[cd.Name]; dup {
			return c.errorf(cd.Line, "duplicate class %s", cd.Name)
		}
		c.classes[cd.Name] = &ClassInfo{
			Decl:    cd,
			Fields:  map[string]*bytecode.Field{},
			Methods: map[string]*MethodSig{},
		}
	}
	for _, cd := range prog.Classes {
		ci := c.classes[cd.Name]
		for _, fd := range cd.Fields {
			if _, dup := ci.Fields[fd.Name]; dup {
				return c.errorf(fd.Line, "duplicate field %s.%s", cd.Name, fd.Name)
			}
			ft, err := c.resolveType(fd.Type)
			if err != nil {
				return err
			}
			ci.Fields[fd.Name] = &bytecode.Field{Name: fd.Name, Type: ft, Static: fd.Static}
		}
		for _, md := range cd.Methods {
			if _, dup := ci.Methods[md.Name]; dup {
				return c.errorf(md.Line, "duplicate method %s.%s", cd.Name, md.Name)
			}
			sig := &MethodSig{Decl: md, Class: cd.Name, Static: md.Static, Ctor: md.Ctor}
			for _, pm := range md.Params {
				pt, err := c.resolveType(pm.Type)
				if err != nil {
					return err
				}
				sig.Params = append(sig.Params, pt)
			}
			sig.Return = bytecode.Void
			if md.Return != nil {
				rt, err := c.resolveType(md.Return)
				if err != nil {
					return err
				}
				sig.Return = rt
			}
			ci.Methods[md.Name] = sig
			if md.Ctor {
				ci.Ctor = sig
			}
		}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, t *bytecode.Type, line int) (int, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, c.errorf(line, "duplicate variable %s", name)
	}
	slot := len(c.types)
	c.types = append(c.types, t)
	top[name] = slot
	return slot, nil
}

func (c *checker) lookupVar(name string) (int, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i][name]; ok {
			return slot, true
		}
	}
	return 0, false
}

func (c *checker) checkMethod(ci *ClassInfo, md *MethodDecl) error {
	sig := ci.Methods[md.Name]
	c.class = ci
	c.method = sig
	c.scopes = nil
	c.types = nil
	c.pushScope()
	defer c.popScope()

	if !md.Static {
		// Slot 0 is the receiver.
		c.types = append(c.types, bytecode.ClassType(ci.Decl.Name))
		c.scopes[0]["this"] = 0
	}
	for i, pm := range md.Params {
		if _, err := c.declare(pm.Name, sig.Params[i], pm.Line); err != nil {
			return err
		}
	}
	if err := c.checkBlock(md.Body); err != nil {
		return err
	}
	c.slots[md] = c.types
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// assignable reports whether a value of type from may be stored where type
// to is expected. Null (represented by a nil type on NullLit after
// checking — we use a class type with empty name instead) is assignable to
// any reference type.
func assignable(to, from *bytecode.Type) bool {
	if isNullType(from) {
		return to.IsRef()
	}
	return to.Equal(from)
}

// nullType marks the type of the null literal.
var nullType = bytecode.ClassType("<null>")

func isNullType(t *bytecode.Type) bool {
	return t != nil && t.Kind == bytecode.KindClass && t.Class == "<null>"
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.checkBlock(st)
	case *VarDecl:
		dt, err := c.resolveType(st.TypeExpr)
		if err != nil {
			return err
		}
		if st.Init != nil {
			it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !assignable(dt, it) {
				return c.errorf(st.Line, "cannot initialize %s %s with %s", dt, st.Name, it)
			}
		}
		slot, err := c.declare(st.Name, dt, st.Line)
		if err != nil {
			return err
		}
		st.Slot = slot
		st.DeclType = dt
		return nil
	case *If:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != bytecode.Bool {
			return c.errorf(st.Line, "if condition must be boolean, got %s", ct)
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct != bytecode.Bool {
			return c.errorf(st.Line, "while condition must be boolean, got %s", ct)
		}
		return c.checkStmt(st.Body)
	case *For:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if ct != bytecode.Bool {
				return c.errorf(st.Line, "for condition must be boolean, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(st.Body)
	case *Return:
		want := c.method.Return
		if st.Value == nil {
			if want != bytecode.Void {
				return c.errorf(st.Line, "missing return value (want %s)", want)
			}
			return nil
		}
		if want == bytecode.Void {
			return c.errorf(st.Line, "void method cannot return a value")
		}
		got, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if !assignable(want, got) {
			return c.errorf(st.Line, "cannot return %s from method returning %s", got, want)
		}
		return nil
	case *ExprStmt:
		_, err := c.checkExpr(st.E)
		return err
	case *Print:
		et, err := c.checkExpr(st.E)
		if err != nil {
			return err
		}
		if et != bytecode.Int {
			return c.errorf(st.Line, "print requires an int, got %s", et)
		}
		return nil
	case *Spawn:
		if _, err := c.checkExpr(st.Call); err != nil {
			return err
		}
		if st.Call.Static {
			return c.errorf(st.Line, "spawn requires an instance method call")
		}
		sig := c.classes[st.Call.Method.Class].Methods[st.Call.Method.Name]
		if len(sig.Params) != 0 || sig.Return != bytecode.Void {
			return c.errorf(st.Line, "spawn target must be a void method with no parameters")
		}
		return nil
	case *Assign:
		rt, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		lt, err := c.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		if !assignable(lt, rt) {
			return c.errorf(st.Line, "cannot assign %s to %s", rt, lt)
		}
		return nil
	default:
		return fmt.Errorf("internal: unknown statement %T", s)
	}
}

// checkLValue checks an assignment target and returns its type.
func (c *checker) checkLValue(e Expr) (*bytecode.Type, error) {
	switch lv := e.(type) {
	case *Ident:
		t, err := c.checkExpr(lv)
		if err != nil {
			return nil, err
		}
		if lv.Kind == SymClass {
			return nil, c.errorf(lv.Line, "cannot assign to class %s", lv.Name)
		}
		return t, nil
	case *FieldAccess:
		return c.checkExpr(lv)
	case *Index:
		return c.checkExpr(lv)
	default:
		return nil, c.errorf(0, "invalid assignment target")
	}
}

func (c *checker) checkExpr(e Expr) (*bytecode.Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(bytecode.Int)
	case *BoolLit:
		ex.setType(bytecode.Bool)
	case *NullLit:
		ex.setType(nullType)
	case *This:
		if c.method.Static {
			return nil, c.errorf(ex.Line, "this is not available in a static method")
		}
		ex.setType(bytecode.ClassType(c.class.Decl.Name))
	case *Ident:
		if slot, ok := c.lookupVar(ex.Name); ok {
			ex.Kind = SymLocal
			ex.Slot = slot
			ex.setType(c.types[slot])
			break
		}
		if f, ok := c.class.Fields[ex.Name]; ok {
			ex.Field = bytecode.FieldRef{Class: c.class.Decl.Name, Name: ex.Name}
			if f.Static {
				ex.Kind = SymStaticField
			} else {
				if c.method.Static {
					return nil, c.errorf(ex.Line, "instance field %s referenced from static method", ex.Name)
				}
				ex.Kind = SymField
			}
			ex.setType(f.Type)
			break
		}
		if _, ok := c.classes[ex.Name]; ok {
			ex.Kind = SymClass
			ex.setType(nil)
			break
		}
		return nil, c.errorf(ex.Line, "undefined: %s", ex.Name)
	case *FieldAccess:
		// Class.name static access?
		if id, ok := ex.Obj.(*Ident); ok {
			if _, isVar := c.lookupVar(id.Name); !isVar {
				if _, isField := c.class.Fields[id.Name]; !isField {
					if ci, isClass := c.classes[id.Name]; isClass {
						f, ok := ci.Fields[ex.Name]
						if !ok || !f.Static {
							return nil, c.errorf(ex.Line, "no static field %s.%s", id.Name, ex.Name)
						}
						id.Kind = SymClass
						ex.Static = true
						ex.Field = bytecode.FieldRef{Class: id.Name, Name: ex.Name}
						ex.setType(f.Type)
						return ex.Type(), nil
					}
				}
			}
		}
		ot, err := c.checkExpr(ex.Obj)
		if err != nil {
			return nil, err
		}
		if ot == nil || ot.Kind != bytecode.KindClass || isNullType(ot) {
			return nil, c.errorf(ex.Line, "field access on non-object type %s", ot)
		}
		ci, ok := c.classes[ot.Class]
		if !ok {
			return nil, c.errorf(ex.Line, "unknown class %s", ot.Class)
		}
		f, ok := ci.Fields[ex.Name]
		if !ok {
			return nil, c.errorf(ex.Line, "class %s has no field %s", ot.Class, ex.Name)
		}
		if f.Static {
			return nil, c.errorf(ex.Line, "static field %s.%s accessed through instance", ot.Class, ex.Name)
		}
		ex.Field = bytecode.FieldRef{Class: ot.Class, Name: ex.Name}
		ex.setType(f.Type)
	case *Index:
		at, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, err
		}
		if at == nil || at.Kind != bytecode.KindArray {
			return nil, c.errorf(ex.Line, "indexing non-array type %s", at)
		}
		it, err := c.checkExpr(ex.Index)
		if err != nil {
			return nil, err
		}
		if it != bytecode.Int {
			return nil, c.errorf(ex.Line, "array index must be int, got %s", it)
		}
		ex.setType(at.Elem)
	case *Length:
		at, err := c.checkExpr(ex.Arr)
		if err != nil {
			return nil, err
		}
		if at == nil || at.Kind != bytecode.KindArray {
			return nil, c.errorf(ex.Line, ".length on non-array type %s", at)
		}
		ex.setType(bytecode.Int)
	case *NewObject:
		ci, ok := c.classes[ex.ClassName]
		if !ok {
			return nil, c.errorf(ex.Line, "unknown class %s", ex.ClassName)
		}
		var want []*bytecode.Type
		if ci.Ctor != nil {
			want = ci.Ctor.Params
			ref := ci.Ctor.Ref()
			ex.Ctor = &ref
		}
		if len(ex.Args) != len(want) {
			return nil, c.errorf(ex.Line, "constructor %s expects %d arguments, got %d", ex.ClassName, len(want), len(ex.Args))
		}
		for i, a := range ex.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !assignable(want[i], at) {
				return nil, c.errorf(ex.Line, "constructor argument %d: cannot use %s as %s", i+1, at, want[i])
			}
		}
		ex.setType(bytecode.ClassType(ex.ClassName))
	case *NewArray:
		et, err := c.resolveType(ex.Elem)
		if err != nil {
			return nil, err
		}
		lt, err := c.checkExpr(ex.Len)
		if err != nil {
			return nil, err
		}
		if lt != bytecode.Int {
			return nil, c.errorf(ex.Line, "array length must be int, got %s", lt)
		}
		ex.ElemType = et
		ex.setType(bytecode.ArrayOf(et))
	case *Call:
		return c.checkCall(ex)
	case *Unary:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "-":
			if xt != bytecode.Int {
				return nil, c.errorf(ex.Line, "unary - requires int, got %s", xt)
			}
			ex.setType(bytecode.Int)
		case "!":
			if xt != bytecode.Bool {
				return nil, c.errorf(ex.Line, "unary ! requires boolean, got %s", xt)
			}
			ex.setType(bytecode.Bool)
		}
	case *Binary:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		yt, err := c.checkExpr(ex.Y)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "+", "-", "*", "/", "%":
			if xt != bytecode.Int || yt != bytecode.Int {
				return nil, c.errorf(ex.Line, "%s requires ints, got %s and %s", ex.Op, xt, yt)
			}
			ex.setType(bytecode.Int)
		case "<", "<=", ">", ">=":
			if xt != bytecode.Int || yt != bytecode.Int {
				return nil, c.errorf(ex.Line, "%s requires ints, got %s and %s", ex.Op, xt, yt)
			}
			ex.setType(bytecode.Bool)
		case "&&", "||":
			if xt != bytecode.Bool || yt != bytecode.Bool {
				return nil, c.errorf(ex.Line, "%s requires booleans, got %s and %s", ex.Op, xt, yt)
			}
			ex.setType(bytecode.Bool)
		case "==", "!=":
			ok := (xt == bytecode.Int && yt == bytecode.Int) ||
				(xt == bytecode.Bool && yt == bytecode.Bool) ||
				((xt.IsRef() || isNullType(xt)) && (yt.IsRef() || isNullType(yt)))
			if !ok {
				return nil, c.errorf(ex.Line, "%s requires operands of matching category, got %s and %s", ex.Op, xt, yt)
			}
			ex.setType(bytecode.Bool)
		default:
			return nil, fmt.Errorf("internal: unknown binary op %s", ex.Op)
		}
	default:
		return nil, fmt.Errorf("internal: unknown expression %T", e)
	}
	return e.Type(), nil
}

func (c *checker) checkCall(ex *Call) (*bytecode.Type, error) {
	var sig *MethodSig
	switch {
	case ex.Recv == nil:
		// Bare call: same-class method; implicit this for instance
		// targets.
		s, ok := c.class.Methods[ex.Name]
		if !ok {
			return nil, c.errorf(ex.Line, "class %s has no method %s", c.class.Decl.Name, ex.Name)
		}
		if !s.Static && c.method.Static {
			return nil, c.errorf(ex.Line, "instance method %s called from static method without receiver", ex.Name)
		}
		sig = s
		ex.Static = s.Static
	default:
		// Class.name(...) static call?
		if id, ok := ex.Recv.(*Ident); ok {
			if _, isVar := c.lookupVar(id.Name); !isVar {
				if _, isField := c.class.Fields[id.Name]; !isField {
					if ci, isClass := c.classes[id.Name]; isClass {
						s, ok := ci.Methods[ex.Name]
						if !ok || !s.Static {
							return nil, c.errorf(ex.Line, "no static method %s.%s", id.Name, ex.Name)
						}
						id.Kind = SymClass
						sig = s
						ex.Static = true
						ex.Recv = nil // no receiver value to evaluate
					}
				}
			}
		}
		if sig == nil {
			rt, err := c.checkExpr(ex.Recv)
			if err != nil {
				return nil, err
			}
			if rt == nil || rt.Kind != bytecode.KindClass || isNullType(rt) {
				return nil, c.errorf(ex.Line, "method call on non-object type %s", rt)
			}
			ci := c.classes[rt.Class]
			s, ok := ci.Methods[ex.Name]
			if !ok {
				return nil, c.errorf(ex.Line, "class %s has no method %s", rt.Class, ex.Name)
			}
			if s.Static {
				return nil, c.errorf(ex.Line, "static method %s.%s called through instance", rt.Class, ex.Name)
			}
			if s.Ctor {
				return nil, c.errorf(ex.Line, "cannot call constructor directly")
			}
			sig = s
		}
	}
	if len(ex.Args) != len(sig.Params) {
		return nil, c.errorf(ex.Line, "method %s expects %d arguments, got %d", ex.Name, len(sig.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !assignable(sig.Params[i], at) {
			return nil, c.errorf(ex.Line, "argument %d of %s: cannot use %s as %s", i+1, ex.Name, at, sig.Params[i])
		}
	}
	ex.Method = sig.Ref()
	ex.setType(sig.Return)
	return sig.Return, nil
}

// FindMain locates the program entry point: a static void main() with no
// parameters. It errors when absent or ambiguous.
func (ch *Checked) FindMain() (bytecode.MethodRef, error) {
	var found []bytecode.MethodRef
	for name, ci := range ch.Classes {
		if sig, ok := ci.Methods["main"]; ok && sig.Static && len(sig.Params) == 0 && sig.Return == bytecode.Void {
			found = append(found, bytecode.MethodRef{Class: name, Name: "main"})
		}
	}
	switch len(found) {
	case 0:
		return bytecode.MethodRef{}, fmt.Errorf("no static void main() found")
	case 1:
		return found[0], nil
	default:
		return bytecode.MethodRef{}, fmt.Errorf("multiple main methods found")
	}
}
