package minijava

import "fmt"

// Parser is a recursive-descent parser for MiniJava.
type Parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses a whole source file.
func Parse(file, src string) (*Program, error) {
	toks, err := LexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &Parser{file: file, toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.at(1) }

func (p *Parser) at(k int) Token {
	if p.pos+k >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+k]
}

func (p *Parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(t Token, format string, args ...any) error {
	return &SyntaxError{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

// isKw reports whether the current token is the given keyword.
func (p *Parser) isKw(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

// isPunct reports whether the current token is the given punctuation.
func (p *Parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) expectKw(kw string) (Token, error) {
	if !p.isKw(kw) {
		return Token{}, p.errorf(p.cur(), "expected %q, found %s", kw, p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) expectPunct(s string) (Token, error) {
	if !p.isPunct(s) {
		return Token{}, p.errorf(p.cur(), "expected %q, found %s", s, p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) expectIdent() (Token, error) {
	if p.cur().Kind != TokIdent {
		return Token{}, p.errorf(p.cur(), "expected identifier, found %s", p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		cd, err := p.parseClass()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, cd)
	}
	if len(prog.Classes) == 0 {
		return nil, p.errorf(p.cur(), "empty program: expected at least one class")
	}
	return prog, nil
}

func (p *Parser) parseClass() (*ClassDecl, error) {
	kw, err := p.expectKw("class")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	cd := &ClassDecl{Name: name.Text, Line: kw.Line}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errorf(p.cur(), "unexpected end of file in class %s", cd.Name)
		}
		if err := p.parseMember(cd); err != nil {
			return nil, err
		}
	}
	p.advance() // }
	return cd, nil
}

// parseMember parses one field, method, or constructor declaration.
func (p *Parser) parseMember(cd *ClassDecl) error {
	static := false
	if p.isKw("static") {
		static = true
		p.advance()
	}

	// Constructor: ClassName ( ... )
	if !static && p.cur().Kind == TokIdent && p.cur().Text == cd.Name &&
		p.peek().Kind == TokPunct && p.peek().Text == "(" {
		return p.parseCtor(cd)
	}

	// void method
	if p.isKw("void") {
		vt := p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		return p.parseMethodRest(cd, name.Text, static, nil, vt.Line)
	}

	// Typed member: field(s) or method.
	te, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		return p.parseMethodRest(cd, name.Text, static, te, te.Line)
	}
	// Field declaration, possibly a comma list.
	cd.Fields = append(cd.Fields, &FieldDecl{Name: name.Text, Type: te, Static: static, Line: name.Line})
	for p.isPunct(",") {
		p.advance()
		n, err := p.expectIdent()
		if err != nil {
			return err
		}
		cd.Fields = append(cd.Fields, &FieldDecl{Name: n.Text, Type: te, Static: static, Line: n.Line})
	}
	_, err = p.expectPunct(";")
	return err
}

func (p *Parser) parseCtor(cd *ClassDecl) error {
	name := p.advance() // class name
	params, err := p.parseParams()
	if err != nil {
		return err
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	cd.Methods = append(cd.Methods, &MethodDecl{
		Name: "<init>", Ctor: true, Params: params, Body: body, Line: name.Line,
	})
	return nil
}

func (p *Parser) parseMethodRest(cd *ClassDecl, name string, static bool, ret *TypeExpr, line int) error {
	params, err := p.parseParams()
	if err != nil {
		return err
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	cd.Methods = append(cd.Methods, &MethodDecl{
		Name: name, Static: static, Params: params, Return: ret, Body: body, Line: line,
	})
	return nil
}

func (p *Parser) parseParams() ([]*Param, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []*Param
	for !p.isPunct(")") {
		if len(params) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		te, err := p.parseType()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, &Param{Name: name.Text, Type: te, Line: name.Line})
	}
	p.advance() // )
	return params, nil
}

// parseType parses a base type name plus [] dimensions.
func (p *Parser) parseType() (*TypeExpr, error) {
	t := p.cur()
	var base string
	switch {
	case p.isKw("int"):
		base = "int"
	case p.isKw("boolean"):
		base = "boolean"
	case t.Kind == TokIdent:
		base = t.Text
	default:
		return nil, p.errorf(t, "expected type, found %s", t)
	}
	p.advance()
	dims := 0
	for p.isPunct("[") && p.peek().Kind == TokPunct && p.peek().Text == "]" {
		p.advance()
		p.advance()
		dims++
	}
	return &TypeExpr{Base: base, Dims: dims, Line: t.Line}, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	lb, err := p.expectPunct("{")
	if err != nil {
		return nil, err
	}
	blk := &Block{Line: lb.Line}
	for !p.isPunct("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errorf(p.cur(), "unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.advance() // }
	return blk, nil
}

// looksLikeVarDecl decides whether the upcoming tokens start a local
// variable declaration rather than an expression statement. The ambiguous
// case is `Name ...`: `Name x`, `Name[] x` are declarations while
// `name = e`, `name[i] = e`, `name.f(...)` are not.
func (p *Parser) looksLikeVarDecl() bool {
	if p.isKw("int") || p.isKw("boolean") {
		return true
	}
	if p.cur().Kind != TokIdent {
		return false
	}
	// Name Name ...  => declaration
	if p.peek().Kind == TokIdent {
		return true
	}
	// Name [ ] ... => declaration (array type)
	if p.peek().Kind == TokPunct && p.peek().Text == "[" &&
		p.at(2).Kind == TokPunct && p.at(2).Text == "]" {
		return true
	}
	return false
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.isKw("if"):
		return p.parseIf()
	case p.isKw("while"):
		return p.parseWhile()
	case p.isKw("for"):
		return p.parseFor()
	case p.isKw("return"):
		p.advance()
		r := &Return{Line: t.Line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.Value = e
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return r, nil
	case p.isKw("print"):
		p.advance()
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Print{E: e, Line: t.Line}, nil
	case p.isKw("spawn"):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call, ok := e.(*Call)
		if !ok {
			return nil, p.errorf(t, "spawn requires a method call")
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &Spawn{Call: call, Line: t.Line}, nil
	case p.looksLikeVarDecl():
		vd, err := p.parseVarDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return vd, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseVarDecl() (*VarDecl, error) {
	te, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{Name: name.Text, TypeExpr: te, Line: name.Line}
	if p.isPunct("=") {
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		vd.Init = e
	}
	return vd, nil
}

// parseSimpleStmt parses an assignment or call, without the trailing
// semicolon (shared by statement and for-clause positions).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	t := p.cur()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.isPunct("=") {
		p.advance()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *Ident, *FieldAccess, *Index:
			return &Assign{LHS: e, RHS: rhs, Line: t.Line}, nil
		default:
			return nil, p.errorf(t, "invalid assignment target")
		}
	}
	if _, ok := e.(*Call); !ok {
		return nil, p.errorf(t, "expression statement must be a call")
	}
	return &ExprStmt{E: e, Line: t.Line}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.advance() // if
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &If{Cond: cond, Then: then, Line: t.Line}
	if p.isKw("else") {
		p.advance()
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Else = els
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.advance() // while
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: t.Line}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.advance() // for
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &For{Line: t.Line}
	if !p.isPunct(";") {
		if p.looksLikeVarDecl() {
			vd, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			st.Init = vd
		} else {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = s
		}
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = s
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Expression grammar, lowest precedence first:
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := eq ("&&" eq)*
//	eq     := rel (("=="|"!=") rel)*
//	rel    := add (("<"|"<="|">"|">=") add)*
//	add    := mul (("+"|"-") mul)*
//	mul    := unary (("*"|"/"|"%") unary)*
//	unary  := ("-"|"!") unary | postfix
//	postfix:= primary ( "." ident [args] | "." length | "[" expr "]" )*
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseBinaryLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	x, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.isPunct(op) {
				t := p.advance()
				y, err := sub()
				if err != nil {
					return nil, err
				}
				x = &Binary{Op: op, X: x, Y: y, Line: t.Line}
				matched = true
				break
			}
		}
		if !matched {
			return x, nil
		}
	}
}

func (p *Parser) parseOr() (Expr, error) {
	return p.parseBinaryLevel([]string{"||"}, p.parseAnd)
}

func (p *Parser) parseAnd() (Expr, error) {
	return p.parseBinaryLevel([]string{"&&"}, p.parseEq)
}

func (p *Parser) parseEq() (Expr, error) {
	return p.parseBinaryLevel([]string{"==", "!="}, p.parseRel)
}

func (p *Parser) parseRel() (Expr, error) {
	return p.parseBinaryLevel([]string{"<=", ">=", "<", ">"}, p.parseAdd)
}

func (p *Parser) parseAdd() (Expr, error) {
	return p.parseBinaryLevel([]string{"+", "-"}, p.parseMul)
}

func (p *Parser) parseMul() (Expr, error) {
	return p.parseBinaryLevel([]string{"*", "/", "%"}, p.parseUnary)
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if p.isPunct("-") || p.isPunct("!") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x, Line: t.Line}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isPunct("."):
			p.advance()
			if p.isKw("length") {
				t := p.advance()
				e = &Length{Arr: e, Line: t.Line}
				continue
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.isPunct("(") {
				args, err := p.parseArgs()
				if err != nil {
					return nil, err
				}
				e = &Call{Recv: e, Name: name.Text, Args: args, Line: name.Line}
			} else {
				e = &FieldAccess{Obj: e, Name: name.Text, Line: name.Line}
			}
		case p.isPunct("["):
			t := p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &Index{Arr: e, Index: idx, Line: t.Line}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parseArgs() ([]Expr, error) {
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.isPunct(")") {
		if len(args) > 0 {
			if _, err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.advance() // )
	return args, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokInt:
		p.advance()
		return &IntLit{Val: t.Val, Line: t.Line}, nil
	case p.isKw("true"), p.isKw("false"):
		p.advance()
		return &BoolLit{Val: t.Text == "true", Line: t.Line}, nil
	case p.isKw("null"):
		p.advance()
		return &NullLit{Line: t.Line}, nil
	case p.isKw("this"):
		p.advance()
		return &This{Line: t.Line}, nil
	case p.isKw("new"):
		return p.parseNew()
	case p.isPunct("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.advance()
		if p.isPunct("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args, Line: t.Line}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	default:
		return nil, p.errorf(t, "expected expression, found %s", t)
	}
}

// parseNew parses `new C(args)`, `new base[len]`, or `new base[len][]...`.
func (p *Parser) parseNew() (Expr, error) {
	t := p.advance() // new
	var base string
	switch {
	case p.isKw("int"):
		base = "int"
		p.advance()
	case p.isKw("boolean"):
		base = "boolean"
		p.advance()
	case p.cur().Kind == TokIdent:
		base = p.cur().Text
		p.advance()
	default:
		return nil, p.errorf(p.cur(), "expected type after new, found %s", p.cur())
	}
	if p.isPunct("(") {
		if base == "int" || base == "boolean" {
			return nil, p.errorf(t, "cannot construct primitive type %s", base)
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &NewObject{ClassName: base, Args: args, Line: t.Line}, nil
	}
	if _, err := p.expectPunct("["); err != nil {
		return nil, err
	}
	length, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	dims := 0
	for p.isPunct("[") && p.peek().Kind == TokPunct && p.peek().Text == "]" {
		p.advance()
		p.advance()
		dims++
	}
	return &NewArray{Elem: &TypeExpr{Base: base, Dims: dims, Line: t.Line}, Len: length, Line: t.Line}, nil
}
