package minijava

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestParseClassMembers(t *testing.T) {
	prog := mustParse(t, `
class Point {
    int x, y;
    static int count;
    Point next;

    Point(int x0, int y0) {
        this.x = x0;
        this.y = y0;
    }

    int getX() { return x; }
    static void reset() { count = 0; }
    void run() { }
}
`)
	if len(prog.Classes) != 1 {
		t.Fatalf("classes = %d", len(prog.Classes))
	}
	cd := prog.Classes[0]
	if cd.Name != "Point" {
		t.Errorf("name = %s", cd.Name)
	}
	if len(cd.Fields) != 4 {
		t.Fatalf("fields = %d, want 4", len(cd.Fields))
	}
	if !cd.Fields[2].Static {
		t.Error("count should be static")
	}
	if len(cd.Methods) != 4 {
		t.Fatalf("methods = %d, want 4", len(cd.Methods))
	}
	if !cd.Methods[0].Ctor || cd.Methods[0].Name != "<init>" {
		t.Error("first method should be the constructor")
	}
	if len(cd.Methods[0].Params) != 2 {
		t.Error("ctor params")
	}
	if cd.Methods[1].Return == nil || cd.Methods[1].Return.Base != "int" {
		t.Error("getX return type")
	}
	if !cd.Methods[2].Static {
		t.Error("reset should be static")
	}
	if cd.Methods[3].Return != nil {
		t.Error("run should be void")
	}
}

func TestParseArrayTypes(t *testing.T) {
	prog := mustParse(t, `
class A {
    int[] xs;
    A[][] grid;
    static void main() {
        int[] a = new int[10];
        A[] b = new A[3];
        int[][] c = new int[4][];
        a[0] = a.length;
    }
}
`)
	cd := prog.Classes[0]
	if cd.Fields[0].Type.Base != "int" || cd.Fields[0].Type.Dims != 1 {
		t.Error("xs type")
	}
	if cd.Fields[1].Type.Base != "A" || cd.Fields[1].Type.Dims != 2 {
		t.Error("grid type")
	}
	body := cd.Methods[0].Body
	if len(body.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(body.Stmts))
	}
	na := body.Stmts[2].(*VarDecl).Init.(*NewArray)
	if na.Elem.Base != "int" || na.Elem.Dims != 1 {
		t.Errorf("new int[4][] element = %s dims %d", na.Elem.Base, na.Elem.Dims)
	}
}

func TestParseControlFlow(t *testing.T) {
	prog := mustParse(t, `
class A {
    static void main() {
        int i = 0;
        while (i < 10) { i = i + 1; }
        for (int j = 0; j < 5; j = j + 1) print(j);
        for (;;) { return; }
        if (i == 10) print(1); else print(0);
    }
}
`)
	body := prog.Classes[0].Methods[0].Body
	if _, ok := body.Stmts[1].(*While); !ok {
		t.Error("stmt 1 should be while")
	}
	f := body.Stmts[2].(*For)
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Error("full for loop clauses")
	}
	f2 := body.Stmts[3].(*For)
	if f2.Init != nil || f2.Cond != nil || f2.Post != nil {
		t.Error("empty for clauses should be nil")
	}
	iff := body.Stmts[4].(*If)
	if iff.Else == nil {
		t.Error("else branch missing")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := mustParse(t, `
class A { static boolean f(int a, int b) { return a + b * 2 < a * -b || a == b && true; } }
`)
	ret := prog.Classes[0].Methods[0].Body.Stmts[0].(*Return)
	or, ok := ret.Value.(*Binary)
	if !ok || or.Op != "||" {
		t.Fatalf("top op = %v", ret.Value)
	}
	lt, ok := or.X.(*Binary)
	if !ok || lt.Op != "<" {
		t.Fatalf("left of || should be <, got %v", or.X)
	}
	add, ok := lt.X.(*Binary)
	if !ok || add.Op != "+" {
		t.Fatal("a + b*2 shape")
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	and, ok := or.Y.(*Binary)
	if !ok || and.Op != "&&" {
		t.Fatal("&& should bind tighter than ||")
	}
}

func TestParsePostfixChains(t *testing.T) {
	prog := mustParse(t, `
class A { static void main() { A x = null; x.b.c[1].d(2).e = null; } }
`)
	asg := prog.Classes[0].Methods[0].Body.Stmts[1].(*Assign)
	fa, ok := asg.LHS.(*FieldAccess)
	if !ok || fa.Name != "e" {
		t.Fatalf("lhs = %T", asg.LHS)
	}
	call, ok := fa.Obj.(*Call)
	if !ok || call.Name != "d" || len(call.Args) != 1 {
		t.Fatalf("call shape: %v", fa.Obj)
	}
	idx, ok := call.Recv.(*Index)
	if !ok {
		t.Fatalf("recv should be index, got %T", call.Recv)
	}
	if _, ok := idx.Arr.(*FieldAccess); !ok {
		t.Fatal("index base should be field access")
	}
}

func TestParseSpawn(t *testing.T) {
	prog := mustParse(t, `
class A { void run() { } static void main() { A a = new A(); spawn a.run(); } }
`)
	sp, ok := prog.Classes[0].Methods[1].Body.Stmts[1].(*Spawn)
	if !ok {
		t.Fatal("expected spawn statement")
	}
	if sp.Call.Name != "run" {
		t.Error("spawn target name")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "empty program"},
		{"class A {", "unexpected end of file"},
		{"class A { static void main() { 1 + 2; } }", "must be a call"},
		{"class A { static void main() { x + 1 = 2; } }", "invalid assignment target"},
		{"class A { static void main() { spawn 5; } }", "spawn requires a method call"},
		{"class A { static void main() { new int(3); } }", "cannot construct primitive"},
		{"class A { int f( { } }", "expected type"},
		{"klass A {}", "expected \"class\""},
	}
	for _, c := range cases {
		_, err := Parse("t.mj", c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseMultipleClasses(t *testing.T) {
	prog := mustParse(t, `
class A { B b; }
class B { A a; }
`)
	if len(prog.Classes) != 2 {
		t.Fatalf("classes = %d", len(prog.Classes))
	}
}

func TestParseParenthesizedExpr(t *testing.T) {
	prog := mustParse(t, `class A { static int f() { return (1 + 2) * 3; } }`)
	ret := prog.Classes[0].Methods[0].Body.Stmts[0].(*Return)
	mul := ret.Value.(*Binary)
	if mul.Op != "*" {
		t.Fatalf("top op = %s, want *", mul.Op)
	}
	if add, ok := mul.X.(*Binary); !ok || add.Op != "+" {
		t.Error("parens should group the +")
	}
}
