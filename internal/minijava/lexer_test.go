package minijava

import "testing"

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("t.mj", "class Foo { int x; }")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "class"}, {TokIdent, "Foo"}, {TokPunct, "{"},
		{TokKeyword, "int"}, {TokIdent, "x"}, {TokPunct, ";"},
		{TokPunct, "}"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("t.mj", "== != <= >= && || < > = ! + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"==", "!=", "<=", ">=", "&&", "||", "<", ">", "=", "!", "+", "-", "*", "/", "%"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexIntLiteral(t *testing.T) {
	toks, err := LexAll("t.mj", "12345 0")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 12345 || toks[1].Val != 0 {
		t.Errorf("int values = %d %d", toks[0].Val, toks[1].Val)
	}
}

func TestLexIntOverflow(t *testing.T) {
	if _, err := LexAll("t.mj", "99999999999999999999999999"); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
x /* block
comment */ y
`
	toks, err := LexAll("t.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	if _, err := LexAll("t.mj", "x /* never closed"); err == nil {
		t.Fatal("expected unterminated comment error")
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := LexAll("t.mj", "x # y"); err == nil {
		t.Fatal("expected error for bad character")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("t.mj", "a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := LexAll("file.mj", "@")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.File != "file.mj" || se.Line != 1 {
		t.Errorf("position = %s:%d", se.File, se.Line)
	}
}
