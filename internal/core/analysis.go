package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"satbelim/internal/bytecode"
	"satbelim/internal/cfg"
	"satbelim/internal/intval"
)

// Mode selects which analyses run (the B/F/A configurations of §4.4).
type Mode int

const (
	// ModeNone performs no analysis (baseline B).
	ModeNone Mode = iota
	// ModeField runs the field analysis only (F).
	ModeField
	// ModeFieldArray runs the field and array analyses (A).
	ModeFieldArray
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "B"
	case ModeField:
		return "F"
	default:
		return "A"
	}
}

// ParseMode parses an analysis-mode name ("B", "F", or "A", case-
// insensitive). All CLIs share it so the flag vocabulary cannot drift.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "B", "b":
		return ModeNone, nil
	case "F", "f":
		return ModeField, nil
	case "A", "a", "":
		return ModeFieldArray, nil
	}
	return ModeNone, fmt.Errorf("unknown analysis mode %q (want B, F, or A)", s)
}

// Options configure an analysis run.
type Options struct {
	Mode Mode
	// NullOrSame additionally marks stores proven to overwrite null or
	// rewrite the value already present (§4.3 extension).
	NullOrSame bool
	// Rearrange additionally marks array-element swap pairs for the
	// §4.3 optimistic retrace protocol. Opt-in: it assumes rearranged
	// arrays are not written by other threads without synchronization
	// (the paper's stated precondition).
	Rearrange bool

	// Ablations (see DESIGN.md §5):
	// SingleRefPerSite collapses R_id/A and R_id/B into one summary
	// node, forcing weak updates everywhere.
	SingleRefPerSite bool
	// FlowInsensitiveEscape judges thread-locality by "ever escapes"
	// instead of "escaped yet at this point".
	FlowInsensitiveEscape bool
	// NoStrideInference disables variable-unknown invention in merges,
	// collapsing differing integers to ⊤.
	NoStrideInference bool

	// UnsoundSkipBDemotion is a DELIBERATELY UNSOUND fault-injection
	// knob for the metamorphic harness's self-test (satbtest must catch
	// it): allocation sites skip the R_id/A → R_id/B demotion, so
	// objects from earlier executions of a site keep the unique A name
	// and inherit the fresh allocation's "all fields null, thread-local"
	// facts. Never enable it outside harness validation — unlike the
	// ablations above it breaks the analysis's soundness argument.
	UnsoundSkipBDemotion bool
	// UnsoundTrustAllSummaries is a second DELIBERATELY UNSOUND
	// fault-injection knob for the harness self-test: cyclic callgraph
	// components stop after their first summary pass instead of
	// iterating the compromise re-run to a fixed point, so a method
	// summarized before its cycle-mate keeps trusting the mate's stale
	// optimistic facts (e.g. mutual recursion where the later-summarized
	// arm publishes an argument). Never enable it outside harness
	// validation.
	UnsoundTrustAllSummaries bool

	// Interprocedural enables escape summaries (see summaries.go): a
	// call escapes only the arguments its callee may publish or reach,
	// invalidates just the callee-written fields of the rest, and treats
	// calls with provably fresh returns like allocation sites (§2.4's
	// named future work).
	Interprocedural bool
	// Summaries supplies precomputed summaries; AnalyzeProgram fills it
	// when Interprocedural is set and it is nil.
	Summaries Summaries
	// MaxSummaryRoundsPerSCC bounds the summary fixed point within one
	// cyclic callgraph component (0 = default). Exceeding it degrades
	// that component's summaries — and only that component's — to the
	// sound worst case; the bound is structural, so degradation is
	// deterministic and cacheable.
	MaxSummaryRoundsPerSCC int

	// Analysis budgets (sound degradation). A method exceeding any budget
	// bails out to the always-sound result — every barrier kept, no
	// instruction annotated — with the reason recorded in its
	// MethodReport.Degraded.
	//
	// MaxBlockVisits bounds the fixed point per method (0 = default).
	MaxBlockVisits int
	// Deadline bounds per-method analysis wall-clock time (0 = none).
	// Unlike the structural budgets it is a real-time bound, so whether a
	// borderline method degrades can vary run to run; use MaxBlockVisits
	// or MaxStateSize where reproducibility matters.
	Deadline time.Duration
	// MaxStateSize bounds the abstract-state footprint (σ + Len + NR
	// entries) of any block's out state (0 = none).
	MaxStateSize int
}

// DegradeReason labels why a method's analysis bailed out to the
// conservative all-barriers result.
type DegradeReason string

const (
	// DegradeNone: the method was analyzed normally.
	DegradeNone DegradeReason = ""
	// DegradeVisitBudget: the fixed point exceeded MaxBlockVisits.
	DegradeVisitBudget DegradeReason = "visit-budget"
	// DegradeDeadline: the per-method wall-clock Deadline expired.
	DegradeDeadline DegradeReason = "deadline"
	// DegradeStateSize: an abstract state outgrew MaxStateSize.
	DegradeStateSize DegradeReason = "state-size"
	// DegradePanic: the analysis panicked; the recovered value and stack
	// are in MethodReport.DegradeDetail.
	DegradePanic DegradeReason = "panic"
	// DegradeCancelled: the caller's context was cancelled mid-analysis
	// (observed at block-visit boundaries). Like DegradeDeadline it is a
	// real-time condition, never reproducible from the inputs alone.
	DegradeCancelled DegradeReason = "cancelled"
)

// TimeDriven reports whether a degradation reason depends on wall-clock
// conditions (deadline, cancellation) rather than on the analyzed input.
// Callers that memoize analysis results must not share time-driven
// degradations across requests: a build degraded by one caller's deadline
// is not the right answer for another caller with time to spare.
func (r DegradeReason) TimeDriven() bool {
	return r == DegradeDeadline || r == DegradeCancelled
}

// MethodReport summarizes one method's analysis.
type MethodReport struct {
	Method *bytecode.Method
	// Sites and eliminations are static counts of reference-store
	// barrier sites in the method body.
	FieldSites    int
	ArraySites    int
	FieldElided   int
	ArrayElided   int
	NullOrSame    int
	Rearranged    int
	BlockVisits   int
	Converged     bool
	AbstractRefs  int
	BytecodeBytes int
	// SummaryCalls counts call sites judged with an interprocedural
	// summary in hand; FreshReturns counts the subset whose return value
	// was modeled as a fresh allocation (ReturnsFresh). Both are zero
	// unless Options.Interprocedural was set.
	SummaryCalls int
	FreshReturns int
	// Degraded records why the analysis bailed out to the conservative
	// all-barriers result (DegradeNone when it completed).
	Degraded DegradeReason
	// DegradeDetail carries diagnostic detail — for DegradePanic, the
	// recovered value and captured stack.
	DegradeDetail string
}

// analyzer is the per-method analysis engine.
type analyzer struct {
	prog  *bytecode.Program
	m     *bytecode.Method
	g     *cfg.Graph
	opts  Options
	refs  *refTable
	namer intval.Namer

	entry []*state
	seen  []bool

	// siteLenConst names the unknown allocation length of each newarray
	// site (lazily minted, stable across the fixed point).
	siteLenConst map[int]intval.ConstU

	// rt is the block-local rearrangement detector, active only during
	// the judgment pass when Options.Rearrange is set.
	rt *rearrangeTracker

	// summaries, when non-nil, refines invoke escape effects.
	summaries Summaries
	// forSummary switches the analysis into summary mode: arguments
	// start thread-local, returns escape their value, and mutations of
	// arguments are recorded.
	forSummary bool
	// dirtyArgFields collects, per argument reference, the reference
	// fields the method may write (summary mode): the complement of the
	// summary's ArgPreNullFields. intMutatedArgs collects arguments
	// whose integer fields/elements it may write.
	dirtyArgFields map[RefID]map[string]bool
	intMutatedArgs RefSet
	// contentMutated collects contents references (refArgContent) the
	// method may write through: mutating an object merely reachable from
	// an argument compromises the argument, since the caller has no
	// finer name for the affected object.
	contentMutated RefSet
	// summaryReach collects references reachable from returned values or
	// escaped objects at return points (summary mode): such arguments
	// are compromised for the caller. argStored collects, per argument
	// index, everything reachable from references the method stored into
	// that argument's fields: an argument stored into a DIFFERENT
	// argument's fields is compromised (the caller gains an untracked
	// path to it), while stores into an argument's own fields are
	// covered by the targeted dirty-field invalidation.
	summaryReach RefSet
	argStored    map[int]RefSet
	// argRefs is the set of argument and contents references (summary
	// mode), cached for the per-return freshness check.
	argRefs RefSet
	// retNotFresh records that some return statement's value failed the
	// strict freshness conditions (see checkReturnFresh); it clears the
	// summary's ReturnsFresh claim.
	retNotFresh bool

	// statSummaryCalls counts call sites judged with a summary in hand;
	// statFreshReturns counts those whose fresh return was modeled as an
	// allocation. Both are counted during the judgment pass only (each
	// reachable block exactly once), so they are deterministic.
	statSummaryCalls int
	statFreshReturns int

	// everNL accumulates every reference that enters NL in any state,
	// for the flow-insensitive-escape ablation.
	everNL RefSet

	visits    int
	maxVisits int
	// deadline is the wall-clock bail-out time (zero = none);
	// maxStateSize caps any block out-state's footprint (0 = none).
	deadline     time.Time
	maxStateSize int
	// cancel, when non-nil, is the caller context's Done channel, polled
	// at the same block-visit boundaries as the deadline.
	cancel <-chan struct{}
}

// AnalyzeMethod runs the analysis on one method, setting the Elide /
// ElideNullOrSame flags on its instructions and returning a report.
// ModeNone clears all flags and returns immediately.
//
// The analysis never takes a method (or the pipeline above it) down: a
// panic anywhere inside is recovered and converted into the conservative
// degraded result — all flags cleared, every barrier kept — with the
// recovered value and stack in the report. The same holds for methods
// exceeding the Options budgets (visit count, deadline, state size).
func AnalyzeMethod(p *bytecode.Program, m *bytecode.Method, opts Options) (*MethodReport, error) {
	return AnalyzeMethodCtx(context.Background(), p, m, opts)
}

// AnalyzeMethodCtx is AnalyzeMethod under a caller context: cancellation
// is observed at block-visit boundaries (the fixed point's only loop) and
// degrades the method soundly to the all-barriers result with reason
// DegradeCancelled — analysis is never torn down mid-judgment, so a
// cancelled request can still ship a correct, conservative program. A
// context deadline earlier than Options.Deadline tightens it.
func AnalyzeMethodCtx(ctx context.Context, p *bytecode.Program, m *bytecode.Method, opts Options) (rep *MethodReport, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep = degradedReport(p, m, DegradePanic,
				fmt.Sprintf("%v\n%s", r, debug.Stack()))
			err = nil
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return degradedReport(p, m, DegradeCancelled, cerr.Error()), nil
	}
	rep = &MethodReport{Method: m, Converged: true, BytecodeBytes: m.Size()}
	for pc := range m.Code {
		m.Code[pc].Elide = false
		m.Code[pc].ElideNullOrSame = false
		m.Code[pc].ElideRearrange = false
	}
	countSites(p, m, rep)
	if opts.Mode == ModeNone {
		return rep, nil
	}
	g, err := cfg.Build(m)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	a := &analyzer{
		prog: p, m: m, g: g, opts: opts,
		refs:         buildRefTable(p, m, opts, false),
		entry:        make([]*state, len(g.Blocks)),
		seen:         make([]bool, len(g.Blocks)),
		maxVisits:    opts.MaxBlockVisits,
		maxStateSize: opts.MaxStateSize,
	}
	if opts.Interprocedural {
		a.summaries = opts.Summaries
	}
	if a.maxVisits <= 0 {
		a.maxVisits = 200*len(g.Blocks) + 2000
	}
	if opts.Deadline > 0 {
		a.deadline = time.Now().Add(opts.Deadline)
	}
	if d, ok := ctx.Deadline(); ok && (a.deadline.IsZero() || d.Before(a.deadline)) {
		a.deadline = d
	}
	if ctx.Done() != nil {
		a.cancel = ctx.Done()
	}
	rep.AbstractRefs = a.refs.count()

	a.entry[0] = a.initialState()
	a.seen[0] = true
	if reason := a.fixpoint(); reason != DegradeNone {
		rep.Converged = false
		rep.Degraded = reason
		rep.BlockVisits = a.visits
		return rep, nil
	}
	rep.BlockVisits = a.visits
	a.judge(rep)
	return rep, nil
}

// degradedReport is the conservative bail-out result: every elision flag
// cleared (all barriers kept), sites counted, and the reason recorded.
func degradedReport(p *bytecode.Program, m *bytecode.Method, reason DegradeReason, detail string) *MethodReport {
	for pc := range m.Code {
		m.Code[pc].Elide = false
		m.Code[pc].ElideNullOrSame = false
		m.Code[pc].ElideRearrange = false
	}
	rep := &MethodReport{Method: m, BytecodeBytes: m.Size(), Degraded: reason, DegradeDetail: detail}
	countSites(p, m, rep)
	return rep
}

// countSites counts the barrier sites (reference-storing putfield and
// aastore instructions).
func countSites(p *bytecode.Program, m *bytecode.Method, rep *MethodReport) {
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Op {
		case bytecode.OpPutField:
			if ft := p.FieldType(in.Field); ft.IsRef() {
				rep.FieldSites++
			}
		case bytecode.OpAAStore:
			rep.ArraySites++
		}
	}
}

// initialState builds the method-entry state of §2.3 / §3.4.
func (a *analyzer) initialState() *state {
	s := newState(a.m.NumSlots)
	s.nl = SingletonRef(GlobalRefID)
	for i := range s.locals {
		s.locals[i] = Bottom
	}
	slot := 0
	for i := 0; i < a.m.NumArgs(); i++ {
		at := a.m.ArgType(i)
		if at.IsRef() {
			r := a.refs.argRef[i]
			s.locals[slot] = RefValue(SingletonRef(r))
			if !(a.m.Ctor && i == 0) && !a.forSummary {
				// Non-constructor reference arguments are non-thread-
				// local from the start. In summary mode they start
				// local so their genuine escapes can be observed.
				s.nl = s.nl.With(r)
			}
			if at.Kind == bytecode.KindArray {
				// Len(R_arg(i)) = fresh constant unknown (§3.4).
				s.length[r] = intval.OfConstU(a.namer.FreshConst())
			}
		} else {
			// Integer inputs become constant unknowns (§3.4).
			s.locals[slot] = IntValue(intval.OfConstU(a.namer.FreshConst()))
		}
		slot++
	}
	a.everNL = s.nl
	if a.forSummary {
		a.argRefs = EmptyRefSet
		for _, r := range a.refs.argRef {
			a.argRefs = a.argRefs.With(r)
		}
		for _, r := range a.refs.argContent {
			a.argRefs = a.argRefs.With(r)
		}
	}
	return s
}

// rpoWorklist is a priority worklist over block ids ordered by
// reverse-postorder index: pop returns the pending block earliest in RPO,
// so a block's predecessors tend to stabilize before it is re-analyzed
// (the classic iteration order for forward dataflow problems).
type rpoWorklist struct {
	prio   []int // block id -> rpo index
	heap   []int // block ids, min-heap on prio
	inWork []bool
}

func newRPOWorklist(rpoIndex []int) *rpoWorklist {
	return &rpoWorklist{prio: rpoIndex, inWork: make([]bool, len(rpoIndex))}
}

func (w *rpoWorklist) push(id int) {
	if w.inWork[id] {
		return
	}
	w.inWork[id] = true
	w.heap = append(w.heap, id)
	i := len(w.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if w.prio[w.heap[p]] <= w.prio[w.heap[i]] {
			break
		}
		w.heap[p], w.heap[i] = w.heap[i], w.heap[p]
		i = p
	}
}

func (w *rpoWorklist) pop() (int, bool) {
	if len(w.heap) == 0 {
		return 0, false
	}
	id := w.heap[0]
	last := len(w.heap) - 1
	w.heap[0] = w.heap[last]
	w.heap = w.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && w.prio[w.heap[l]] < w.prio[w.heap[min]] {
			min = l
		}
		if r < last && w.prio[w.heap[r]] < w.prio[w.heap[min]] {
			min = r
		}
		if min == i {
			break
		}
		w.heap[min], w.heap[i] = w.heap[i], w.heap[min]
		i = min
	}
	w.inWork[id] = false
	return id, true
}

// deadlineCheckInterval spaces out the wall-clock reads in the fixed
// point: one time.Now() per this many block visits.
const deadlineCheckInterval = 32

// fixpoint iterates blocks to a fixed point in RPO priority order. A
// non-DegradeNone return means a budget was exhausted and the method must
// degrade to the conservative result.
func (a *analyzer) fixpoint() DegradeReason {
	work := newRPOWorklist(a.g.RPOIndex())
	work.push(0)
	for {
		id, ok := work.pop()
		if !ok {
			return DegradeNone
		}
		a.visits++
		if a.visits > a.maxVisits {
			return DegradeVisitBudget
		}
		if a.visits%deadlineCheckInterval == 0 {
			if a.cancel != nil {
				select {
				case <-a.cancel:
					return DegradeCancelled
				default:
				}
			}
			if !a.deadline.IsZero() && time.Now().After(a.deadline) {
				return DegradeDeadline
			}
		}
		out, targets := a.simulate(a.entry[id].clone(), a.g.Blocks[id], nil)
		if a.maxStateSize > 0 && stateFootprint(out) > a.maxStateSize {
			return DegradeStateSize
		}
		a.everNL = a.everNL.Union(out.nl)
		for _, tgt := range targets {
			var changed bool
			switch {
			case !a.seen[tgt]:
				a.seen[tgt] = true
				a.entry[tgt] = out.clone()
				changed = true
			case len(a.g.Blocks[tgt].Preds) == 1:
				// A single-predecessor block's entry is exactly its
				// predecessor's out state; re-merging it with its own
				// stale entry would degrade stride variables to ⊤
				// (merging i=0 from the first pass with i=v from the
				// head's fixed point). Joins happen only at real join
				// points.
				ns := out.clone()
				changed = !statesEqual(a.entry[tgt], ns)
				a.entry[tgt] = ns
			default:
				a.entry[tgt], changed = mergeStates(a.entry[tgt], out, &a.namer, a.opts.NoStrideInference)
			}
			if changed {
				work.push(tgt)
			}
		}
	}
}

// judge performs the final pass: with fixed-point entry states, it
// re-simulates every reachable block, and the judgment hook marks sites
// ("the last such judgment (at the fixed point of the analysis) is
// correct", §2.4).
func (a *analyzer) judge(rep *MethodReport) {
	fieldElided := map[int]bool{}
	arrayElided := map[int]bool{}
	nosElided := map[int]bool{}
	rearranged := map[int]bool{}
	judgeFn := func(pc int, kind judgeKind) {
		switch kind {
		case judgeField:
			fieldElided[pc] = true
		case judgeArray:
			arrayElided[pc] = true
		case judgeNullOrSame:
			nosElided[pc] = true
		case judgeRearrange:
			rearranged[pc] = true
		}
	}
	// Visit blocks in reverse postorder so that a single-predecessor
	// block can continue its predecessor's judge-pass state and
	// rearrangement tracker: swaps routinely straddle the conditional
	// guard and its then-block, and straight-line flow preserves the
	// value identities the detector relies on.
	outs := make([]*state, len(a.g.Blocks))
	trackers := make([]*rearrangeTracker, len(a.g.Blocks))
	for _, id := range a.g.ReversePostorder() {
		if !a.seen[id] {
			continue
		}
		var st *state
		a.rt = nil
		if preds := a.g.Blocks[id].Preds; len(preds) == 1 && outs[preds[0]] != nil {
			st = outs[preds[0]].clone()
			if a.opts.Rearrange && trackers[preds[0]] != nil {
				a.rt = trackers[preds[0]].fork()
			}
		} else {
			st = a.entry[id].clone()
		}
		if a.opts.Rearrange && a.rt == nil {
			a.rt = newRearrangeTracker()
		}
		out, _ := a.simulate(st, a.g.Blocks[id], judgeFn)
		outs[id] = out
		if a.rt != nil {
			a.rt.detectSwaps(judgeFn)
			trackers[id] = a.rt
			a.rt = nil
		}
	}
	for pc := range fieldElided {
		a.m.Code[pc].Elide = true
		rep.FieldElided++
	}
	if a.opts.Mode == ModeFieldArray {
		for pc := range arrayElided {
			a.m.Code[pc].Elide = true
			rep.ArrayElided++
		}
	}
	if a.opts.NullOrSame {
		for pc := range nosElided {
			if !a.m.Code[pc].Elide {
				a.m.Code[pc].ElideNullOrSame = true
				rep.NullOrSame++
			}
		}
	}
	if a.opts.Rearrange {
		for pc := range rearranged {
			in := &a.m.Code[pc]
			if !in.Elide && !in.ElideNullOrSame {
				in.ElideRearrange = true
				rep.Rearranged++
			}
		}
	}
	rep.SummaryCalls = a.statSummaryCalls
	rep.FreshReturns = a.statFreshReturns
}

// stateFootprint measures an abstract state's retained map entries — the
// quantity MaxStateSize bounds.
func stateFootprint(s *state) int {
	return len(s.sigma) + len(s.length) + len(s.nr)
}

// judgeKind distinguishes the three elision judgments.
type judgeKind int

const (
	judgeField judgeKind = iota
	judgeArray
	judgeNullOrSame
	judgeRearrange
)

// buildGraph wraps cfg.Build for use by the summary computation.
func buildGraph(m *bytecode.Method) (*cfg.Graph, error) { return cfg.Build(m) }

// contentRef resolves the contents reference a summary-mode read of an
// untracked field of r yields: the argument's contents reference for a
// non-unique argument, r itself for contents (deep reads stay contents),
// nothing otherwise. A constructor's unique receiver keeps the plain
// allocation defaults — its fields genuinely start null.
func (a *analyzer) contentRef(r RefID) (RefID, bool) {
	info := a.refs.info(r)
	switch info.kind {
	case refArg:
		if info.unique {
			return 0, false
		}
		cr, ok := a.refs.argContent[info.arg]
		return cr, ok
	case refArgContent:
		return r, true
	}
	return 0, false
}

// sigmaDefault is the value an absent σ entry denotes for a field of r:
// the allocation default (null / 0) — except in summary mode for
// non-unique arguments and contents references, whose untracked fields
// hold unknown caller-provided values (the contents reference for
// reference fields, ⊤ for integers). Without the contents abstraction a
// callee could read arg.f, publish it, and the summary would never learn
// that the argument's reachable objects escaped.
func (a *analyzer) sigmaDefault(r RefID, wantInt bool) Value {
	if a.forSummary {
		if cr, ok := a.contentRef(r); ok {
			if wantInt {
				return TopInt()
			}
			return RefValue(SingletonRef(cr))
		}
	}
	if wantInt {
		return IntValue(intval.Const(0))
	}
	return NullValue()
}

// fieldValue is lookup(σ, r, NL, f) honoring the summary-mode contents
// abstraction for absent entries.
func (a *analyzer) fieldValue(s *state, r RefID, field string, wantInt bool) Value {
	if a.forSummary && !s.nl.Has(r) {
		if _, ok := a.contentRef(r); ok {
			if _, has := s.sigma[sigKey{ref: r, field: field}]; !has {
				return a.sigmaDefault(r, wantInt)
			}
		}
	}
	return s.lookup(r, field, wantInt)
}

// markDirtyField records, in summary mode, a reference-field write
// against its targets: a direct write to an argument dirties that field
// of the argument (the caller invalidates just that σ fact), while a
// write through the argument's contents compromises the whole argument —
// the caller has no finer name for the written object.
func (a *analyzer) markDirtyField(targets RefSet, field string) {
	if !a.forSummary {
		return
	}
	targets.ForEach(func(r RefID) {
		switch a.refs.info(r).kind {
		case refArg:
			m := a.dirtyArgFields[r]
			if m == nil {
				if a.dirtyArgFields == nil {
					a.dirtyArgFields = map[RefID]map[string]bool{}
				}
				m = map[string]bool{}
				a.dirtyArgFields[r] = m
			}
			m[field] = true
		case refArgContent:
			a.contentMutated = a.contentMutated.With(r)
		}
	})
}

// markIntMutated records integer-field/element writes: against an
// argument it taints only the caller's integer facts, but a write
// through contents compromises the argument (the caller's integer facts
// about reachable objects have no per-object taint channel).
func (a *analyzer) markIntMutated(targets RefSet) {
	targets.ForEach(func(r RefID) {
		switch a.refs.info(r).kind {
		case refArg:
			a.intMutatedArgs = a.intMutatedArgs.With(r)
		case refArgContent:
			a.contentMutated = a.contentMutated.With(r)
		}
	})
}

// markIntMutatedIf conditionally records scalar mutation.
func (a *analyzer) markIntMutatedIf(cond bool, targets RefSet) {
	if cond {
		a.markIntMutated(targets)
	}
}

// invalidateField drops the caller's σ facts about one callee-written
// reference field of the passed argument's referents: the entry joins
// with {GlobalRef} ("possibly rewritten with something unknown"), and a
// dirtied $elems additionally kills the null-range facts the array
// analysis relies on. Thread-locality of the referents survives — that
// is the point of the summary.
func (a *analyzer) invalidateField(s *state, targets RefSet, field string) {
	targets.ForEach(func(r RefID) {
		if s.nl.Has(r) {
			return // lookups on escaped references are already ⊤
		}
		k := sigKey{ref: r, field: field}
		old, ok := s.sigma[k]
		if !ok {
			old = a.sigmaDefault(r, false)
		}
		s.mutableSigma()[k] = weakMergeValue(old, RefValue(SingletonRef(GlobalRefID)))
		if field == elemsField {
			s.delNR(r)
		}
	})
}

// pushCallResult models the call's return value. A reference return
// whose callee summary proves ReturnsFresh is modeled like an allocation
// site: the call-site A name is renamed into its B summary, reset to
// thread-local with null reference fields, and pushed — except its
// integer fields are tainted, since the callee may have initialized
// them. Anything else returns the unknown {GlobalRef} / ⊤.
func (a *analyzer) pushCallResult(s *state, pc int, callee *bytecode.Method, sum *MethodSummary, judging bool) {
	if callee.Return == bytecode.Void {
		return
	}
	if !callee.Return.IsRef() {
		s.push(TopInt())
		return
	}
	if sum != nil && sum.ReturnsFresh {
		if ra, ok := a.refs.callA[pc]; ok {
			if judging {
				a.statFreshReturns++
			}
			rb := a.refs.callB[pc]
			if !a.opts.UnsoundSkipBDemotion {
				s.renameAlloc(ra, rb)
			}
			s.intTainted = s.intTainted.With(ra)
			if !a.opts.SingleRefPerSite {
				// Mirror OpNewInstance: fresh A name with the σ defaults
				// (all reference fields null per the freshness proof).
				s.clearSigmaRef(ra)
				s.nl = s.nl.Without(ra)
				s.delLength(ra)
				s.delNR(ra)
			}
			s.push(RefValue(SingletonRef(ra)))
			return
		}
	}
	s.push(RefValue(SingletonRef(GlobalRefID)))
}

// recordSummaryReturn accumulates, at a return point, every reference a
// caller (or another thread) could reach afterwards: escaped references
// and the returned value feed summaryReach (compromising), while
// references stored into an argument's fields feed that argument's
// argStored set — they compromise only the OTHER arguments found there.
// It also applies the strict freshness test to the returned value.
func (a *analyzer) recordSummaryReturn(s *state, hasValue bool) {
	set := s.nl
	if hasValue {
		top := s.stack[len(s.stack)-1]
		if top.IsRefs() {
			set = set.Union(top.Refs())
			a.checkReturnFresh(s, top.Refs())
		}
	}
	a.summaryReach = a.summaryReach.Union(s.reachFrom(set))
	for k, v := range s.sigma {
		info := a.refs.info(k.ref)
		if info.kind != refArg || !v.IsRefs() {
			continue
		}
		if a.argStored == nil {
			a.argStored = map[int]RefSet{}
		}
		a.argStored[info.arg] = a.argStored[info.arg].Union(s.reachFrom(v.Refs()))
	}
}

// storedInOtherArg reports whether reference r (an argument or its
// contents, belonging to argument i) was stored into some other
// argument's fields — an untracked caller-visible alias.
func (a *analyzer) storedInOtherArg(i int, r RefID) bool {
	for j, set := range a.argStored {
		if j != i && set.Has(r) {
			return true
		}
	}
	return false
}

// checkReturnFresh tests the strict ReturnsFresh conditions on one
// return statement's value, clearing the claim when any fails: every
// possible returned object must be an allocation of this method (or a
// callee's fresh return), never escaped, unreachable from any argument
// or its contents, and have every reference field still null — the
// caller will model the call site exactly like an allocation site, so
// any non-null field or caller-visible alias would mint unsound pre-null
// facts. Returning a definite null is trivially fresh.
func (a *analyzer) checkReturnFresh(s *state, refs RefSet) {
	if a.retNotFresh || refs.IsEmpty() {
		return
	}
	argReach := s.reachFrom(a.argRefs)
	ok := true
	refs.ForEach(func(r RefID) {
		switch a.refs.info(r).kind {
		case refAllocA, refAllocB, refCallA, refCallB:
		default:
			ok = false
			return
		}
		if s.nl.Has(r) || argReach.Has(r) {
			ok = false
		}
	})
	if ok {
		for k, v := range s.sigma {
			if refs.Has(k.ref) && v.kind == vRefs && !v.refs.IsEmpty() {
				ok = false
				break
			}
		}
	}
	if !ok {
		a.retNotFresh = true
	}
}

// siteLen returns the stable length symbol for a newarray site.
func (a *analyzer) siteLen(pc int) intval.ConstU {
	if a.siteLenConst == nil {
		a.siteLenConst = map[int]intval.ConstU{}
	}
	c, ok := a.siteLenConst[pc]
	if !ok {
		c = a.namer.FreshConst()
		a.siteLenConst[pc] = c
	}
	return c
}

// isNonLocal consults NL, or everNL under the flow-insensitive ablation.
func (a *analyzer) isNonLocal(s *state, r RefID) bool {
	if a.opts.FlowInsensitiveEscape {
		return a.everNL.Has(r)
	}
	return s.nl.Has(r)
}

// trackArrays reports whether Len/NR bookkeeping is active.
func (a *analyzer) trackArrays() bool { return a.opts.Mode == ModeFieldArray }

// simulate interprets one block from the given state. judgeFn, when
// non-nil, receives the elision judgment for each barrier site traversed.
// It returns the out state and successor block ids.
func (a *analyzer) simulate(s *state, b *cfg.Block, judgeFn func(pc int, kind judgeKind)) (*state, []int) {
	var targets []int
	for pc := b.Start; pc < b.End; pc++ {
		in := &a.m.Code[pc]
		switch in.Op {
		case bytecode.OpNop:
		case bytecode.OpConst, bytecode.OpConstBool:
			s.push(IntValue(intval.Const(in.A)))
		case bytecode.OpConstNull:
			s.push(NullValue())
		case bytecode.OpLoad:
			v := s.locals[in.A]
			if v.IsBottom() {
				// Read of a never-written slot (possible only in
				// unverified code): conservative default by slot type.
				if a.m.SlotTypes[in.A].IsRef() {
					v = RefValue(SingletonRef(GlobalRefID))
				} else {
					v = TopInt()
				}
			}
			if a.rt != nil {
				if v.kind == vInt && v.iv.IsTop() {
					// Freshen the unknown local to a stable per-slot
					// symbol so index expressions stay comparable.
					v = IntValue(a.rt.loadSlotInt(int(in.A), &a.namer))
				} else if v.kind == vRefs {
					v.vn = a.rt.loadSlotRef(int(in.A))
				}
			}
			s.push(v)
		case bytecode.OpStore:
			s.mutableLocals()[in.A] = s.pop()
			if a.rt != nil {
				a.rt.killSlot(int(in.A))
			}
		case bytecode.OpDup:
			s.push(s.stack[len(s.stack)-1])
		case bytecode.OpPop:
			s.pop()
		case bytecode.OpAdd:
			y, x := s.pop(), s.pop()
			s.push(IntValue(x.Int().Add(y.Int())))
		case bytecode.OpSub:
			y, x := s.pop(), s.pop()
			s.push(IntValue(x.Int().Sub(y.Int())))
		case bytecode.OpMul:
			y, x := s.pop(), s.pop()
			s.push(IntValue(x.Int().Mul(y.Int())))
		case bytecode.OpNeg:
			s.push(IntValue(s.pop().Int().Neg()))
		case bytecode.OpDiv, bytecode.OpRem:
			s.pop()
			s.pop()
			s.push(TopInt())
		case bytecode.OpAnd, bytecode.OpOr,
			bytecode.OpCmpEQ, bytecode.OpCmpNE, bytecode.OpCmpLT, bytecode.OpCmpLE,
			bytecode.OpCmpGT, bytecode.OpCmpGE, bytecode.OpRefEQ, bytecode.OpRefNE:
			s.pop()
			s.pop()
			s.push(TopInt())
		case bytecode.OpNot:
			s.pop()
			s.push(TopInt())

		case bytecode.OpGoto:
			return s, []int{a.g.BlockOf(int(in.A))}
		case bytecode.OpIfTrue, bytecode.OpIfFalse:
			s.pop()
			targets = append(targets, a.g.BlockOf(int(in.A)))
		case bytecode.OpIfNull, bytecode.OpIfNonNull:
			s.pop()
			targets = append(targets, a.g.BlockOf(int(in.A)))

		case bytecode.OpGetStatic:
			ft := a.prog.FieldType(in.Field)
			if ft.IsRef() {
				v := RefValue(SingletonRef(GlobalRefID))
				if a.rt != nil {
					v.vn = a.rt.loadStaticRef(in.Field.String())
				}
				s.push(v)
			} else {
				s.push(TopInt())
			}
		case bytecode.OpPutStatic:
			val := s.pop()
			// Values stored into statics escape (AllNonTL).
			s.escapeValue(val)
			if a.opts.NullOrSame {
				s.dropSrcsForField(in.Field.String())
			}
			if a.rt != nil {
				a.rt.killStatic(in.Field.String())
			}

		case bytecode.OpGetField:
			obj := s.pop()
			ft := a.prog.FieldType(in.Field)
			field := in.Field.String()
			wantInt := !ft.IsRef()
			var out Value
			first := true
			obj.Refs().ForEach(func(r RefID) {
				v := a.fieldValue(s, r, field, wantInt)
				if first {
					out = v
					first = false
				} else {
					out = weakMergeValue(out, v)
				}
			})
			if first { // obj definitely null: unreachable past the NPE
				if wantInt {
					out = TopInt()
				} else {
					out = NullValue()
				}
			}
			// Null-or-same provenance: a value loaded from (r, f) is
			// trivially "null or the current content of (r, f)".
			if a.opts.NullOrSame && !wantInt {
				if r, one := obj.Refs().Single(); one {
					out = out.withSrcs(singletonSrc(srcKey{ref: r, field: field}))
				}
			}
			s.push(out)

		case bytecode.OpPutField:
			val := s.pop()
			obj := s.pop()
			ft := a.prog.FieldType(in.Field)
			field := in.Field.String()
			if judgeFn != nil && ft.IsRef() {
				a.judgeFieldStore(s, pc, obj.Refs(), field, val, judgeFn)
			}
			if a.forSummary {
				if ft.IsRef() {
					a.markDirtyField(obj.Refs(), field)
				} else {
					a.markIntMutated(obj.Refs())
				}
			}
			// Strong update for a singleton unique reference, weak
			// otherwise (§2.4).
			if r, one := obj.Refs().Single(); one && a.refs.unique(r) {
				s.mutableSigma()[sigKey{ref: r, field: field}] = val
			} else {
				obj.Refs().ForEach(func(r RefID) {
					k := sigKey{ref: r, field: field}
					old, ok := s.sigma[k]
					if !ok {
						old = a.sigmaDefault(r, !ft.IsRef())
					}
					s.mutableSigma()[k] = weakMergeValue(old, val)
				})
			}
			if a.opts.NullOrSame {
				s.dropSrcsForField(field)
			}
			s.escapeCond(obj.Refs(), val)

		case bytecode.OpNewInstance:
			ra := a.refs.allocA[pc]
			rb := a.refs.allocB[pc]
			if !a.opts.UnsoundSkipBDemotion {
				s.renameAlloc(ra, rb)
			}
			if a.opts.SingleRefPerSite {
				// Weak semantics: the site's fields merge with null
				// (no-op for absent entries) rather than resetting.
				s.push(RefValue(SingletonRef(ra)))
				break
			}
			// Fresh A name: the allocator zeroed the fields, which is
			// exactly the σ default, so clearing any stale entries
			// suffices.
			s.clearSigmaRef(ra)
			s.nl = s.nl.Without(ra)
			s.intTainted = s.intTainted.Without(ra)
			s.push(RefValue(SingletonRef(ra)))

		case bytecode.OpNewArray:
			n := s.pop().Int()
			ra := a.refs.allocA[pc]
			rb := a.refs.allocB[pc]
			if !a.opts.UnsoundSkipBDemotion {
				s.renameAlloc(ra, rb)
			}
			// The summary B inherits no length/range facts: its members'
			// lengths differ across the site's executions.
			s.delLength(rb)
			s.delNR(rb)
			if !a.opts.SingleRefPerSite {
				s.clearSigmaRef(ra)
				s.nl = s.nl.Without(ra)
				s.intTainted = s.intTainted.Without(ra)
				s.delLength(ra)
				s.delNR(ra)
				if a.trackArrays() {
					if n.IsTop() {
						// Unknown allocation length: name it with the
						// site's length symbol. Within one window (until
						// the next allocation here renames R_A) the most
						// recent array's length is a fixed value, which
						// is all the in-window judgments rely on.
						n = intval.OfConstU(a.siteLen(pc))
					}
					s.mutableLength()[ra] = n
					if in.Type.IsRef() {
						// NR(R_A) = [0 .. n-1] (§3.3).
						s.mutableNR()[ra] = intval.Full(intval.Const(0), n.Sub(intval.Const(1)))
					}
				}
			}
			s.push(RefValue(SingletonRef(ra)))

		case bytecode.OpArrayLength:
			arr := s.pop()
			out := intval.Top
			first := true
			arr.Refs().ForEach(func(r RefID) {
				l, ok := s.length[r]
				if !ok {
					l = intval.Top
				}
				if first {
					out = l
					first = false
				} else {
					out = intval.Merge(out, l, nil)
				}
			})
			s.push(IntValue(out))

		case bytecode.OpAALoad:
			ind := s.pop().Int()
			arr := s.pop()
			var out Value
			first := true
			arr.Refs().ForEach(func(r RefID) {
				v := a.fieldValue(s, r, elemsField, false)
				if first {
					out = v
					first = false
				} else {
					out = weakMergeValue(out, v)
				}
			})
			if first {
				out = NullValue()
			}
			if a.rt != nil {
				out.eprov = &elemProv{arrVN: arr.vn, arr: arr.Refs(), idx: ind, seq: a.rt.tick()}
			}
			s.push(out)

		case bytecode.OpAAStore:
			val := s.pop()
			ind := s.pop().Int()
			arr := s.pop()
			if judgeFn != nil {
				a.judgeArrayStore(s, pc, arr.Refs(), ind, judgeFn)
			}
			if a.rt != nil {
				a.rt.recordStore(pc, arr.vn, arr.Refs(), ind, val.eprov)
			}
			if a.forSummary {
				a.markDirtyField(arr.Refs(), elemsField)
			}
			arr.Refs().ForEach(func(r RefID) {
				k := sigKey{ref: r, field: elemsField}
				old, ok := s.sigma[k]
				if !ok {
					old = a.sigmaDefault(r, false)
				}
				s.mutableSigma()[k] = weakMergeValue(old, val)
				if a.trackArrays() {
					if rng, ok := s.nr[r]; ok {
						nr := rng.Contract(ind)
						if nr.IsEmpty() {
							s.delNR(r)
						} else {
							s.mutableNR()[r] = nr
						}
					}
				}
			})
			s.escapeCond(arr.Refs(), val)

		case bytecode.OpIALoad:
			s.pop()
			s.pop()
			s.push(TopInt())
		case bytecode.OpIAStore:
			s.pop()
			s.pop()
			arr := s.pop()
			if a.forSummary {
				a.markIntMutated(arr.Refs())
			}

		case bytecode.OpInvoke:
			callee := a.prog.Method(in.Method)
			n := callee.NumArgs()
			args := make([]Value, n)
			for i := n - 1; i >= 0; i-- {
				args[i] = s.pop()
			}
			// Passed references escape: nAllNonTL (§2.4) — unless an
			// interprocedural summary proves the callee neither
			// publishes nor mutates the argument.
			var sum *MethodSummary
			if a.summaries != nil {
				sum = a.summaries[in.Method]
			}
			if judgeFn != nil && sum != nil {
				a.statSummaryCalls++
			}
			for i, v := range args {
				if sum != nil && i < len(sum.ArgCompromised) && !sum.ArgCompromised[i] {
					if v.IsRefs() {
						// The argument stays thread-local; if the callee
						// may write its scalar fields, the caller forgets
						// its integer facts about it, and the caller's σ
						// facts die for exactly the reference fields the
						// callee may write (the non-pre-null ones).
						if sum.ArgIntMutated[i] {
							s.intTainted = s.intTainted.Union(v.Refs())
						}
						dirty := dirtyRefFields(a.prog, callee, sum, i)
						for _, f := range dirty {
							a.invalidateField(s, v.Refs(), f)
						}
						if a.forSummary {
							// Propagate mutation effects transitively in
							// summary mode.
							a.markIntMutatedIf(sum.ArgIntMutated[i], v.Refs())
							for _, f := range dirty {
								a.markDirtyField(v.Refs(), f)
							}
						}
					}
					continue
				}
				s.escapeValue(v)
			}
			if a.opts.NullOrSame {
				// The callee may write any field of any escaped object.
				s.dropAllSrcs()
			}
			if a.rt != nil {
				a.rt.clobber()
			}
			a.pushCallResult(s, pc, callee, sum, judgeFn != nil)

		case bytecode.OpSpawn:
			recv := s.pop()
			s.escapeValue(recv)
			if a.opts.NullOrSame {
				s.dropAllSrcs()
			}
			if a.rt != nil {
				a.rt.clobber()
			}

		case bytecode.OpPrint:
			s.pop()

		case bytecode.OpReturn, bytecode.OpReturnValue, bytecode.OpTrap:
			if a.forSummary && in.Op != bytecode.OpTrap {
				a.recordSummaryReturn(s, in.Op == bytecode.OpReturnValue)
			}
			return s, targets
		}
	}
	targets = append(targets, a.g.BlockOf(b.End))
	return s, targets
}

// judgeFieldStore evaluates the putfield elision judgments (§2.4 pre-null
// and §4.3 null-or-same) in the pre-instruction state.
func (a *analyzer) judgeFieldStore(s *state, pc int, obj RefSet, field string, val Value, judgeFn func(int, judgeKind)) {
	preNull := true
	obj.ForEach(func(r RefID) {
		if a.isNonLocal(s, r) || !s.fieldIsNull(r, field) {
			preNull = false
		}
	})
	if preNull {
		judgeFn(pc, judgeField)
		return
	}
	if !a.opts.NullOrSame {
		return
	}
	nos := true
	obj.ForEach(func(r RefID) {
		if a.isNonLocal(s, r) {
			nos = false
			return
		}
		if s.fieldIsNull(r, field) {
			return // overwrites null for this target
		}
		if val.srcs.has(srcKey{ref: r, field: field}) {
			return // rewrites the value already present
		}
		nos = false
	})
	if nos {
		judgeFn(pc, judgeNullOrSame)
	}
}

// judgeArrayStore evaluates the aastore elision judgment: every possible
// array is thread-local and the index lies in its known-null range.
func (a *analyzer) judgeArrayStore(s *state, pc int, arr RefSet, ind intval.IntVal, judgeFn func(int, judgeKind)) {
	if !a.trackArrays() {
		return
	}
	ok := true
	arr.ForEach(func(r RefID) {
		if a.isNonLocal(s, r) {
			ok = false
			return
		}
		rng, has := s.nr[r]
		if !has || !rng.Covers(ind) {
			ok = false
		}
	})
	if ok {
		judgeFn(pc, judgeArray)
	}
}
