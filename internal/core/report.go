package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"satbelim/internal/bytecode"
	"satbelim/internal/obs"
)

// ProgramReport aggregates per-method analysis reports.
type ProgramReport struct {
	Methods []*MethodReport
	// AnalysisTime is the wall-clock time spent in AnalyzeMethod across
	// the program (the paper's §4.4 compile-time metric).
	AnalysisTime time.Duration
}

// AnalyzeProgram analyzes every method of the program in place, setting
// barrier-elision flags on instructions. Methods are fanned across
// GOMAXPROCS goroutines; use AnalyzeProgramParallel to pick the width.
func AnalyzeProgram(p *bytecode.Program, opts Options) (*ProgramReport, error) {
	return AnalyzeProgramParallel(p, opts, 0)
}

// AnalyzeProgramParallel is AnalyzeProgram with an explicit worker count
// (<= 0 means GOMAXPROCS). The analysis is intra-procedural after
// inlining, so methods are independent: each worker claims methods off a
// shared counter, and reports land in p.Methods() order regardless of
// completion order — the report and the Elide bits set on instructions
// are bit-identical to a sequential run. Interprocedural summaries, when
// requested, are computed up front over the condensed callgraph
// (bottom-up SCC order, independent components in parallel; see
// callgraph.go) and are read-only during the fan-out.
func AnalyzeProgramParallel(p *bytecode.Program, opts Options, workers int) (*ProgramReport, error) {
	return AnalyzeProgramCtx(context.Background(), p, opts, workers)
}

// AnalyzeProgramCtx is AnalyzeProgramParallel under a caller context:
// each method's analysis observes cancellation at block-visit boundaries
// and degrades soundly (DegradeCancelled) rather than erroring, so a
// cancelled compile still yields a correct all-barriers program whose
// report says exactly which methods were cut short.
func AnalyzeProgramCtx(ctx context.Context, p *bytecode.Program, opts Options, workers int) (*ProgramReport, error) {
	rep := &ProgramReport{}
	start := time.Now()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Interprocedural && opts.Summaries == nil {
		sums, err := ComputeSummariesParallel(p, opts, workers)
		if err != nil {
			return nil, fmt.Errorf("summaries: %w", err)
		}
		opts.Summaries = sums
	}
	methods := p.Methods()
	if workers > len(methods) {
		workers = len(methods)
	}
	reps := make([]*MethodReport, len(methods))
	errs := make([]error, len(methods))
	if workers <= 1 {
		lane := analysisLane(0)
		for i, m := range methods {
			reps[i], errs[i] = analyzeMethodTraced(ctx, p, m, opts, lane)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lane := analysisLane(w)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(methods) {
						return
					}
					reps[i], errs[i] = analyzeMethodTraced(ctx, p, methods[i], opts, lane)
				}
			}(w)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			// First failing method in program order, so the reported
			// error does not depend on scheduling.
			return nil, fmt.Errorf("%s: %w", methods[i].QualifiedName(), err)
		}
	}
	rep.Methods = reps
	rep.AnalysisTime = time.Since(start)
	return rep, nil
}

// analysisLane names a worker's observability lane ("" when tracing is
// disabled, so the disabled path never formats a string).
func analysisLane(worker int) string {
	if !obs.Enabled() {
		return ""
	}
	return fmt.Sprintf("analysis/w%d", worker)
}

// analyzeMethodTraced wraps AnalyzeMethod with a per-method span on the
// worker's lane, carrying the fixpoint stats (block visits, convergence,
// degradation events) the §4.4 measurements care about. Tracing observes
// only: results are bit-identical with and without it.
func analyzeMethodTraced(ctx context.Context, p *bytecode.Program, m *bytecode.Method, opts Options, lane string) (*MethodReport, error) {
	if lane == "" || !obs.Enabled() {
		return AnalyzeMethodCtx(ctx, p, m, opts)
	}
	sp := obs.StartSpan(lane, "analysis", m.QualifiedName())
	rep, err := AnalyzeMethodCtx(ctx, p, m, opts)
	if rep == nil {
		sp.End()
		return rep, err
	}
	sp.EndArgs(
		obs.KV{K: "block_visits", V: int64(rep.BlockVisits)},
		obs.KV{K: "converged", V: b2i(rep.Converged)},
		obs.KV{K: "degraded", S: string(rep.Degraded)},
	)
	obs.Count("analysis.methods", 1)
	obs.Count("analysis.block_visits", int64(rep.BlockVisits))
	if rep.Degraded != DegradeNone {
		obs.Count("analysis.degraded", 1)
	}
	return rep, err
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// BlockVisits sums the fixed-point block visits across methods — the
// worklist-scheduling cost metric (RPO ordering exists to shrink it).
func (r *ProgramReport) BlockVisits() int {
	n := 0
	for _, m := range r.Methods {
		n += m.BlockVisits
	}
	return n
}

// Degraded returns the methods whose analysis bailed out to the
// conservative all-barriers result, in program order.
func (r *ProgramReport) Degraded() []*MethodReport {
	var out []*MethodReport
	for _, m := range r.Methods {
		if m.Degraded != DegradeNone {
			out = append(out, m)
		}
	}
	return out
}

// Totals sums the static site counts.
func (r *ProgramReport) Totals() (fieldSites, arraySites, fieldElided, arrayElided, nullOrSame int) {
	for _, m := range r.Methods {
		fieldSites += m.FieldSites
		arraySites += m.ArraySites
		fieldElided += m.FieldElided
		arrayElided += m.ArrayElided
		nullOrSame += m.NullOrSame
	}
	return
}

// String renders a static-elimination summary.
func (r *ProgramReport) String() string {
	fs, as, fe, ae, nos := r.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "static barrier sites: %d field, %d array\n", fs, as)
	fmt.Fprintf(&b, "statically elided:    %d field (%.1f%%), %d array (%.1f%%)",
		fe, pct(fe, fs), ae, pct(ae, as))
	if nos > 0 {
		fmt.Fprintf(&b, ", %d null-or-same", nos)
	}
	fmt.Fprintf(&b, "\nanalysis time: %v (%d block visits)\n", r.AnalysisTime, r.BlockVisits())
	var nc []string
	for _, m := range r.Methods {
		switch {
		case m.Degraded != DegradeNone:
			nc = append(nc, fmt.Sprintf("%s (%s)", m.Method.QualifiedName(), m.Degraded))
		case !m.Converged:
			nc = append(nc, m.Method.QualifiedName())
		}
	}
	if len(nc) > 0 {
		sort.Strings(nc)
		fmt.Fprintf(&b, "degraded to all-barriers: %s\n", strings.Join(nc, ", "))
	}
	return b.String()
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
