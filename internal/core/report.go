package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"satbelim/internal/bytecode"
)

// ProgramReport aggregates per-method analysis reports.
type ProgramReport struct {
	Methods []*MethodReport
	// AnalysisTime is the wall-clock time spent in AnalyzeMethod across
	// the program (the paper's §4.4 compile-time metric).
	AnalysisTime time.Duration
}

// AnalyzeProgram analyzes every method of the program in place, setting
// barrier-elision flags on instructions.
func AnalyzeProgram(p *bytecode.Program, opts Options) (*ProgramReport, error) {
	rep := &ProgramReport{}
	start := time.Now()
	if opts.Interprocedural && opts.Summaries == nil {
		sums, err := ComputeSummaries(p, opts)
		if err != nil {
			return nil, fmt.Errorf("summaries: %w", err)
		}
		opts.Summaries = sums
	}
	for _, m := range p.Methods() {
		mr, err := AnalyzeMethod(p, m, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.QualifiedName(), err)
		}
		rep.Methods = append(rep.Methods, mr)
	}
	rep.AnalysisTime = time.Since(start)
	return rep, nil
}

// Totals sums the static site counts.
func (r *ProgramReport) Totals() (fieldSites, arraySites, fieldElided, arrayElided, nullOrSame int) {
	for _, m := range r.Methods {
		fieldSites += m.FieldSites
		arraySites += m.ArraySites
		fieldElided += m.FieldElided
		arrayElided += m.ArrayElided
		nullOrSame += m.NullOrSame
	}
	return
}

// String renders a static-elimination summary.
func (r *ProgramReport) String() string {
	fs, as, fe, ae, nos := r.Totals()
	var b strings.Builder
	fmt.Fprintf(&b, "static barrier sites: %d field, %d array\n", fs, as)
	fmt.Fprintf(&b, "statically elided:    %d field (%.1f%%), %d array (%.1f%%)",
		fe, pct(fe, fs), ae, pct(ae, as))
	if nos > 0 {
		fmt.Fprintf(&b, ", %d null-or-same", nos)
	}
	fmt.Fprintf(&b, "\nanalysis time: %v\n", r.AnalysisTime)
	var nc []string
	for _, m := range r.Methods {
		if !m.Converged {
			nc = append(nc, m.Method.QualifiedName())
		}
	}
	if len(nc) > 0 {
		sort.Strings(nc)
		fmt.Fprintf(&b, "did not converge (left unannotated): %s\n", strings.Join(nc, ", "))
	}
	return b.String()
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
