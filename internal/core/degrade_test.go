package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"satbelim/internal/bytecode"
)

// loopSrc has a genuine fixed point (a loop) so budgets can bite.
const loopSrc = `
class N { N next; }
class A {
    static void main() {
        for (int i = 0; i < 10; i = i + 1) {
            N n = new N();
            n.next = new N();
        }
    }
}
`

// noElisions asserts every elision flag on every method is clear.
func noElisions(t *testing.T, p *bytecode.Program) {
	t.Helper()
	for _, m := range p.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Elide || in.ElideNullOrSame || in.ElideRearrange {
				t.Errorf("%s pc %d: elision flag survived degradation", m.QualifiedName(), pc)
			}
		}
	}
}

func TestVisitBudgetDegradesConservatively(t *testing.T) {
	p, rep := analyzeSrc(t, loopSrc, 100, Options{Mode: ModeFieldArray, MaxBlockVisits: 1})
	main := rep.Methods[len(rep.Methods)-1]
	for _, m := range rep.Methods {
		if m.Method.Name == "main" {
			main = m
		}
	}
	if main.Degraded != DegradeVisitBudget {
		t.Fatalf("main Degraded = %q, want %q", main.Degraded, DegradeVisitBudget)
	}
	if main.Converged {
		t.Error("degraded method still reports Converged")
	}
	if main.FieldSites == 0 {
		t.Error("degraded report should still count barrier sites")
	}
	noElisions(t, p)
	if len(rep.Degraded()) == 0 {
		t.Error("ProgramReport.Degraded() should list the method")
	}
	if !strings.Contains(rep.String(), "degraded to all-barriers") {
		t.Errorf("report rendering should mention degradation:\n%s", rep)
	}
}

func TestStateSizeBudgetDegrades(t *testing.T) {
	_, rep := analyzeSrc(t, loopSrc, 100, Options{Mode: ModeFieldArray, MaxStateSize: 1})
	found := false
	for _, m := range rep.Methods {
		if m.Degraded == DegradeStateSize {
			found = true
		}
	}
	if !found {
		t.Fatal("no method degraded under MaxStateSize=1")
	}
}

func TestDeadlineDegrades(t *testing.T) {
	// Enough branching that the fixed point exceeds the deadline-check
	// interval, so the expired 1ns deadline is observed.
	var b strings.Builder
	b.WriteString("class N { N next; }\nclass A {\n    static void main() {\n        N n = new N();\n        int s = 0;\n")
	for i := 0; i < 2*deadlineCheckInterval; i++ {
		fmt.Fprintf(&b, "        if (s < %d) { s = s + 1; n.next = new N(); }\n", i)
	}
	b.WriteString("        print(s);\n    }\n}\n")
	_, rep := analyzeSrc(t, b.String(), 0, Options{Mode: ModeFieldArray, Deadline: time.Nanosecond})
	found := false
	for _, m := range rep.Methods {
		if m.Degraded == DegradeDeadline {
			found = true
		}
	}
	if !found {
		t.Fatal("no method degraded under a 1ns deadline")
	}
}

func TestPanicDegradesConservatively(t *testing.T) {
	// An invoke of an unresolved method panics inside simulate (nil
	// callee). Unverified programs are the only way to reach this; the
	// analysis must degrade the method, not take the pipeline down.
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "boom", true)
	b.Invoke(bytecode.MethodRef{Class: "X", Name: "nope"})
	b.Return()
	m := b.Build()
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)

	rep, err := AnalyzeMethod(p, m, Options{Mode: ModeFieldArray})
	if err != nil {
		t.Fatalf("panic should degrade, not error: %v", err)
	}
	if rep.Degraded != DegradePanic {
		t.Fatalf("Degraded = %q, want %q", rep.Degraded, DegradePanic)
	}
	if !strings.Contains(rep.DegradeDetail, "goroutine") && !strings.Contains(rep.DegradeDetail, ".go:") {
		t.Errorf("DegradeDetail should carry a captured stack, got %q", rep.DegradeDetail)
	}
	noElisions(t, p)
}

// TestGenerousBudgetsChangeNothing: budgets far above what the program
// needs must leave the analysis result bit-identical to no budgets.
func TestGenerousBudgetsChangeNothing(t *testing.T) {
	p1, r1 := analyzeSrc(t, loopSrc, 100, Options{Mode: ModeFieldArray, NullOrSame: true})
	p2, r2 := analyzeSrc(t, loopSrc, 100, Options{
		Mode: ModeFieldArray, NullOrSame: true,
		MaxStateSize: 1 << 20, Deadline: time.Hour, MaxBlockVisits: 1 << 20,
	})
	r1.AnalysisTime, r2.AnalysisTime = 0, 0
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("generous budgets changed the report:\n%s\nvs\n%s", r1, r2)
	}
	m1, m2 := p1.Methods(), p2.Methods()
	for i := range m1 {
		for pc := range m1[i].Code {
			x, y := &m1[i].Code[pc], &m2[i].Code[pc]
			if x.Elide != y.Elide || x.ElideNullOrSame != y.ElideNullOrSame {
				t.Errorf("%s pc %d: elision bits differ", m1[i].QualifiedName(), pc)
			}
		}
	}
}
