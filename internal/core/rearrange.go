package core

import (
	"satbelim/internal/intval"
)

// The §4.3 "array rearrangements" extension. The paper observes that
// loops permuting the elements of an object array (db's sort swaps, jbb's
// move-down deletes) overwrite values that remain stored in the array, so
// instead of logging each pre-value the mutator may run an optimistic
// protocol: check the array's tracing state around the rearrangement and
// put the array on a retrace list when the collector's scan may have
// overlapped it.
//
// This file implements the static half for the *swap idiom* (the paper's
// "we could eliminate both barriers in the swap idiom with this
// approach"): a pair of aastores in one basic block that provably
// exchange two elements of the same runtime array —
//
//	t1 = a[i]; t2 = a[j]; a[i] = t2; a[j] = t1
//
// The detector runs during the judgment pass with block-local tracking:
//
//   - value numbering pins runtime identity of reference values (two
//     getstatics of the same untouched field read the same array);
//   - unknown integers loaded from locals are freshened to per-slot
//     symbols, so the indices i and i+gap stay distinguishable even when
//     the fixed point knows nothing about them;
//   - aaload attaches element provenance (array value number, index,
//     sequence time) to the loaded value.
//
// Two stores pair when they target the same array (by value number),
// their indices cross-match their values' source indices symbolically,
// both loads precede the first store, and nothing else touched the array
// (or called out) in between. Pairing is exactly what makes the protocol
// sound: each store's overwritten value is the other store's stored
// value, so the permuted array still contains every snapshot value, and
// any scan overlap is caught by the trace-state check.
//
// As the paper notes (§4.3 last paragraph), unsynchronized writes to the
// same array by concurrent mutator threads would invalidate the
// reasoning; the option is therefore opt-in, for programs that access
// rearranged arrays under a locking discipline or from a single thread.

// rearrangeTracker holds the block-local state of the detector.
type rearrangeTracker struct {
	seq     int
	nextVN  int32
	slotSym map[int]intval.IntVal // freshened unknown-int locals
	slotVN  map[int]int32         // value numbers for ref locals
	fieldVN map[string]int32      // value numbers for static ref fields
	events  []storeEvent
	// clobbers are sequence points (calls, spawns) after which no pair
	// may span.
	clobbers []int
}

// storeEvent is one aastore observed during block simulation.
type storeEvent struct {
	pc    int
	seq   int
	arrVN int32
	arr   RefSet
	idx   intval.IntVal
	prov  *elemProv
}

func newRearrangeTracker() *rearrangeTracker {
	return &rearrangeTracker{
		slotSym: map[int]intval.IntVal{},
		slotVN:  map[int]int32{},
		fieldVN: map[string]int32{},
	}
}

// fork clones the tracker for a successor block: straight-line flow into
// a single-predecessor block preserves all identities, but each successor
// accumulates its own events from there on.
func (rt *rearrangeTracker) fork() *rearrangeTracker {
	cp := &rearrangeTracker{
		seq:      rt.seq,
		nextVN:   rt.nextVN,
		slotSym:  make(map[int]intval.IntVal, len(rt.slotSym)),
		slotVN:   make(map[int]int32, len(rt.slotVN)),
		fieldVN:  make(map[string]int32, len(rt.fieldVN)),
		events:   append([]storeEvent(nil), rt.events...),
		clobbers: append([]int(nil), rt.clobbers...),
	}
	for k, v := range rt.slotSym {
		cp.slotSym[k] = v
	}
	for k, v := range rt.slotVN {
		cp.slotVN[k] = v
	}
	for k, v := range rt.fieldVN {
		cp.fieldVN[k] = v
	}
	return cp
}

func (rt *rearrangeTracker) tick() int {
	rt.seq++
	return rt.seq
}

func (rt *rearrangeTracker) fresh() int32 {
	rt.nextVN++
	return rt.nextVN
}

// clobber forgets everything a call might invalidate.
func (rt *rearrangeTracker) clobber() {
	rt.clobbers = append(rt.clobbers, rt.tick())
	rt.fieldVN = map[string]int32{}
}

// loadSlotInt freshens an unknown integer local to a stable per-slot
// symbol (killed when the slot is stored).
func (rt *rearrangeTracker) loadSlotInt(slot int, namer *intval.Namer) intval.IntVal {
	if v, ok := rt.slotSym[slot]; ok {
		return v
	}
	v := intval.OfConstU(namer.FreshConst())
	rt.slotSym[slot] = v
	return v
}

// loadSlotRef numbers a reference local.
func (rt *rearrangeTracker) loadSlotRef(slot int) int32 {
	if v, ok := rt.slotVN[slot]; ok {
		return v
	}
	v := rt.fresh()
	rt.slotVN[slot] = v
	return v
}

// killSlot forgets a stored-over local.
func (rt *rearrangeTracker) killSlot(slot int) {
	delete(rt.slotSym, slot)
	delete(rt.slotVN, slot)
}

// loadStaticRef numbers a static reference field (killed by putstatic to
// the field and by calls).
func (rt *rearrangeTracker) loadStaticRef(field string) int32 {
	if v, ok := rt.fieldVN[field]; ok {
		return v
	}
	v := rt.fresh()
	rt.fieldVN[field] = v
	return v
}

// killStatic forgets an overwritten static.
func (rt *rearrangeTracker) killStatic(field string) {
	delete(rt.fieldVN, field)
}

// recordStore notes an aastore.
func (rt *rearrangeTracker) recordStore(pc int, arrVN int32, arr RefSet, idx intval.IntVal, prov *elemProv) {
	rt.events = append(rt.events, storeEvent{
		pc: pc, seq: rt.tick(), arrVN: arrVN, arr: arr, idx: idx, prov: prov,
	})
}

// symEq is symbolic index equality; ⊤ never equals anything.
func symEq(a, b intval.IntVal) bool {
	return !a.IsTop() && !b.IsTop() && a.Equal(b)
}

// detectSwaps pairs the block's store events and reports both pcs of each
// swap through judgeFn.
func (rt *rearrangeTracker) detectSwaps(judgeFn func(pc int, kind judgeKind)) {
	evs := rt.events
	for i := 0; i < len(evs); i++ {
		for j := i + 1; j < len(evs); j++ {
			e1, e2 := evs[i], evs[j]
			if e1.prov == nil || e2.prov == nil {
				continue
			}
			// One runtime array at all four endpoints.
			if e1.arrVN == 0 || e1.arrVN != e2.arrVN ||
				e1.prov.arrVN != e1.arrVN || e2.prov.arrVN != e1.arrVN {
				continue
			}
			// Cross-matching indices: each store writes to the slot the
			// other store's value came from.
			if !symEq(e1.idx, e2.prov.idx) || !symEq(e2.idx, e1.prov.idx) {
				continue
			}
			if symEq(e1.idx, e2.idx) {
				continue // degenerate self-swap
			}
			// Both loads precede the first store.
			if e1.prov.seq >= e1.seq || e2.prov.seq >= e1.seq {
				continue
			}
			lo := e1.prov.seq
			if e2.prov.seq < lo {
				lo = e2.prov.seq
			}
			if rt.interfered(lo, e2.seq, i, j) {
				continue
			}
			judgeFn(e1.pc, judgeRearrange)
			judgeFn(e2.pc, judgeRearrange)
		}
	}
}

// interfered reports whether any call or other store to a possibly-equal
// array falls inside the (lo, hi) window.
func (rt *rearrangeTracker) interfered(lo, hi, skipI, skipJ int) bool {
	for _, c := range rt.clobbers {
		if c > lo && c < hi {
			return true
		}
	}
	win := rt.events[skipI].arr
	for k := range rt.events {
		if k == skipI || k == skipJ {
			continue
		}
		e := rt.events[k]
		if e.seq > lo && e.seq < hi && e.arr.Intersects(win) {
			return true
		}
	}
	return false
}
