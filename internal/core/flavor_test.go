package core

import (
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/satb"
)

// flavorProgram hand-builds a program whose main method carries one
// verdict of each kind plus an unelided store.
func flavorProgram() *bytecode.Program {
	p := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	m := &bytecode.Method{Class: "T", Name: "main", Static: true}
	m.Code = []bytecode.Instr{
		{Op: bytecode.OpPutField, Elide: true},
		{Op: bytecode.OpAAStore, ElideNullOrSame: true},
		{Op: bytecode.OpAAStore, ElideRearrange: true},
		{Op: bytecode.OpPutField},
		{Op: bytecode.OpReturn},
	}
	cls.Methods = append(cls.Methods, m)
	p.AddClass(cls)
	p.Main = bytecode.MethodRef{Class: "T", Name: "main"}
	return p
}

func TestFlavorSiteVerdicts(t *testing.T) {
	p := flavorProgram()
	want := map[satb.BarrierMode]FlavorVerdicts{
		satb.ModeConditional: {Flavor: "conditional", Verdicts: 3, Kept: 3, Discarded: 0},
		satb.ModeYuasa:       {Flavor: "yuasa", Verdicts: 3, Kept: 3, Discarded: 0},
		satb.ModeDijkstra:    {Flavor: "dijkstra", Verdicts: 3, Kept: 0, Discarded: 3},
		satb.ModeHybrid:      {Flavor: "hybrid", Verdicts: 3, Kept: 1, Discarded: 2},
	}
	for mode, w := range want {
		got := FlavorSiteVerdicts(p, mode.Spec())
		if got != w {
			t.Errorf("%s: verdicts = %+v, want %+v", mode, got, w)
		}
	}
}

func TestAllFlavorVerdictsCoverEveryFlavor(t *testing.T) {
	rows := AllFlavorVerdicts(flavorProgram())
	if len(rows) != len(satb.AllSpecs()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(satb.AllSpecs()))
	}
	for i, sp := range satb.AllSpecs() {
		if rows[i].Flavor != sp.Name {
			t.Errorf("row %d flavor = %q, want %q", i, rows[i].Flavor, sp.Name)
		}
		if rows[i].Kept+rows[i].Discarded != rows[i].Verdicts {
			t.Errorf("%s: kept %d + discarded %d != verdicts %d",
				rows[i].Flavor, rows[i].Kept, rows[i].Discarded, rows[i].Verdicts)
		}
	}
}
