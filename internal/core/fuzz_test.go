package core_test

import (
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/core"
	"satbelim/internal/minijava"
	"satbelim/internal/progen"
)

// FuzzAnalyze feeds frontend-accepted programs through the barrier
// analysis under fuzzed option combinations. The contract is the
// recovery guarantee of AnalyzeMethod: a panic anywhere in the analysis
// is converted into a conservative degraded MethodReport, so no panic
// may ever escape AnalyzeProgram — for any valid program, any mode, any
// ablation, and any (tiny) budget.
func FuzzAnalyze(f *testing.F) {
	handwritten := []string{
		"class A { static void main() { print(1); } }",
		`class N { N next; }
class A { static void main() {
    N prev = null;
    for (int i = 0; i < 3; i = i + 1) { N n = new N(); n.next = prev; prev = n; }
    print(0);
} }`,
		`class A { static void main() {
    A[] a = new A[4];
    for (int i = 0; i < 4; i = i + 1) { a[i] = new A(); }
    print(0);
} }`,
	}
	for _, src := range handwritten {
		f.Add(src, uint16(0))
	}
	// Campaign-idiom generator sources exercise the strided-init,
	// alloc-reuse, aliasing, and escape-store paths the properties in
	// internal/metatest stress.
	for i, src := range progen.Corpus(21000, 4, progen.CampaignConfig()) {
		f.Add(src, uint16(i*257))
	}
	modes := []core.Mode{core.ModeNone, core.ModeField, core.ModeFieldArray}
	f.Fuzz(func(t *testing.T, src string, cfg uint16) {
		if len(src) > 1<<12 {
			t.Skip()
		}
		ast, err := minijava.Parse("fuzz.mj", src)
		if err != nil {
			return // frontend rejection is FuzzParse's territory
		}
		checked, err := minijava.Check("fuzz.mj", ast)
		if err != nil {
			return
		}
		prog, err := codegen.Compile(checked)
		if err != nil {
			return
		}
		opts := core.Options{
			Mode:                  modes[int(cfg%3)],
			NullOrSame:            cfg&(1<<2) != 0,
			Rearrange:             cfg&(1<<3) != 0,
			SingleRefPerSite:      cfg&(1<<4) != 0,
			FlowInsensitiveEscape: cfg&(1<<5) != 0,
			NoStrideInference:     cfg&(1<<6) != 0,
			Interprocedural:       cfg&(1<<7) != 0,
		}
		// Starved budgets force the degradation paths mid-fixed-point.
		if cfg&(1<<8) != 0 {
			opts.MaxBlockVisits = 1 + int(cfg>>9)%4
		}
		if cfg&(1<<9) != 0 {
			opts.MaxStateSize = 1 + int(cfg>>10)%8
		}
		if cfg&(1<<10) != 0 {
			opts.MaxSummaryRoundsPerSCC = 1 + int(cfg>>11)%3
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic escaped the analysis recovery layer: %v\noptions: %+v\nsource:\n%s", r, opts, src)
			}
		}()
		rep, err := core.AnalyzeProgram(prog, opts)
		if err != nil {
			t.Fatalf("analysis error (must degrade, not fail): %v\noptions: %+v\nsource:\n%s", err, opts, src)
		}
		for _, mr := range rep.Methods {
			if mr.FieldElided > mr.FieldSites || mr.ArrayElided > mr.ArraySites {
				t.Fatalf("%s: elisions exceed sites (%d/%d field, %d/%d array)\noptions: %+v\nsource:\n%s",
					mr.Method.QualifiedName(), mr.FieldElided, mr.FieldSites,
					mr.ArrayElided, mr.ArraySites, opts, src)
			}
			if mr.Degraded != core.DegradeNone && (mr.FieldElided != 0 || mr.ArrayElided != 0 || mr.NullOrSame != 0) {
				t.Fatalf("%s: degraded (%s) but still elides barriers\noptions: %+v\nsource:\n%s",
					mr.Method.QualifiedName(), mr.Degraded, opts, src)
			}
		}
		// Summaries are a pure precision layer: with no starvation budgets
		// in play, every store site the intraprocedural analysis elides
		// must still be elided with summaries on. (Budgets break the
		// guarantee legitimately — summary consultation costs block visits
		// and state size the plain run does not pay.)
		if opts.Interprocedural && opts.MaxBlockVisits == 0 && opts.MaxStateSize == 0 &&
			opts.MaxSummaryRoundsPerSCC == 0 {
			plainProg, err := codegen.Compile(checked)
			if err != nil {
				t.Fatalf("recompile: %v", err)
			}
			plainOpts := opts
			plainOpts.Interprocedural = false
			if _, err := core.AnalyzeProgram(plainProg, plainOpts); err != nil {
				t.Fatalf("plain analysis error: %v", err)
			}
			plainByName := map[string][]bytecode.Instr{}
			for _, m := range plainProg.Methods() {
				plainByName[m.QualifiedName()] = m.Code
			}
			elided := func(in bytecode.Instr) bool {
				return in.Elide || in.ElideNullOrSame || in.ElideRearrange
			}
			for _, m := range prog.Methods() {
				plain := plainByName[m.QualifiedName()]
				for pc, in := range m.Code {
					if elided(plain[pc]) && !elided(in) {
						t.Fatalf("%s pc %d: intraprocedural run elides but interprocedural run does not\noptions: %+v\nsource:\n%s",
							m.QualifiedName(), pc, opts, src)
					}
				}
			}
		}
	})
}
