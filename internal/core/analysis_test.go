package core

import (
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/inline"
	"satbelim/internal/minijava"
	"satbelim/internal/verifier"
)

// analyzeSrc compiles MiniJava source, inlines at the given limit,
// verifies, analyzes, and returns the program and report.
func analyzeSrc(t *testing.T, src string, inlineLimit int, opts Options) (*bytecode.Program, *ProgramReport) {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := codegen.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p = inline.Apply(p, inline.Options{Limit: inlineLimit}).Program
	if err := verifier.VerifyProgram(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rep, err := AnalyzeProgram(p, opts)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return p, rep
}

// elisions lists the pcs of elided stores in a method, split by opcode.
func elisions(m *bytecode.Method) (fields, arrays, nos []int) {
	for pc := range m.Code {
		in := &m.Code[pc]
		switch {
		case in.Elide && in.Op == bytecode.OpPutField:
			fields = append(fields, pc)
		case in.Elide && in.Op == bytecode.OpAAStore:
			arrays = append(arrays, pc)
		case in.ElideNullOrSame:
			nos = append(nos, pc)
		}
	}
	return
}

func optsA() Options { return Options{Mode: ModeFieldArray} }

func TestCtorInitializingStoreElided(t *testing.T) {
	// Inside a constructor, this is unique and thread-local with null
	// fields (§2.3), so the initializing store needs no barrier — even
	// without inlining.
	src := `
class T { T next; T(T n) { next = n; } }
class M { static void main() { T t = new T(null); } }
`
	p, _ := analyzeSrc(t, src, 0, optsA())
	ctor := p.Method(bytecode.MethodRef{Class: "T", Name: "<init>"})
	f, _, _ := elisions(ctor)
	if len(f) != 1 {
		t.Errorf("constructor store should be elided:\n%s", bytecode.Disassemble(ctor))
	}
}

func TestNonCtorArgStoreNotElided(t *testing.T) {
	// A plain method's argument is non-thread-local; its fields are
	// unknown (GlobalRef lookup), so no elision.
	src := `
class T { T next; void set(T n) { next = n; } }
class M { static void main() { T t = new T(); t.set(null); } }
`
	p, _ := analyzeSrc(t, src, 0, optsA())
	set := p.Method(bytecode.MethodRef{Class: "T", Name: "set"})
	f, _, _ := elisions(set)
	if len(f) != 0 {
		t.Errorf("store through an escaped argument must keep its barrier:\n%s", bytecode.Disassemble(set))
	}
}

func TestInlinedCtorExposesElision(t *testing.T) {
	// Without inlining, the constructor call makes the fresh object
	// escape; with it, the caller sees the pre-null store (§2.4).
	src := `
class T { T next; int v; T(int x) { v = x; } }
class M {
    static void main() {
        T t = new T(1);
        t.next = new T(2);
    }
}
`
	// No inlining: t escapes into the ctor call; t.next store keeps its
	// barrier.
	p0, _ := analyzeSrc(t, src, 0, optsA())
	m0 := p0.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f0, _, _ := elisions(m0)
	if len(f0) != 0 {
		t.Errorf("without inlining, no main elisions expected:\n%s", bytecode.Disassemble(m0))
	}
	// With inlining: both the inlined v-store and the next-store are
	// pre-null on thread-local objects.
	p1, _ := analyzeSrc(t, src, 100, optsA())
	m1 := p1.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f1, _, _ := elisions(m1)
	if len(f1) != 1 { // only t.next is a ref store; v is an int field
		t.Errorf("with inlining, the t.next store should be elided (got %v):\n%s", f1, bytecode.Disassemble(m1))
	}
}

func TestSecondStoreToFieldNotElided(t *testing.T) {
	src := `
class T { T next; }
class M {
    static void main() {
        T t = new T();
        t.next = new T(); // pre-null: elidable
        t.next = new T(); // overwrites a non-null value: barrier stays
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("exactly the first store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
	// The elided one must be the earlier pc.
	var stores []int
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpPutField {
			stores = append(stores, pc)
		}
	}
	if len(stores) == 2 && len(f) == 1 && f[0] != stores[0] {
		t.Errorf("wrong store elided: %v of %v", f, stores)
	}
}

func TestPaperLoopExampleTwoNamesPerSite(t *testing.T) {
	// The §2.4 motivating example: in a loop, W1 stores to the most
	// recent allocation (strong-updatable, elidable); W2 stores to an
	// object that may be from a previous iteration whose field was
	// already written.
	src := `
class T { T f; }
class M {
    static void run(boolean p1, boolean p2) {
        T x = new T();
        while (p1) {
            x = new T();
            if (p2) {
                x.f = new T();  // W1: first write to the fresh object
            }
            x.f = new T();      // W2: may overwrite W1's value
            p1 = !p1;
        }
    }
}
`
	p, _ := analyzeSrc(t, src, 0, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "run"})
	f, _, _ := elisions(m)
	// Find the two x.f stores in pc order; W1 must be elided, W2 not.
	var stores []int
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpPutField && m.Code[pc].Field.Name == "f" {
			stores = append(stores, pc)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("expected 2 f-stores, found %v", stores)
	}
	if len(f) != 1 || f[0] != stores[0] {
		t.Errorf("W1 (pc %d) should be the only elision, got %v:\n%s", stores[0], f, bytecode.Disassemble(m))
	}

	// Ablation: with a single summary node per site, strong update is
	// impossible and W1 keeps its barrier.
	pa, _ := analyzeSrc(t, src, 0, Options{Mode: ModeFieldArray, SingleRefPerSite: true})
	ma := pa.Method(bytecode.MethodRef{Class: "M", Name: "run"})
	fa, _, _ := elisions(ma)
	if len(fa) != 0 {
		t.Errorf("single-summary ablation should lose the W1 elision, got %v", fa)
	}
}

func TestFlowSensitiveEscape(t *testing.T) {
	// The store happens before the object escapes: elidable with the
	// flow-sensitive NL, lost under the ever-escapes ablation (§2).
	src := `
class T { T next; static T head; }
class M {
    static void main() {
        T t = new T();
        t.next = new T(); // before escape: elidable
        T.head = t;       // t escapes here
        t.next = null;    // after escape: barrier stays
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("exactly the pre-escape store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}

	pa, _ := analyzeSrc(t, src, 100, Options{Mode: ModeFieldArray, FlowInsensitiveEscape: true})
	ma := pa.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	fa, _, _ := elisions(ma)
	if len(fa) != 0 {
		t.Errorf("flow-insensitive ablation should lose the elision, got %v", fa)
	}
}

func TestEscapeThroughCallArgument(t *testing.T) {
	src := `
class T { T next; }
class Sink { static void consume(T t) { } }
class M {
    static void main() {
        T t = new T();
        Sink.consume(t);
        t.next = new T(); // t escaped into the call
    }
}
`
	p, _ := analyzeSrc(t, src, 0, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 0 {
		t.Errorf("store after call-escape must keep its barrier, got %v", f)
	}
}

func TestEscapeTransitiveReachability(t *testing.T) {
	// Storing a into an escaped container escapes a, and everything a
	// reaches (AllNonTL's transitive closure).
	src := `
class T { T next; static T head; }
class M {
    static void main() {
        T a = new T();
        T b = new T();
        a.next = b;       // elidable (both local)
        T.head = a;       // a escapes, and with it b
        b.next = new T(); // must keep barrier: b is reachable by others
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("only a.next=b should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}

func TestSpawnEscapesReceiver(t *testing.T) {
	src := `
class W { W other; void run() { } }
class M {
    static void main() {
        W w = new W();
        spawn w.run();
        w.other = new W(); // w is shared with the spawned thread
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 0 {
		t.Errorf("store to spawned receiver must keep its barrier, got %v", f)
	}
}

func TestPaperExpandArrayExample(t *testing.T) {
	// §3.1: every new_ta[i] store in the copy loop is initializing.
	src := `
class T { int v; }
class U {
    static T[] expand(T[] ta) {
        T[] new_ta = new T[ta.length * 2];
        for (int i = 0; i < ta.length; i = i + 1)
            new_ta[i] = ta[i];
        return new_ta;
    }
}
`
	p, _ := analyzeSrc(t, src, 0, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "expand"})
	_, arr, _ := elisions(m)
	if len(arr) != 1 {
		t.Errorf("the loop's aastore should be elided, got %v:\n%s", arr, bytecode.Disassemble(m))
	}

	// Mode F must not elide array stores.
	pf, _ := analyzeSrc(t, src, 0, Options{Mode: ModeField})
	mf := pf.Method(bytecode.MethodRef{Class: "U", Name: "expand"})
	_, arrF, _ := elisions(mf)
	if len(arrF) != 0 {
		t.Errorf("mode F should not elide array stores, got %v", arrF)
	}

	// Stride-inference ablation collapses the loop invariant.
	pn, _ := analyzeSrc(t, src, 0, Options{Mode: ModeFieldArray, NoStrideInference: true})
	mn := pn.Method(bytecode.MethodRef{Class: "U", Name: "expand"})
	_, arrN, _ := elisions(mn)
	if len(arrN) != 0 {
		t.Errorf("no-stride ablation should lose the elision, got %v", arrN)
	}
}

func TestArrayFillDownward(t *testing.T) {
	// Filling from the high end exercises the [..hi] half-open range.
	src := `
class T { int v; }
class U {
    static T[] fill(int n) {
        T[] a = new T[n];
        for (int i = n - 1; i >= 0; i = i - 1)
            a[i] = new T();
        return a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "fill"})
	_, arr, _ := elisions(m)
	if len(arr) != 1 {
		t.Errorf("downward fill should be elided, got %v:\n%s", arr, bytecode.Disassemble(m))
	}
}

func TestArrayOutOfOrderStoreNotElided(t *testing.T) {
	src := `
class T { int v; }
class U {
    static T[] sparse(int n) {
        T[] a = new T[n];
        a[0] = new T(); // elidable: low end
        a[2] = new T(); // skips index 1: range collapses
        a[1] = new T(); // not provable anymore
        return a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "sparse"})
	_, arr, _ := elisions(m)
	if len(arr) != 1 {
		t.Errorf("only a[0] should be elided, got %v:\n%s", arr, bytecode.Disassemble(m))
	}
}

func TestArraySwapIdiomNotElided(t *testing.T) {
	// The db benchmark's dominant pattern (§4.3): a swap is never
	// pre-null.
	src := `
class T { int v; }
class U {
    static void swap(T[] a, int i, int j) {
        T tmp = a[i];
        a[i] = a[j];
        a[j] = tmp;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "swap"})
	_, arr, _ := elisions(m)
	if len(arr) != 0 {
		t.Errorf("swap stores must keep barriers, got %v", arr)
	}
}

func TestEscapedArrayStoreNotElided(t *testing.T) {
	src := `
class T { int v; }
class U {
    static T[] shared;
    static void main() {
        T[] a = new T[4];
        shared = a;
        for (int i = 0; i < 4; i = i + 1)
            a[i] = new T(); // a escaped: no elision
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "main"})
	_, arr, _ := elisions(m)
	if len(arr) != 0 {
		t.Errorf("stores into an escaped array must keep barriers, got %v", arr)
	}
}

func TestSigmaTracksStoredValues(t *testing.T) {
	// After t.f = u, reading t.f yields u's refs; storing that into a
	// fresh object's field is still the fresh object's first write.
	src := `
class T { T f; }
class M {
    static void main() {
        T u = new T();
        T t = new T();
        t.f = u;        // elidable
        T v = t.f;      // v = {u}
        T w = new T();
        w.f = v;        // elidable: w fresh, first write
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 2 {
		t.Errorf("both stores should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}

func TestModeNoneClearsFlags(t *testing.T) {
	src := `
class T { T next; T(T n) { next = n; } }
`
	p, rep := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	m := p.Method(bytecode.MethodRef{Class: "T", Name: "<init>"})
	f, a, n := elisions(m)
	if len(f)+len(a)+len(n) != 0 {
		t.Error("mode B must not elide anything")
	}
	fs, _, fe, ae, _ := func() (int, int, int, int, int) { return rep.Totals() }()
	if fs != 1 || fe != 0 || ae != 0 {
		t.Errorf("totals: sites=%d fieldElided=%d arrayElided=%d", fs, fe, ae)
	}
}

func TestNullOrSameRecopyElided(t *testing.T) {
	// x.f = x.f rewrites the value already present (§4.3): no SATB log
	// needed whether or not it is null.
	src := `
class T { T f; T g; }
class M {
    static T roundtrip(T x) {
        T t = new T();
        t.f = x;     // pre-null (elided normally)
        t.f = t.f;   // null-or-same
        t.g = t.f;   // NOT null-or-same for g (g is null: actually pre-null? g never written: pre-null!)
        return t;
    }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeFieldArray, NullOrSame: true})
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "roundtrip"})
	f, _, nos := elisions(m)
	// t.f = x elided (pre-null); t.g = t.f elided (pre-null, g untouched);
	// t.f = t.f is null-or-same.
	if len(f) != 2 {
		t.Errorf("pre-null elisions = %v, want 2:\n%s", f, bytecode.Disassemble(m))
	}
	if len(nos) != 1 {
		t.Errorf("null-or-same elisions = %v, want 1:\n%s", nos, bytecode.Disassemble(m))
	}
}

func TestNullOrSameKilledByInterveningStore(t *testing.T) {
	src := `
class T { T f; }
class M {
    static void run(T x, T y) {
        T t = new T();
        t.f = x;      // pre-null
        T saved = t.f;
        t.f = y;      // overwrites x: barrier stays
        t.f = saved;  // saved == old f? No: f is now y. Barrier stays.
    }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeFieldArray, NullOrSame: true})
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "run"})
	f, _, nos := elisions(m)
	if len(f) != 1 {
		t.Errorf("only the first store is pre-null, got %v", f)
	}
	if len(nos) != 0 {
		t.Errorf("stale saved value must not count as null-or-same, got %v", nos)
	}
}

func TestNullOrSameKilledByCall(t *testing.T) {
	src := `
class T { T f; static void touch(T t) { t.f = null; } }
class M {
    static void run(T x) {
        T t = new T();
        t.f = x;
        T saved = t.f;
        T.touch(t);
        t.f = saved;  // callee may have changed f: barrier stays
    }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeFieldArray, NullOrSame: true})
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "run"})
	_, _, nos := elisions(m)
	if len(nos) != 0 {
		t.Errorf("call must kill null-or-same sources, got %v", nos)
	}
}

func TestAnalysisReportCounts(t *testing.T) {
	src := `
class T { T a; T b; int k; }
class M {
    static void main() {
        T t = new T();
        t.a = new T();
        t.b = new T();
        t.k = 3;
        T[] arr = new T[2];
        arr[0] = t;
        arr[1] = t;
    }
}
`
	_, rep := analyzeSrc(t, src, 100, optsA())
	fs, as, fe, ae, _ := rep.Totals()
	// Ref field sites: t.a, t.b plus none from ctors (no ctor). t.k is
	// an int store, not a site.
	if fs != 2 || as != 2 {
		t.Errorf("sites: field=%d array=%d, want 2/2", fs, as)
	}
	if fe != 2 {
		t.Errorf("field elided = %d, want 2", fe)
	}
	if ae != 2 {
		t.Errorf("array elided = %d, want 2 (in-order init)", ae)
	}
}

func TestAnalysisConvergesOnNestedLoops(t *testing.T) {
	src := `
class T { int v; }
class U {
    static T[][] grid(int n) {
        T[][] g = new T[n][];
        for (int i = 0; i < n; i = i + 1) {
            g[i] = new T[n];
            for (int j = 0; j < n; j = j + 1) {
                g[i][j] = new T();
            }
        }
        return g;
    }
}
`
	_, rep := analyzeSrc(t, src, 100, optsA())
	for _, mr := range rep.Methods {
		if !mr.Converged {
			t.Errorf("%s did not converge (%d visits)", mr.Method.QualifiedName(), mr.BlockVisits)
		}
	}
}

func TestGetFieldOfEscapedYieldsGlobal(t *testing.T) {
	// Reading a field of an escaped object yields GlobalRef; storing
	// into ITS field cannot be elided.
	src := `
class T { T next; static T head; }
class M {
    static void main() {
        T g = T.head;
        g.next = new T();
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 0 {
		t.Errorf("store into global object must keep barrier, got %v", f)
	}
}

func TestConditionalAllocationMergesRefsets(t *testing.T) {
	// x may be either allocation; both are local with null fields, so
	// the store is still elidable (weak update across the set).
	src := `
class T { T f; }
class M {
    static void run(boolean p) {
        T x = null;
        if (p) { x = new T(); } else { x = new T(); }
        x.f = new T(); // both candidates are fresh and null-fielded
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "run"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("merged-refset store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}
