package core

import (
	"satbelim/internal/bytecode"
	"satbelim/internal/satb"
)

// FlavorVerdicts is the per-flavor static picture of one compiled
// program: of the elision verdicts the analysis attached to reference
// stores, how many the barrier flavor's soundness predicate keeps and
// how many it must discard (projected back to a full barrier). The
// analysis itself is flavor-independent — it proves facts about stores
// (pre-null, null-or-same, rearrangement) — and each flavor consumes
// only the subset of those facts that justifies removing *its* barrier.
type FlavorVerdicts struct {
	Flavor string `json:"flavor"`
	// Verdicts counts store sites carrying any elision verdict.
	Verdicts int `json:"verdicts"`
	// Kept counts verdicts sound under the flavor (the barrier is
	// actually removed at those sites).
	Kept int `json:"kept"`
	// Discarded counts verdicts the flavor cannot use; those sites keep
	// their full barrier.
	Discarded int `json:"discarded"`
}

// staticVerdict mirrors the VM's flag-to-verdict mapping for a compiled
// instruction.
func staticVerdict(in *bytecode.Instr) satb.ElideKind {
	switch {
	case in.Elide:
		return satb.ElidePreNull
	case in.ElideNullOrSame:
		return satb.ElideNullOrSame
	case in.ElideRearrange:
		return satb.ElideRearrange
	default:
		return satb.ElideNone
	}
}

// FlavorSiteVerdicts filters a compiled program's static elision
// verdicts through one flavor's soundness predicate.
func FlavorSiteVerdicts(p *bytecode.Program, spec *satb.BarrierSpec) FlavorVerdicts {
	fv := FlavorVerdicts{Flavor: spec.Name}
	for _, m := range p.Methods() {
		for i := range m.Code {
			in := &m.Code[i]
			if in.Op != bytecode.OpPutField && in.Op != bytecode.OpAAStore {
				continue
			}
			k := staticVerdict(in)
			if k == satb.ElideNone {
				continue
			}
			fv.Verdicts++
			if spec.Sound(k) {
				fv.Kept++
			} else {
				fv.Discarded++
			}
		}
	}
	return fv
}

// AllFlavorVerdicts computes FlavorSiteVerdicts for every registered
// barrier flavor, in satb.AllSpecs order.
func AllFlavorVerdicts(p *bytecode.Program) []FlavorVerdicts {
	specs := satb.AllSpecs()
	out := make([]FlavorVerdicts, 0, len(specs))
	for _, sp := range specs {
		out = append(out, FlavorSiteVerdicts(p, sp))
	}
	return out
}
