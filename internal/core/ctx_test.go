package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"satbelim/internal/codegen"
	"satbelim/internal/inline"
	"satbelim/internal/minijava"
	"satbelim/internal/verifier"

	"satbelim/internal/bytecode"
)

// compileSrc builds and verifies a program without analyzing it.
func compileSrc(t *testing.T, src string, inlineLimit int) *bytecode.Program {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := codegen.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p = inline.Apply(p, inline.Options{Limit: inlineLimit}).Program
	if err := verifier.VerifyProgram(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return p
}

// TestCancelledContextDegradesPromptly is the deadline-plumbing
// regression test: a cancelled caller context must abort the analysis
// promptly (observed at block-visit boundaries) and report the methods as
// Degraded with DegradeCancelled — all barriers kept, no error.
func TestCancelledContextDegradesPromptly(t *testing.T) {
	// Enough conditional branching that the fixed point crosses several
	// cancellation-check boundaries.
	var b strings.Builder
	b.WriteString("class N { N next; }\nclass A {\n    static void main() {\n        N n = new N();\n        int s = 0;\n")
	for i := 0; i < 4*deadlineCheckInterval; i++ {
		fmt.Fprintf(&b, "        if (s < %d) { s = s + 1; n.next = new N(); }\n", i)
	}
	b.WriteString("        print(s);\n    }\n}\n")
	p := compileSrc(t, b.String(), 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the analysis must not do real work
	start := time.Now()
	rep, err := AnalyzeProgramCtx(ctx, p, Options{Mode: ModeFieldArray}, 2)
	if err != nil {
		t.Fatalf("cancellation must degrade, not error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled analysis took %v, want prompt abort", elapsed)
	}
	deg := rep.Degraded()
	if len(deg) != len(rep.Methods) {
		t.Fatalf("%d of %d methods degraded, want all (cancelled before analysis)", len(deg), len(rep.Methods))
	}
	for _, m := range deg {
		if m.Degraded != DegradeCancelled {
			t.Errorf("%s Degraded = %q, want %q", m.Method.QualifiedName(), m.Degraded, DegradeCancelled)
		}
		if m.FieldSites == 0 && m.ArraySites == 0 && m.Method.Name == "main" {
			t.Error("degraded report should still count barrier sites")
		}
	}
	noElisions(t, p)
}

// TestContextDeadlineTightensAnalysisDeadline: an already-expired context
// deadline must degrade mid-fixpoint even when Options.Deadline is
// generous, via the same wall-clock machinery.
func TestContextDeadlineTightensAnalysisDeadline(t *testing.T) {
	var b strings.Builder
	b.WriteString("class N { N next; }\nclass A {\n    static void main() {\n        N n = new N();\n        int s = 0;\n")
	for i := 0; i < 4*deadlineCheckInterval; i++ {
		fmt.Fprintf(&b, "        if (s < %d) { s = s + 1; n.next = new N(); }\n", i)
	}
	b.WriteString("        print(s);\n    }\n}\n")
	p := compileSrc(t, b.String(), 0)

	// A context whose deadline already passed, but which is NOT cancelled
	// yet: Deadline() is in the past while Done() has not fired only in a
	// race window, so accept either degradation reason — both are
	// time-driven and both must keep every barrier.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err := AnalyzeProgramCtx(ctx, p, Options{Mode: ModeFieldArray, Deadline: time.Hour}, 1)
	if err != nil {
		t.Fatalf("deadline must degrade, not error: %v", err)
	}
	found := false
	for _, m := range rep.Methods {
		if m.Degraded.TimeDriven() {
			found = true
		}
	}
	if !found {
		t.Fatal("no method degraded under an expired context deadline")
	}
	noElisions(t, p)
}

// TestTimeDrivenClassification pins which degradations count as
// wall-clock conditions (never shareable across cached requests).
func TestTimeDrivenClassification(t *testing.T) {
	for reason, want := range map[DegradeReason]bool{
		DegradeNone:        false,
		DegradeVisitBudget: false,
		DegradeStateSize:   false,
		DegradePanic:       false,
		DegradeDeadline:    true,
		DegradeCancelled:   true,
	} {
		if got := reason.TimeDriven(); got != want {
			t.Errorf("TimeDriven(%q) = %v, want %v", reason, got, want)
		}
	}
}
