package core_test

// End-to-end tests for the R_id/A → R_id/B demotion (paper §3.2): when an
// allocation site re-executes in a loop, the previous iteration's object
// must lose the unique A name, so stores through a loop-carried alias get
// weak-update semantics and keep their barriers. The renameAlloc unit
// tests in state_test.go cover the σ-transfer mechanics; these tests pin
// the observable analysis decisions and prove the UnsoundSkipBDemotion
// fault-injection knob really reopens the hole the demotion closes.

import (
	"errors"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// demotionSrc allocates in a loop and stores through prev, which on every
// iteration ≥ 2 points at the *previous* execution of the site — whose f
// field is non-null. Only the fresh-object store `o.f = new C();` is
// legally elidable (1 of the 2 field sites). The prev.f store precedes
// o.f so that, were the demotion skipped, σ for the stale A name would
// still hold the fresh-allocation null default at the judgment point.
const demotionSrc = `
class C { C f; }
class Main {
    static void main() {
        C prev = null;
        for (int i = 0; i < 3; i = i + 1) {
            C o = new C();
            if (prev != null) { prev.f = new C(); }
            o.f = new C();
            prev = o;
        }
        print(0);
    }
}
`

func compileDemotion(t *testing.T, analysis core.Options) *pipeline.Build {
	t.Helper()
	b, err := pipeline.Compile("demotion", demotionSrc, pipeline.Options{
		InlineLimit: 100,
		NoCache:     true,
		Analysis:    analysis,
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return b
}

// TestLoopAllocDemotionLimitsElision: with the demotion in place exactly
// the fresh-object store is elided; prev's store stays barriered because
// prev names the B summary whose f field is unknown.
func TestLoopAllocDemotionLimitsElision(t *testing.T) {
	b := compileDemotion(t, core.Options{Mode: core.ModeFieldArray})
	fieldSites, _, fieldElided, _, _ := b.Report.Totals()
	if fieldSites != 2 {
		t.Fatalf("fieldSites = %d, want 2", fieldSites)
	}
	if fieldElided != 1 {
		t.Fatalf("fieldElided = %d, want 1 (only the fresh-object store)", fieldElided)
	}
	res, err := b.Run(vm.Config{
		Barrier:            satb.ModeConditional,
		GC:                 vm.GCSATB,
		TriggerEveryAllocs: 2,
		CheckInvariant:     true,
		CheckElisions:      true,
		MaxSteps:           1_000_000,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
		t.Fatalf("sound analysis produced unsound elisions: %v", s.UnsoundSites)
	}
}

// TestUnsoundSkipBDemotionReopensHole: skipping the demotion keeps prev's
// RefSet a stale singleton {A}, so the analysis judges prev.f pre-null
// and elides a store that dynamically observes a non-null slot. (The
// static count stays 1 — the strong update through prev then masks o.f —
// so it is the *choice* of site that goes wrong, not the count.) The
// runtime oracle must flag it — this is the fault the metamorphic
// campaign's self-test injects.
func TestUnsoundSkipBDemotionReopensHole(t *testing.T) {
	sound := compileDemotion(t, core.Options{Mode: core.ModeFieldArray})
	b := compileDemotion(t, core.Options{
		Mode:                 core.ModeFieldArray,
		UnsoundSkipBDemotion: true,
	})
	same := true
	soundMethods := sound.Program.Methods()
	for mi, m := range b.Program.Methods() {
		for pc, in := range m.Code {
			if in.Elide != soundMethods[mi].Code[pc].Elide {
				same = false
			}
		}
	}
	if same {
		t.Fatal("injected bug did not change any elision decision")
	}
	_, err := b.Run(vm.Config{
		Barrier:            satb.ModeConditional,
		GC:                 vm.GCSATB,
		TriggerEveryAllocs: 2,
		CheckElisions:      true,
		MaxSteps:           1_000_000,
	})
	var sv *vm.SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("oracle missed the injected /B-demotion bug (err=%v)", err)
	}
	if sv.Method != "Main.main" {
		t.Errorf("violation blamed %q, want Main.main", sv.Method)
	}
}

// TestLoopArrayAllocDemotion: the same discipline for newarray — an array
// allocated per iteration loses its length/NR facts on re-execution, so a
// store through a loop-carried array alias is not elidable.
func TestLoopArrayAllocDemotion(t *testing.T) {
	src := `
class C { C f; }
class Main {
    static void main() {
        C[] prev = null;
        for (int i = 0; i < 3; i = i + 1) {
            C[] a = new C[4];
            a[0] = new C();
            if (prev != null) { prev[1] = new C(); }
            prev = a;
        }
        print(0);
    }
}
`
	b, err := pipeline.Compile("arrdemotion", src, pipeline.Options{
		InlineLimit: 100,
		NoCache:     true,
		Analysis:    core.Options{Mode: core.ModeFieldArray},
	})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := b.Run(vm.Config{
		Barrier:            satb.ModeConditional,
		GC:                 vm.GCSATB,
		TriggerEveryAllocs: 2,
		CheckInvariant:     true,
		CheckElisions:      true,
		MaxSteps:           1_000_000,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
		t.Fatalf("array demotion unsound: %v", s.UnsoundSites)
	}
}
