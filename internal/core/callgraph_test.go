package core

import (
	"math/rand"
	"reflect"
	"testing"

	"satbelim/internal/bytecode"
)

// graphOf builds a CallGraph directly from an adjacency list — Condense
// only consults len(Methods) and Callees, so structural tests need no
// bytecode at all.
func graphOf(adj [][]int) *CallGraph {
	return &CallGraph{Methods: make([]*bytecode.Method, len(adj)), Callees: adj}
}

func TestCondenseSelfLoop(t *testing.T) {
	c := Condense(graphOf([][]int{{0}}))
	if len(c.SCCs) != 1 || !c.SCCs[0].Cyclic {
		t.Fatalf("self-loop must form one cyclic SCC, got %+v", c.SCCs)
	}
	if c.CompOf[0] != 0 {
		t.Errorf("CompOf = %v", c.CompOf)
	}
}

func TestCondenseSingleNodeNoLoopIsAcyclic(t *testing.T) {
	c := Condense(graphOf([][]int{nil}))
	if len(c.SCCs) != 1 || c.SCCs[0].Cyclic {
		t.Fatalf("lone node must be acyclic, got %+v", c.SCCs)
	}
}

func TestCondenseNestedCyclesAndUnreachable(t *testing.T) {
	// 0 ⇄ 1 (cycle) calling into 2 ⇄ 3 (cycle) calling into 4 (leaf);
	// 5 → 5 is unreachable from the rest; 6 is fully isolated.
	adj := [][]int{
		{1, 2}, {0},
		{3, 4}, {2},
		nil,
		{5},
		nil,
	}
	c := Condense(graphOf(adj))
	if len(c.SCCs) != 5 {
		t.Fatalf("want 5 SCCs, got %d: %+v", len(c.SCCs), c.SCCs)
	}
	find := func(node int) SCC { return c.SCCs[c.CompOf[node]] }
	if got := find(0).Members; !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("SCC of 0 = %v", got)
	}
	if got := find(2).Members; !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("SCC of 2 = %v", got)
	}
	for _, n := range []int{0, 2, 5} {
		if !find(n).Cyclic {
			t.Errorf("SCC of %d must be cyclic", n)
		}
	}
	for _, n := range []int{4, 6} {
		if find(n).Cyclic {
			t.Errorf("SCC of %d must be acyclic", n)
		}
	}
	// Bottom-up: the leaf 4's component precedes {2,3}, which precedes
	// {0,1}.
	if !(c.CompOf[4] < c.CompOf[2] && c.CompOf[2] < c.CompOf[0]) {
		t.Errorf("not bottom-up: CompOf = %v", c.CompOf)
	}
}

// TestCondenseBottomUpInvariants is the randomized structural property:
// on arbitrary digraphs the condensation must partition the nodes, every
// dependency must point at an earlier component (bottom-up order), and
// SCC membership must coincide with mutual reachability.
func TestCondenseBottomUpInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		adj := make([][]int, n)
		for i := range adj {
			seen := map[int]bool{}
			for e := r.Intn(4); e > 0; e-- {
				w := r.Intn(n)
				if !seen[w] {
					seen[w] = true
					adj[i] = append(adj[i], w)
				}
			}
		}
		c := Condense(graphOf(adj))

		// Partition: every node in exactly the component CompOf says.
		count := 0
		for ci, scc := range c.SCCs {
			for _, v := range scc.Members {
				if c.CompOf[v] != ci {
					t.Fatalf("trial %d: node %d in SCC %d but CompOf=%d", trial, v, ci, c.CompOf[v])
				}
				count++
			}
		}
		if count != n {
			t.Fatalf("trial %d: partition covers %d of %d nodes", trial, count, n)
		}

		// Bottom-up: deps strictly precede their dependents.
		for ci, deps := range c.Deps {
			for _, d := range deps {
				if d >= ci {
					t.Fatalf("trial %d: component %d depends on later/equal %d", trial, ci, d)
				}
			}
		}

		// SCC ⇔ mutual reachability.
		reach := reachability(adj)
		for v := 0; v < n; v++ {
			for w := 0; w < n; w++ {
				same := c.CompOf[v] == c.CompOf[w]
				mutual := reach[v][w] && reach[w][v]
				if same != mutual {
					t.Fatalf("trial %d: nodes %d,%d same-SCC=%v mutual-reach=%v\nadj=%v",
						trial, v, w, same, mutual, adj)
				}
			}
		}
	}
}

// reachability computes the reflexive-transitive closure by DFS.
func reachability(adj [][]int) [][]bool {
	n := len(adj)
	out := make([][]bool, n)
	for v := range out {
		out[v] = make([]bool, n)
		stack := []int{v}
		out[v][v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[x] {
				if !out[v][w] {
					out[v][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return out
}

func TestBuildCallGraphDedupAndOrder(t *testing.T) {
	src := `
class T { int v; }
class M {
    static int leaf(T t) { return t.v; }
    static int twice(T t) { return M.leaf(t) + M.leaf(t); }
    static void main() { T t = new T(); print(M.twice(t)); }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	g := BuildCallGraph(p)
	twice := g.Index[bytecode.MethodRef{Class: "M", Name: "twice"}]
	leaf := g.Index[bytecode.MethodRef{Class: "M", Name: "leaf"}]
	if got := g.Callees[twice]; !reflect.DeepEqual(got, []int{leaf}) {
		t.Errorf("duplicate invokes must dedup to one edge, got %v", got)
	}
}

// TestComputeSummariesParallelDeterministic: any worker count yields the
// same summaries as the sequential schedule, bit for bit.
func TestComputeSummariesParallelDeterministic(t *testing.T) {
	src := `
class T { int v; T f; static T sink; }
class M {
    static int ra(T t, int n) { if (n <= 0) return t.v; return M.rb(t, n - 1); }
    static int rb(T t, int n) { if (n <= 0) return 0; return M.ra(t, n - 1) + 1; }
    static int ro(T t) { return t.v; }
    static void pub(T t) { T.sink = t; }
    static T mk() { return new T(); }
    static T chain() { return M.mk(); }
    static int use(T t) { return M.ro(t) + M.ra(t, 3); }
    static void main() { T t = new T(); print(M.use(t)); M.pub(t); print(M.chain().v); }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	opts := Options{Mode: ModeFieldArray, Interprocedural: true}
	seq, err := ComputeSummariesParallel(p, opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := ComputeSummariesParallel(p, opts, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeSums(seq), normalizeSums(par)) {
			t.Fatalf("workers=%d summaries differ:\nseq: %+v\npar: %+v", workers, seq, par)
		}
	}
}

// normalizeSums converts empty-vs-nil pre-null maps to a comparable form.
func normalizeSums(s Summaries) map[string]MethodSummary {
	out := map[string]MethodSummary{}
	for ref, sum := range s {
		c := *sum
		c.ArgPreNullFields = make([]map[string]bool, len(sum.ArgPreNullFields))
		for i, m := range sum.ArgPreNullFields {
			if len(m) > 0 {
				c.ArgPreNullFields[i] = m
			}
		}
		out[ref.String()] = c
	}
	return out
}
