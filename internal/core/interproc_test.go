package core

import (
	"testing"

	"satbelim/internal/bytecode"
)

// Tests for the whole-program summary pass: ReturnsFresh call-site
// modeling, ArgPreNullFields precision, the contents abstraction (the
// arg-field-publish soundness hole), per-SCC budgets, and the injected
// trust-all unsoundness knob.

func TestReturnsFreshCallSiteElidable(t *testing.T) {
	// mk returns a brand-new object with null reference fields: the
	// caller models the call site like an allocation site, so the
	// post-call initializing store is pre-null even at inline limit 0.
	src := `
class T { int v; T f; }
class M {
    static T mk() { return new T(); }
    static void main() {
        T t = M.mk();
        t.f = new T();
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 1 {
		t.Errorf("fresh-return store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
	// Without summaries the result is just GlobalRef: no elision.
	p0, _ := analyzeSrc(t, src, 0, optsA())
	m0 := p0.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f0, _, _ := elisions(m0); len(f0) != 0 {
		t.Errorf("without summaries the store must keep its barrier, got %v", f0)
	}
}

func TestReturnsFreshThroughCallChain(t *testing.T) {
	// Freshness composes: chain's returned value is mk's fresh result
	// (a refCall reference), which the strict check accepts.
	src := `
class T { T f; }
class M {
    static T mk() { return new T(); }
    static T chain() { return M.mk(); }
    static void main() {
        T t = M.chain();
        t.f = new T();
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 1 {
		t.Errorf("chained fresh return should keep the elision, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}

func TestReturnNotFreshWhenFieldInitialized(t *testing.T) {
	// mkInit returns an object whose reference field is already non-null:
	// treating the call like an allocation would mint a false pre-null
	// fact, so the strict freshness check must reject it and the caller's
	// store must keep its barrier.
	src := `
class T { T f; }
class M {
    static T mkInit() { T t = new T(); t.f = new T(); return t; }
    static void main() {
        T t = M.mkInit();
        t.f = new T();
    }
}
`
	p, _ := analyzeI(t, src)
	sums, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	if sums[bytecode.MethodRef{Class: "M", Name: "mkInit"}].ReturnsFresh {
		t.Error("non-null-field return must not be fresh")
	}
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 0 {
		t.Errorf("store into initialized field must keep its barrier, got %v", f)
	}
}

func TestReturnNotFreshWhenEscapedOrArgReachable(t *testing.T) {
	src := `
class T { int v; T f; static T sink; }
class M {
    static T leak() { T t = new T(); T.sink = t; return t; }
    static T give(T t) { return t.f; }
    static void main() { }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	sums, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	if sums[bytecode.MethodRef{Class: "M", Name: "leak"}].ReturnsFresh {
		t.Error("escaped return must not be fresh")
	}
	if sums[bytecode.MethodRef{Class: "M", Name: "give"}].ReturnsFresh {
		t.Error("argument-reachable return must not be fresh")
	}
}

func TestFreshReturnIntFieldsTainted(t *testing.T) {
	// mkv initializes an int field of its fresh result: the caller must
	// read ⊤ (not the allocation default 0) for it, or a stale index
	// proof would unsoundly elide the array store below.
	src := `
class T { int v; T f; }
class M {
    static T mkv() { T t = new T(); t.v = 3; return t; }
    static void main() {
        T t = M.mkv();
        T[] a = new T[4];
        a[t.v] = t;
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if _, arr, _ := elisions(m); len(arr) != 0 {
		t.Errorf("store indexed by callee-written int must keep its barrier, got %v:\n%s",
			arr, bytecode.Disassemble(m))
	}
}

func TestCtorSummaryPreservesUntouchedFieldFacts(t *testing.T) {
	// The constructor writes only field a of its receiver: with
	// ArgPreNullFields the caller keeps its pre-null fact about the
	// untouched field b, so the post-construction t.b store is elidable
	// even with the constructor call not inlined.
	src := `
class T { T a; T b;
    T(T x) { a = x; }
}
class M {
    static void main() {
        T t = new T(null);
        t.b = new T(null);
    }
}
`
	p, _ := analyzeI(t, src)
	sums, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	ctor := sums[bytecode.MethodRef{Class: "T", Name: "<init>"}]
	if ctor.ArgCompromised[0] {
		t.Fatal("constructor receiver must stay uncompromised")
	}
	if ctor.PreNull(0, "T.a") {
		t.Error("written field T.a must leave the receiver's pre-null set")
	}
	if !ctor.PreNull(0, "T.b") {
		t.Error("untouched field T.b must stay in the receiver's pre-null set")
	}
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	// The ctor's own `a = x` store is in <init>; main's t.b store is the
	// one at stake here.
	if len(f) != 1 {
		t.Errorf("t.b store should stay elidable past the ctor call, got %v:\n%s",
			f, bytecode.Disassemble(m))
	}
}

func TestSummaryArgFieldPublishCompromises(t *testing.T) {
	// Regression for the contents-abstraction soundness hole: foo
	// publishes q.link — an object the CALLER can reach (y below). The
	// summary must compromise q, or the caller would keep elisions on
	// objects that escaped through the argument's contents.
	src := `
class C { C link; C g; static C gs; }
class M {
    static int foo(C q) { C.gs = q.link; return 0; }
    static void main() {
        C y = new C();
        C x = new C();
        x.link = y;
        print(M.foo(x));
        y.g = new C();
    }
}
`
	p, _ := analyzeI(t, src)
	sums, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	if !sums[bytecode.MethodRef{Class: "M", Name: "foo"}].ArgCompromised[0] {
		t.Fatal("publishing the argument's contents must compromise the argument")
	}
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	// Only the pre-call x.link = y store is elidable; the post-call y.g
	// store must keep its barrier (y escaped through foo).
	if len(f) != 1 {
		t.Fatalf("want exactly the pre-call elision, got %v:\n%s", f, bytecode.Disassemble(m))
	}
	var stores []int
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpPutField {
			stores = append(stores, pc)
		}
	}
	if f[0] != stores[0] {
		t.Errorf("elision at pc %d, want the pre-call store at pc %d", f[0], stores[0])
	}
}

func TestSummaryDeepContentMutationCompromises(t *testing.T) {
	// Writing through the argument's contents (q.link.g) mutates an
	// object the caller may track by name: no finer invalidation exists,
	// so the argument is compromised.
	src := `
class C { C link; C g; }
class M {
    static void deep(C q) { q.link.g = new C(); }
    static void main() {
        C y = new C();
        C x = new C();
        x.link = y;
        M.deep(x);
        y.g = new C();
    }
}
`
	p, _ := analyzeI(t, src)
	sums, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	if !sums[bytecode.MethodRef{Class: "M", Name: "deep"}].ArgCompromised[0] {
		t.Fatal("mutation through the argument's contents must compromise it")
	}
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	for _, pc := range mustElisions(t, m) {
		// The y.g store is the last putfield; it must not be elided.
		if m.Code[pc].Op == bytecode.OpPutField && pc == lastPutfield(m) {
			t.Errorf("store into deep-mutated object elided at pc %d:\n%s", pc, bytecode.Disassemble(m))
		}
	}
}

func mustElisions(t *testing.T, m *bytecode.Method) []int {
	t.Helper()
	f, arr, _ := elisions(m)
	return append(f, arr...)
}

func lastPutfield(m *bytecode.Method) int {
	last := -1
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpPutField {
			last = pc
		}
	}
	return last
}

func TestSummaryBudgetDegradesOnlyTheComponent(t *testing.T) {
	// A 1-round budget cannot finish the cyclic pair (its first round
	// worsens rb), so the whole component degrades to the worst case —
	// but the unrelated read-only method keeps its precise summary, and
	// the degradation is deterministic (structural, cache-safe).
	src := `
class T { int v; T f; static T sink; }
class M {
    static int ra(T t, int n) { if (n <= 0) return 0; return M.rb(t, n - 1); }
    static int rb(T t, int n) { T.sink = t; if (n <= 0) return 0; return M.ra(t, n - 1); }
    static int ro(T t) { return t.v; }
    static void main() { }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	opts := optsI()
	opts.MaxSummaryRoundsPerSCC = 1
	sums, err := ComputeSummaries(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ra", "rb"} {
		s := sums[bytecode.MethodRef{Class: "M", Name: name}]
		if !s.ArgCompromised[0] || !s.ArgIntMutated[0] {
			t.Errorf("%s must degrade to the worst case under a 1-round budget: %+v", name, s)
		}
	}
	if sums[bytecode.MethodRef{Class: "M", Name: "ro"}].ArgCompromised[0] {
		t.Error("budget degradation must not leak outside the cyclic component")
	}
	// Default budget converges and is strictly more precise: ra
	// publishes transitively, but ArgIntMutated stays false.
	full, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	ra := full[bytecode.MethodRef{Class: "M", Name: "ra"}]
	if !ra.ArgCompromised[0] || ra.ArgIntMutated[0] {
		t.Errorf("converged ra summary = %+v, want compromised but not int-mutated", ra)
	}
}

func TestUnsoundTrustAllSummariesSkipsRerun(t *testing.T) {
	// ra is summarized before its cycle-mate rb within the round; rb
	// publishes the shared argument. Skipping the compromise re-run
	// leaves ra trusting rb's stale optimistic summary — the injected
	// bug the metamorphic campaign must catch dynamically.
	src := `
class T { int v; T f; static T sink; }
class M {
    static int ra(T t, int n) { if (n <= 0) return 0; return M.rb(t, n - 1); }
    static int rb(T t, int n) { T.sink = t; if (n <= 0) return 0; return M.ra(t, n - 1); }
    static void main() { }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	sound, err := ComputeSummaries(p, optsI())
	if err != nil {
		t.Fatal(err)
	}
	if !sound[bytecode.MethodRef{Class: "M", Name: "ra"}].ArgCompromised[0] {
		t.Fatal("sound fixed point must compromise ra's argument transitively")
	}
	unsound := optsI()
	unsound.UnsoundTrustAllSummaries = true
	trusted, err := ComputeSummaries(p, unsound)
	if err != nil {
		t.Fatal(err)
	}
	if trusted[bytecode.MethodRef{Class: "M", Name: "ra"}].ArgCompromised[0] {
		t.Fatal("trust-all knob should have produced the unsound clean summary for ra " +
			"(the self-test relies on this exact wrongness)")
	}
	if !trusted[bytecode.MethodRef{Class: "M", Name: "rb"}].ArgCompromised[0] {
		t.Error("rb publishes directly; even trust-all sees that")
	}
}
