package core

import (
	"testing"

	"satbelim/internal/intval"
)

func TestValueMergeBasics(t *testing.T) {
	var n intval.Namer
	ctx := intval.NewMergeCtx(&n)

	// Bottom is the merge identity.
	v := RefValue(SingletonRef(3))
	if got := mergeValue(Bottom, v, ctx); !got.Equal(v) {
		t.Error("⊥ ⊔ v = v")
	}
	if got := mergeValue(v, Bottom, ctx); !got.Equal(v) {
		t.Error("v ⊔ ⊥ = v")
	}
	// Ref sets union.
	w := RefValue(SingletonRef(5))
	m := mergeValue(v, w, ctx)
	if !m.Refs().Has(3) || !m.Refs().Has(5) {
		t.Error("ref merge should union")
	}
	// Null (empty set) is a normal refs value.
	m2 := mergeValue(NullValue(), v, ctx)
	if !m2.Refs().Equal(SingletonRef(3)) {
		t.Error("null ⊔ {r} = {r}")
	}
	// Kind mismatch degrades to top int (cannot occur in verified code).
	m3 := mergeValue(v, IntValue(intval.Const(1)), ctx)
	if !m3.Int().IsTop() {
		t.Error("kind mismatch should degrade to ⊤ int")
	}
	// Ints go through the shared stride machinery.
	m4 := mergeValue(IntValue(intval.Const(0)), IntValue(intval.Const(1)), ctx)
	if !m4.Int().HasVar() {
		t.Errorf("0 ⊔ 1 should invent a stride variable, got %v", m4)
	}
}

func TestStateLookupDefaults(t *testing.T) {
	s := newState(0)
	s.nl = SingletonRef(GlobalRefID)

	// Unknown field of a thread-local ref defaults to null / zero.
	if v := s.lookup(5, "T.f", false); !v.Refs().IsEmpty() {
		t.Errorf("ref default should be null, got %v", v)
	}
	if v := s.lookup(5, "T.k", true); !v.Int().Equal(intval.Const(0)) {
		t.Errorf("int default should be 0, got %v", v)
	}
	// NL refs answer GlobalRef / ⊤.
	if v := s.lookup(GlobalRefID, "T.f", false); !v.Refs().Equal(SingletonRef(GlobalRefID)) {
		t.Errorf("NL lookup = %v", v)
	}
	if v := s.lookup(GlobalRefID, "T.k", true); !v.Int().IsTop() {
		t.Errorf("NL int lookup = %v", v)
	}
	// fieldIsNull mirrors those rules.
	if !s.fieldIsNull(5, "T.f") {
		t.Error("unwritten field of local ref is null")
	}
	if s.fieldIsNull(GlobalRefID, "T.f") {
		t.Error("NL fields are never known null")
	}
	s.sigma[sigKey{ref: 5, field: "T.f"}] = RefValue(SingletonRef(7))
	if s.fieldIsNull(5, "T.f") {
		t.Error("written field is not null")
	}
}

func TestEscapeTransitiveClosure(t *testing.T) {
	s := newState(0)
	s.nl = SingletonRef(GlobalRefID)
	// 1 -> 2 -> 3 via σ; 4 unrelated.
	s.sigma[sigKey{ref: 1, field: "T.a"}] = RefValue(SingletonRef(2))
	s.sigma[sigKey{ref: 2, field: elemsField}] = RefValue(SingletonRef(3))
	s.sigma[sigKey{ref: 4, field: "T.a"}] = RefValue(SingletonRef(4))

	s.escape(SingletonRef(1))
	for _, r := range []RefID{1, 2, 3} {
		if !s.nl.Has(r) {
			t.Errorf("ref %d should have escaped", r)
		}
	}
	if s.nl.Has(4) {
		t.Error("unreachable ref must not escape")
	}
}

func TestEscapeCond(t *testing.T) {
	s := newState(0)
	s.nl = SingletonRef(GlobalRefID)
	val := RefValue(SingletonRef(9))
	// Store into a thread-local target: no escape.
	s.escapeCond(SingletonRef(5), val)
	if s.nl.Has(9) {
		t.Error("store into local target must not escape the value")
	}
	// Store into a (possibly) NL target: value escapes.
	s.escapeCond(SingletonRef(GlobalRefID), val)
	if !s.nl.Has(9) {
		t.Error("store into NL target must escape the value")
	}
}

func TestRenameAllocMovesEverything(t *testing.T) {
	s := newState(2)
	s.nl = SingletonRef(GlobalRefID).With(2) // A-ref 2 escaped
	s.locals[0] = RefValue(SingletonRef(2))
	s.stack = append(s.stack, RefValue(SingletonRef(2).With(7)))
	s.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(2))
	s.sigma[sigKey{ref: 7, field: "T.g"}] = RefValue(SingletonRef(2))
	s.length[2] = intval.Const(4)
	s.nr[2] = intval.Low(intval.Const(1))

	s.renameAlloc(2, 3) // A=2 -> B=3

	if s.locals[0].Refs().Has(2) || !s.locals[0].Refs().Has(3) {
		t.Error("locals not renamed")
	}
	if s.stack[0].Refs().Has(2) || !s.stack[0].Refs().Has(3) || !s.stack[0].Refs().Has(7) {
		t.Error("stack not renamed")
	}
	if s.nl.Has(2) || !s.nl.Has(3) {
		t.Error("NL not renamed")
	}
	if _, ok := s.sigma[sigKey{ref: 2, field: "T.f"}]; ok {
		t.Error("σ key not transferred")
	}
	if v := s.sigma[sigKey{ref: 3, field: "T.f"}]; !v.Refs().Has(3) {
		t.Errorf("σ transfer should rename values too, got %v", v)
	}
	if v := s.sigma[sigKey{ref: 7, field: "T.g"}]; v.Refs().Has(2) || !v.Refs().Has(3) {
		t.Error("other entries' values not renamed")
	}
	if _, ok := s.length[2]; ok {
		t.Error("Len not moved")
	}
	if l := s.length[3]; !l.Equal(intval.Const(4)) {
		t.Errorf("Len(B) = %v", l)
	}
	if _, ok := s.nr[2]; ok {
		t.Error("NR not moved")
	}
}

func TestRenameAllocWeakMergeIntoSummary(t *testing.T) {
	s := newState(0)
	s.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(9))
	s.sigma[sigKey{ref: 3, field: "T.f"}] = RefValue(SingletonRef(8))
	s.renameAlloc(2, 3)
	got := s.sigma[sigKey{ref: 3, field: "T.f"}]
	if !got.Refs().Has(8) || !got.Refs().Has(9) {
		t.Errorf("summary merge should union: %v", got)
	}
	// Transferring into an absent summary entry must merge with the
	// allocation default (null), not overwrite it away: the resulting
	// entry keeps the A value.
	s2 := newState(0)
	s2.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(9))
	s2.renameAlloc(2, 3)
	if got := s2.sigma[sigKey{ref: 3, field: "T.f"}]; !got.Refs().Has(9) {
		t.Errorf("transfer into empty summary: %v", got)
	}
}

func TestMergeStatesSigmaDefaults(t *testing.T) {
	var n intval.Namer
	a := newState(1)
	b := newState(1)
	a.locals[0] = NullValue()
	b.locals[0] = NullValue()
	// a has a non-null entry; b implicitly holds the null default.
	a.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(5))
	merged, changed := mergeStates(a, b, &n, false)
	// b's implicit default is null; union with {5} leaves a unchanged.
	if changed {
		t.Error("union with the implicit null default should not report change")
	}
	got := merged.sigma[sigKey{ref: 2, field: "T.f"}]
	if !got.Refs().Has(5) {
		t.Errorf("merged σ = %v", got)
	}

	// The reverse direction: a lacks the entry, b carries a non-default
	// value — the merge must report a change.
	c := newState(1)
	c.locals[0] = NullValue()
	d := newState(1)
	d.locals[0] = NullValue()
	d.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(5))
	merged2, changed2 := mergeStates(c, d, &n, false)
	if !changed2 {
		t.Error("a new non-default entry must report change")
	}
	if got := merged2.sigma[sigKey{ref: 2, field: "T.f"}]; !got.Refs().Has(5) {
		t.Errorf("merged σ = %v", got)
	}
}

func TestMergeStatesLenNRIntersection(t *testing.T) {
	var n intval.Namer
	a := newState(0)
	b := newState(0)
	a.length[2] = intval.Const(4)
	a.nr[2] = intval.Low(intval.Const(0))
	// b lacks both: merged must drop them (no information on one path).
	merged, _ := mergeStates(a, b, &n, false)
	if _, ok := merged.length[2]; ok {
		t.Error("Len should intersect keys")
	}
	if _, ok := merged.nr[2]; ok {
		t.Error("NR should intersect keys")
	}
}

func TestStatesEqualTreatsDefaultsAsAbsent(t *testing.T) {
	a := newState(1)
	b := newState(1)
	a.locals[0] = NullValue()
	b.locals[0] = NullValue()
	a.sigma[sigKey{ref: 2, field: "T.f"}] = NullValue() // explicit default
	if !statesEqual(a, b) || !statesEqual(b, a) {
		t.Error("explicit null entry equals absent entry")
	}
	a.sigma[sigKey{ref: 2, field: "T.f"}] = RefValue(SingletonRef(1))
	if statesEqual(a, b) || statesEqual(b, a) {
		t.Error("non-default entry must break equality")
	}
}

func TestSrcSetOperations(t *testing.T) {
	k1 := srcKey{ref: 1, field: "T.f"}
	k2 := srcKey{ref: 2, field: "T.g"}
	s := singletonSrc(k1)
	if !s.has(k1) || s.has(k2) {
		t.Error("membership")
	}
	both := &srcSet{keys: []srcKey{k1, k2}}
	if got := both.intersect(singletonSrc(k1)); !got.has(k1) || got.has(k2) {
		t.Error("intersect")
	}
	if got := both.dropField("T.g"); got.has(k2) || !got.has(k1) {
		t.Error("dropField")
	}
	if got := both.dropRefs(SingletonRef(1)); got.has(k1) || !got.has(k2) {
		t.Error("dropRefs")
	}
	var nilSet *srcSet
	if nilSet.has(k1) || nilSet.intersect(s) != nil || nilSet.dropField("x") != nil {
		t.Error("nil set behaviour")
	}
	if !nilSet.equal(nil) || nilSet.equal(s) {
		t.Error("nil equality")
	}
}
