package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"satbelim/internal/bytecode"
)

func TestRefSetBasics(t *testing.T) {
	s := EmptyRefSet
	if !s.IsEmpty() {
		t.Fatal("empty set")
	}
	s = s.With(3).With(70).With(3)
	if s.Count() != 2 {
		t.Errorf("count = %d", s.Count())
	}
	if !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Error("membership")
	}
	s2 := s.Without(3)
	if s2.Has(3) || !s.Has(3) {
		t.Error("Without must not mutate the receiver")
	}
	if r, ok := SingletonRef(70).Single(); !ok || r != 70 {
		t.Errorf("Single = %d, %v", r, ok)
	}
	if _, ok := s.Single(); ok {
		t.Error("two-element set is not a singleton")
	}
	if _, ok := EmptyRefSet.Single(); ok {
		t.Error("empty set is not a singleton")
	}
}

func TestRefSetOps(t *testing.T) {
	a := EmptyRefSet.With(1).With(2)
	b := EmptyRefSet.With(2).With(65)
	u := a.Union(b)
	if u.Count() != 3 || !u.Has(65) {
		t.Errorf("union = %v", u)
	}
	if !a.Intersects(b) {
		t.Error("a and b share 2")
	}
	if a.Intersects(SingletonRef(9)) {
		t.Error("no intersection expected")
	}
	if !u.Contains(a) || !u.Contains(b) || a.Contains(u) {
		t.Error("containment")
	}
	if !a.Equal(EmptyRefSet.With(2).With(1)) {
		t.Error("order-independent equality")
	}
}

func genRefSet(r *rand.Rand) RefSet {
	s := EmptyRefSet
	for i := 0; i < r.Intn(6); i++ {
		s = s.With(RefID(r.Intn(130)))
	}
	return s
}

func TestQuickRefSetUnionLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genRefSet(r), genRefSet(r), genRefSet(r)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(a).Equal(a) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		return a.Union(b).Contains(a) && a.Union(b).Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRefSetWithWithout(t *testing.T) {
	f := func(seed int64, id8 uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := genRefSet(r)
		id := RefID(id8 % 130)
		if !s.With(id).Has(id) {
			return false
		}
		if s.With(id).Without(id).Has(id) {
			return false
		}
		// ForEach visits exactly Count members in increasing order.
		prev := RefID(-1)
		n := 0
		s.ForEach(func(x RefID) {
			if x <= prev {
				t.Fatalf("ForEach out of order: %d after %d", x, prev)
			}
			prev = x
			n++
		})
		return n == s.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuildRefTableNamesEverything(t *testing.T) {
	b := bytecode.NewBuilder("T", "m", false)
	b.DeclareSlot(bytecode.ClassType("T")) // receiver
	b.AddParam(bytecode.Int)
	b.AddParam(bytecode.ArrayOf(bytecode.ClassType("U")))
	b.New("T")
	b.Op(bytecode.OpPop)
	b.Const(3)
	b.NewArray(bytecode.ClassType("U"))
	b.Op(bytecode.OpPop)
	b.Return()
	m := b.Build()

	tab := buildRefTable(nil, m, Options{}, false)
	// Global + 2 ref args (receiver, array; the int param gets none) +
	// 2 sites × 2 refs.
	if tab.count() != 1+2+4 {
		t.Fatalf("refs = %d", tab.count())
	}
	if _, ok := tab.argRef[0]; !ok {
		t.Error("receiver ref missing")
	}
	if _, ok := tab.argRef[1]; ok {
		t.Error("int param must not get a ref")
	}
	if _, ok := tab.argRef[2]; !ok {
		t.Error("array param ref missing")
	}
	for pc, a := range tab.allocA {
		if tab.allocB[pc] == a {
			t.Error("A and B refs must differ")
		}
		if !tab.unique(a) {
			t.Error("A refs are unique")
		}
		if tab.unique(tab.allocB[pc]) {
			t.Error("B refs are summaries")
		}
	}

	// Single-summary ablation: A == B, nothing unique.
	tab2 := buildRefTable(nil, m, Options{SingleRefPerSite: true}, false)
	for pc, a := range tab2.allocA {
		if tab2.allocB[pc] != a {
			t.Error("ablation should collapse A and B")
		}
		if tab2.unique(a) {
			t.Error("ablation removes uniqueness")
		}
	}
}

func TestCtorReceiverUniqueThreadLocal(t *testing.T) {
	b := bytecode.NewBuilder("T", "<init>", false)
	b.SetCtor()
	b.DeclareSlot(bytecode.ClassType("T"))
	b.Return()
	m := b.Build()
	tab := buildRefTable(nil, m, Options{}, false)
	r := tab.argRef[0]
	if !tab.unique(r) {
		t.Error("constructor this must be unique (§2.3)")
	}
	// Non-ctor receiver is not unique.
	b2 := bytecode.NewBuilder("T", "m", false)
	b2.DeclareSlot(bytecode.ClassType("T"))
	b2.Return()
	tab2 := buildRefTable(nil, b2.Build(), Options{}, false)
	if tab2.unique(tab2.argRef[0]) {
		t.Error("plain method this must not be unique")
	}
}
