package core

import (
	"satbelim/internal/bytecode"
)

// The callgraph layer schedules the interprocedural summary computation
// (summaries.go): summaries are a bottom-up property — a method's facts
// depend only on its callees' — so instead of iterating every method of
// the program round-robin until nothing changes, we condense the
// callgraph into strongly connected components (Tarjan) and process the
// SCCs in reverse topological order. Acyclic components converge in a
// single pass (their callees are final by construction); cyclic
// components (recursion) iterate internally to a fixed point under the
// monotone-compromise guarantee. Independent components are processed in
// parallel by the same worker pool that fans out the per-method analysis.

// CallGraph is the static call graph over a program's methods, with
// nodes indexed by position in p.Methods() (the deterministic program
// order) and edges pointing caller → callee. OpSpawn edges are excluded:
// a spawned receiver always escapes, so spawn sites never consult the
// target's summary.
type CallGraph struct {
	// Methods is p.Methods(): node i is Methods[i].
	Methods []*bytecode.Method
	// Index maps a method reference to its node.
	Index map[bytecode.MethodRef]int
	// Callees[i] lists the nodes method i invokes, deduplicated, in
	// first-occurrence order of the invoke instructions (deterministic).
	Callees [][]int
}

// BuildCallGraph scans every method's code for OpInvoke edges.
// Unresolvable callees (absent from the program) are skipped; verified
// programs have none.
func BuildCallGraph(p *bytecode.Program) *CallGraph {
	methods := p.Methods()
	g := &CallGraph{
		Methods: methods,
		Index:   make(map[bytecode.MethodRef]int, len(methods)),
		Callees: make([][]int, len(methods)),
	}
	for i, m := range methods {
		g.Index[m.Ref()] = i
	}
	for i, m := range methods {
		var seen map[int]bool
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != bytecode.OpInvoke {
				continue
			}
			j, ok := g.Index[in.Method]
			if !ok {
				continue
			}
			if seen == nil {
				seen = map[int]bool{}
			}
			if seen[j] {
				continue
			}
			seen[j] = true
			g.Callees[i] = append(g.Callees[i], j)
		}
	}
	return g
}

// SCC is one strongly connected component of the callgraph.
type SCC struct {
	// Members are node indices in ascending order (program order).
	Members []int
	// Cyclic reports whether the component contains a cycle: more than
	// one member, or a single member that calls itself. Acyclic
	// components need exactly one summary pass.
	Cyclic bool
}

// Condensation is the callgraph condensed to its SCCs, in bottom-up
// (reverse topological) order: every component appears after all the
// components it calls into, so processing them in slice order always
// sees final callee summaries. The order is deterministic — Tarjan's
// emission order for a fixed adjacency structure, which BuildCallGraph
// derives from program order.
type Condensation struct {
	Graph *CallGraph
	SCCs  []SCC
	// CompOf maps a node to its component index in SCCs.
	CompOf []int
	// Deps[c] lists the component indices c's members call into
	// (excluding c itself), deduplicated; all are < c by construction.
	Deps [][]int
	// Dependents[c] is the reverse of Deps: components that call into c.
	// The parallel scheduler uses it to release waiting components.
	Dependents [][]int
}

// Condense runs Tarjan's SCC algorithm (iteratively — generated programs
// are small but workloads can have deep call chains) and builds the
// component DAG.
func Condense(g *CallGraph) *Condensation {
	n := len(g.Methods)
	c := &Condensation{Graph: g, CompOf: make([]int, n)}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		c.CompOf[i] = -1
	}
	var stack []int
	next := 0

	// Iterative Tarjan: each frame tracks the node and the position in
	// its callee list.
	type frame struct {
		node int
		edge int
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = append(frames[:0], frame{node: root})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.node
			if f.edge < len(g.Callees[v]) {
				w := g.Callees[v][f.edge]
				f.edge++
				switch {
				case index[w] == -1:
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				case onStack[w]:
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			// v is finished: pop its frame, fold lowlink into the parent,
			// and emit an SCC if v is a root.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			comp := len(c.SCCs)
			var members []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				c.CompOf[w] = comp
				members = append(members, w)
				if w == v {
					break
				}
			}
			// Ascending program order within the component, for
			// deterministic fixed-point iteration.
			sortInts(members)
			cyclic := len(members) > 1
			if !cyclic {
				for _, w := range g.Callees[members[0]] {
					if w == members[0] {
						cyclic = true // self-loop
					}
				}
			}
			c.SCCs = append(c.SCCs, SCC{Members: members, Cyclic: cyclic})
		}
	}

	// Component DAG edges (deduplicated, deterministic order).
	c.Deps = make([][]int, len(c.SCCs))
	c.Dependents = make([][]int, len(c.SCCs))
	for ci := range c.SCCs {
		seen := map[int]bool{}
		for _, v := range c.SCCs[ci].Members {
			for _, w := range g.Callees[v] {
				cw := c.CompOf[w]
				if cw == ci || seen[cw] {
					continue
				}
				seen[cw] = true
				c.Deps[ci] = append(c.Deps[ci], cw)
				c.Dependents[cw] = append(c.Dependents[cw], ci)
			}
		}
	}
	return c
}

// sortInts is an insertion sort: SCC member lists are tiny and this
// avoids pulling in package sort for an int slice.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
