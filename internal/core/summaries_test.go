package core

import (
	"testing"

	"satbelim/internal/bytecode"
)

func optsI() Options { return Options{Mode: ModeFieldArray, Interprocedural: true} }

// analyzeI compiles at inline limit 0 (calls preserved) with summaries.
func analyzeI(t *testing.T, src string) (*bytecode.Program, *ProgramReport) {
	t.Helper()
	return analyzeSrc(t, src, 0, optsI())
}

func TestSummaryReadOnlyCalleeKeepsArgLocal(t *testing.T) {
	// weigh only reads its argument: the post-call store stays elidable
	// even though the call is not inlined.
	src := `
class T { int v; T f; }
class M {
    static int weigh(T t) { return t.v * 2; }
    static void main() {
        T t = new T();
        print(M.weigh(t));
        t.f = new T();   // t survived the call thread-local
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("read-only callee should keep the elision, got %v:\n%s", f, bytecode.Disassemble(m))
	}
	// Without summaries, the call compromises t.
	p0, _ := analyzeSrc(t, src, 0, optsA())
	m0 := p0.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f0, _, _ := elisions(m0); len(f0) != 0 {
		t.Errorf("without summaries the store must keep its barrier, got %v", f0)
	}
}

func TestSummaryIntMutationTaintsIntsNotRefs(t *testing.T) {
	// poke writes only an int field: the argument stays thread-local, so
	// reference-field pre-null facts survive the call (the store below
	// is still sound to elide) — but integer facts about it must be
	// forgotten.
	src := `
class T { int v; T f; }
class M {
    static void poke(T t) { t.v = 9; }
    static void main() {
        T t = new T();
        M.poke(t);
        t.f = new T();   // ref field untouched by poke: elidable
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 1 {
		t.Errorf("int-only mutation must not block ref-field elision, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}

func TestSummaryIntMutationBlocksStaleIndexProof(t *testing.T) {
	// The callee rewrites the int field the caller uses as a fill index:
	// the caller's "idx is still 0" fact would be stale, so the array
	// store must keep its barrier.
	src := `
class T { int idx; }
class M {
    static void bump(T t) { t.idx = t.idx + 2; }
    static void fillOne(T t, T[] a) { }
    static void main() {
        T t = new T();          // t.idx = 0
        T[] a = new T[4];
        M.bump(t);              // idx now 2, but only the summary knows
        a[t.idx] = t;           // must NOT be proven in-null-range via idx=0
        a[0] = t;               // index 0 is genuinely the low end: elidable
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	_, arr, _ := elisions(m)
	// Only the literal a[0] store may be elided; the a[t.idx] store reads
	// a tainted int and must stay.
	var stores []int
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpAAStore {
			stores = append(stores, pc)
		}
	}
	if len(stores) != 2 {
		t.Fatalf("expected 2 aastores, got %v", stores)
	}
	for _, pc := range arr {
		if pc == stores[0] {
			t.Errorf("store with tainted index must keep its barrier:\n%s", bytecode.Disassemble(m))
		}
	}
}

func TestSummaryPublishingCalleeCompromisesArg(t *testing.T) {
	src := `
class T { T f; static T sink; }
class M {
    static void publish(T t) { T.sink = t; }
    static void main() {
        T t = new T();
        M.publish(t);
        t.f = new T();   // t escaped through the static
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 0 {
		t.Errorf("publishing callee must compromise the argument, got %v", f)
	}
}

func TestSummaryReturnedArgCompromised(t *testing.T) {
	// Returning the argument makes it reachable from the (GlobalRef-
	// summarized) result; callers must treat it as escaped.
	src := `
class T { T f; }
class M {
    static T id(T t) { return t; }
    static void main() {
        T t = new T();
        T u = M.id(t);
        t.f = u;   // t may be reachable via the call's result
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 0 {
		t.Errorf("returned argument must be compromised, got %v", f)
	}
}

func TestSummaryStoreIntoOtherArgCompromisesStored(t *testing.T) {
	// link stores b into a's field: b becomes reachable from a through a
	// path the caller cannot track, so b is compromised. a itself stays
	// thread-local — the callee's write is a targeted dirty field (T.f),
	// so the caller keeps its pre-null fact about the untouched a.g and
	// that store stays elidable, while losing the fact about a.f.
	src := `
class T { T f; T g; }
class M {
    static void link(T a, T b) { a.f = b; }
    static void main() {
        T a = new T();
        T b = new T();
        M.link(a, b);
        a.g = new T();  // g untouched by callee: still elidable
        a.f = new T();  // f dirtied by callee: must keep its barrier
        b.g = new T();  // b reachable via a: compromised
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Fatalf("exactly the a.g store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
	// The single elision must be the first post-call putfield (a.g).
	var stores []int
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpPutField {
			stores = append(stores, pc)
		}
	}
	if len(stores) != 3 {
		t.Fatalf("expected 3 putfields, got %v", stores)
	}
	if f[0] != stores[0] {
		t.Errorf("elision at pc %d, want the a.g store at pc %d:\n%s", f[0], stores[0], bytecode.Disassemble(m))
	}
}

func TestSummaryTransitiveThroughHelperChain(t *testing.T) {
	src := `
class T { int v; T f; static T sink; }
class M {
    static int readOnly(T t) { return t.v; }
    static int viaHelper(T t) { return M.readOnly(t) + 1; }
    static void leakDeep(T t) { M.publish(t); }
    static void publish(T t) { T.sink = t; }
    static void main() {
        T ok = new T();
        print(M.viaHelper(ok));
        ok.f = new T();       // stays elidable: chain is read-only

        T bad = new T();
        M.leakDeep(bad);
        bad.f = new T();      // compromised transitively
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	f, _, _ := elisions(m)
	if len(f) != 1 {
		t.Errorf("exactly the read-only-chain store should be elided, got %v:\n%s", f, bytecode.Disassemble(m))
	}
}

func TestSummaryRecursiveCalleeConverges(t *testing.T) {
	src := `
class T { int v; T f; }
class M {
    static int depth(T t, int n) { if (n == 0) return t.v; return M.depth(t, n - 1); }
    static void main() {
        T t = new T();
        print(M.depth(t, 3));
        t.f = new T();  // recursion is read-only on t
    }
}
`
	p, _ := analyzeI(t, src)
	m := p.Method(bytecode.MethodRef{Class: "M", Name: "main"})
	if f, _, _ := elisions(m); len(f) != 1 {
		t.Errorf("read-only recursion should keep the elision, got %v", f)
	}
}

func TestComputeSummariesDirect(t *testing.T) {
	src := `
class T { int v; T f; static T sink; }
class M {
    static int ro(T t) { return t.v; }
    static void mut(T t) { t.f = null; }
    static void pub(T t) { T.sink = t; }
    static void main() { }
}
`
	p, _ := analyzeSrc(t, src, 0, Options{Mode: ModeNone})
	sums, err := ComputeSummaries(p, Options{Mode: ModeFieldArray})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, want bool) {
		t.Helper()
		s := sums[bytecode.MethodRef{Class: "M", Name: name}]
		if s == nil || len(s.ArgCompromised) != 1 {
			t.Fatalf("%s summary = %+v", name, s)
		}
		if s.ArgCompromised[0] != want {
			t.Errorf("%s arg compromised = %v, want %v", name, s.ArgCompromised[0], want)
		}
	}
	check("ro", false)
	// mut writes only its own argument's field: no compromise, but the
	// written field leaves the pre-null set.
	check("mut", false)
	check("pub", true)
	mut := sums[bytecode.MethodRef{Class: "M", Name: "mut"}]
	if mut.PreNull(0, "T.f") {
		t.Error("written field T.f must leave the pre-null set")
	}
	ro := sums[bytecode.MethodRef{Class: "M", Name: "ro"}]
	if !ro.PreNull(0, "T.f") {
		t.Error("untouched field T.f must stay pre-null for the read-only callee")
	}
}
