package core

import (
	"fmt"
	"sort"
	"strings"

	"satbelim/internal/intval"
)

// vkind classifies an abstract Value.
type vkind int8

const (
	// vBottom is the uninitialized lattice bottom ⊥: merge identity.
	vBottom vkind = iota
	// vRefs is a set of possible abstract references; the empty set means
	// definitely null.
	vRefs
	// vInt is a symbolic integer (booleans are folded into this domain).
	vInt
)

// srcKey identifies a heap slot for the null-or-same extension (§4.3).
type srcKey struct {
	ref   RefID
	field string
}

// srcSet records the null-or-same guarantees carried by a value: key k is
// present when, at the current program point, the heap slot k either
// contains this very value or contains null. Sets are immutable.
type srcSet struct{ keys []srcKey } // sorted

func (s *srcSet) has(k srcKey) bool {
	if s == nil {
		return false
	}
	i := sort.Search(len(s.keys), func(i int) bool {
		return !srcKeyLess(s.keys[i], k)
	})
	return i < len(s.keys) && s.keys[i] == k
}

func srcKeyLess(a, b srcKey) bool {
	if a.ref != b.ref {
		return a.ref < b.ref
	}
	return a.field < b.field
}

func singletonSrc(k srcKey) *srcSet { return &srcSet{keys: []srcKey{k}} }

// intersect returns the common guarantees of two sets.
func (s *srcSet) intersect(t *srcSet) *srcSet {
	if s == nil || t == nil {
		return nil
	}
	var out []srcKey
	i, j := 0, 0
	for i < len(s.keys) && j < len(t.keys) {
		switch {
		case s.keys[i] == t.keys[j]:
			out = append(out, s.keys[i])
			i++
			j++
		case srcKeyLess(s.keys[i], t.keys[j]):
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return &srcSet{keys: out}
}

// dropField removes guarantees about any slot with the given field name
// (conservative aliasing: a store to f anywhere may change any f).
func (s *srcSet) dropField(field string) *srcSet {
	if s == nil {
		return nil
	}
	var out []srcKey
	for _, k := range s.keys {
		if k.field != field {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == len(s.keys) {
		return s
	}
	return &srcSet{keys: out}
}

// dropRefs removes guarantees about slots of escaped references: once an
// object is reachable by other threads, "the field still holds this value"
// can no longer be maintained (the paper's §4.3 mutator/mutator caveat).
func (s *srcSet) dropRefs(nl RefSet) *srcSet {
	if s == nil {
		return nil
	}
	var out []srcKey
	for _, k := range s.keys {
		if !nl.Has(k.ref) {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil
	}
	if len(out) == len(s.keys) {
		return s
	}
	return &srcSet{keys: out}
}

func (s *srcSet) equal(t *srcSet) bool {
	if s == nil || t == nil {
		return (s == nil) == (t == nil)
	}
	if len(s.keys) != len(t.keys) {
		return false
	}
	for i := range s.keys {
		if s.keys[i] != t.keys[i] {
			return false
		}
	}
	return true
}

// Value is one abstract value: a RefVal (set of references, empty = null),
// a symbolic integer, or ⊥.
type Value struct {
	kind vkind
	refs RefSet
	iv   intval.IntVal
	srcs *srcSet

	// Block-local judge-pass annotations for the §4.3 rearrangement
	// detector (never part of the fixed point; dropped at merges):
	// vn is a value number pinning runtime identity of reference values
	// within a block; eprov records that the value was loaded from an
	// element of a specific array.
	vn    int32
	eprov *elemProv
}

// elemProv says a value was read from arr[idx] (array pinned by value
// number arrVN) at block-local time seq.
type elemProv struct {
	arrVN int32
	arr   RefSet
	idx   intval.IntVal
	seq   int
}

// Bottom is the ⊥ value.
var Bottom = Value{kind: vBottom}

// NullValue is the definitely-null reference value.
func NullValue() Value { return Value{kind: vRefs} }

// RefValue wraps a reference set.
func RefValue(s RefSet) Value { return Value{kind: vRefs, refs: s} }

// IntValue wraps a symbolic integer.
func IntValue(iv intval.IntVal) Value { return Value{kind: vInt, iv: iv} }

// TopInt is the unknown-integer value.
func TopInt() Value { return Value{kind: vInt, iv: intval.Top} }

// IsBottom reports whether v is ⊥.
func (v Value) IsBottom() bool { return v.kind == vBottom }

// IsRefs reports whether v is a reference value.
func (v Value) IsRefs() bool { return v.kind == vRefs }

// Refs returns the reference set (empty unless IsRefs).
func (v Value) Refs() RefSet { return v.refs }

// Int returns the symbolic integer; non-integers yield ⊤ conservatively.
func (v Value) Int() intval.IntVal {
	if v.kind != vInt {
		return intval.Top
	}
	return v.iv
}

// withSrcs returns v carrying the given null-or-same guarantees.
func (v Value) withSrcs(s *srcSet) Value {
	v.srcs = s
	return v
}

// Equal reports structural equality (srcs included: they are part of the
// fixed point; vn/eprov excluded: they are block-local).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case vRefs:
		return v.refs.Equal(w.refs) && v.srcs.equal(w.srcs)
	case vInt:
		return v.iv.Equal(w.iv)
	default:
		return true
	}
}

// mergeValue joins two values elementwise; integer components share the
// state merge's stride context.
func mergeValue(a, b Value, ctx *intval.MergeCtx) Value {
	if a.kind == vBottom {
		return b
	}
	if b.kind == vBottom {
		return a
	}
	if a.kind != b.kind {
		// Verified bytecode cannot mix kinds at a join; degrade safely.
		return TopInt()
	}
	switch a.kind {
	case vRefs:
		// vn/eprov are block-local and do not survive joins.
		return Value{kind: vRefs, refs: a.refs.Union(b.refs), srcs: a.srcs.intersect(b.srcs)}
	default:
		return Value{kind: vInt, iv: intval.Merge(a.iv, b.iv, ctx)}
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case vBottom:
		return "⊥"
	case vRefs:
		s := v.refs.String()
		if v.srcs != nil {
			var parts []string
			for _, k := range v.srcs.keys {
				parts = append(parts, fmt.Sprintf("r%d.%s", k.ref, k.field))
			}
			s += "≡{" + strings.Join(parts, ",") + "}"
		}
		return s
	default:
		return v.iv.String()
	}
}
