// Package core implements the paper's two barrier-elision analyses:
//
//   - The field analysis (§2): a flow-sensitive, intra-procedural abstract
//     interpretation over ⟨ρ, σ, NL, stk⟩ that identifies pre-null writes
//     to object fields — putfield sites whose target object is still
//     thread-local and whose target field provably contains null. Each
//     allocation site gets two abstract references, R_id/A for the most
//     recently allocated object (unique, admitting strong update) and
//     R_id/B summarizing older ones.
//
//   - The array analysis (§3): an extension tracking array lengths (Len)
//     and uninitialized null ranges (NR) with symbolic integers, whose
//     state merge (intval.Merge, the paper's Figure 1) discovers common
//     strides across loop iterations and thereby proves loop-filling
//     array stores initializing.
//
// A restricted form of the §4.3 "null-or-same" extension is also
// implemented (see nullorsame tracking in value.go).
package core

import (
	"fmt"
	"math/bits"

	"satbelim/internal/bytecode"
)

// RefID names an abstract reference within one method's analysis.
type RefID int32

// GlobalRefID is the abstract reference summarizing every object allocated
// outside the analyzed method and not passed to it as an argument.
const GlobalRefID RefID = 0

// refKind classifies an abstract reference.
type refKind int

const (
	refGlobal refKind = iota
	refArg            // R_arg(i)
	refAllocA         // most recent object of an allocation site
	refAllocB         // summary of the site's older objects
	// refCallA/refCallB name the object returned by a call site whose
	// callee summary proves ReturnsFresh (interprocedural mode): the
	// most recent returned object and the summary of older ones. They
	// behave like an allocation site's A/B pair — the callee guarantees
	// the object is thread-local with all reference fields null — except
	// integer fields are unknown (the callee may have initialized them).
	refCallA
	refCallB
	// refArgContent abstracts, in summary mode only, the unknown
	// caller-provided contents of argument i: whatever a read of an
	// untracked field of the argument (or of other contents) may yield.
	// Publishing or mutating it compromises the argument — the caller's
	// facts about objects reachable from the argument die with it.
	refArgContent
)

// refInfo describes one abstract reference.
type refInfo struct {
	kind     refKind
	arg      int    // argument index for refArg
	site     int    // allocation pc for refAllocA/refAllocB
	isArray  bool   // allocation of an array
	elemRef  bool   // array whose elements are references
	class    string // class name for object allocations
	unique   bool   // denotes exactly one runtime reference (strong update)
	nameHint string
}

// refTable holds the fixed universe of abstract references for one method.
// The set is fixed before the fixed point begins (paper §2.2: "the set of
// reference values and field identifiers is fixed and finite").
type refTable struct {
	infos []refInfo
	// allocA/allocB map an allocation pc to its two references.
	allocA map[int]RefID
	allocB map[int]RefID
	// argRef maps argument index (receiver = 0) to its reference, for
	// reference-typed arguments only.
	argRef map[int]RefID
	// callA/callB map an invoke pc whose callee returns a reference to
	// the A/B pair for its returned object (interprocedural mode only).
	callA map[int]RefID
	callB map[int]RefID
	// argContent maps argument index to its contents reference (summary
	// mode only; absent for a constructor's unique receiver, whose
	// fields genuinely start null).
	argContent map[int]RefID
}

// buildRefTable scans the method and creates GlobalRef, one reference per
// reference-typed argument, and an A/B pair per allocation site. With
// Options.SingleRefPerSite (the two-refs-per-site ablation) the A and B
// names coincide and nothing is unique. Under Options.Interprocedural,
// invoke sites whose callee returns a reference additionally get an A/B
// pair for the returned object; in summary mode (forSummary) each
// non-unique reference argument gets a contents reference.
func buildRefTable(p *bytecode.Program, m *bytecode.Method, opts Options, forSummary bool) *refTable {
	singleSummary := opts.SingleRefPerSite
	t := &refTable{
		allocA:     map[int]RefID{},
		allocB:     map[int]RefID{},
		argRef:     map[int]RefID{},
		callA:      map[int]RefID{},
		callB:      map[int]RefID{},
		argContent: map[int]RefID{},
	}
	t.infos = append(t.infos, refInfo{kind: refGlobal, nameHint: "Global"})
	for i := 0; i < m.NumArgs(); i++ {
		at := m.ArgType(i)
		if !at.IsRef() {
			continue
		}
		id := RefID(len(t.infos))
		// The implicit this of a constructor is unique and thread-local
		// in the initial state (paper §2.3).
		uniq := m.Ctor && i == 0
		t.infos = append(t.infos, refInfo{
			kind: refArg, arg: i, unique: uniq,
			isArray:  at.Kind == bytecode.KindArray,
			elemRef:  at.IsRefArray(),
			class:    at.Class,
			nameHint: fmt.Sprintf("Arg%d", i),
		})
		t.argRef[i] = id
		if forSummary && !uniq {
			c := RefID(len(t.infos))
			t.infos = append(t.infos, refInfo{
				kind: refArgContent, arg: i,
				nameHint: fmt.Sprintf("Arg%d*", i),
			})
			t.argContent[i] = c
		}
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Op {
		case bytecode.OpNewInstance:
			a := RefID(len(t.infos))
			t.infos = append(t.infos, refInfo{
				kind: refAllocA, site: pc, class: in.Type.Class,
				unique: !singleSummary, nameHint: fmt.Sprintf("R%d/A", pc),
			})
			t.allocA[pc] = a
			if singleSummary {
				t.allocB[pc] = a
			} else {
				b := RefID(len(t.infos))
				t.infos = append(t.infos, refInfo{
					kind: refAllocB, site: pc, class: in.Type.Class,
					nameHint: fmt.Sprintf("R%d/B", pc),
				})
				t.allocB[pc] = b
			}
		case bytecode.OpNewArray:
			a := RefID(len(t.infos))
			t.infos = append(t.infos, refInfo{
				kind: refAllocA, site: pc, isArray: true,
				elemRef: in.Type.IsRef(),
				unique:  !singleSummary, nameHint: fmt.Sprintf("R%d/A", pc),
			})
			t.allocA[pc] = a
			if singleSummary {
				t.allocB[pc] = a
			} else {
				b := RefID(len(t.infos))
				t.infos = append(t.infos, refInfo{
					kind: refAllocB, site: pc, isArray: true,
					elemRef:  in.Type.IsRef(),
					nameHint: fmt.Sprintf("R%d/B", pc),
				})
				t.allocB[pc] = b
			}
		case bytecode.OpInvoke:
			if !opts.Interprocedural {
				continue
			}
			callee := p.Method(in.Method)
			if callee == nil || !callee.Return.IsRef() {
				continue
			}
			ret := callee.Return
			a := RefID(len(t.infos))
			t.infos = append(t.infos, refInfo{
				kind: refCallA, site: pc, class: ret.Class,
				isArray: ret.Kind == bytecode.KindArray,
				elemRef: ret.IsRefArray(),
				unique:  !singleSummary, nameHint: fmt.Sprintf("RC%d/A", pc),
			})
			t.callA[pc] = a
			if singleSummary {
				t.callB[pc] = a
			} else {
				b := RefID(len(t.infos))
				t.infos = append(t.infos, refInfo{
					kind: refCallB, site: pc, class: ret.Class,
					isArray:  ret.Kind == bytecode.KindArray,
					elemRef:  ret.IsRefArray(),
					nameHint: fmt.Sprintf("RC%d/B", pc),
				})
				t.callB[pc] = b
			}
		}
	}
	return t
}

func (t *refTable) count() int            { return len(t.infos) }
func (t *refTable) info(r RefID) *refInfo { return &t.infos[r] }

// unique reports whether r denotes exactly one runtime reference.
func (t *refTable) unique(r RefID) bool { return t.infos[r].unique }

// RefSet is an immutable set of abstract references, stored as a bitset.
// Operations return new sets; the zero value is the empty set (which, as a
// RefVal, denotes "definitely null").
type RefSet struct{ words []uint64 }

// EmptyRefSet is the definitely-null reference value.
var EmptyRefSet = RefSet{}

// singletonCache interns the singleton sets for small ids. RefSet
// operations never mutate a words slice in place, so the cached backing
// arrays can be shared freely (including across goroutines). {GlobalRef}
// alone is materialized on every lookup of an escaped reference, so this
// removes the hottest allocation of the abstract interpreter.
var singletonCache = func() [256]RefSet {
	var c [256]RefSet
	for r := range c {
		w := make([]uint64, r/64+1)
		w[r/64] = 1 << (uint(r) % 64)
		c[r] = RefSet{words: w}
	}
	return c
}()

// SingletonRef returns {r}.
func SingletonRef(r RefID) RefSet {
	if int(r) < len(singletonCache) {
		return singletonCache[r]
	}
	return EmptyRefSet.With(r)
}

// Has reports membership.
func (s RefSet) Has(r RefID) bool {
	w := int(r) / 64
	return w < len(s.words) && s.words[w]&(1<<(uint(r)%64)) != 0
}

// IsEmpty reports whether the set is empty (the value is definitely null).
func (s RefSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// With returns s ∪ {r}.
func (s RefSet) With(r RefID) RefSet {
	w := int(r) / 64
	n := len(s.words)
	if w >= n {
		n = w + 1
	}
	out := make([]uint64, n)
	copy(out, s.words)
	out[w] |= 1 << (uint(r) % 64)
	return RefSet{words: out}
}

// Without returns s \ {r}.
func (s RefSet) Without(r RefID) RefSet {
	if !s.Has(r) {
		return s
	}
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	out[int(r)/64] &^= 1 << (uint(r) % 64)
	return RefSet{words: out}
}

// Union returns s ∪ t. When one side contains the other the larger side is
// returned unchanged (cheap convergence checks).
func (s RefSet) Union(t RefSet) RefSet {
	if s.Contains(t) {
		return s
	}
	if t.Contains(s) {
		return t
	}
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	out := make([]uint64, n)
	copy(out, s.words)
	for i, w := range t.words {
		out[i] |= w
	}
	return RefSet{words: out}
}

// Intersects reports whether s ∩ t is non-empty.
func (s RefSet) Intersects(t RefSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Contains reports whether t ⊆ s.
func (s RefSet) Contains(t RefSet) bool {
	for i, w := range t.words {
		if w == 0 {
			continue
		}
		if i >= len(s.words) || s.words[i]&w != w {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (s RefSet) Equal(t RefSet) bool { return s.Contains(t) && t.Contains(s) }

// Single returns the only member when the set is a singleton.
func (s RefSet) Single() (RefID, bool) {
	found := false
	var r RefID
	for i, w := range s.words {
		for w != 0 {
			if found {
				return 0, false
			}
			bit := w & (-w)
			r = RefID(i*64 + trailingZeros(bit))
			found = true
			w &^= bit
		}
	}
	return r, found
}

// ForEach calls f for each member in increasing order.
func (s RefSet) ForEach(f func(RefID)) {
	for i, w := range s.words {
		for w != 0 {
			bit := w & (-w)
			f(RefID(i*64 + trailingZeros(bit)))
			w &^= bit
		}
	}
}

// Count returns the cardinality.
func (s RefSet) Count() int {
	n := 0
	s.ForEach(func(RefID) { n++ })
	return n
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// String renders the set with the default naming (ids).
func (s RefSet) String() string {
	if s.IsEmpty() {
		return "{null}"
	}
	out := "{"
	first := true
	s.ForEach(func(r RefID) {
		if !first {
			out += ","
		}
		first = false
		out += fmt.Sprintf("r%d", r)
	})
	return out + "}"
}
