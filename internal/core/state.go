package core

import (
	"fmt"
	"sort"
	"strings"

	"satbelim/internal/intval"
)

// elemsField is the pseudo-field collapsing all elements of an array
// (paper §2.4: "we treat an object array as an object with a single field
// f_elems").
const elemsField = "$elems"

// sigKey addresses the abstract store σ: one (reference, field) pair.
type sigKey struct {
	ref   RefID
	field string
}

// state is the paper's program state tuple extended for arrays:
// ⟨ρ, σ, NL, stk, Len, NR⟩.
//
// The container components are copy-on-write: clone shares ρ, σ, Len and
// NR between the original and the copy, and the first mutation of a shared
// container (through the mutable* accessors) makes a private copy. The
// fixed point clones the entry state of a block on every visit but most
// visits touch only a few containers, so sharing removes the bulk of the
// per-edge cloning cost. Values, RefSets, IntVals and srcSets stored
// inside the containers are immutable, so container-level copies suffice.
type state struct {
	locals []Value
	stack  []Value
	nl     RefSet
	sigma  map[sigKey]Value
	length map[RefID]intval.IntVal
	nr     map[RefID]intval.Range
	// intTainted marks references whose integer fields a summarized
	// callee may have rewritten: integer lookups on them answer ⊤.
	intTainted RefSet

	// own* record which containers this state owns exclusively. A state
	// built by newState owns everything; clone leaves both sides owning
	// nothing (writes then copy first). The stack is never shared: push
	// reuses backing-array capacity, which would alias a sharer's tail.
	ownLocals bool
	ownSigma  bool
	ownLength bool
	ownNR     bool
}

func newState(numLocals int) *state {
	return &state{
		locals:    make([]Value, numLocals),
		sigma:     map[sigKey]Value{},
		length:    map[RefID]intval.IntVal{},
		nr:        map[RefID]intval.Range{},
		ownLocals: true, ownSigma: true, ownLength: true, ownNR: true,
	}
}

// clone returns a copy sharing every container except the stack; the
// original gives up ownership so that whichever side writes first copies.
func (s *state) clone() *state {
	s.ownLocals, s.ownSigma, s.ownLength, s.ownNR = false, false, false, false
	return &state{
		locals:     s.locals,
		stack:      append([]Value(nil), s.stack...),
		nl:         s.nl,
		intTainted: s.intTainted,
		sigma:      s.sigma,
		length:     s.length,
		nr:         s.nr,
	}
}

// mutableLocals returns the locals slice, privately copied if shared.
// Safe only for indexed writes (never append).
func (s *state) mutableLocals() []Value {
	if !s.ownLocals {
		s.locals = append([]Value(nil), s.locals...)
		s.ownLocals = true
	}
	return s.locals
}

// mutableSigma returns the σ map, privately copied if shared.
func (s *state) mutableSigma() map[sigKey]Value {
	if !s.ownSigma {
		m := make(map[sigKey]Value, len(s.sigma))
		for k, v := range s.sigma {
			m[k] = v
		}
		s.sigma = m
		s.ownSigma = true
	}
	return s.sigma
}

// mutableLength returns the Len map, privately copied if shared.
func (s *state) mutableLength() map[RefID]intval.IntVal {
	if !s.ownLength {
		m := make(map[RefID]intval.IntVal, len(s.length))
		for k, v := range s.length {
			m[k] = v
		}
		s.length = m
		s.ownLength = true
	}
	return s.length
}

// mutableNR returns the NR map, privately copied if shared.
func (s *state) mutableNR() map[RefID]intval.Range {
	if !s.ownNR {
		m := make(map[RefID]intval.Range, len(s.nr))
		for k, v := range s.nr {
			m[k] = v
		}
		s.nr = m
		s.ownNR = true
	}
	return s.nr
}

// clearSigmaRef removes every σ entry keyed by r, copying a shared map
// only when an entry actually exists.
func (s *state) clearSigmaRef(r RefID) {
	var stale []sigKey
	for k := range s.sigma {
		if k.ref == r {
			stale = append(stale, k)
		}
	}
	if len(stale) == 0 {
		return
	}
	sigma := s.mutableSigma()
	for _, k := range stale {
		delete(sigma, k)
	}
}

// delLength removes Len(r), copying a shared map only when present.
func (s *state) delLength(r RefID) {
	if _, ok := s.length[r]; ok {
		delete(s.mutableLength(), r)
	}
}

// delNR removes NR(r), copying a shared map only when present.
func (s *state) delNR(r RefID) {
	if _, ok := s.nr[r]; ok {
		delete(s.mutableNR(), r)
	}
}

func (s *state) push(v Value) { s.stack = append(s.stack, v) }

func (s *state) pop() Value {
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v
}

// lookup implements the paper's lookup(σ, r, NL, f): non-thread-local
// references yield {GlobalRef}; otherwise the σ entry, defaulting to null
// for reference fields (the allocator zeroed them) and 0 for integer
// fields. wantInt selects the integer default.
func (s *state) lookup(r RefID, field string, wantInt bool) Value {
	if s.nl.Has(r) {
		if wantInt {
			return TopInt()
		}
		return RefValue(SingletonRef(GlobalRefID))
	}
	if wantInt && s.intTainted.Has(r) {
		return TopInt()
	}
	if v, ok := s.sigma[sigKey{ref: r, field: field}]; ok {
		return v
	}
	if wantInt {
		return IntValue(intval.Const(0))
	}
	return NullValue()
}

// fieldIsNull reports whether σ guarantees (r, field) is null: r is
// thread-local and its entry is the empty reference set (or absent, i.e.
// still zeroed).
func (s *state) fieldIsNull(r RefID, field string) bool {
	if s.nl.Has(r) {
		return false
	}
	v, ok := s.sigma[sigKey{ref: r, field: field}]
	if !ok {
		return true
	}
	return v.kind == vRefs && v.refs.IsEmpty()
}

// reachFrom returns rs plus every reference transitively reachable from rs
// via σ (the closure used by AllNonTL).
func (s *state) reachFrom(rs RefSet) RefSet {
	out := rs
	work := make([]RefID, 0, 8)
	rs.ForEach(func(r RefID) { work = append(work, r) })
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		for k, v := range s.sigma {
			if k.ref != r || v.kind != vRefs {
				continue
			}
			v.refs.ForEach(func(t RefID) {
				if !out.Has(t) {
					out = out.With(t)
					work = append(work, t)
				}
			})
		}
	}
	return out
}

// escape implements AllNonTL: NL is extended with rs and everything
// reachable from it, and null-or-same guarantees about the newly escaped
// references are dropped from every tracked value.
func (s *state) escape(rs RefSet) {
	if rs.IsEmpty() {
		return
	}
	closed := s.reachFrom(rs)
	if s.nl.Contains(closed) {
		return
	}
	s.nl = s.nl.Union(closed)
	s.dropSrcsForEscaped()
}

// escapeValue escapes a Value when it is a reference.
func (s *state) escapeValue(v Value) {
	if v.kind == vRefs {
		s.escape(v.refs)
	}
}

// escapeCond implements AllNonTLCond: when the target set intersects NL,
// the stored value (and its reachable closure) escapes.
func (s *state) escapeCond(targets RefSet, val Value) {
	if targets.Intersects(s.nl) {
		s.escapeValue(val)
	}
}

// mapSrcs rewrites the null-or-same guarantee set of every tracked value
// through f, copying shared containers only when a set actually changes.
func (s *state) mapSrcs(f func(*srcSet) *srcSet) {
	for i, v := range s.locals {
		if v.srcs == nil {
			continue
		}
		if ns := f(v.srcs); ns != v.srcs {
			s.mutableLocals()[i] = v.withSrcs(ns)
		}
	}
	for i, v := range s.stack {
		if v.srcs == nil {
			continue
		}
		if ns := f(v.srcs); ns != v.srcs {
			s.stack[i] = v.withSrcs(ns)
		}
	}
	for k, v := range s.sigma {
		if v.srcs == nil {
			continue
		}
		if ns := f(v.srcs); ns != v.srcs {
			s.mutableSigma()[k] = v.withSrcs(ns)
		}
	}
}

// dropSrcsForEscaped strips null-or-same guarantees that name escaped
// references, everywhere in the state.
func (s *state) dropSrcsForEscaped() {
	s.mapSrcs(func(set *srcSet) *srcSet { return set.dropRefs(s.nl) })
}

// dropSrcsForField strips null-or-same guarantees naming the given field,
// everywhere (a store to the field may invalidate them).
func (s *state) dropSrcsForField(field string) {
	s.mapSrcs(func(set *srcSet) *srcSet { return set.dropField(field) })
}

// dropAllSrcs strips every null-or-same guarantee (calls may write any
// field of any reachable object).
func (s *state) dropAllSrcs() {
	s.mapSrcs(func(*srcSet) *srcSet { return nil })
}

// substValue renames references in a value (the allocation-site renaming
// rngSubst of §2.4).
func substValue(v Value, from, to RefID) Value {
	if v.kind != vRefs || !v.refs.Has(from) {
		return v
	}
	v.refs = v.refs.Without(from).With(to)
	// srcs keyed by the renamed ref move with it.
	if v.srcs != nil {
		var keys []srcKey
		for _, k := range v.srcs.keys {
			if k.ref == from {
				k.ref = to
			}
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return srcKeyLess(keys[i], keys[j]) })
		v.srcs = &srcSet{keys: keys}
	}
	return v
}

// weakMergeValue is the weak-update join: reference sets union, integers
// stay only when equal (no stride context outside control-flow merges).
func weakMergeValue(a, b Value) Value {
	return mergeValue(a, b, nil)
}

// renameAlloc performs the newinstance/newarray renaming: every occurrence
// of the site's A reference becomes the B reference (rngSubst on ρ and
// stk, replS on NL, transfer on σ, and the corresponding moves in Len and
// NR), freeing the A name for the newly allocated object.
func (s *state) renameAlloc(a, b RefID) {
	if a == b {
		return // single-summary ablation: nothing to rename
	}
	for i, v := range s.locals {
		if nv := substValue(v, a, b); !nv.Equal(v) {
			s.mutableLocals()[i] = nv
		}
	}
	for i := range s.stack {
		s.stack[i] = substValue(s.stack[i], a, b)
	}
	if s.nl.Has(a) {
		s.nl = s.nl.Without(a).With(b)
	}
	if s.intTainted.Has(a) {
		s.intTainted = s.intTainted.Without(a).With(b)
	}
	// transfer(σ, R_A → R_B): entries under A merge weakly into B (B is a
	// summary), and values mentioning A are renamed.
	var moves []sigKey
	for k := range s.sigma {
		if k.ref == a {
			moves = append(moves, k)
		}
	}
	if len(moves) > 0 {
		sigma := s.mutableSigma()
		sort.Slice(moves, func(i, j int) bool { return srcKeyLess(srcKey(moves[i]), srcKey(moves[j])) })
		for _, k := range moves {
			v := sigma[k]
			delete(sigma, k)
			nk := sigKey{ref: b, field: k.field}
			v = substValue(v, a, b)
			if old, ok := sigma[nk]; ok {
				sigma[nk] = weakMergeValue(old, v)
			} else {
				// B had no entry: its default is null/zero, so the weak
				// merge is with that default.
				var def Value
				if v.kind == vInt {
					def = IntValue(intval.Const(0))
				} else {
					def = NullValue()
				}
				sigma[nk] = weakMergeValue(def, v)
			}
		}
	}
	for k, v := range s.sigma {
		if nv := substValue(v, a, b); !nv.Equal(v) {
			s.mutableSigma()[k] = nv
		}
	}
	// Len and NR move to the summary with weak semantics.
	if l, ok := s.length[a]; ok {
		length := s.mutableLength()
		delete(length, a)
		if lb, ok := length[b]; ok {
			if m := intval.Merge(l, lb, nil); !m.IsTop() {
				length[b] = m
			} else {
				delete(length, b)
			}
		} else {
			length[b] = l
		}
	}
	if r, ok := s.nr[a]; ok {
		nr := s.mutableNR()
		delete(nr, a)
		if rb, ok := nr[b]; ok {
			if m := intval.MergeRanges(r, rb, nil); !m.IsEmpty() {
				nr[b] = m
			} else {
				delete(nr, b)
			}
		} else if !r.IsEmpty() {
			nr[b] = r
		}
	}
}

// mergeStates merges incoming into cur, returning the merged state and
// whether it differs from cur. All integer components share one stride
// context (the essence of §3.5). namer supplies fresh variable unknowns;
// noStride disables their invention (ablation).
func mergeStates(cur, incoming *state, namer *intval.Namer, noStride bool) (*state, bool) {
	ctx := intval.NewMergeCtx(namer)
	ctx.Disabled = noStride

	out := newState(len(cur.locals))
	changed := false

	if len(cur.stack) != len(incoming.stack) {
		// Verified bytecode guarantees agreement; degrade to an empty
		// stack (convergent: changed only the first time).
		out.stack = nil
		changed = len(cur.stack) != 0
	} else {
		out.stack = make([]Value, len(cur.stack))
		for i := range cur.stack {
			out.stack[i] = mergeValue(cur.stack[i], incoming.stack[i], ctx)
			if !out.stack[i].Equal(cur.stack[i]) {
				changed = true
			}
		}
	}
	for i := range cur.locals {
		out.locals[i] = mergeValue(cur.locals[i], incoming.locals[i], ctx)
		if !out.locals[i].Equal(cur.locals[i]) {
			changed = true
		}
	}

	out.nl = cur.nl.Union(incoming.nl)
	if !out.nl.Equal(cur.nl) {
		changed = true
	}
	out.intTainted = cur.intTainted.Union(incoming.intTainted)
	if !out.intTainted.Equal(cur.intTainted) {
		changed = true
	}

	// σ: union of keys; an absent entry denotes the allocation default
	// (null / 0), which is what lookup assumes.
	for k, v := range cur.sigma {
		if w, ok := incoming.sigma[k]; ok {
			m := mergeValue(v, w, ctx)
			out.sigma[k] = m
			if !m.Equal(v) {
				changed = true
			}
		} else {
			m := mergeValue(v, defaultFor(v), ctx)
			out.sigma[k] = m
			if !m.Equal(v) {
				changed = true
			}
		}
	}
	for k, w := range incoming.sigma {
		if _, ok := cur.sigma[k]; ok {
			continue
		}
		m := mergeValue(defaultFor(w), w, ctx)
		out.sigma[k] = m
		// cur lacked the entry, i.e. implicitly held the default; the
		// entry changes cur only if it differs from that default.
		if !m.Equal(defaultFor(w)) {
			changed = true
		}
	}

	// Len and NR: intersection of keys (an absent entry is "no
	// information", which absorbs).
	for r, l := range cur.length {
		if l2, ok := incoming.length[r]; ok {
			m := intval.Merge(l, l2, ctx)
			if !m.IsTop() {
				out.length[r] = m
			}
			if !m.Equal(l) {
				changed = true
			}
		} else {
			changed = true
		}
	}
	for r, rng := range cur.nr {
		if rng2, ok := incoming.nr[r]; ok {
			m := intval.MergeRanges(rng, rng2, ctx)
			if !m.IsEmpty() {
				out.nr[r] = m
			}
			if !m.Equal(rng) {
				changed = true
			}
		} else {
			changed = true
		}
	}
	return out, changed
}

// statesEqual reports structural equality of two states, treating absent
// σ entries as their allocation defaults and absent Len/NR entries as
// no-information.
func statesEqual(a, b *state) bool {
	if len(a.locals) != len(b.locals) || len(a.stack) != len(b.stack) {
		return false
	}
	for i := range a.locals {
		if !a.locals[i].Equal(b.locals[i]) {
			return false
		}
	}
	for i := range a.stack {
		if !a.stack[i].Equal(b.stack[i]) {
			return false
		}
	}
	if !a.nl.Equal(b.nl) {
		return false
	}
	if !a.intTainted.Equal(b.intTainted) {
		return false
	}
	for k, v := range a.sigma {
		w, ok := b.sigma[k]
		if !ok {
			w = defaultFor(v)
		}
		if !v.Equal(w) {
			return false
		}
	}
	for k, w := range b.sigma {
		if _, ok := a.sigma[k]; !ok && !w.Equal(defaultFor(w)) {
			return false
		}
	}
	if len(a.length) != len(b.length) || len(a.nr) != len(b.nr) {
		return false
	}
	for k, v := range a.length {
		w, ok := b.length[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	for k, v := range a.nr {
		w, ok := b.nr[k]
		if !ok || !v.Equal(w) {
			return false
		}
	}
	return true
}

// defaultFor returns the allocation-time default matching a value's kind.
func defaultFor(v Value) Value {
	if v.kind == vInt {
		return IntValue(intval.Const(0))
	}
	return NullValue()
}

// String renders the state for debugging.
func (s *state) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "locals=%v stack=%v nl=%s\n", s.locals, s.stack, s.nl)
	var keys []sigKey
	for k := range s.sigma {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return srcKeyLess(srcKey(keys[i]), srcKey(keys[j])) })
	for _, k := range keys {
		fmt.Fprintf(&b, "  σ(r%d,%s)=%v\n", k.ref, k.field, s.sigma[k])
	}
	for r, l := range s.length {
		fmt.Fprintf(&b, "  Len(r%d)=%s\n", r, l)
	}
	for r, rng := range s.nr {
		fmt.Fprintf(&b, "  NR(r%d)=%s\n", r, rng)
	}
	return b.String()
}
