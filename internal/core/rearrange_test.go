package core

import (
	"testing"

	"satbelim/internal/bytecode"
)

func optsR() Options { return Options{Mode: ModeFieldArray, Rearrange: true} }

// rearranged lists pcs flagged ElideRearrange.
func rearranged(m *bytecode.Method) []int {
	var out []int
	for pc := range m.Code {
		if m.Code[pc].ElideRearrange {
			out = append(out, pc)
		}
	}
	return out
}

const swapSrc = `
class T { int v; }
class U {
    static T[] data;
    static void swap(int i, int j) {
        T a = U.data[i];
        T b = U.data[j];
        U.data[i] = b;
        U.data[j] = a;
    }
}
`

func TestSwapIdiomDetected(t *testing.T) {
	p, rep := analyzeSrc(t, swapSrc, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "swap"})
	got := rearranged(m)
	if len(got) != 2 {
		t.Fatalf("both swap stores should be flagged, got %v:\n%s", got, bytecode.Disassemble(m))
	}
	total := 0
	for _, mr := range rep.Methods {
		total += mr.Rearranged
	}
	if total != 2 {
		t.Errorf("report Rearranged = %d", total)
	}
}

func TestSwapNotDetectedWithoutOption(t *testing.T) {
	p, _ := analyzeSrc(t, swapSrc, 100, optsA())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "swap"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("option off: got %v", got)
	}
}

func TestMoveDownLoopNotASwap(t *testing.T) {
	// The delete-by-move-down idiom loses the first element's value: it
	// must NOT be treated as a swap (a retrace would not resurrect the
	// deleted value).
	src := `
class T { int v; }
class U {
    static T[] data;
    static void deleteFirst(int n) {
        for (int j = 0; j < n - 1; j = j + 1) {
            U.data[j] = U.data[j + 1];
        }
        U.data[n - 1] = null;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "deleteFirst"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("move-down must not be flagged, got %v:\n%s", got, bytecode.Disassemble(m))
	}
}

func TestSwapWithInterveningStoreNotDetected(t *testing.T) {
	src := `
class T { int v; }
class U {
    static T[] data;
    static void notASwap(int i, int j, int k, T x) {
        T a = U.data[i];
        T b = U.data[j];
        U.data[i] = b;
        U.data[k] = x;    // interferes: may clobber data[j]
        U.data[j] = a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "notASwap"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("interfered pair must not be flagged, got %v", got)
	}
}

func TestSwapWithInterveningCallNotDetected(t *testing.T) {
	src := `
class T { int v; }
class U {
    static T[] data;
    static void touch() { }
    static void notASwap(int i, int j) {
        T a = U.data[i];
        T b = U.data[j];
        U.data[i] = b;
        U.touch();        // call may rearrange anything
        U.data[j] = a;
    }
}
`
	p, _ := analyzeSrc(t, swapHelperInline(src), 0, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "notASwap"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("call-split pair must not be flagged, got %v", got)
	}
}

// swapHelperInline keeps the source unchanged; inline limit 0 in the call
// test preserves the invoke.
func swapHelperInline(s string) string { return s }

func TestCrossArraySwapNotDetected(t *testing.T) {
	// Values exchanged between two different arrays: not a same-array
	// permutation; the target of each store is not pinned to the source
	// of the other value.
	src := `
class T { int v; }
class U {
    static T[] one;
    static T[] two;
    static void crossSwap(int i, int j) {
        T a = U.one[i];
        T b = U.two[j];
        U.one[i] = b;
        U.two[j] = a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "crossSwap"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("cross-array exchange must not be flagged, got %v", got)
	}
}

func TestSwapAfterStaticReassignmentNotDetected(t *testing.T) {
	// The array static is overwritten between the loads and the stores:
	// value numbering must not identify the two reads.
	src := `
class T { int v; }
class U {
    static T[] data;
    static T[] spare;
    static void notASwap(int i, int j) {
        T a = U.data[i];
        T b = U.data[j];
        U.data = U.spare;
        U.data[i] = b;
        U.data[j] = a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "notASwap"})
	if got := rearranged(m); len(got) != 0 {
		t.Errorf("reassigned-array pair must not be flagged, got %v", got)
	}
}

func TestSwapThroughLocalArrayVariable(t *testing.T) {
	// The shell-sort shape: the array lives in a local, indices are
	// loop-carried (⊤ at the fixed point) — the freshening machinery
	// must still pair the stores.
	src := `
class T { int v; }
class U {
    static T[] data;
    static void sortish(int n) {
        T[] a = U.data;
        int gap = n / 2;
        int jj = gap;
        while (jj < n) {
            T x = a[jj - gap];
            T y = a[jj];
            if (x.v > y.v) {
                a[jj - gap] = y;
                a[jj] = x;
            }
            jj = jj + 1;
        }
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "sortish"})
	got := rearranged(m)
	if len(got) != 2 {
		t.Errorf("loop-carried swap should be flagged, got %v:\n%s", got, bytecode.Disassemble(m))
	}
}

func TestPreNullTakesPrecedenceOverRearrange(t *testing.T) {
	// A swap on a freshly allocated local array: the stores are also
	// provable pre-null? They are not (elements were just written), but
	// an in-order init loop is; ensure flags don't double up.
	src := `
class T { int v; }
class U {
    static T[] build(int n, T seed) {
        T[] a = new T[n];
        for (int i = 0; i < n; i = i + 1) a[i] = seed;
        return a;
    }
}
`
	p, _ := analyzeSrc(t, src, 100, optsR())
	m := p.Method(bytecode.MethodRef{Class: "U", Name: "build"})
	for pc := range m.Code {
		in := &m.Code[pc]
		if in.Elide && in.ElideRearrange {
			t.Errorf("pc %d double-flagged", pc)
		}
	}
}
