package core

import (
	"satbelim/internal/bytecode"
)

// Interprocedural escape summaries — the future-work direction the paper
// names in §2.4: "this conservative treatment of arguments of non-inlined
// methods (and our current lack of interprocedural techniques) is
// detrimental to the precision of the analysis."
//
// A MethodSummary records, per argument, whether a call may *compromise*
// the argument for barrier-elision purposes: make it reachable by other
// threads or callers (stored into a static, an escaped object, or the
// return value) or mutate its fields/elements (which would invalidate the
// caller's σ facts about it, including integer fields that may feed index
// reasoning). An argument the callee only reads stays thread-local across
// the call, so the caller's pre-null facts about it survive.
//
// Summaries are computed by running the same abstract interpretation in a
// "summary mode" where arguments start thread-local and returning a value
// escapes it, then reading each argument's fate off the ever-escaped set.
// The computation starts from the worst case (every argument compromised)
// and re-runs, letting summaries feed call sites, until a fixed point —
// each stage is conservative, so stopping early is sound.

// MethodSummary is the interprocedural fact set for one method.
type MethodSummary struct {
	// ArgCompromised[i] is false only when the callee provably neither
	// publishes argument i (receiver = 0) nor mutates its reference
	// fields/elements.
	ArgCompromised []bool
	// ArgIntMutated[i] records that the callee may write integer or
	// boolean fields (or int-array elements) of argument i. A caller
	// keeps such an argument thread-local but must forget its integer
	// facts (stale indices could otherwise feed the array analysis).
	// Constructors are the canonical case: they typically initialize
	// scalar fields of their receiver.
	ArgIntMutated []bool
}

// worstSummary compromises everything.
func worstSummary(m *bytecode.Method) *MethodSummary {
	s := &MethodSummary{
		ArgCompromised: make([]bool, m.NumArgs()),
		ArgIntMutated:  make([]bool, m.NumArgs()),
	}
	for i := range s.ArgCompromised {
		s.ArgCompromised[i] = true
		s.ArgIntMutated[i] = true
	}
	return s
}

// Summaries maps methods to their interprocedural facts.
type Summaries map[bytecode.MethodRef]*MethodSummary

// maxSummaryRounds bounds the whole-program least-fixed-point loop.
// Compromise bits only get set, so the loop needs at most one round per
// bit; the cap is a safety valve, and hitting it degrades every summary
// to the worst case (sound).
const maxSummaryRounds = 40

// ComputeSummaries derives escape summaries for every method. opts is the
// analysis configuration the summaries will be used with (ablations
// apply to the summary computation too).
//
// The iteration starts optimistic (nothing compromised) and monotonically
// sets bits until a fixed point: the summary function is monotone (more
// compromised callees can only compromise more caller arguments), so this
// computes the least fixed point — which is what lets read-only recursion
// stay uncompromised. Intermediate states are unsound to consume, so the
// result is only returned once converged.
func ComputeSummaries(p *bytecode.Program, opts Options) (Summaries, error) {
	sums := Summaries{}
	methods := p.Methods()
	for _, m := range methods {
		sums[m.Ref()] = &MethodSummary{
			ArgCompromised: make([]bool, m.NumArgs()),
			ArgIntMutated:  make([]bool, m.NumArgs()),
		}
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, m := range methods {
			ns, err := summarizeMethod(p, m, opts, sums)
			if err != nil {
				return nil, err
			}
			old := sums[m.Ref()]
			for i := range ns.ArgCompromised {
				// Monotone accumulation: never clear a bit.
				if ns.ArgCompromised[i] && !old.ArgCompromised[i] {
					old.ArgCompromised[i] = true
					changed = true
				}
				if ns.ArgIntMutated[i] && !old.ArgIntMutated[i] {
					old.ArgIntMutated[i] = true
					changed = true
				}
			}
		}
		if !changed {
			return sums, nil
		}
	}
	// Did not converge within the cap: degrade to the sound worst case.
	for _, m := range methods {
		sums[m.Ref()] = worstSummary(m)
	}
	return sums, nil
}

// summarizeMethod runs the analysis in summary mode and reads off each
// argument's fate.
func summarizeMethod(p *bytecode.Program, m *bytecode.Method, opts Options, sums Summaries) (*MethodSummary, error) {
	g, err := buildGraph(m)
	if err != nil {
		// Structurally odd methods (none are produced by our codegen)
		// keep the worst case.
		return worstSummary(m), nil //nolint:nilerr // conservative fallback
	}
	a := &analyzer{
		prog: p, m: m, opts: opts, g: g,
		refs:       buildRefTable(m, opts.SingleRefPerSite),
		entry:      make([]*state, len(g.Blocks)),
		seen:       make([]bool, len(g.Blocks)),
		summaries:  sums,
		forSummary: true,
		maxVisits:  200*len(g.Blocks) + 2000,
	}
	a.entry[0] = a.initialState()
	a.seen[0] = true
	if a.fixpoint() != DegradeNone {
		return worstSummary(m), nil
	}
	out := &MethodSummary{
		ArgCompromised: make([]bool, m.NumArgs()),
		ArgIntMutated:  make([]bool, m.NumArgs()),
	}
	for i := 0; i < m.NumArgs(); i++ {
		r, ok := a.refs.argRef[i]
		if !ok {
			continue // non-reference arguments are never compromised
		}
		out.ArgCompromised[i] = a.everNL.Has(r) || a.mutatedArgs.Has(r) || a.summaryReach.Has(r)
		out.ArgIntMutated[i] = a.intMutatedArgs.Has(r)
	}
	return out, nil
}
