package core

import (
	"sort"
	"sync"

	"satbelim/internal/bytecode"
)

// Interprocedural escape summaries — the future-work direction the paper
// names in §2.4: "this conservative treatment of arguments of non-inlined
// methods (and our current lack of interprocedural techniques) is
// detrimental to the precision of the analysis."
//
// A MethodSummary records what a call can do to the caller's facts:
//
//   - per argument, whether the call may *compromise* it — make it (or
//     anything the caller can reach from it) visible to other threads or
//     callers: stored into a static, an escaped object, another argument,
//     or the return value, or published after being read out of the
//     argument's fields;
//   - per argument, which reference fields the callee provably leaves
//     null (ArgPreNullFields) — writes to the remaining fields survive as
//     a targeted σ invalidation instead of compromising the argument, so
//     constructors stop killing caller facts about their receiver;
//   - per argument, whether integer fields/elements may be written
//     (ArgIntMutated), which taints the caller's integer facts only;
//   - whether the return value is a fresh, never-escaped allocation with
//     all reference fields null (ReturnsFresh), letting the caller treat
//     the call site like an allocation site (an A/B pair with
//     pre-null-eligible stores).
//
// Summaries are computed by running the same abstract interpretation in a
// "summary mode" where arguments start thread-local and returning a value
// escapes it. The unknown caller-provided contents of an argument's
// fields are abstracted by a per-argument contents reference
// (refArgContent): reading an untracked argument field yields the
// contents reference, so publishing or mutating anything reached through
// the argument compromises it — without that linkage a callee could
// publish arg.f and the caller would keep elisions on objects it can no
// longer prove thread-local.
//
// Scheduling is bottom-up over the callgraph's SCC condensation (see
// callgraph.go): acyclic components converge in one pass because their
// callees are final; cyclic components (recursion) iterate to a fixed
// point from the optimistic start under the monotone-compromise
// guarantee — facts only worsen, so the iteration computes the least
// fixed point, which is what lets read-only recursion stay
// uncompromised. Independent components fan out across workers; results
// are bit-identical for any worker count because each component depends
// only on finalized callee summaries.

// MethodSummary is the interprocedural fact set for one method. All
// fields move monotonically toward the worst case during the fixed
// point: bools in ArgCompromised/ArgIntMutated are only set, ReturnsFresh
// is only cleared, ArgPreNullFields sets only shrink.
type MethodSummary struct {
	// ArgCompromised[i] is false only when the callee provably does not
	// publish argument i (receiver = 0) or anything reachable from it.
	ArgCompromised []bool
	// ArgIntMutated[i] records that the callee may write integer or
	// boolean fields (or int-array elements) of argument i. A caller
	// keeps such an argument thread-local but must forget its integer
	// facts (stale indices could otherwise feed the array analysis).
	ArgIntMutated []bool
	// ArgPreNullFields[i] is the set of reference fields of argument i
	// (qualified "Class.field" names; "$elems" for reference arrays) the
	// callee provably leaves null. The caller invalidates its σ facts
	// for the complement — fields the callee may have written — and
	// keeps everything else. nil for non-reference arguments.
	ArgPreNullFields []map[string]bool
	// ReturnsFresh reports that the returned reference is a fresh
	// allocation of this call: never escaped, not reachable from any
	// argument, every reference field still null. Integer fields may
	// have been initialized, so the caller taints them.
	ReturnsFresh bool
}

// optimisticSummary is the least element of the summary lattice: nothing
// compromised, every reference field pre-null, the return fresh.
func optimisticSummary(p *bytecode.Program, m *bytecode.Method) *MethodSummary {
	s := &MethodSummary{
		ArgCompromised:   make([]bool, m.NumArgs()),
		ArgIntMutated:    make([]bool, m.NumArgs()),
		ArgPreNullFields: make([]map[string]bool, m.NumArgs()),
		ReturnsFresh:     m.Return.IsRef(),
	}
	for i := 0; i < m.NumArgs(); i++ {
		s.ArgPreNullFields[i] = refFieldSet(p, m.ArgType(i))
	}
	return s
}

// worstSummary compromises everything.
func worstSummary(m *bytecode.Method) *MethodSummary {
	s := &MethodSummary{
		ArgCompromised:   make([]bool, m.NumArgs()),
		ArgIntMutated:    make([]bool, m.NumArgs()),
		ArgPreNullFields: make([]map[string]bool, m.NumArgs()),
	}
	s.degradeToWorst()
	return s
}

// degradeToWorst moves the summary to the top of the lattice in place —
// in place so that concurrently scheduled components never observe a
// replaced map entry, only monotonically worsened fields of the same
// struct (the Summaries map itself stays read-only during the fan-out).
func (s *MethodSummary) degradeToWorst() {
	for i := range s.ArgCompromised {
		s.ArgCompromised[i] = true
		s.ArgIntMutated[i] = true
		s.ArgPreNullFields[i] = nil
	}
	s.ReturnsFresh = false
}

// worsen merges ns into s (monotone join toward the worst case),
// reporting whether s changed — the convergence test of the per-SCC
// fixed point.
func (s *MethodSummary) worsen(ns *MethodSummary) bool {
	changed := false
	for i := range s.ArgCompromised {
		if ns.ArgCompromised[i] && !s.ArgCompromised[i] {
			s.ArgCompromised[i] = true
			changed = true
		}
		if ns.ArgIntMutated[i] && !s.ArgIntMutated[i] {
			s.ArgIntMutated[i] = true
			changed = true
		}
		if cur := s.ArgPreNullFields[i]; cur != nil {
			keep := ns.ArgPreNullFields[i]
			var stale []string
			for f := range cur {
				if keep == nil || !keep[f] {
					stale = append(stale, f)
				}
			}
			if len(stale) > 0 {
				changed = true
				if len(stale) == len(cur) {
					s.ArgPreNullFields[i] = nil
				} else {
					for _, f := range stale {
						delete(cur, f)
					}
				}
			}
		}
	}
	if s.ReturnsFresh && !ns.ReturnsFresh {
		s.ReturnsFresh = false
		changed = true
	}
	return changed
}

// PreNull reports whether field f of argument i is in the summary's
// pre-null set.
func (s *MethodSummary) PreNull(i int, f string) bool {
	return i < len(s.ArgPreNullFields) && s.ArgPreNullFields[i] != nil && s.ArgPreNullFields[i][f]
}

// refFieldSet enumerates the reference fields a value of type t exposes
// to the field analysis, as qualified σ field names: the declared
// reference fields for a class, the $elems pseudo-field for a reference
// array, nothing otherwise.
func refFieldSet(p *bytecode.Program, t *bytecode.Type) map[string]bool {
	switch {
	case t == nil:
		return nil
	case t.IsRefArray():
		return map[string]bool{elemsField: true}
	case t.Kind == bytecode.KindClass:
		cls := p.Classes[t.Class]
		if cls == nil {
			return map[string]bool{}
		}
		out := map[string]bool{}
		for _, f := range cls.Fields {
			if !f.Static && f.Type.IsRef() {
				out[bytecode.FieldRef{Class: cls.Name, Name: f.Name}.String()] = true
			}
		}
		return out
	default:
		return nil
	}
}

// dirtyRefFields returns the reference fields of argument i the summary
// does NOT prove pre-null — the fields a caller must invalidate — in
// sorted order (callers iterate it while mutating σ, and deterministic
// iteration keeps the analysis bit-identical across runs).
func dirtyRefFields(p *bytecode.Program, callee *bytecode.Method, sum *MethodSummary, i int) []string {
	all := refFieldSet(p, callee.ArgType(i))
	if len(all) == 0 {
		return nil
	}
	var out []string
	for f := range all {
		if !sum.PreNull(i, f) {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// Summaries maps methods to their interprocedural facts.
type Summaries map[bytecode.MethodRef]*MethodSummary

// maxSummaryRounds is the default per-SCC fixed-point round budget
// (Options.MaxSummaryRoundsPerSCC overrides it). Summary facts move
// monotonically, so a cyclic component of k methods converges within a
// small multiple of its fact count; the cap is a safety valve, and
// exceeding it degrades that component — and only that component — to
// the worst case. Degradation is structural (a property of the program
// and options alone), so degraded results stay deterministic and
// cacheable.
const maxSummaryRounds = 40

// ComputeSummaries derives escape summaries for every method,
// sequentially. opts is the analysis configuration the summaries will be
// used with (ablations apply to the summary computation too).
func ComputeSummaries(p *bytecode.Program, opts Options) (Summaries, error) {
	return ComputeSummariesParallel(p, opts, 1)
}

// ComputeSummariesParallel derives escape summaries for every method,
// scheduling callgraph SCCs bottom-up in reverse topological order and
// fanning independent components across workers (<= 1 means sequential).
// Results are bit-identical for any worker count.
func ComputeSummariesParallel(p *bytecode.Program, opts Options, workers int) (Summaries, error) {
	cond := Condense(BuildCallGraph(p))
	sums := make(Summaries, len(cond.Graph.Methods))
	// All entries exist before any component runs: the map is read-only
	// during the fan-out, and summaries only worsen in place.
	for _, m := range cond.Graph.Methods {
		sums[m.Ref()] = optimisticSummary(p, m)
	}
	if workers <= 1 || len(cond.SCCs) <= 1 {
		for ci := range cond.SCCs {
			if err := processSCC(p, opts, cond, ci, sums); err != nil {
				return nil, err
			}
		}
		return sums, nil
	}

	// Parallel phase: a component becomes ready when every component it
	// calls into is finalized. The mutex orders each component's summary
	// writes before any dependent's reads.
	var (
		mu        sync.Mutex
		cv        = sync.NewCond(&mu)
		ready     []int
		pending   = make([]int, len(cond.SCCs))
		remaining = len(cond.SCCs)
		firstErr  error
	)
	for ci := range cond.SCCs {
		pending[ci] = len(cond.Deps[ci])
		if pending[ci] == 0 {
			ready = append(ready, ci)
		}
	}
	if workers > len(cond.SCCs) {
		workers = len(cond.SCCs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 && firstErr == nil {
					cv.Wait()
				}
				if remaining == 0 || firstErr != nil {
					mu.Unlock()
					return
				}
				ci := ready[len(ready)-1]
				ready = ready[:len(ready)-1]
				mu.Unlock()

				err := processSCC(p, opts, cond, ci, sums)

				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				for _, d := range cond.Dependents[ci] {
					pending[d]--
					if pending[d] == 0 {
						ready = append(ready, d)
					}
				}
				cv.Broadcast()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return sums, nil
}

// processSCC finalizes the summaries of one component. Acyclic
// components need exactly one pass (their callees are already final);
// cyclic ones iterate members in program order until nothing worsens.
func processSCC(p *bytecode.Program, opts Options, cond *Condensation, ci int, sums Summaries) error {
	scc := &cond.SCCs[ci]
	if !scc.Cyclic {
		m := cond.Graph.Methods[scc.Members[0]]
		ns, err := summarizeMethod(p, m, opts, sums)
		if err != nil {
			return err
		}
		sums[m.Ref()].worsen(ns)
		return nil
	}
	rounds := opts.MaxSummaryRoundsPerSCC
	if rounds <= 0 {
		rounds = maxSummaryRounds
	}
	for round := 0; round < rounds; round++ {
		changed := false
		for _, v := range scc.Members {
			m := cond.Graph.Methods[v]
			ns, err := summarizeMethod(p, m, opts, sums)
			if err != nil {
				return err
			}
			if sums[m.Ref()].worsen(ns) {
				changed = true
			}
		}
		if !changed {
			return nil
		}
		if opts.UnsoundTrustAllSummaries {
			// DELIBERATELY UNSOUND (harness self-test): skip the
			// compromise re-run, leaving members summarized earlier in
			// the round trusting their cycle-mates' stale optimistic
			// facts.
			return nil
		}
	}
	// Round budget exceeded: degrade this component — and only this
	// component — to the sound worst case.
	for _, v := range scc.Members {
		sums[cond.Graph.Methods[v].Ref()].degradeToWorst()
	}
	return nil
}

// summarizeMethod runs the analysis in summary mode and reads off each
// argument's fate and the return value's freshness.
func summarizeMethod(p *bytecode.Program, m *bytecode.Method, opts Options, sums Summaries) (*MethodSummary, error) {
	g, err := buildGraph(m)
	if err != nil {
		// Structurally odd methods (none are produced by our codegen)
		// keep the worst case.
		return worstSummary(m), nil //nolint:nilerr // conservative fallback
	}
	a := &analyzer{
		prog: p, m: m, opts: opts, g: g,
		refs:       buildRefTable(p, m, opts, true),
		entry:      make([]*state, len(g.Blocks)),
		seen:       make([]bool, len(g.Blocks)),
		summaries:  sums,
		forSummary: true,
		maxVisits:  200*len(g.Blocks) + 2000,
	}
	a.entry[0] = a.initialState()
	a.seen[0] = true
	if a.fixpoint() != DegradeNone {
		return worstSummary(m), nil
	}
	out := &MethodSummary{
		ArgCompromised:   make([]bool, m.NumArgs()),
		ArgIntMutated:    make([]bool, m.NumArgs()),
		ArgPreNullFields: make([]map[string]bool, m.NumArgs()),
		ReturnsFresh:     m.Return.IsRef() && !a.retNotFresh,
	}
	for i := 0; i < m.NumArgs(); i++ {
		r, ok := a.refs.argRef[i]
		if !ok {
			continue // non-reference arguments are never compromised
		}
		comp := a.everNL.Has(r) || a.summaryReach.Has(r) || a.storedInOtherArg(i, r)
		if cr, ok := a.refs.argContent[i]; ok {
			// Anything reached through the argument that was published,
			// returned, stored into another argument, or mutated takes
			// the whole argument with it: the caller has no finer name
			// for the affected objects.
			comp = comp || a.everNL.Has(cr) || a.summaryReach.Has(cr) ||
				a.storedInOtherArg(i, cr) || a.contentMutated.Has(cr)
		}
		out.ArgCompromised[i] = comp
		out.ArgIntMutated[i] = a.intMutatedArgs.Has(r)
		pre := refFieldSet(p, m.ArgType(i))
		for f := range a.dirtyArgFields[r] {
			delete(pre, f)
		}
		out.ArgPreNullFields[i] = pre
	}
	return out, nil
}
