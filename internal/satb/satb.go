// Package satb implements the mutator side of snapshot-at-the-beginning
// concurrent marking: the write barriers executed at reference stores,
// their thread-local log buffers, per-site instrumentation, and a
// deterministic instruction-cost model used by the end-to-end experiments
// (Table 2). A card-marking incremental-update barrier is provided as the
// comparison baseline.
package satb

import (
	"fmt"
	"sort"
	"strings"

	"satbelim/internal/heap"
	"satbelim/internal/num"
)

// BarrierMode selects the barrier configuration (Table 2's three modes,
// plus the card-marking baseline).
type BarrierMode int

const (
	// ModeNoBarrier executes no write barriers at all (the "no-barrier"
	// row: an unsound configuration used to measure barrier cost).
	ModeNoBarrier BarrierMode = iota
	// ModeConditional is the production SATB barrier: check whether
	// marking is in progress; if so read the pre-value, and log it when
	// non-null.
	ModeConditional
	// ModeAlwaysLog elides the marking-in-progress check and always
	// logs non-null pre-values (the incrementalized-marking future of
	// §4.5, the "always-log" row).
	ModeAlwaysLog
	// ModeCardMarking is the incremental-update baseline: a two-
	// instruction dirty-card barrier; the collector rescans dirty
	// objects.
	ModeCardMarking
)

func (m BarrierMode) String() string {
	switch m {
	case ModeNoBarrier:
		return "no-barrier"
	case ModeConditional:
		return "conditional"
	case ModeAlwaysLog:
		return "always-log"
	default:
		return "card-marking"
	}
}

// ParseBarrierMode parses a barrier-mode name ("none", "conditional",
// "alwayslog", or "card"). All CLIs share it so the flag vocabulary
// cannot drift.
func ParseBarrierMode(s string) (BarrierMode, error) {
	switch s {
	case "none":
		return ModeNoBarrier, nil
	case "conditional", "":
		return ModeConditional, nil
	case "alwayslog":
		return ModeAlwaysLog, nil
	case "card":
		return ModeCardMarking, nil
	}
	return ModeConditional, fmt.Errorf("unknown barrier mode %q (want none, conditional, alwayslog, or card)", s)
}

// Barrier cost model, in abstract RISC-instruction units. The paper (§1)
// reports 9–12 instructions for the full SATB barrier and ~2 for a
// card-marking barrier; the constants below follow that shape.
const (
	// CostCheckOnly: marking not in progress — the inline check falls
	// through.
	CostCheckOnly = 1
	// CostTraceCheck: the rearrangement store's trace-state read + test.
	CostTraceCheck = 2
	// CostRetrace: enqueueing an array on the retrace list.
	CostRetrace = 6
	// CostPreNull: marking in progress, pre-value read and found null —
	// no logging needed.
	CostPreNull = 5
	// CostLogged: marking in progress, non-null pre-value pushed to the
	// thread-local buffer.
	CostLogged = 12
	// CostAlwaysPreNull / CostAlwaysLogged: the always-log barrier saves
	// the check instruction.
	CostAlwaysPreNull = 4
	CostAlwaysLogged  = 11
	// CostCard: the card-marking barrier.
	CostCard = 2
)

// SiteKind distinguishes the two compiled barrier kinds of Table 1.
type SiteKind int

const (
	FieldSite SiteKind = iota
	ArraySite
)

func (k SiteKind) String() string {
	if k == FieldSite {
		return "field"
	}
	return "array"
}

// SiteKey identifies a compiled store site.
type SiteKey struct {
	Method string
	PC     int
}

// ElideKind records the analysis verdict for a site.
type ElideKind int

const (
	// ElideNone: the barrier is kept.
	ElideNone ElideKind = iota
	// ElidePreNull: proven to overwrite null (§2/§3).
	ElidePreNull
	// ElideNullOrSame: proven to overwrite null or rewrite the value
	// already present (§4.3).
	ElideNullOrSame
	// ElideRearrange: half of an array-element swap; the logging barrier
	// is replaced by the optimistic trace-state check (§4.3).
	ElideRearrange
)

// SiteStats instruments one store site.
type SiteStats struct {
	// Key identifies the compiled site (method × pc).
	Key  SiteKey
	Kind SiteKind
	// Elide records the analysis verdict for the site.
	Elide ElideKind
	// Execs counts dynamic executions; PreNull counts executions whose
	// overwritten value was null. A site with Execs == PreNull is
	// "potentially pre-null" (§4.2).
	Execs   uint64
	PreNull uint64
	// NullOrSame counts executions whose overwritten value was null or
	// equal to the stored value (the §4.3 condition).
	NullOrSame uint64
	// Retraces counts rearrangement-store executions that had to
	// schedule an array retrace.
	Retraces uint64
}

// PotentiallyPreNull reports whether no execution ever saw a non-null
// pre-value.
func (s *SiteStats) PotentiallyPreNull() bool { return s.Execs > 0 && s.Execs == s.PreNull }

// Counters aggregates barrier instrumentation for one VM run.
type Counters struct {
	sites map[SiteKey]*SiteStats

	// Cost accumulates barrier cost units actually paid.
	Cost uint64
	// Logged counts SATB log entries produced.
	Logged uint64
	// CardsDirtied counts card-marking barrier hits.
	CardsDirtied uint64
	// StaticExecs counts putstatic reference stores (never elidable).
	StaticExecs uint64
}

// NewCounters returns empty instrumentation.
func NewCounters() *Counters {
	return &Counters{sites: map[SiteKey]*SiteStats{}}
}

// Site returns (creating if needed) the stats for a store site.
func (c *Counters) Site(key SiteKey, kind SiteKind, elide ElideKind) *SiteStats {
	s, ok := c.sites[key]
	if !ok {
		s = &SiteStats{Key: key, Kind: kind, Elide: elide}
		c.sites[key] = s
	}
	return s
}

// Sites returns all sites in deterministic order.
func (c *Counters) Sites() []*SiteStats {
	keys := make([]SiteKey, 0, len(c.sites))
	for k := range c.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Method != keys[j].Method {
			return keys[i].Method < keys[j].Method
		}
		return keys[i].PC < keys[j].PC
	})
	out := make([]*SiteStats, len(keys))
	for i, k := range keys {
		out[i] = c.sites[k]
	}
	return out
}

// Summary holds the Table 1 row quantities for one run.
type Summary struct {
	TotalExecs  uint64 // compiled barrier executions (field + array)
	ElidedExecs uint64 // executions at pre-null-elided sites
	FieldExecs  uint64
	ArrayExecs  uint64
	FieldElided uint64
	ArrayElided uint64
	PotPreNull  uint64 // executions at potentially-pre-null sites
	// NullOrSameExecs counts executions at §4.3 null-or-same-elided
	// sites (reported separately from Table 1's eliminations).
	NullOrSameExecs uint64
	// RearrangeExecs counts executions at §4.3 rearrangement sites,
	// with Retraces the subset that had to schedule a rescan.
	RearrangeExecs uint64
	Retraces       uint64
	UnsoundSites   []SiteKey
}

// Summarize computes the Table 1 quantities, flagging any elided site that
// observed a non-null pre-value (which would indicate an analysis
// soundness bug, §4.2's correctness check).
func (c *Counters) Summarize() Summary {
	var sum Summary
	keys := make([]SiteKey, 0, len(c.sites))
	for k := range c.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Method != keys[j].Method {
			return keys[i].Method < keys[j].Method
		}
		return keys[i].PC < keys[j].PC
	})
	for _, k := range keys {
		s := c.sites[k]
		sum.TotalExecs += s.Execs
		if s.Kind == FieldSite {
			sum.FieldExecs += s.Execs
		} else {
			sum.ArrayExecs += s.Execs
		}
		switch s.Elide {
		case ElidePreNull:
			sum.ElidedExecs += s.Execs
			if s.Kind == FieldSite {
				sum.FieldElided += s.Execs
			} else {
				sum.ArrayElided += s.Execs
			}
			if s.PreNull != s.Execs {
				sum.UnsoundSites = append(sum.UnsoundSites, k)
			}
		case ElideNullOrSame:
			sum.NullOrSameExecs += s.Execs
			if s.NullOrSame != s.Execs {
				sum.UnsoundSites = append(sum.UnsoundSites, k)
			}
		case ElideRearrange:
			// Correctness is protocol-level (validated by the GC's
			// snapshot-invariant checker), not per-store.
			sum.RearrangeExecs += s.Execs
			sum.Retraces += s.Retraces
		}
		if s.Execs > 0 && s.PreNull == s.Execs {
			sum.PotPreNull += s.Execs
		}
	}
	return sum
}

// String renders the summary in the paper's Table 1 terms.
func (s Summary) String() string {
	var b strings.Builder
	pct := func(n, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	fmt.Fprintf(&b, "total barrier execs: %d (field %d / array %d)\n",
		s.TotalExecs, s.FieldExecs, s.ArrayExecs)
	fmt.Fprintf(&b, "eliminated: %.1f%% total, %.1f%% field, %.1f%% array, potential pre-null %.1f%%",
		pct(s.ElidedExecs, s.TotalExecs),
		pct(s.FieldElided, s.FieldExecs),
		pct(s.ArrayElided, s.ArrayExecs),
		pct(s.PotPreNull, s.TotalExecs))
	if s.NullOrSameExecs > 0 {
		fmt.Fprintf(&b, ", null-or-same %.1f%%", pct(s.NullOrSameExecs, s.TotalExecs))
	}
	if s.RearrangeExecs > 0 {
		fmt.Fprintf(&b, ", rearrange %.1f%% (%d retraces)", pct(s.RearrangeExecs, s.TotalExecs), s.Retraces)
	}
	if len(s.UnsoundSites) > 0 {
		fmt.Fprintf(&b, "\nUNSOUND ELISIONS: %v", s.UnsoundSites)
	}
	return b.String()
}

// Logger receives SATB pre-value log entries (the concurrent marker).
type Logger interface {
	// LogPreValue records an overwritten non-null reference.
	LogPreValue(r heap.Ref)
	// MarkingActive reports whether a concurrent mark is in progress.
	MarkingActive() bool
	// DirtyCard records an incremental-update barrier hit on the object.
	DirtyCard(r heap.Ref)
	// TraceStateOf reports the collector's scan progress on an array
	// and Retrace schedules a full rescan — the §4.3 rearrangement
	// protocol's collector half.
	TraceStateOf(r heap.Ref) heap.TraceState
	Retrace(r heap.Ref)
}

// NopLogger discards barrier traffic (for barrier-cost runs without a
// collector).
type NopLogger struct{ Active bool }

func (n *NopLogger) LogPreValue(heap.Ref)                  {}
func (n *NopLogger) MarkingActive() bool                   { return n.Active }
func (n *NopLogger) DirtyCard(r heap.Ref)                  {}
func (n *NopLogger) TraceStateOf(heap.Ref) heap.TraceState { return heap.TraceUntraced }
func (n *NopLogger) Retrace(heap.Ref)                      {}

// addCost accumulates barrier cost units, saturating instead of wrapping
// so cost-model comparisons stay monotone under pathological run lengths.
func (c *Counters) addCost(units uint64) { c.Cost = num.AddSat(c.Cost, units) }

// Barrier executes the write barrier for a reference store of newVal whose
// overwritten value was pre. elide reflects the compile-time analysis
// verdict for the site; the instrumentation still observes elided stores
// (to validate soundness and compute the pre-null upper bound) but pays no
// barrier cost for them.
func (c *Counters) Barrier(mode BarrierMode, log Logger, key SiteKey, kind SiteKind, elide ElideKind, pre, newVal, target heap.Ref) {
	c.BarrierSite(mode, log, c.Site(key, kind, elide), elide, pre, newVal, target)
}

// BarrierSite is Barrier with the site's stats record already resolved.
// The pre-decoded VM engine resolves each store site once at decode time
// and calls this directly, removing the per-execution map lookup.
func (c *Counters) BarrierSite(mode BarrierMode, log Logger, s *SiteStats, elide ElideKind, pre, newVal, target heap.Ref) {
	s.Execs++
	if pre == heap.Null {
		s.PreNull++
	}
	if pre == heap.Null || pre == newVal {
		s.NullOrSame++
	}
	if elide == ElideRearrange {
		// The rearrangement protocol replaces logging with a trace-state
		// check; overlap with the collector's scan schedules a retrace.
		// Under card marking the site degrades to a normal card store.
		if mode == ModeCardMarking {
			c.addCost(CostCard)
			c.CardsDirtied++
			log.DirtyCard(target)
			return
		}
		if mode == ModeNoBarrier || !log.MarkingActive() {
			if mode == ModeConditional {
				c.addCost(CostCheckOnly)
			}
			return
		}
		c.addCost(CostTraceCheck)
		if log.TraceStateOf(target) != heap.TraceUntraced {
			c.addCost(CostRetrace)
			s.Retraces++
			log.Retrace(target)
		}
		return
	}
	if elide != ElideNone {
		return
	}
	switch mode {
	case ModeNoBarrier:
	case ModeConditional:
		if !log.MarkingActive() {
			c.addCost(CostCheckOnly)
			return
		}
		if pre == heap.Null {
			c.addCost(CostPreNull)
			return
		}
		c.addCost(CostLogged)
		c.Logged++
		log.LogPreValue(pre)
	case ModeAlwaysLog:
		if pre == heap.Null {
			c.addCost(CostAlwaysPreNull)
			return
		}
		c.addCost(CostAlwaysLogged)
		c.Logged++
		if log.MarkingActive() {
			log.LogPreValue(pre)
		}
	case ModeCardMarking:
		c.addCost(CostCard)
		c.CardsDirtied++
		log.DirtyCard(target)
	}
}

// StaticBarrier handles putstatic reference stores (always logged; the
// analyses never elide them).
func (c *Counters) StaticBarrier(mode BarrierMode, log Logger, pre heap.Ref) {
	c.StaticExecs++
	switch mode {
	case ModeNoBarrier:
	case ModeConditional:
		if !log.MarkingActive() {
			c.addCost(CostCheckOnly)
			return
		}
		if pre == heap.Null {
			c.addCost(CostPreNull)
			return
		}
		c.addCost(CostLogged)
		c.Logged++
		log.LogPreValue(pre)
	case ModeAlwaysLog:
		if pre == heap.Null {
			c.addCost(CostAlwaysPreNull)
			return
		}
		c.addCost(CostAlwaysLogged)
		c.Logged++
		if log.MarkingActive() {
			log.LogPreValue(pre)
		}
	case ModeCardMarking:
		c.addCost(CostCard)
		c.CardsDirtied++
	}
}
