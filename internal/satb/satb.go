// Package satb implements the mutator side of concurrent-marking write
// barriers: the barriers executed at reference stores, their thread-local
// log buffers, per-site instrumentation, and a deterministic
// instruction-cost model used by the end-to-end experiments (Table 2).
//
// Barrier behavior is table-driven: every flavor — the paper's SATB
// deletion barriers (conditional and always-log), the card-marking
// incremental-update baseline, plus the Yuasa deletion, Dijkstra
// insertion, and Go-style hybrid barriers — is described by a BarrierSpec
// declaring its cost table, what it shades (pre-value, new value, or
// both), its marking-phase gating, and which compile-time elision
// verdicts remain sound under it. BarrierMode and the barrier entry
// points are thin wrappers over the spec table.
package satb

import (
	"fmt"
	"sort"
	"strings"

	"satbelim/internal/heap"
	"satbelim/internal/num"
)

// BarrierMode selects the barrier configuration (Table 2's three modes,
// the card-marking baseline, and the cross-flavor matrix additions).
type BarrierMode int

const (
	// ModeNoBarrier executes no write barriers at all (the "no-barrier"
	// row: an unsound configuration used to measure barrier cost).
	ModeNoBarrier BarrierMode = iota
	// ModeConditional is the production SATB barrier: check whether
	// marking is in progress; if so read the pre-value, and log it when
	// non-null.
	ModeConditional
	// ModeAlwaysLog elides the marking-in-progress check and always
	// logs non-null pre-values (the incrementalized-marking future of
	// §4.5, the "always-log" row).
	ModeAlwaysLog
	// ModeCardMarking is the incremental-update baseline: a two-
	// instruction dirty-card barrier; the collector rescans dirty
	// objects.
	ModeCardMarking
	// ModeYuasa is the classic deletion barrier (Yuasa 1990, PyPy's
	// mostly-concurrent mark&sweep): while marking, unconditionally push
	// the overwritten value to the snapshot save stack. No pre-null fast
	// path — null filtering happens when the stack is drained.
	ModeYuasa
	// ModeDijkstra is the pure insertion barrier (Dijkstra et al. 1978):
	// while marking, shade the value being stored. It keeps every
	// mutator-installed edge reachable but maintains no snapshot, so
	// deletion-style elision proofs do not transfer.
	ModeDijkstra
	// ModeHybrid is the Go-style hybrid barrier (golang/go#17503):
	// while marking, shade both the overwritten value and the value
	// being stored, buying deletion-barrier soundness without stack
	// rescanning.
	ModeHybrid
)

func (m BarrierMode) String() string { return m.Spec().Name }

// ParseBarrierMode parses a barrier-mode name ("none", "conditional",
// "alwayslog", "card", "yuasa", "dijkstra", or "hybrid"). All CLIs and
// the satbd request path share it so the flag vocabulary cannot drift.
func ParseBarrierMode(s string) (BarrierMode, error) {
	switch s {
	case "none":
		return ModeNoBarrier, nil
	case "conditional", "":
		return ModeConditional, nil
	case "alwayslog":
		return ModeAlwaysLog, nil
	case "card":
		return ModeCardMarking, nil
	case "yuasa":
		return ModeYuasa, nil
	case "dijkstra":
		return ModeDijkstra, nil
	case "hybrid":
		return ModeHybrid, nil
	}
	return ModeConditional, fmt.Errorf("unknown barrier mode %q (want none, conditional, alwayslog, card, yuasa, dijkstra, or hybrid)", s)
}

// Barrier cost model, in abstract RISC-instruction units. The paper (§1)
// reports 9–12 instructions for the full SATB barrier and ~2 for a
// card-marking barrier; the constants below follow that shape.
const (
	// CostCheckOnly: marking not in progress — the inline check falls
	// through.
	CostCheckOnly = 1
	// CostTraceCheck: the rearrangement store's trace-state read + test.
	CostTraceCheck = 2
	// CostRetrace: enqueueing an array on the retrace list.
	CostRetrace = 6
	// CostPreNull: marking in progress, pre-value read and found null —
	// no logging needed.
	CostPreNull = 5
	// CostLogged: marking in progress, non-null pre-value pushed to the
	// thread-local buffer.
	CostLogged = 12
	// CostAlwaysPreNull / CostAlwaysLogged: the always-log barrier saves
	// the check instruction.
	CostAlwaysPreNull = 4
	CostAlwaysLogged  = 11
	// CostCard: the card-marking barrier.
	CostCard = 2
	// CostYuasa: the Yuasa deletion barrier's unconditional snapshot
	// push while marking — load the pre-value and push it to the save
	// stack. Null filtering happens at drain time, so null and non-null
	// pre-values cost the same.
	CostYuasa = 9
	// CostDijkstraNull / CostDijkstraShade: the insertion barrier tests
	// only the value being stored; shading greys it. The null fast path
	// is cheaper than the deletion barriers' because the stored value is
	// already in a register — no pre-value load.
	CostDijkstraNull  = 3
	CostDijkstraShade = 10
	// CostHybridNull / CostHybridOne / CostHybridBoth: the Go-style
	// hybrid barrier tests both the overwritten and the stored value and
	// shades each non-null one.
	CostHybridNull = 5
	CostHybridOne  = 12
	CostHybridBoth = 16
)

// SiteKind distinguishes the two compiled barrier kinds of Table 1.
type SiteKind int

const (
	FieldSite SiteKind = iota
	ArraySite
)

func (k SiteKind) String() string {
	if k == FieldSite {
		return "field"
	}
	return "array"
}

// SiteKey identifies a compiled store site.
type SiteKey struct {
	Method string
	PC     int
}

// ElideKind records the analysis verdict for a site.
type ElideKind int

const (
	// ElideNone: the barrier is kept.
	ElideNone ElideKind = iota
	// ElidePreNull: proven to overwrite null (§2/§3).
	ElidePreNull
	// ElideNullOrSame: proven to overwrite null or rewrite the value
	// already present (§4.3).
	ElideNullOrSame
	// ElideRearrange: half of an array-element swap; the logging barrier
	// is replaced by the optimistic trace-state check (§4.3).
	ElideRearrange
)

const numElideKinds = 4

// BarrierSpec is the descriptor for one barrier flavor: its cost table,
// what it shades, how it is gated on the marking phase, and — the part
// the compile-time analysis cares about — which elision verdicts remain
// sound under it. All barrier entry points dispatch over this table;
// BarrierMode is the spec's stable enum handle.
type BarrierSpec struct {
	Mode BarrierMode
	// Name is the canonical display name (also what BarrierMode.String
	// returns).
	Name string

	// ShadesPre / ShadesNew say which store operands the barrier keeps
	// alive: the overwritten value (deletion shading), the value being
	// stored (insertion shading), or both (hybrid). A spec shading
	// neither and not card-marking is the no-barrier configuration.
	ShadesPre bool
	ShadesNew bool
	// Card marks the incremental-update card-dirtying baseline.
	Card bool
	// Checked gates the barrier body on MarkingActive: the inline
	// marking-phase test costs CostCheck when it falls through. Unchecked
	// flavors (always-log) pay the body cost even outside marking but
	// deliver entries to the collector only while marking is active.
	Checked bool
	// SnapshotSound reports whether the flavor maintains the SATB
	// snapshot invariant (every object reachable at mark start stays
	// reachable to the marker). Insertion-only shading and card marking
	// preserve liveness but not the snapshot, so the snapshot-invariant
	// checker must not be armed under them.
	SnapshotSound bool

	// Cost table, in abstract instruction units.
	CostCheck     uint64 // Checked flavor, marking not in progress
	CostFast      uint64 // barrier body with nothing to shade
	CostShade     uint64 // barrier body shading one value
	CostShadeBoth uint64 // barrier body shading both values (hybrid)
	CostCard      uint64 // card-dirtying store

	// sound[k] reports whether elision verdict k may be applied under
	// this flavor. Pre-null proofs are exactly deletion-safe; null-or-
	// same and rearrangement elision additionally assume the barrier
	// shades nothing but pre-values.
	sound [numElideKinds]bool
}

// Sound reports whether the compile-time elision verdict k may be
// applied under this flavor.
func (sp *BarrierSpec) Sound(k ElideKind) bool {
	if k < 0 || int(k) >= numElideKinds {
		return false
	}
	return sp.sound[k]
}

// Project maps an analysis verdict to the verdict actually usable under
// this flavor: the verdict itself when sound, ElideNone (keep the
// barrier) otherwise. Engines project each site's verdict once — at
// decode or compile time — so flavor soundness never costs anything on
// the store fast path.
func (sp *BarrierSpec) Project(k ElideKind) ElideKind {
	if sp.Sound(k) {
		return k
	}
	return ElideNone
}

// allSound: every verdict applies. The legacy SATB modes keep the full
// verdict set so their Table 1/2 rates are bit-identical to the
// pre-spec implementation; no-barrier and card-marking execute no
// deletion barrier for the elision to be unsound against.
var allSound = [numElideKinds]bool{true, true, true, true}

// specs is the barrier-flavor table, indexed by BarrierMode.
var specs = [...]BarrierSpec{
	ModeNoBarrier: {
		Mode: ModeNoBarrier, Name: "no-barrier",
		SnapshotSound: false,
		sound:         allSound,
	},
	ModeConditional: {
		Mode: ModeConditional, Name: "conditional",
		ShadesPre: true, Checked: true, SnapshotSound: true,
		CostCheck: CostCheckOnly, CostFast: CostPreNull,
		CostShade: CostLogged, CostShadeBoth: CostLogged,
		sound: allSound,
	},
	ModeAlwaysLog: {
		Mode: ModeAlwaysLog, Name: "always-log",
		ShadesPre: true, SnapshotSound: true,
		CostFast:  CostAlwaysPreNull,
		CostShade: CostAlwaysLogged, CostShadeBoth: CostAlwaysLogged,
		sound: allSound,
	},
	ModeCardMarking: {
		Mode: ModeCardMarking, Name: "card-marking",
		Card: true, SnapshotSound: false,
		CostCard: CostCard,
		sound:    allSound,
	},
	ModeYuasa: {
		Mode: ModeYuasa, Name: "yuasa",
		ShadesPre: true, Checked: true, SnapshotSound: true,
		CostCheck: CostCheckOnly, CostFast: CostYuasa,
		CostShade: CostYuasa, CostShadeBoth: CostYuasa,
		// A pure deletion barrier: every proof about the overwritten
		// value transfers — pre-null (nothing to snapshot), null-or-same
		// (the snapshotted value is the one being stored, which stays
		// reachable through the target), and the rearrangement
		// trace-state protocol.
		sound: [numElideKinds]bool{true, true, true, true},
	},
	ModeDijkstra: {
		Mode: ModeDijkstra, Name: "dijkstra",
		ShadesNew: true, Checked: true, SnapshotSound: false,
		CostCheck: CostCheckOnly, CostFast: CostDijkstraNull,
		CostShade: CostDijkstraShade, CostShadeBoth: CostDijkstraShade,
		// Insertion shading is about the NEW value; proofs about the
		// overwritten value say nothing about it. A pre-null store still
		// installs an edge the marker must see, so no deletion-style
		// verdict is sound.
		sound: [numElideKinds]bool{true, false, false, false},
	},
	ModeHybrid: {
		Mode: ModeHybrid, Name: "hybrid",
		ShadesPre: true, ShadesNew: true, Checked: true, SnapshotSound: true,
		CostCheck: CostCheckOnly, CostFast: CostHybridNull,
		CostShade: CostHybridOne, CostShadeBoth: CostHybridBoth,
		// Pre-null elides both halves: nothing to snapshot AND the null
		// pre-value proof came with freshness/locality that covers the
		// insertion half (an unmarked-since-allocation target is
		// rescanned from its roots). Null-or-same and rearrangement only
		// license dropping the deletion half, so the full barrier stays.
		sound: [numElideKinds]bool{true, true, false, false},
	},
}

// Spec returns the flavor descriptor for a mode.
func (m BarrierMode) Spec() *BarrierSpec {
	if m < 0 || int(m) >= len(specs) {
		panic(fmt.Sprintf("satb: no spec for barrier mode %d", int(m)))
	}
	return &specs[m]
}

// AllSpecs returns every barrier flavor in deterministic (mode) order.
func AllSpecs() []*BarrierSpec {
	out := make([]*BarrierSpec, len(specs))
	for i := range specs {
		out[i] = &specs[i]
	}
	return out
}

// SiteStats instruments one store site.
type SiteStats struct {
	// Key identifies the compiled site (method × pc).
	Key  SiteKey
	Kind SiteKind
	// Elide records the analysis verdict for the site, already projected
	// through the active flavor's soundness predicate.
	Elide ElideKind
	// Execs counts dynamic executions; PreNull counts executions whose
	// overwritten value was null. A site with Execs == PreNull is
	// "potentially pre-null" (§4.2).
	Execs   uint64
	PreNull uint64
	// NullOrSame counts executions whose overwritten value was null or
	// equal to the stored value (the §4.3 condition).
	NullOrSame uint64
	// Retraces counts rearrangement-store executions that had to
	// schedule an array retrace.
	Retraces uint64
}

// PotentiallyPreNull reports whether no execution ever saw a non-null
// pre-value.
func (s *SiteStats) PotentiallyPreNull() bool { return s.Execs > 0 && s.Execs == s.PreNull }

// Counters aggregates barrier instrumentation for one VM run.
type Counters struct {
	sites map[SiteKey]*SiteStats

	// Cost accumulates barrier cost units actually paid.
	Cost uint64
	// Logged counts deletion-shading log entries produced (pre-values
	// snapshotted by the SATB/Yuasa/hybrid barriers).
	Logged uint64
	// Shaded counts insertion-shading events (new values greyed by the
	// Dijkstra and hybrid barriers).
	Shaded uint64
	// CardsDirtied counts card-marking barrier hits.
	CardsDirtied uint64
	// StaticExecs counts putstatic reference stores (never elidable).
	StaticExecs uint64
}

// NewCounters returns empty instrumentation.
func NewCounters() *Counters {
	return &Counters{sites: map[SiteKey]*SiteStats{}}
}

// Site returns (creating if needed) the stats for a store site.
func (c *Counters) Site(key SiteKey, kind SiteKind, elide ElideKind) *SiteStats {
	s, ok := c.sites[key]
	if !ok {
		s = &SiteStats{Key: key, Kind: kind, Elide: elide}
		c.sites[key] = s
	}
	return s
}

// Sites returns all sites in deterministic order.
func (c *Counters) Sites() []*SiteStats {
	keys := make([]SiteKey, 0, len(c.sites))
	for k := range c.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Method != keys[j].Method {
			return keys[i].Method < keys[j].Method
		}
		return keys[i].PC < keys[j].PC
	})
	out := make([]*SiteStats, len(keys))
	for i, k := range keys {
		out[i] = c.sites[k]
	}
	return out
}

// Summary holds the Table 1 row quantities for one run.
type Summary struct {
	TotalExecs  uint64 // compiled barrier executions (field + array)
	ElidedExecs uint64 // executions at pre-null-elided sites
	FieldExecs  uint64
	ArrayExecs  uint64
	FieldElided uint64
	ArrayElided uint64
	PotPreNull  uint64 // executions at potentially-pre-null sites
	// NullOrSameExecs counts executions at §4.3 null-or-same-elided
	// sites (reported separately from Table 1's eliminations).
	NullOrSameExecs uint64
	// RearrangeExecs counts executions at §4.3 rearrangement sites,
	// with Retraces the subset that had to schedule a rescan.
	RearrangeExecs uint64
	Retraces       uint64
	UnsoundSites   []SiteKey
}

// Summarize computes the Table 1 quantities, flagging any elided site that
// observed a non-null pre-value (which would indicate an analysis
// soundness bug, §4.2's correctness check).
func (c *Counters) Summarize() Summary {
	var sum Summary
	keys := make([]SiteKey, 0, len(c.sites))
	for k := range c.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Method != keys[j].Method {
			return keys[i].Method < keys[j].Method
		}
		return keys[i].PC < keys[j].PC
	})
	for _, k := range keys {
		s := c.sites[k]
		sum.TotalExecs += s.Execs
		if s.Kind == FieldSite {
			sum.FieldExecs += s.Execs
		} else {
			sum.ArrayExecs += s.Execs
		}
		switch s.Elide {
		case ElidePreNull:
			sum.ElidedExecs += s.Execs
			if s.Kind == FieldSite {
				sum.FieldElided += s.Execs
			} else {
				sum.ArrayElided += s.Execs
			}
			if s.PreNull != s.Execs {
				sum.UnsoundSites = append(sum.UnsoundSites, k)
			}
		case ElideNullOrSame:
			sum.NullOrSameExecs += s.Execs
			if s.NullOrSame != s.Execs {
				sum.UnsoundSites = append(sum.UnsoundSites, k)
			}
		case ElideRearrange:
			// Correctness is protocol-level (validated by the GC's
			// snapshot-invariant checker), not per-store.
			sum.RearrangeExecs += s.Execs
			sum.Retraces += s.Retraces
		}
		if s.Execs > 0 && s.PreNull == s.Execs {
			sum.PotPreNull += s.Execs
		}
	}
	return sum
}

// String renders the summary in the paper's Table 1 terms.
func (s Summary) String() string {
	var b strings.Builder
	pct := func(n, d uint64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	fmt.Fprintf(&b, "total barrier execs: %d (field %d / array %d)\n",
		s.TotalExecs, s.FieldExecs, s.ArrayExecs)
	fmt.Fprintf(&b, "eliminated: %.1f%% total, %.1f%% field, %.1f%% array, potential pre-null %.1f%%",
		pct(s.ElidedExecs, s.TotalExecs),
		pct(s.FieldElided, s.FieldExecs),
		pct(s.ArrayElided, s.ArrayExecs),
		pct(s.PotPreNull, s.TotalExecs))
	if s.NullOrSameExecs > 0 {
		fmt.Fprintf(&b, ", null-or-same %.1f%%", pct(s.NullOrSameExecs, s.TotalExecs))
	}
	if s.RearrangeExecs > 0 {
		fmt.Fprintf(&b, ", rearrange %.1f%% (%d retraces)", pct(s.RearrangeExecs, s.TotalExecs), s.Retraces)
	}
	if len(s.UnsoundSites) > 0 {
		fmt.Fprintf(&b, "\nUNSOUND ELISIONS: %v", s.UnsoundSites)
	}
	return b.String()
}

// Logger receives barrier traffic (the concurrent marker).
type Logger interface {
	// LogPreValue records an overwritten non-null reference (deletion
	// shading).
	LogPreValue(r heap.Ref)
	// Shade records a stored non-null reference (insertion shading, the
	// Dijkstra/hybrid barriers' collector half).
	Shade(r heap.Ref)
	// MarkingActive reports whether a concurrent mark is in progress.
	MarkingActive() bool
	// DirtyCard records an incremental-update barrier hit on the object.
	DirtyCard(r heap.Ref)
	// TraceStateOf reports the collector's scan progress on an array
	// and Retrace schedules a full rescan — the §4.3 rearrangement
	// protocol's collector half.
	TraceStateOf(r heap.Ref) heap.TraceState
	Retrace(r heap.Ref)
}

// NopLogger discards barrier traffic (for barrier-cost runs without a
// collector).
type NopLogger struct{ Active bool }

func (n *NopLogger) LogPreValue(heap.Ref)                  {}
func (n *NopLogger) Shade(heap.Ref)                        {}
func (n *NopLogger) MarkingActive() bool                   { return n.Active }
func (n *NopLogger) DirtyCard(r heap.Ref)                  {}
func (n *NopLogger) TraceStateOf(heap.Ref) heap.TraceState { return heap.TraceUntraced }
func (n *NopLogger) Retrace(heap.Ref)                      {}

// addCost accumulates barrier cost units, saturating instead of wrapping
// so cost-model comparisons stay monotone under pathological run lengths.
func (c *Counters) addCost(units uint64) { c.Cost = num.AddSat(c.Cost, units) }

// shadeBody executes the non-card barrier body: gate on the marking
// phase (Checked flavors), then shade whichever of pre/newVal the spec
// keeps alive. Unchecked flavors pay body cost and count log entries
// even outside marking, but deliver entries only while it is active
// (always-log semantics, §4.5).
func (c *Counters) shadeBody(sp *BarrierSpec, log Logger, pre, newVal heap.Ref) {
	active := log.MarkingActive()
	if sp.Checked && !active {
		c.addCost(sp.CostCheck)
		return
	}
	shadePre := sp.ShadesPre && pre != heap.Null
	shadeNew := sp.ShadesNew && newVal != heap.Null
	switch {
	case shadePre && shadeNew:
		c.addCost(sp.CostShadeBoth)
	case shadePre || shadeNew:
		c.addCost(sp.CostShade)
	default:
		c.addCost(sp.CostFast)
	}
	if shadePre {
		c.Logged++
		if active {
			log.LogPreValue(pre)
		}
	}
	if shadeNew {
		c.Shaded++
		if active {
			log.Shade(newVal)
		}
	}
}

// Barrier executes the write barrier for a reference store of newVal whose
// overwritten value was pre. elide reflects the compile-time analysis
// verdict for the site, already projected through the flavor's soundness
// predicate; the instrumentation still observes elided stores (to
// validate soundness and compute the pre-null upper bound) but pays no
// barrier cost for them.
func (c *Counters) Barrier(mode BarrierMode, log Logger, key SiteKey, kind SiteKind, elide ElideKind, pre, newVal, target heap.Ref) {
	c.BarrierSiteSpec(mode.Spec(), log, c.Site(key, kind, elide), elide, pre, newVal, target)
}

// BarrierSite is Barrier with the site's stats record already resolved.
// The pre-decoded VM engine resolves each store site once at decode time
// and calls this directly, removing the per-execution map lookup.
func (c *Counters) BarrierSite(mode BarrierMode, log Logger, s *SiteStats, elide ElideKind, pre, newVal, target heap.Ref) {
	c.BarrierSiteSpec(mode.Spec(), log, s, elide, pre, newVal, target)
}

// BarrierSiteSpec is the spec-driven barrier entry point all flavors
// share.
func (c *Counters) BarrierSiteSpec(sp *BarrierSpec, log Logger, s *SiteStats, elide ElideKind, pre, newVal, target heap.Ref) {
	s.Execs++
	if pre == heap.Null {
		s.PreNull++
	}
	if pre == heap.Null || pre == newVal {
		s.NullOrSame++
	}
	if elide == ElideRearrange {
		// The rearrangement protocol replaces deletion logging with a
		// trace-state check; overlap with the collector's scan schedules
		// a retrace. Under card marking the site degrades to a normal
		// card store.
		if sp.Card {
			c.addCost(sp.CostCard)
			c.CardsDirtied++
			log.DirtyCard(target)
			return
		}
		if !sp.ShadesPre && !sp.ShadesNew {
			return
		}
		if !log.MarkingActive() {
			if sp.Checked {
				c.addCost(sp.CostCheck)
			}
			return
		}
		c.addCost(CostTraceCheck)
		if log.TraceStateOf(target) != heap.TraceUntraced {
			c.addCost(CostRetrace)
			s.Retraces++
			log.Retrace(target)
		}
		return
	}
	if elide != ElideNone {
		return
	}
	if sp.Card {
		c.addCost(sp.CostCard)
		c.CardsDirtied++
		log.DirtyCard(target)
		return
	}
	if !sp.ShadesPre && !sp.ShadesNew {
		return
	}
	c.shadeBody(sp, log, pre, newVal)
}

// StaticBarrier handles putstatic reference stores (always kept; the
// analyses never elide them).
func (c *Counters) StaticBarrier(mode BarrierMode, log Logger, pre, newVal heap.Ref) {
	c.StaticBarrierSpec(mode.Spec(), log, pre, newVal)
}

// StaticBarrierSpec is the spec-driven putstatic barrier. Statics have
// no per-object card, so the card flavor pays cost and counts the hit
// without dirtying.
func (c *Counters) StaticBarrierSpec(sp *BarrierSpec, log Logger, pre, newVal heap.Ref) {
	c.StaticExecs++
	if sp.Card {
		c.addCost(sp.CostCard)
		c.CardsDirtied++
		return
	}
	if !sp.ShadesPre && !sp.ShadesNew {
		return
	}
	c.shadeBody(sp, log, pre, newVal)
}
