package satb

import (
	"testing"

	"satbelim/internal/heap"
)

type recordingLogger struct {
	active   bool
	logged   []heap.Ref
	shaded   []heap.Ref
	dirtied  []heap.Ref
	retraced []heap.Ref
	state    heap.TraceState
}

func (r *recordingLogger) LogPreValue(x heap.Ref)                { r.logged = append(r.logged, x) }
func (r *recordingLogger) Shade(x heap.Ref)                      { r.shaded = append(r.shaded, x) }
func (r *recordingLogger) MarkingActive() bool                   { return r.active }
func (r *recordingLogger) DirtyCard(x heap.Ref)                  { r.dirtied = append(r.dirtied, x) }
func (r *recordingLogger) TraceStateOf(heap.Ref) heap.TraceState { return r.state }
func (r *recordingLogger) Retrace(x heap.Ref)                    { r.retraced = append(r.retraced, x) }

var key = SiteKey{Method: "T.m", PC: 3}

func TestConditionalBarrierMarkingOff(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: false}
	c.Barrier(ModeConditional, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostCheckOnly {
		t.Errorf("cost = %d, want %d", c.Cost, CostCheckOnly)
	}
	if len(log.logged) != 0 {
		t.Error("nothing should be logged while marking is off")
	}
	s := c.Site(key, FieldSite, ElideNone)
	if s.Execs != 1 || s.PreNull != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConditionalBarrierLogsNonNullPre(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.Barrier(ModeConditional, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostLogged || c.Logged != 1 {
		t.Errorf("cost=%d logged=%d", c.Cost, c.Logged)
	}
	if len(log.logged) != 1 || log.logged[0] != heap.Ref(7) {
		t.Errorf("logged = %v", log.logged)
	}
	// Null pre-value: cheaper, no log.
	c.Barrier(ModeConditional, log, key, FieldSite, ElideNone, heap.Null, heap.Ref(8), heap.Ref(1))
	if c.Cost != CostLogged+CostPreNull || len(log.logged) != 1 {
		t.Errorf("after null pre: cost=%d logs=%d", c.Cost, len(log.logged))
	}
}

func TestAlwaysLogSkipsCheck(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: false}
	c.Barrier(ModeAlwaysLog, log, key, FieldSite, ElideNone, heap.Ref(9), heap.Ref(2), heap.Ref(1))
	if c.Cost != CostAlwaysLogged {
		t.Errorf("cost = %d, want %d", c.Cost, CostAlwaysLogged)
	}
	// Marking off: entry counted but not delivered.
	if len(log.logged) != 0 {
		t.Error("inactive marker should not receive entries")
	}
	log.active = true
	c.Barrier(ModeAlwaysLog, log, key, FieldSite, ElideNone, heap.Ref(9), heap.Ref(2), heap.Ref(1))
	if len(log.logged) != 1 {
		t.Error("active marker should receive the entry")
	}
}

func TestElidedSitePaysNothing(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.Barrier(ModeConditional, log, key, ArraySite, ElidePreNull, heap.Null, heap.Ref(8), heap.Ref(1))
	if c.Cost != 0 || len(log.logged) != 0 {
		t.Errorf("elided site must be free: cost=%d", c.Cost)
	}
	s := c.Site(key, ArraySite, ElidePreNull)
	if s.Execs != 1 || s.PreNull != 1 {
		t.Errorf("instrumentation must still observe elided stores: %+v", s)
	}
}

func TestCardMarking(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{}
	c.Barrier(ModeCardMarking, log, key, FieldSite, ElideNone, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != CostCard || c.CardsDirtied != 1 {
		t.Errorf("cost=%d cards=%d", c.Cost, c.CardsDirtied)
	}
	if len(log.dirtied) != 1 || log.dirtied[0] != heap.Ref(5) {
		t.Errorf("dirtied = %v (should be the written object)", log.dirtied)
	}
}

func TestNoBarrierIsFree(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.Barrier(ModeNoBarrier, log, key, FieldSite, ElideNone, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != 0 {
		t.Error("no-barrier mode must cost nothing")
	}
}

func TestSummaryComputesTable1Quantities(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: false}
	k1 := SiteKey{Method: "T.m", PC: 1} // field, elided, always pre-null
	k2 := SiteKey{Method: "T.m", PC: 2} // field, kept, sometimes non-null
	k3 := SiteKey{Method: "T.m", PC: 3} // array, kept, always pre-null (potential)
	for i := 0; i < 10; i++ {
		c.Barrier(ModeConditional, log, k1, FieldSite, ElidePreNull, heap.Null, 8, 1)
	}
	for i := 0; i < 5; i++ {
		pre := heap.Null
		if i%2 == 0 {
			pre = heap.Ref(9)
		}
		c.Barrier(ModeConditional, log, k2, FieldSite, ElideNone, pre, 8, 1)
	}
	for i := 0; i < 4; i++ {
		c.Barrier(ModeConditional, log, k3, ArraySite, ElideNone, heap.Null, 8, 1)
	}
	s := c.Summarize()
	if s.TotalExecs != 19 || s.FieldExecs != 15 || s.ArrayExecs != 4 {
		t.Errorf("execs: %+v", s)
	}
	if s.ElidedExecs != 10 || s.FieldElided != 10 || s.ArrayElided != 0 {
		t.Errorf("elided: %+v", s)
	}
	if s.PotPreNull != 14 { // k1 (10) + k3 (4)
		t.Errorf("potential pre-null = %d, want 14", s.PotPreNull)
	}
	if len(s.UnsoundSites) != 0 {
		t.Errorf("no unsound sites expected: %v", s.UnsoundSites)
	}
}

func TestSummaryFlagsUnsoundElision(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{}
	c.Barrier(ModeConditional, log, key, FieldSite, ElidePreNull, heap.Ref(4), 8, 1) // elided but non-null pre!
	s := c.Summarize()
	if len(s.UnsoundSites) != 1 {
		t.Fatalf("unsound elision must be flagged: %+v", s)
	}
}

func TestStaticBarrier(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.StaticBarrier(ModeConditional, log, heap.Ref(2), heap.Ref(3))
	if c.StaticExecs != 1 || c.Logged != 1 {
		t.Errorf("statics: execs=%d logged=%d", c.StaticExecs, c.Logged)
	}
}

func TestSitesDeterministicOrder(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{}
	c.Barrier(ModeNoBarrier, log, SiteKey{Method: "B.m", PC: 9}, FieldSite, ElideNone, 0, 0, 1)
	c.Barrier(ModeNoBarrier, log, SiteKey{Method: "A.m", PC: 2}, FieldSite, ElideNone, 0, 0, 1)
	c.Barrier(ModeNoBarrier, log, SiteKey{Method: "A.m", PC: 1}, FieldSite, ElideNone, 0, 0, 1)
	sites := c.Sites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d", len(sites))
	}
}

func TestRearrangeBarrierProtocol(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	// Untraced array: just the trace-state check, nothing logged.
	c.Barrier(ModeConditional, log, key, ArraySite, ElideRearrange, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != CostTraceCheck || len(log.retraced) != 0 {
		t.Errorf("untraced: cost=%d retraced=%v", c.Cost, log.retraced)
	}
	// Already-traced array: retrace scheduled.
	log.state = heap.TraceTraced
	c.Barrier(ModeConditional, log, key, ArraySite, ElideRearrange, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if len(log.retraced) != 1 || log.retraced[0] != heap.Ref(5) {
		t.Errorf("traced: retraced=%v", log.retraced)
	}
	if c.Cost != 2*CostTraceCheck+CostRetrace {
		t.Errorf("cost = %d", c.Cost)
	}
	// Marking off: only the conditional check cost.
	log.active = false
	before := c.Cost
	c.Barrier(ModeConditional, log, key, ArraySite, ElideRearrange, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != before+CostCheckOnly {
		t.Errorf("marking-off cost delta = %d", c.Cost-before)
	}
	// No-barrier mode is free.
	before = c.Cost
	c.Barrier(ModeNoBarrier, log, key, ArraySite, ElideRearrange, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != before {
		t.Error("no-barrier must be free")
	}
	// Card marking falls back to a card store.
	before = c.Cost
	c.Barrier(ModeCardMarking, log, key, ArraySite, ElideRearrange, heap.Ref(3), heap.Ref(4), heap.Ref(5))
	if c.Cost != before+CostCard || len(log.dirtied) != 1 {
		t.Errorf("card fallback: cost delta %d, dirtied %v", c.Cost-before, log.dirtied)
	}
	s := c.Summarize()
	if s.RearrangeExecs != 5 || s.Retraces != 1 {
		t.Errorf("summary: rearrange=%d retraces=%d", s.RearrangeExecs, s.Retraces)
	}
	if len(s.UnsoundSites) != 0 {
		t.Errorf("rearrange sites are not per-store checked: %v", s.UnsoundSites)
	}
}

func TestStaticBarrierAllModes(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{}
	c.StaticBarrier(ModeNoBarrier, log, heap.Ref(1), heap.Ref(2))
	if c.Cost != 0 {
		t.Error("no-barrier static must be free")
	}
	c.StaticBarrier(ModeConditional, log, heap.Ref(1), heap.Ref(2)) // marking off
	if c.Cost != CostCheckOnly {
		t.Errorf("cost = %d", c.Cost)
	}
	log.active = true
	c.StaticBarrier(ModeConditional, log, heap.Null, heap.Ref(2))
	if c.Cost != CostCheckOnly+CostPreNull {
		t.Errorf("cost = %d", c.Cost)
	}
	c.StaticBarrier(ModeAlwaysLog, log, heap.Null, heap.Ref(2))
	c.StaticBarrier(ModeAlwaysLog, log, heap.Ref(2), heap.Ref(3))
	if c.Logged != 1 || len(log.logged) != 1 {
		t.Errorf("always-log statics: logged=%d", c.Logged)
	}
	c.StaticBarrier(ModeCardMarking, log, heap.Ref(2), heap.Ref(3))
	if c.CardsDirtied != 1 {
		t.Error("card static")
	}
	if c.StaticExecs != 6 {
		t.Errorf("static execs = %d", c.StaticExecs)
	}
}

func TestStringersAndPredicates(t *testing.T) {
	for mode, want := range map[BarrierMode]string{
		ModeNoBarrier: "no-barrier", ModeConditional: "conditional",
		ModeAlwaysLog: "always-log", ModeCardMarking: "card-marking",
	} {
		if mode.String() != want {
			t.Errorf("%v != %s", mode, want)
		}
	}
	if FieldSite.String() != "field" || ArraySite.String() != "array" {
		t.Error("site kind strings")
	}
	s := &SiteStats{Execs: 3, PreNull: 3}
	if !s.PotentiallyPreNull() {
		t.Error("all-pre-null site is potential")
	}
	s.PreNull = 2
	if s.PotentiallyPreNull() {
		t.Error("mixed site is not potential")
	}
	var nop NopLogger
	nop.LogPreValue(1)
	nop.DirtyCard(1)
	nop.Retrace(1)
	if nop.MarkingActive() || nop.TraceStateOf(1) != heap.TraceUntraced {
		t.Error("nop logger defaults")
	}
	c := NewCounters()
	log := &recordingLogger{}
	c.Barrier(ModeConditional, log, key, FieldSite, ElidePreNull, heap.Ref(1), heap.Ref(1), 1)
	sum := c.Summarize()
	if sum.String() == "" {
		t.Error("summary string empty")
	}
}
