package satb

import (
	"testing"

	"satbelim/internal/heap"
)

func TestParseBarrierModeNewNames(t *testing.T) {
	for name, want := range map[string]BarrierMode{
		"yuasa": ModeYuasa, "dijkstra": ModeDijkstra, "hybrid": ModeHybrid,
	} {
		got, err := ParseBarrierMode(name)
		if err != nil || got != want {
			t.Errorf("ParseBarrierMode(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, err := ParseBarrierMode("bogus"); err == nil {
		t.Error("bogus mode must not parse")
	}
}

func TestAllSpecsCoverEveryMode(t *testing.T) {
	all := AllSpecs()
	if len(all) != 7 {
		t.Fatalf("AllSpecs() = %d flavors, want 7", len(all))
	}
	for i, sp := range all {
		if sp.Mode != BarrierMode(i) {
			t.Errorf("spec %d has mode %v", i, sp.Mode)
		}
		if sp != BarrierMode(i).Spec() {
			t.Errorf("Spec() for %v is not the table entry", sp.Mode)
		}
	}
}

func TestSoundnessMatrix(t *testing.T) {
	// Legacy modes keep the full verdict set; the new flavors restrict it.
	type row struct {
		mode                           BarrierMode
		preNull, nullOrSame, rearrange bool
	}
	for _, r := range []row{
		{ModeNoBarrier, true, true, true},
		{ModeConditional, true, true, true},
		{ModeAlwaysLog, true, true, true},
		{ModeCardMarking, true, true, true},
		{ModeYuasa, true, true, true},
		{ModeDijkstra, false, false, false},
		{ModeHybrid, true, false, false},
	} {
		sp := r.mode.Spec()
		if !sp.Sound(ElideNone) {
			t.Errorf("%v: ElideNone must always be sound", r.mode)
		}
		if sp.Sound(ElidePreNull) != r.preNull ||
			sp.Sound(ElideNullOrSame) != r.nullOrSame ||
			sp.Sound(ElideRearrange) != r.rearrange {
			t.Errorf("%v soundness = {%v %v %v}, want {%v %v %v}", r.mode,
				sp.Sound(ElidePreNull), sp.Sound(ElideNullOrSame), sp.Sound(ElideRearrange),
				r.preNull, r.nullOrSame, r.rearrange)
		}
		// Project keeps sound verdicts and demotes unsound ones to None.
		for k := ElideNone; k <= ElideRearrange; k++ {
			want := k
			if !sp.Sound(k) {
				want = ElideNone
			}
			if got := sp.Project(k); got != want {
				t.Errorf("%v.Project(%v) = %v, want %v", r.mode, k, got, want)
			}
		}
	}
	if ModeDijkstra.Spec().SnapshotSound || !ModeYuasa.Spec().SnapshotSound || !ModeHybrid.Spec().SnapshotSound {
		t.Error("snapshot soundness: yuasa and hybrid maintain the snapshot, dijkstra does not")
	}
}

func TestYuasaBarrierCosts(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: false}
	c.Barrier(ModeYuasa, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostCheckOnly {
		t.Errorf("marking off: cost = %d, want %d", c.Cost, CostCheckOnly)
	}
	log.active = true
	// Non-null pre: logged.
	c.Barrier(ModeYuasa, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostCheckOnly+CostYuasa || c.Logged != 1 || len(log.logged) != 1 {
		t.Errorf("non-null pre: cost=%d logged=%d", c.Cost, c.Logged)
	}
	// Null pre: the unconditional push costs the same, but nothing is
	// delivered (the drain filters nulls).
	c.Barrier(ModeYuasa, log, key, FieldSite, ElideNone, heap.Null, heap.Ref(8), heap.Ref(1))
	if c.Cost != CostCheckOnly+2*CostYuasa || c.Logged != 1 || len(log.logged) != 1 {
		t.Errorf("null pre: cost=%d logged=%d", c.Cost, c.Logged)
	}
	if c.Shaded != 0 || len(log.shaded) != 0 {
		t.Error("a deletion barrier must not shade new values")
	}
}

func TestDijkstraBarrierShadesNewValue(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.Barrier(ModeDijkstra, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostDijkstraShade || c.Shaded != 1 {
		t.Errorf("cost=%d shaded=%d", c.Cost, c.Shaded)
	}
	if len(log.shaded) != 1 || log.shaded[0] != heap.Ref(8) {
		t.Errorf("shaded = %v (want the stored value)", log.shaded)
	}
	if c.Logged != 0 || len(log.logged) != 0 {
		t.Error("an insertion barrier must not log pre-values")
	}
	// Storing null: nothing to shade.
	c.Barrier(ModeDijkstra, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Null, heap.Ref(1))
	if c.Cost != CostDijkstraShade+CostDijkstraNull || c.Shaded != 1 {
		t.Errorf("null store: cost=%d shaded=%d", c.Cost, c.Shaded)
	}
	// Marking off: just the check.
	log.active = false
	before := c.Cost
	c.Barrier(ModeDijkstra, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != before+CostCheckOnly {
		t.Errorf("marking-off delta = %d", c.Cost-before)
	}
}

func TestHybridBarrierShadesBoth(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	// Both operands non-null: both shaded.
	c.Barrier(ModeHybrid, log, key, FieldSite, ElideNone, heap.Ref(7), heap.Ref(8), heap.Ref(1))
	if c.Cost != CostHybridBoth || c.Logged != 1 || c.Shaded != 1 {
		t.Errorf("both: cost=%d logged=%d shaded=%d", c.Cost, c.Logged, c.Shaded)
	}
	if len(log.logged) != 1 || log.logged[0] != heap.Ref(7) ||
		len(log.shaded) != 1 || log.shaded[0] != heap.Ref(8) {
		t.Errorf("logged=%v shaded=%v", log.logged, log.shaded)
	}
	// Null pre, non-null new: only the insertion half.
	c.Barrier(ModeHybrid, log, key, FieldSite, ElideNone, heap.Null, heap.Ref(8), heap.Ref(1))
	if c.Cost != CostHybridBoth+CostHybridOne || c.Shaded != 2 || c.Logged != 1 {
		t.Errorf("insertion half: cost=%d logged=%d shaded=%d", c.Cost, c.Logged, c.Shaded)
	}
	// Both null: fast path.
	c.Barrier(ModeHybrid, log, key, FieldSite, ElideNone, heap.Null, heap.Null, heap.Ref(1))
	if c.Cost != CostHybridBoth+CostHybridOne+CostHybridNull {
		t.Errorf("fast path: cost=%d", c.Cost)
	}
}

func TestProjectedElisionIsFreeUnderNewFlavors(t *testing.T) {
	// A pre-null site under yuasa (sound) is free; the same verdict under
	// dijkstra must be projected away by the caller — when it is, the
	// barrier runs in full.
	c := NewCounters()
	log := &recordingLogger{active: true}
	ysp := ModeYuasa.Spec()
	c.BarrierSiteSpec(ysp, log, c.Site(key, FieldSite, ElidePreNull), ysp.Project(ElidePreNull),
		heap.Null, heap.Ref(8), heap.Ref(1))
	if c.Cost != 0 {
		t.Errorf("sound elision must be free, cost=%d", c.Cost)
	}
	c2 := NewCounters()
	dsp := ModeDijkstra.Spec()
	k2 := SiteKey{Method: "T.m", PC: 9}
	c2.BarrierSiteSpec(dsp, log, c2.Site(k2, FieldSite, dsp.Project(ElidePreNull)), dsp.Project(ElidePreNull),
		heap.Null, heap.Ref(8), heap.Ref(1))
	if c2.Cost != CostDijkstraShade || c2.Shaded != 1 {
		t.Errorf("projected-away elision must pay the full barrier: cost=%d shaded=%d", c2.Cost, c2.Shaded)
	}
}

func TestStaticBarrierNewFlavors(t *testing.T) {
	c := NewCounters()
	log := &recordingLogger{active: true}
	c.StaticBarrier(ModeYuasa, log, heap.Ref(1), heap.Ref(2))
	if c.Cost != CostYuasa || c.Logged != 1 {
		t.Errorf("yuasa static: cost=%d logged=%d", c.Cost, c.Logged)
	}
	c.StaticBarrier(ModeDijkstra, log, heap.Ref(1), heap.Ref(2))
	if c.Cost != CostYuasa+CostDijkstraShade || c.Shaded != 1 {
		t.Errorf("dijkstra static: cost=%d shaded=%d", c.Cost, c.Shaded)
	}
	c.StaticBarrier(ModeHybrid, log, heap.Ref(1), heap.Null)
	if c.Cost != CostYuasa+CostDijkstraShade+CostHybridOne || c.Logged != 2 {
		t.Errorf("hybrid static: cost=%d logged=%d", c.Cost, c.Logged)
	}
	if c.StaticExecs != 3 {
		t.Errorf("static execs = %d", c.StaticExecs)
	}
}
