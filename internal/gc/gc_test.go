package gc

import (
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/heap"
)

func newHeap() *heap.Heap {
	p := bytecode.NewProgram()
	p.AddClass(&bytecode.Class{Name: "T", Fields: []*bytecode.Field{
		{Name: "next", Type: bytecode.ClassType("T")},
	}})
	return heap.New(heap.NewLayout(p))
}

var nextField = bytecode.FieldRef{Class: "T", Name: "next"}

// chain builds a linked list of n objects and returns the head.
func chain(h *heap.Heap, n int) heap.Ref {
	var head heap.Ref
	for i := 0; i < n; i++ {
		r, _ := h.AllocObject("T")
		h.SetField(r, nextField, heap.RefVal(head))
		head = r
	}
	return head
}

func TestSATBMarksReachable(t *testing.T) {
	h := newHeap()
	head := chain(h, 10)
	garbage, _ := h.AllocObject("T")
	_ = garbage

	m := NewSATB(h)
	m.Start([]heap.Ref{head}, true)
	for !m.Step(4) {
	}
	m.Finish([]heap.Ref{head})
	if err := m.CheckSnapshotInvariant(); err != nil {
		t.Fatal(err)
	}
	if m.MarkedCount != 10 {
		t.Errorf("marked = %d, want 10", m.MarkedCount)
	}
	if freed := h.Sweep(); freed != 1 {
		t.Errorf("freed = %d, want 1 (the garbage object)", freed)
	}
}

func TestSATBLogPreservesUnlinkedSubgraph(t *testing.T) {
	// Build a -> b; start marking with root a; before the marker reaches
	// b, unlink it (a.next = null) with the barrier logging b. b is part
	// of the snapshot and must still be marked.
	h := newHeap()
	a, _ := h.AllocObject("T")
	b, _ := h.AllocObject("T")
	h.SetField(a, nextField, heap.RefVal(b))

	m := NewSATB(h)
	m.Start([]heap.Ref{a}, true)
	// Mutator overwrites before any marking work happens.
	old, _ := h.SetField(a, nextField, heap.NullVal())
	if old.R != b {
		t.Fatal("test setup: pre-value should be b")
	}
	m.LogPreValue(old.R) // the write barrier's job
	for !m.Step(1) {
	}
	m.Finish([]heap.Ref{a})
	if err := m.CheckSnapshotInvariant(); err != nil {
		t.Fatalf("snapshot invariant: %v", err)
	}
	if !h.Get(b).Marked {
		t.Error("logged pre-value must be marked")
	}
}

func TestSATBWithoutLogMissesSnapshotObject(t *testing.T) {
	// The negative control: same scenario without the barrier log. The
	// invariant checker must notice. (This is what a wrong elision would
	// cause.)
	h := newHeap()
	a, _ := h.AllocObject("T")
	b, _ := h.AllocObject("T")
	h.SetField(a, nextField, heap.RefVal(b))

	m := NewSATB(h)
	m.Start([]heap.Ref{a}, true)
	h.SetField(a, nextField, heap.NullVal()) // no log: simulated bad elision
	for !m.Step(1) {
	}
	m.Finish([]heap.Ref{a})
	if err := m.CheckSnapshotInvariant(); err == nil {
		t.Fatal("invariant checker must detect the unlogged unlink")
	}
}

func TestSATBAllocDuringMarkImplicitlyLive(t *testing.T) {
	h := newHeap()
	root, _ := h.AllocObject("T")
	m := NewSATB(h)
	m.Start([]heap.Ref{root}, false)
	fresh, _ := h.AllocObject("T") // allocated while marking
	for !m.Step(4) {
	}
	m.Finish([]heap.Ref{root})
	if h.Sweep() != 0 {
		t.Error("object allocated during marking must survive")
	}
	if h.Get(fresh) == nil {
		t.Error("fresh object swept")
	}
}

func TestIncrementalUpdateRescansDirty(t *testing.T) {
	// a is marked early; then the mutator stores a new edge a -> c. The
	// dirty card must cause c to be found in the final phase.
	h := newHeap()
	a, _ := h.AllocObject("T")
	m := NewInc(h)
	m.Start([]heap.Ref{a}, false)
	for !m.Step(8) {
	} // a fully scanned, marking "done"
	c, _ := h.AllocObject("T")
	h.SetField(a, nextField, heap.RefVal(c))
	m.DirtyCard(a)
	m.Finish([]heap.Ref{a})
	if !h.Get(c).Marked {
		t.Error("incremental update must mark via dirty rescan")
	}
}

func TestIncrementalFinalPauseGrowsWithDirtyVolume(t *testing.T) {
	// SATB's final pause should be much smaller than incremental
	// update's when many objects are modified during marking — the
	// paper's core motivation for SATB.
	build := func(kind string) int {
		h := newHeap()
		root, _ := h.AllocObject("T")
		var m Marker
		if kind == "satb" {
			m = NewSATB(h)
		} else {
			m = NewInc(h)
		}
		m.Start([]heap.Ref{root}, false)
		// Mutator: allocate and initialize 200 objects during marking.
		prev := root
		for i := 0; i < 200; i++ {
			r, _ := h.AllocObject("T")
			pre, _ := h.SetField(r, nextField, heap.RefVal(prev))
			// Initializing store: pre-value null. SATB logs nothing;
			// card marking dirties the object.
			if pre.R != heap.Null {
				t.Fatal("expected initializing store")
			}
			m.DirtyCard(r) // card barrier fires regardless of pre-value
			prev = r
		}
		m.Step(4)
		return m.Finish([]heap.Ref{root, prev})
	}
	satbPause := build("satb")
	incPause := build("inc")
	if satbPause >= incPause {
		t.Errorf("SATB final pause (%d) should be smaller than incremental update's (%d)", satbPause, incPause)
	}
}

func TestReachableComputesClosure(t *testing.T) {
	h := newHeap()
	head := chain(h, 5)
	lone, _ := h.AllocObject("T")
	set := Reachable(h, []heap.Ref{head})
	if len(set) != 5 {
		t.Errorf("reachable = %d, want 5", len(set))
	}
	if set[lone] {
		t.Error("lone object must not be reachable")
	}
}

func TestSATBStepBudgetIsIncremental(t *testing.T) {
	h := newHeap()
	head := chain(h, 50)
	m := NewSATB(h)
	m.Start([]heap.Ref{head}, false)
	done := m.Step(10)
	if done {
		t.Fatal("50-object chain cannot finish in 10 steps")
	}
	steps := 1
	for !m.Step(10) {
		steps++
		if steps > 100 {
			t.Fatal("marking did not finish")
		}
	}
	if m.MarkedCount != 50 {
		t.Errorf("marked = %d", m.MarkedCount)
	}
}
