// Package gc implements two concurrent-marking collectors over the VM
// heap:
//
//   - SATBMarker: snapshot-at-the-beginning marking (Yuasa-style), the
//     collector whose write barriers the paper's analyses elide. The
//     mutator logs overwritten non-null references; objects allocated
//     during marking are implicitly live; the marker traces the logical
//     snapshot taken at mark start.
//
//   - IncMarker: a mostly-parallel incremental-update baseline (Boehm,
//     Demers, Shenker): a cheap dirty-card barrier records modified
//     objects, which a final stop-the-world phase rescans.
//
// Both are driven in deterministic steps interleaved with the interpreter
// (cooperative simulation of concurrency), and both report how much work
// their final pause required — reproducing the paper's observation that
// SATB completion pauses are far smaller than incremental-update rescans.
package gc

import (
	"fmt"

	"satbelim/internal/heap"
)

// Marker is the collector interface the VM drives. It doubles as the
// satb.Logger sink for barrier traffic.
type Marker interface {
	Start(roots []heap.Ref, recordSnapshot bool)
	// Step performs up to n units of concurrent marking work; it reports
	// whether the concurrent phase has nothing left to do.
	Step(n int) bool
	// Finish runs the final (stop-the-world) phase with the mutator's
	// current roots and ends the cycle. It returns the number of objects
	// scanned during the pause.
	Finish(roots []heap.Ref) int
	MarkingActive() bool
	LogPreValue(r heap.Ref)
	// Shade greys a reference installed by the mutator (insertion
	// shading, the Dijkstra/hybrid barriers' collector half).
	Shade(r heap.Ref)
	DirtyCard(r heap.Ref)
	// TraceStateOf reports the collector's scan progress on an array
	// (§4.3 rearrangement protocol); Retrace schedules the array for a
	// full rescan in the final pause.
	TraceStateOf(r heap.Ref) heap.TraceState
	Retrace(r heap.Ref)
	// Stats reports the current (or just-finished) cycle's work counts —
	// the observability layer attaches them to per-cycle trace spans.
	Stats() CycleStats
}

// CycleStats summarizes one marking cycle's work.
type CycleStats struct {
	// Marked counts objects marked this cycle; Steps counts concurrent
	// marking work units; FinalPauseWork is the final pause's scan count.
	Marked         int
	Steps          int
	FinalPauseWork int
	// LogEntries counts SATB barrier log entries drained (SATB marker);
	// CardsSeen counts dirty objects recorded (incremental marker).
	LogEntries int
	CardsSeen  int
	// ShadeEntries counts insertion-shading events delivered by the
	// Dijkstra/hybrid barriers.
	ShadeEntries int
	// Retraces counts arrays rescanned by the §4.3 rearrangement
	// protocol.
	Retraces int
}

// SATBMarker is the snapshot-at-the-beginning concurrent marker.
type SATBMarker struct {
	h      *heap.Heap
	gray   []heap.Ref
	buf    []heap.Ref // SATB log buffer (drained by Step)
	active bool
	// retrace lists arrays whose rearrangement overlapped the scan; they
	// are rescanned in the final pause (§4.3's "special retrace list").
	retrace []heap.Ref

	// snapshot is the set of objects reachable at mark start, recorded
	// for the invariant check (tests only).
	snapshot map[heap.Ref]bool

	// MarkedCount counts objects marked this cycle; StepsDone counts
	// marking work units; FinalPauseWork is the last Finish's scan count.
	MarkedCount    int
	StepsDone      int
	FinalPauseWork int
	LogEntries     int
	ShadeEntries   int
	// RetraceCount counts arrays rescanned by the rearrangement
	// protocol this cycle.
	RetraceCount int
}

// NewSATB returns a marker over the heap.
func NewSATB(h *heap.Heap) *SATBMarker { return &SATBMarker{h: h} }

// Start begins a marking cycle: the roots are greyed (the initial pause)
// and the heap is flagged so allocations become implicitly marked.
func (m *SATBMarker) Start(roots []heap.Ref, recordSnapshot bool) {
	m.active = true
	m.gray = m.gray[:0]
	m.buf = m.buf[:0]
	m.retrace = m.retrace[:0]
	m.MarkedCount = 0
	m.StepsDone = 0
	m.LogEntries = 0
	m.ShadeEntries = 0
	m.RetraceCount = 0
	m.h.MarkingActive = true
	m.h.ForEach(func(_ heap.Ref, o *heap.Object) { o.TraceState = heap.TraceUntraced })
	for _, r := range roots {
		m.shade(r)
	}
	m.snapshot = nil
	if recordSnapshot {
		m.snapshot = reachable(m.h, roots)
	}
}

// shade greys an object if white.
func (m *SATBMarker) shade(r heap.Ref) {
	if r == heap.Null {
		return
	}
	o := m.h.Get(r)
	if o == nil || o.Marked {
		return
	}
	o.Marked = true
	m.MarkedCount++
	m.gray = append(m.gray, r)
}

// MarkingActive reports whether a cycle is in progress.
func (m *SATBMarker) MarkingActive() bool { return m.active }

// LogPreValue receives an overwritten reference from the write barrier.
func (m *SATBMarker) LogPreValue(r heap.Ref) {
	if !m.active {
		return
	}
	m.LogEntries++
	m.buf = append(m.buf, r)
}

// Shade receives a stored reference from an insertion-shading barrier.
// Like pre-value log entries it is buffered and drained by Step, so
// insertion shading does the marker's tracing work on the marker's
// schedule, not the mutator's.
func (m *SATBMarker) Shade(r heap.Ref) {
	if !m.active || r == heap.Null {
		return
	}
	m.ShadeEntries++
	m.buf = append(m.buf, r)
}

// Stats reports this cycle's work counts.
func (m *SATBMarker) Stats() CycleStats {
	return CycleStats{Marked: m.MarkedCount, Steps: m.StepsDone,
		FinalPauseWork: m.FinalPauseWork, LogEntries: m.LogEntries,
		ShadeEntries: m.ShadeEntries, Retraces: m.RetraceCount}
}

// DirtyCard is a no-op for SATB marking.
func (m *SATBMarker) DirtyCard(heap.Ref) {}

// Step drains up to n grey objects (and buffered log entries).
func (m *SATBMarker) Step(n int) bool {
	for i := 0; i < n; i++ {
		if len(m.buf) > 0 {
			r := m.buf[len(m.buf)-1]
			m.buf = m.buf[:len(m.buf)-1]
			m.shade(r)
			m.StepsDone++
			continue
		}
		if len(m.gray) == 0 {
			return true
		}
		r := m.gray[len(m.gray)-1]
		m.gray = m.gray[:len(m.gray)-1]
		o := m.h.Get(r)
		if o != nil {
			// Publish the array scan window to the rearrangement
			// protocol: a flagged store observing TraceTracing or
			// TraceTraced requests a retrace.
			o.TraceState = heap.TraceTracing
			o.RefsOf(m.shade)
			o.TraceState = heap.TraceTraced
		}
		m.StepsDone++
	}
	return len(m.gray) == 0 && len(m.buf) == 0
}

// TraceStateOf reports the scan progress on an object.
func (m *SATBMarker) TraceStateOf(r heap.Ref) heap.TraceState {
	o := m.h.Get(r)
	if o == nil {
		return heap.TraceUntraced
	}
	return o.TraceState
}

// Retrace schedules an array for a final-pause rescan.
func (m *SATBMarker) Retrace(r heap.Ref) {
	if m.active && r != heap.Null {
		m.retrace = append(m.retrace, r)
	}
}

// Finish completes the cycle: the final pause rescans the mutator's
// current roots (stack contents may hold snapshot objects loaded during
// marking) and drains remaining work. SATB needs no heap rescans here —
// that is the source of its short completion pauses.
func (m *SATBMarker) Finish(roots []heap.Ref) int {
	work := 0
	for _, r := range roots {
		m.shade(r)
	}
	for !m.Step(64) {
		work += 64
	}
	// Rescan arrays whose rearrangement may have raced the scan (§4.3's
	// retrace list, processed "perhaps with mutators stopped, to prevent
	// livelock" — here the mutator is stopped by construction).
	for _, r := range m.retrace {
		o := m.h.Get(r)
		if o == nil || !o.Marked {
			continue // unreachable arrays need no retrace
		}
		o.RefsOf(m.shade)
		m.RetraceCount++
		work++
	}
	m.retrace = m.retrace[:0]
	for !m.Step(64) {
		work += 64
	}
	// Count residual draining as pause work at step granularity.
	work += len(roots)
	m.FinalPauseWork = work
	m.active = false
	m.h.MarkingActive = false
	return work
}

// CheckSnapshotInvariant verifies the SATB guarantee: every object
// reachable at mark start is marked at mark end. It must be called after
// Finish and before Sweep, on a marker started with recordSnapshot.
func (m *SATBMarker) CheckSnapshotInvariant() error {
	if m.snapshot == nil {
		return fmt.Errorf("gc: no snapshot recorded")
	}
	for r := range m.snapshot {
		o := m.h.Get(r)
		if o == nil {
			return fmt.Errorf("gc: snapshot object %d vanished during marking", r)
		}
		if !o.Marked && !o.AllocDuringMark {
			return fmt.Errorf("gc: SATB invariant violated: snapshot-reachable object %d not marked", r)
		}
	}
	return nil
}

// reachable computes the set of objects reachable from roots.
func reachable(h *heap.Heap, roots []heap.Ref) map[heap.Ref]bool {
	seen := map[heap.Ref]bool{}
	var stack []heap.Ref
	push := func(r heap.Ref) {
		if r != heap.Null && !seen[r] && h.Get(r) != nil {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.Get(r).RefsOf(push)
	}
	return seen
}

// Reachable exposes snapshot computation for tests and tools.
func Reachable(h *heap.Heap, roots []heap.Ref) map[heap.Ref]bool { return reachable(h, roots) }

// IncMarker is the mostly-parallel incremental-update baseline.
type IncMarker struct {
	h      *heap.Heap
	gray   []heap.Ref
	dirty  map[heap.Ref]bool
	active bool

	MarkedCount    int
	StepsDone      int
	FinalPauseWork int
	CardsSeen      int
	ShadeEntries   int
}

// NewInc returns an incremental-update marker.
func NewInc(h *heap.Heap) *IncMarker {
	return &IncMarker{h: h, dirty: map[heap.Ref]bool{}}
}

// Stats reports this cycle's work counts.
func (m *IncMarker) Stats() CycleStats {
	return CycleStats{Marked: m.MarkedCount, Steps: m.StepsDone,
		FinalPauseWork: m.FinalPauseWork, CardsSeen: m.CardsSeen,
		ShadeEntries: m.ShadeEntries}
}

// Start begins a cycle.
func (m *IncMarker) Start(roots []heap.Ref, recordSnapshot bool) {
	m.active = true
	m.gray = m.gray[:0]
	m.dirty = map[heap.Ref]bool{}
	m.MarkedCount = 0
	m.StepsDone = 0
	m.CardsSeen = 0
	m.ShadeEntries = 0
	m.h.MarkingActive = true
	for _, r := range roots {
		m.shade(r)
	}
}

func (m *IncMarker) shade(r heap.Ref) {
	if r == heap.Null {
		return
	}
	o := m.h.Get(r)
	if o == nil || o.Marked {
		return
	}
	o.Marked = true
	m.MarkedCount++
	m.gray = append(m.gray, r)
}

// MarkingActive reports whether a cycle is in progress.
func (m *IncMarker) MarkingActive() bool { return m.active }

// LogPreValue is a no-op for incremental update.
func (m *IncMarker) LogPreValue(heap.Ref) {}

// Shade greys a stored reference immediately: incremental update has no
// deferred log, so insertion shading marks on the spot.
func (m *IncMarker) Shade(r heap.Ref) {
	if !m.active || r == heap.Null {
		return
	}
	m.ShadeEntries++
	m.shade(r)
}

// TraceStateOf always reports untraced: incremental update has no
// rearrangement protocol (flagged stores fall back to card marking).
func (m *IncMarker) TraceStateOf(heap.Ref) heap.TraceState { return heap.TraceUntraced }

// Retrace records the array as dirty, the closest equivalent.
func (m *IncMarker) Retrace(r heap.Ref) { m.DirtyCard(r) }

// DirtyCard records a modified object for rescanning.
func (m *IncMarker) DirtyCard(r heap.Ref) {
	if m.active && r != heap.Null {
		if !m.dirty[r] {
			m.dirty[r] = true
			m.CardsSeen++
		}
	}
}

// Step drains up to n grey objects.
func (m *IncMarker) Step(n int) bool {
	for i := 0; i < n; i++ {
		if len(m.gray) == 0 {
			return true
		}
		r := m.gray[len(m.gray)-1]
		m.gray = m.gray[:len(m.gray)-1]
		if o := m.h.Get(r); o != nil {
			o.RefsOf(m.shade)
		}
		m.StepsDone++
	}
	return len(m.gray) == 0
}

// Finish is the stop-the-world completion: rescan roots and every dirty
// object, repeatedly, until no new objects get marked. The rescan volume —
// which includes every initializing store's object — is what makes
// incremental-update completion pauses long (§1).
func (m *IncMarker) Finish(roots []heap.Ref) int {
	work := 0
	for {
		before := m.MarkedCount
		for _, r := range roots {
			m.shade(r)
		}
		work += len(roots)
		for r := range m.dirty {
			if o := m.h.Get(r); o != nil && o.Marked {
				o.RefsOf(m.shade)
				work++
			}
		}
		m.dirty = map[heap.Ref]bool{}
		for !m.Step(64) {
		}
		work += m.MarkedCount - before
		if m.MarkedCount == before {
			break
		}
	}
	m.FinalPauseWork = work
	m.active = false
	m.h.MarkingActive = false
	return work
}
