package workloads

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

func buildA(t *testing.T, w *Workload) *pipeline.Build {
	t.Helper()
	b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
	})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return b
}

func runB(t *testing.T, b *pipeline.Build, cfg vm.Config) *vm.Result {
	t.Helper()
	res, err := b.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return res
}

func TestAllWorkloadsCompileAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := buildA(t, w)
			res := runB(t, b, vm.Config{Barrier: satb.ModeConditional})
			if len(res.Output) == 0 {
				t.Fatal("workload produced no checksum output")
			}
			sum := res.Counters.Summarize()
			if sum.TotalExecs == 0 {
				t.Fatal("workload executed no barriers")
			}
			if len(sum.UnsoundSites) != 0 {
				t.Fatalf("unsound elisions: %v", sum.UnsoundSites)
			}
			t.Logf("%s: output=%v barriers=%d elided=%.1f%% field/array=%.0f/%.0f fieldElim=%.1f%% arrayElim=%.1f%% potPreNull=%.1f%%",
				w.Name, res.Output, sum.TotalExecs,
				pct(sum.ElidedExecs, sum.TotalExecs),
				pct(sum.FieldExecs, sum.TotalExecs), pct(sum.ArrayExecs, sum.TotalExecs),
				pct(sum.FieldElided, sum.FieldExecs), pct(sum.ArrayElided, sum.ArrayExecs),
				pct(sum.PotPreNull, sum.TotalExecs))
		})
	}
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			b := buildA(t, w)
			r1 := runB(t, b, vm.Config{})
			r2 := runB(t, b, vm.Config{})
			if !reflect.DeepEqual(r1.Output, r2.Output) {
				t.Errorf("nondeterministic output: %v vs %v", r1.Output, r2.Output)
			}
			if r1.Steps != r2.Steps {
				t.Errorf("nondeterministic step count: %d vs %d", r1.Steps, r2.Steps)
			}
		})
	}
}

func TestWorkloadsOutputStableAcrossModes(t *testing.T) {
	// Analysis and barrier modes must never change program results.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			bB, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: 100})
			if err != nil {
				t.Fatal(err)
			}
			base := runB(t, bB, vm.Config{Barrier: satb.ModeNoBarrier})
			bA := buildA(t, w)
			for _, mode := range []satb.BarrierMode{satb.ModeConditional, satb.ModeAlwaysLog, satb.ModeCardMarking} {
				res := runB(t, bA, vm.Config{Barrier: mode})
				if !reflect.DeepEqual(res.Output, base.Output) {
					t.Errorf("mode %v changed output: %v vs %v", mode, res.Output, base.Output)
				}
			}
		})
	}
}

func TestWorkloadsSoundUnderConcurrentMarking(t *testing.T) {
	// Run every workload with elision enabled and real SATB concurrent
	// marking, verifying the snapshot invariant at every cycle.
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("SATB invariant violated: %v", r)
				}
			}()
			b := buildA(t, w)
			res := runB(t, b, vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 150,
				MarkStepBudget:     8,
				Quantum:            32,
				CheckInvariant:     true,
			})
			if res.Cycles == 0 {
				t.Error("expected at least one marking cycle")
			}
			if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
				t.Errorf("unsound elisions: %v", s.UnsoundSites)
			}
		})
	}
}

func TestGetAndNames(t *testing.T) {
	if len(Names()) != 6 {
		t.Fatalf("names = %v", Names())
	}
	w, err := Get("db")
	if err != nil || w.Name != "db" {
		t.Errorf("Get(db) = %v, %v", w, err)
	}
	if _, err := Get("nope"); err == nil {
		t.Error("unknown workload should error")
	}
}

// TestWorkloadStoreMixes checks the qualitative Table 1 shapes each
// workload was designed for (tolerances are generous: the shape, not the
// digits, is the reproduction target).
func TestWorkloadStoreMixes(t *testing.T) {
	type bounds struct {
		elimLo, elimHi     float64 // total % eliminated
		fieldShareLo       float64
		fieldShareHi       float64
		fieldElimLo        float64
		arrayElimHi        float64 // for 0%-array benchmarks
		arrayElimLo        float64 // for mtrt/javac
		checkArrayElimZero bool
	}
	want := map[string]bounds{
		"jess":  {elimLo: 40, elimHi: 60, fieldShareLo: 40, fieldShareHi: 60, fieldElimLo: 95, checkArrayElimZero: true, arrayElimHi: 5},
		"db":    {elimLo: 4, elimHi: 20, fieldShareLo: 4, fieldShareHi: 20, fieldElimLo: 90, checkArrayElimZero: true, arrayElimHi: 5},
		"javac": {elimLo: 20, elimHi: 45, fieldShareLo: 80, fieldShareHi: 99, fieldElimLo: 20, arrayElimLo: 10},
		"mtrt":  {elimLo: 50, elimHi: 75, fieldShareLo: 35, fieldShareHi: 65, fieldElimLo: 60, arrayElimLo: 35},
		"jack":  {elimLo: 30, elimHi: 60, fieldShareLo: 60, fieldShareHi: 90, fieldElimLo: 45, checkArrayElimZero: true, arrayElimHi: 5},
		"jbb":   {elimLo: 12, elimHi: 40, fieldShareLo: 50, fieldShareHi: 80, fieldElimLo: 25, checkArrayElimZero: true, arrayElimHi: 5},
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			bw := want[w.Name]
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: 100,
				Analysis:    core.Options{Mode: core.ModeFieldArray},
			})
			if err != nil {
				t.Fatal(err)
			}
			res := runB(t, b, vm.Config{Barrier: satb.ModeConditional})
			s := res.Counters.Summarize()
			elim := pct(s.ElidedExecs, s.TotalExecs)
			fieldShare := pct(s.FieldExecs, s.TotalExecs)
			fieldElim := pct(s.FieldElided, s.FieldExecs)
			arrayElim := pct(s.ArrayElided, s.ArrayExecs)
			if elim < bw.elimLo || elim > bw.elimHi {
				t.Errorf("total elim %.1f%% outside [%v,%v]", elim, bw.elimLo, bw.elimHi)
			}
			if fieldShare < bw.fieldShareLo || fieldShare > bw.fieldShareHi {
				t.Errorf("field share %.1f%% outside [%v,%v]", fieldShare, bw.fieldShareLo, bw.fieldShareHi)
			}
			if fieldElim < bw.fieldElimLo {
				t.Errorf("field elim %.1f%% below %v", fieldElim, bw.fieldElimLo)
			}
			if bw.checkArrayElimZero && arrayElim > bw.arrayElimHi {
				t.Errorf("array elim %.1f%% should be ~0", arrayElim)
			}
			if bw.arrayElimLo > 0 && arrayElim < bw.arrayElimLo {
				t.Errorf("array elim %.1f%% below %v", arrayElim, bw.arrayElimLo)
			}
		})
	}
}

// TestInterproceduralSoundOnWorkloads runs the summary-based analysis on
// every workload without inlining, under concurrent marking.
func TestInterproceduralSoundOnWorkloads(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("SATB invariant violated: %v", r)
				}
			}()
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: 0,
				Analysis:    core.Options{Mode: core.ModeFieldArray, Interprocedural: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			res := runB(t, b, vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 150,
				CheckInvariant:     true,
			})
			s := res.Counters.Summarize()
			if len(s.UnsoundSites) != 0 {
				t.Fatalf("unsound: %v", s.UnsoundSites)
			}
			t.Logf("%s limit 0 + summaries: elim=%.1f%%", w.Name, pct(s.ElidedExecs, s.TotalExecs))
		})
	}
}
