package workloads

// Javac models the SPECjvm98 compiler: expression trees are built bottom-
// up (constructor stores eliminable), canonicalized while still thread-
// local (the null-or-same idiom of §4.3), then published into a symbol
// table after which parent-link and fold passes mutate escaped nodes
// (barriers kept). Field stores dominate (~92%); a small scope-array
// component includes an in-order initialization loop the array analysis
// catches.
func Javac() *Workload {
	return &Workload{
		Name:        "javac",
		Description: "compiler: AST build, canonicalize, publish, parent/fold passes",
		Paper: PaperRow{
			TotalMillions: 19.9, ElimPct: 32.8, PotPreNullPct: 38.5,
			FieldPct: 92, ArrayPct: 8, FieldElimPct: 33.9, ArrayElimPct: 20.5,
		},
		NullOrSamePaperPct: 15,
		Source:             javacSource,
	}
}

const javacSource = `
// javac: compiler workload.
class Node {
    int kind;
    int val;
    Node left;
    Node right;
    Node parent;
    Node(int k, int v) {
        kind = k;
        val = v;
    }
}

class SymTab {
    static Node[] buckets;
    static Node[] roots;
    static Node[] literals;   // interned leaf nodes, shared and escaped
    static int rootCount;
    static int folded;
}

class Javac {
    // Build a small expression tree bottom-up; every node is
    // canonicalized while still thread-local. Leaves come from the
    // interned literal pool (like javac's shared constant nodes), so
    // most field traffic is interior-node bookkeeping.
    static Node buildTree(int seed, int depth) {
        if (depth == 0) {
            int ix = seed % SymTab.literals.length;
            if (ix < 0) ix = 0;
            return SymTab.literals[ix];
        }
        Node l = buildTree(seed * 3 + 1, depth - 1);
        Node r = buildTree(seed * 5 + 2, depth - 1);
        Node n = new Node(seed % 7, seed);
        n.left = l;     // caller-side init (inlining-gated)
        n.right = r;    // caller-side init (inlining-gated)
        // Canonicalize: order children by kind. When already ordered the
        // stores rewrite the same values (null-or-same, §4.3).
        Node cl = n.left;
        Node cr = n.right;
        if (cl.kind > cr.kind) {
            n.left = cr;    // overwrites non-null: kept
            n.right = cl;   // kept
        } else {
            n.left = cl;    // null-or-same
            n.right = cr;   // null-or-same
        }
        return n;
    }

    static void publish(Node root) {
        SymTab.roots[SymTab.rootCount] = root;  // escaped array: kept
        SymTab.rootCount = SymTab.rootCount + 1;
        int h = root.val % SymTab.buckets.length;
        if (h < 0) h = 0;
        SymTab.buckets[h] = root;               // escaped array: kept
    }

    // Set parent pointers on the (now escaped) tree: barriers kept.
    // Shared literal leaves are skipped (their parents are ambiguous),
    // like javac's flyweight nodes.
    static void setParents(Node n) {
        if (n.left != null) {
            n.left.parent = n;
            if (n.left.kind != 9) setParents(n.left);
        }
        if (n.right != null) {
            n.right.parent = n;
            if (n.right.kind != 9) setParents(n.right);
        }
    }

    // Constant-fold: replace foldable interior nodes' children with
    // interned leaves; mutates escaped nodes (kept). Passes over shared
    // leaves.
    static void fold(Node n) {
        if (n.left == null || n.kind == 9) {
            return;
        }
        fold(n.left);
        fold(n.right);
        if (n.left.kind == n.right.kind) {
            n.left = SymTab.literals[(n.left.val + n.right.val) % SymTab.literals.length];
            SymTab.folded = SymTab.folded + 1;
        }
    }

    // A per-compilation local scope table, filled in order before it is
    // handed out: the array analysis proves these stores initializing.
    static int localScope(Node root, int size) {
        Node[] scope = new Node[size];
        for (int i = 0; i < scope.length; i = i + 1) {
            scope[i] = root;                    // eliminable aastore
        }
        int s = 0;
        for (int i = 0; i < scope.length; i = i + 1) {
            s = s + scope[i].val;
        }
        return s;
    }

    // A registered scope table: published into the symbol table first,
    // then filled — the stores are dynamically pre-null but the array has
    // escaped, so the barriers stay.
    static Node[] registered;
    static int registeredScope(Node root, int size) {
        registered = new Node[size];
        for (int i = 0; i < size; i = i + 1) {
            registered[i] = root;               // escaped array: kept
        }
        return registered.length;
    }

    static void main() {
        SymTab.buckets = new Node[64];
        SymTab.roots = new Node[512];
        SymTab.literals = new Node[16];
        for (int i = 0; i < SymTab.literals.length; i = i + 1) {
            SymTab.literals[i] = new Node(9, i);
        }
        int check = 0;
        for (int unit = 0; unit < 90; unit = unit + 1) {
            Node root = buildTree(unit + 1, 4);
            publish(root);
            setParents(root);
            fold(root);
            check = check + localScope(root, 2);
            check = check + registeredScope(root, 6);
        }
        print(check + SymTab.folded);
    }
}
`
