package workloads_test

// Paper-table regression gates: the reproduced elimination-rate numbers
// for Table 1, Table 2, Figure 2, and Figure 3 are pinned as golden JSON
// under testdata/ and compared with per-cell tolerances, so a precision
// regression fails `go test ./...` instead of silently drifting. Only
// deterministic cells are gated — elimination percentages, relative
// throughput on the deterministic cost model, and code-size reductions —
// never wall-clock times or raw byte sizes.
//
// Regenerate after an intended precision change with:
//
//	go test ./internal/workloads -run TestPaperTableGolden -update-tables
//
// and justify the diff in the commit message.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"satbelim/internal/report"
)

var updateTables = flag.Bool("update-tables", false, "rewrite the paper-table golden files")

// Tolerances, in the unit of the gated cell. Elimination rates are
// percentages (points); Table 2 relative throughput is a ratio. The gates
// are deliberately tighter than the paper-vs-reproduction gap: they pin
// OUR numbers, catching unintended drift, not paper fidelity.
const (
	// tolPctPoints allows ±0.25 percentage points on any elimination or
	// reduction rate: below one workload's smallest single-site dynamic
	// contribution, so losing any site's elisions trips the gate, while
	// float formatting noise cannot.
	tolPctPoints = 0.25
	// tolRelative allows ±0.02 on Table 2 relative throughput (the paper
	// separates its modes by ≥ 0.009 — but those gaps come from barrier
	// accounting we pin exactly elsewhere; this gate catches cost-model
	// regressions an order larger than rounding).
	tolRelative = 0.02
)

// goldenCell is one gated value with its location for error messages.
type goldenCell struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
}

// goldenTable is the serialized gate: a named tolerance plus cells.
type goldenTable struct {
	Comment   string       `json:"comment"`
	Tolerance float64      `json:"tolerance"`
	Cells     []goldenCell `json:"cells"`
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func gate(t *testing.T, name string, tolerance float64, comment string, cells []goldenCell) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateTables {
		doc := goldenTable{Comment: comment, Tolerance: tolerance, Cells: cells}
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cells)", path, len(cells))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-tables to generate)", err)
	}
	var want goldenTable
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	got := map[string]float64{}
	for _, c := range cells {
		got[c.Key] = c.Val
	}
	if len(got) != len(cells) {
		t.Fatalf("%s: duplicate cell keys in measurement", name)
	}
	for _, w := range want.Cells {
		g, ok := got[w.Key]
		if !ok {
			t.Errorf("%s: cell %s missing from measurement (workload or config removed?)", name, w.Key)
			continue
		}
		if diff := math.Abs(g - w.Val); diff > want.Tolerance {
			t.Errorf("%s: %s = %.2f, golden %.2f (|Δ|=%.2f > tolerance %.2f) — precision regression; "+
				"if intended, regenerate with -update-tables and justify",
				name, w.Key, g, w.Val, diff, want.Tolerance)
		}
		delete(got, w.Key)
	}
	for k := range got {
		t.Errorf("%s: new ungated cell %s — regenerate with -update-tables", name, k)
	}
}

// TestPaperTableGoldenTable1 gates every workload's dynamic elimination
// rates at the paper's operating point (inline limit 100, mode A).
func TestPaperTableGoldenTable1(t *testing.T) {
	rows, err := report.Table1(report.DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, r := range rows {
		cells = append(cells,
			goldenCell{r.Name + ".elim_pct", round2(r.ElimPct)},
			goldenCell{r.Name + ".pot_pct", round2(r.PotPct)},
			goldenCell{r.Name + ".field_elim", round2(r.FieldElim)},
			goldenCell{r.Name + ".array_elim", round2(r.ArrayElim)},
		)
	}
	gate(t, "table1.golden.json", tolPctPoints,
		"Table 1 dynamic elimination rates (%), inline limit 100, mode A; tolerance in percentage points",
		cells)
}

// TestPaperTableGoldenTable2 gates the jbb end-to-end relative
// throughputs on the deterministic cost model.
func TestPaperTableGoldenTable2(t *testing.T) {
	rows, err := report.Table2(report.DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, r := range rows {
		cells = append(cells, goldenCell{r.Mode + ".relative", round2(r.Relative)})
	}
	gate(t, "table2.golden.json", tolRelative,
		"Table 2 jbb relative throughput vs no-barrier (deterministic cost model); tolerance is a ratio",
		cells)
}

// TestPaperTableGoldenFigure2 gates the elimination rate of every
// (workload, inline limit, mode) point in the paper's sweep.
func TestPaperTableGoldenFigure2(t *testing.T) {
	points, err := report.Figure2(nil) // the paper's limits {0,25,50,100,200}
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, p := range points {
		key := fmt.Sprintf("%s.limit%d.%s.elim_pct", p.Workload, p.Limit, p.Mode)
		cells = append(cells, goldenCell{key, round2(p.ElimPct)})
	}
	gate(t, "figure2.golden.json", tolPctPoints,
		"Figure 2 elimination rate (%) per (workload, inline limit, analysis mode); tolerance in percentage points",
		cells)
}

// TestPaperTableGoldenInterproc gates the interprocedural-summary
// recovery table: per workload, the dynamic elimination rate at inline
// limit 0 with and without summaries, plus the delta the summaries buy.
// At least one workload must keep a strictly positive delta — the
// summary layer's reason to exist.
func TestPaperTableGoldenInterproc(t *testing.T) {
	rows, err := report.Interprocedural()
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	maxDelta := 0.0
	for _, r := range rows {
		cells = append(cells,
			goldenCell{r.Workload + ".limit0_pct", round2(r.Limit0Pct)},
			goldenCell{r.Workload + ".limit0_sum_pct", round2(r.Limit0SumPct)},
			goldenCell{r.Workload + ".delta_pct", round2(r.DeltaPct)},
		)
		if r.DeltaPct > maxDelta {
			maxDelta = r.DeltaPct
		}
	}
	if maxDelta <= tolPctPoints {
		t.Errorf("no workload gains from interprocedural summaries at limit 0 (max delta %.2f)", maxDelta)
	}
	gate(t, "interproc.golden.json", tolPctPoints,
		"Interprocedural summary recovery (%), inline limit 0, mode A with and without summaries; tolerance in percentage points",
		cells)
}

// TestPaperTableGoldenFigure3 gates the compiled-code-size reductions
// (never the raw sizes, which legitimately change with codegen).
func TestPaperTableGoldenFigure3(t *testing.T) {
	rows, err := report.Figure3(report.DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, r := range rows {
		cells = append(cells,
			goldenCell{r.Workload + ".reduce_f_pct", round2(r.ReduceFPct)},
			goldenCell{r.Workload + ".reduce_a_pct", round2(r.ReduceAPct)},
		)
	}
	gate(t, "figure3.golden.json", tolPctPoints,
		"Figure 3 compiled-code-size reduction (%) for modes F and A vs B; tolerance in percentage points",
		cells)
}
