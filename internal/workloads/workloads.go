// Package workloads provides the six MiniJava benchmark programs standing
// in for SPECjvm98 (jess, db, javac, mtrt, jack) and SPECjbb2000 (jbb) in
// the paper's evaluation. Each program is written to reproduce the store
// *character* of its namesake — the field/array split and the fraction of
// initializing (pre-null) stores the paper reports in Table 1 — so that
// the analyses face the same kinds of opportunities. The absolute
// iteration counts are scaled to interpreter speed.
package workloads

import "fmt"

// PaperRow is a row of the paper's Table 1 (dynamic results), kept for
// side-by-side reporting in EXPERIMENTS.md.
type PaperRow struct {
	TotalMillions float64 // barrier executions ×10⁶ on the paper's setup
	ElimPct       float64
	PotPreNullPct float64
	FieldPct      float64 // field share of executions
	ArrayPct      float64
	FieldElimPct  float64
	ArrayElimPct  float64
}

// Workload is one benchmark program.
type Workload struct {
	Name        string
	Description string
	Source      string
	Paper       PaperRow
	// NullOrSamePaperPct is the §4.3 hand-measured share of executions
	// at null-or-same sites (0 when the paper reports none).
	NullOrSamePaperPct float64
}

// All returns the six workloads in the paper's Table 1 order.
func All() []*Workload {
	return []*Workload{Jess(), DB(), Javac(), Mtrt(), Jack(), JBB()}
}

// Get returns a workload by name.
func Get(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the workload names in order.
func Names() []string {
	var out []string
	for _, w := range All() {
		out = append(out, w.Name)
	}
	return out
}
