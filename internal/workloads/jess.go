package workloads

// Jess models the SPECjvm98 expert-system shell: facts asserted into a
// shared working memory, a join phase allocating match tokens, and an
// agenda that is filled and drained each cycle. Nearly every field store
// initializes a freshly allocated Fact or Token (eliminable), while the
// working-memory and agenda array stores target escaped arrays (kept) —
// giving the paper's ~51/49 field/array split with ~99.7% of field
// barriers eliminated and no array eliminations.
func Jess() *Workload {
	return &Workload{
		Name:        "jess",
		Description: "expert-system shell: fact assertion, token joins, agenda firing",
		Paper: PaperRow{
			TotalMillions: 7.9, ElimPct: 50.5, PotPreNullPct: 75.0,
			FieldPct: 51, ArrayPct: 49, FieldElimPct: 99.7, ArrayElimPct: 0.0,
		},
		Source: jessSource,
	}
}

const jessSource = `
// jess: expert-system shell workload.
class Fact {
    int kind;
    int val;
    Fact next;
    Fact(int k, int v) {
        kind = k;
        val = v;
    }
}

class Token {
    Fact left;
    Fact right;
    int score;
    Token(int s) {
        score = s;
    }
}

class Memory {
    static Fact[] wm;
    static Token[] agenda;
    static int wmCount;
    static int agendaCount;
    static int fired;
}

class Jess {
    static void assertFact(Fact f) {
        Memory.wm[Memory.wmCount] = f;     // escaped array: barrier kept
        Memory.wmCount = Memory.wmCount + 1;
    }

    static void activate(Token t) {
        Memory.agenda[Memory.agendaCount] = t;  // escaped array: kept
        Memory.agendaCount = Memory.agendaCount + 1;
    }

    static void fireAll() {
        while (Memory.agendaCount > 0) {
            Memory.agendaCount = Memory.agendaCount - 1;
            Token t = Memory.agenda[Memory.agendaCount];
            Memory.agenda[Memory.agendaCount] = null;  // overwrites non-null: kept
            Memory.fired = Memory.fired + t.score;
        }
    }

    // Join the new fact against recently asserted facts of other kinds.
    static void matchAndActivate(Fact f) {
        int limit = Memory.wmCount;
        int i = limit - 24;
        if (i < 0) i = 0;
        int joins = 0;
        while (i < limit && joins < 2) {
            Fact g = Memory.wm[i];
            if (g != null && g.kind != f.kind) {
                Token t = new Token(f.val + g.val);
                // Caller-side initialization of the fresh token: these
                // stores are eliminable only once the constructor is
                // inlined (otherwise the allocation escapes into it).
                t.left = f;
                t.right = g;
                activate(t);
                joins = joins + 1;
            }
            i = i + 3;
        }
    }

    static void main() {
        Memory.wm = new Fact[4096];
        Memory.agenda = new Token[4096];
        Fact chainHead = null;
        for (int round = 0; round < 40; round = round + 1) {
            for (int k = 0; k < 60; k = k + 1) {
                Fact f = new Fact(k % 3, k + round);
                f.next = chainHead;   // caller-side init (inlining-gated)
                chainHead = f;
                assertFact(f);
                matchAndActivate(f);
            }
            fireAll();
            // Occasional in-place retraction relink on an old, escaped
            // fact: this store keeps its barrier.
            Fact old = Memory.wm[(round * 13) % Memory.wmCount];
            if (old != null) {
                old.next = chainHead;
            }
            if (Memory.wmCount > 2000) {
                Memory.wm = new Fact[4096];
                Memory.wmCount = 0;
                chainHead = null;
            }
        }
        print(Memory.fired);
    }
}
`
