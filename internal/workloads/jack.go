package workloads

// Jack models the SPECjvm98 parser generator: a lexing phase producing
// token objects (eliminable constructor stores), grammar productions whose
// right-hand sides live in escaped arrays (kept array stores), a
// first-set propagation pass mutating escaped productions (kept field
// stores), and the token-cache recopy idiom that is null-or-same (§4.3's
// ~14% for jack).
func Jack() *Workload {
	return &Workload{
		Name:        "jack",
		Description: "parser generator: lexer tokens, grammar tables, first-set passes",
		Paper: PaperRow{
			TotalMillions: 10.7, ElimPct: 41.0, PotPreNullPct: 54.0,
			FieldPct: 74, ArrayPct: 26, FieldElimPct: 55.5, ArrayElimPct: 0.0,
		},
		NullOrSamePaperPct: 14,
		Source:             jackSource,
	}
}

const jackSource = `
// jack: parser-generator workload.
class Token {
    int kind;
    int pos;
    Token next;
    Token alt;
    Token(int k, int p) {
        kind = k;
        pos = p;
    }
}

class Production {
    int lhs;
    Token firstSet;
    Production link;
    Production(int l) {
        lhs = l;
    }
}

class Grammar {
    static Production[] table;
    static Token[] stream;
    static int streamLen;
    static int parses;
}

class Jack {
    // Lex one "file": a burst of tokens chained locally, then appended
    // into the shared stream (array stores kept).
    static Token lex(int seed, int count) {
        Token head = null;
        Token prevAlt = null;
        for (int i = 0; i < count; i = i + 1) {
            Token t = new Token((seed + i) % 11, i);
            t.next = head;       // caller-side init (inlining-gated)
            t.alt = prevAlt;     // caller-side init (inlining-gated)
            head = t;
            prevAlt = t;
            Grammar.stream[Grammar.streamLen] = t;   // escaped: kept
            Grammar.streamLen = Grammar.streamLen + 1;
        }
        return head;
    }

    // The token-cache idiom: scan ahead for a non-null cached token and
    // write it back — the write either rewrites the same token or the
    // cache slot stays as it was (null-or-same on a thread-local cache).
    static int cachedScan(Token head, int want) {
        Token cache = new Token(0 - 1, 0 - 1);
        int hits = 0;
        Token c = head;
        while (c != null) {
            Token e = cache.next;
            if (e == null) {
                cache.next = c;      // first fill: pre-null (eliminable)
                e = c;
            } else {
                if (c.pos % 2 == 0) {
                    cache.next = e;  // recopy: null-or-same
                }
            }
            if (e.kind == want) {
                hits = hits + 1;
            }
            c = c.next;
        }
        return hits;
    }

    // First-set propagation mutates a slice of the escaped production
    // table: kept barriers.
    static void propagate(Token tokens, int from) {
        for (int i = from; i < from + 16 && i < Grammar.table.length; i = i + 1) {
            Production p = Grammar.table[i];
            if (p != null && tokens != null) {
                p.firstSet = tokens;     // escaped object: kept
                if (p.link != null) {
                    p.link.firstSet = tokens;  // kept
                }
            }
        }
    }

    static void main() {
        Grammar.table = new Production[24];
        Grammar.stream = new Token[8192];
        Production chain = null;
        for (int i = 0; i < Grammar.table.length; i = i + 1) {
            Production p = new Production(i);
            p.link = chain;               // caller-side init
            chain = p;
            Grammar.table[i] = chain;     // escaped: kept
        }
        int checksum = 0;
        for (int file = 0; file < 40; file = file + 1) {
            Token toks = lex(file * 17, 40);
            checksum = checksum + cachedScan(toks, 3);
            propagate(toks, file % 8);
            if (Grammar.streamLen > 6000) {
                Grammar.stream = new Token[8192];
                Grammar.streamLen = 0;
            }
            Grammar.parses = Grammar.parses + 1;
        }
        print(checksum + Grammar.parses);
    }
}
`
