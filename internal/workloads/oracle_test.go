package workloads_test

import (
	"fmt"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// TestOracleAllWorkloads is the soundness sweep the paper's elision claim
// rests on: every workload, under every analysis configuration and every
// inline limit of §4.4, runs to completion with the runtime elision
// oracle enabled and zero violations — each elided store dynamically
// overwrote null (or the same reference) on a thread-local target.
func TestOracleAllWorkloads(t *testing.T) {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"F", core.Options{Mode: core.ModeField}},
		{"A", core.Options{Mode: core.ModeFieldArray}},
		{"A+nos", core.Options{Mode: core.ModeFieldArray, NullOrSame: true}},
		{"A+nos+rearr+ip", core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true, Interprocedural: true}},
	}
	limits := []int{0, 25, 50, 100, 200}
	if testing.Short() {
		configs = configs[1:3]
		limits = []int{0, 100}
	}
	for _, w := range workloads.All() {
		for _, cfg := range configs {
			for _, limit := range limits {
				t.Run(fmt.Sprintf("%s/%s/inline%d", w.Name, cfg.name, limit), func(t *testing.T) {
					t.Parallel()
					b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: limit, Analysis: cfg.opts})
					if err != nil {
						t.Fatal(err)
					}
					if d := b.Report.Degraded(); len(d) > 0 {
						t.Errorf("methods degraded under default budgets: %v", d)
					}
					res, err := b.Run(vm.Config{
						Barrier:            satb.ModeConditional,
						GC:                 vm.GCSATB,
						TriggerEveryAllocs: 256,
						CheckInvariant:     true,
						CheckElisions:      true,
					})
					if err != nil {
						t.Fatalf("oracle violation: %v", err)
					}
					if s := res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
						t.Errorf("unsound sites: %v", s.UnsoundSites)
					}
					if limit >= 100 && cfg.opts.Mode != core.ModeField && res.ElisionChecks == 0 {
						t.Error("oracle validated no elided stores — elision not exercised")
					}
				})
			}
		}
	}
}
