package workloads

// Mtrt models the SPECjvm98 multi-threaded ray tracer: two spawned worker
// threads render interleaved rows. Per pixel a Ray and a Hit are
// allocated and initialized (eliminable field stores), row-local ray and
// hit buffers are filled in order (eliminable array stores — mtrt is the
// paper's array-analysis success case), and results land in shared,
// escaped buffers (kept). Array stores outnumber field stores (~41/59).
func Mtrt() *Workload {
	return &Workload{
		Name:        "mtrt",
		Description: "multi-threaded ray tracer: per-row buffers, shared framebuffer",
		Paper: PaperRow{
			TotalMillions: 3.0, ElimPct: 61.9, PotPreNullPct: 91.6,
			FieldPct: 41, ArrayPct: 59, FieldElimPct: 72.0, ArrayElimPct: 54.7,
		},
		Source: mtrtSource,
	}
}

const mtrtSource = `
// mtrt: multi-threaded ray tracer workload.
class Vec {
    int x; int y; int z;
    Vec(int x0, int y0, int z0) { x = x0; y = y0; z = z0; }
}

class Sphere {
    Vec center;
    int radius;
    Sphere next;
    Sphere(int r) {
        radius = r;
    }
}

class Ray {
    int id;
    Vec origin;
    Vec dir;
    Ray(int id0) {
        id = id0;
    }
}

class Hit {
    Sphere obj;
    int dist;
    Hit(int d) {
        dist = d;
    }
}

class Stats {
    Hit lastHit;
    int count;
}

class Scene {
    static Sphere spheres;
    static Hit[][] frame;      // shared framebuffer rows
    static Stats stats;        // shared render statistics
    static int width;
    static int doneA;
    static int doneB;
    static int checksum;

    static Hit trace(Ray r, int px) {
        Sphere s = Scene.spheres;
        Sphere best = null;
        int bestD = 1000000;
        while (s != null) {
            int d = r.dir.x * px + s.center.x * s.center.x + s.radius;
            if (d % 97 < bestD % 97) {
                best = s;
                bestD = d;
            }
            s = s.next;
        }
        Hit h = new Hit(bestD);
        h.obj = best;   // caller-side init (inlining-gated)
        return h;
    }
}

class Worker {
    int id;
    int step;
    Hit[] scratch;
    Hit[] prev;
    Worker(int i, int s) { id = i; step = s; }

    void run() {
        int w = Scene.width;
        int row = id;
        while (row < Scene.frame.length) {
            Hit[] hits = new Hit[w];     // row-local buffer
            Ray[] rays = new Ray[w];     // row-local buffer
            // Fresh sample buffers registered on this (escaped, spawned)
            // worker before filling: the fills are dynamically pre-null
            // but the buffers are reachable by other threads, so the
            // barriers stay — they feed the pre-null upper bound.
            this.scratch = new Hit[w];
            this.prev = new Hit[w];
            Vec origin = new Vec(0, 0, row);
            for (int px = 0; px < w; px = px + 1) {
                Ray r = new Ray(px);
                r.origin = origin;               // caller-side init
                r.dir = new Vec(px, row, 1);     // caller-side init
                rays[px] = r;                    // in-order init: eliminable
                Hit h = Scene.trace(r, px);
                hits[px] = h;                    // in-order init: eliminable
                this.scratch[px] = h;            // escaped buffer: kept
                this.prev[px] = h;               // escaped buffer: kept
                Scene.stats.lastHit = h;         // escaped object: kept
            }
            Scene.frame[row] = hits;             // publish row: kept
            Scene.checksum = Scene.checksum + hits[w - 1].dist + rays[0].dir.x;
            row = row + step;
        }
        if (id == 0) { Scene.doneA = 1; } else { Scene.doneB = 1; }
    }
}

class Mtrt {
    static void main() {
        Scene.width = 48;
        Scene.frame = new Hit[40][];
        Scene.stats = new Stats();
        Sphere list = null;
        for (int i = 0; i < 8; i = i + 1) {
            Sphere s = new Sphere(i + 1);
            s.center = new Vec(i, i * 2, i * 3);  // caller-side init
            s.next = list;                        // caller-side init
            list = s;
        }
        Scene.spheres = list;

        Worker a = new Worker(0, 2);
        Worker b = new Worker(1, 2);
        spawn a.run();
        spawn b.run();
        int guard = 0;
        while (Scene.doneA + Scene.doneB < 2 && guard < 10000000) {
            guard = guard + 1;
        }
        print(Scene.checksum % 100000);
    }
}
`
