package workloads_test

// Cross-flavor regression gates over the real workload suite: the
// barrier-flavor matrix has exact structural relationships between
// flavors that must hold on every workload, independent of the
// particular elimination percentages — the yuasa deletion barrier uses
// exactly the verdict set of the conditional SATB barrier, the dijkstra
// insertion barrier can use none of the deletion-side verdicts, and the
// hybrid keeps only the pre-null subset. A projection or spec-table bug
// breaks one of these identities immediately.

import (
	"testing"

	"satbelim/internal/report"
)

func TestBarrierFlavorMatrixRelations(t *testing.T) {
	rows, err := report.Barriers(report.DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by workload then flavor.
	byWorkload := map[string]map[string]report.BarrierRow{}
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]report.BarrierRow{}
		}
		byWorkload[r.Workload][r.Flavor] = r
	}
	for w, fl := range byWorkload {
		cond, okC := fl["conditional"]
		yuasa, okY := fl["yuasa"]
		dijk, okD := fl["dijkstra"]
		hyb, okH := fl["hybrid"]
		if !okC || !okY || !okD || !okH {
			t.Fatalf("%s: matrix missing flavors (have %v)", w, fl)
		}
		// Every flavor sees the same dynamic store stream.
		for name, r := range fl {
			if r.Execs != cond.Execs {
				t.Errorf("%s/%s: execs %d != conditional %d", w, name, r.Execs, cond.Execs)
			}
		}
		// Yuasa shades exactly what conditional shades: identical verdict
		// usage, identical elimination and log traffic.
		if yuasa.ElimPct != cond.ElimPct || yuasa.PreNullPct != cond.PreNullPct ||
			yuasa.NullOrSamePct != cond.NullOrSamePct || yuasa.RearrangePct != cond.RearrangePct {
			t.Errorf("%s: yuasa elimination (%.2f/%.2f/%.2f/%.2f) != conditional (%.2f/%.2f/%.2f/%.2f)",
				w, yuasa.ElimPct, yuasa.PreNullPct, yuasa.NullOrSamePct, yuasa.RearrangePct,
				cond.ElimPct, cond.PreNullPct, cond.NullOrSamePct, cond.RearrangePct)
		}
		if yuasa.Logged != cond.Logged {
			t.Errorf("%s: yuasa logged %d != conditional %d", w, yuasa.Logged, cond.Logged)
		}
		if yuasa.Shaded != 0 || cond.Shaded != 0 {
			t.Errorf("%s: deletion-only flavors shaded new values (yuasa=%d cond=%d)", w, yuasa.Shaded, cond.Shaded)
		}
		// Dijkstra can honor no deletion-side verdict: zero elimination,
		// zero log entries, and every static verdict discarded.
		if dijk.ElimPct != 0 || dijk.StaticKept != 0 {
			t.Errorf("%s: dijkstra elim %.2f%% staticKept %d, want 0/0", w, dijk.ElimPct, dijk.StaticKept)
		}
		if dijk.Logged != 0 {
			t.Errorf("%s: dijkstra logged %d pre-values, want 0", w, dijk.Logged)
		}
		// Hybrid keeps exactly the pre-null subset.
		if hyb.PreNullPct != cond.PreNullPct {
			t.Errorf("%s: hybrid pre-null %.2f%% != conditional %.2f%%", w, hyb.PreNullPct, cond.PreNullPct)
		}
		if hyb.NullOrSamePct != 0 || hyb.RearrangePct != 0 {
			t.Errorf("%s: hybrid used non-pre-null verdicts (nos=%.2f rearr=%.2f)",
				w, hyb.NullOrSamePct, hyb.RearrangePct)
		}
		// Static verdict splits are consistent with the dynamic picture.
		if cond.StaticDiscarded != 0 || yuasa.StaticDiscarded != 0 {
			t.Errorf("%s: snapshot flavors discarded verdicts (cond=%d yuasa=%d)",
				w, cond.StaticDiscarded, yuasa.StaticDiscarded)
		}
		if hyb.StaticKept+hyb.StaticDiscarded != dijk.StaticKept+dijk.StaticDiscarded {
			t.Errorf("%s: flavors disagree on total verdicts (hybrid %d+%d, dijkstra %d+%d)",
				w, hyb.StaticKept, hyb.StaticDiscarded, dijk.StaticKept, dijk.StaticDiscarded)
		}
	}
}
