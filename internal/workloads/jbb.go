package workloads

// JBB models SPECjbb2000: warehouses with districts processing order
// transactions. Order construction initializes fresh objects (eliminable
// field stores), but most field traffic updates resident, escaped
// structures (customer/district bookkeeping — kept), and the array
// traffic is dominated by the §4.3 "delete one element by moving all
// higher elements down" idiom in the new-order queue, which is never
// pre-null. A small null-or-same component (~4%) comes from order
// revalidation recopies.
func JBB() *Workload {
	return &Workload{
		Name:        "jbb",
		Description: "warehouse transactions: new-order queue with move-down deletes",
		Paper: PaperRow{
			TotalMillions: 297.8, ElimPct: 25.6, PotPreNullPct: 53.4,
			FieldPct: 69, ArrayPct: 31, FieldElimPct: 37.0, ArrayElimPct: 0.0,
		},
		NullOrSamePaperPct: 4,
		Source:             jbbSource,
	}
}

const jbbSource = `
// jbb: warehouse transaction workload.
class Item {
    int id;
    int qty;
    Item(int i, int q) { id = i; qty = q; }
}

class Customer {
    int id;
    Order lastOrder;
    Customer next;
    Customer(int i, Customer n) {
        id = i;
        next = n;       // initializing (eliminable)
    }
}

class Order {
    int id;
    Item[] lines;
    Customer cust;
    District home;
    Order chain;
    Order(int i) {
        id = i;
        lines = new Item[1];   // initializing in-ctor store (eliminable
                               // standalone, §2.3)
    }
}

class District {
    int id;
    Order[] newOrders;
    int queued;
    Order chainHead;
    Order lastDelivered;
    Customer customers;
    Customer lastCustomer;
    int delivered;
    District(int i, Customer cs) {
        id = i;
        newOrders = new Order[16];  // initializing (eliminable)
        customers = cs;             // initializing (eliminable)
    }
}

class Company {
    static District[] districts;
    static int txCount;
    static int checksum;
}

class JBB {
    static Customer pickCustomer(District d, int salt) {
        Customer c = d.customers;
        int hop = salt % 5;
        while (hop > 0 && c.next != null) {
            c = c.next;
            hop = hop - 1;
        }
        return c;
    }

    // think models per-transaction business logic (tax, discount and
    // totals arithmetic): it keeps the barrier cost a small fraction of
    // total work, as in a real transaction server.
    static int think(int seed) {
        int acc = seed;
        for (int i = 0; i < 300; i = i + 1) {
            acc = (acc * 31 + 7) % 99991;
        }
        return acc;
    }

    static void newOrder(District d, int tx) {
        Customer c = pickCustomer(d, tx);
        Order o = new Order(tx);
        o.cust = c;                     // caller-side init (inlining-gated)
        o.home = d;                     // caller-side init (inlining-gated)
        if (tx % 2 == 0) {
            o.cust = o.cust;            // revalidation recopy: null-or-same
        }
        Company.checksum = Company.checksum + think(tx);
        d.newOrders[d.queued] = o;      // escaped queue: kept
        d.queued = d.queued + 1;
        // Populate the line after the order is registered (escaped): kept.
        o.lines[0] = new Item(tx, 1);
        // Resident-object bookkeeping: kept barriers.
        c.lastOrder = o;
        o.chain = d.chainHead;
        d.chainHead = o;
        d.lastDelivered = o;
        d.lastCustomer = c;
        Company.txCount = Company.txCount + 1;
    }

    // Deliver the oldest order: the paper's move-down deletion loop —
    // every store overwrites a non-null element.
    static void deliver(District d) {
        if (d.queued == 0) {
            return;
        }
        Order first = d.newOrders[0];
        for (int j = 0; j < d.queued - 1; j = j + 1) {
            d.newOrders[j] = d.newOrders[j + 1];   // move down: kept
        }
        d.queued = d.queued - 1;
        d.newOrders[d.queued] = null;              // clear tail: kept
        d.delivered = d.delivered + first.id;
    }

    static void main() {
        Company.districts = new District[4];
        for (int i = 0; i < 4; i = i + 1) {
            Customer cs = null;
            for (int k = 0; k < 6; k = k + 1) {
                cs = new Customer(i * 10 + k, cs);
            }
            Company.districts[i] = new District(i, cs);
        }
        for (int tx = 0; tx < 600; tx = tx + 1) {
            District d = Company.districts[tx % 4];
            newOrder(d, tx);
            if (d.queued > 2) {
                deliver(d);
            }
        }
        int sum = 0;
        for (int i = 0; i < 4; i = i + 1) {
            sum = sum + Company.districts[i].delivered;
        }
        print(sum + Company.txCount);
    }
}
`
