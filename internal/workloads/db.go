package workloads

// DB models the SPECjvm98 in-memory database: build a record table, then
// repeatedly shell-sort it by different keys. The element swaps inside the
// sort dominate the store mix (the paper's §4.3 analysis of db's top two
// stores), giving ~90% array stores none of which are pre-null. Field
// stores are almost entirely record-constructor initializations.
func DB() *Workload {
	return &Workload{
		Name:        "db",
		Description: "in-memory database: record build plus swap-heavy shell sorts",
		Paper: PaperRow{
			TotalMillions: 30.1, ElimPct: 10.2, PotPreNullPct: 28.2,
			FieldPct: 10, ArrayPct: 90, FieldElimPct: 99.4, ArrayElimPct: 0.0,
		},
		Source: dbSource,
	}
}

const dbSource = `
// db: in-memory database workload.
class Record {
    int key;
    int payload;
    Record link;
    Record(int k, int p) {
        key = k;
        payload = p;
    }
}

class Database {
    static Record[] data;
    static int n;
    static int checksum;
}

class DBBench {
    static void build(int n) {
        Database.data = new Record[n];
        Database.n = n;
        Record chain = null;
        for (int i = 0; i < n; i = i + 1) {
            Record r = new Record((i * 7919 + 13) % n, i);
            r.link = chain;         // caller-side init (inlining-gated)
            chain = r;
            Database.data[i] = r;   // escaped array, but dynamically pre-null
        }
    }

    // Shell sort by (key + salt) % n; the swaps are the dominant stores.
    static void sortPass(int salt) {
        int n = Database.n;
        int gap = n / 2;
        while (gap > 0) {
            int i = gap;
            while (i < n) {
                int j = i - gap;
                boolean go = true;
                while (j >= 0 && go) {
                    Record a = Database.data[j];
                    Record b = Database.data[j + gap];
                    if ((a.key + salt) % n > (b.key + salt) % n) {
                        Database.data[j] = b;        // swap: kept, never pre-null
                        Database.data[j + gap] = a;  // swap: kept, never pre-null
                        j = j - gap;
                    } else {
                        go = false;
                    }
                }
                i = i + 1;
            }
            gap = gap / 2;
        }
    }

    static void probe() {
        int n = Database.n;
        int s = 0;
        for (int i = 0; i < n; i = i + 7) {
            s = s + Database.data[i].payload;
        }
        Database.checksum = Database.checksum + s;
    }

    // Result-set extraction into a registered (escaped) buffer: the
    // stores are dynamically pre-null but the buffer has escaped, so the
    // barriers stay (they count toward the pre-null upper bound).
    static Record[] results;
    static void extract() {
        int n = Database.n;
        results = new Record[n];
        for (int i = 0; i < n; i = i + 1) {
            results[i] = Database.data[i];  // escaped: kept, pre-null
        }
    }

    static void main() {
        build(600);
        sortPass(0);
        probe();
        extract();
        sortPass(257);
        probe();
        print(Database.checksum);
    }
}
`
