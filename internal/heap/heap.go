// Package heap implements the VM's object heap: class instances with
// zero-initialized fields, arrays with zero/null-initialized elements, and
// static fields. The garbage collector (internal/gc) traces this heap;
// write barriers observe field and element overwrites in it.
package heap

import (
	"fmt"
	"sort"

	"satbelim/internal/bytecode"
)

// Ref is a heap handle. The zero Ref is null.
type Ref int64

// Null is the null reference.
const Null Ref = 0

// Value is one runtime value: an integer/boolean or a reference.
type Value struct {
	IsRef bool
	I     int64
	R     Ref
}

// IntVal wraps an integer (or boolean, 0/1).
func IntVal(i int64) Value { return Value{I: i} }

// RefVal wraps a reference.
func RefVal(r Ref) Value { return Value{IsRef: true, R: r} }

// NullVal is the null reference value.
func NullVal() Value { return Value{IsRef: true} }

// Object is one heap object: a class instance (Fields) or an array
// (Elems). Mark state belongs to the collector.
type Object struct {
	Class   string // empty for arrays
	Fields  []Value
	Elems   []Value
	ElemRef bool // array of references

	// Marked is the collector's mark bit for the current cycle.
	Marked bool
	// AllocDuringMark notes allocation while marking was active; such
	// objects are implicitly marked in SATB collections.
	AllocDuringMark bool
	// TraceState is the §4.3 rearrangement protocol's per-array scan
	// state for the current cycle.
	TraceState TraceState
}

// TraceState is the collector's per-array tracing progress, published so
// that barrier-elided rearrangement code can detect overlap with the scan
// (paper §4.3: "bits in the header of an object array to indicate the
// tracing state of the array").
type TraceState int8

const (
	// TraceUntraced: the collector has not started scanning the array.
	TraceUntraced TraceState = iota
	// TraceTracing: the collector is scanning the array right now.
	TraceTracing
	// TraceTraced: the collector finished scanning the array.
	TraceTraced
)

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.Elems != nil || o.Class == "" }

// Layout resolves field names to slot indices per class.
type Layout struct {
	fieldIndex map[string]map[string]int // class -> field -> index
	numFields  map[string]int
	statics    []bytecode.FieldRef // declared static fields in order
}

// NewLayout computes field layouts for a program.
func NewLayout(p *bytecode.Program) *Layout {
	l := &Layout{fieldIndex: map[string]map[string]int{}, numFields: map[string]int{}}
	for _, c := range p.SortedClasses() {
		idx := map[string]int{}
		n := 0
		for _, f := range c.Fields {
			if f.Static {
				l.statics = append(l.statics, bytecode.FieldRef{Class: c.Name, Name: f.Name})
				continue
			}
			idx[f.Name] = n
			n++
		}
		l.fieldIndex[c.Name] = idx
		l.numFields[c.Name] = n
	}
	return l
}

// FieldIndex returns the slot of an instance field.
func (l *Layout) FieldIndex(ref bytecode.FieldRef) (int, error) {
	idx, ok := l.fieldIndex[ref.Class]
	if !ok {
		return 0, fmt.Errorf("heap: unknown class %s", ref.Class)
	}
	i, ok := idx[ref.Name]
	if !ok {
		return 0, fmt.Errorf("heap: unknown field %s", ref)
	}
	return i, nil
}

// Statics lists the declared static reference roots.
func (l *Layout) Statics() []bytecode.FieldRef { return l.statics }

// NumFields returns the instance-field count of a class, reporting whether
// the class is known. The pre-decoded VM engine resolves it once per
// allocation site instead of per allocation.
func (l *Layout) NumFields(class string) (int, bool) {
	n, ok := l.numFields[class]
	return n, ok
}

// Heap is the object store. Declared statics live in a dense slice in
// declaration order (staticSlots): the slice is sized once at
// construction and never reallocates, so a slot's address is stable for
// the heap's lifetime and StaticSlot can hand out direct pointers for
// translation-time resolution. Statics written outside the declared
// layout (possible only for unverified programs) overflow into a map.
type Heap struct {
	layout      *Layout
	objects     []*Object
	staticSlots []Value
	staticIdx   map[bytecode.FieldRef]int
	staticExtra map[bytecode.FieldRef]Value

	// Allocated counts allocations over the heap's lifetime.
	Allocated int64
	// MarkingActive is set by the collector while a concurrent mark is
	// in progress; SATB alloc-black behaviour keys off it.
	MarkingActive bool
}

// New creates an empty heap over the program's layout.
func New(layout *Layout) *Heap {
	idx := make(map[bytecode.FieldRef]int, len(layout.statics))
	for i, ref := range layout.statics {
		idx[ref] = i
	}
	return &Heap{
		layout:      layout,
		staticSlots: make([]Value, len(layout.statics)),
		staticIdx:   idx,
	}
}

// Layout exposes the field layout.
func (h *Heap) Layout() *Layout { return h.layout }

// NumObjects returns the number of objects ever allocated and not swept.
func (h *Heap) NumObjects() int {
	n := 0
	for _, o := range h.objects {
		if o != nil {
			n++
		}
	}
	return n
}

// Get returns the object for a non-null reference.
func (h *Heap) Get(r Ref) *Object {
	if r == Null || int(r) > len(h.objects) {
		return nil
	}
	return h.objects[r-1]
}

func (h *Heap) add(o *Object) Ref {
	h.objects = append(h.objects, o)
	h.Allocated++
	if h.MarkingActive {
		o.AllocDuringMark = true
	}
	return Ref(len(h.objects))
}

// AllocObject allocates a class instance with null/zero fields.
func (h *Heap) AllocObject(class string) (Ref, error) {
	n, ok := h.layout.numFields[class]
	if !ok {
		return Null, fmt.Errorf("heap: unknown class %s", class)
	}
	fields := make([]Value, n)
	// Reference fields must read back as null references, not zero ints;
	// the distinction matters to barrier pre-value checks. The layout
	// does not record types per slot, so initialize lazily: a zero Value
	// reads as int 0 and as Null when interpreted as a reference. The VM
	// always interprets by the declared type, so the shared zero works
	// for both.
	return h.add(&Object{Class: class, Fields: fields}), nil
}

// AllocObjectN allocates a class instance whose field count was resolved
// ahead of time (the decode-time fast path; equivalent to AllocObject for
// a known class).
func (h *Heap) AllocObjectN(class string, nFields int) Ref {
	return h.add(&Object{Class: class, Fields: make([]Value, nFields)})
}

// AllocArray allocates an array with zeroed/nulled elements.
func (h *Heap) AllocArray(elemRef bool, n int64) (Ref, error) {
	if n < 0 {
		return Null, fmt.Errorf("heap: negative array size %d", n)
	}
	elems := make([]Value, n)
	if elemRef {
		for i := range elems {
			elems[i].IsRef = true
		}
	}
	return h.add(&Object{Elems: elems, ElemRef: elemRef}), nil
}

// GetField reads an instance field.
func (h *Heap) GetField(r Ref, ref bytecode.FieldRef) (Value, error) {
	o := h.Get(r)
	if o == nil {
		return Value{}, fmt.Errorf("heap: null dereference reading %s", ref)
	}
	i, err := h.layout.FieldIndex(ref)
	if err != nil {
		return Value{}, err
	}
	return o.Fields[i], nil
}

// SetField writes an instance field, returning the overwritten value (the
// SATB barrier's pre-value).
func (h *Heap) SetField(r Ref, ref bytecode.FieldRef, v Value) (Value, error) {
	o := h.Get(r)
	if o == nil {
		return Value{}, fmt.Errorf("heap: null dereference writing %s", ref)
	}
	i, err := h.layout.FieldIndex(ref)
	if err != nil {
		return Value{}, err
	}
	old := o.Fields[i]
	o.Fields[i] = v
	return old, nil
}

// GetElem reads an array element.
func (h *Heap) GetElem(r Ref, i int64) (Value, error) {
	o := h.Get(r)
	if o == nil {
		return Value{}, fmt.Errorf("heap: null array dereference")
	}
	if i < 0 || i >= int64(len(o.Elems)) {
		return Value{}, fmt.Errorf("heap: index %d out of bounds [0,%d)", i, len(o.Elems))
	}
	return o.Elems[i], nil
}

// SetElem writes an array element, returning the pre-value.
func (h *Heap) SetElem(r Ref, i int64, v Value) (Value, error) {
	o := h.Get(r)
	if o == nil {
		return Value{}, fmt.Errorf("heap: null array dereference")
	}
	if i < 0 || i >= int64(len(o.Elems)) {
		return Value{}, fmt.Errorf("heap: index %d out of bounds [0,%d)", i, len(o.Elems))
	}
	old := o.Elems[i]
	o.Elems[i] = v
	return old, nil
}

// ArrayLen returns an array's length.
func (h *Heap) ArrayLen(r Ref) (int64, error) {
	o := h.Get(r)
	if o == nil {
		return 0, fmt.Errorf("heap: null array dereference")
	}
	return int64(len(o.Elems)), nil
}

// GetStatic reads a static field (zero value when never written).
func (h *Heap) GetStatic(ref bytecode.FieldRef) Value {
	if i, ok := h.staticIdx[ref]; ok {
		return h.staticSlots[i]
	}
	return h.staticExtra[ref]
}

// SetStatic writes a static field, returning the pre-value.
func (h *Heap) SetStatic(ref bytecode.FieldRef, v Value) Value {
	if i, ok := h.staticIdx[ref]; ok {
		old := h.staticSlots[i]
		h.staticSlots[i] = v
		return old
	}
	if h.staticExtra == nil {
		h.staticExtra = map[bytecode.FieldRef]Value{}
	}
	old := h.staticExtra[ref]
	h.staticExtra[ref] = v
	return old
}

// StaticSlot returns a stable pointer to a declared static's storage, or
// nil for refs outside the declared layout. The compiled VM tier resolves
// statics to slots once at method translation; reads and writes through
// the pointer are equivalent to GetStatic/SetStatic.
func (h *Heap) StaticSlot(ref bytecode.FieldRef) *Value {
	if i, ok := h.staticIdx[ref]; ok {
		return &h.staticSlots[i]
	}
	return nil
}

// StaticRoots returns the current reference values of all statics, in
// declaration order. The order must be deterministic: the concurrent
// marker paces its work in fixed-size steps, so a run-to-run shuffle of
// the root queue would shift mark completion across scheduler quanta and
// make barrier logging counts unreproducible.
func (h *Heap) StaticRoots() []Ref {
	var roots []Ref
	for _, v := range h.staticSlots {
		if v.IsRef && v.R != Null {
			roots = append(roots, v.R)
		}
	}
	if len(h.staticExtra) > 0 {
		// Statics written outside the declared layout (possible only for
		// unverified programs): include them in a stable order too.
		var extras []bytecode.FieldRef
		for ref, v := range h.staticExtra {
			if v.IsRef && v.R != Null {
				extras = append(extras, ref)
			}
		}
		sort.Slice(extras, func(i, j int) bool {
			if extras[i].Class != extras[j].Class {
				return extras[i].Class < extras[j].Class
			}
			return extras[i].Name < extras[j].Name
		})
		for _, ref := range extras {
			roots = append(roots, h.staticExtra[ref].R)
		}
	}
	return roots
}

// RefsOf calls f with every outgoing reference of the object.
func (o *Object) RefsOf(f func(Ref)) {
	for _, v := range o.Fields {
		if v.IsRef && v.R != Null {
			f(v.R)
		}
	}
	if o.ElemRef {
		for _, v := range o.Elems {
			if v.IsRef && v.R != Null {
				f(v.R)
			}
		}
	}
}

// ForEach visits every live object.
func (h *Heap) ForEach(f func(Ref, *Object)) {
	for i, o := range h.objects {
		if o != nil {
			f(Ref(i+1), o)
		}
	}
}

// Sweep frees unmarked objects (those allocated during marking survive),
// clears mark state, and returns the number freed.
func (h *Heap) Sweep() int {
	freed := 0
	for i, o := range h.objects {
		if o == nil {
			continue
		}
		if !o.Marked && !o.AllocDuringMark {
			h.objects[i] = nil
			freed++
			continue
		}
		o.Marked = false
		o.AllocDuringMark = false
		o.TraceState = TraceUntraced
	}
	return freed
}

// ClearMarks resets mark state without sweeping.
func (h *Heap) ClearMarks() {
	for _, o := range h.objects {
		if o != nil {
			o.Marked = false
			o.AllocDuringMark = false
			o.TraceState = TraceUntraced
		}
	}
}
