package heap

import (
	"testing"

	"satbelim/internal/bytecode"
)

func testProgram() *bytecode.Program {
	p := bytecode.NewProgram()
	p.AddClass(&bytecode.Class{Name: "T", Fields: []*bytecode.Field{
		{Name: "next", Type: bytecode.ClassType("T")},
		{Name: "v", Type: bytecode.Int},
		{Name: "head", Type: bytecode.ClassType("T"), Static: true},
	}})
	return p
}

func TestLayoutIndexes(t *testing.T) {
	l := NewLayout(testProgram())
	i, err := l.FieldIndex(bytecode.FieldRef{Class: "T", Name: "next"})
	if err != nil || i != 0 {
		t.Errorf("next index = %d, %v", i, err)
	}
	j, err := l.FieldIndex(bytecode.FieldRef{Class: "T", Name: "v"})
	if err != nil || j != 1 {
		t.Errorf("v index = %d, %v", j, err)
	}
	if _, err := l.FieldIndex(bytecode.FieldRef{Class: "T", Name: "head"}); err == nil {
		t.Error("static field must not have an instance index")
	}
	if _, err := l.FieldIndex(bytecode.FieldRef{Class: "X", Name: "f"}); err == nil {
		t.Error("unknown class must error")
	}
	if len(l.Statics()) != 1 {
		t.Errorf("statics = %v", l.Statics())
	}
}

func TestAllocAndFieldAccess(t *testing.T) {
	h := New(NewLayout(testProgram()))
	r, err := h.AllocObject("T")
	if err != nil {
		t.Fatal(err)
	}
	if r == Null {
		t.Fatal("allocation returned null")
	}
	fr := bytecode.FieldRef{Class: "T", Name: "next"}
	old, err := h.SetField(r, fr, RefVal(r))
	if err != nil {
		t.Fatal(err)
	}
	if old.R != Null {
		t.Error("fresh field should have null pre-value")
	}
	got, err := h.GetField(r, fr)
	if err != nil || got.R != r {
		t.Errorf("GetField = %v, %v", got, err)
	}
	old2, _ := h.SetField(r, fr, NullVal())
	if old2.R != r {
		t.Error("second store should see the first value as pre-value")
	}
}

func TestArrays(t *testing.T) {
	h := New(NewLayout(testProgram()))
	a, err := h.AllocArray(true, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := h.ArrayLen(a)
	if n != 3 {
		t.Errorf("len = %d", n)
	}
	if _, err := h.GetElem(a, 3); err == nil {
		t.Error("out-of-bounds read must error")
	}
	if _, err := h.SetElem(a, -1, NullVal()); err == nil {
		t.Error("negative index must error")
	}
	v, _ := h.GetElem(a, 0)
	if !v.IsRef || v.R != Null {
		t.Errorf("fresh ref-array element should be null ref, got %v", v)
	}
	if _, err := h.AllocArray(true, -1); err == nil {
		t.Error("negative size must error")
	}
}

func TestStatics(t *testing.T) {
	h := New(NewLayout(testProgram()))
	fr := bytecode.FieldRef{Class: "T", Name: "head"}
	if got := h.GetStatic(fr); got.R != Null {
		t.Error("unset static should read as zero")
	}
	r, _ := h.AllocObject("T")
	old := h.SetStatic(fr, RefVal(r))
	if old.R != Null {
		t.Error("first static store pre-value should be null")
	}
	roots := h.StaticRoots()
	if len(roots) != 1 || roots[0] != r {
		t.Errorf("roots = %v", roots)
	}
}

func TestSweep(t *testing.T) {
	h := New(NewLayout(testProgram()))
	a, _ := h.AllocObject("T")
	b, _ := h.AllocObject("T")
	h.Get(a).Marked = true
	freed := h.Sweep()
	if freed != 1 {
		t.Errorf("freed = %d, want 1", freed)
	}
	if h.Get(a) == nil {
		t.Error("marked object must survive")
	}
	if h.Get(b) != nil {
		t.Error("unmarked object must be freed")
	}
	if h.Get(a).Marked {
		t.Error("sweep must clear marks")
	}
}

func TestAllocDuringMarkSurvivesSweep(t *testing.T) {
	h := New(NewLayout(testProgram()))
	h.MarkingActive = true
	r, _ := h.AllocObject("T")
	h.MarkingActive = false
	if !h.Get(r).AllocDuringMark {
		t.Fatal("alloc-during-mark flag not set")
	}
	if h.Sweep() != 0 {
		t.Error("object allocated during marking must survive the sweep")
	}
}

func TestRefsOf(t *testing.T) {
	h := New(NewLayout(testProgram()))
	a, _ := h.AllocObject("T")
	b, _ := h.AllocObject("T")
	h.SetField(a, bytecode.FieldRef{Class: "T", Name: "next"}, RefVal(b))
	arr, _ := h.AllocArray(true, 2)
	h.SetElem(arr, 1, RefVal(a))
	var got []Ref
	h.Get(a).RefsOf(func(r Ref) { got = append(got, r) })
	if len(got) != 1 || got[0] != b {
		t.Errorf("object refs = %v", got)
	}
	got = nil
	h.Get(arr).RefsOf(func(r Ref) { got = append(got, r) })
	if len(got) != 1 || got[0] != a {
		t.Errorf("array refs = %v", got)
	}
}
