package num

import (
	"math"
	"testing"
)

func TestB2I(t *testing.T) {
	if B2I(true) != 1 || B2I(false) != 0 {
		t.Fatalf("B2I: got %d/%d", B2I(true), B2I(false))
	}
}

func TestU64(t *testing.T) {
	cases := []struct {
		in   int64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{math.MaxInt64, math.MaxInt64},
		{-1, 0},
		{math.MinInt64, 0},
	}
	for _, c := range cases {
		if got := U64(c.in); got != c.want {
			t.Errorf("U64(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestAddSat(t *testing.T) {
	cases := []struct {
		a, b, want uint64
	}{
		{0, 0, 0},
		{1, 2, 3},
		{math.MaxUint64, 0, math.MaxUint64},
		{math.MaxUint64, 1, math.MaxUint64},
		{math.MaxUint64 - 1, 1, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
