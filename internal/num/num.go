// Package num holds the shared numeric conversion helpers used by the VM
// and the barrier cost model: branch-free-ish bool→int conversion and
// overflow-safe (saturating) unsigned accumulation. Centralizing them
// keeps every int-width conversion in one audited place.
package num

import "math"

// B2I converts a boolean to the VM's canonical 0/1 integer encoding.
func B2I(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// U64 converts a non-negative int64 counter to uint64, clamping negative
// inputs to zero instead of wrapping to huge values.
func U64(i int64) uint64 {
	if i < 0 {
		return 0
	}
	return uint64(i)
}

// AddSat returns a+b, saturating at math.MaxUint64 instead of wrapping.
// Cost-model totals use it so a pathological run degrades to "maximum
// cost" rather than a small wrapped number that would invert comparisons.
func AddSat(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return math.MaxUint64
	}
	return s
}
