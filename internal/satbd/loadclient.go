package satbd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/progen"
	"satbelim/internal/report"
)

// LoadConfig drives RunLoad, the daemon's load/chaos client: it hammers
// a running satbd with generated programs and validates every response
// against the schema and the degradation contract. It is the "never
// silently wrong" check: a response may be slow, shed, degraded, or an
// error — but it must say so, and anything it does return must be
// correct.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// Programs is the number of requests to send; Concurrency how many
	// in flight at once.
	Programs    int
	Concurrency int
	// Seed is the base progen seed. Programs repeat (each distinct
	// program is requested about twice) so the cache and singleflight
	// paths are exercised, not just cold compiles.
	Seed int64
	// DeadlineMS is the per-request deadline sent to the daemon
	// (0 = server default).
	DeadlineMS int64
	// Gen configures the program generator (zero = progen defaults).
	Gen progen.Config
	// VerifyOutputs re-executes each successful /run response locally
	// and compares outputs — the strongest silently-wrong detector.
	VerifyOutputs bool
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

const maxInvalidRecorded = 20

// RunLoad executes one load run and returns its outcome; err is non-nil
// only for setup-level failures (the report carries per-response
// violations in Invalid).
func RunLoad(ctx context.Context, cfg LoadConfig) (*report.SatbdLoad, error) {
	if cfg.Programs <= 0 {
		cfg.Programs = 200
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Gen.Classes == 0 {
		cfg.Gen = progen.DefaultConfig()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	unique := cfg.Programs / 2
	if unique < 1 {
		unique = 1
	}
	endpoints := []string{"compile", "run", "analyze"}

	out := &report.SatbdLoad{
		Programs:    cfg.Programs,
		Concurrency: cfg.Concurrency,
		Seed:        cfg.Seed,
		ByOutcome:   map[string]int{},
		ByStatus:    map[string]int{},
	}
	var (
		mu       sync.Mutex
		sent     atomic.Int64
		verified atomic.Int64
		samples  = map[string][]time.Duration{}
		local    = pipeline.NewCache(0) // baseline builds for output verification
	)
	record := func(outcome, status string, d time.Duration, problems []string) {
		mu.Lock()
		defer mu.Unlock()
		out.ByOutcome[outcome]++
		out.ByStatus[status]++
		samples[outcome] = append(samples[outcome], d)
		for _, p := range problems {
			if len(out.Invalid) < maxInvalidRecorded {
				out.Invalid = append(out.Invalid, p)
			}
		}
	}

	t0 := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				seed := cfg.Seed + int64(i%unique)
				src := progen.Generate(seed, cfg.Gen)
				endpoint := endpoints[i%len(endpoints)]
				name := fmt.Sprintf("load%d", seed)
				r0 := time.Now()
				outcome, status, problems := doRequest(ctx, client, cfg, local, endpoint, name, src)
				d := time.Since(r0)
				sent.Add(1)
				if outcome == OutcomeOK && endpoint == "run" && cfg.VerifyOutputs && len(problems) == 0 {
					verified.Add(1)
				}
				record(outcome, status, d, problems)
			}
		}()
	}
	for i := 0; i < cfg.Programs; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			i = cfg.Programs
		}
	}
	close(jobs)
	wg.Wait()

	out.Sent = int(sent.Load())
	out.OutputsVerified = int(verified.Load())
	out.ElapsedNS = time.Since(t0).Nanoseconds()
	out.Latency = latencyStats(samples)

	// The daemon must still be healthy after the storm.
	if problems := checkHealthz(ctx, client, cfg.BaseURL); len(problems) > 0 {
		mu.Lock()
		out.Invalid = append(out.Invalid, problems...)
		mu.Unlock()
	}
	return out, ctx.Err()
}

// latencyStats condenses per-outcome wall-clock samples into
// nearest-rank percentile summaries. Latency includes client-side
// serialization and transport, which is what a caller of the daemon
// actually experiences.
func latencyStats(samples map[string][]time.Duration) map[string]report.SatbdLatency {
	var out map[string]report.SatbdLatency
	for outcome, ds := range samples {
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		rank := func(p float64) int64 {
			i := int(math.Ceil(p*float64(len(ds)))) - 1
			if i < 0 {
				i = 0
			}
			return ds[i].Nanoseconds()
		}
		if out == nil {
			out = map[string]report.SatbdLatency{}
		}
		out[outcome] = report.SatbdLatency{
			Count: len(ds),
			P50NS: rank(0.50),
			P95NS: rank(0.95),
			P99NS: rank(0.99),
			MaxNS: ds[len(ds)-1].Nanoseconds(),
		}
	}
	return out
}

// doRequest sends one request and validates the response. The returned
// problems list is empty for a contract-conforming response.
func doRequest(ctx context.Context, client *http.Client, cfg LoadConfig, local *pipeline.Cache, endpoint, name, src string) (outcome, status string, problems []string) {
	body, _ := json.Marshal(Request{Name: name, Source: src, DeadlineMS: cfg.DeadlineMS})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/"+endpoint, bytes.NewReader(body))
	if err != nil {
		return "unsent", "0", []string{fmt.Sprintf("%s %s: %v", endpoint, name, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		// Transport-level failure: the daemon may have crashed — that
		// IS a violation (connection refused), unless our own ctx ended.
		if ctx.Err() != nil {
			return "cancelled", "0", nil
		}
		return "transport", "0", []string{fmt.Sprintf("%s %s: transport: %v", endpoint, name, err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return "transport", strconv.Itoa(resp.StatusCode), []string{fmt.Sprintf("%s %s: body: %v", endpoint, name, err)}
	}

	status = strconv.Itoa(resp.StatusCode)
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s %s [%s]: ", endpoint, name, status)+fmt.Sprintf(format, args...))
	}

	var doc report.Document
	if err := json.Unmarshal(data, &doc); err != nil {
		bad("response is not a Document: %v", err)
		return "invalid", status, problems
	}
	if doc.SchemaVersion != report.SchemaVersion || doc.Tool != "satbd" {
		bad("schemaVersion/tool = %d/%q, want %d/satbd", doc.SchemaVersion, doc.Tool, report.SchemaVersion)
	}
	if doc.Satbd == nil || doc.Satbd.Request == nil {
		bad("response has no satbd.request envelope")
		return "invalid", status, problems
	}
	sr := doc.Satbd.Request
	outcome = sr.Outcome

	wantStatus := map[string]int{
		OutcomeOK: 200, OutcomeDegraded: 200, OutcomeError: 400,
		OutcomeShed: 429, OutcomeTimeout: 504, OutcomePanic: 500,
	}
	want, known := wantStatus[outcome]
	if !known {
		bad("unknown outcome %q", outcome)
		return "invalid", status, problems
	}
	if resp.StatusCode != want {
		bad("status %d inconsistent with outcome %q (want %d)", resp.StatusCode, outcome, want)
	}
	switch outcome {
	case OutcomeShed:
		if resp.Header.Get("Retry-After") == "" {
			bad("shed response lacks Retry-After")
		}
	case OutcomeDegraded:
		// The degradation contract: a degraded response must say which
		// methods fell back. Silent degradation is the one unforgivable
		// failure mode.
		if doc.Compile == nil || len(doc.Compile.Degraded) == 0 {
			bad("outcome degraded but compile.degraded is empty")
		}
		fallthrough
	case OutcomeOK:
		if doc.Compile == nil {
			bad("successful response lacks compile section")
		}
		if endpoint == "run" && doc.Run == nil {
			bad("successful /run lacks run section")
		}
		if endpoint == "analyze" && len(doc.Methods) == 0 {
			bad("successful /analyze lacks methods section")
		}
		if endpoint == "run" && cfg.VerifyOutputs && doc.Run != nil {
			problems = append(problems, verifyOutput(local, name, src, &doc)...)
		}
	case OutcomeError, OutcomeTimeout, OutcomePanic:
		if sr.Error == "" {
			bad("outcome %q without an error message", outcome)
		}
	}
	return outcome, status, problems
}

// verifyOutput recompiles and reruns the program locally (full budgets,
// no faults, same runtime defaults as the daemon) and compares outputs.
// Analysis degradation can never change program output — elision is an
// optimization — so a mismatch means the daemon returned a wrong
// result.
func verifyOutput(local *pipeline.Cache, name, src string, doc *report.Document) []string {
	b, err := pipeline.Compile(name, src, pipeline.Options{
		InlineLimit: 100, // the daemon's default InlineLimit
		Analysis:    core.Options{Mode: core.ModeFieldArray},
		Cache:       local,
	})
	if err != nil {
		return []string{fmt.Sprintf("%s: local baseline compile failed: %v", name, err)}
	}
	res, err := b.Exec()
	if err != nil {
		return []string{fmt.Sprintf("%s: local baseline run failed: %v", name, err)}
	}
	if !reflect.DeepEqual(res.Output, doc.Run.Output) || res.Steps != doc.Run.Steps {
		return []string{fmt.Sprintf("%s: SILENTLY WRONG: daemon output %v (%d steps) vs local %v (%d steps)",
			name, doc.Run.Output, doc.Run.Steps, res.Output, res.Steps)}
	}
	return nil
}

// checkHealthz validates the daemon's health endpoint after a run.
func checkHealthz(ctx context.Context, client *http.Client, baseURL string) []string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/healthz", nil)
	if err != nil {
		return []string{fmt.Sprintf("healthz: %v", err)}
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return []string{fmt.Sprintf("healthz: daemon unreachable after load: %v", err)}
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var doc report.Document
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &doc) != nil || doc.Satbd == nil || doc.Satbd.Stats == nil {
		return []string{fmt.Sprintf("healthz: status %d, body %.120s", resp.StatusCode, data)}
	}
	return nil
}
