package satbd

import "time"

// Admission control maps a request's wall-clock budget and the current
// queue pressure onto the analysis and VM budgets it is granted. Two
// rules shape the design:
//
//  1. Budgets are TIERED, not continuous. core.Options is part of the
//     build-cache key, so per-request budget values would fragment the
//     key space and defeat both the LRU and singleflight. Each tier
//     halves the structural budgets (visits, state size, VM steps);
//     requests in one tier share cache entries and coalesce.
//
//  2. Wall-clock bounding never enters core.Options. The request
//     context carries the deadline; the analysis observes it at
//     block-visit boundaries and the VM at quantum boundaries. A
//     deadline-degraded result is private to its request (the cache
//     refuses to store or share it), so tiering stays deterministic.

// maxTier bounds budget halving: 1/16 of the base budgets.
const maxTier = 4

type budgets struct {
	blockVisits int
	stateSize   int
	steps       int64
}

// admissionTier picks the budget tier for one admitted request.
// Tier 0 is full budgets. A short client deadline (relative to the
// server default) or a deep queue (waiters per worker) each push the
// tier up — an overloaded daemon does cheaper, more conservative work
// instead of missing every deadline at full effort.
func admissionTier(deadline, defaultDeadline time.Duration, waiting, workers int) int {
	tier := 0
	for d := deadline; d < defaultDeadline && tier < maxTier; d *= 2 {
		tier++
	}
	if workers > 0 {
		for per := waiting / workers; per > 0 && tier < maxTier; per /= 2 {
			tier++
		}
	}
	if tier > maxTier {
		tier = maxTier
	}
	return tier
}

// budgets quantizes the configured tier-0 budgets down to a tier.
func (s *Server) budgets(tier int) budgets {
	b := budgets{
		blockVisits: s.cfg.MaxBlockVisits >> tier,
		stateSize:   s.cfg.MaxStateSize >> tier,
		steps:       s.cfg.MaxSteps >> tier,
	}
	if b.blockVisits < 1 {
		b.blockVisits = 1
	}
	if b.stateSize < 1 {
		b.stateSize = 1
	}
	if b.steps < 1 {
		b.steps = 1
	}
	return b
}
