package satbd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/faultinject"
	"satbelim/internal/obs"
	"satbelim/internal/report"
)

const helloSrc = `
class A {
    static void main() {
        int s = 0;
        for (int i = 0; i < 10; i = i + 1) { s = s + i; }
        print(s);
    }
}
`

// loopySrc has enough conditional branching to exceed a starved visit
// budget deterministically.
func loopySrc() string {
	var b strings.Builder
	b.WriteString("class N { N next; }\nclass A {\n    static void main() {\n        N n = new N();\n        int s = 0;\n")
	for i := 0; i < 128; i++ {
		fmt.Fprintf(&b, "        if (s < %d) { s = s + 1; n.next = new N(); }\n", i)
	}
	b.WriteString("        print(s);\n    }\n}\n")
	return b.String()
}

// spinSrc runs ~1e9 iterations: far past any deadline or step budget.
const spinSrc = `
class A {
    static void main() {
        int s = 0;
        for (int i = 0; i < 1000000000; i = i + 1) { s = s + 1; }
        print(s);
    }
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends one request and decodes the response document.
func post(t *testing.T, ts *httptest.Server, endpoint string, req Request) (int, http.Header, report.Document) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/"+endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /%s: %v", endpoint, err)
	}
	defer resp.Body.Close()
	var doc report.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("POST /%s: response is not a Document: %v", endpoint, err)
	}
	if doc.SchemaVersion != report.SchemaVersion || doc.Tool != "satbd" {
		t.Fatalf("POST /%s: schemaVersion/tool = %d/%q", endpoint, doc.SchemaVersion, doc.Tool)
	}
	if doc.Satbd == nil || doc.Satbd.Request == nil {
		t.Fatalf("POST /%s: no satbd.request envelope", endpoint)
	}
	return resp.StatusCode, resp.Header, doc
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCompileRunAnalyzeHappyPath(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	status, _, doc := post(t, ts, "compile", Request{Name: "hello", Source: helloSrc})
	if status != 200 || doc.Satbd.Request.Outcome != OutcomeOK {
		t.Fatalf("compile: status %d outcome %q", status, doc.Satbd.Request.Outcome)
	}
	if doc.Compile == nil || doc.Compile.Workload != "hello" || doc.Compile.CacheHit {
		t.Fatalf("compile section = %+v", doc.Compile)
	}

	// Identical request: served from the daemon's cache.
	_, _, doc = post(t, ts, "compile", Request{Name: "hello", Source: helloSrc})
	if doc.Compile == nil || !doc.Compile.CacheHit {
		t.Error("second identical compile must be a cache hit")
	}

	status, _, doc = post(t, ts, "run", Request{Name: "hello", Source: helloSrc})
	if status != 200 || doc.Run == nil {
		t.Fatalf("run: status %d, run section %+v", status, doc.Run)
	}
	if len(doc.Run.Output) != 1 || doc.Run.Output[0] != 45 {
		t.Errorf("run output = %v, want [45]", doc.Run.Output)
	}

	status, _, doc = post(t, ts, "analyze", Request{Name: "hello", Source: helloSrc})
	if status != 200 || len(doc.Methods) == 0 {
		t.Fatalf("analyze: status %d, methods %v", status, doc.Methods)
	}

	if st := s.Stats(); st.Requests != 4 || st.OK != 4 {
		t.Errorf("stats = %+v, want 4 requests / 4 ok", st)
	}
}

// hotSrc loops far past the default tier-up threshold, so a
// compiled-engine run tiers main up deterministically.
const hotSrc = `
class A {
    static void main() {
        int s = 0;
        for (int i = 0; i < 5000; i = i + 1) { s = s + i; }
        print(s);
    }
}
`

func TestCompiledTierStatsInMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	status, _, doc := post(t, ts, "run", Request{Name: "hot", Source: hotSrc, Engine: "compiled"})
	if status != 200 || doc.Run == nil {
		t.Fatalf("run: status %d outcome %q", status, doc.Satbd.Request.Outcome)
	}
	if doc.Run.TierUps <= 0 || doc.Run.TierSegExecs <= 0 {
		t.Errorf("run summary tier counters = ups %d / segs %d, want both > 0",
			doc.Run.TierUps, doc.Run.TierSegExecs)
	}
	st := s.Stats()
	if st.TierUps <= 0 || st.TierSegExecs <= 0 {
		t.Errorf("daemon tier stats = ups %d / segs %d, want both > 0", st.TierUps, st.TierSegExecs)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mdoc report.Document
	if err := json.NewDecoder(resp.Body).Decode(&mdoc); err != nil {
		t.Fatal(err)
	}
	if mdoc.Satbd == nil || mdoc.Satbd.Stats == nil {
		t.Fatal("metrics response has no stats section")
	}
	if got := mdoc.Satbd.Stats; got.TierUps != st.TierUps || got.TierSegExecs != st.TierSegExecs {
		t.Errorf("/metrics tier stats = %d/%d, want %d/%d",
			got.TierUps, got.TierSegExecs, st.TierUps, st.TierSegExecs)
	}

	// A switch-engine run must not move the tier counters.
	post(t, ts, "run", Request{Name: "hot", Source: hotSrc, Engine: "switch"})
	if after := s.Stats(); after.TierUps != st.TierUps || after.TierSegExecs != st.TierSegExecs {
		t.Errorf("switch run moved tier counters: %d/%d -> %d/%d",
			st.TierUps, st.TierSegExecs, after.TierUps, after.TierSegExecs)
	}
}

func TestLatencyStats(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	got := latencyStats(map[string][]time.Duration{
		"ok":    {ms(5), ms(1), ms(3), ms(2), ms(4)},
		"empty": {},
	})
	lat, found := got["ok"]
	if !found || len(got) != 1 {
		t.Fatalf("latencyStats = %+v, want exactly one class %q", got, "ok")
	}
	want := report.SatbdLatency{
		Count: 5,
		P50NS: ms(3).Nanoseconds(),
		P95NS: ms(5).Nanoseconds(),
		P99NS: ms(5).Nanoseconds(),
		MaxNS: ms(5).Nanoseconds(),
	}
	if lat != want {
		t.Errorf("latencyStats[ok] = %+v, want %+v", lat, want)
	}
	if latencyStats(nil) != nil {
		t.Error("latencyStats(nil) must be nil so the JSON field stays omitted")
	}
}

func TestBadRequestsNeverCrash(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	for name, body := range map[string]string{
		"not json":       "{",
		"no source":      `{"name":"x"}`,
		"parse error":    `{"source":"class {{{"}`,
		"unknown engine": fmt.Sprintf(`{"source":%q,"engine":"turbo"}`, helloSrc),
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var doc report.Document
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("%s: non-Document error response: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || doc.Satbd.Request.Outcome != OutcomeError {
			t.Errorf("%s: status %d outcome %q, want 400/error", name, resp.StatusCode, doc.Satbd.Request.Outcome)
		}
		if doc.Satbd.Request.Error == "" {
			t.Errorf("%s: error outcome without a message", name)
		}
	}

	// Wrong method: the Go 1.22 mux patterns reject it before a handler.
	resp, err := http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /compile: status %d, want 405", resp.StatusCode)
	}
}

func TestDeadlineTimesOutSpinningRun(t *testing.T) {
	// A step budget far beyond the spin loop, so the request can only
	// end via its deadline — observed by the VM at a quantum boundary.
	s, ts := newTestServer(t, Config{Workers: 2, MaxSteps: 1 << 40})
	start := time.Now()
	status, _, doc := post(t, ts, "run", Request{Name: "spin", Source: spinSrc, DeadlineMS: 300})
	if status != http.StatusGatewayTimeout || doc.Satbd.Request.Outcome != OutcomeTimeout {
		t.Fatalf("status %d outcome %q, want 504/timeout", status, doc.Satbd.Request.Outcome)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timed-out request took %v, want prompt abort at a quantum boundary", elapsed)
	}
	if doc.Satbd.Request.Error == "" {
		t.Error("timeout response must carry the error")
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", st.Timeouts)
	}
}

func TestDegradedAnalysisIsFlagged(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, MaxBlockVisits: 6, MaxStateSize: 1 << 20})

	status, _, doc := post(t, ts, "analyze", Request{Name: "loopy", Source: loopySrc()})
	if status != 200 || doc.Satbd.Request.Outcome != OutcomeDegraded {
		t.Fatalf("status %d outcome %q, want 200/degraded", status, doc.Satbd.Request.Outcome)
	}
	if doc.Compile == nil || len(doc.Compile.Degraded) == 0 {
		t.Fatal("degraded outcome must list the degraded methods")
	}
	found := false
	for _, m := range doc.Methods {
		if m.Degraded == string(core.DegradeVisitBudget) {
			found = true
		}
	}
	if !found {
		t.Errorf("per-method detail missing visit-budget degradation: %+v", doc.Methods)
	}
	// Degradation is sound, not an error: the program still runs and
	// prints the right answer.
	status, _, doc = post(t, ts, "run", Request{Name: "loopy", Source: loopySrc()})
	if status != 200 || len(doc.Run.Output) != 1 || doc.Run.Output[0] != 127 {
		t.Errorf("degraded run: status %d output %v, want [127]", status, doc.Run.Output)
	}
}

func TestAdmissionShedsAtCapacity(t *testing.T) {
	// One worker, queue depth 1: capacity is 2 waiting requests. Every
	// request stalls 400ms in the worker, so the sequence A (running),
	// B and C (waiting), D is deterministic: D must be shed.
	inj := faultinject.New(faultinject.Config{Seed: 1, Stall: 1, StallDelay: 400 * time.Millisecond})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Inject: inj})

	var wg sync.WaitGroup
	results := make(chan string, 3)
	send := func() {
		defer wg.Done()
		_, _, doc := post(t, ts, "compile", Request{Name: "hello", Source: helloSrc})
		results <- doc.Satbd.Request.Outcome
	}
	wg.Add(1)
	go send()
	waitFor(t, "request A in flight", func() bool { return s.Stats().Inflight == 1 })
	for i, want := range []int64{1, 2} {
		wg.Add(1)
		go send()
		waitFor(t, fmt.Sprintf("request %d queued", i), func() bool { return s.Stats().Queued == want })
	}

	status, hdr, doc := post(t, ts, "compile", Request{Name: "hello", Source: helloSrc})
	if status != http.StatusTooManyRequests || doc.Satbd.Request.Outcome != OutcomeShed {
		t.Fatalf("D: status %d outcome %q, want 429/shed", status, doc.Satbd.Request.Outcome)
	}
	if hdr.Get("Retry-After") == "" || doc.Satbd.Request.RetryAfterS == 0 {
		t.Error("shed response must carry Retry-After")
	}

	wg.Wait()
	for i := 0; i < 3; i++ {
		if outcome := <-results; outcome != OutcomeOK {
			t.Errorf("admitted request finished %q, want ok", outcome)
		}
	}
	st := s.Stats()
	if st.Shed != 1 || st.OK != 3 || st.QueuedPeak < 2 {
		t.Errorf("stats = %+v, want 1 shed / 3 ok / peak >= 2", st)
	}
}

func TestPanicIsolation(t *testing.T) {
	// Every request panics mid-pipeline; the daemon must answer 500 each
	// time and stay alive.
	inj := faultinject.New(faultinject.Config{Seed: 1, Panic: 1})
	s, ts := newTestServer(t, Config{Workers: 2, Inject: inj})

	for i := 0; i < 3; i++ {
		status, _, doc := post(t, ts, "run", Request{Name: "hello", Source: helloSrc})
		if status != http.StatusInternalServerError || doc.Satbd.Request.Outcome != OutcomePanic {
			t.Fatalf("request %d: status %d outcome %q, want 500/panic", i, status, doc.Satbd.Request.Outcome)
		}
		if !strings.Contains(doc.Satbd.Request.Error, "injected panic") {
			t.Errorf("request %d: error %q lacks panic provenance", i, doc.Satbd.Request.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("daemon died after panics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz after panics: %d", resp.StatusCode)
	}
	if st := s.Stats(); st.Panics != 3 {
		t.Errorf("panics = %d, want 3", st.Panics)
	}
}

func TestHealthzMetricsAndTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	post(t, ts, "compile", Request{Name: "hello", Source: helloSrc})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var doc report.Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Satbd == nil || doc.Satbd.Stats == nil || doc.Satbd.Stats.Requests != 1 {
		t.Fatalf("healthz stats = %+v", doc.Satbd)
	}

	// Without a collector: /trace is a 404, /metrics still serves stats
	// and cache counters.
	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace without collector: %d, want 404", resp.StatusCode)
	}

	// With the collector enabled, request spans land on per-worker lanes
	// and both exports serve.
	obs.EnableCollector(obs.NewCollector())
	defer obs.Disable()
	post(t, ts, "run", Request{Name: "hello", Source: helloSrc})

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	doc = report.Document{}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Metrics == nil || doc.BuildCache == nil || doc.Satbd == nil || doc.Satbd.Stats == nil {
		t.Fatalf("metrics document incomplete: metrics=%v cache=%v", doc.Metrics != nil, doc.BuildCache != nil)
	}
	if doc.Metrics.Counters["satbd.requests"] == 0 {
		t.Errorf("satbd.requests counter missing: %v", doc.Metrics.Counters)
	}

	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("trace with collector: status %d err %v", resp.StatusCode, err)
	}
	if !json.Valid(body) {
		t.Fatal("chrome trace is not valid JSON")
	}
	// Request spans run on per-worker lanes, exported as thread names.
	if !bytes.Contains(body, []byte("satbd/w")) {
		t.Error("chrome trace has no satbd worker lane")
	}
	_ = s
}

func TestAdmissionTiersQuantizeBudgets(t *testing.T) {
	s := New(Config{Workers: 4, MaxBlockVisits: 1600, MaxStateSize: 1 << 20, MaxSteps: 1 << 20})

	if tier := admissionTier(2*time.Second, 2*time.Second, 0, 4); tier != 0 {
		t.Errorf("relaxed request tier = %d, want 0", tier)
	}
	if tier := admissionTier(100*time.Millisecond, 2*time.Second, 0, 4); tier == 0 {
		t.Error("tight deadline must raise the tier")
	}
	if tier := admissionTier(2*time.Second, 2*time.Second, 16, 4); tier == 0 {
		t.Error("deep queue must raise the tier")
	}
	t0, t2 := s.budgets(0), s.budgets(2)
	if t0.blockVisits != 1600 || t2.blockVisits != 400 {
		t.Errorf("budgets: tier0=%d tier2=%d, want 1600/400", t0.blockVisits, t2.blockVisits)
	}
	if b := s.budgets(maxTier + 10); b.blockVisits < 1 || b.steps < 1 {
		t.Errorf("over-tier budgets must stay positive: %+v", b)
	}
	// Same tier → same budgets → same cache key: requests coalesce.
	if s.budgets(1) != s.budgets(1) {
		t.Error("budgets must be deterministic per tier")
	}
}
