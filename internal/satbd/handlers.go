package satbd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime/debug"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/obs"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
	"satbelim/internal/vm"
)

// Request is the JSON body of /compile, /analyze, and /run. Only
// Source is required; everything else defaults from the server config.
type Request struct {
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	// DeadlineMS is the client's wall-clock budget for this request,
	// clamped to the server's MaxDeadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`

	// Runtime knobs (/run only).
	Engine    string `json:"engine,omitempty"`
	Barrier   string `json:"barrier,omitempty"`
	GC        string `json:"gc,omitempty"`
	GCTrigger int64  `json:"gc_trigger,omitempty"`
	// MaxSteps may lower (never raise) the admission-granted VM step
	// budget.
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// Outcome classes carried in SatbdRequest.Outcome. Exactly one applies
// per response; "degraded" means the compile succeeded but at least one
// method fell back to all-barriers — the result is correct and the
// degradation is flagged, never silent.
const (
	OutcomeOK       = "ok"
	OutcomeDegraded = "degraded"
	OutcomeShed     = "shed"
	OutcomeTimeout  = "timeout"
	OutcomeError    = "error"
	OutcomePanic    = "panic"
)

func decodeRequest(r *http.Request, maxBytes int64) (*Request, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBytes))
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("satbd: bad request body: %w", err)
	}
	if req.Source == "" {
		return nil, errors.New("satbd: request has no source")
	}
	if req.Name == "" {
		req.Name = "prog"
	}
	return &req, nil
}

// clampDeadline resolves the effective per-request deadline.
func (s *Server) clampDeadline(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// endpoint builds the handler for one pipeline endpoint. The shape is
// the same for all three: decode → admit (shed or wait for a slot) →
// process under a per-request context with panic isolation → respond
// with a schema-valid Document whatever happened.
func (s *Server) endpoint(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.requests.Add(1)
		obs.Count("satbd.requests", 1)
		sr := &report.SatbdRequest{
			ID:       fmt.Sprintf("r%06d", s.seq.Add(1)),
			Endpoint: name,
		}
		doc := report.NewDocument("satbd")
		doc.Satbd = &report.Satbd{Request: sr}

		req, err := decodeRequest(r, s.cfg.MaxSourceBytes)
		if err != nil {
			s.errs.Add(1)
			s.finish(w, http.StatusBadRequest, doc, sr, OutcomeError, err, t0)
			return
		}
		deadline := s.clampDeadline(req.DeadlineMS)
		sr.DeadlineMS = deadline.Milliseconds()
		ctx, cancel := context.WithTimeout(r.Context(), deadline)
		defer cancel()

		// Admission: q counts requests admitted but not yet holding a
		// slot. Beyond Workers+QueueDepth waiters the daemon sheds
		// rather than queueing unbounded work it cannot finish.
		q := s.queued.Add(1)
		for {
			peak := s.queuedPeak.Load()
			if q <= peak || s.queuedPeak.CompareAndSwap(peak, q) {
				break
			}
		}
		if int(q) > s.cfg.Workers+s.cfg.QueueDepth {
			s.queued.Add(-1)
			s.shed.Add(1)
			obs.Count("satbd.shed", 1)
			sr.QueueDepth = int(q) - 1
			sr.RetryAfterS = 1
			w.Header().Set("Retry-After", "1")
			err := fmt.Errorf("satbd: saturated (%d waiting, capacity %d)", q-1, s.cfg.Workers+s.cfg.QueueDepth)
			s.finish(w, http.StatusTooManyRequests, doc, sr, OutcomeShed, err, t0)
			return
		}
		var slot int
		select {
		case slot = <-s.slots:
		case <-ctx.Done():
			s.queued.Add(-1)
			s.timeouts.Add(1)
			obs.Count("satbd.queue_timeouts", 1)
			s.finish(w, http.StatusGatewayTimeout, doc, sr, OutcomeTimeout, ctx.Err(), t0)
			return
		}
		waiting := s.queued.Add(-1)
		sr.QueueDepth = int(waiting)
		sr.QueueWaitNS = time.Since(t0).Nanoseconds()
		obs.Count("satbd.queue_wait_ns", sr.QueueWaitNS)
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			s.slots <- slot
		}()

		// Queue pressure and the request's own deadline pick the
		// admission tier; the tier quantizes the structural budgets so
		// cache keys stay shared across requests in the same tier.
		tier := admissionTier(deadline, s.cfg.DefaultDeadline, int(waiting), s.cfg.Workers)
		bgt := s.budgets(tier)
		sr.Tier = tier
		sr.MaxBlockVisits = bgt.blockVisits
		sr.MaxStateSize = bgt.stateSize
		sr.MaxSteps = bgt.steps

		status, outcome, err := s.process(ctx, slot, name, req, bgt, doc)
		s.finish(w, status, doc, sr, outcome, err, t0)
	}
}

// finish stamps the outcome on the request envelope, bumps the outcome
// counters, and writes the response document.
func (s *Server) finish(w http.ResponseWriter, status int, doc *report.Document, sr *report.SatbdRequest, outcome string, err error, t0 time.Time) {
	sr.Outcome = outcome
	if err != nil {
		sr.Error = err.Error()
	}
	sr.ElapsedNS = time.Since(t0).Nanoseconds()
	// shed/timeout/error/panic counters are bumped where the condition
	// is detected; the success classes are counted here.
	switch outcome {
	case OutcomeOK:
		s.ok.Add(1)
	case OutcomeDegraded:
		s.degraded.Add(1)
		obs.Count("satbd.degraded", 1)
	}
	writeDoc(w, status, doc)
}

// process runs one admitted request through the pipeline. Any panic —
// from the compiler, the analysis (beyond core's own per-method
// recovery), the VM, or an injected fault — is confined here: the
// request gets a 500 with outcome "panic" and the daemon keeps serving.
func (s *Server) process(ctx context.Context, slot int, name string, req *Request, bgt budgets, doc *report.Document) (status int, outcome string, err error) {
	lane := fmt.Sprintf("satbd/w%d", slot)
	sp := obs.StartSpan(lane, "satbd", name)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			obs.Count("satbd.panics", 1)
			status, outcome = http.StatusInternalServerError, OutcomePanic
			err = fmt.Errorf("satbd: request panicked: %v\n%s", r, debug.Stack())
			doc.Run, doc.Compile, doc.Methods = nil, nil, nil
		}
		sp.EndArgs(obs.KV{K: "outcome", S: outcome})
	}()

	inj := s.cfg.Inject
	inj.Stall("worker")
	inj.MaybePanic("request")
	inj.SlowStage("compile")

	opts := pipeline.Options{
		InlineLimit: s.cfg.InlineLimit,
		Analysis: core.Options{
			Mode:           s.cfg.Mode,
			NullOrSame:     s.cfg.NullOrSame,
			MaxBlockVisits: bgt.blockVisits,
			MaxStateSize:   bgt.stateSize,
		},
		Cache: s.cache,
	}
	b, err := pipeline.CompileCtx(ctx, req.Name, req.Source, opts)
	if err != nil {
		if ctxErr(err) {
			s.timeouts.Add(1)
			obs.Count("satbd.timeouts", 1)
			return http.StatusGatewayTimeout, OutcomeTimeout, err
		}
		s.errs.Add(1)
		return http.StatusBadRequest, OutcomeError, err
	}
	doc.Compile = report.NewCompileSummary(b)
	outcome = OutcomeOK
	if b.Report != nil && len(b.Report.Degraded()) > 0 {
		outcome = OutcomeDegraded
	}

	switch name {
	case "analyze":
		doc.Methods = report.NewMethodSummaries(b.Report)
	case "run":
		cfg, err := s.vmConfig(req, bgt.steps)
		if err != nil {
			s.errs.Add(1)
			return http.StatusBadRequest, OutcomeError, err
		}
		inj.SlowStage("run")
		res, err := vm.New(b.Program, cfg).RunContext(ctx)
		if err != nil {
			if ctxErr(err) {
				s.timeouts.Add(1)
				obs.Count("satbd.timeouts", 1)
				return http.StatusGatewayTimeout, OutcomeTimeout, err
			}
			s.errs.Add(1)
			return http.StatusBadRequest, OutcomeError, err
		}
		s.tierUps.Add(int64(res.TierUps))
		s.tierDeopts.Add(res.TierDeopts)
		s.tierSegExecs.Add(res.TierSegExecs)
		s.logged.Add(int64(res.Counters.Logged))
		s.shaded.Add(int64(res.Counters.Shaded))
		doc.Run = report.NewRunSummary(req.Name, res)
	}
	return http.StatusOK, outcome, nil
}

// ctxErr reports whether an error is the request's own deadline or
// cancellation surfacing through a pipeline stage.
func ctxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	doc := report.NewDocument("satbd")
	st := s.Stats()
	cs := s.cache.Stats()
	doc.Satbd = &report.Satbd{Stats: &st}
	doc.BuildCache = &cs
	if c := obs.Active(); c != nil {
		m := c.Metrics()
		doc.Metrics = &m
	}
	writeDoc(w, http.StatusOK, doc)
}

// trace serves the Chrome trace (chrome://tracing / Perfetto) of the
// process collector; 404 when tracing is not enabled.
func (s *Server) trace(w http.ResponseWriter, r *http.Request) {
	c := obs.Active()
	if c == nil {
		http.Error(w, "satbd: tracing not enabled (start with -obs)", http.StatusNotFound)
		return
	}
	data, err := c.ChromeTrace()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func writeDoc(w http.ResponseWriter, status int, doc *report.Document) {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		// A Document always marshals; this is unreachable but must not
		// produce a schema-invalid body if it ever fires.
		http.Error(w, `{"schemaVersion":0}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
