package satbd

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"satbelim/internal/faultinject"
)

// checkGoroutines asserts the goroutine count returns to (near) its
// baseline after a load run — a leaked per-request goroutine would grow
// the count by hundreds here.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+5 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(50 * time.Millisecond)
	}
}

// TestChaosLoad is the chaos acceptance run from the issue: a
// progen-driven storm against a daemon with every fault class injected
// (slow stages, cache-shard failures, worker stalls, spurious panics).
// The pass condition is the daemon's whole contract: zero crashes, zero
// schema-invalid responses, zero silently-wrong results (every /run
// output re-executed locally and compared), every degradation flagged,
// overload shed with 429, deadline overruns reported as timeouts, and
// no goroutine leaks afterwards.
func TestChaosLoad(t *testing.T) {
	programs := 1000
	if testing.Short() {
		programs = 120
	}
	baseline := runtime.NumGoroutine()

	inj := faultinject.New(faultinject.Config{
		Seed:           7,
		SlowStage:      0.05,
		SlowStageDelay: 2 * time.Millisecond,
		CacheFail:      0.2,
		Panic:          0.03,
		Stall:          0.05,
		StallDelay:     2 * time.Millisecond,
	})
	s := New(Config{Workers: 4, QueueDepth: 16, Inject: inj})
	ts := httptest.NewServer(s.Handler())

	load, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:       ts.URL,
		Programs:      programs,
		Concurrency:   8,
		Seed:          42,
		VerifyOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range load.Invalid {
		t.Errorf("contract violation: %s", v)
	}
	if load.Sent != programs {
		t.Errorf("sent %d of %d requests", load.Sent, programs)
	}
	total := 0
	for _, n := range load.ByOutcome {
		total += n
	}
	if total != programs {
		t.Errorf("outcome counts sum to %d, want %d: %v", total, programs, load.ByOutcome)
	}
	if load.ByOutcome[OutcomeOK] == 0 {
		t.Error("no request succeeded under faults; the daemon degraded to uselessness")
	}
	if load.OutputsVerified == 0 {
		t.Error("no outputs were verified; the silently-wrong check did not run")
	}
	if lat, found := load.Latency[OutcomeOK]; !found {
		t.Error("load report has no latency summary for the ok class")
	} else if lat.Count != load.ByOutcome[OutcomeOK] ||
		lat.P50NS <= 0 || lat.P95NS < lat.P50NS || lat.P99NS < lat.P95NS || lat.MaxNS < lat.P99NS {
		t.Errorf("ok latency summary malformed: %+v", lat)
	}
	if inj.TotalFired() == 0 {
		t.Error("no fault fired; the chaos run exercised nothing")
	}
	st := s.Stats()
	if st.Requests < int64(programs) {
		t.Errorf("daemon saw %d requests, want >= %d", st.Requests, programs)
	}
	if st.Inflight != 0 || st.Queued != 0 {
		t.Errorf("daemon not drained: %+v", st)
	}
	t.Logf("chaos: %d requests, outcomes %v, faults %s, cache %+v",
		programs, load.ByOutcome, inj.Summary(), s.Cache().Stats())

	ts.Close()
	checkGoroutines(t, baseline)
}

// TestChaosTightDeadlines: every request carries a deadline shorter
// than most pipelines under fault-induced stalls. Deadline-exceeded
// requests must be shed at admission (429) or reported as timeouts
// (504) — never as a 200 carrying a partial result.
func TestChaosTightDeadlines(t *testing.T) {
	programs := 200
	if testing.Short() {
		programs = 60
	}
	baseline := runtime.NumGoroutine()

	inj := faultinject.New(faultinject.Config{
		Seed:       11,
		Stall:      0.5,
		StallDelay: 30 * time.Millisecond,
	})
	s := New(Config{Workers: 2, QueueDepth: 4, Inject: inj})
	ts := httptest.NewServer(s.Handler())

	load, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:       ts.URL,
		Programs:      programs,
		Concurrency:   8,
		Seed:          99,
		DeadlineMS:    20,
		VerifyOutputs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range load.Invalid {
		t.Errorf("contract violation: %s", v)
	}
	if load.ByOutcome[OutcomeTimeout]+load.ByOutcome[OutcomeShed] == 0 {
		t.Errorf("tight deadlines produced no timeouts or sheds: %v", load.ByOutcome)
	}
	t.Logf("tight deadlines: outcomes %v", load.ByOutcome)

	ts.Close()
	checkGoroutines(t, baseline)
}
