// Package satbd is the long-running compile-and-run daemon: it serves
// the full pipeline (parse → analyze → run) over HTTP with a hardened
// request path. Every request carries a deadline propagated as a
// context.Context through pipeline.Compile, the core analysis fixed
// point, and the VM scheduler loop; admission control maps client
// deadlines and queue pressure onto tiered analysis budgets and sheds
// load (429 + Retry-After) at saturation; a panic anywhere in a
// request's pipeline is isolated to that request. The invariant the
// chaos suite enforces end to end: under faults the daemon degrades
// (slower responses, conservative all-barriers analyses, shed
// requests) but never crashes and never returns a silently-wrong
// result — every degradation is flagged in the response document.
package satbd

import (
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/faultinject"
	"satbelim/internal/pipeline"
	"satbelim/internal/report"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// Config is the daemon's one configuration surface. The zero value is
// usable: Normalize fills every unset knob with its default.
type Config struct {
	// Workers is the number of concurrent request slots (default: the
	// number of CPUs).
	Workers int
	// QueueDepth is how many admitted requests may wait for a slot
	// beyond the active ones before new arrivals are shed (default
	// 4×Workers).
	QueueDepth int
	// DefaultDeadline applies when a request names no deadline_ms
	// (default 2s); MaxDeadline clamps client-requested deadlines
	// (default 10s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// Compile-side defaults; a request may lower but never exceed them.
	InlineLimit    int
	Mode           core.Mode
	NullOrSame     bool
	CacheEntries   int
	MaxSourceBytes int64

	// Tier-0 budgets. Admission control halves the structural analysis
	// budgets per tier step (see admission.go); wall-clock bounding
	// rides exclusively on the request context so the cache key never
	// fragments per-deadline.
	MaxBlockVisits int
	MaxStateSize   int
	MaxSteps       int64

	// Inject enables fault injection (nil = no faults).
	Inject *faultinject.Injector
}

func (c Config) normalized() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Second
	}
	if c.InlineLimit <= 0 {
		c.InlineLimit = 100
	}
	if c.Mode == 0 { // core.ModeNone: the daemon default is full analysis
		c.Mode = core.ModeFieldArray
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxBlockVisits <= 0 {
		c.MaxBlockVisits = 200000
	}
	if c.MaxStateSize <= 0 {
		c.MaxStateSize = 1 << 20
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 20_000_000
	}
	return c
}

// Server is one daemon instance. All state is per-instance (its own
// build cache, its own counters): nothing rides on package globals, so
// tests run servers side by side.
type Server struct {
	cfg   Config
	cache *pipeline.Cache
	slots chan int
	start time.Time

	seq        atomic.Int64
	queued     atomic.Int64
	queuedPeak atomic.Int64
	inflight   atomic.Int64

	requests atomic.Int64
	ok       atomic.Int64
	degraded atomic.Int64
	shed     atomic.Int64
	timeouts atomic.Int64
	errs     atomic.Int64
	panics   atomic.Int64

	tierUps      atomic.Int64
	tierDeopts   atomic.Int64
	tierSegExecs atomic.Int64

	// Barrier traffic across /run requests: deletion-side log entries
	// and insertion-side shade events.
	logged atomic.Int64
	shaded atomic.Int64
}

// New builds a Server from cfg (zero-value fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.normalized()
	s := &Server{
		cfg:   cfg,
		cache: pipeline.NewCache(cfg.CacheEntries),
		slots: make(chan int, cfg.Workers),
		start: time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.slots <- i
	}
	if inj := cfg.Inject; inj.Enabled() {
		s.cache.SetFaultHook(inj.CacheFault)
	}
	return s
}

// Cache exposes the server's build cache (stats endpoints, tests).
func (s *Server) Cache() *pipeline.Cache { return s.cache }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.endpoint("compile"))
	mux.HandleFunc("POST /analyze", s.endpoint("analyze"))
	mux.HandleFunc("POST /run", s.endpoint("run"))
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /trace", s.trace)
	return mux
}

// Stats snapshots the daemon's service counters.
func (s *Server) Stats() report.SatbdStats {
	return report.SatbdStats{
		UptimeNS:   time.Since(s.start).Nanoseconds(),
		Requests:   s.requests.Load(),
		OK:         s.ok.Load(),
		Degraded:   s.degraded.Load(),
		Shed:       s.shed.Load(),
		Timeouts:   s.timeouts.Load(),
		Errors:     s.errs.Load(),
		Panics:     s.panics.Load(),
		Inflight:   s.inflight.Load(),
		Queued:     s.queued.Load(),
		QueuedPeak: s.queuedPeak.Load(),
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,

		TierUps:      s.tierUps.Load(),
		TierDeopts:   s.tierDeopts.Load(),
		TierSegExecs: s.tierSegExecs.Load(),

		Logged: s.logged.Load(),
		Shaded: s.shaded.Load(),
	}
}

// vmConfig derives the VM configuration for one request. The request
// may pick engine/barrier/gc and lower the step budget; it can never
// raise the budget above the admission-granted bound.
func (s *Server) vmConfig(req *Request, maxSteps int64) (vm.Config, error) {
	cfg := vm.Config{MaxSteps: maxSteps}
	var err error
	if cfg.Engine, err = vm.ParseEngine(req.Engine); err != nil {
		return cfg, err
	}
	if cfg.GC, err = vm.ParseGCKind(req.GC); err != nil {
		return cfg, err
	}
	if cfg.Barrier, err = satb.ParseBarrierMode(req.Barrier); err != nil {
		return cfg, err
	}
	cfg.TriggerEveryAllocs = req.GCTrigger
	if req.MaxSteps > 0 && req.MaxSteps < maxSteps {
		cfg.MaxSteps = req.MaxSteps
	}
	return cfg, nil
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	doc := report.NewDocument("satbd")
	st := s.Stats()
	doc.Satbd = &report.Satbd{Stats: &st}
	writeDoc(w, http.StatusOK, doc)
}
