package metatest

import (
	"strings"
	"testing"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/progen"
)

// TestCampaignCleanOnSoundAnalysis: the full property library over a
// modest campaign corpus finds nothing on the real analysis.
func TestCampaignCleanOnSoundAnalysis(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 8
	}
	res, err := RunCampaign(Options{
		Seeds:    seeds,
		Analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		f := res.Failures[0]
		t.Fatalf("campaign found %d failures; first: seed %d %s: %s\nrepro:\n%s",
			len(res.Failures), f.Seed, f.Property, f.Message, f.Repro)
	}
	if res.SeedsRun != seeds {
		t.Errorf("ran %d seeds, want %d", res.SeedsRun, seeds)
	}
	wantChecks := seeds * len(Properties())
	if res.Checks != wantChecks {
		t.Errorf("ran %d checks, want %d", res.Checks, wantChecks)
	}
}

// TestCampaignCatchesInjectedDemotionBug is the acceptance self-test: an
// analysis that skips the R/A→R/B demotion must be caught by the
// campaign, and the auto-shrunk repro must be ≤ 25 lines.
func TestCampaignCatchesInjectedDemotionBug(t *testing.T) {
	res, err := RunCampaign(Options{
		Seeds: 40,
		Analysis: core.Options{
			Mode:                 core.ModeFieldArray,
			UnsoundSkipBDemotion: true,
		},
		MaxFailures: 1, // first counterexample suffices
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("campaign missed the injected /B-demotion bug")
	}
	f := res.Failures[0]
	t.Logf("caught by %s at seed %d in %d shrink checks; %d-line repro:\n%s",
		f.Property, f.Seed, f.ShrinkChecks, f.ReproLines, f.Repro)
	if f.ReproLines > 25 {
		t.Errorf("repro is %d lines, want ≤ 25:\n%s", f.ReproLines, f.Repro)
	}
	// The repro must itself still be a counterexample.
	vs, err := CheckSource(f.Repro, core.Options{
		Mode:                 core.ModeFieldArray,
		UnsoundSkipBDemotion: true,
	}, []string{f.Property})
	if err != nil {
		t.Fatalf("repro replay: %v", err)
	}
	if len(vs) == 0 {
		t.Error("shrunk repro no longer fails the property")
	}
}

// TestCampaignCatchesInjectedTrustAllBug is the interprocedural
// acceptance self-test: an analysis that trusts every cyclic-SCC
// summary after its first optimistic round (skipping the compromise
// re-run) must be caught by the campaign with a small shrunk repro.
func TestCampaignCatchesInjectedTrustAllBug(t *testing.T) {
	unsound := core.Options{
		Mode:                     core.ModeFieldArray,
		Interprocedural:          true,
		UnsoundTrustAllSummaries: true,
	}
	res, err := RunCampaign(Options{
		Seeds:       40,
		Analysis:    unsound,
		MaxFailures: 1, // first counterexample suffices
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("campaign missed the injected trust-all-summaries bug")
	}
	f := res.Failures[0]
	t.Logf("caught by %s at seed %d in %d shrink checks; %d-line repro:\n%s",
		f.Property, f.Seed, f.ShrinkChecks, f.ReproLines, f.Repro)
	if f.ReproLines > 40 {
		t.Errorf("repro is %d lines, want ≤ 40:\n%s", f.ReproLines, f.Repro)
	}
	// The repro must itself still be a counterexample.
	vs, err := CheckSource(f.Repro, unsound, []string{f.Property})
	if err != nil {
		t.Fatalf("repro replay: %v", err)
	}
	if len(vs) == 0 {
		t.Error("shrunk repro no longer fails the property")
	}
}

// TestCampaignBudget: the wall-clock budget stops the run early and is
// reported.
func TestCampaignBudget(t *testing.T) {
	res, err := RunCampaign(Options{
		Seeds:    1_000_000,
		Analysis: core.Options{Mode: core.ModeFieldArray},
		Budget:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BudgetExhausted {
		t.Error("budget exhaustion not reported")
	}
	if res.SeedsRun >= 1_000_000 {
		t.Error("budget did not stop the campaign")
	}
}

// TestReplaySeedMatchesCampaignGeneration: -seed replay regenerates the
// exact campaign program.
func TestReplaySeedMatchesCampaignGeneration(t *testing.T) {
	src, vs, err := ReplaySeed(7, progen.Config{}, core.Options{Mode: core.ModeFieldArray}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("sound analysis failed on seed 7: %v", vs[0])
	}
	if want := progen.Generate(7, progen.CampaignConfig()); src != want {
		t.Error("replay generated a different program than the campaign")
	}
}

// TestSelectPropsRejectsUnknown: typos in -props fail loudly.
func TestSelectPropsRejectsUnknown(t *testing.T) {
	_, err := RunCampaign(Options{Seeds: 1, Props: []string{"no-such-prop"}})
	if err == nil || !strings.Contains(err.Error(), "unknown property") {
		t.Fatalf("want unknown-property error, got %v", err)
	}
}
