// Package metatest is the metamorphic conformance harness: it hunts for
// soundness and precision bugs by running generated programs (progen
// campaign corpora) through a library of properties with known oracles —
// configuration invariances (barrier mode, engine, inline limit never
// change output), the PR-2 runtime elision oracle under concurrent
// marking, metamorphic source mutations (dead-store insertion never
// decreases logged-barrier counts; independent-statement reordering
// preserves elision decisions), and the cross-flavor soundness check
// (every barrier flavor — conditional, always-log, yuasa, dijkstra,
// hybrid, card — must be observationally identical between the elided
// and all-barriers builds under its natural collector, with the oracle
// armed). Counterexamples are minimized by the
// shrinker (shrink.go) and packaged as replayable repro artifacts by the
// campaign runner (campaign.go), which cmd/satbtest fronts.
package metatest

import (
	"fmt"
	"reflect"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// maxSteps bounds every property run; progen programs are total and
// terminate far below this.
const maxSteps = 20_000_000

// Violation is a property failure on a *compiling* program — the only
// error kind the shrinker and campaign treat as a counterexample.
// Compile errors stay plain errors so that shrinking never wanders into
// syntactically broken territory.
type Violation struct {
	Prop string
	Msg  string
}

func (v *Violation) Error() string { return fmt.Sprintf("%s: %s", v.Prop, v.Msg) }

// Property is one metamorphic or invariance check. Check returns nil when
// the property holds, a *Violation when the program is a counterexample,
// and any other error when the source does not compile or the VM faults
// in a way the property does not judge.
type Property struct {
	Name string
	// Check evaluates the property for src under the given analysis
	// options (the campaign's fault-injection point).
	Check func(src string, analysis core.Options) error
}

// Properties returns the full property library in a deterministic order.
func Properties() []Property {
	return []Property{
		{Name: "engine-invariance", Check: checkEngineInvariance},
		{Name: "barrier-mode-invariance", Check: checkBarrierModeInvariance},
		{Name: "inline-soundness", Check: checkInlineSoundness},
		{Name: "dead-store-monotone", Check: checkDeadStoreMonotone},
		{Name: "reorder-invariance", Check: checkReorderInvariance},
		{Name: "flavor-soundness", Check: checkFlavorSoundness},
		{Name: "summary-soundness", Check: checkSummarySoundness},
	}
}

// PropertyNames lists the library's property names in order.
func PropertyNames() []string {
	var out []string
	for _, p := range Properties() {
		out = append(out, p.Name)
	}
	return out
}

func compile(src string, limit int, analysis core.Options) (*pipeline.Build, error) {
	b, err := pipeline.Compile("metatest", src, pipeline.Options{
		InlineLimit: limit,
		Analysis:    analysis,
	})
	if err != nil {
		return nil, err
	}
	// A program without an entrypoint is not a runnable counterexample;
	// keep it a plain error (like a syntax error) so the shrinker never
	// "simplifies" a genuine failure into a main-less husk whose only sin
	// is that the VM cannot start it.
	if b.Program.Method(b.Program.Main) == nil {
		return nil, fmt.Errorf("metatest: program has no entrypoint %s", b.Program.Main)
	}
	return b, nil
}

// runsStandalone reports whether src compiles and runs to completion
// with the analysis disabled — i.e. whether it is a valid, total
// program independent of any elision decision.
func runsStandalone(src string) bool {
	b, err := compile(src, 0, core.Options{Mode: core.ModeNone})
	if err != nil {
		return false
	}
	_, err = b.Run(vm.Config{Barrier: satb.ModeConditional, MaxSteps: maxSteps})
	return err == nil
}

// oracleConfig is the PR-2 runtime elision oracle under concurrent SATB
// marking: every elided store execution is validated against the actual
// pre-value, and the snapshot invariant is checked each cycle.
func oracleConfig() vm.Config {
	return vm.Config{
		Barrier:            satb.ModeConditional,
		GC:                 vm.GCSATB,
		TriggerEveryAllocs: 64,
		CheckInvariant:     true,
		CheckElisions:      true,
		MaxSteps:           maxSteps,
	}
}

// checkEngineInvariance: the fused and switch engines must be
// bit-identical — output, step count, barrier counters, and cost model.
func checkEngineInvariance(src string, analysis core.Options) error {
	b, err := compile(src, 100, analysis)
	if err != nil {
		return err
	}
	var results []*vm.Result
	for _, engine := range []vm.Engine{vm.EngineFused, vm.EngineSwitch} {
		res, err := b.Run(vm.Config{
			Engine:   engine,
			Barrier:  satb.ModeConditional,
			MaxSteps: maxSteps,
		})
		if err != nil {
			return &Violation{Prop: "engine-invariance", Msg: fmt.Sprintf("engine %v: %v", engine, err)}
		}
		results = append(results, res)
	}
	f, s := results[0], results[1]
	if !reflect.DeepEqual(f.Output, s.Output) {
		return &Violation{Prop: "engine-invariance",
			Msg: fmt.Sprintf("output differs: fused %v vs switch %v", f.Output, s.Output)}
	}
	if f.Steps != s.Steps || f.Counters.Logged != s.Counters.Logged ||
		f.Counters.Cost != s.Counters.Cost || f.TotalCost() != s.TotalCost() {
		return &Violation{Prop: "engine-invariance",
			Msg: fmt.Sprintf("accounting differs: steps %d/%d logged %d/%d cost %d/%d",
				f.Steps, s.Steps, f.Counters.Logged, s.Counters.Logged, f.TotalCost(), s.TotalCost())}
	}
	return nil
}

// checkBarrierModeInvariance: the barrier mode and collector choice are
// observationally transparent — program output never changes.
func checkBarrierModeInvariance(src string, analysis core.Options) error {
	b, err := compile(src, 100, analysis)
	if err != nil {
		return err
	}
	configs := []vm.Config{
		{Barrier: satb.ModeNoBarrier},
		{Barrier: satb.ModeConditional},
		{Barrier: satb.ModeAlwaysLog},
		{Barrier: satb.ModeCardMarking, GC: vm.GCIncremental, TriggerEveryAllocs: 48},
		{Barrier: satb.ModeConditional, GC: vm.GCSATB, TriggerEveryAllocs: 48},
	}
	var base []int64
	for i, cfg := range configs {
		cfg.MaxSteps = maxSteps
		res, err := b.Run(cfg)
		if err != nil {
			return &Violation{Prop: "barrier-mode-invariance",
				Msg: fmt.Sprintf("config %d (%v/%v): %v", i, cfg.Barrier, cfg.GC, err)}
		}
		if i == 0 {
			base = res.Output
		} else if !reflect.DeepEqual(base, res.Output) {
			return &Violation{Prop: "barrier-mode-invariance",
				Msg: fmt.Sprintf("config %d (%v/%v) changed output %v -> %v",
					i, cfg.Barrier, cfg.GC, base, res.Output)}
		}
	}
	return nil
}

// checkInlineSoundness: inlining must never change output, and at every
// inline level the elision decisions must survive the runtime oracle
// under concurrent marking. Soundness is monotone in analysis knowledge —
// output never is a function of the limit.
func checkInlineSoundness(src string, analysis core.Options) error {
	var base []int64
	for _, limit := range []int{0, 50, 200} {
		b, err := compile(src, limit, analysis)
		if err != nil {
			return err
		}
		res, err := b.Run(oracleConfig())
		if err != nil {
			return &Violation{Prop: "inline-soundness",
				Msg: fmt.Sprintf("limit %d: %v", limit, err)}
		}
		if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
			return &Violation{Prop: "inline-soundness",
				Msg: fmt.Sprintf("limit %d: unsound sites %v", limit, s.UnsoundSites)}
		}
		if base == nil {
			base = res.Output
		} else if !reflect.DeepEqual(base, res.Output) {
			return &Violation{Prop: "inline-soundness",
				Msg: fmt.Sprintf("limit %d changed output %v -> %v", limit, base, res.Output)}
		}
	}
	return nil
}

// checkDeadStoreMonotone: inserting unobservable reference stores (into a
// fresh class nothing reads) must leave the output unchanged and can only
// add logged-barrier executions, never remove them. The mutant also runs
// under the elision oracle, so an analysis that wrongly proves one of the
// inserted overwrites pre-null is flagged directly.
func checkDeadStoreMonotone(src string, analysis core.Options) error {
	orig, err := compile(src, 100, analysis)
	if err != nil {
		return err
	}
	mutSrc, ok := InsertDeadStores(src)
	if !ok {
		return nil // no insertion point; vacuously holds
	}
	mut, err := compile(mutSrc, 100, analysis)
	if err != nil {
		return fmt.Errorf("dead-store mutant failed to compile: %w", err)
	}
	cfg := vm.Config{Barrier: satb.ModeConditional, CheckElisions: true, MaxSteps: maxSteps}
	origRes, err := orig.Run(cfg)
	if err != nil {
		return &Violation{Prop: "dead-store-monotone", Msg: fmt.Sprintf("original: %v", err)}
	}
	mutRes, err := mut.Run(cfg)
	if err != nil {
		return &Violation{Prop: "dead-store-monotone", Msg: fmt.Sprintf("mutant: %v", err)}
	}
	if !reflect.DeepEqual(origRes.Output, mutRes.Output) {
		return &Violation{Prop: "dead-store-monotone",
			Msg: fmt.Sprintf("dead stores changed output %v -> %v", origRes.Output, mutRes.Output)}
	}
	if mutRes.Counters.Logged < origRes.Counters.Logged {
		return &Violation{Prop: "dead-store-monotone",
			Msg: fmt.Sprintf("logged barriers decreased: %d -> %d",
				origRes.Counters.Logged, mutRes.Counters.Logged)}
	}
	return nil
}

// checkReorderInvariance: swapping adjacent independent pure int
// declarations is semantics-preserving and must not change output or any
// static elision total.
func checkReorderInvariance(src string, analysis core.Options) error {
	orig, err := compile(src, 100, analysis)
	if err != nil {
		return err
	}
	mutSrc, ok := SwapIndependentStmts(src)
	if !ok {
		return nil // no swappable pair; vacuously holds
	}
	mut, err := compile(mutSrc, 100, analysis)
	if err != nil {
		return fmt.Errorf("reorder mutant failed to compile: %w", err)
	}
	cfg := vm.Config{Barrier: satb.ModeConditional, MaxSteps: maxSteps}
	origRes, err := orig.Run(cfg)
	if err != nil {
		return &Violation{Prop: "reorder-invariance", Msg: fmt.Sprintf("original: %v", err)}
	}
	mutRes, err := mut.Run(cfg)
	if err != nil {
		return &Violation{Prop: "reorder-invariance", Msg: fmt.Sprintf("mutant: %v", err)}
	}
	if !reflect.DeepEqual(origRes.Output, mutRes.Output) {
		return &Violation{Prop: "reorder-invariance",
			Msg: fmt.Sprintf("reorder changed output %v -> %v", origRes.Output, mutRes.Output)}
	}
	of := totals(orig)
	mf := totals(mut)
	if of != mf {
		return &Violation{Prop: "reorder-invariance",
			Msg: fmt.Sprintf("reorder changed elision totals %+v -> %+v", of, mf)}
	}
	return nil
}

type elisionTotals struct {
	FieldSites, ArraySites, FieldElided, ArrayElided, NullOrSame int
}

func totals(b *pipeline.Build) elisionTotals {
	var t elisionTotals
	t.FieldSites, t.ArraySites, t.FieldElided, t.ArrayElided, t.NullOrSame = b.Report.Totals()
	return t
}

// checkSummarySoundness: interprocedural summaries are a pure precision
// layer — at inline limit 0 (every call a summary consultation) the
// summaries-on and summaries-off builds must be observationally
// identical under every barrier flavor, and the extra elisions the
// summaries unlock must survive the runtime oracle. An unsound summary
// (e.g. the UnsoundTrustAllSummaries self-test knob) shows up either as
// an oracle violation on the summaries-on build or as an execution
// divergence.
func checkSummarySoundness(src string, analysis core.Options) error {
	on := analysis
	on.Interprocedural = true
	off := analysis
	off.Interprocedural = false
	off.UnsoundTrustAllSummaries = false
	bOn, err := compile(src, 0, on)
	if err != nil {
		return err
	}
	bOff, err := compile(src, 0, off)
	if err != nil {
		return err
	}
	pairings := []struct {
		mode satb.BarrierMode
		gc   vm.GCKind
	}{
		{satb.ModeConditional, vm.GCSATB},
		{satb.ModeYuasa, vm.GCSATB},
		{satb.ModeDijkstra, vm.GCSATB},
		{satb.ModeHybrid, vm.GCSATB},
	}
	for _, pr := range pairings {
		cfg := vm.Config{
			Barrier:            pr.mode,
			GC:                 pr.gc,
			TriggerEveryAllocs: 64,
			CheckInvariant:     true,
			CheckElisions:      true,
			MaxSteps:           maxSteps,
		}
		onRes, err := bOn.Run(cfg)
		if err != nil {
			return &Violation{Prop: "summary-soundness",
				Msg: fmt.Sprintf("%v summaries-on: %v", pr.mode, err)}
		}
		offRes, err := bOff.Run(cfg)
		if err != nil {
			return &Violation{Prop: "summary-soundness",
				Msg: fmt.Sprintf("%v summaries-off: %v", pr.mode, err)}
		}
		if !reflect.DeepEqual(onRes.Output, offRes.Output) {
			return &Violation{Prop: "summary-soundness",
				Msg: fmt.Sprintf("%v: summaries changed output %v -> %v", pr.mode, offRes.Output, onRes.Output)}
		}
		if onRes.Steps != offRes.Steps || onRes.Allocated != offRes.Allocated || onRes.Cycles != offRes.Cycles {
			return &Violation{Prop: "summary-soundness",
				Msg: fmt.Sprintf("%v: summaries changed execution: steps %d/%d allocated %d/%d cycles %d/%d",
					pr.mode, onRes.Steps, offRes.Steps, onRes.Allocated, offRes.Allocated, onRes.Cycles, offRes.Cycles)}
		}
		for _, side := range []struct {
			name string
			res  *vm.Result
		}{{"on", onRes}, {"off", offRes}} {
			if s := side.res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
				return &Violation{Prop: "summary-soundness",
					Msg: fmt.Sprintf("%v summaries-%s: unsound sites %v", pr.mode, side.name, s.UnsoundSites)}
			}
		}
	}
	return nil
}

// checkFlavorSoundness: every barrier flavor, run under its natural
// collector with the runtime elision oracle armed, must be
// observationally identical between the analyzed (elided) build and the
// sound all-barriers build. The VM projects analysis verdicts through
// each flavor's soundness predicate, so a projection bug shows up as an
// oracle violation or an output/step/allocation divergence. Sweep totals
// are deliberately NOT compared: an all-barriers run logs pre-values at
// sites the elided run proved removable, keeping otherwise-dead objects
// alive one extra cycle (floating garbage) — a legitimate difference.
func checkFlavorSoundness(src string, analysis core.Options) error {
	elided, err := compile(src, 100, analysis)
	if err != nil {
		return err
	}
	full, err := compile(src, 100, core.Options{Mode: core.ModeNone})
	if err != nil {
		return err
	}
	pairings := []struct {
		mode satb.BarrierMode
		gc   vm.GCKind
	}{
		{satb.ModeConditional, vm.GCSATB},
		{satb.ModeAlwaysLog, vm.GCSATB},
		{satb.ModeYuasa, vm.GCSATB},
		{satb.ModeDijkstra, vm.GCSATB},
		{satb.ModeHybrid, vm.GCSATB},
		{satb.ModeCardMarking, vm.GCIncremental},
	}
	for _, pr := range pairings {
		cfg := vm.Config{
			Barrier:            pr.mode,
			GC:                 pr.gc,
			TriggerEveryAllocs: 64,
			// Armed only on snapshot-sound flavors; the insertion-only
			// and card flavors do not maintain the mark-start snapshot.
			CheckInvariant: true,
			CheckElisions:  true,
			MaxSteps:       maxSteps,
		}
		eres, err := elided.Run(cfg)
		if err != nil {
			return &Violation{Prop: "flavor-soundness",
				Msg: fmt.Sprintf("%v/%v elided: %v", pr.mode, pr.gc, err)}
		}
		fres, err := full.Run(cfg)
		if err != nil {
			return &Violation{Prop: "flavor-soundness",
				Msg: fmt.Sprintf("%v/%v all-barriers: %v", pr.mode, pr.gc, err)}
		}
		if !reflect.DeepEqual(eres.Output, fres.Output) {
			return &Violation{Prop: "flavor-soundness",
				Msg: fmt.Sprintf("%v: elision changed output %v -> %v", pr.mode, fres.Output, eres.Output)}
		}
		if eres.Steps != fres.Steps || eres.Allocated != fres.Allocated || eres.Cycles != fres.Cycles {
			return &Violation{Prop: "flavor-soundness",
				Msg: fmt.Sprintf("%v: elision changed execution: steps %d/%d allocated %d/%d cycles %d/%d",
					pr.mode, eres.Steps, fres.Steps, eres.Allocated, fres.Allocated, eres.Cycles, fres.Cycles)}
		}
		if s := eres.Counters.Summarize(); len(s.UnsoundSites) > 0 {
			return &Violation{Prop: "flavor-soundness",
				Msg: fmt.Sprintf("%v: unsound sites %v", pr.mode, s.UnsoundSites)}
		}
	}
	return nil
}
