package metatest

// Shrinker: delta-debugging over MiniJava source lines. Candidates are
// brace-balanced chunks — whole top-level classes, statement blocks (a
// line ending in "{" through its matching "}"), and single statement
// lines — removed greedily largest-first while the caller's predicate
// keeps holding. The predicate only accepts compiling counterexamples
// (see Violation), so shrinking never wanders into syntactically broken
// territory.

import "strings"

// ShrinkResult reports what the shrinker did.
type ShrinkResult struct {
	Source string // minimized source
	Checks int    // predicate evaluations spent
	Lines  int    // non-blank lines in Source
}

// Shrink minimizes src subject to keep: keep(src) must be true on entry,
// and the returned source still satisfies it. maxChecks bounds predicate
// evaluations (≤ 0 means a default of 400).
func Shrink(src string, keep func(string) bool, maxChecks int) ShrinkResult {
	if maxChecks <= 0 {
		maxChecks = 400
	}
	lines := strings.Split(src, "\n")
	checks := 0
	// Each pass enumerates candidates once and marks removals instead of
	// splicing, so every candidate's line range stays valid for the whole
	// pass; splicing happens between passes. One predicate evaluation per
	// candidate per pass keeps the budget linear in program size.
	for {
		removed := make([]bool, len(lines))
		progressed := false
		for _, ch := range chunksOf(lines) {
			if checks >= maxChecks {
				break
			}
			live := false
			for i := ch.start; i <= ch.end; i++ {
				if !removed[i] {
					live = true
					break
				}
			}
			if !live {
				continue // swallowed by an earlier removal this pass
			}
			cand := joinExcept(lines, removed, ch)
			checks++
			if keep(cand) {
				for i := ch.start; i <= ch.end; i++ {
					removed[i] = true
				}
				progressed = true
			}
		}
		var kept []string
		for i, l := range lines {
			if !removed[i] {
				kept = append(kept, l)
			}
		}
		lines = kept
		if !progressed || checks >= maxChecks {
			break
		}
	}
	out := strings.Join(lines, "\n")
	return ShrinkResult{Source: out, Checks: checks, Lines: countLines(out)}
}

// joinExcept renders the lines not yet removed, additionally dropping the
// trial chunk.
func joinExcept(lines []string, removed []bool, ch chunk) string {
	var b strings.Builder
	for i, l := range lines {
		if removed[i] || (i >= ch.start && i <= ch.end) {
			continue
		}
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// countLines counts non-blank lines.
func countLines(s string) int {
	n := 0
	for _, l := range strings.Split(s, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

type chunk struct{ start, end int } // inclusive line range

// chunksOf enumerates removable candidates, largest first: brace-balanced
// blocks (including whole classes and loops), then single statement
// lines. Lines that only open or close braces are never removed alone.
func chunksOf(lines []string) []chunk {
	var blocks []chunk
	var singles []chunk
	var stack []int
	for i, raw := range lines {
		l := strings.TrimSpace(raw)
		switch {
		case strings.HasPrefix(l, "}") && strings.HasSuffix(l, "{"):
			// "} else {": continuation — the open block spans both arms,
			// so the whole if/else is one removable candidate.
		case strings.HasSuffix(l, "{"):
			stack = append(stack, i)
		case l == "}":
			if len(stack) > 0 {
				open := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				blocks = append(blocks, chunk{open, i})
			}
		case l == "" || strings.HasPrefix(l, "//"):
			// skip blanks and comments as single candidates; they vanish
			// with their enclosing block.
		case strings.Contains(l, "{"):
			// One-line guarded statement (if (..) { .. }): removable whole.
			singles = append(singles, chunk{i, i})
		default:
			singles = append(singles, chunk{i, i})
		}
	}
	// Largest blocks first so whole classes and loops go in one check.
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			if blocks[j].end-blocks[j].start > blocks[i].end-blocks[i].start {
				blocks[i], blocks[j] = blocks[j], blocks[i]
			}
		}
	}
	return append(blocks, singles...)
}
