package metatest

import (
	"strings"
	"testing"
)

// TestShrinkRemovesIrrelevantLines: a predicate that only needs one magic
// line shrinks everything else away.
func TestShrinkRemovesIrrelevantLines(t *testing.T) {
	src := strings.Join([]string{
		"class A {",
		"    int a;",
		"}",
		"class B {",
		"    MAGIC",
		"    int b;",
		"}",
		"class C {",
		"    int c;",
		"}",
	}, "\n")
	keep := func(s string) bool { return strings.Contains(s, "MAGIC") }
	got := Shrink(src, keep, 0)
	if !strings.Contains(got.Source, "MAGIC") {
		t.Fatal("shrinker lost the failing line")
	}
	// Classes A and C vanish whole; B keeps only its braces around MAGIC.
	for _, gone := range []string{"class A", "class C", "int a;", "int b;", "int c;"} {
		if strings.Contains(got.Source, gone) {
			t.Errorf("irrelevant %q kept:\n%s", gone, got.Source)
		}
	}
	if got.Lines > 3 {
		t.Errorf("want ≤ 3 lines, got %d:\n%s", got.Lines, got.Source)
	}
	if got.Checks == 0 {
		t.Error("no predicate evaluations recorded")
	}
}

// TestShrinkKeepsBalancedBlocks: the block containing the magic line
// survives whole while sibling blocks vanish; the result still brace-
// balances.
func TestShrinkKeepsBalancedBlocks(t *testing.T) {
	src := strings.Join([]string{
		"class A {",
		"    void m() {",
		"        x = 1;",
		"        MAGIC;",
		"    }",
		"    void n() {",
		"        y = 2;",
		"    }",
		"}",
	}, "\n")
	keep := func(s string) bool {
		// A realistic predicate demands structure, not just the token:
		// the magic line inside some braces.
		return strings.Contains(s, "MAGIC") && balanced(s)
	}
	got := Shrink(src, keep, 0)
	if !strings.Contains(got.Source, "MAGIC") || !balanced(got.Source) {
		t.Fatalf("shrunk source broken:\n%s", got.Source)
	}
	if strings.Contains(got.Source, "y = 2") {
		t.Errorf("irrelevant sibling block kept:\n%s", got.Source)
	}
}

func balanced(s string) bool {
	d := 0
	for _, c := range s {
		switch c {
		case '{':
			d++
		case '}':
			d--
		}
		if d < 0 {
			return false
		}
	}
	return d == 0
}

// TestShrinkRespectsBudget: the check budget is a hard cap.
func TestShrinkRespectsBudget(t *testing.T) {
	var lines []string
	for i := 0; i < 100; i++ {
		lines = append(lines, "stmt;")
	}
	lines = append(lines, "MAGIC")
	got := Shrink(strings.Join(lines, "\n"), func(s string) bool {
		return strings.Contains(s, "MAGIC")
	}, 7)
	if got.Checks > 7 {
		t.Errorf("spent %d checks, budget 7", got.Checks)
	}
	if !strings.Contains(got.Source, "MAGIC") {
		t.Fatal("lost the failing line")
	}
}

func TestInsertDeadStores(t *testing.T) {
	src := "class Main {\n    static void main() {\n        print(1);\n    }\n}\n"
	mut, ok := InsertDeadStores(src)
	if !ok {
		t.Fatal("no insertion point found")
	}
	if !strings.Contains(mut, "MTDead mtp = null;") || !strings.Contains(mut, "class MTDead") {
		t.Fatalf("mutation missing pieces:\n%s", mut)
	}
	if !balanced(mut) {
		t.Fatalf("mutant not brace-balanced:\n%s", mut)
	}
	// Idempotence guard: a source already mutated is left alone.
	if _, again := InsertDeadStores(mut); again {
		t.Error("re-mutated an already-mutated source")
	}
}

func TestSwapIndependentStmts(t *testing.T) {
	src := "class Main {\n    static void main() {\n        int x1 = 3;\n        int x2 = 4;\n        print(x1 + x2);\n    }\n}\n"
	mut, ok := SwapIndependentStmts(src)
	if !ok {
		t.Fatal("no swappable pair found")
	}
	i1 := strings.Index(mut, "int x1")
	i2 := strings.Index(mut, "int x2")
	if i1 < 0 || i2 < 0 || i2 > i1 {
		t.Fatalf("pair not swapped:\n%s", mut)
	}

	// Dependent pair: x2 reads x1, must not swap.
	dep := "class Main {\n    static void main() {\n        int x1 = 3;\n        int x2 = x1 + 1;\n        print(x2);\n    }\n}\n"
	if _, ok := SwapIndependentStmts(dep); ok {
		t.Error("swapped a dependent pair")
	}

	// Prefix-named variables must not fool the dependence check:
	// x1 vs x12 are distinct identifiers.
	pre := "        int x1 = 3;\n        int x12 = x1 * 2;\n"
	if _, ok := SwapIndependentStmts(pre); ok {
		t.Error("swapped despite x12 reading x1")
	}
	ok2 := "        int x1 = x12 + 1;\n        int x2 = 4;\n"
	if _, swapped := SwapIndependentStmts(ok2); !swapped {
		t.Error("x12 in the initializer wrongly blocked an x1/x2-independent swap")
	}
}
