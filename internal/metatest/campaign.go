package metatest

import (
	"errors"
	"fmt"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/progen"
)

// Options configures a campaign run.
type Options struct {
	// Base is the first generator seed; Seeds is how many consecutive
	// seeds to run.
	Base  int64
	Seeds int
	// Gen is the generator configuration; the zero value means
	// progen.CampaignConfig() (all idiom knobs on).
	Gen progen.Config
	// Analysis is the analysis configuration every property compiles
	// under — the campaign's fault-injection point (the self-test runs
	// with core.Options.UnsoundSkipBDemotion set and must see failures).
	Analysis core.Options
	// Props filters the property library by name; empty means all.
	Props []string
	// Budget caps wall-clock time; 0 means unlimited. The campaign
	// checks the budget between property evaluations and finishes the
	// current one, so slightly overshooting is possible.
	Budget time.Duration
	// MaxFailures stops the campaign early once reached (0 means 10):
	// a broken analysis fails on nearly every seed, and shrinking each
	// is pointless.
	MaxFailures int
	// MaxShrinkChecks bounds predicate evaluations per shrink (0 means
	// the shrinker default).
	MaxShrinkChecks int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Failure is one shrunk counterexample, replayable via the Seed (with
// the same generator config) or the Repro source directly.
type Failure struct {
	Seed         int64  `json:"seed"`
	Property     string `json:"property"`
	Message      string `json:"message"`
	Source       string `json:"source"`
	Repro        string `json:"repro"`
	ReproLines   int    `json:"reproLines"`
	ShrinkChecks int    `json:"shrinkChecks"`
}

// Result summarizes a campaign.
type Result struct {
	SeedsRun        int        `json:"seedsRun"`
	Checks          int        `json:"checks"`
	Failures        []*Failure `json:"failures,omitempty"`
	BudgetExhausted bool       `json:"budgetExhausted,omitempty"`
	Elapsed         time.Duration `json:"elapsedNs"`
}

// selectProps resolves the Props filter against the library.
func selectProps(names []string) ([]Property, error) {
	all := Properties()
	if len(names) == 0 {
		return all, nil
	}
	byName := map[string]Property{}
	for _, p := range all {
		byName[p.Name] = p
	}
	var out []Property
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown property %q (have %v)", n, PropertyNames())
		}
		out = append(out, p)
	}
	return out, nil
}

// RunCampaign generates Seeds programs and checks every selected property
// on each, shrinking counterexamples as they appear.
func RunCampaign(opts Options) (*Result, error) {
	props, err := selectProps(opts.Props)
	if err != nil {
		return nil, err
	}
	gen := opts.Gen
	if gen == (progen.Config{}) {
		gen = progen.CampaignConfig()
	}
	maxFail := opts.MaxFailures
	if maxFail <= 0 {
		maxFail = 10
	}
	start := time.Now()
	deadline := time.Time{}
	if opts.Budget > 0 {
		deadline = start.Add(opts.Budget)
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{}
	for i := 0; i < opts.Seeds; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.BudgetExhausted = true
			break
		}
		seed := opts.Base + int64(i)
		src := progen.Generate(seed, gen)
		res.SeedsRun++
		for _, p := range props {
			if !deadline.IsZero() && time.Now().After(deadline) {
				res.BudgetExhausted = true
				break
			}
			res.Checks++
			err := p.Check(src, opts.Analysis)
			if err == nil {
				continue
			}
			var v *Violation
			if !errors.As(err, &v) {
				// Not a counterexample: the generator emitted something the
				// toolchain rejects, which is itself a bug worth surfacing.
				return res, fmt.Errorf("seed %d, property %s: %w", seed, p.Name, err)
			}
			logf("seed %d: %s FAILED: %s (shrinking)", seed, p.Name, v.Msg)
			res.Failures = append(res.Failures, shrinkFailure(seed, src, p, opts.Analysis, opts.MaxShrinkChecks, v))
			if len(res.Failures) >= maxFail {
				logf("stopping after %d failures", len(res.Failures))
				res.Elapsed = time.Since(start)
				return res, nil
			}
		}
		if res.BudgetExhausted {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// shrinkFailure minimizes src while the property keeps failing. A
// candidate must also still run to completion with the analysis
// disabled: shrinker deletions can manufacture programs that fault for
// reasons unrelated to any elision decision (falling off the end of an
// int method, dividing by a zeroed static), and such faults would
// satisfy any property's "run error ⇒ violation" clause and hijack the
// shrink toward a repro that no longer demonstrates the original bug.
func shrinkFailure(seed int64, src string, p Property, analysis core.Options, maxChecks int, v *Violation) *Failure {
	keep := func(s string) bool {
		if !runsStandalone(s) {
			return false
		}
		var sv *Violation
		return errors.As(p.Check(s, analysis), &sv)
	}
	sr := Shrink(src, keep, maxChecks)
	return &Failure{
		Seed:         seed,
		Property:     p.Name,
		Message:      v.Msg,
		Source:       src,
		Repro:        sr.Source,
		ReproLines:   sr.Lines,
		ShrinkChecks: sr.Checks,
	}
}

// CheckSource runs the selected properties against one source text (the
// -repro replay path). It returns the violations found; non-violation
// errors (e.g. the source does not compile) abort.
func CheckSource(src string, analysis core.Options, propNames []string) ([]*Violation, error) {
	props, err := selectProps(propNames)
	if err != nil {
		return nil, err
	}
	var out []*Violation
	for _, p := range props {
		err := p.Check(src, analysis)
		if err == nil {
			continue
		}
		var v *Violation
		if !errors.As(err, &v) {
			return out, fmt.Errorf("property %s: %w", p.Name, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ReplaySeed regenerates one seed with the given generator config and
// checks it (the -seed replay path).
func ReplaySeed(seed int64, gen progen.Config, analysis core.Options, propNames []string) (string, []*Violation, error) {
	if gen == (progen.Config{}) {
		gen = progen.CampaignConfig()
	}
	src := progen.Generate(seed, gen)
	vs, err := CheckSource(src, analysis, propNames)
	return src, vs, err
}
