package metatest

// Source mutations for the metamorphic properties. Both operate on
// MiniJava source text and are conservative: when no safe mutation site
// exists they report ok=false and the property holds vacuously.

import (
	"regexp"
	"strings"
)

// deadClass is the fresh class the dead-store mutation allocates; the
// "mt" prefix is reserved — progen never emits identifiers starting with
// it, so the insertion cannot capture or shadow program names.
const deadClass = "MTDead"

// deadStmts is the inserted unobservable statement block. Nothing ever
// reads mtp/mtd or MTDead.link, so program output is untouched, but the
// block executes real reference stores: mtd.link is a fresh-object store
// (legitimately elidable), while mtp.link on iterations ≥ 2 overwrites a
// non-null slot through a loop-carried alias of the allocation site —
// exactly the R/A→R/B demotion shape, placed before mtd's own store so a
// demotion-skipping analysis would wrongly judge it pre-null. The oracle
// run in checkDeadStoreMonotone catches such an elision immediately.
const deadStmts = `        MTDead mtp = null;
        for (int mti = 0; mti < 3; mti = mti + 1) {
            MTDead mtd = new MTDead();
            if (mtp != null) { mtp.link = new MTDead(); }
            mtd.link = new MTDead();
            mtp = mtd;
        }
`

// InsertDeadStores inserts the unobservable store block at the top of
// main and appends the fresh class it uses. ok is false when the source
// has no recognizable main.
func InsertDeadStores(src string) (mutated string, ok bool) {
	const marker = "static void main() {"
	i := strings.Index(src, marker)
	if i < 0 || strings.Contains(src, deadClass) {
		return src, false
	}
	// Insert after the end of the marker's line.
	nl := strings.IndexByte(src[i:], '\n')
	if nl < 0 {
		return src, false
	}
	at := i + nl + 1
	var b strings.Builder
	b.WriteString(src[:at])
	b.WriteString(deadStmts)
	b.WriteString(src[at:])
	b.WriteString("class " + deadClass + " { " + deadClass + " link; }\n")
	return b.String(), true
}

// intDeclRe matches a pure int declaration statement line: an arithmetic
// initializer over constants, locals, and field reads — no calls, no
// allocations, no stores — so two adjacent such lines commute unless the
// second reads the first's variable.
var intDeclRe = regexp.MustCompile(`^\s*int (x\d+) = ([^;]*);$`)

// SwapIndependentStmts swaps the first adjacent pair of independent pure
// int declarations. ok is false when no such pair exists.
func SwapIndependentStmts(src string) (mutated string, ok bool) {
	lines := strings.Split(src, "\n")
	for i := 0; i+1 < len(lines); i++ {
		m1 := intDeclRe.FindStringSubmatch(lines[i])
		if m1 == nil {
			continue
		}
		m2 := intDeclRe.FindStringSubmatch(lines[i+1])
		if m2 == nil {
			continue
		}
		// Independent: neither initializer mentions the other's variable.
		// (The first can't legally mention the second's, but progen names
		// recur across scopes, so check both directions on the raw text.)
		if mentionsVar(m2[2], m1[1]) || mentionsVar(m1[2], m2[1]) {
			continue
		}
		lines[i], lines[i+1] = lines[i+1], lines[i]
		return strings.Join(lines, "\n"), true
	}
	return src, false
}

// mentionsVar reports whether expr contains name as a whole identifier.
func mentionsVar(expr, name string) bool {
	for off := 0; ; {
		j := strings.Index(expr[off:], name)
		if j < 0 {
			return false
		}
		j += off
		before := j == 0 || !isIdentChar(expr[j-1])
		after := j+len(name) == len(expr) || !isIdentChar(expr[j+len(name)])
		if before && after {
			return true
		}
		off = j + 1
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
