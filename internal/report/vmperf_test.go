package report

import (
	"strings"
	"testing"
)

func TestVMPerfShape(t *testing.T) {
	rows, err := VMPerf(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 { // 6 workloads × 3 engines
		t.Fatalf("rows = %d, want 18", len(rows))
	}
	for i := 0; i < len(rows); i += 3 {
		comp, fused, sw := rows[i], rows[i+1], rows[i+2]
		if comp.Engine != "compiled" || fused.Engine != "fused" || sw.Engine != "switch" {
			t.Fatalf("row trio %d: engines %q/%q/%q", i, comp.Engine, fused.Engine, sw.Engine)
		}
		if comp.Workload != fused.Workload || fused.Workload != sw.Workload {
			t.Fatalf("row trio %d: workload mismatch %q/%q/%q", i, comp.Workload, fused.Workload, sw.Workload)
		}
		// All engines execute the identical instruction stream.
		if comp.Steps != sw.Steps || fused.Steps != sw.Steps {
			t.Errorf("%s: steps diverge: compiled %d fused %d switch %d",
				sw.Workload, comp.Steps, fused.Steps, sw.Steps)
		}
		if sw.Steps <= 0 || comp.WallNs <= 0 || fused.WallNs <= 0 || sw.WallNs <= 0 {
			t.Errorf("%s: non-positive steps/wall time", sw.Workload)
		}
		if comp.Speedup <= 0 || fused.Speedup <= 0 {
			t.Errorf("%s: compiled/fused rows missing speedup", sw.Workload)
		}
		if sw.Speedup != 0 {
			t.Errorf("%s: switch row must not carry a speedup", sw.Workload)
		}
		if comp.CompiledOverFused <= 0 {
			t.Errorf("%s: compiled row missing compiled-over-fused ratio", sw.Workload)
		}
		if comp.TierUps <= 0 || comp.TierSegExecs <= 0 {
			t.Errorf("%s: compiled row missing tier counters (ups=%d segs=%d)",
				sw.Workload, comp.TierUps, comp.TierSegExecs)
		}
		if fused.TierUps != 0 || sw.TierUps != 0 {
			t.Errorf("%s: non-compiled rows must not carry tier counters", sw.Workload)
		}
	}
	if g := VMPerfGeomeanSpeedup(rows); g <= 0 {
		t.Errorf("geomean = %v, want > 0", g)
	}
	if g := VMPerfGeomeanCompiledOverFused(rows); g <= 0 {
		t.Errorf("compiled-over-fused geomean = %v, want > 0", g)
	}
	out := FormatVMPerf(rows)
	for _, want := range []string{"jess", "jbb", "compiled", "fused", "switch", "geomean", "vs fused"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
}

func TestVMPerfGeomeanEmpty(t *testing.T) {
	if g := VMPerfGeomeanSpeedup(nil); g != 0 {
		t.Errorf("geomean of no rows = %v, want 0", g)
	}
	if g := VMPerfGeomeanSpeedup([]VMPerfRow{{Engine: "switch"}}); g != 0 {
		t.Errorf("geomean with no fused rows = %v, want 0", g)
	}
	if g := VMPerfGeomeanCompiledOverFused([]VMPerfRow{{Engine: "fused", Speedup: 2}}); g != 0 {
		t.Errorf("compiled-over-fused geomean with no compiled rows = %v, want 0", g)
	}
}
