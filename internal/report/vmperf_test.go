package report

import (
	"strings"
	"testing"
)

func TestVMPerfShape(t *testing.T) {
	rows, err := VMPerf(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 workloads × 2 engines
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		fused, sw := rows[i], rows[i+1]
		if fused.Engine != "fused" || sw.Engine != "switch" {
			t.Fatalf("row pair %d: engines %q/%q", i, fused.Engine, sw.Engine)
		}
		if fused.Workload != sw.Workload {
			t.Fatalf("row pair %d: workload mismatch %q vs %q", i, fused.Workload, sw.Workload)
		}
		// Both engines execute the identical instruction stream.
		if fused.Steps != sw.Steps {
			t.Errorf("%s: steps diverge: fused %d vs switch %d", fused.Workload, fused.Steps, sw.Steps)
		}
		if fused.Steps <= 0 || fused.WallNs <= 0 || sw.WallNs <= 0 {
			t.Errorf("%s: non-positive steps/wall time", fused.Workload)
		}
		if fused.Speedup <= 0 {
			t.Errorf("%s: fused row missing speedup", fused.Workload)
		}
		if sw.Speedup != 0 {
			t.Errorf("%s: switch row must not carry a speedup", sw.Workload)
		}
	}
	if g := VMPerfGeomeanSpeedup(rows); g <= 0 {
		t.Errorf("geomean = %v, want > 0", g)
	}
	out := FormatVMPerf(rows)
	for _, want := range []string{"jess", "jbb", "fused", "switch", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
}

func TestVMPerfGeomeanEmpty(t *testing.T) {
	if g := VMPerfGeomeanSpeedup(nil); g != 0 {
		t.Errorf("geomean of no rows = %v, want 0", g)
	}
	if g := VMPerfGeomeanSpeedup([]VMPerfRow{{Engine: "switch"}}); g != 0 {
		t.Errorf("geomean with no fused rows = %v, want 0", g)
	}
}
