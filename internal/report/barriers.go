package report

import (
	"fmt"
	"strings"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// BarrierRow is one (workload, flavor) cell of the cross-flavor barrier
// matrix: how much of the analysis's elision the flavor can use, what
// the kept barriers cost end-to-end, and the insertion/deletion traffic
// it generated under its natural collector.
type BarrierRow struct {
	Workload string `json:"workload"`
	Flavor   string `json:"flavor"`
	GC       string `json:"gc"`
	// StaticKept/StaticDiscarded split the analysis's static verdicts by
	// the flavor's soundness predicate (discarded sites keep their full
	// barrier).
	StaticKept      int `json:"static_kept"`
	StaticDiscarded int `json:"static_discarded"`
	// Execs counts dynamic barrier-site executions; the Pct columns are
	// shares of Execs removed per elision kind (post-projection).
	Execs         uint64  `json:"execs"`
	ElimPct       float64 `json:"elim_pct"`
	PreNullPct    float64 `json:"pre_null_pct"`
	NullOrSamePct float64 `json:"null_or_same_pct"`
	RearrangePct  float64 `json:"rearrange_pct"`
	// Logged counts deletion-side (pre-value) log entries, Shaded
	// insertion-side (new-value) shade events, Cards dirtied cards.
	Logged uint64 `json:"logged"`
	Shaded uint64 `json:"shaded"`
	Cards  uint64 `json:"cards_dirtied,omitempty"`
	// BarrierCost is cost-model units spent in barriers; Relative is
	// throughput (steps per total cost) against the no-barrier baseline.
	BarrierCost uint64  `json:"barrier_cost"`
	TotalCost   uint64  `json:"total_cost"`
	Relative    float64 `json:"relative"`
}

// barrierMatrixFlavors pairs every flavor with its natural collector:
// the deletion-side and hybrid flavors uphold the SATB snapshot, the
// card flavor serves the incremental-update marker, and the no-barrier
// baseline runs uncollected (any marker would be unsound without a
// barrier).
func barrierMatrixFlavors() []struct {
	Mode satb.BarrierMode
	GC   vm.GCKind
} {
	return []struct {
		Mode satb.BarrierMode
		GC   vm.GCKind
	}{
		{satb.ModeNoBarrier, vm.GCNone},
		{satb.ModeConditional, vm.GCSATB},
		{satb.ModeAlwaysLog, vm.GCSATB},
		{satb.ModeYuasa, vm.GCSATB},
		{satb.ModeDijkstra, vm.GCSATB},
		{satb.ModeHybrid, vm.GCSATB},
		{satb.ModeCardMarking, vm.GCIncremental},
	}
}

func gcName(k vm.GCKind) string {
	switch k {
	case vm.GCSATB:
		return "satb"
	case vm.GCIncremental:
		return "inc"
	default:
		return "none"
	}
}

// Barriers measures the cross-flavor matrix (the ISSUE's Table-1
// analogue): every workload × every barrier flavor, compiled once per
// workload with the full analysis (mode A + null-or-same + array
// rearrangement) and executed under the flavor's natural collector.
// Verdict projection happens in the VM, so one analysis serves all
// flavors; the snapshot invariant is verified on every snapshot-sound
// flavor.
func Barriers(inlineLimit int) ([]BarrierRow, error) {
	var rows []BarrierRow
	opts := core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true}
	for _, w := range workloads.All() {
		base := 0.0
		for _, fc := range barrierMatrixFlavors() {
			spec := fc.Mode.Spec()
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: inlineLimit,
				Analysis:    withBudget(opts),
				Runtime: vm.Config{
					Barrier:            fc.Mode,
					GC:                 fc.GC,
					TriggerEveryAllocs: 200,
					CheckInvariant:     true, // armed only on snapshot-sound flavors
				},
			})
			if err != nil {
				return nil, fmt.Errorf("barriers %s/%s: %w", w.Name, spec.Name, err)
			}
			res, err := b.Exec()
			if err != nil {
				return nil, fmt.Errorf("barriers %s/%s: %w", w.Name, spec.Name, err)
			}
			s := res.Counters.Summarize()
			if len(s.UnsoundSites) > 0 {
				return nil, fmt.Errorf("barriers %s/%s: unsound elisions %v", w.Name, spec.Name, s.UnsoundSites)
			}
			fv := core.FlavorSiteVerdicts(b.Program, spec)
			tp := 1000 * float64(res.Steps) / float64(res.TotalCost())
			if fc.Mode == satb.ModeNoBarrier {
				base = tp
			}
			elided := s.ElidedExecs + s.NullOrSameExecs + s.RearrangeExecs
			rows = append(rows, BarrierRow{
				Workload:        w.Name,
				Flavor:          spec.Name,
				GC:              gcName(fc.GC),
				StaticKept:      fv.Kept,
				StaticDiscarded: fv.Discarded,
				Execs:           s.TotalExecs,
				ElimPct:         pct(elided, s.TotalExecs),
				PreNullPct:      pct(s.ElidedExecs, s.TotalExecs),
				NullOrSamePct:   pct(s.NullOrSameExecs, s.TotalExecs),
				RearrangePct:    pct(s.RearrangeExecs, s.TotalExecs),
				Logged:          res.Counters.Logged,
				Shaded:          res.Counters.Shaded,
				Cards:           res.Counters.CardsDirtied,
				BarrierCost:     res.Counters.Cost,
				TotalCost:       res.TotalCost(),
				Relative:        tp / base,
			})
		}
	}
	return rows, nil
}

// FormatBarriers renders the cross-flavor matrix grouped by workload.
func FormatBarriers(rows []BarrierRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Barrier-flavor matrix: elimination and end-to-end cost per flavor\n")
	fmt.Fprintf(&b, "%-7s %-12s %-5s %10s %7s %7s %7s %7s %9s %9s %8s %11s %9s\n",
		"bench", "flavor", "gc", "execs", "% elim", "% pnull", "% nos", "% rearr",
		"logged", "shaded", "cards", "cost", "relative")
	last := ""
	for _, r := range rows {
		if last != "" && r.Workload != last {
			fmt.Fprintln(&b)
		}
		last = r.Workload
		fmt.Fprintf(&b, "%-7s %-12s %-5s %10d %7.1f %7.1f %7.1f %7.1f %9d %9d %8d %11d %9.3f\n",
			r.Workload, r.Flavor, r.GC, r.Execs,
			r.ElimPct, r.PreNullPct, r.NullOrSamePct, r.RearrangePct,
			r.Logged, r.Shaded, r.Cards, r.BarrierCost, r.Relative)
	}
	return b.String()
}
