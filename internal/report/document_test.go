package report

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"satbelim/internal/obs"
	"satbelim/internal/pipeline"
	"satbelim/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleDocument builds a fully-populated Document with fixed values, so
// the golden pins the entire serialized schema (key names, nesting,
// omitempty behaviour) independent of wall-clock or machine.
func sampleDocument() *Document {
	doc := NewDocument("satbbench")
	doc.InlineLimit = 100
	doc.Workers = 4
	doc.Table1 = []Table1Row{{
		Name: "jbb", Total: 1000, ElimPct: 52.5, PotPct: 60.0,
		FieldShare: 70.0, ArrayShare: 30.0, FieldElim: 55.0, ArrayElim: 45.0,
		Paper: workloads.PaperRow{},
	}}
	doc.Barriers = []BarrierRow{{
		Workload: "jbb", Flavor: "hybrid", GC: "satb",
		StaticKept: 14, StaticDiscarded: 4,
		Execs: 1000, ElimPct: 48.0, PreNullPct: 40.0,
		NullOrSamePct: 8.0, RearrangePct: 0.0,
		Logged: 120, Shaded: 95, Cards: 0,
		BarrierCost: 4200, TotalCost: 16545, Relative: 0.985,
	}}
	doc.Run = &RunSummary{
		Workload: "jbb", Engine: "fused", Flavor: "hybrid", Output: []int64{42},
		Steps: 12345, BarrierCost: 678, TotalCost: 13023,
		Logged: 90, Shaded: 35, CardsDirtied: 0, StaticExecs: 12,
		BarrierExecs: 400, ElidedExecs: 210, ElimPct: 52.5,
		Cycles: 3, FinalPauseWork: 7, Allocated: 500, Swept: 450,
		ElisionChecks: 210,
	}
	doc.Compile = &CompileSummary{
		Workload: "jbb", InlineLimit: 100, BytecodeBytes: 2048,
		InlinedCalls: 17, CompiledCodeSize: 4096,
		FrontendNs: 1000, InlineNs: 2000, VerifyNs: 3000, AnalysisNs: 4000,
		CacheHit: true, FieldSites: 20, ArraySites: 10,
		FieldElided: 12, ArrayElided: 4, NullOrSame: 2,
		Degraded: []string{"A.slow (deadline)"},
	}
	doc.Campaign = &CampaignSummary{
		BaseSeed: 0, SeedsRun: 250, Checks: 1250,
		Properties: []string{"engine-invariance", "inline-soundness"},
		Failures: []CampaignFailure{{
			Seed: 17, Property: "inline-soundness",
			Message:    "limit 50: unsound sites [Main.main:12]",
			ReproLines: 9, ShrinkChecks: 41,
			Repro:     "class Main { static void main() { print(0); } }",
			ReproFile: "repros/seed17-inline-soundness.mj",
		}},
		ElapsedNs: 6000000000,
	}
	doc.Metrics = &obs.Metrics{
		Counters: map[string]int64{
			"analysis.methods":    9,
			"pipeline.cache.hits": 1,
			"vm.steps":            12345,
		},
		Spans: []obs.SpanStat{
			{Cat: "pipeline", Name: "analyze", Count: 1, TotalNS: 5000000, MaxNS: 5000000},
			{Cat: "vm", Name: "run", Count: 1, TotalNS: 9000000, MaxNS: 9000000},
		},
	}
	doc.BuildCache = &pipeline.CacheStats{
		Hits: 1, Misses: 2, Entries: 2,
		Evictions: 1, Coalesced: 3, FaultDrops: 1,
	}
	doc.Satbd = &Satbd{
		Request: &SatbdRequest{
			ID: "r000007", Endpoint: "run", Outcome: "degraded",
			DeadlineMS: 2000, Tier: 1,
			MaxBlockVisits: 100000, MaxStateSize: 524288, MaxSteps: 10000000,
			QueueDepth: 3, QueueWaitNS: 150000, ElapsedNS: 4200000,
		},
		Stats: &SatbdStats{
			UptimeNS: 60000000000, Requests: 1000, OK: 900, Degraded: 40,
			Shed: 30, Timeouts: 20, Errors: 8, Panics: 2,
			Inflight: 4, Queued: 2, QueuedPeak: 12,
			Workers: 4, QueueDepth: 16,
			Logged: 5100, Shaded: 2300,
		},
		Load: &SatbdLoad{
			Programs: 200, Concurrency: 8, Seed: 7, Sent: 200,
			ByOutcome:       map[string]int{"degraded": 12, "ok": 180, "shed": 8},
			ByStatus:        map[string]int{"200": 192, "429": 8},
			OutputsVerified: 60,
			ElapsedNS:       9000000000,
		},
	}
	doc.Methods = []MethodSummary{
		{Method: "A.main", FieldSites: 20, ArraySites: 10, FieldElided: 12,
			ArrayElided: 4, NullOrSame: 2, BlockVisits: 64},
		{Method: "A.slow", FieldSites: 3, BlockVisits: 128, Degraded: "deadline"},
	}
	return doc
}

// TestDocumentGolden pins the versioned JSON schema: any change to field
// names, nesting, or omitempty behaviour shows up as a golden diff and
// must come with a SchemaVersion bump if it breaks consumers.
func TestDocumentGolden(t *testing.T) {
	data, err := json.MarshalIndent(sampleDocument(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')

	golden := filepath.Join("testdata", "document.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(want) != string(data) {
		t.Errorf("document schema drifted from golden.\ngot:\n%s\nwant:\n%s\n(run with -update after bumping SchemaVersion if intended)", data, want)
	}
}

// TestDocumentSchemaVersion checks the version key is spelled exactly
// `schemaVersion` and always serialized, and that empty sections vanish.
func TestDocumentSchemaVersion(t *testing.T) {
	data, err := json.Marshal(NewDocument("satbc"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if v, ok := m["schemaVersion"]; !ok || v != float64(SchemaVersion) {
		t.Errorf("schemaVersion = %v, want %d", v, SchemaVersion)
	}
	if m["tool"] != "satbc" {
		t.Errorf("tool = %v, want satbc", m["tool"])
	}
	if len(m) != 2 {
		t.Errorf("empty document must serialize only schemaVersion+tool, got keys %v", m)
	}
}

// TestFormatObsSummary sanity-checks the human-readable table.
func TestFormatObsSummary(t *testing.T) {
	doc := sampleDocument()
	out := FormatObsSummary(doc.Metrics)
	for _, want := range []string{"Observability summary", "analyze", "vm.steps", "analysis.methods"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Per-site counters are suppressed from the table.
	doc.Metrics.Counters["vm.site.A.main.3.execs"] = 5
	out = FormatObsSummary(doc.Metrics)
	if strings.Contains(out, "vm.site.") {
		t.Errorf("per-site counter leaked into the summary table:\n%s", out)
	}
}
