package report

import "testing"

func TestShowAll(t *testing.T) {
	r1, err := Table1(100)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable1(r1))
	r2, err := Table2(100)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatTable2(r2))
	r3, err := Figure3(100)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatFigure3(r3))
	r4, err := NullOrSame(100)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatNullOrSame(r4))
}
