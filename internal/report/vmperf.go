package report

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// VMPerfRow is one workload × engine point of the VM execution-engine
// performance snapshot: wall time, instruction throughput, Go heap
// allocations per run, and — for the compiled tier — the tier-up /
// deopt / segment-execution counters of the timed run. Fused and
// compiled rows carry the speedup over the switch interpreter on the
// same build; compiled rows additionally carry the compiled-over-fused
// ratio (the tier's headline number).
type VMPerfRow struct {
	Workload          string  `json:"workload"`
	Engine            string  `json:"engine"`
	Steps             int64   `json:"steps"`
	WallNs            int64   `json:"wall_ns"`
	InstrPerSec       float64 `json:"instr_per_sec"`
	NsPerInstr        float64 `json:"ns_per_instr"`
	AllocsPerOp       uint64  `json:"allocs_per_op"`
	Speedup           float64 `json:"speedup,omitempty"`
	CompiledOverFused float64 `json:"compiled_over_fused,omitempty"`
	TierUps           int     `json:"tier_ups,omitempty"`
	TierDeopts        int64   `json:"tier_deopts,omitempty"`
	TierSegExecs      int64   `json:"tier_seg_execs,omitempty"`
}

// vmPerfReps is the number of timed repetitions per engine; the fastest
// is reported (standard practice for wall-clock microbenchmarks).
// Repetitions are interleaved across engines (rep-major order) so
// machine-load drift hits all engines alike instead of biasing whichever
// ran last.
const vmPerfReps = 7

// vmPerfQuantum is the scheduler quantum used for the timed runs. The
// perf snapshot measures steady-state engine throughput, so the quantum
// is set well above the scheduling default: at the default (64) the
// measurement is dominated by per-rotation driver work that all engines
// share, not by dispatch quality. Parity suites exercise the small,
// adversarial quanta; elision counters are engine-invariant at any
// quantum (the differential tests assert bit-identical counters).
const vmPerfQuantum = 8192

var vmPerfEngines = []vm.Engine{vm.EngineCompiled, vm.EngineFused, vm.EngineSwitch}

// VMPerf compiles every workload in mode A and times full runs per
// engine (including VM construction, so the fused engine's decode cost
// and the compiled tier's translation cost are charged against them).
// All engines execute the identical instruction stream, so steps match
// and the wall-time ratios are pure dispatch-efficiency comparisons.
func VMPerf(inlineLimit int) ([]VMPerfRow, error) {
	var rows []VMPerfRow
	for _, w := range workloads.All() {
		b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: inlineLimit,
			Analysis:    withBudget(core.Options{Mode: core.ModeFieldArray}),
		})
		if err != nil {
			return nil, fmt.Errorf("vmperf %s: %w", w.Name, err)
		}
		trio := make([]VMPerfRow, len(vmPerfEngines))
		best := make([]time.Duration, len(vmPerfEngines))
		for rep := 0; rep < vmPerfReps; rep++ {
			for i, eng := range vmPerfEngines {
				cfg := vm.Config{Barrier: satb.ModeConditional, Engine: eng, Quantum: vmPerfQuantum}
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				t0 := time.Now()
				res, err := b.Run(cfg)
				d := time.Since(t0)
				runtime.ReadMemStats(&m1)
				if err != nil {
					return nil, fmt.Errorf("vmperf %s/%v: %w", w.Name, eng, err)
				}
				if rep == 0 || d < best[i] {
					best[i] = d
					trio[i] = VMPerfRow{
						Workload:     w.Name,
						Engine:       eng.String(),
						Steps:        res.Steps,
						WallNs:       d.Nanoseconds(),
						AllocsPerOp:  m1.Mallocs - m0.Mallocs,
						TierUps:      res.TierUps,
						TierDeopts:   res.TierDeopts,
						TierSegExecs: res.TierSegExecs,
					}
				}
			}
		}
		swWall := trio[len(trio)-1].WallNs
		for i := range trio {
			r := &trio[i]
			if r.WallNs > 0 {
				r.InstrPerSec = float64(r.Steps) / (float64(r.WallNs) / 1e9)
				r.NsPerInstr = float64(r.WallNs) / float64(r.Steps)
				if r.Engine != "switch" {
					r.Speedup = float64(swWall) / float64(r.WallNs)
				}
			}
		}
		if fusedWall := trio[1].WallNs; fusedWall > 0 && trio[0].WallNs > 0 {
			trio[0].CompiledOverFused = float64(fusedWall) / float64(trio[0].WallNs)
		}
		rows = append(rows, trio...)
	}
	return rows, nil
}

// VMPerfGeomeanSpeedup returns the geometric-mean fused-over-switch
// speedup across the rows (0 when no fused rows are present).
func VMPerfGeomeanSpeedup(rows []VMPerfRow) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		if r.Engine == "fused" && r.Speedup > 0 {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// VMPerfGeomeanCompiledOverFused returns the geometric-mean compiled-
// over-fused speedup across the rows (0 when no compiled rows are
// present).
func VMPerfGeomeanCompiledOverFused(rows []VMPerfRow) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		if r.CompiledOverFused > 0 {
			logSum += math.Log(r.CompiledOverFused)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// FormatVMPerf renders the execution-engine performance rows.
func FormatVMPerf(rows []VMPerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM execution-engine performance (mode A, conditional barriers)\n")
	fmt.Fprintf(&b, "%-7s %-9s %12s %12s %12s %10s %8s %8s %14s\n",
		"bench", "engine", "steps", "Minstr/s", "ns/instr", "allocs/op", "speedup", "vs fused", "tier up/de/seg")
	for _, r := range rows {
		speedup, vsFused, tier := "", "", ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.CompiledOverFused > 0 {
			vsFused = fmt.Sprintf("%.2fx", r.CompiledOverFused)
		}
		if r.Engine == "compiled" {
			tier = fmt.Sprintf("%d/%d/%d", r.TierUps, r.TierDeopts, r.TierSegExecs)
		}
		fmt.Fprintf(&b, "%-7s %-9s %12d %12.2f %12.2f %10d %8s %8s %14s\n",
			r.Workload, r.Engine, r.Steps, r.InstrPerSec/1e6, r.NsPerInstr,
			r.AllocsPerOp, speedup, vsFused, tier)
	}
	if g := VMPerfGeomeanSpeedup(rows); g > 0 {
		fmt.Fprintf(&b, "geomean fused speedup: %.2fx\n", g)
	}
	if g := VMPerfGeomeanCompiledOverFused(rows); g > 0 {
		fmt.Fprintf(&b, "geomean compiled over fused: %.2fx\n", g)
	}
	return b.String()
}
