package report

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// VMPerfRow is one workload × engine point of the VM execution-engine
// performance snapshot: wall time, instruction throughput, and Go heap
// allocations per run. Fused rows additionally carry the speedup over
// the switch interpreter on the same build (the BENCH_*.json trajectory's
// VM-throughput metric).
type VMPerfRow struct {
	Workload    string  `json:"workload"`
	Engine      string  `json:"engine"`
	Steps       int64   `json:"steps"`
	WallNs      int64   `json:"wall_ns"`
	InstrPerSec float64 `json:"instr_per_sec"`
	NsPerInstr  float64 `json:"ns_per_instr"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	Speedup     float64 `json:"speedup,omitempty"`
}

// vmPerfReps is the number of timed repetitions per engine; the fastest
// is reported (standard practice for wall-clock microbenchmarks).
const vmPerfReps = 5

// VMPerf compiles every workload in mode A and times one full run per
// engine (including VM construction, so the fused engine's decode cost is
// charged against it). Both engines execute the identical instruction
// stream, so steps match and the wall-time ratio is a pure dispatch-
// efficiency comparison.
func VMPerf(inlineLimit int) ([]VMPerfRow, error) {
	var rows []VMPerfRow
	for _, w := range workloads.All() {
		b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: inlineLimit,
			Analysis:    withBudget(core.Options{Mode: core.ModeFieldArray}),
		})
		if err != nil {
			return nil, fmt.Errorf("vmperf %s: %w", w.Name, err)
		}
		var pair [2]VMPerfRow
		for i, eng := range []vm.Engine{vm.EngineFused, vm.EngineSwitch} {
			cfg := vm.Config{Barrier: satb.ModeConditional, Engine: eng}
			best := time.Duration(0)
			var allocs uint64
			var steps int64
			for rep := 0; rep < vmPerfReps; rep++ {
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				t0 := time.Now()
				res, err := b.Run(cfg)
				d := time.Since(t0)
				runtime.ReadMemStats(&m1)
				if err != nil {
					return nil, fmt.Errorf("vmperf %s/%v: %w", w.Name, eng, err)
				}
				steps = res.Steps
				if rep == 0 || d < best {
					best = d
					allocs = m1.Mallocs - m0.Mallocs
				}
			}
			row := VMPerfRow{
				Workload:    w.Name,
				Engine:      eng.String(),
				Steps:       steps,
				WallNs:      best.Nanoseconds(),
				AllocsPerOp: allocs,
			}
			if best > 0 {
				row.InstrPerSec = float64(steps) / best.Seconds()
				row.NsPerInstr = float64(best.Nanoseconds()) / float64(steps)
			}
			pair[i] = row
		}
		if pair[0].WallNs > 0 {
			pair[0].Speedup = float64(pair[1].WallNs) / float64(pair[0].WallNs)
		}
		rows = append(rows, pair[0], pair[1])
	}
	return rows, nil
}

// VMPerfGeomeanSpeedup returns the geometric-mean fused-over-switch
// speedup across the rows (0 when no fused rows are present).
func VMPerfGeomeanSpeedup(rows []VMPerfRow) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		if r.Speedup > 0 {
			logSum += math.Log(r.Speedup)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// FormatVMPerf renders the execution-engine performance rows.
func FormatVMPerf(rows []VMPerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "VM execution-engine performance (mode A, conditional barriers)\n")
	fmt.Fprintf(&b, "%-7s %-7s %12s %12s %12s %10s %8s\n",
		"bench", "engine", "steps", "Minstr/s", "ns/instr", "allocs/op", "speedup")
	for _, r := range rows {
		speedup := ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(&b, "%-7s %-7s %12d %12.2f %12.2f %10d %8s\n",
			r.Workload, r.Engine, r.Steps, r.InstrPerSec/1e6, r.NsPerInstr,
			r.AllocsPerOp, speedup)
	}
	if g := VMPerfGeomeanSpeedup(rows); g > 0 {
		fmt.Fprintf(&b, "geomean fused speedup: %.2fx\n", g)
	}
	return b.String()
}
