package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"satbelim/internal/obs"
	"satbelim/internal/pipeline"
	"satbelim/internal/vm"
)

// SchemaVersion is the version of the Document JSON schema. Bump it on
// any breaking change to the document shape; the golden test in
// document_test.go pins the current shape.
const SchemaVersion = 1

// Document is the one versioned JSON report schema every CLI emits:
// satbbench -json writes experiment sections, satbvm -json writes a Run
// section, satbc -json writes a Compile section, and the -metrics export
// of all three writes a Metrics section. Sections are optional; the
// schemaVersion and tool fields are always present.
type Document struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`

	InlineLimit int `json:"inline_limit,omitempty"`
	Workers     int `json:"workers,omitempty"`

	// Experiment sections (satbbench).
	Perf            []PerfRow       `json:"perf,omitempty"`
	Table1          []Table1Row     `json:"table1,omitempty"`
	Table2          []Table2Row     `json:"table2,omitempty"`
	Figure2         []Fig2Point     `json:"figure2,omitempty"`
	Figure3         []Fig3Row       `json:"figure3,omitempty"`
	NullOrSame      []NullOrSameRow `json:"null_or_same,omitempty"`
	Rearrange       []RearrangeRow  `json:"rearrange,omitempty"`
	Interprocedural []InterprocRow  `json:"interprocedural,omitempty"`
	Oracle          []OracleRow     `json:"oracle,omitempty"`
	VMPerf          []VMPerfRow     `json:"vmperf,omitempty"`
	// VMPerfGeomeanSpeedup is the geometric-mean fused-over-switch VM
	// speedup across workloads (present with the vmperf section).
	VMPerfGeomeanSpeedup float64 `json:"vmperf_geomean_speedup,omitempty"`

	// Run is one VM execution's summary (satbvm).
	Run *RunSummary `json:"run,omitempty"`
	// Compile is one compilation's summary (satbc).
	Compile *CompileSummary `json:"compile,omitempty"`
	// Campaign is one metamorphic campaign's outcome (satbtest).
	Campaign *CampaignSummary `json:"campaign,omitempty"`

	// Metrics is the observability rollup (-metrics on any tool).
	Metrics *obs.Metrics `json:"metrics,omitempty"`
	// BuildCache reports build-cache effectiveness over the whole run.
	BuildCache *pipeline.CacheStats `json:"build_cache,omitempty"`
}

// NewDocument returns a Document stamped with the schema version and the
// emitting tool's name.
func NewDocument(tool string) *Document {
	return &Document{SchemaVersion: SchemaVersion, Tool: tool}
}

// RunSummary is one VM run in Document form.
type RunSummary struct {
	Workload       string  `json:"workload"`
	Engine         string  `json:"engine"`
	Output         []int64 `json:"output"`
	Steps          int64   `json:"steps"`
	BarrierCost    uint64  `json:"barrier_cost"`
	TotalCost      uint64  `json:"total_cost"`
	Logged         uint64  `json:"logged"`
	CardsDirtied   uint64  `json:"cards_dirtied,omitempty"`
	StaticExecs    uint64  `json:"static_execs"`
	BarrierExecs   uint64  `json:"barrier_execs"`
	ElidedExecs    uint64  `json:"elided_execs"`
	ElimPct        float64 `json:"elim_pct"`
	Cycles         int     `json:"cycles"`
	FinalPauseWork int     `json:"final_pause_work"`
	Allocated      int64   `json:"allocated"`
	Swept          int     `json:"swept"`
	ElisionChecks  int64   `json:"elision_checks,omitempty"`
}

// NewRunSummary converts a VM result into its Document form.
func NewRunSummary(workload string, res *vm.Result) *RunSummary {
	s := res.Counters.Summarize()
	return &RunSummary{
		Workload:       workload,
		Engine:         res.Engine,
		Output:         res.Output,
		Steps:          res.Steps,
		BarrierCost:    res.Counters.Cost,
		TotalCost:      res.TotalCost(),
		Logged:         res.Counters.Logged,
		CardsDirtied:   res.Counters.CardsDirtied,
		StaticExecs:    res.Counters.StaticExecs,
		BarrierExecs:   s.TotalExecs,
		ElidedExecs:    s.ElidedExecs,
		ElimPct:        pct(s.ElidedExecs, s.TotalExecs),
		Cycles:         res.Cycles,
		FinalPauseWork: res.FinalPauseWork,
		Allocated:      res.Allocated,
		Swept:          res.Swept,
		ElisionChecks:  res.ElisionChecks,
	}
}

// CampaignSummary is a satbtest metamorphic campaign in Document form.
// The types are plain data (no metatest import) so the document schema
// stays self-contained; cmd/satbtest converts.
type CampaignSummary struct {
	BaseSeed        int64             `json:"base_seed"`
	SeedsRun        int               `json:"seeds_run"`
	Checks          int               `json:"checks"`
	Properties      []string          `json:"properties"`
	Failures        []CampaignFailure `json:"failures,omitempty"`
	BudgetExhausted bool              `json:"budget_exhausted,omitempty"`
	ElapsedNs       int64             `json:"elapsed_ns"`
}

// CampaignFailure is one shrunk campaign counterexample. ReproFile names
// the artifact written under -out (empty when -out was not given); the
// full repro source is always inline.
type CampaignFailure struct {
	Seed         int64  `json:"seed"`
	Property     string `json:"property"`
	Message      string `json:"message"`
	ReproLines   int    `json:"repro_lines"`
	ShrinkChecks int    `json:"shrink_checks"`
	Repro        string `json:"repro"`
	ReproFile    string `json:"repro_file,omitempty"`
}

// CompileSummary is one compilation in Document form.
type CompileSummary struct {
	Workload         string   `json:"workload"`
	InlineLimit      int      `json:"inline_limit"`
	BytecodeBytes    int      `json:"bytecode_bytes"`
	InlinedCalls     int      `json:"inlined_calls"`
	CompiledCodeSize int      `json:"compiled_code_size"`
	FrontendNs       int64    `json:"frontend_ns"`
	InlineNs         int64    `json:"inline_ns"`
	VerifyNs         int64    `json:"verify_ns"`
	AnalysisNs       int64    `json:"analysis_ns"`
	CacheHit         bool     `json:"cache_hit"`
	FieldSites       int      `json:"field_sites"`
	ArraySites       int      `json:"array_sites"`
	FieldElided      int      `json:"field_elided"`
	ArrayElided      int      `json:"array_elided"`
	NullOrSame       int      `json:"null_or_same,omitempty"`
	Degraded         []string `json:"degraded,omitempty"`
}

// NewCompileSummary converts a pipeline build into its Document form.
func NewCompileSummary(b *pipeline.Build) *CompileSummary {
	c := &CompileSummary{
		Workload:         b.Name,
		InlineLimit:      b.Options.InlineLimit,
		BytecodeBytes:    b.BytecodeBytes,
		InlinedCalls:     b.InlinedCalls,
		CompiledCodeSize: b.CompiledCodeSize(),
		FrontendNs:       b.FrontendTime.Nanoseconds(),
		InlineNs:         b.InlineTime.Nanoseconds(),
		VerifyNs:         b.VerifyTime.Nanoseconds(),
		AnalysisNs:       b.AnalysisTime.Nanoseconds(),
		CacheHit:         b.CacheHit,
	}
	if b.Report != nil {
		c.FieldSites, c.ArraySites, c.FieldElided, c.ArrayElided, c.NullOrSame = b.Report.Totals()
		for _, m := range b.Report.Degraded() {
			c.Degraded = append(c.Degraded, fmt.Sprintf("%s (%s)", m.Method.QualifiedName(), m.Degraded))
		}
	}
	return c
}

// FormatObsSummary renders the observability metrics as the human-
// readable summary table: span aggregates first (sorted by total time,
// descending), then counters (sorted by name).
func FormatObsSummary(m *obs.Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability summary\n")
	if len(m.Spans) > 0 {
		fmt.Fprintf(&b, "%-12s %-28s %8s %12s %12s\n", "category", "span", "count", "total", "max")
		spans := make([]obs.SpanStat, len(m.Spans))
		copy(spans, m.Spans)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].TotalNS > spans[j].TotalNS })
		const maxRows = 20
		for i, s := range spans {
			if i == maxRows {
				fmt.Fprintf(&b, "  ... %d more span groups (see -metrics JSON)\n", len(spans)-maxRows)
				break
			}
			fmt.Fprintf(&b, "%-12s %-28s %8d %12v %12v\n", s.Cat, s.Name, s.Count,
				time.Duration(s.TotalNS).Round(time.Microsecond),
				time.Duration(s.MaxNS).Round(time.Microsecond))
		}
	}
	if len(m.Counters) > 0 {
		names := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			// Per-site counters are high-cardinality; the table shows
			// rollups only, the JSON document has everything.
			if strings.HasPrefix(k, "vm.site.") {
				continue
			}
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%-44s %14s\n", "counter", "value")
		for _, k := range names {
			fmt.Fprintf(&b, "%-44s %14d\n", k, m.Counters[k])
		}
	}
	return b.String()
}
