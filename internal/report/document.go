package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/obs"
	"satbelim/internal/pipeline"
	"satbelim/internal/vm"
)

// SchemaVersion is the version of the Document JSON schema. Bump it on
// any breaking change to the document shape; the golden test in
// document_test.go pins the current shape.
const SchemaVersion = 1

// Document is the one versioned JSON report schema every CLI emits:
// satbbench -json writes experiment sections, satbvm -json writes a Run
// section, satbc -json writes a Compile section, and the -metrics export
// of all three writes a Metrics section. Sections are optional; the
// schemaVersion and tool fields are always present.
type Document struct {
	SchemaVersion int    `json:"schemaVersion"`
	Tool          string `json:"tool"`

	InlineLimit int `json:"inline_limit,omitempty"`
	Workers     int `json:"workers,omitempty"`

	// Experiment sections (satbbench).
	Perf       []PerfRow       `json:"perf,omitempty"`
	Table1     []Table1Row     `json:"table1,omitempty"`
	Table2     []Table2Row     `json:"table2,omitempty"`
	Figure2    []Fig2Point     `json:"figure2,omitempty"`
	Figure3    []Fig3Row       `json:"figure3,omitempty"`
	NullOrSame []NullOrSameRow `json:"null_or_same,omitempty"`
	Rearrange  []RearrangeRow  `json:"rearrange,omitempty"`
	// Barriers is the cross-flavor barrier matrix (satbbench -barriers;
	// additive to schema v1).
	Barriers        []BarrierRow   `json:"barriers,omitempty"`
	Interprocedural []InterprocRow `json:"interprocedural,omitempty"`
	Oracle          []OracleRow    `json:"oracle,omitempty"`
	VMPerf          []VMPerfRow    `json:"vmperf,omitempty"`
	// VMPerfGeomeanSpeedup is the geometric-mean fused-over-switch VM
	// speedup across workloads (present with the vmperf section).
	VMPerfGeomeanSpeedup float64 `json:"vmperf_geomean_speedup,omitempty"`
	// VMPerfGeomeanCompiledOverFused is the geometric-mean compiled-tier
	// speedup over the fused engine (present with the vmperf section).
	VMPerfGeomeanCompiledOverFused float64 `json:"vmperf_geomean_compiled_over_fused,omitempty"`

	// Run is one VM execution's summary (satbvm).
	Run *RunSummary `json:"run,omitempty"`
	// Compile is one compilation's summary (satbc).
	Compile *CompileSummary `json:"compile,omitempty"`
	// Campaign is one metamorphic campaign's outcome (satbtest).
	Campaign *CampaignSummary `json:"campaign,omitempty"`

	// Satbd is the daemon section (satbd): per-response request
	// metadata, daemon service counters, and load-test results.
	Satbd *Satbd `json:"satbd,omitempty"`
	// Methods is per-method analysis detail (satbd /analyze).
	Methods []MethodSummary `json:"methods,omitempty"`

	// Metrics is the observability rollup (-metrics on any tool).
	Metrics *obs.Metrics `json:"metrics,omitempty"`
	// BuildCache reports build-cache effectiveness over the whole run.
	BuildCache *pipeline.CacheStats `json:"build_cache,omitempty"`
}

// NewDocument returns a Document stamped with the schema version and the
// emitting tool's name.
func NewDocument(tool string) *Document {
	return &Document{SchemaVersion: SchemaVersion, Tool: tool}
}

// RunSummary is one VM run in Document form.
type RunSummary struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	// Flavor is the barrier flavor the run executed with ("conditional",
	// "yuasa", "dijkstra", ...; additive to schema v1).
	Flavor      string  `json:"barrier_flavor,omitempty"`
	Output      []int64 `json:"output"`
	Steps       int64   `json:"steps"`
	BarrierCost uint64  `json:"barrier_cost"`
	TotalCost   uint64  `json:"total_cost"`
	Logged      uint64  `json:"logged"`
	// Shaded counts insertion-side shade events (new-value shading by
	// the dijkstra and hybrid flavors; additive to schema v1).
	Shaded         uint64  `json:"shaded,omitempty"`
	CardsDirtied   uint64  `json:"cards_dirtied,omitempty"`
	StaticExecs    uint64  `json:"static_execs"`
	BarrierExecs   uint64  `json:"barrier_execs"`
	ElidedExecs    uint64  `json:"elided_execs"`
	ElimPct        float64 `json:"elim_pct"`
	Cycles         int     `json:"cycles"`
	FinalPauseWork int     `json:"final_pause_work"`
	Allocated      int64   `json:"allocated"`
	Swept          int     `json:"swept"`
	ElisionChecks  int64   `json:"elision_checks,omitempty"`
	// Tier counters (compiled engine only; additive to schema v1).
	TierUps      int   `json:"tier_ups,omitempty"`
	TierDeopts   int64 `json:"tier_deopts,omitempty"`
	TierSegExecs int64 `json:"tier_seg_execs,omitempty"`
}

// NewRunSummary converts a VM result into its Document form.
func NewRunSummary(workload string, res *vm.Result) *RunSummary {
	s := res.Counters.Summarize()
	return &RunSummary{
		Workload:       workload,
		Engine:         res.Engine,
		Flavor:         res.Flavor,
		Shaded:         res.Counters.Shaded,
		Output:         res.Output,
		Steps:          res.Steps,
		BarrierCost:    res.Counters.Cost,
		TotalCost:      res.TotalCost(),
		Logged:         res.Counters.Logged,
		CardsDirtied:   res.Counters.CardsDirtied,
		StaticExecs:    res.Counters.StaticExecs,
		BarrierExecs:   s.TotalExecs,
		ElidedExecs:    s.ElidedExecs,
		ElimPct:        pct(s.ElidedExecs, s.TotalExecs),
		Cycles:         res.Cycles,
		FinalPauseWork: res.FinalPauseWork,
		Allocated:      res.Allocated,
		Swept:          res.Swept,
		ElisionChecks:  res.ElisionChecks,
		TierUps:        res.TierUps,
		TierDeopts:     res.TierDeopts,
		TierSegExecs:   res.TierSegExecs,
	}
}

// CampaignSummary is a satbtest metamorphic campaign in Document form.
// The types are plain data (no metatest import) so the document schema
// stays self-contained; cmd/satbtest converts.
type CampaignSummary struct {
	BaseSeed        int64             `json:"base_seed"`
	SeedsRun        int               `json:"seeds_run"`
	Checks          int               `json:"checks"`
	Properties      []string          `json:"properties"`
	Failures        []CampaignFailure `json:"failures,omitempty"`
	BudgetExhausted bool              `json:"budget_exhausted,omitempty"`
	ElapsedNs       int64             `json:"elapsed_ns"`
}

// CampaignFailure is one shrunk campaign counterexample. ReproFile names
// the artifact written under -out (empty when -out was not given); the
// full repro source is always inline.
type CampaignFailure struct {
	Seed         int64  `json:"seed"`
	Property     string `json:"property"`
	Message      string `json:"message"`
	ReproLines   int    `json:"repro_lines"`
	ShrinkChecks int    `json:"shrink_checks"`
	Repro        string `json:"repro"`
	ReproFile    string `json:"repro_file,omitempty"`
}

// CompileSummary is one compilation in Document form.
type CompileSummary struct {
	Workload         string   `json:"workload"`
	InlineLimit      int      `json:"inline_limit"`
	BytecodeBytes    int      `json:"bytecode_bytes"`
	InlinedCalls     int      `json:"inlined_calls"`
	CompiledCodeSize int      `json:"compiled_code_size"`
	FrontendNs       int64    `json:"frontend_ns"`
	InlineNs         int64    `json:"inline_ns"`
	VerifyNs         int64    `json:"verify_ns"`
	AnalysisNs       int64    `json:"analysis_ns"`
	CacheHit         bool     `json:"cache_hit"`
	FieldSites       int      `json:"field_sites"`
	ArraySites       int      `json:"array_sites"`
	FieldElided      int      `json:"field_elided"`
	ArrayElided      int      `json:"array_elided"`
	NullOrSame       int      `json:"null_or_same,omitempty"`
	Degraded         []string `json:"degraded,omitempty"`
}

// NewCompileSummary converts a pipeline build into its Document form.
func NewCompileSummary(b *pipeline.Build) *CompileSummary {
	c := &CompileSummary{
		Workload:         b.Name,
		InlineLimit:      b.Options.InlineLimit,
		BytecodeBytes:    b.BytecodeBytes,
		InlinedCalls:     b.InlinedCalls,
		CompiledCodeSize: b.CompiledCodeSize(),
		FrontendNs:       b.FrontendTime.Nanoseconds(),
		InlineNs:         b.InlineTime.Nanoseconds(),
		VerifyNs:         b.VerifyTime.Nanoseconds(),
		AnalysisNs:       b.AnalysisTime.Nanoseconds(),
		CacheHit:         b.CacheHit,
	}
	if b.Report != nil {
		c.FieldSites, c.ArraySites, c.FieldElided, c.ArrayElided, c.NullOrSame = b.Report.Totals()
		for _, m := range b.Report.Degraded() {
			c.Degraded = append(c.Degraded, fmt.Sprintf("%s (%s)", m.Method.QualifiedName(), m.Degraded))
		}
	}
	return c
}

// Satbd is the daemon section. Every satbd HTTP response carries a
// Document with Request set; /healthz and /metrics carry Stats; the
// load-test client emits Load. All three are additive to schema v1.
type Satbd struct {
	Request *SatbdRequest `json:"request,omitempty"`
	Stats   *SatbdStats   `json:"stats,omitempty"`
	Load    *SatbdLoad    `json:"load,omitempty"`
}

// SatbdRequest is the daemon's per-request envelope: identity, the
// admission decision that shaped the request's budgets, and the outcome
// class ("ok", "degraded", "shed", "timeout", "error", "panic"). A
// degraded outcome is always flagged here and detailed in the sibling
// Compile section — degradation is never silent.
type SatbdRequest struct {
	ID       string `json:"id"`
	Endpoint string `json:"endpoint"`
	Outcome  string `json:"outcome"`
	Error    string `json:"error,omitempty"`

	// DeadlineMS is the effective per-request deadline after clamping.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Tier is the admission tier (0 = full budgets; each step halves
	// the structural analysis budgets).
	Tier           int   `json:"tier"`
	MaxBlockVisits int   `json:"max_block_visits,omitempty"`
	MaxStateSize   int   `json:"max_state_size,omitempty"`
	MaxSteps       int64 `json:"max_steps,omitempty"`

	QueueDepth  int   `json:"queue_depth"`
	QueueWaitNS int64 `json:"queue_wait_ns"`
	ElapsedNS   int64 `json:"elapsed_ns"`
	// RetryAfterS mirrors the Retry-After header on shed responses.
	RetryAfterS int `json:"retry_after_s,omitempty"`
}

// SatbdStats is the daemon's service-level counter snapshot.
type SatbdStats struct {
	UptimeNS   int64 `json:"uptime_ns"`
	Requests   int64 `json:"requests"`
	OK         int64 `json:"ok"`
	Degraded   int64 `json:"degraded"`
	Shed       int64 `json:"shed"`
	Timeouts   int64 `json:"timeouts"`
	Errors     int64 `json:"errors"`
	Panics     int64 `json:"panics"`
	Inflight   int64 `json:"inflight"`
	Queued     int64 `json:"queued"`
	QueuedPeak int64 `json:"queued_peak"`
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	// Compiled-tier counters accumulated across /run requests that
	// executed on the compiled engine (additive to schema v1).
	TierUps      int64 `json:"tier_ups,omitempty"`
	TierDeopts   int64 `json:"tier_deopts,omitempty"`
	TierSegExecs int64 `json:"tier_seg_execs,omitempty"`
	// Barrier traffic accumulated across /run requests: deletion-side
	// log entries and insertion-side shade events (additive to schema
	// v1). Per-flavor splits are on /metrics as vm.barrier.flavor.*.
	Logged int64 `json:"logged,omitempty"`
	Shaded int64 `json:"shaded,omitempty"`
}

// SatbdLoad is one load-test run's outcome (satbd -loadtest).
type SatbdLoad struct {
	Programs    int            `json:"programs"`
	Concurrency int            `json:"concurrency"`
	Seed        int64          `json:"seed"`
	Sent        int            `json:"sent"`
	ByOutcome   map[string]int `json:"by_outcome"`
	ByStatus    map[string]int `json:"by_status"`
	// OutputsVerified counts /run responses whose program output was
	// re-executed locally and matched (the silently-wrong check).
	OutputsVerified int `json:"outputs_verified"`
	// Latency is the wall-clock latency distribution per outcome class
	// ("ok", "shed", ...; additive to schema v1).
	Latency map[string]SatbdLatency `json:"latency,omitempty"`
	// Invalid lists schema or consistency violations (capped); a
	// passing load run has none.
	Invalid   []string `json:"invalid,omitempty"`
	ElapsedNS int64    `json:"elapsed_ns"`
}

// SatbdLatency is one outcome class's request-latency distribution from
// a load run (nanoseconds; percentiles by nearest-rank).
type SatbdLatency struct {
	Count int   `json:"count"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// MethodSummary is one method's analysis report in Document form.
type MethodSummary struct {
	Method      string `json:"method"`
	FieldSites  int    `json:"field_sites"`
	ArraySites  int    `json:"array_sites"`
	FieldElided int    `json:"field_elided"`
	ArrayElided int    `json:"array_elided"`
	NullOrSame  int    `json:"null_or_same,omitempty"`
	BlockVisits int    `json:"block_visits"`
	Degraded    string `json:"degraded,omitempty"`
}

// NewMethodSummaries converts a program report into per-method Document
// rows, in program order.
func NewMethodSummaries(rep *core.ProgramReport) []MethodSummary {
	if rep == nil {
		return nil
	}
	out := make([]MethodSummary, 0, len(rep.Methods))
	for _, m := range rep.Methods {
		ms := MethodSummary{
			Method:      m.Method.QualifiedName(),
			FieldSites:  m.FieldSites,
			ArraySites:  m.ArraySites,
			FieldElided: m.FieldElided,
			ArrayElided: m.ArrayElided,
			NullOrSame:  m.NullOrSame,
			BlockVisits: m.BlockVisits,
		}
		if m.Degraded != core.DegradeNone {
			ms.Degraded = string(m.Degraded)
		}
		out = append(out, ms)
	}
	return out
}

// FormatObsSummary renders the observability metrics as the human-
// readable summary table: span aggregates first (sorted by total time,
// descending), then counters (sorted by name).
func FormatObsSummary(m *obs.Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Observability summary\n")
	if len(m.Spans) > 0 {
		fmt.Fprintf(&b, "%-12s %-28s %8s %12s %12s\n", "category", "span", "count", "total", "max")
		spans := make([]obs.SpanStat, len(m.Spans))
		copy(spans, m.Spans)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].TotalNS > spans[j].TotalNS })
		const maxRows = 20
		for i, s := range spans {
			if i == maxRows {
				fmt.Fprintf(&b, "  ... %d more span groups (see -metrics JSON)\n", len(spans)-maxRows)
				break
			}
			fmt.Fprintf(&b, "%-12s %-28s %8d %12v %12v\n", s.Cat, s.Name, s.Count,
				time.Duration(s.TotalNS).Round(time.Microsecond),
				time.Duration(s.MaxNS).Round(time.Microsecond))
		}
	}
	if len(m.Counters) > 0 {
		names := make([]string, 0, len(m.Counters))
		for k := range m.Counters {
			// Per-site counters are high-cardinality; the table shows
			// rollups only, the JSON document has everything.
			if strings.HasPrefix(k, "vm.site.") {
				continue
			}
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%-44s %14s\n", "counter", "value")
		for _, k := range names {
			fmt.Fprintf(&b, "%-44s %14d\n", k, m.Counters[k])
		}
	}
	return b.String()
}
