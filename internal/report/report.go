// Package report regenerates the paper's evaluation tables and figures
// over the MiniJava workload suite: Table 1 (dynamic barrier elimination),
// Table 2 (jbb end-to-end barrier cost), Figure 2 (inlining level vs
// effectiveness and compile time), Figure 3 (compiled code size), and the
// §4.3 null-or-same site measurements.
package report

import (
	"fmt"
	"strings"
	"time"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// DefaultInlineLimit is the paper's chosen operating point (§4.4: "The
// 100-bytecode inlining level gains essentially all the analysis
// results").
const DefaultInlineLimit = 100

// AnalysisDeadline, when nonzero, is applied as the per-method analysis
// wall-clock budget for every build this package performs (satbbench's
// -deadline flag). Methods that exceed it degrade to the sound
// all-barriers result and are listed in the report output.
var AnalysisDeadline time.Duration

// withBudget applies the package-level analysis budget to an options
// value.
func withBudget(o core.Options) core.Options {
	if AnalysisDeadline > 0 && o.Deadline == 0 {
		o.Deadline = AnalysisDeadline
	}
	return o
}

// buildAndRun compiles a workload with the given options and runs it with
// conditional SATB barriers (marking kept permanently active so that every
// barrier's dynamic behaviour is observed).
func buildAndRun(w *workloads.Workload, inlineLimit int, opts core.Options) (*pipeline.Build, *vm.Result, error) {
	b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
		InlineLimit: inlineLimit,
		Analysis:    withBudget(opts),
		Runtime:     vm.Config{Barrier: satb.ModeConditional},
	})
	if err != nil {
		return nil, nil, err
	}
	res, err := b.Exec()
	if err != nil {
		return nil, nil, err
	}
	return b, res, nil
}

// Table1Row is one benchmark's dynamic results, paired with the paper's.
type Table1Row struct {
	Name       string
	Total      uint64
	ElimPct    float64
	PotPct     float64
	FieldShare float64
	ArrayShare float64
	FieldElim  float64
	ArrayElim  float64
	Paper      workloads.PaperRow
}

// Table1 measures the dynamic elimination results for every workload
// (analysis mode A, the paper's configuration).
func Table1(inlineLimit int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, w := range workloads.All() {
		_, res, err := buildAndRun(w, inlineLimit, core.Options{Mode: core.ModeFieldArray})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", w.Name, err)
		}
		s := res.Counters.Summarize()
		if len(s.UnsoundSites) > 0 {
			return nil, fmt.Errorf("table1 %s: unsound elisions %v", w.Name, s.UnsoundSites)
		}
		rows = append(rows, Table1Row{
			Name:       w.Name,
			Total:      s.TotalExecs,
			ElimPct:    pct(s.ElidedExecs, s.TotalExecs),
			PotPct:     pct(s.PotPreNull, s.TotalExecs),
			FieldShare: pct(s.FieldExecs, s.TotalExecs),
			ArrayShare: pct(s.ArrayExecs, s.TotalExecs),
			FieldElim:  pct(s.FieldElided, s.FieldExecs),
			ArrayElim:  pct(s.ArrayElided, s.ArrayExecs),
			Paper:      w.Paper,
		})
	}
	return rows, nil
}

// FormatTable1 renders measured-vs-paper rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: dynamic barrier elimination (measured | paper)\n")
	fmt.Fprintf(&b, "%-7s %10s %15s %15s %13s %15s %15s\n",
		"bench", "total", "% elim", "% pot pre-null", "field/array", "field % elim", "array % elim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %10d %6.1f | %5.1f %6.1f | %6.1f %3.0f/%2.0f | %2.0f/%2.0f %6.1f | %6.1f %6.1f | %6.1f\n",
			r.Name, r.Total,
			r.ElimPct, r.Paper.ElimPct,
			r.PotPct, r.Paper.PotPreNullPct,
			r.FieldShare, r.ArrayShare, r.Paper.FieldPct, r.Paper.ArrayPct,
			r.FieldElim, r.Paper.FieldElimPct,
			r.ArrayElim, r.Paper.ArrayElimPct)
	}
	return b.String()
}

// Table2Row is one barrier-mode configuration of the jbb end-to-end
// experiment.
type Table2Row struct {
	Mode       string
	Cost       uint64  // total cost-model units
	Throughput float64 // work units per 1000 cost units
	Relative   float64 // vs no-barrier
}

// Table2 measures end-to-end barrier cost on jbb under the three modes of
// the paper's Table 2: no-barrier, always-log (check elided, no analysis)
// and always-log-elim (always-log plus barrier elimination).
func Table2(inlineLimit int) ([]Table2Row, error) {
	w, err := workloads.Get("jbb")
	if err != nil {
		return nil, err
	}
	type cfg struct {
		name string
		mode satb.BarrierMode
		opts core.Options
	}
	cfgs := []cfg{
		{"no-barrier", satb.ModeNoBarrier, core.Options{Mode: core.ModeNone}},
		{"always-log", satb.ModeAlwaysLog, core.Options{Mode: core.ModeNone}},
		{"always-log-elim", satb.ModeAlwaysLog, core.Options{Mode: core.ModeFieldArray}},
	}
	var rows []Table2Row
	var base float64
	for _, c := range cfgs {
		b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: inlineLimit,
			Analysis:    withBudget(c.opts),
			Runtime:     vm.Config{Barrier: c.mode},
		})
		if err != nil {
			return nil, err
		}
		res, err := b.Exec()
		if err != nil {
			return nil, err
		}
		tp := 1000 * float64(res.Steps) / float64(res.TotalCost())
		if c.name == "no-barrier" {
			base = tp
		}
		rows = append(rows, Table2Row{Mode: c.name, Cost: res.TotalCost(), Throughput: tp, Relative: tp / base})
	}
	return rows, nil
}

// FormatTable2 renders the jbb end-to-end rows next to the paper's
// relative throughputs (1.000 / 0.975 / 0.984).
func FormatTable2(rows []Table2Row) string {
	paper := map[string]float64{"no-barrier": 1.000, "always-log": 0.975, "always-log-elim": 0.984}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: jbb end-to-end barrier cost (deterministic cost model)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s\n", "barrier mode", "cost units", "throughput", "relative", "paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12d %12.2f %10.3f %10.3f\n", r.Mode, r.Cost, r.Throughput, r.Relative, paper[r.Mode])
	}
	return b.String()
}

// Fig2Point is one (inline limit, analysis mode) observation for one
// workload.
type Fig2Point struct {
	Workload     string
	Limit        int
	Mode         core.Mode
	ElimPct      float64
	CompileTime  time.Duration
	AnalysisTime time.Duration
	CodeBytes    int
}

// Figure2Limits is the paper's sweep.
var Figure2Limits = []int{0, 25, 50, 100, 200}

// Figure2 sweeps inlining levels × analysis modes over all workloads.
func Figure2(limits []int) ([]Fig2Point, error) {
	if limits == nil {
		limits = Figure2Limits
	}
	var out []Fig2Point
	for _, w := range workloads.All() {
		for _, limit := range limits {
			for _, mode := range []core.Mode{core.ModeNone, core.ModeField, core.ModeFieldArray} {
				b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
					InlineLimit: limit,
					Analysis:    withBudget(core.Options{Mode: mode}),
					Runtime:     vm.Config{Barrier: satb.ModeConditional},
				})
				if err != nil {
					return nil, fmt.Errorf("fig2 %s limit %d: %w", w.Name, limit, err)
				}
				res, err := b.Exec()
				if err != nil {
					return nil, err
				}
				s := res.Counters.Summarize()
				out = append(out, Fig2Point{
					Workload:     w.Name,
					Limit:        limit,
					Mode:         mode,
					ElimPct:      pct(s.ElidedExecs, s.TotalExecs),
					CompileTime:  b.CompileTime(),
					AnalysisTime: b.AnalysisTime,
					CodeBytes:    b.BytecodeBytes,
				})
			}
		}
	}
	return out, nil
}

// FormatFigure2 renders the sweep as per-workload series.
func FormatFigure2(points []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: inline limit vs dynamic elimination and compile time\n")
	fmt.Fprintf(&b, "%-7s %6s %5s %8s %12s %12s %10s\n",
		"bench", "limit", "mode", "% elim", "compile", "analysis", "bytecode")
	for _, p := range points {
		fmt.Fprintf(&b, "%-7s %6d %5s %8.1f %12v %12v %10d\n",
			p.Workload, p.Limit, p.Mode, p.ElimPct, p.CompileTime.Round(time.Microsecond),
			p.AnalysisTime.Round(time.Microsecond), p.CodeBytes)
	}
	return b.String()
}

// Fig3Row is one workload's compiled-code-size comparison.
type Fig3Row struct {
	Workload   string
	SizeB      int
	SizeF      int
	SizeA      int
	ReduceFPct float64
	ReduceAPct float64
}

// Figure3 measures compiled code size (bytecode + inline barrier
// sequences) under B, F, and A at the given inline level.
func Figure3(inlineLimit int) ([]Fig3Row, error) {
	var rows []Fig3Row
	for _, w := range workloads.All() {
		sizes := map[core.Mode]int{}
		for _, mode := range []core.Mode{core.ModeNone, core.ModeField, core.ModeFieldArray} {
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: inlineLimit,
				Analysis:    withBudget(core.Options{Mode: mode}),
			})
			if err != nil {
				return nil, fmt.Errorf("fig3 %s: %w", w.Name, err)
			}
			sizes[mode] = b.CompiledCodeSize()
		}
		rows = append(rows, Fig3Row{
			Workload:   w.Name,
			SizeB:      sizes[core.ModeNone],
			SizeF:      sizes[core.ModeField],
			SizeA:      sizes[core.ModeFieldArray],
			ReduceFPct: 100 * float64(sizes[core.ModeNone]-sizes[core.ModeField]) / float64(sizes[core.ModeNone]),
			ReduceAPct: 100 * float64(sizes[core.ModeNone]-sizes[core.ModeFieldArray]) / float64(sizes[core.ModeNone]),
		})
	}
	return rows, nil
}

// FormatFigure3 renders the code-size rows (paper: 2–6% reduction).
func FormatFigure3(rows []Fig3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: compiled code size by analysis mode (inline limit %d)\n", DefaultInlineLimit)
	fmt.Fprintf(&b, "%-7s %10s %10s %10s %10s %10s\n", "bench", "B bytes", "F bytes", "A bytes", "F % cut", "A % cut")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %10d %10d %10d %10.1f %10.1f\n",
			r.Workload, r.SizeB, r.SizeF, r.SizeA, r.ReduceFPct, r.ReduceAPct)
	}
	return b.String()
}

// NullOrSameRow reports the §4.3 extension's measured share.
type NullOrSameRow struct {
	Workload string
	Pct      float64
	PaperPct float64
}

// NullOrSame measures the share of barrier executions elided by the
// null-or-same extension on the workloads where the paper reports one.
func NullOrSame(inlineLimit int) ([]NullOrSameRow, error) {
	var rows []NullOrSameRow
	for _, w := range workloads.All() {
		_, res, err := buildAndRun(w, inlineLimit, core.Options{Mode: core.ModeFieldArray, NullOrSame: true})
		if err != nil {
			return nil, fmt.Errorf("null-or-same %s: %w", w.Name, err)
		}
		s := res.Counters.Summarize()
		if len(s.UnsoundSites) > 0 {
			return nil, fmt.Errorf("null-or-same %s: unsound elisions %v", w.Name, s.UnsoundSites)
		}
		rows = append(rows, NullOrSameRow{
			Workload: w.Name,
			Pct:      pct(s.NullOrSameExecs, s.TotalExecs),
			PaperPct: w.NullOrSamePaperPct,
		})
	}
	return rows, nil
}

// FormatNullOrSame renders the §4.3 rows.
func FormatNullOrSame(rows []NullOrSameRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 null-or-same stores (%% of barrier executions; measured | paper)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %6.1f | %4.1f\n", r.Workload, r.Pct, r.PaperPct)
	}
	return b.String()
}

// InterprocRow compares elimination without inlining, with and without
// interprocedural escape summaries, against the inlined baseline.
type InterprocRow struct {
	Workload       string
	Limit0Pct      float64 // no inlining, intra-procedural only
	Limit0SumPct   float64 // no inlining, with summaries
	InlinedBasePct float64 // inline limit 100 (the paper's setting)
	// DeltaPct is what the summaries buy: Limit0SumPct - Limit0Pct
	// (additive to schema v1).
	DeltaPct float64
}

// Interprocedural measures how much of the inlining-dependent precision
// the escape summaries recover at inline limit 0 (the paper's §2.4 "lack
// of interprocedural techniques" future work).
func Interprocedural() ([]InterprocRow, error) {
	var rows []InterprocRow
	measure := func(w *workloads.Workload, limit int, opts core.Options) (float64, error) {
		_, res, err := buildAndRun(w, limit, opts)
		if err != nil {
			return 0, err
		}
		s := res.Counters.Summarize()
		if len(s.UnsoundSites) > 0 {
			return 0, fmt.Errorf("%s: unsound %v", w.Name, s.UnsoundSites)
		}
		return pct(s.ElidedExecs, s.TotalExecs), nil
	}
	for _, w := range workloads.All() {
		plain, err := measure(w, 0, core.Options{Mode: core.ModeFieldArray})
		if err != nil {
			return nil, err
		}
		sum, err := measure(w, 0, core.Options{Mode: core.ModeFieldArray, Interprocedural: true})
		if err != nil {
			return nil, err
		}
		base, err := measure(w, DefaultInlineLimit, core.Options{Mode: core.ModeFieldArray})
		if err != nil {
			return nil, err
		}
		rows = append(rows, InterprocRow{
			Workload: w.Name, Limit0Pct: plain, Limit0SumPct: sum,
			InlinedBasePct: base, DeltaPct: sum - plain,
		})
	}
	return rows, nil
}

// FormatInterprocedural renders the summary-recovery rows.
func FormatInterprocedural(rows []InterprocRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Interprocedural escape summaries (dynamic %% eliminated)\n")
	fmt.Fprintf(&b, "%-7s %14s %16s %8s %14s\n", "bench", "limit 0", "limit 0 + sums", "delta", "limit 100")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %14.1f %16.1f %+8.1f %14.1f\n",
			r.Workload, r.Limit0Pct, r.Limit0SumPct, r.DeltaPct, r.InlinedBasePct)
	}
	return b.String()
}

// RearrangeRow reports the §4.3 array-rearrangement extension's effect on
// one workload.
type RearrangeRow struct {
	Workload string
	// ElimPct is the plain mode-A elimination; WithRearrangePct adds the
	// swap stores covered by the optimistic retrace protocol.
	ElimPct          float64
	RearrangePct     float64
	WithRearrangePct float64
	Retraces         uint64
}

// Rearrangement measures how much of each workload's barrier traffic the
// swap-pair protocol covers, on top of the pre-null eliminations. Runs
// under concurrent SATB marking so retrace counts are real.
func Rearrangement(inlineLimit int) ([]RearrangeRow, error) {
	var rows []RearrangeRow
	for _, w := range workloads.All() {
		b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: inlineLimit,
			Analysis:    withBudget(core.Options{Mode: core.ModeFieldArray, Rearrange: true}),
			Runtime: vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 200,
				CheckInvariant:     true,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("rearrange %s: %w", w.Name, err)
		}
		res, err := b.Exec()
		if err != nil {
			return nil, err
		}
		s := res.Counters.Summarize()
		if len(s.UnsoundSites) > 0 {
			return nil, fmt.Errorf("rearrange %s: unsound %v", w.Name, s.UnsoundSites)
		}
		rows = append(rows, RearrangeRow{
			Workload:         w.Name,
			ElimPct:          pct(s.ElidedExecs, s.TotalExecs),
			RearrangePct:     pct(s.RearrangeExecs, s.TotalExecs),
			WithRearrangePct: pct(s.ElidedExecs+s.RearrangeExecs, s.TotalExecs),
			Retraces:         s.Retraces,
		})
	}
	return rows, nil
}

// FormatRearrangement renders the §4.3 rearrangement rows.
func FormatRearrangement(rows []RearrangeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4.3 array rearrangements (optimistic retrace protocol)\n")
	fmt.Fprintf(&b, "%-7s %10s %12s %12s %10s\n", "bench", "% elim", "% rearrange", "% combined", "retraces")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %10.1f %12.1f %12.1f %10d\n",
			r.Workload, r.ElimPct, r.RearrangePct, r.WithRearrangePct, r.Retraces)
	}
	return b.String()
}

// PerfRow is one workload's compile-side performance snapshot: per-stage
// times, analysis iteration counts, and the elimination it bought. The
// ns fields are what the cross-PR BENCH_*.json trajectory tracks.
type PerfRow struct {
	Workload      string  `json:"workload"`
	Workers       int     `json:"workers"`
	CompileNs     int64   `json:"compile_ns"`
	FrontendNs    int64   `json:"frontend_ns"`
	InlineNs      int64   `json:"inline_ns"`
	VerifyNs      int64   `json:"verify_ns"`
	AnalysisNs    int64   `json:"analysis_ns"`
	BlockVisits   int     `json:"block_visits"`
	Methods       int     `json:"methods"`
	BytecodeBytes int     `json:"bytecode_bytes"`
	ElimPct       float64 `json:"elim_pct"`
}

// Perf compiles every workload in mode A and reports per-stage compile
// times, fixed-point block visits, and dynamic elimination. workers <= 0
// means GOMAXPROCS (the pipeline default).
func Perf(inlineLimit, workers int) ([]PerfRow, error) {
	var rows []PerfRow
	for _, w := range workloads.All() {
		b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: inlineLimit,
			Analysis:    withBudget(core.Options{Mode: core.ModeFieldArray}),
			Workers:     workers,
			Runtime:     vm.Config{Barrier: satb.ModeConditional},
		})
		if err != nil {
			return nil, fmt.Errorf("perf %s: %w", w.Name, err)
		}
		res, err := b.Exec()
		if err != nil {
			return nil, err
		}
		s := res.Counters.Summarize()
		if len(s.UnsoundSites) > 0 {
			return nil, fmt.Errorf("perf %s: unsound elisions %v", w.Name, s.UnsoundSites)
		}
		rows = append(rows, PerfRow{
			Workload:      w.Name,
			Workers:       workers,
			CompileNs:     b.CompileTime().Nanoseconds(),
			FrontendNs:    b.FrontendTime.Nanoseconds(),
			InlineNs:      b.InlineTime.Nanoseconds(),
			VerifyNs:      b.VerifyTime.Nanoseconds(),
			AnalysisNs:    b.AnalysisTime.Nanoseconds(),
			BlockVisits:   b.Report.BlockVisits(),
			Methods:       len(b.Report.Methods),
			BytecodeBytes: b.BytecodeBytes,
			ElimPct:       pct(s.ElidedExecs, s.TotalExecs),
		})
	}
	return rows, nil
}

// FormatPerf renders the compile-performance rows.
func FormatPerf(rows []PerfRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Compile performance (mode A)\n")
	fmt.Fprintf(&b, "%-7s %10s %10s %10s %8s %8s\n",
		"bench", "compile", "analysis", "visits", "methods", "% elim")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %10v %10v %10d %8d %8.1f\n",
			r.Workload,
			time.Duration(r.CompileNs).Round(time.Microsecond),
			time.Duration(r.AnalysisNs).Round(time.Microsecond),
			r.BlockVisits, r.Methods, r.ElimPct)
	}
	return b.String()
}

func pct(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
