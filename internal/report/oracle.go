package report

import (
	"fmt"
	"strings"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// OracleRow is one (workload, analysis config) soundness-oracle run:
// every elided store executed under concurrent SATB marking with the
// runtime elision oracle validating the overwritten-slot-is-null and
// target-is-thread-local claims.
type OracleRow struct {
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Limit    int    `json:"inline_limit"`
	// Checks counts elided-store executions the oracle validated.
	Checks int64 `json:"elision_checks"`
	// Violation is the soundness violation, if any ("" when clean).
	Violation string `json:"violation,omitempty"`
	// Degraded lists methods whose analysis bailed out to all-barriers.
	Degraded []string `json:"degraded,omitempty"`
}

// Clean reports whether the run validated with no violation.
func (r OracleRow) Clean() bool { return r.Violation == "" }

// oracleConfigs are the analysis configurations the soundness sweep
// covers: the paper's A mode plus every extension that adds elisions.
var oracleConfigs = []struct {
	Name string
	Opts core.Options
}{
	{"A", core.Options{Mode: core.ModeFieldArray}},
	{"A+nos", core.Options{Mode: core.ModeFieldArray, NullOrSame: true}},
	{"A+nos+rearr", core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true}},
	{"A+ip", core.Options{Mode: core.ModeFieldArray, Interprocedural: true}},
}

// Oracle runs every workload under every oracle configuration at the
// given inline limit with Config.CheckElisions set. A violation is
// reported in the row rather than returned as an error, so a sweep
// always yields the full matrix; callers that want hard failure (e.g.
// satbbench -strict) check Clean() per row.
func Oracle(inlineLimit int) ([]OracleRow, error) {
	var rows []OracleRow
	for _, w := range workloads.All() {
		for _, cfg := range oracleConfigs {
			b, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: inlineLimit,
				Analysis:    withBudget(cfg.Opts),
				Runtime: vm.Config{
					Barrier:            satb.ModeConditional,
					GC:                 vm.GCSATB,
					TriggerEveryAllocs: 256,
					CheckInvariant:     true,
					CheckElisions:      true,
				},
			})
			if err != nil {
				return nil, fmt.Errorf("oracle %s/%s: %w", w.Name, cfg.Name, err)
			}
			row := OracleRow{Workload: w.Name, Config: cfg.Name, Limit: inlineLimit}
			for _, m := range b.Report.Degraded() {
				row.Degraded = append(row.Degraded,
					fmt.Sprintf("%s (%s)", m.Method.QualifiedName(), m.Degraded))
			}
			res, err := b.Exec()
			if err != nil {
				row.Violation = err.Error()
			} else {
				row.Checks = res.ElisionChecks
				if s := res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
					row.Violation = fmt.Sprintf("unsound sites %v", s.UnsoundSites)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatOracle renders the soundness sweep.
func FormatOracle(rows []OracleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Soundness oracle (elided stores validated at runtime)\n")
	fmt.Fprintf(&b, "%-7s %-12s %6s %12s  %s\n", "bench", "config", "limit", "checks", "status")
	for _, r := range rows {
		status := "ok"
		if !r.Clean() {
			status = "VIOLATION: " + r.Violation
		}
		if len(r.Degraded) > 0 {
			status += fmt.Sprintf(" [degraded: %s]", strings.Join(r.Degraded, ", "))
		}
		fmt.Fprintf(&b, "%-7s %-12s %6d %12d  %s\n", r.Workload, r.Config, r.Limit, r.Checks, status)
	}
	return b.String()
}
