package report

import (
	"strings"
	"testing"

	"satbelim/internal/core"
)

func TestTable1ShapesHold(t *testing.T) {
	rows, err := Table1(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
		// Paper-invariant: eliminations never exceed the potentially-
		// pre-null upper bound.
		if r.ElimPct > r.PotPct+0.01 {
			t.Errorf("%s: elim %.1f%% exceeds potential %.1f%%", r.Name, r.ElimPct, r.PotPct)
		}
	}
	// db is the low outlier; mtrt the high one (as in the paper).
	for _, r := range rows {
		if r.Name != "db" && r.ElimPct <= byName["db"].ElimPct {
			t.Errorf("%s elim %.1f%% should exceed db's %.1f%%", r.Name, r.ElimPct, byName["db"].ElimPct)
		}
		if r.Name != "mtrt" && r.ElimPct >= byName["mtrt"].ElimPct {
			t.Errorf("mtrt should have the highest elimination, but %s has %.1f%%", r.Name, r.ElimPct)
		}
	}
	// mtrt is the array-analysis success case; jess/db/jack/jbb get ~0.
	if byName["mtrt"].ArrayElim < 30 {
		t.Errorf("mtrt array elim = %.1f%%", byName["mtrt"].ArrayElim)
	}
	for _, n := range []string{"jess", "db", "jack", "jbb"} {
		if byName[n].ArrayElim > 5 {
			t.Errorf("%s array elim should be ~0, got %.1f%%", n, byName[n].ArrayElim)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "jess") || !strings.Contains(out, "field/array") {
		t.Errorf("format: %s", out)
	}
}

func TestTable2Ordering(t *testing.T) {
	rows, err := Table2(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[string]Table2Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	nb, al, ale := byMode["no-barrier"], byMode["always-log"], byMode["always-log-elim"]
	if nb.Relative != 1.0 {
		t.Errorf("no-barrier relative = %.3f", nb.Relative)
	}
	// The paper's ordering: no-barrier > always-log-elim > always-log.
	if !(ale.Relative > al.Relative) {
		t.Errorf("elimination should recover cost: elim %.4f vs always-log %.4f", ale.Relative, al.Relative)
	}
	if !(ale.Relative < 1.0) {
		t.Errorf("always-log-elim should still pay some cost: %.4f", ale.Relative)
	}
	if al.Relative < 0.80 || al.Relative > 0.999 {
		t.Errorf("always-log relative %.4f outside plausible band", al.Relative)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "always-log-elim") {
		t.Errorf("format: %s", out)
	}
}

func TestFigure2Monotonicity(t *testing.T) {
	points, err := Figure2([]int{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	// Index by workload/limit/mode.
	type key struct {
		w    string
		l    int
		mode core.Mode
	}
	idx := map[key]Fig2Point{}
	for _, p := range points {
		idx[key{p.Workload, p.Limit, p.Mode}] = p
	}
	for _, w := range []string{"jess", "db", "javac", "mtrt", "jack", "jbb"} {
		// Mode B never eliminates.
		for _, l := range []int{0, 100} {
			if e := idx[key{w, l, core.ModeNone}].ElimPct; e != 0 {
				t.Errorf("%s limit %d mode B elim = %.1f", w, l, e)
			}
		}
		// Inlining at 100 must not lose eliminations vs 0 for mode A,
		// and should gain substantially on ctor-heavy benchmarks.
		a0 := idx[key{w, 0, core.ModeFieldArray}].ElimPct
		a100 := idx[key{w, 100, core.ModeFieldArray}].ElimPct
		if a100+0.5 < a0 {
			t.Errorf("%s: inlining reduced eliminations: %.1f -> %.1f", w, a0, a100)
		}
		// A ⊇ F at the same limit.
		f100 := idx[key{w, 100, core.ModeField}].ElimPct
		if a100+0.01 < f100 {
			t.Errorf("%s: mode A (%.1f) should not trail mode F (%.1f)", w, a100, f100)
		}
	}
	// Somewhere the field analysis needs inlining to see constructors.
	gain := false
	for _, w := range []string{"jess", "db", "jbb"} {
		if idx[key{w, 100, core.ModeFieldArray}].ElimPct > idx[key{w, 0, core.ModeFieldArray}].ElimPct+5 {
			gain = true
		}
	}
	if !gain {
		t.Error("expected a clear inlining benefit on at least one ctor-heavy workload")
	}
}

func TestFigure3Reductions(t *testing.T) {
	rows, err := Figure3(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SizeA > r.SizeF || r.SizeF > r.SizeB {
			t.Errorf("%s: sizes must shrink B>=F>=A: %d %d %d", r.Workload, r.SizeB, r.SizeF, r.SizeA)
		}
		if r.ReduceAPct < 0.3 || r.ReduceAPct > 25 {
			t.Errorf("%s: A reduction %.1f%% outside plausible band", r.Workload, r.ReduceAPct)
		}
	}
}

func TestInterproceduralRecoversInliningPrecision(t *testing.T) {
	rows, err := Interprocedural()
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	for _, r := range rows {
		if r.Limit0SumPct < r.Limit0Pct-0.01 {
			t.Errorf("%s: summaries lost precision: %.1f -> %.1f", r.Workload, r.Limit0Pct, r.Limit0SumPct)
		}
		if r.Limit0SumPct > r.InlinedBasePct+0.01 {
			// More precision than inlining is possible in principle but
			// would be surprising here; flag it for inspection.
			t.Errorf("%s: summaries exceed the inlined baseline: %.1f vs %.1f", r.Workload, r.Limit0SumPct, r.InlinedBasePct)
		}
		if r.Limit0SumPct >= r.InlinedBasePct-0.5 {
			recovered++
		}
	}
	if recovered < 4 {
		t.Errorf("expected most workloads to recover the inlined precision via summaries, got %d/6: %+v", recovered, rows)
	}
}

func TestRearrangementCoversDbSwaps(t *testing.T) {
	rows, err := Rearrangement(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]RearrangeRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// The paper's §4.3 observation: db's dominant stores are sort swaps
	// (">70% of stores"); the retrace protocol covers them.
	db := byName["db"]
	if db.RearrangePct < 60 {
		t.Errorf("db rearrange coverage %.1f%%, want the dominant swap share", db.RearrangePct)
	}
	if db.WithRearrangePct < 70 {
		t.Errorf("db combined coverage %.1f%%", db.WithRearrangePct)
	}
	// No other workload has the swap idiom.
	for _, n := range []string{"jess", "javac", "mtrt", "jack", "jbb"} {
		if byName[n].RearrangePct > 5 {
			t.Errorf("%s unexpectedly rearrange-covered: %.1f%%", n, byName[n].RearrangePct)
		}
	}
}

func TestNullOrSameMeasured(t *testing.T) {
	rows, err := NullOrSame(DefaultInlineLimit)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]NullOrSameRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	// The paper reports null-or-same sites in javac, jack, and jbb.
	for _, n := range []string{"javac", "jack", "jbb"} {
		if byName[n].Pct <= 0 {
			t.Errorf("%s: expected some null-or-same executions", n)
		}
	}
	// jbb's share is the smallest of the three (paper: 4%% vs 14-15%%).
	if !(byName["jbb"].Pct < byName["javac"].Pct && byName["jbb"].Pct < byName["jack"].Pct) {
		t.Errorf("jbb should have the smallest null-or-same share: %+v", rows)
	}
}
