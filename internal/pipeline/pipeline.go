// Package pipeline drives the end-to-end compile path the experiments
// use: parse → typecheck → codegen → inline(limit) → verify →
// analyze(mode) → run on the VM. It records per-stage times (the paper's
// §4.4 compile-time measurements) and compiled-code sizes including
// per-barrier expansion (Figure 3).
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/core"
	"satbelim/internal/inline"
	"satbelim/internal/minijava"
	"satbelim/internal/obs"
	"satbelim/internal/verifier"
	"satbelim/internal/vm"
)

// BarrierInlineBytes models the machine-code footprint of one inline SATB
// barrier sequence (the paper's 9–12 RISC instructions, §1). Eliding a
// site saves this many bytes of compiled code.
const BarrierInlineBytes = 40

// CodeExpansionFactor models the machine-code bytes produced per bytecode
// byte by a client JIT; it scales the non-barrier part of the Figure 3
// code-size model.
const CodeExpansionFactor = 8

// Options is the single configuration surface for a build and its
// execution: compile-side knobs live directly on Options, analysis knobs
// in the Analysis sub-struct, and VM/runtime knobs in the Runtime
// sub-struct — a new knob is added in exactly one of those places, never
// mirrored.
type Options struct {
	// InlineLimit is the maximum callee bytecode size to inline
	// (paper §4.4: 0/25/50/100/200).
	InlineLimit int
	// Analysis selects the barrier analysis configuration (B/F/A and
	// extensions).
	Analysis core.Options
	// Runtime is the VM configuration Build.Exec runs under.
	Runtime vm.Config
	// Workers is the per-method fan-out width for the verify and
	// analysis stages (both are intra-procedural after inlining, so
	// methods are independent). <= 0 means GOMAXPROCS. Results are
	// deterministic: reports and elision bits are identical for any
	// worker count.
	Workers int
	// NoCache disables the content-addressed build cache for this
	// compilation (it neither reads nor stores an entry). Use it when
	// measuring real compile times.
	NoCache bool
	// Cache selects the build cache instance to consult; nil means the
	// process-wide DefaultCache.
	Cache *Cache
}

// workerCount resolves the configured fan-out width.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Build is a compiled, analyzed program plus compile-time metrics.
type Build struct {
	Name    string
	Program *bytecode.Program
	Options Options

	FrontendTime time.Duration // parse + typecheck + codegen
	InlineTime   time.Duration
	VerifyTime   time.Duration
	AnalysisTime time.Duration

	// BytecodeBytes is the post-inline bytecode size.
	BytecodeBytes int
	// InlinedCalls counts expanded call sites.
	InlinedCalls int
	// Report is the analysis report (nil for ModeNone).
	Report *core.ProgramReport
	// CacheHit reports that this Build was served from the build cache
	// (its timing fields are the original compilation's).
	CacheHit bool
}

// CompileTime is the total compile-side time.
func (b *Build) CompileTime() time.Duration {
	return b.FrontendTime + b.InlineTime + b.VerifyTime + b.AnalysisTime
}

// CompiledCodeSize models total compiled code bytes: expanded bytecode
// plus the inline barrier sequence at every *kept* reference-store site
// (Figure 3's metric — elision shrinks code by 2–6% in the paper).
func (b *Build) CompiledCodeSize() int {
	size := 0
	for _, m := range b.Program.Methods() {
		size += m.Size() * CodeExpansionFactor
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case bytecode.OpPutField:
				if b.Program.FieldType(in.Field).IsRef() && !in.Elide && !in.ElideNullOrSame {
					size += BarrierInlineBytes
				}
			case bytecode.OpAAStore:
				if !in.Elide && !in.ElideNullOrSame {
					size += BarrierInlineBytes
				}
			case bytecode.OpPutStatic:
				if b.Program.FieldType(in.Field).IsRef() {
					size += BarrierInlineBytes
				}
			}
		}
	}
	return size
}

// Compile builds a program from MiniJava source. Identical inputs (same
// source content, inline limit, worker count, and analysis options) are
// served from a content-addressed cache unless Options.NoCache is set.
func Compile(name, source string, opts Options) (*Build, error) {
	return CompileCtx(context.Background(), name, source, opts)
}

// CompileCtx is Compile under a caller context. Cancellation is observed
// between the frontend stages (an error return) and inside the analysis
// fixed point (sound per-method degradation with DegradeCancelled — the
// build still succeeds, conservatively). Concurrent CompileCtx calls for
// the same key coalesce onto one compilation via the cache's singleflight
// layer; results degraded by a request's own deadline are never shared or
// cached, so no caller observes another caller's time budget.
func CompileCtx(ctx context.Context, name, source string, opts Options) (*Build, error) {
	if !opts.cacheable() {
		return compile(ctx, name, source, opts)
	}
	c := opts.cacheInstance()
	b, fromCache, err := c.do(opts.key(name, source), func() (*Build, error) {
		return compile(ctx, name, source, opts)
	})
	if err != nil {
		return nil, err
	}
	if fromCache {
		// The copy is caller-private: stamp the caller's Options on it
		// so Exec runs under the caller's Runtime config, not the
		// original compiler's.
		cp := *b
		cp.CacheHit = true
		cp.Options = opts
		return &cp, nil
	}
	return b, nil
}

// compile is the uncached compile path: parse → typecheck → codegen →
// inline → verify → analyze.
func compile(ctx context.Context, name, source string, opts Options) (*Build, error) {
	b := &Build{Name: name, Options: opts}

	start := time.Now()
	sp := obs.StartSpan("main", "pipeline", "parse")
	ast, err := minijava.Parse(name+".mj", source)
	sp.EndArgs(obs.KV{K: "program", S: name})
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	sp = obs.StartSpan("main", "pipeline", "typecheck")
	checked, err := minijava.Check(name+".mj", ast)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	sp = obs.StartSpan("main", "pipeline", "codegen")
	prog, err := codegen.Compile(checked)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	b.FrontendTime = time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}

	start = time.Now()
	sp = obs.StartSpan("main", "pipeline", "inline")
	ir := inline.Apply(prog, inline.Options{Limit: opts.InlineLimit})
	sp.EndArgs(obs.KV{K: "limit", V: int64(opts.InlineLimit)}, obs.KV{K: "expanded", V: int64(ir.Expanded)})
	b.InlineTime = time.Since(start)
	b.Program = ir.Program
	b.InlinedCalls = ir.Expanded

	start = time.Now()
	sp = obs.StartSpan("main", "pipeline", "verify")
	err = verifyParallel(b.Program, opts.workerCount())
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	b.VerifyTime = time.Since(start)
	b.BytecodeBytes = b.Program.Size()

	if opts.Analysis.Mode != core.ModeNone {
		start = time.Now()
		sp = obs.StartSpan("main", "pipeline", "analyze")
		rep, err := core.AnalyzeProgramCtx(ctx, b.Program, opts.Analysis, opts.workerCount())
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", name, err)
		}
		sp.EndArgs(obs.KV{K: "block_visits", V: int64(rep.BlockVisits())},
			obs.KV{K: "methods", V: int64(len(rep.Methods))},
			obs.KV{K: "degraded", V: int64(len(rep.Degraded()))})
		b.AnalysisTime = time.Since(start)
		b.Report = rep
	}
	return b, nil
}

// verifyParallel verifies every method, fanning independent methods
// across workers. The inliner deep-clones method bodies, so no two
// methods share a Code or SlotTypes slice and each worker's writes
// (MaxStack) stay method-local. On failure the error of the first method
// in program order is returned, independent of scheduling.
func verifyParallel(p *bytecode.Program, workers int) error {
	methods := p.Methods()
	if workers > len(methods) {
		workers = len(methods)
	}
	if workers <= 1 {
		return verifier.VerifyProgram(p)
	}
	errs := make([]error, len(methods))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(methods) {
					return
				}
				errs[i] = verifier.Verify(p, methods[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes the built program on the VM under an explicit config.
//
// Deprecated: compatibility accessor — set Options.Runtime and call Exec
// so the configuration lives on the one Options surface.
func (b *Build) Run(cfg vm.Config) (*vm.Result, error) {
	return vm.New(b.Program, cfg).Run()
}

// Exec executes the built program on the VM under Options.Runtime.
func (b *Build) Exec() (*vm.Result, error) {
	return vm.New(b.Program, b.Options.Runtime).Run()
}

// ExecContext executes the built program on the VM under Options.Runtime,
// aborting at a scheduler-quantum boundary when ctx is cancelled.
func (b *Build) ExecContext(ctx context.Context) (*vm.Result, error) {
	return vm.New(b.Program, b.Options.Runtime).RunContext(ctx)
}
