// Package pipeline drives the end-to-end compile path the experiments
// use: parse → typecheck → codegen → inline(limit) → verify →
// analyze(mode) → run on the VM. It records per-stage times (the paper's
// §4.4 compile-time measurements) and compiled-code sizes including
// per-barrier expansion (Figure 3).
package pipeline

import (
	"fmt"
	"time"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/core"
	"satbelim/internal/inline"
	"satbelim/internal/minijava"
	"satbelim/internal/verifier"
	"satbelim/internal/vm"
)

// BarrierInlineBytes models the machine-code footprint of one inline SATB
// barrier sequence (the paper's 9–12 RISC instructions, §1). Eliding a
// site saves this many bytes of compiled code.
const BarrierInlineBytes = 40

// CodeExpansionFactor models the machine-code bytes produced per bytecode
// byte by a client JIT; it scales the non-barrier part of the Figure 3
// code-size model.
const CodeExpansionFactor = 8

// Options configure a build.
type Options struct {
	// InlineLimit is the maximum callee bytecode size to inline
	// (paper §4.4: 0/25/50/100/200).
	InlineLimit int
	// Analysis selects the barrier analysis configuration (B/F/A and
	// extensions).
	Analysis core.Options
}

// Build is a compiled, analyzed program plus compile-time metrics.
type Build struct {
	Name    string
	Program *bytecode.Program
	Options Options

	FrontendTime time.Duration // parse + typecheck + codegen
	InlineTime   time.Duration
	VerifyTime   time.Duration
	AnalysisTime time.Duration

	// BytecodeBytes is the post-inline bytecode size.
	BytecodeBytes int
	// InlinedCalls counts expanded call sites.
	InlinedCalls int
	// Report is the analysis report (nil for ModeNone).
	Report *core.ProgramReport
}

// CompileTime is the total compile-side time.
func (b *Build) CompileTime() time.Duration {
	return b.FrontendTime + b.InlineTime + b.VerifyTime + b.AnalysisTime
}

// CompiledCodeSize models total compiled code bytes: expanded bytecode
// plus the inline barrier sequence at every *kept* reference-store site
// (Figure 3's metric — elision shrinks code by 2–6% in the paper).
func (b *Build) CompiledCodeSize() int {
	size := 0
	for _, m := range b.Program.Methods() {
		size += m.Size() * CodeExpansionFactor
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case bytecode.OpPutField:
				if b.Program.FieldType(in.Field).IsRef() && !in.Elide && !in.ElideNullOrSame {
					size += BarrierInlineBytes
				}
			case bytecode.OpAAStore:
				if !in.Elide && !in.ElideNullOrSame {
					size += BarrierInlineBytes
				}
			case bytecode.OpPutStatic:
				if b.Program.FieldType(in.Field).IsRef() {
					size += BarrierInlineBytes
				}
			}
		}
	}
	return size
}

// Compile builds a program from MiniJava source.
func Compile(name, source string, opts Options) (*Build, error) {
	b := &Build{Name: name, Options: opts}

	start := time.Now()
	ast, err := minijava.Parse(name+".mj", source)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	checked, err := minijava.Check(name+".mj", ast)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	prog, err := codegen.Compile(checked)
	if err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	b.FrontendTime = time.Since(start)

	start = time.Now()
	ir := inline.Apply(prog, inline.Options{Limit: opts.InlineLimit})
	b.InlineTime = time.Since(start)
	b.Program = ir.Program
	b.InlinedCalls = ir.Expanded

	start = time.Now()
	if err := verifier.VerifyProgram(b.Program); err != nil {
		return nil, fmt.Errorf("pipeline %s: %w", name, err)
	}
	b.VerifyTime = time.Since(start)
	b.BytecodeBytes = b.Program.Size()

	if opts.Analysis.Mode != core.ModeNone {
		start = time.Now()
		rep, err := core.AnalyzeProgram(b.Program, opts.Analysis)
		if err != nil {
			return nil, fmt.Errorf("pipeline %s: %w", name, err)
		}
		b.AnalysisTime = time.Since(start)
		b.Report = rep
	}
	return b, nil
}

// Run executes the built program on the VM.
func (b *Build) Run(cfg vm.Config) (*vm.Result, error) {
	return vm.New(b.Program, cfg).Run()
}
