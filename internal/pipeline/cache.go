package pipeline

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"satbelim/internal/obs"
)

// The build cache memoizes Compile by content: experiments and tools
// recompile the same six workload sources dozens of times across table
// rows, figure sweeps, and differential runs, and every recompilation of
// identical inputs produces an identical Build (compilation and analysis
// are deterministic). Entries are keyed by source hash × options, never
// by anything ambient, so a hit is exact.
//
// Cached Builds share the Program and Report pointers with the original
// (both are treated as immutable after Compile); the Build struct itself
// is copied so per-use metadata (CacheHit, timing fields a caller zeroes)
// stays private to each caller.
//
// The cache is an injectable value: Options.Cache selects the instance,
// nil meaning the process-wide DefaultCache. Tests and embedders that
// need isolation construct their own with NewCache.

// DefaultCacheEntries bounds DefaultCache; at the limit the oldest entry
// is evicted (FIFO — the experiment drivers sweep configurations in
// passes, so recency is a good proxy for reuse).
const DefaultCacheEntries = 128

// cacheKey identifies a build by everything that can influence its
// output. Workers is semantically inert (results are deterministic for
// any worker count) but stays in the key so that differential tests
// comparing worker counts still compile each configuration independently.
// Runtime is deliberately absent: VM configuration cannot influence a
// compile, so builds differing only in Runtime share an entry.
type cacheKey struct {
	name        string
	srcHash     [32]byte
	inlineLimit int
	workers     int
	analysis    string
}

// Cache is a content-addressed build cache instance.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	entries    map[cacheKey]*Build
	order      []cacheKey // insertion order for FIFO eviction
	hits       int64
	misses     int64
}

// NewCache returns an empty cache bounded to maxEntries (<= 0 means
// DefaultCacheEntries).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	return &Cache{maxEntries: maxEntries, entries: map[cacheKey]*Build{}}
}

// DefaultCache is the process-wide build cache used when Options.Cache
// is nil.
var DefaultCache = NewCache(DefaultCacheEntries)

// CacheStats reports build-cache effectiveness.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// Stats returns a snapshot of this cache's counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Clear empties the cache and resets its counters.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[cacheKey]*Build{}
	c.order = nil
	c.hits, c.misses = 0, 0
}

// Stats returns a snapshot of the DefaultCache counters.
//
// Deprecated: compatibility wrapper — use DefaultCache.Stats (or the
// Stats of the Cache you injected via Options.Cache).
func Stats() CacheStats { return DefaultCache.Stats() }

// ClearCache empties the DefaultCache and resets its counters.
//
// Deprecated: compatibility wrapper — use DefaultCache.Clear.
func ClearCache() { DefaultCache.Clear() }

// cacheInstance resolves the cache these Options address.
func (o Options) cacheInstance() *Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return DefaultCache
}

// cacheable reports whether a build under these options may be cached:
// caller-supplied analysis summaries are an out-of-band input the key
// cannot capture, so such builds always compile fresh.
func (o Options) cacheable() bool {
	return !o.NoCache && o.Analysis.Summaries == nil
}

// key derives the cache key for one compilation.
func (o Options) key(name, source string) cacheKey {
	a := o.Analysis
	a.Summaries = nil
	return cacheKey{
		name:        name,
		srcHash:     sha256.Sum256([]byte(source)),
		inlineLimit: o.InlineLimit,
		workers:     o.Workers,
		analysis:    fmt.Sprintf("%+v", a),
	}
}

// get returns a caller-private copy of a cached build.
func (c *Cache) get(k cacheKey) (*Build, bool) {
	c.mu.Lock()
	b, ok := c.entries[k]
	if !ok {
		c.misses++
		c.mu.Unlock()
		obs.Count("pipeline.cache.misses", 1)
		obs.Instant("main", "cache", "build-cache-miss")
		return nil, false
	}
	c.hits++
	c.mu.Unlock()
	obs.Count("pipeline.cache.hits", 1)
	obs.Instant("main", "cache", "build-cache-hit")
	cp := *b
	cp.CacheHit = true
	return &cp, true
}

// put stores a build, evicting the oldest entry at capacity.
func (c *Cache) put(k cacheKey, b *Build) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	if len(c.order) >= c.maxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = b
	c.order = append(c.order, k)
}
