package pipeline

import (
	"crypto/sha256"
	"fmt"
	"sync"
)

// The build cache memoizes Compile by content: experiments and tools
// recompile the same six workload sources dozens of times across table
// rows, figure sweeps, and differential runs, and every recompilation of
// identical inputs produces an identical Build (compilation and analysis
// are deterministic). Entries are keyed by source hash × options, never
// by anything ambient, so a hit is exact.
//
// Cached Builds share the Program and Report pointers with the original
// (both are treated as immutable after Compile); the Build struct itself
// is copied so per-use metadata (CacheHit, timing fields a caller zeroes)
// stays private to each caller.

// buildCacheMaxEntries bounds the cache; at the limit the oldest entry is
// evicted (FIFO — the experiment drivers sweep configurations in passes,
// so recency is a good proxy for reuse).
const buildCacheMaxEntries = 128

// cacheKey identifies a build by everything that can influence its
// output. Workers is semantically inert (results are deterministic for
// any worker count) but stays in the key so that differential tests
// comparing worker counts still compile each configuration independently.
type cacheKey struct {
	name        string
	srcHash     [32]byte
	inlineLimit int
	workers     int
	analysis    string
}

type buildCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*Build
	order   []cacheKey // insertion order for FIFO eviction
	hits    int64
	misses  int64
}

var cache = &buildCache{entries: map[cacheKey]*Build{}}

// CacheStats reports build-cache effectiveness.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// Stats returns a snapshot of the build cache counters.
func Stats() CacheStats {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return CacheStats{Hits: cache.hits, Misses: cache.misses, Entries: len(cache.entries)}
}

// ClearCache empties the build cache and resets its counters.
func ClearCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.entries = map[cacheKey]*Build{}
	cache.order = nil
	cache.hits, cache.misses = 0, 0
}

// cacheable reports whether a build under these options may be cached:
// caller-supplied analysis summaries are an out-of-band input the key
// cannot capture, so such builds always compile fresh.
func (o Options) cacheable() bool {
	return !o.NoCache && o.Analysis.Summaries == nil
}

// key derives the cache key for one compilation.
func (o Options) key(name, source string) cacheKey {
	a := o.Analysis
	a.Summaries = nil
	return cacheKey{
		name:        name,
		srcHash:     sha256.Sum256([]byte(source)),
		inlineLimit: o.InlineLimit,
		workers:     o.Workers,
		analysis:    fmt.Sprintf("%+v", a),
	}
}

// get returns a caller-private copy of a cached build.
func (c *buildCache) get(k cacheKey) (*Build, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	cp := *b
	cp.CacheHit = true
	return &cp, true
}

// put stores a build, evicting the oldest entry at capacity.
func (c *buildCache) put(k cacheKey, b *Build) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	if len(c.order) >= buildCacheMaxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[k] = b
	c.order = append(c.order, k)
}
