package pipeline

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"satbelim/internal/obs"
)

// The build cache memoizes Compile by content: experiments and tools
// recompile the same six workload sources dozens of times across table
// rows, figure sweeps, and differential runs, and the satbd daemon sees
// the same program keys from many tenants at once. Every recompilation of
// identical inputs produces an identical Build (compilation and analysis
// are deterministic), so entries are keyed by source hash × options,
// never by anything ambient, and a hit is exact.
//
// Structure: the key space is split across shards, each an independently
// locked LRU, so concurrent daemon requests touching different programs
// never contend on one mutex. On top of the shards sits a singleflight
// layer: N concurrent compiles of the same key run the compile once — the
// first caller (the "winner") compiles, followers block and share the
// result. Only clean results are shared; a winner whose build errored or
// degraded on wall-clock grounds (deadline, cancellation — conditions of
// that request, not of the key) keeps it private and followers compile
// for themselves, so one request's deadline never bleeds into another's
// result.
//
// Cached Builds share the Program and Report pointers with the original
// (both are treated as immutable after Compile); the Build struct itself
// is copied so per-use metadata (CacheHit, timing fields a caller zeroes)
// stays private to each caller.
//
// The cache is an injectable value: Options.Cache selects the instance,
// nil meaning the process-wide DefaultCache. Tests, embedders, and the
// satbd daemon construct their own with NewCache.

// DefaultCacheEntries bounds DefaultCache; at the limit each shard evicts
// its least-recently-used entry.
const DefaultCacheEntries = 128

// cacheShardCount is the number of independently locked LRU shards.
const cacheShardCount = 8

// cacheKey identifies a build by everything that can influence its
// output. Workers is semantically inert (results are deterministic for
// any worker count) but stays in the key so that differential tests
// comparing worker counts still compile each configuration independently.
// Runtime is deliberately absent: VM configuration cannot influence a
// compile, so builds differing only in Runtime share an entry.
type cacheKey struct {
	name        string
	srcHash     [32]byte
	inlineLimit int
	workers     int
	analysis    string
}

// shard maps a key onto its LRU shard (FNV-1a over the key fields).
func (k cacheKey) shard() int {
	h := fnv.New32a()
	h.Write([]byte(k.name))
	h.Write(k.srcHash[:])
	fmt.Fprintf(h, "|%d|%d|%s", k.inlineLimit, k.workers, k.analysis)
	return int(h.Sum32() % cacheShardCount)
}

// CacheFaultHook is an injectable shard-failure hook for chaos testing:
// when it returns true for an operation ("get" or "put") on a shard, that
// operation fails (the get misses, the put is dropped). A failing shard
// only costs recomputation — correctness never depends on the cache.
type CacheFaultHook func(op string, shard int) bool

// cacheShard is one independently locked LRU.
type cacheShard struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key cacheKey
	b   *Build
}

// flightCall is one in-flight compilation for singleflight coalescing.
type flightCall struct {
	done chan struct{}
	// b is set before done closes; shared reports whether followers may
	// adopt it (false for errors and wall-clock degradations, which are
	// private to the winner's request).
	b      *Build
	shared bool
}

// Cache is a content-addressed build cache instance: sharded LRU storage
// plus singleflight compile coalescing. All methods are safe for
// concurrent use.
type Cache struct {
	shards [cacheShardCount]cacheShard

	flightMu sync.Mutex
	flight   map[cacheKey]*flightCall

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
	faultDrop atomic.Int64

	hook atomic.Pointer[CacheFaultHook]
}

// NewCache returns an empty cache bounded to maxEntries in total (<= 0
// means DefaultCacheEntries). The bound is split evenly across shards, so
// per-shard capacity is maxEntries/8 (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultCacheEntries
	}
	perShard := maxEntries / cacheShardCount
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{flight: map[cacheKey]*flightCall{}}
	for i := range c.shards {
		c.shards[i].max = perShard
		c.shards[i].entries = map[cacheKey]*list.Element{}
		c.shards[i].lru = list.New()
	}
	return c
}

// DefaultCache is the process-wide build cache used when Options.Cache
// is nil. One-shot CLIs share it; the satbd daemon injects its own
// instance so daemon state never rides on a package global.
var DefaultCache = NewCache(DefaultCacheEntries)

// SetFaultHook installs (or, with nil, removes) the chaos-testing shard
// failure hook.
func (c *Cache) SetFaultHook(h CacheFaultHook) {
	if h == nil {
		c.hook.Store(nil)
		return
	}
	c.hook.Store(&h)
}

// faulted consults the installed hook for one shard operation.
func (c *Cache) faulted(op string, shard int) bool {
	hp := c.hook.Load()
	if hp == nil {
		return false
	}
	if (*hp)(op, shard) {
		c.faultDrop.Add(1)
		obs.Count("pipeline.cache.fault_drops", 1)
		return true
	}
	return false
}

// CacheStats reports build-cache effectiveness. Hits counts servings from
// the LRU, Coalesced counts compiles avoided by singleflight (a follower
// adopting an in-flight winner's result), Misses counts actual compiles
// entered through the cache, Evictions counts LRU displacements, and
// FaultDrops counts operations failed by the chaos hook.
type CacheStats struct {
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Entries    int   `json:"entries"`
	Evictions  int64 `json:"evictions"`
	Coalesced  int64 `json:"coalesced"`
	FaultDrops int64 `json:"fault_drops,omitempty"`
}

// Stats returns a snapshot of this cache's counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Coalesced:  c.coalesced.Load(),
		FaultDrops: c.faultDrop.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return s
}

// Clear empties the cache and resets its counters. In-flight compiles
// are unaffected (they complete and store into the cleared cache).
func (c *Cache) Clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = map[cacheKey]*list.Element{}
		sh.lru = list.New()
		sh.mu.Unlock()
	}
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.coalesced.Store(0)
	c.faultDrop.Store(0)
}

// Stats returns a snapshot of the DefaultCache counters.
//
// Deprecated: compatibility wrapper — use DefaultCache.Stats (or the
// Stats of the Cache you injected via Options.Cache).
func Stats() CacheStats { return DefaultCache.Stats() }

// ClearCache empties the DefaultCache and resets its counters.
//
// Deprecated: compatibility wrapper — use DefaultCache.Clear.
func ClearCache() { DefaultCache.Clear() }

// cacheInstance resolves the cache these Options address.
func (o Options) cacheInstance() *Cache {
	if o.Cache != nil {
		return o.Cache
	}
	return DefaultCache
}

// cacheable reports whether a build under these options may be cached:
// caller-supplied analysis summaries are an out-of-band input the key
// cannot capture, so such builds always compile fresh.
func (o Options) cacheable() bool {
	return !o.NoCache && o.Analysis.Summaries == nil
}

// key derives the cache key for one compilation.
func (o Options) key(name, source string) cacheKey {
	a := o.Analysis
	a.Summaries = nil
	return cacheKey{
		name:        name,
		srcHash:     sha256.Sum256([]byte(source)),
		inlineLimit: o.InlineLimit,
		workers:     o.Workers,
		analysis:    fmt.Sprintf("%+v", a),
	}
}

// get returns the cached build for a key, refreshing its recency.
func (c *Cache) get(k cacheKey) (*Build, bool) {
	shard := k.shard()
	if c.faulted("get", shard) {
		return nil, false
	}
	sh := &c.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[k]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).b, true
}

// put stores a build, evicting the shard's least-recently-used entry at
// capacity.
func (c *Cache) put(k cacheKey, b *Build) {
	shard := k.shard()
	if c.faulted("put", shard) {
		return
	}
	sh := &c.shards[shard]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[k]; ok {
		sh.lru.MoveToFront(el)
		return
	}
	if sh.lru.Len() >= sh.max {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
		obs.Count("pipeline.cache.evictions", 1)
	}
	sh.entries[k] = sh.lru.PushFront(&cacheEntry{key: k, b: b})
}

// do runs one cacheable compilation with hit lookup and singleflight
// coalescing. It returns the build, whether it came from another request
// (a cache hit or a coalesced in-flight result — the caller must then
// take a private copy), and the compile error.
//
// Error and wall-clock-degraded results are never shared: the winner
// returns its own outcome and followers loop around to compile (or
// coalesce on a newer winner) themselves. The loop terminates because a
// follower only re-enters it after some winner completed, and fn itself
// observes the caller's context.
func (c *Cache) do(k cacheKey, fn func() (*Build, error)) (b *Build, fromCache bool, err error) {
	for {
		if b, ok := c.get(k); ok {
			c.hits.Add(1)
			obs.Count("pipeline.cache.hits", 1)
			obs.Instant("main", "cache", "build-cache-hit")
			return b, true, nil
		}
		c.flightMu.Lock()
		if call, ok := c.flight[k]; ok {
			c.flightMu.Unlock()
			<-call.done
			if call.shared {
				c.coalesced.Add(1)
				obs.Count("pipeline.cache.coalesced", 1)
				obs.Instant("main", "cache", "build-cache-coalesced")
				return call.b, true, nil
			}
			continue
		}
		call := &flightCall{done: make(chan struct{})}
		c.flight[k] = call
		c.flightMu.Unlock()

		c.misses.Add(1)
		obs.Count("pipeline.cache.misses", 1)
		obs.Instant("main", "cache", "build-cache-miss")
		b, err := fn()
		call.b = b
		call.shared = err == nil && shareable(b)
		if call.shared {
			c.put(k, b)
		}
		c.flightMu.Lock()
		delete(c.flight, k)
		c.flightMu.Unlock()
		close(call.done)
		return b, false, err
	}
}

// shareable reports whether a successful build may be stored and handed
// to coalesced followers: a build containing wall-clock degradations
// (deadline, cancellation) reflects the winner request's time budget, not
// the key, so it stays private and is never cached.
func shareable(b *Build) bool {
	if b.Report == nil {
		return true
	}
	for _, m := range b.Report.Degraded() {
		if m.Degraded.TimeDriven() {
			return false
		}
	}
	return true
}
