package pipeline

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"satbelim/internal/core"
)

// sameShardKeys finds n distinct cache keys that land on one shard, so
// LRU behaviour can be exercised deterministically.
func sameShardKeys(t *testing.T, n int) []cacheKey {
	t.Helper()
	byShard := map[int][]cacheKey{}
	for i := 0; ; i++ {
		if i > 10000 {
			t.Fatal("could not find same-shard keys")
		}
		k := Options{}.key(fmt.Sprintf("p%d", i), "src")
		s := k.shard()
		byShard[s] = append(byShard[s], k)
		if len(byShard[s]) == n {
			return byShard[s]
		}
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(3 * cacheShardCount) // 3 entries per shard
	keys := sameShardKeys(t, 4)
	builds := make([]*Build, len(keys))
	for i := range builds {
		builds[i] = &Build{Name: fmt.Sprintf("b%d", i)}
	}

	// Fill the shard, then refresh key 0 so key 1 is least recently used.
	c.put(keys[0], builds[0])
	c.put(keys[1], builds[1])
	c.put(keys[2], builds[2])
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	c.put(keys[3], builds[3]) // at capacity: must evict the LRU entry

	if _, ok := c.get(keys[1]); ok {
		t.Error("least-recently-used entry (key 1) survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		b, ok := c.get(keys[i])
		if !ok || b != builds[i] {
			t.Errorf("key %d evicted or replaced, want retained", i)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction / 3 entries", s)
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	c := NewCache(0)
	k := Options{}.key("sf", "src")
	b0 := &Build{Name: "sf"}
	winnerIn := make(chan struct{})
	release := make(chan struct{})
	var extraCompiles atomic.Int32

	const followers = 8
	results := make(chan *Build, followers+1)
	go func() {
		b, fromCache, err := c.do(k, func() (*Build, error) {
			close(winnerIn)
			<-release
			return b0, nil
		})
		if err != nil || fromCache {
			t.Errorf("winner: fromCache=%v err=%v", fromCache, err)
		}
		results <- b
	}()
	<-winnerIn

	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, fromCache, err := c.do(k, func() (*Build, error) {
				extraCompiles.Add(1)
				return b0, nil
			})
			if err != nil || !fromCache {
				t.Errorf("follower: fromCache=%v err=%v", fromCache, err)
			}
			results <- b
		}()
	}
	time.Sleep(50 * time.Millisecond) // let followers reach the in-flight wait
	close(release)
	wg.Wait()

	for i := 0; i < followers+1; i++ {
		if b := <-results; b != b0 {
			t.Fatal("coalesced caller got a different build")
		}
	}
	if n := extraCompiles.Load(); n != 0 {
		t.Errorf("%d redundant compiles ran, want 0 (singleflight)", n)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 compile", s.Misses)
	}
	if s.Hits+s.Coalesced != followers {
		t.Errorf("hits(%d)+coalesced(%d) = %d, want %d", s.Hits, s.Coalesced, s.Hits+s.Coalesced, followers)
	}
}

func TestCacheWinnerErrorNotSharedWithFollowers(t *testing.T) {
	c := NewCache(0)
	k := Options{}.key("err", "src")
	errBoom := errors.New("boom")
	winnerIn := make(chan struct{})
	release := make(chan struct{})

	winnerErr := make(chan error, 1)
	go func() {
		_, _, err := c.do(k, func() (*Build, error) {
			close(winnerIn)
			<-release
			return nil, errBoom
		})
		winnerErr <- err
	}()
	<-winnerIn

	followerB := make(chan *Build, 1)
	go func() {
		b, fromCache, err := c.do(k, func() (*Build, error) {
			return &Build{Name: "good"}, nil
		})
		if err != nil {
			t.Errorf("follower after winner error must recompile cleanly: %v", err)
		}
		if fromCache {
			t.Error("follower must not adopt an errored result")
		}
		followerB <- b
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-winnerErr; !errors.Is(err, errBoom) {
		t.Errorf("winner error = %v, want boom", err)
	}
	if b := <-followerB; b == nil || b.Name != "good" {
		t.Errorf("follower build = %+v, want its own clean compile", b)
	}
	s := c.Stats()
	if s.Misses != 2 || s.Coalesced != 0 {
		t.Errorf("stats = %+v, want 2 misses (error never shared) / 0 coalesced", s)
	}
}

func TestCacheTimeDrivenDegradedNeverStored(t *testing.T) {
	c := NewCache(0)

	// A wall-clock degradation (this request's deadline, not the key's
	// content) must stay private: the next request recompiles.
	k := Options{}.key("timed", "src")
	timed := &Build{Report: &core.ProgramReport{Methods: []*core.MethodReport{
		{Degraded: core.DegradeCancelled},
	}}}
	b, fromCache, err := c.do(k, func() (*Build, error) { return timed, nil })
	if err != nil || fromCache || b != timed {
		t.Fatalf("winner: b=%p fromCache=%v err=%v", b, fromCache, err)
	}
	recompiled := false
	if _, fromCache, _ = c.do(k, func() (*Build, error) {
		recompiled = true
		return &Build{}, nil
	}); !recompiled || fromCache {
		t.Error("time-driven degraded build was cached; second request must recompile")
	}

	// A structural degradation (visit budget — a property of key ×
	// options, deterministic) IS cacheable.
	k2 := Options{}.key("structural", "src")
	vb := &Build{Report: &core.ProgramReport{Methods: []*core.MethodReport{
		{Degraded: core.DegradeVisitBudget},
	}}}
	if _, _, err := c.do(k2, func() (*Build, error) { return vb, nil }); err != nil {
		t.Fatal(err)
	}
	b2, fromCache, err := c.do(k2, func() (*Build, error) {
		t.Error("structurally degraded build must be served from cache")
		return nil, errors.New("unreachable")
	})
	if err != nil || !fromCache || b2 != vb {
		t.Errorf("structural degradation not cached: fromCache=%v err=%v", fromCache, err)
	}
}

func TestCacheFaultHookDegradesToRecompute(t *testing.T) {
	c := NewCache(0)
	opts := Options{InlineLimit: 50, Analysis: core.Options{Mode: core.ModeFieldArray}, Cache: c}

	c.SetFaultHook(func(op string, shard int) bool { return true })
	for i := 0; i < 2; i++ {
		b, err := Compile("faulty", cacheTestSrc, opts)
		if err != nil {
			t.Fatalf("a failing cache must only cost recomputation: %v", err)
		}
		if b.CacheHit {
			t.Error("hit through a fully faulted cache")
		}
	}
	s := c.Stats()
	if s.Entries != 0 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 0 entries / 2 misses under total cache failure", s)
	}
	if s.FaultDrops != 4 { // per compile: one faulted get + one dropped put
		t.Errorf("FaultDrops = %d, want 4", s.FaultDrops)
	}

	// Removing the hook restores normal caching.
	c.SetFaultHook(nil)
	if b, err := Compile("faulty", cacheTestSrc, opts); err != nil || b.CacheHit {
		t.Fatalf("first post-hook compile: hit=%v err=%v", b.CacheHit, err)
	}
	if b, err := Compile("faulty", cacheTestSrc, opts); err != nil || !b.CacheHit {
		t.Fatalf("second post-hook compile must hit: err=%v", err)
	}
}

// degradeSet renders a report's degradations in a scheduling-independent
// canonical form.
func degradeSet(rep *core.ProgramReport) string {
	var out []string
	for _, m := range rep.Degraded() {
		out = append(out, fmt.Sprintf("%s:%s", m.Method.QualifiedName(), m.Degraded))
	}
	sort.Strings(out)
	return fmt.Sprint(out)
}

// TestConcurrentDegradedCompilesDeterministic is the concurrent-
// degradation satellite: many simultaneous Compile calls with starved
// budgets against one shared cache must each observe the same
// deterministic Degraded() result as an isolated sequential compile —
// no cross-request state bleed between budget classes or programs.
// Run under -race (the CI test job does).
func TestConcurrentDegradedCompilesDeterministic(t *testing.T) {
	const variants = 4
	srcs := make([]string, variants)
	for v := range srcs {
		srcs[v] = fmt.Sprintf(cacheTestSrc+"\n// variant %d\n", v)
	}
	budgets := []int{6, 1 << 30} // starved vs. effectively unlimited

	optsFor := func(budget int, cache *Cache, noCache bool) Options {
		return Options{
			InlineLimit: 50,
			Workers:     2,
			Analysis:    core.Options{Mode: core.ModeFieldArray, MaxBlockVisits: budget},
			Cache:       cache,
			NoCache:     noCache,
		}
	}

	// Sequential reference: each (variant, budget) compiled in isolation.
	type ref struct {
		degraded string
		totals   [5]int
	}
	refs := map[[2]int]ref{}
	for v := range srcs {
		for bi, budget := range budgets {
			b, err := Compile(fmt.Sprintf("conc%d", v), srcs[v], optsFor(budget, nil, true))
			if err != nil {
				t.Fatal(err)
			}
			r := ref{degraded: degradeSet(b.Report)}
			r.totals[0], r.totals[1], r.totals[2], r.totals[3], r.totals[4] = b.Report.Totals()
			refs[[2]int{v, bi}] = r
		}
	}
	if refs[[2]int{0, 0}].degraded == refs[[2]int{0, 1}].degraded {
		t.Fatal("starved budget did not degrade the workload; test needs a tighter budget")
	}

	shared := NewCache(0)
	const requests = 32
	var wg sync.WaitGroup
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, bi := i%variants, (i/variants)%len(budgets)
			b, err := Compile(fmt.Sprintf("conc%d", v), srcs[v], optsFor(budgets[bi], shared, false))
			if err != nil {
				errs[i] = err
				return
			}
			want := refs[[2]int{v, bi}]
			if got := degradeSet(b.Report); got != want.degraded {
				errs[i] = fmt.Errorf("request %d (variant %d, budget %d): degraded %v, want %v",
					i, v, budgets[bi], got, want.degraded)
				return
			}
			var tot [5]int
			tot[0], tot[1], tot[2], tot[3], tot[4] = b.Report.Totals()
			if tot != want.totals {
				errs[i] = fmt.Errorf("request %d: totals %v, want %v (cross-request bleed?)", i, tot, want.totals)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	s := shared.Stats()
	if s.Misses > int64(variants*len(budgets)) {
		t.Errorf("%d misses for %d distinct keys: cache or singleflight not coalescing", s.Misses, variants*len(budgets))
	}
}
