package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/progen"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// sweepPrograms are the differential-sweep inputs: handwritten programs
// that exercise the interprocedural summary machinery (fresh returns,
// constructor pre-null facts, arg-field publication, mutual recursion)
// plus a slice of campaign-generator seeds for breadth.
func sweepPrograms() map[string]string {
	progs := map[string]string{
		// A callee that publishes a field of its argument: the summary
		// must compromise the published object so the caller keeps the
		// barrier on the post-call store (the PR's core soundness
		// regression, here end-to-end through the pipeline).
		"arg-field-publish": `
class C { C link; C g; }
class G { static C gs; }
class Main {
  static int foo(C q) { G.gs = q.link; return 0; }
  static void main() {
    C y = new C();
    C x = new C();
    x.link = y;
    int k = Main.foo(x);
    y.g = new C();
    print(k);
  }
}`,
		// Fresh factory returns and a read-only helper: the cases the
		// summaries are supposed to win at inline limit 0.
		"fresh-returns": `
class T { int v; T f; }
class Main {
  static T mk(int v) { T t = new T(); t.v = v; return t; }
  static T chain() { return Main.mk(7); }
  static int ro(T t) { return t.v; }
  static void main() {
    T a = Main.mk(1);
    a.f = Main.chain();
    print(Main.ro(a) + a.f.v);
  }
}`,
		// Mutual recursion with publication inside the cycle: the
		// fixed-point compromise must survive the cyclic SCC schedule.
		"mutual-recursion": `
class C { int a; C link; }
class G { static C g0; static int acc; }
class Main {
  static int ra(int n, C q) { if (n <= 0) return q.a; return Main.rb(n - 1, q); }
  static int rb(int n, C q) { G.g0 = q; if (n <= 0) return 0; return Main.ra(n - 1, q) + 1; }
  static void main() {
    C c = new C();
    G.acc = Main.ra(4, c);
    c.link = new C();
    print(G.acc + c.a);
  }
}`,
	}
	for _, seed := range []int64{3, 11, 27} {
		progs[string('a'+rune(seed%26))+"-gen"] = progen.Generate(seed, progen.CampaignConfig())
	}
	return progs
}

// elidedSites collects the set of (method, pc) store sites any elision
// flag removed the barrier from.
func elidedSites(p *bytecode.Program) map[[2]interface{}]bool {
	out := map[[2]interface{}]bool{}
	for _, m := range p.Methods() {
		for pc, in := range m.Code {
			if in.Elide || in.ElideNullOrSame || in.ElideRearrange {
				out[[2]interface{}{m.QualifiedName(), pc}] = true
			}
		}
	}
	return out
}

// TestInterprocDifferentialSweep is the PR's acceptance sweep:
// interprocedural summaries on vs off, across the paper's inline-limit
// ladder and every snapshot-sound barrier flavor with the runtime
// elision oracle armed. Summaries must be observationally invisible
// (output, steps, allocations, GC cycles), oracle-clean, and — at every
// limit — elide a superset of the intraprocedural sites.
func TestInterprocDifferentialSweep(t *testing.T) {
	limits := []int{0, 25, 50, 100, 200}
	if testing.Short() {
		limits = []int{0, 100}
	}
	flavors := []satb.BarrierMode{
		satb.ModeConditional, satb.ModeYuasa, satb.ModeDijkstra, satb.ModeHybrid,
	}
	for name, src := range sweepPrograms() {
		for _, limit := range limits {
			builds := map[bool]*Build{}
			for _, interproc := range []bool{false, true} {
				b, err := Compile(name, src, Options{
					InlineLimit: limit,
					Analysis: core.Options{
						Mode:            core.ModeFieldArray,
						Interprocedural: interproc,
					},
					NoCache: true,
				})
				if err != nil {
					t.Fatalf("%s limit %d interproc %v: %v", name, limit, interproc, err)
				}
				builds[interproc] = b
			}

			// Elision superset at equal limits: everything the plain
			// analysis removes, the summary-equipped analysis removes too.
			off := elidedSites(builds[false].Program)
			on := elidedSites(builds[true].Program)
			for site := range off {
				if !on[site] {
					t.Errorf("%s limit %d: %v elided intraprocedurally but not with summaries",
						name, limit, site)
				}
			}

			for _, mode := range flavors {
				cfg := vm.Config{
					Barrier:            mode,
					GC:                 vm.GCSATB,
					TriggerEveryAllocs: 64,
					CheckInvariant:     true,
					CheckElisions:      true,
					MaxSteps:           20_000_000,
				}
				onRes, err := builds[true].Run(cfg)
				if err != nil {
					t.Fatalf("%s limit %d %v interproc: %v", name, limit, mode, err)
				}
				offRes, err := builds[false].Run(cfg)
				if err != nil {
					t.Fatalf("%s limit %d %v plain: %v", name, limit, mode, err)
				}
				if !reflect.DeepEqual(onRes.Output, offRes.Output) {
					t.Fatalf("%s limit %d %v: summaries changed output %v -> %v",
						name, limit, mode, offRes.Output, onRes.Output)
				}
				if onRes.Steps != offRes.Steps || onRes.Allocated != offRes.Allocated ||
					onRes.Cycles != offRes.Cycles {
					t.Fatalf("%s limit %d %v: summaries changed execution: steps %d/%d allocated %d/%d cycles %d/%d",
						name, limit, mode, onRes.Steps, offRes.Steps,
						onRes.Allocated, offRes.Allocated, onRes.Cycles, offRes.Cycles)
				}
				if s := onRes.Counters.Summarize(); len(s.UnsoundSites) > 0 {
					t.Fatalf("%s limit %d %v: unsound interprocedural elisions %v",
						name, limit, mode, s.UnsoundSites)
				}
			}
		}
	}
}

// TestInterprocWinsAtInlineLimitZero pins the PR's reason to exist: with
// inlining off, the summary-equipped analysis strictly out-elides the
// intraprocedural one on the fresh-returns program.
func TestInterprocWinsAtInlineLimitZero(t *testing.T) {
	src := sweepPrograms()["fresh-returns"]
	counts := map[bool]int{}
	for _, interproc := range []bool{false, true} {
		b, err := Compile("win", src, Options{
			InlineLimit: 0,
			Analysis:    core.Options{Mode: core.ModeFieldArray, Interprocedural: interproc},
			NoCache:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[interproc] = len(elidedSites(b.Program))
	}
	if counts[true] <= counts[false] {
		t.Fatalf("summaries must strictly win at limit 0: interproc %d vs plain %d",
			counts[true], counts[false])
	}
}

// TestConcurrentInterprocCompilesMatchSequential is the race check for
// the condensed-callgraph summary scheduler: many goroutines compiling
// the same interprocedural build through the shared cache must all see
// the exact elision decisions of an uncached sequential reference
// compile. Run under -race this also proves the SCC worker pool and the
// cache's singleflight layer are data-race free.
func TestConcurrentInterprocCompilesMatchSequential(t *testing.T) {
	src := sweepPrograms()["mutual-recursion"]
	opts := Options{
		InlineLimit: 0,
		Analysis:    core.Options{Mode: core.ModeFieldArray, Interprocedural: true},
	}
	refOpts := opts
	refOpts.NoCache = true
	refOpts.Workers = 1
	ref, err := Compile("ref", src, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	want := elidedSites(ref.Program)

	cacheOpts := opts
	cacheOpts.Cache = NewCache(8)
	cacheOpts.Workers = 8
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	builds := make([]*Build, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			builds[g], errs[g] = Compile("ref", src, cacheOpts)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got := elidedSites(builds[g].Program); !reflect.DeepEqual(got, want) {
			t.Fatalf("goroutine %d: elisions diverge from sequential reference:\ngot  %v\nwant %v",
				g, got, want)
		}
	}
}

// TestCacheKeyCoversSummaryOptions: two compilations differing only in a
// summary-layer option must never share a cache entry.
func TestCacheKeyCoversSummaryOptions(t *testing.T) {
	base := Options{InlineLimit: 0, Analysis: core.Options{Mode: core.ModeFieldArray}}
	variants := []Options{
		{InlineLimit: 0, Analysis: core.Options{Mode: core.ModeFieldArray, Interprocedural: true}},
		{InlineLimit: 0, Analysis: core.Options{Mode: core.ModeFieldArray, Interprocedural: true, UnsoundTrustAllSummaries: true}},
		{InlineLimit: 0, Analysis: core.Options{Mode: core.ModeFieldArray, Interprocedural: true, MaxSummaryRoundsPerSCC: 1}},
	}
	src := "class Main { static void main() { print(1); } }"
	seen := map[cacheKey]Options{base.key("k", src): base}
	for _, v := range variants {
		k := v.key("k", src)
		if prev, dup := seen[k]; dup {
			t.Fatalf("cache key collision between %+v and %+v", prev.Analysis, v.Analysis)
		}
		seen[k] = v
	}
}
