package pipeline

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/obs"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// compileAndExec does a fresh (uncached) compile + run of a workload under
// the given runtime config and returns the build and result.
func compileAndExec(t *testing.T, name string, rt vm.Config) (*Build, *vm.Result) {
	t.Helper()
	w, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(w.Name, w.Source, Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
		Runtime:     rt,
		NoCache:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	return b, res
}

// TestTracingIsObservationOnly proves the observability layer never
// perturbs semantics: a run with the collector enabled must be
// bit-identical — output, step counts, every barrier counter, every
// per-site statistic, GC totals — to the same run with tracing disabled.
func TestTracingIsObservationOnly(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("collector unexpectedly enabled at test start")
	}
	configs := []struct {
		name string
		rt   vm.Config
	}{
		{"plain", vm.Config{Barrier: satb.ModeConditional}},
		{"gc-oracle", vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 128,
			CheckInvariant:     true,
			CheckElisions:      true,
		}},
		{"switch-engine", vm.Config{Barrier: satb.ModeAlwaysLog, Engine: vm.EngineSwitch}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			bOff, off := compileAndExec(t, "jbb", cfg.rt)

			c := obs.Enable()
			bOn, on := compileAndExec(t, "jbb", cfg.rt)
			obs.Disable()

			if !reflect.DeepEqual(off.Output, on.Output) {
				t.Errorf("output diverged: %v vs %v", off.Output, on.Output)
			}
			if off.Steps != on.Steps {
				t.Errorf("steps diverged: %d vs %d", off.Steps, on.Steps)
			}
			if !reflect.DeepEqual(off.Counters, on.Counters) {
				t.Errorf("barrier counters diverged:\noff: %+v\non:  %+v",
					off.Counters.Summarize(), on.Counters.Summarize())
			}
			if off.Cycles != on.Cycles || off.FinalPauseWork != on.FinalPauseWork ||
				off.Allocated != on.Allocated || off.Swept != on.Swept ||
				off.ElisionChecks != on.ElisionChecks {
				t.Errorf("GC/oracle stats diverged: off=%+v on=%+v", off, on)
			}
			if off.TotalCost() != on.TotalCost() {
				t.Errorf("total cost diverged: %d vs %d", off.TotalCost(), on.TotalCost())
			}
			// The analysis result itself must match too.
			offT := totals(bOff)
			onT := totals(bOn)
			if offT != onT {
				t.Errorf("analysis totals diverged: %v vs %v", offT, onT)
			}
			// And the enabled run must actually have recorded something —
			// otherwise this test is vacuous.
			if len(c.Events()) == 0 {
				t.Error("enabled collector recorded no events")
			}
			if len(c.Counters()) == 0 {
				t.Error("enabled collector recorded no counters")
			}
		})
	}
}

type reportTotals struct {
	fieldSites, arraySites, fieldElided, arrayElided, nullOrSame int
}

func totals(b *Build) reportTotals {
	var t reportTotals
	if b.Report != nil {
		t.fieldSites, t.arraySites, t.fieldElided, t.arrayElided, t.nullOrSame = b.Report.Totals()
	}
	return t
}

// TestInjectableCacheIsolation verifies that a caller-supplied cache is
// fully isolated from the process-default one and from other instances.
func TestInjectableCacheIsolation(t *testing.T) {
	priv := NewCache(8)
	other := NewCache(8)
	before := DefaultCache.Stats()

	opts := Options{InlineLimit: 50, Cache: priv}
	b1, err := Compile("cacheinject", cacheTestSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b1.CacheHit {
		t.Error("first compile in a fresh private cache must miss")
	}
	b2, err := Compile("cacheinject", cacheTestSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !b2.CacheHit {
		t.Error("recompile against the private cache must hit")
	}
	if s := priv.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("private cache stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if s := other.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("unrelated cache instance touched: %+v", s)
	}
	after := DefaultCache.Stats()
	if after != before {
		t.Errorf("default cache touched by private-cache compiles: before=%+v after=%+v", before, after)
	}

	// The same compile against a different instance misses independently.
	b3, err := Compile("cacheinject", cacheTestSrc, Options{InlineLimit: 50, Cache: other})
	if err != nil {
		t.Fatal(err)
	}
	if b3.CacheHit {
		t.Error("fresh cache instance must not share entries")
	}
}

// TestCacheHitCarriesCallerRuntime pins the rule that a cache hit adopts
// the calling compile's Options — in particular its Runtime — rather than
// the config of whichever compile populated the entry.
func TestCacheHitCarriesCallerRuntime(t *testing.T) {
	cache := NewCache(8)
	base := Options{InlineLimit: 50, Cache: cache}

	first := base
	first.Runtime = vm.Config{Barrier: satb.ModeAlwaysLog}
	if _, err := Compile("rtstamp", cacheTestSrc, first); err != nil {
		t.Fatal(err)
	}

	second := base
	second.Runtime = vm.Config{Barrier: satb.ModeNoBarrier}
	b, err := Compile("rtstamp", cacheTestSrc, second)
	if err != nil {
		t.Fatal(err)
	}
	if !b.CacheHit {
		t.Fatal("second compile must hit (Runtime is not part of the cache key)")
	}
	if b.Options.Runtime.Barrier != satb.ModeNoBarrier {
		t.Errorf("cache hit kept the populating compile's Runtime: %+v", b.Options.Runtime)
	}
	res, err := b.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Logged != 0 {
		t.Errorf("Exec ran under the wrong barrier mode: %d log entries under ModeNoBarrier", res.Counters.Logged)
	}
}
