package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

const src = `
class P { int x; P(int x0) { x = x0; } }
class T {
    static P keep;
    static void main() {
        P p = new P(3);
        T.keep = p;
        print(p.x);
    }
}
`

func TestCompileProducesRunnableBuild(t *testing.T) {
	b, err := Compile("t", src, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	if b.BytecodeBytes <= 0 {
		t.Error("bytecode size not recorded")
	}
	if b.InlinedCalls != 1 {
		t.Errorf("InlinedCalls = %d, want 1 (the ctor)", b.InlinedCalls)
	}
	if b.Report == nil {
		t.Fatal("analysis report missing")
	}
	if b.CompileTime() <= 0 {
		t.Error("compile time not recorded")
	}
	res, err := b.Run(vm.Config{Barrier: satb.ModeConditional})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{3}) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestCompileModeNoneSkipsAnalysis(t *testing.T) {
	b, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.Report != nil || b.AnalysisTime != 0 {
		t.Error("mode B should not run the analysis")
	}
}

func TestCompileErrorsArePropagated(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"syntax", `class A {`, "unexpected end of file"},
		{"type", `class A { static void main() { x = 1; } }`, "undefined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src, Options{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestCompiledCodeSizeShrinksWithElision(t *testing.T) {
	bB, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	bA, err := Compile("t", src, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	// This program has no eligible ref stores in main (p.x is an int
	// field), so sizes should be equal; use a program with a ref store.
	if bA.CompiledCodeSize() > bB.CompiledCodeSize() {
		t.Error("analysis must never grow modeled code size")
	}

	srcRef := `
class N { N next; }
class T { static void main() { N n = new N(); n.next = new N(); } }
`
	cB, err := Compile("t", srcRef, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	cA, err := Compile("t", srcRef, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cB.CompiledCodeSize()-cA.CompiledCodeSize(), BarrierInlineBytes; got != want {
		t.Errorf("one elided site should save %d bytes, saved %d", want, got)
	}
}

// TestParallelAnalysisDeterministic is the determinism contract of the
// parallel pipeline: on every workload, a single-worker build and an
// 8-worker build must produce byte-identical analysis reports and
// per-instruction elision bits. All analysis extensions are enabled so
// every elision flag is exercised.
func TestParallelAnalysisDeterministic(t *testing.T) {
	opts := core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true}
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			b1, err := Compile(w.Name, w.Source, Options{InlineLimit: 100, Analysis: opts, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			b8, err := Compile(w.Name, w.Source, Options{InlineLimit: 100, Analysis: opts, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			r1, r8 := b1.Report, b8.Report
			r1.AnalysisTime, r8.AnalysisTime = 0, 0
			if !reflect.DeepEqual(r1, r8) {
				t.Errorf("reports differ between Workers=1 and Workers=8:\n%s\nvs\n%s", r1, r8)
			}
			m1, m8 := b1.Program.Methods(), b8.Program.Methods()
			if len(m1) != len(m8) {
				t.Fatalf("method counts differ: %d vs %d", len(m1), len(m8))
			}
			for i := range m1 {
				if len(m1[i].Code) != len(m8[i].Code) {
					t.Fatalf("%s: code lengths differ", m1[i].QualifiedName())
				}
				for pc := range m1[i].Code {
					x, y := &m1[i].Code[pc], &m8[i].Code[pc]
					if x.Elide != y.Elide || x.ElideNullOrSame != y.ElideNullOrSame || x.ElideRearrange != y.ElideRearrange {
						t.Errorf("%s pc %d: elision bits differ: (%v,%v,%v) vs (%v,%v,%v)",
							m1[i].QualifiedName(), pc,
							x.Elide, x.ElideNullOrSame, x.ElideRearrange,
							y.Elide, y.ElideNullOrSame, y.ElideRearrange)
					}
				}
			}
		})
	}
}

// TestWorkersDefaultMatchesExplicit checks the GOMAXPROCS default path
// agrees with an explicit worker count.
func TestWorkersDefaultMatchesExplicit(t *testing.T) {
	opts := core.Options{Mode: core.ModeFieldArray}
	bDef, err := Compile("t", src, Options{InlineLimit: 100, Analysis: opts})
	if err != nil {
		t.Fatal(err)
	}
	bOne, err := Compile("t", src, Options{InlineLimit: 100, Analysis: opts, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, o := bDef.Report, bOne.Report
	d.AnalysisTime, o.AnalysisTime = 0, 0
	if !reflect.DeepEqual(d, o) {
		t.Error("default worker count changed analysis results")
	}
}

func TestInlineLimitChangesBytecodeSize(t *testing.T) {
	b0, err := Compile("t", src, Options{InlineLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	b100, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b100.BytecodeBytes <= b0.BytecodeBytes {
		t.Errorf("inlining should grow main: %d vs %d", b100.BytecodeBytes, b0.BytecodeBytes)
	}
}

// TestDegradationDeterministic extends the determinism contract to the
// degradation path: a budget every loop method exceeds must produce the
// same degraded reports and (cleared) elision bits at Workers=1 and
// Workers=8 — bail-out decisions cannot depend on scheduling.
func TestDegradationDeterministic(t *testing.T) {
	opts := core.Options{Mode: core.ModeFieldArray, NullOrSame: true, MaxBlockVisits: 1}
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			b1, err := Compile(w.Name, w.Source, Options{InlineLimit: 100, Analysis: opts, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			b8, err := Compile(w.Name, w.Source, Options{InlineLimit: 100, Analysis: opts, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(b1.Report.Degraded()) == 0 {
				t.Fatal("MaxBlockVisits=1 should degrade at least one method")
			}
			r1, r8 := b1.Report, b8.Report
			r1.AnalysisTime, r8.AnalysisTime = 0, 0
			if !reflect.DeepEqual(r1, r8) {
				t.Errorf("degraded reports differ between Workers=1 and Workers=8:\n%s\nvs\n%s", r1, r8)
			}
			m1, m8 := b1.Program.Methods(), b8.Program.Methods()
			for i := range m1 {
				for pc := range m1[i].Code {
					x, y := &m1[i].Code[pc], &m8[i].Code[pc]
					if x.Elide != y.Elide || x.ElideNullOrSame != y.ElideNullOrSame || x.ElideRearrange != y.ElideRearrange {
						t.Errorf("%s pc %d: elision bits differ under degradation", m1[i].QualifiedName(), pc)
					}
				}
			}
		})
	}
}
