package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const src = `
class P { int x; P(int x0) { x = x0; } }
class T {
    static P keep;
    static void main() {
        P p = new P(3);
        T.keep = p;
        print(p.x);
    }
}
`

func TestCompileProducesRunnableBuild(t *testing.T) {
	b, err := Compile("t", src, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	if b.BytecodeBytes <= 0 {
		t.Error("bytecode size not recorded")
	}
	if b.InlinedCalls != 1 {
		t.Errorf("InlinedCalls = %d, want 1 (the ctor)", b.InlinedCalls)
	}
	if b.Report == nil {
		t.Fatal("analysis report missing")
	}
	if b.CompileTime() <= 0 {
		t.Error("compile time not recorded")
	}
	res, err := b.Run(vm.Config{Barrier: satb.ModeConditional})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{3}) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestCompileModeNoneSkipsAnalysis(t *testing.T) {
	b, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.Report != nil || b.AnalysisTime != 0 {
		t.Error("mode B should not run the analysis")
	}
}

func TestCompileErrorsArePropagated(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"syntax", `class A {`, "unexpected end of file"},
		{"type", `class A { static void main() { x = 1; } }`, "undefined"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Compile("t", c.src, Options{})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want %q", err, c.want)
			}
		})
	}
}

func TestCompiledCodeSizeShrinksWithElision(t *testing.T) {
	bB, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	bA, err := Compile("t", src, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	// This program has no eligible ref stores in main (p.x is an int
	// field), so sizes should be equal; use a program with a ref store.
	if bA.CompiledCodeSize() > bB.CompiledCodeSize() {
		t.Error("analysis must never grow modeled code size")
	}

	srcRef := `
class N { N next; }
class T { static void main() { N n = new N(); n.next = new N(); } }
`
	cB, err := Compile("t", srcRef, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	cA, err := Compile("t", srcRef, Options{InlineLimit: 100, Analysis: core.Options{Mode: core.ModeFieldArray}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := cB.CompiledCodeSize()-cA.CompiledCodeSize(), BarrierInlineBytes; got != want {
		t.Errorf("one elided site should save %d bytes, saved %d", want, got)
	}
}

func TestInlineLimitChangesBytecodeSize(t *testing.T) {
	b0, err := Compile("t", src, Options{InlineLimit: 0})
	if err != nil {
		t.Fatal(err)
	}
	b100, err := Compile("t", src, Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	if b100.BytecodeBytes <= b0.BytecodeBytes {
		t.Errorf("inlining should grow main: %d vs %d", b100.BytecodeBytes, b0.BytecodeBytes)
	}
}
