package pipeline

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/progen"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// The differential harness drives generated programs through the full
// pipeline at several inline limits and worker counts and cross-checks:
//
//  1. program output is invariant across inline limit, worker count, and
//     barrier mode (elision must never change observable behavior);
//  2. analysis results are invariant across worker counts at each limit;
//  3. every elided store validates under the runtime soundness oracle;
//  4. no method degrades under default (unlimited) budgets.

var diffLimits = []int{0, 50, 200}

func diffSeeds(t *testing.T) []string {
	n := 12
	if testing.Short() {
		n = 4
	}
	return progen.Corpus(5000, n, progen.DefaultConfig())
}

func TestDifferentialInlineWorkerOracle(t *testing.T) {
	opts := core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true}
	for si, src := range diffSeeds(t) {
		var baseline []int64
		for _, limit := range diffLimits {
			b1, err := Compile("gen", src, Options{InlineLimit: limit, Analysis: opts, Workers: 1})
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", si, limit, err)
			}
			b8, err := Compile("gen", src, Options{InlineLimit: limit, Analysis: opts, Workers: 8})
			if err != nil {
				t.Fatalf("seed %d limit %d workers=8: %v", si, limit, err)
			}
			r1, r8 := b1.Report, b8.Report
			r1.AnalysisTime, r8.AnalysisTime = 0, 0
			if !reflect.DeepEqual(r1, r8) {
				t.Errorf("seed %d limit %d: reports differ across worker counts", si, limit)
			}
			if d := r1.Degraded(); len(d) > 0 {
				t.Errorf("seed %d limit %d: methods degraded under default budgets: %v", si, limit, d)
			}
			m1, m8 := b1.Program.Methods(), b8.Program.Methods()
			for i := range m1 {
				for pc := range m1[i].Code {
					x, y := &m1[i].Code[pc], &m8[i].Code[pc]
					if x.Elide != y.Elide || x.ElideNullOrSame != y.ElideNullOrSame || x.ElideRearrange != y.ElideRearrange {
						t.Errorf("seed %d limit %d %s pc %d: elision bits differ across worker counts",
							si, limit, m1[i].QualifiedName(), pc)
					}
				}
			}
			// Oracle run under concurrent marking: every elided store must
			// overwrite null on an unescaped target.
			res, err := b1.Run(vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 64,
				CheckInvariant:     true,
				CheckElisions:      true,
			})
			if err != nil {
				t.Fatalf("seed %d limit %d: oracle run failed: %v", si, limit, err)
			}
			if s := res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
				t.Errorf("seed %d limit %d: unsound sites %v", si, limit, s.UnsoundSites)
			}
			if baseline == nil {
				baseline = res.Output
			} else if !reflect.DeepEqual(baseline, res.Output) {
				t.Errorf("seed %d limit %d: output differs from limit %d baseline", si, limit, diffLimits[0])
			}
		}
	}
}

// TestDifferentialDegradedStillCorrect runs generated programs with a
// starvation budget: every method degrades to all-barriers, and the
// program must still run to the same output (degradation is sound, only
// less precise).
func TestDifferentialDegradedStillCorrect(t *testing.T) {
	full := core.Options{Mode: core.ModeFieldArray, NullOrSame: true}
	starved := full
	starved.MaxBlockVisits = 1
	for si, src := range diffSeeds(t) {
		bf, err := Compile("gen", src, Options{InlineLimit: 100, Analysis: full})
		if err != nil {
			t.Fatalf("seed %d: %v", si, err)
		}
		bs, err := Compile("gen", src, Options{InlineLimit: 100, Analysis: starved})
		if err != nil {
			t.Fatalf("seed %d starved: %v", si, err)
		}
		cfg := vm.Config{Barrier: satb.ModeConditional, GC: vm.GCSATB, TriggerEveryAllocs: 64, CheckInvariant: true, CheckElisions: true}
		rf, err := bf.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", si, err)
		}
		rs, err := bs.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d starved: %v", si, err)
		}
		if !reflect.DeepEqual(rf.Output, rs.Output) {
			t.Errorf("seed %d: degraded build changed program output", si)
		}
		if rs.ElisionChecks != 0 {
			t.Errorf("seed %d: degraded build still executed %d elided stores", si, rs.ElisionChecks)
		}
	}
}
