package pipeline

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

const cacheTestSrc = `
class Node { Node next; int v; }
class A {
    static void main() {
        Node head = null;
        int i = 0;
        while (i < 50) {
            Node n = new Node();
            n.v = i;
            n.next = head;
            head = n;
            i = i + 1;
        }
        int sum = 0;
        while (head != null) { sum = sum + head.v; head = head.next; }
        print(sum);
    }
}
`

func TestBuildCacheHitAndIsolation(t *testing.T) {
	ClearCache()
	defer ClearCache()
	opts := Options{InlineLimit: 50, Analysis: core.Options{Mode: core.ModeFieldArray}}

	b1, err := Compile("cachetest", cacheTestSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b1.CacheHit {
		t.Error("first compile must miss")
	}
	b2, err := Compile("cachetest", cacheTestSrc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !b2.CacheHit {
		t.Error("identical recompile must hit")
	}
	if b2.Program != b1.Program || b2.Report != b1.Report {
		t.Error("cache hit must share the compiled program and report")
	}
	if b2 == b1 {
		t.Error("cache hit must return a caller-private Build copy")
	}
	// Mutating the copy's metadata must not leak into later hits.
	b2.AnalysisTime = 0
	b3, _ := Compile("cachetest", cacheTestSrc, opts)
	if b3.AnalysisTime != b1.AnalysisTime {
		t.Error("caller mutation of a hit leaked into the cache")
	}

	s := Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 entry", s)
	}

	// Cached and fresh builds must run identically.
	r1, err := b1.Run(vm.Config{Barrier: satb.ModeConditional})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b2.Run(vm.Config{Barrier: satb.ModeConditional})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Steps != r2.Steps {
		t.Error("cached build diverges from fresh build at runtime")
	}
}

func TestBuildCacheKeySensitivity(t *testing.T) {
	ClearCache()
	defer ClearCache()
	base := Options{InlineLimit: 50, Analysis: core.Options{Mode: core.ModeFieldArray}}
	if _, err := Compile("keytest", cacheTestSrc, base); err != nil {
		t.Fatal(err)
	}

	variants := []Options{
		{InlineLimit: 25, Analysis: base.Analysis},                                             // inline limit
		{InlineLimit: 50, Analysis: core.Options{Mode: core.ModeField}},                        // analysis mode
		{InlineLimit: 50, Analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true}}, // extension flag
		{InlineLimit: 50, Analysis: base.Analysis, Workers: 1},                                 // worker count
	}
	for i, o := range variants {
		b, err := Compile("keytest", cacheTestSrc, o)
		if err != nil {
			t.Fatal(err)
		}
		if b.CacheHit {
			t.Errorf("variant %d must miss (different options)", i)
		}
	}
	// Different source content must miss even under the same name.
	b, err := Compile("keytest", cacheTestSrc+"\n// changed", base)
	if err != nil {
		t.Fatal(err)
	}
	if b.CacheHit {
		t.Error("changed source must miss")
	}
}

func TestBuildCacheBypass(t *testing.T) {
	ClearCache()
	defer ClearCache()
	opts := Options{InlineLimit: 50, NoCache: true}
	for i := 0; i < 2; i++ {
		b, err := Compile("nocache", cacheTestSrc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if b.CacheHit {
			t.Fatal("NoCache build must never hit")
		}
	}
	if s := Stats(); s.Entries != 0 || s.Hits != 0 {
		t.Errorf("NoCache builds must not touch the cache: %+v", s)
	}

	// Caller-supplied summaries are out-of-band input: never cached.
	w, err := workloads.Get("jack")
	if err != nil {
		t.Fatal(err)
	}
	sopts := Options{InlineLimit: 50, Analysis: core.Options{
		Mode: core.ModeFieldArray, Interprocedural: true, Summaries: core.Summaries{},
	}}
	for i := 0; i < 2; i++ {
		b, err := Compile("jack", w.Source, sopts)
		if err != nil {
			t.Fatal(err)
		}
		if b.CacheHit {
			t.Fatal("summary-supplied build must never hit")
		}
	}
}
