package bytecode

// Clone returns a deep copy of the method: instructions, slot types, and
// parameter lists are copied so that transformations (inlining, barrier
// annotation) on the copy never affect the original. Type values are
// shared; they are immutable by convention.
func (m *Method) Clone() *Method {
	cp := *m
	cp.Code = append([]Instr(nil), m.Code...)
	cp.SlotTypes = append([]*Type(nil), m.SlotTypes...)
	cp.Params = append([]*Type(nil), m.Params...)
	return &cp
}

// Clone returns a deep copy of the program. Classes and field descriptors
// are copied shallowly except for method bodies, which are deep-copied.
func (p *Program) Clone() *Program {
	cp := NewProgram()
	cp.Main = p.Main
	for name, c := range p.Classes {
		nc := &Class{Name: c.Name}
		nc.Fields = append([]*Field(nil), c.Fields...)
		for _, m := range c.Methods {
			nc.Methods = append(nc.Methods, m.Clone())
		}
		cp.Classes[name] = nc
	}
	return cp
}
