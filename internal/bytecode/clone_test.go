package bytecode

import "testing"

func TestMethodCloneIsDeep(t *testing.T) {
	b := NewBuilder("T", "m", true)
	slot := b.DeclareSlot(Int)
	b.Const(1)
	b.Store(slot)
	b.Return()
	m := b.Build()

	cp := m.Clone()
	cp.Code[0].A = 99
	cp.Code[0].Elide = true
	cp.SlotTypes[0] = Bool
	if m.Code[0].A == 99 || m.Code[0].Elide {
		t.Error("clone must not share instruction storage")
	}
	if m.SlotTypes[0] != Int {
		t.Error("clone must not share slot types")
	}
}

func TestProgramCloneIsolatesMethods(t *testing.T) {
	p := buildTinyProgram()
	cp := p.Clone()
	if cp.Main != p.Main {
		t.Error("main ref must be preserved")
	}
	cm := cp.Method(p.Main)
	cm.Code[0].Elide = true
	cm.Code = append(cm.Code, Instr{Op: OpNop})
	om := p.Method(p.Main)
	if om.Code[0].Elide {
		t.Error("clone must not share method code")
	}
	if len(om.Code) == len(cm.Code) {
		t.Error("appending to the clone must not grow the original")
	}
	// Field descriptors may be shared (immutable), but the class lists
	// must be distinct.
	cp.AddClass(&Class{Name: "Extra"})
	if p.Class("Extra") != nil {
		t.Error("clone must not share the class map")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if Op(9999).String() != "op(9999)" {
		t.Errorf("unknown op string = %q", Op(9999).String())
	}
	if OpTrap.String() != "trap" {
		t.Error("trap mnemonic")
	}
}

func TestInstrStringRearrangeAnnotation(t *testing.T) {
	in := Instr{Op: OpAAStore, ElideRearrange: true}
	if got := in.String(); got != "aastore  ; no-barrier(rearrange)" {
		t.Errorf("String = %q", got)
	}
	in2 := Instr{Op: OpAAStore, ElideNullOrSame: true}
	if got := in2.String(); got != "aastore  ; no-barrier(null-or-same)" {
		t.Errorf("String = %q", got)
	}
}
