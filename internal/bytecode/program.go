package bytecode

import (
	"fmt"
	"sort"
	"strings"
)

// Field is a declared (instance or static) field of a class.
type Field struct {
	Name   string
	Type   *Type
	Static bool
}

// Class is a compiled class: fields plus methods.
type Class struct {
	Name    string
	Fields  []*Field
	Methods []*Method
}

// Field returns the declared field with the given name, or nil.
func (c *Class) Field(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Method returns the declared method with the given name, or nil.
func (c *Class) Method(name string) *Method {
	for _, m := range c.Methods {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Method is a compiled method body.
type Method struct {
	Class  string
	Name   string
	Static bool
	// Ctor marks constructors. Constructors are instance methods named
	// "<init>" whose receiver is known thread-local and null-fielded on
	// entry (paper §2.3).
	Ctor bool

	// Params are the declared parameter types, excluding the receiver.
	Params []*Type
	// Return is the result type (Void for none).
	Return *Type

	// NumSlots is the number of local variable slots. Slot 0 is the
	// receiver for instance methods; parameters follow.
	NumSlots int
	// SlotTypes records the static type of each slot, filled by codegen
	// and updated by the inliner. The analyses use it to distinguish
	// reference slots.
	SlotTypes []*Type

	Code []Instr

	// MaxStack is the verified operand stack bound (set by the verifier).
	MaxStack int
}

// Ref returns the method's reference.
func (m *Method) Ref() MethodRef { return MethodRef{Class: m.Class, Name: m.Name} }

// NumArgs returns the argument count including the receiver.
func (m *Method) NumArgs() int {
	n := len(m.Params)
	if !m.Static {
		n++
	}
	return n
}

// ArgType returns the type of argument i, where i counts the receiver as
// argument 0 for instance methods.
func (m *Method) ArgType(i int) *Type {
	if !m.Static {
		if i == 0 {
			return ClassType(m.Class)
		}
		i--
	}
	return m.Params[i]
}

// Size returns the method's encoded bytecode size in bytes.
func (m *Method) Size() int {
	n := 0
	for i := range m.Code {
		n += m.Code[i].Size()
	}
	return n
}

// QualifiedName returns "Class.Name".
func (m *Method) QualifiedName() string { return m.Class + "." + m.Name }

// Program is a whole compiled program.
type Program struct {
	Classes map[string]*Class
	// Main names the entry point, a static void method with no params.
	Main MethodRef
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Classes: map[string]*Class{}}
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class { return p.Classes[name] }

// AddClass registers a class, replacing any previous definition.
func (p *Program) AddClass(c *Class) { p.Classes[c.Name] = c }

// Method resolves a method reference, or returns nil.
func (p *Program) Method(ref MethodRef) *Method {
	c := p.Classes[ref.Class]
	if c == nil {
		return nil
	}
	return c.Method(ref.Name)
}

// FieldType resolves a field reference's declared type, or nil.
func (p *Program) FieldType(ref FieldRef) *Type {
	c := p.Classes[ref.Class]
	if c == nil {
		return nil
	}
	f := c.Field(ref.Name)
	if f == nil {
		return nil
	}
	return f.Type
}

// SortedClasses returns the classes in name order, for deterministic
// iteration.
func (p *Program) SortedClasses() []*Class {
	out := make([]*Class, 0, len(p.Classes))
	for _, c := range p.Classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Methods returns every method in deterministic order.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.SortedClasses() {
		ms := append([]*Method(nil), c.Methods...)
		sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
		out = append(out, ms...)
	}
	return out
}

// Size returns the total bytecode size of all methods.
func (p *Program) Size() int {
	n := 0
	for _, m := range p.Methods() {
		n += m.Size()
	}
	return n
}

// Disassemble renders a method listing.
func Disassemble(m *Method) string {
	var b strings.Builder
	kind := "method"
	if m.Static {
		kind = "static method"
	}
	if m.Ctor {
		kind = "constructor"
	}
	fmt.Fprintf(&b, "%s %s.%s (%d slots, %d bytes)\n", kind, m.Class, m.Name, m.NumSlots, m.Size())
	for pc := range m.Code {
		fmt.Fprintf(&b, "  %4d: %s\n", pc, m.Code[pc].String())
	}
	return b.String()
}

// DisassembleProgram renders every method of the program.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	for _, m := range p.Methods() {
		b.WriteString(Disassemble(m))
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate performs basic structural sanity checks: branch targets in
// range, slots in range, resolvable field/method refs. It returns the
// first problem found, or nil.
func (p *Program) Validate() error {
	for _, m := range p.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.IsBranch() {
				if in.A < 0 || in.A >= int64(len(m.Code)) {
					return fmt.Errorf("%s: pc %d: branch target %d out of range", m.QualifiedName(), pc, in.A)
				}
			}
			switch in.Op {
			case OpLoad, OpStore:
				if in.A < 0 || in.A >= int64(m.NumSlots) {
					return fmt.Errorf("%s: pc %d: slot %d out of range [0,%d)", m.QualifiedName(), pc, in.A, m.NumSlots)
				}
			case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
				if p.FieldType(in.Field) == nil {
					return fmt.Errorf("%s: pc %d: unresolved field %s", m.QualifiedName(), pc, in.Field)
				}
			case OpInvoke, OpSpawn:
				if p.Method(in.Method) == nil {
					return fmt.Errorf("%s: pc %d: unresolved method %s", m.QualifiedName(), pc, in.Method)
				}
			case OpNewInstance:
				if in.Type == nil || in.Type.Kind != KindClass || p.Class(in.Type.Class) == nil {
					return fmt.Errorf("%s: pc %d: bad newinstance type %s", m.QualifiedName(), pc, in.Type)
				}
			case OpNewArray:
				if in.Type == nil {
					return fmt.Errorf("%s: pc %d: newarray missing element type", m.QualifiedName(), pc)
				}
			}
		}
	}
	if p.Main != (MethodRef{}) {
		mm := p.Method(p.Main)
		if mm == nil {
			return fmt.Errorf("main method %s not found", p.Main)
		}
		if !mm.Static || len(mm.Params) != 0 {
			return fmt.Errorf("main method %s must be static with no parameters", p.Main)
		}
	}
	return nil
}
