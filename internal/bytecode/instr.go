package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op int

// The instruction set. It mirrors the JVM subset over which the paper's
// analyses are defined: local load/store, field and static access, object
// and array allocation, reference- and int-array element access, invoke,
// arithmetic, comparisons, and branches.
const (
	// OpNop does nothing. The inliner uses it to replace removed
	// instructions without renumbering branch targets.
	OpNop Op = iota

	// OpConst pushes the integer constant A.
	OpConst
	// OpConstBool pushes the boolean constant (A != 0).
	OpConstBool
	// OpConstNull pushes the null reference.
	OpConstNull

	// OpLoad pushes local slot A.
	OpLoad
	// OpStore pops the stack top into local slot A.
	OpStore

	// OpDup duplicates the stack top.
	OpDup
	// OpPop discards the stack top.
	OpPop

	// Integer arithmetic: pop two (or one for OpNeg), push result.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpNeg

	// Boolean connectives (non-short-circuit): pop two booleans, push one.
	OpAnd
	OpOr
	// OpNot pops one boolean and pushes its negation.
	OpNot

	// Integer comparisons: pop two ints, push a boolean.
	OpCmpEQ
	OpCmpNE
	OpCmpLT
	OpCmpLE
	OpCmpGT
	OpCmpGE

	// Reference comparisons: pop two refs, push a boolean.
	OpRefEQ
	OpRefNE

	// OpGoto jumps unconditionally to pc A.
	OpGoto
	// OpIfTrue pops a boolean and jumps to pc A when it is true.
	OpIfTrue
	// OpIfFalse pops a boolean and jumps to pc A when it is false.
	OpIfFalse
	// OpIfNull pops a reference and jumps to pc A when it is null.
	OpIfNull
	// OpIfNonNull pops a reference and jumps to pc A when it is non-null.
	OpIfNonNull

	// OpGetField pops an object reference and pushes the value of Field.
	OpGetField
	// OpPutField pops a value then an object reference and stores the
	// value into Field of the object. When the stored value is a
	// reference, this is an SATB write-barrier site.
	OpPutField

	// OpGetStatic pushes the value of the static Field.
	OpGetStatic
	// OpPutStatic pops a value into the static Field. Reference stores
	// here always keep their barrier (and make the value escape).
	OpPutStatic

	// OpNewInstance allocates a new object of class Type (fields zeroed /
	// nulled) and pushes its reference. The instruction's pc is the
	// allocation-site id used by the analysis.
	OpNewInstance
	// OpNewArray pops a length and allocates a new array with element
	// type Type (elements zeroed / nulled), pushing its reference.
	OpNewArray
	// OpArrayLength pops an array reference and pushes its length.
	OpArrayLength

	// OpAALoad pops index then array ref, pushes the reference element.
	OpAALoad
	// OpAAStore pops value, index, array ref and stores the reference
	// element. This is an SATB write-barrier site.
	OpAAStore
	// OpIALoad / OpIAStore are the scalar (int/boolean) array accesses;
	// they never require barriers.
	OpIALoad
	OpIAStore

	// OpInvoke calls Method. Arguments (receiver first for instance
	// methods) are popped; a non-void result is pushed.
	OpInvoke
	// OpSpawn pops a receiver and starts Method (an instance method of
	// the receiver with no other arguments) on a new thread. The receiver
	// escapes.
	OpSpawn

	// OpReturn returns from a void method.
	OpReturn
	// OpReturnValue pops the stack top and returns it.
	OpReturnValue

	// OpPrint pops an int and emits it on the VM's output (test hook).
	OpPrint

	// OpTrap aborts execution with a "missing return" error. The code
	// generator plants it where a value-returning method falls off the
	// end; verified control flow never reaches it in correct programs.
	OpTrap
)

// FieldRef names a field, static or instance.
type FieldRef struct {
	Class string
	Name  string
}

func (f FieldRef) String() string { return f.Class + "." + f.Name }

// MethodRef names a method.
type MethodRef struct {
	Class string
	Name  string
}

func (m MethodRef) String() string { return m.Class + "." + m.Name }

// Instr is one bytecode instruction. Operand fields are used according to
// the opcode; unused fields are zero.
type Instr struct {
	Op     Op
	A      int64     // constant, local slot, or branch target pc
	Field  FieldRef  // OpGetField/OpPutField/OpGetStatic/OpPutStatic
	Method MethodRef // OpInvoke/OpSpawn
	Type   *Type     // OpNewInstance (class), OpNewArray (element type)

	// Elide is set by the barrier-elision analysis on OpPutField and
	// OpAAStore sites proven pre-null: the VM then skips the SATB
	// barrier for this site.
	Elide bool

	// ElideNullOrSame is set by the null-or-same extension (§4.3): the
	// store either overwrites null or rewrites the value already
	// present, so no SATB log entry is needed either way.
	ElideNullOrSame bool

	// ElideRearrange is set by the array-rearrangement extension (§4.3):
	// the store is half of a swap that permutes an array's elements, so
	// instead of logging, the mutator checks the array's tracing state
	// and requests a retrace when the collector's scan may have
	// overlapped the rearrangement.
	ElideRearrange bool

	// Line is the source line for diagnostics (0 when synthesized).
	Line int
}

// IsBranch reports whether the instruction can transfer control to Instr.A.
func (in *Instr) IsBranch() bool {
	switch in.Op {
	case OpGoto, OpIfTrue, OpIfFalse, OpIfNull, OpIfNonNull:
		return true
	}
	return false
}

// IsTerminator reports whether control never falls through to the next pc.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpGoto, OpReturn, OpReturnValue, OpTrap:
		return true
	}
	return false
}

// Size returns the instruction's encoded size in bytes under a JVM-like
// encoding. The inliner's "inline limit" parameter (paper §4.4) is
// expressed in these units, as is the compiled-code-size experiment
// (Figure 3).
func (in *Instr) Size() int {
	switch in.Op {
	case OpNop, OpConstNull, OpDup, OpPop,
		OpAdd, OpSub, OpMul, OpDiv, OpRem, OpNeg,
		OpAnd, OpOr, OpNot,
		OpCmpEQ, OpCmpNE, OpCmpLT, OpCmpLE, OpCmpGT, OpCmpGE,
		OpRefEQ, OpRefNE,
		OpArrayLength, OpAALoad, OpAAStore, OpIALoad, OpIAStore,
		OpReturn, OpReturnValue, OpPrint, OpTrap:
		return 1
	case OpLoad, OpStore, OpConstBool:
		return 2
	case OpConst:
		return 3
	case OpGoto, OpIfTrue, OpIfFalse, OpIfNull, OpIfNonNull:
		return 3
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic,
		OpNewInstance, OpNewArray, OpInvoke, OpSpawn:
		return 3
	default:
		return 1
	}
}

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpConstBool: "constbool", OpConstNull: "constnull",
	OpLoad: "load", OpStore: "store", OpDup: "dup", OpPop: "pop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpNot: "not",
	OpCmpEQ: "cmpeq", OpCmpNE: "cmpne", OpCmpLT: "cmplt", OpCmpLE: "cmple",
	OpCmpGT: "cmpgt", OpCmpGE: "cmpge", OpRefEQ: "refeq", OpRefNE: "refne",
	OpGoto: "goto", OpIfTrue: "iftrue", OpIfFalse: "iffalse",
	OpIfNull: "ifnull", OpIfNonNull: "ifnonnull",
	OpGetField: "getfield", OpPutField: "putfield",
	OpGetStatic: "getstatic", OpPutStatic: "putstatic",
	OpNewInstance: "newinstance", OpNewArray: "newarray", OpArrayLength: "arraylength",
	OpAALoad: "aaload", OpAAStore: "aastore", OpIALoad: "iaload", OpIAStore: "iastore",
	OpInvoke: "invoke", OpSpawn: "spawn",
	OpReturn: "return", OpReturnValue: "returnvalue", OpPrint: "print",
	OpTrap: "trap",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// String renders the instruction with its operands.
func (in *Instr) String() string {
	s := in.Op.String()
	switch in.Op {
	case OpConst, OpConstBool, OpLoad, OpStore:
		s = fmt.Sprintf("%s %d", s, in.A)
	case OpGoto, OpIfTrue, OpIfFalse, OpIfNull, OpIfNonNull:
		s = fmt.Sprintf("%s -> %d", s, in.A)
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
		s = fmt.Sprintf("%s %s", s, in.Field)
	case OpNewInstance, OpNewArray:
		s = fmt.Sprintf("%s %s", s, in.Type)
	case OpInvoke, OpSpawn:
		s = fmt.Sprintf("%s %s", s, in.Method)
	}
	switch {
	case in.Elide:
		s += "  ; no-barrier"
	case in.ElideNullOrSame:
		s += "  ; no-barrier(null-or-same)"
	case in.ElideRearrange:
		s += "  ; no-barrier(rearrange)"
	}
	return s
}
