package bytecode

import (
	"strings"
	"testing"
)

func TestTypePredicates(t *testing.T) {
	cases := []struct {
		typ      *Type
		isRef    bool
		isRefArr bool
		str      string
	}{
		{Void, false, false, "void"},
		{Int, false, false, "int"},
		{Bool, false, false, "boolean"},
		{ClassType("T"), true, false, "T"},
		{ArrayOf(Int), true, false, "int[]"},
		{ArrayOf(ClassType("T")), true, true, "T[]"},
		{ArrayOf(ArrayOf(ClassType("T"))), true, true, "T[][]"},
		{ArrayOf(ArrayOf(Int)), true, true, "int[][]"}, // arrays are refs, so int[][] holds refs
	}
	for _, c := range cases {
		if got := c.typ.IsRef(); got != c.isRef {
			t.Errorf("%s: IsRef = %v, want %v", c.str, got, c.isRef)
		}
		if got := c.typ.IsRefArray(); got != c.isRefArr {
			t.Errorf("%s: IsRefArray = %v, want %v", c.str, got, c.isRefArr)
		}
		if got := c.typ.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !ClassType("A").Equal(ClassType("A")) {
		t.Error("ClassType(A) should equal itself structurally")
	}
	if ClassType("A").Equal(ClassType("B")) {
		t.Error("distinct classes must not be equal")
	}
	if !ArrayOf(ClassType("A")).Equal(ArrayOf(ClassType("A"))) {
		t.Error("array types with equal elements must be equal")
	}
	if ArrayOf(Int).Equal(ArrayOf(Bool)) {
		t.Error("int[] must not equal boolean[]")
	}
	if Int.Equal(Bool) {
		t.Error("int must not equal boolean")
	}
	if Int.Equal(nil) {
		t.Error("non-nil must not equal nil")
	}
	var n *Type
	if !n.Equal(nil) {
		t.Error("nil pointer receiver should equal nil argument")
	}
}

func TestInstrPredicatesAndSize(t *testing.T) {
	br := Instr{Op: OpGoto, A: 3}
	if !br.IsBranch() || !br.IsTerminator() {
		t.Error("goto must be branch and terminator")
	}
	iff := Instr{Op: OpIfTrue, A: 3}
	if !iff.IsBranch() || iff.IsTerminator() {
		t.Error("iftrue is a branch but not a terminator")
	}
	ret := Instr{Op: OpReturn}
	if ret.IsBranch() || !ret.IsTerminator() {
		t.Error("return is a terminator but not a branch")
	}
	pf := Instr{Op: OpPutField}
	if pf.IsBranch() || pf.IsTerminator() {
		t.Error("putfield is neither")
	}
	if (&Instr{Op: OpDup}).Size() != 1 {
		t.Error("dup size")
	}
	if (&Instr{Op: OpConst}).Size() != 3 {
		t.Error("const size")
	}
	if (&Instr{Op: OpLoad}).Size() != 2 {
		t.Error("load size")
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: OpPutField, Field: FieldRef{Class: "T", Name: "f"}, Elide: true}
	got := in.String()
	want := "putfield T.f  ; no-barrier"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	in2 := Instr{Op: OpGoto, A: 7}
	if in2.String() != "goto -> 7" {
		t.Errorf("goto string = %q", in2.String())
	}
}

func TestBuilderLabelsForwardAndBackward(t *testing.T) {
	b := NewBuilder("T", "m", true)
	b.Label("top")
	b.ConstBool(true)
	b.IfFalse("done") // forward reference
	b.Goto("top")     // backward reference
	b.Label("done")
	b.Return()
	m := b.Build()
	if m.Code[1].A != 3 {
		t.Errorf("forward branch target = %d, want 3", m.Code[1].A)
	}
	if m.Code[2].A != 0 {
		t.Errorf("backward branch target = %d, want 0", m.Code[2].A)
	}
}

func TestBuilderUnresolvedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build should panic on unresolved label")
		}
	}()
	b := NewBuilder("T", "m", true)
	b.Goto("nowhere")
	b.Build()
}

func TestMethodArgTypesAndSize(t *testing.T) {
	b := NewBuilder("T", "m", false)
	b.DeclareSlot(ClassType("T")) // receiver
	b.AddParam(Int)
	b.AddParam(ArrayOf(ClassType("U")))
	b.Return()
	m := b.Build()
	if m.NumArgs() != 3 {
		t.Fatalf("NumArgs = %d, want 3", m.NumArgs())
	}
	if m.ArgType(0).Class != "T" {
		t.Error("arg 0 should be the receiver type")
	}
	if m.ArgType(1) != Int {
		t.Error("arg 1 should be int")
	}
	if !m.ArgType(2).IsRefArray() {
		t.Error("arg 2 should be a ref array")
	}
	if m.Size() != 1 {
		t.Errorf("Size = %d, want 1 (single return)", m.Size())
	}
}

func buildTinyProgram() *Program {
	p := NewProgram()
	cls := &Class{Name: "T", Fields: []*Field{
		{Name: "f", Type: ClassType("T")},
		{Name: "g", Type: Int, Static: true},
	}}
	b := NewBuilder("T", "main", true)
	b.New("T")
	local := b.DeclareSlot(ClassType("T"))
	b.Store(local)
	b.Return()
	cls.Methods = append(cls.Methods, b.Build())
	p.AddClass(cls)
	p.Main = MethodRef{Class: "T", Name: "main"}
	return p
}

func TestProgramResolutionAndValidate(t *testing.T) {
	p := buildTinyProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Method(MethodRef{Class: "T", Name: "main"}) == nil {
		t.Error("method T.main should resolve")
	}
	if p.Method(MethodRef{Class: "T", Name: "nope"}) != nil {
		t.Error("missing method should not resolve")
	}
	if ft := p.FieldType(FieldRef{Class: "T", Name: "f"}); ft == nil || ft.Class != "T" {
		t.Errorf("field T.f type = %v", ft)
	}
	if p.FieldType(FieldRef{Class: "X", Name: "f"}) != nil {
		t.Error("unknown class field should not resolve")
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := buildTinyProgram()
	m := p.Method(p.Main)
	m.Code = append(m.Code, Instr{Op: OpGoto, A: 99})
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range branch target")
	}
}

func TestValidateCatchesBadSlot(t *testing.T) {
	p := buildTinyProgram()
	m := p.Method(p.Main)
	m.Code = append([]Instr{{Op: OpLoad, A: 42}}, m.Code...)
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject out-of-range slot")
	}
}

func TestValidateCatchesUnresolvedField(t *testing.T) {
	p := buildTinyProgram()
	m := p.Method(p.Main)
	m.Code = append([]Instr{{Op: OpGetStatic, Field: FieldRef{Class: "T", Name: "zzz"}}}, m.Code...)
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject unresolved field")
	}
}

func TestValidateCatchesBadMain(t *testing.T) {
	p := buildTinyProgram()
	p.Main = MethodRef{Class: "T", Name: "missing"}
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should reject missing main")
	}
}

func TestDisassembleContainsOpcodes(t *testing.T) {
	p := buildTinyProgram()
	out := DisassembleProgram(p)
	for _, want := range []string{"static method T.main", "newinstance T", "store 0", "return"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestSortedClassesDeterministic(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "B"})
	p.AddClass(&Class{Name: "A"})
	p.AddClass(&Class{Name: "C"})
	got := p.SortedClasses()
	if got[0].Name != "A" || got[1].Name != "B" || got[2].Name != "C" {
		t.Errorf("SortedClasses order wrong: %v %v %v", got[0].Name, got[1].Name, got[2].Name)
	}
}
