// Package bytecode defines the stack-machine intermediate representation
// analyzed and executed by this repository. It is a faithful subset of JVM
// bytecode: the SATB barrier-elision analyses of Nandivada & Detlefs (CGO
// 2005) are specified as transfer functions over these instructions.
package bytecode

import "fmt"

// Kind classifies a Type.
type Kind int

const (
	// KindVoid is the return type of void methods.
	KindVoid Kind = iota
	// KindInt is the 64-bit integer type.
	KindInt
	// KindBool is the boolean type.
	KindBool
	// KindClass is an object reference type; Type.Class names the class.
	KindClass
	// KindArray is an array reference type; Type.Elem is the element type.
	KindArray
)

// Type describes a MiniJava/bytecode value type.
type Type struct {
	Kind  Kind
	Class string // class name, when Kind == KindClass
	Elem  *Type  // element type, when Kind == KindArray
}

// Predefined scalar types. These are shared; Type values are immutable by
// convention.
var (
	Void = &Type{Kind: KindVoid}
	Int  = &Type{Kind: KindInt}
	Bool = &Type{Kind: KindBool}
)

// ClassType returns the reference type for the named class.
func ClassType(name string) *Type { return &Type{Kind: KindClass, Class: name} }

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem *Type) *Type { return &Type{Kind: KindArray, Elem: elem} }

// IsRef reports whether values of t are object references (class instances
// or arrays). Stores of reference values into the heap are the only stores
// that require SATB write barriers.
func (t *Type) IsRef() bool {
	return t != nil && (t.Kind == KindClass || t.Kind == KindArray)
}

// IsRefArray reports whether t is an array whose elements are references
// (the aastore-barrier case).
func (t *Type) IsRefArray() bool {
	return t != nil && t.Kind == KindArray && t.Elem.IsRef()
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KindClass:
		return t.Class == u.Class
	case KindArray:
		return t.Elem.Equal(u.Elem)
	default:
		return true
	}
}

// String renders the type in MiniJava source syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil-type>"
	}
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindBool:
		return "boolean"
	case KindClass:
		return t.Class
	case KindArray:
		return t.Elem.String() + "[]"
	default:
		return fmt.Sprintf("<kind %d>", int(t.Kind))
	}
}
