package bytecode

import "fmt"

// Builder assembles a Method by hand. It is used by tests and by the code
// generator. Branch targets may be forward-referenced through labels.
type Builder struct {
	m      *Method
	labels map[string]int   // label -> pc
	fixups map[string][]int // label -> pcs of branches awaiting the label
}

// NewBuilder starts a method. Slot types for the receiver and parameters
// must already be reflected in numSlots / slotTypes via DeclareSlot.
func NewBuilder(class, name string, static bool) *Builder {
	return &Builder{
		m: &Method{
			Class:  class,
			Name:   name,
			Static: static,
			Return: Void,
		},
		labels: map[string]int{},
		fixups: map[string][]int{},
	}
}

// SetCtor marks the method as a constructor.
func (b *Builder) SetCtor() *Builder { b.m.Ctor = true; return b }

// SetReturn sets the return type.
func (b *Builder) SetReturn(t *Type) *Builder { b.m.Return = t; return b }

// AddParam declares a parameter of the given type (also allocating its
// slot). The receiver slot of instance methods must be declared first via
// DeclareSlot(ClassType(class)).
func (b *Builder) AddParam(t *Type) int {
	b.m.Params = append(b.m.Params, t)
	return b.DeclareSlot(t)
}

// DeclareSlot allocates a new local slot of the given type and returns its
// index.
func (b *Builder) DeclareSlot(t *Type) int {
	b.m.SlotTypes = append(b.m.SlotTypes, t)
	b.m.NumSlots = len(b.m.SlotTypes)
	return b.m.NumSlots - 1
}

// PC returns the next instruction's pc.
func (b *Builder) PC() int { return len(b.m.Code) }

// Emit appends an instruction and returns its pc.
func (b *Builder) Emit(in Instr) int {
	b.m.Code = append(b.m.Code, in)
	return len(b.m.Code) - 1
}

// Op emits a zero-operand instruction.
func (b *Builder) Op(op Op) int { return b.Emit(Instr{Op: op}) }

// Const emits an integer constant push.
func (b *Builder) Const(v int64) int { return b.Emit(Instr{Op: OpConst, A: v}) }

// ConstBool emits a boolean constant push.
func (b *Builder) ConstBool(v bool) int {
	a := int64(0)
	if v {
		a = 1
	}
	return b.Emit(Instr{Op: OpConstBool, A: a})
}

// Null emits a null push.
func (b *Builder) Null() int { return b.Op(OpConstNull) }

// Load emits a local load.
func (b *Builder) Load(slot int) int { return b.Emit(Instr{Op: OpLoad, A: int64(slot)}) }

// Store emits a local store.
func (b *Builder) Store(slot int) int { return b.Emit(Instr{Op: OpStore, A: int64(slot)}) }

// GetField / PutField / GetStatic / PutStatic emit field accesses.
func (b *Builder) GetField(f FieldRef) int  { return b.Emit(Instr{Op: OpGetField, Field: f}) }
func (b *Builder) PutField(f FieldRef) int  { return b.Emit(Instr{Op: OpPutField, Field: f}) }
func (b *Builder) GetStatic(f FieldRef) int { return b.Emit(Instr{Op: OpGetStatic, Field: f}) }
func (b *Builder) PutStatic(f FieldRef) int { return b.Emit(Instr{Op: OpPutStatic, Field: f}) }

// New emits an object allocation.
func (b *Builder) New(class string) int {
	return b.Emit(Instr{Op: OpNewInstance, Type: ClassType(class)})
}

// NewArray emits an array allocation with the given element type.
func (b *Builder) NewArray(elem *Type) int { return b.Emit(Instr{Op: OpNewArray, Type: elem}) }

// Invoke emits a call.
func (b *Builder) Invoke(ref MethodRef) int { return b.Emit(Instr{Op: OpInvoke, Method: ref}) }

// Spawn emits a thread start.
func (b *Builder) Spawn(ref MethodRef) int { return b.Emit(Instr{Op: OpSpawn, Method: ref}) }

// Label binds the named label to the next pc and patches pending fixups.
func (b *Builder) Label(name string) {
	pc := b.PC()
	b.labels[name] = pc
	for _, site := range b.fixups[name] {
		b.m.Code[site].A = int64(pc)
	}
	delete(b.fixups, name)
}

// Branch emits a branch to the named label (which may be bound later).
func (b *Builder) Branch(op Op, label string) int {
	pc := b.Emit(Instr{Op: op})
	if target, ok := b.labels[label]; ok {
		b.m.Code[pc].A = int64(target)
	} else {
		b.fixups[label] = append(b.fixups[label], pc)
	}
	return pc
}

// Goto / IfTrue / IfFalse / IfNull / IfNonNull emit branches to labels.
func (b *Builder) Goto(label string) int      { return b.Branch(OpGoto, label) }
func (b *Builder) IfTrue(label string) int    { return b.Branch(OpIfTrue, label) }
func (b *Builder) IfFalse(label string) int   { return b.Branch(OpIfFalse, label) }
func (b *Builder) IfNull(label string) int    { return b.Branch(OpIfNull, label) }
func (b *Builder) IfNonNull(label string) int { return b.Branch(OpIfNonNull, label) }

// Return emits a void return.
func (b *Builder) Return() int { return b.Op(OpReturn) }

// ReturnValue emits a value return.
func (b *Builder) ReturnValue() int { return b.Op(OpReturnValue) }

// Method returns the method under construction without finalizing it.
// Callers may patch already-emitted instructions (e.g. to attach source
// lines) but must still call Build to check label resolution.
func (b *Builder) Method() *Method { return b.m }

// Build finalizes and returns the method. It panics on unresolved labels
// (a programming error in the caller).
func (b *Builder) Build() *Method {
	if len(b.fixups) > 0 {
		for name := range b.fixups {
			panic(fmt.Sprintf("bytecode.Builder: unresolved label %q in %s.%s", name, b.m.Class, b.m.Name))
		}
	}
	return b.m
}
