package vm

import (
	"fmt"

	"satbelim/internal/heap"
	"satbelim/internal/satb"
)

// SoundnessViolation is the runtime elision oracle's finding: an elided
// barrier site whose dynamic execution contradicts the analysis claim that
// justified the elision. It carries enough context to localize the bug —
// the store site, the elision kind, the values involved, and where the
// target object was allocated.
type SoundnessViolation struct {
	Method string
	PC     int
	Line   int
	Site   satb.SiteKind
	Elide  satb.ElideKind
	// Pre is the overwritten value, New the stored value, Target the
	// object written into.
	Pre, New, Target heap.Ref
	// AllocSite is the "method:pc" location that allocated Target
	// (empty if unknown).
	AllocSite string
	Reason    string
}

func (e *SoundnessViolation) Error() string {
	return fmt.Sprintf("soundness violation at %s pc %d (line %d): elided %s store (%v): %s "+
		"[pre=%d new=%d target=%d alloc=%s]",
		e.Method, e.PC, e.Line, e.Site, elideName(e.Elide), e.Reason,
		e.Pre, e.New, e.Target, e.AllocSite)
}

func elideName(k satb.ElideKind) string {
	switch k {
	case satb.ElidePreNull:
		return "pre-null"
	case satb.ElideNullOrSame:
		return "null-or-same"
	case satb.ElideRearrange:
		return "rearrange"
	default:
		return "none"
	}
}

// objMeta is the oracle's per-object shadow state.
type objMeta struct {
	allocSite string // "method:pc"
	owner     int    // allocating thread id
	escaped   bool   // published beyond the allocating thread
}

// oracle validates, at every elided store, the analysis claims behind the
// elision: the overwritten slot is null (pre-null sites) or null-or-same,
// and the target object is still thread-local at write time. Escape is
// tracked dynamically and underapproximates the analysis's non-thread-
// local set — an object only becomes escaped here when it is actually
// published (stored into a static, stored into an already-escaped object,
// handed to spawn, or touched by a foreign thread), each of which the
// flow-sensitive analysis also treats as an escape at the same
// instruction. A sound analysis therefore never trips the oracle; an
// unsound elision is caught at its first offending execution.
type oracle struct {
	h    *heap.Heap
	meta map[heap.Ref]*objMeta
	// spec is the run's barrier flavor: verdicts its soundness predicate
	// rejects must never reach an executing store.
	spec *satb.BarrierSpec
	// checks counts elided-store executions validated.
	checks int64
}

func newOracle(h *heap.Heap, spec *satb.BarrierSpec) *oracle {
	return &oracle{h: h, meta: map[heap.Ref]*objMeta{}, spec: spec}
}

// noteAlloc records the allocation site and owning thread of a new object.
func (o *oracle) noteAlloc(r heap.Ref, method string, pc, tid int) {
	o.meta[r] = &objMeta{allocSite: fmt.Sprintf("%s:%d", method, pc), owner: tid}
}

// escape marks the object and everything reachable from it as published.
func (o *oracle) escape(r heap.Ref) {
	if r == heap.Null {
		return
	}
	m := o.meta[r]
	if m == nil || m.escaped {
		return
	}
	m.escaped = true
	if obj := o.h.Get(r); obj != nil {
		obj.RefsOf(o.escape)
	}
}

// allocSiteOf returns the recorded allocation site of r.
func (o *oracle) allocSiteOf(r heap.Ref) string {
	if m := o.meta[r]; m != nil {
		return m.allocSite
	}
	return ""
}

// checkStore validates one reference store and maintains escape state.
// method/pc/line locate the store site (both execution engines report the
// bytecode pc). pre is the overwritten value, newVal the stored value,
// target the written object. It returns a *SoundnessViolation when an
// elided site's dynamic execution contradicts the analysis claim.
func (o *oracle) checkStore(method string, pc, line, tid int, site satb.SiteKind, elide satb.ElideKind, pre, newVal, target heap.Ref) error {
	m := o.meta[target]
	// A store from a thread other than the allocator proves the object is
	// shared, whether or not a publication event was observed.
	if m != nil && m.owner != tid {
		m.escaped = true
	}
	violation := func(reason string) error {
		return &SoundnessViolation{
			Method: method, PC: pc, Line: line,
			Site: site, Elide: elide,
			Pre: pre, New: newVal, Target: target,
			AllocSite: o.allocSiteOf(target), Reason: reason,
		}
	}
	var err error
	if elide != satb.ElideNone && !o.spec.Sound(elide) {
		// Engines project every verdict through the flavor's soundness
		// predicate before executing with it; reaching here means a
		// cross-flavor elision leaked through (or Config.ForceRawElide
		// bypassed projection in a test).
		o.checks++
		return violation(fmt.Sprintf("%s elision is unsound under the %s barrier flavor",
			elideName(elide), o.spec.Name))
	}
	switch elide {
	case satb.ElidePreNull:
		o.checks++
		switch {
		case pre != heap.Null:
			err = violation(fmt.Sprintf("overwritten slot holds non-null reference %d", pre))
		case m != nil && m.escaped:
			err = violation("target object escaped its allocating thread before the store")
		}
	case satb.ElideNullOrSame:
		o.checks++
		switch {
		case pre != heap.Null && pre != newVal:
			err = violation(fmt.Sprintf("overwritten slot holds a different non-null reference %d", pre))
		case m != nil && m.escaped:
			err = violation("target object escaped its allocating thread before the store")
		}
	case satb.ElideRearrange:
		// Rearrangement soundness is protocol-level (the trace-state
		// check plus the retrace list), validated end-to-end by the
		// snapshot-invariant checker; the oracle verifies the structural
		// precondition that the flagged site really writes an array.
		o.checks++
		if obj := o.h.Get(target); obj != nil && !obj.IsArray() {
			err = violation("rearrangement site writes a non-array object")
		}
	}
	// Maintain escape state after the check: publishing into an escaped
	// object publishes the stored value.
	if m != nil && m.escaped {
		o.escape(newVal)
	}
	return err
}
