package vm_test

// Differential harness for the two execution engines: every workload runs
// under both the pre-decoded fused engine and the reference switch
// interpreter across the barrier modes and analysis configurations of the
// paper's evaluation, with and without the runtime elision oracle, and
// the Results must be bit-identical — output, step counts, GC cycles,
// allocation/sweep totals, oracle check counts, and the full per-site
// barrier counters.

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// diffConfig is one compile+run configuration of the sweep.
type diffConfig struct {
	name     string
	analysis core.Options
	run      vm.Config
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{
			name: "nobarrier",
			run:  vm.Config{Barrier: satb.ModeNoBarrier},
		},
		{
			name: "alwayslog",
			run:  vm.Config{Barrier: satb.ModeAlwaysLog},
		},
		{
			name:     "alwayslog-elim",
			analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true},
			run:      vm.Config{Barrier: satb.ModeAlwaysLog},
		},
		{
			name:     "conditional-gc",
			analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true},
			run: vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 64,
				CheckInvariant:     true,
			},
		},
	}
}

// runEngine executes one build on one engine.
func runEngine(t *testing.T, bd *pipeline.Build, cfg vm.Config, eng vm.Engine) *vm.Result {
	t.Helper()
	cfg.Engine = eng
	res, err := bd.Run(cfg)
	if err != nil {
		t.Fatalf("engine %v: %v", eng, err)
	}
	return res
}

// assertIdentical compares every semantic field of two Results (Engine is
// the one intentionally differing, informational field).
func assertIdentical(t *testing.T, fused, sw *vm.Result) {
	t.Helper()
	if fused.Engine != "fused" || sw.Engine != "switch" {
		t.Fatalf("engine labels: fused=%q switch=%q", fused.Engine, sw.Engine)
	}
	if !reflect.DeepEqual(fused.Output, sw.Output) {
		t.Errorf("Output differs: fused %d values, switch %d values", len(fused.Output), len(sw.Output))
	}
	if fused.Steps != sw.Steps {
		t.Errorf("Steps: fused %d, switch %d", fused.Steps, sw.Steps)
	}
	if fused.Cycles != sw.Cycles {
		t.Errorf("Cycles: fused %d, switch %d", fused.Cycles, sw.Cycles)
	}
	if fused.FinalPauseWork != sw.FinalPauseWork {
		t.Errorf("FinalPauseWork: fused %d, switch %d", fused.FinalPauseWork, sw.FinalPauseWork)
	}
	if fused.Allocated != sw.Allocated {
		t.Errorf("Allocated: fused %d, switch %d", fused.Allocated, sw.Allocated)
	}
	if fused.Swept != sw.Swept {
		t.Errorf("Swept: fused %d, switch %d", fused.Swept, sw.Swept)
	}
	if fused.ElisionChecks != sw.ElisionChecks {
		t.Errorf("ElisionChecks: fused %d, switch %d", fused.ElisionChecks, sw.ElisionChecks)
	}
	if fused.TotalCost() != sw.TotalCost() {
		t.Errorf("TotalCost: fused %d, switch %d", fused.TotalCost(), sw.TotalCost())
	}
	// The counters must match to the last per-site statistic, including
	// which sites exist at all (site stats are created lazily on first
	// execution in both engines).
	if !reflect.DeepEqual(fused.Counters, sw.Counters) {
		fs, ss := fused.Counters.Summarize(), sw.Counters.Summarize()
		t.Errorf("Counters differ: fused {cost=%d logged=%d execs=%d sites=%d} switch {cost=%d logged=%d execs=%d sites=%d}",
			fused.Counters.Cost, fused.Counters.Logged, fs.TotalExecs, len(fused.Counters.Sites()),
			sw.Counters.Cost, sw.Counters.Logged, ss.TotalExecs, len(sw.Counters.Sites()))
	}
}

// TestEngineDifferentialWorkloads sweeps all six Table 1 workloads across
// barrier modes × analysis configurations × oracle on/off.
func TestEngineDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		for _, dc := range diffConfigs() {
			bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: 100,
				Analysis:    dc.analysis,
			})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", w.Name, dc.name, err)
			}
			for _, oracle := range []bool{false, true} {
				name := w.Name + "/" + dc.name
				if oracle {
					name += "/oracle"
				}
				t.Run(name, func(t *testing.T) {
					cfg := dc.run
					cfg.CheckElisions = oracle
					fused := runEngine(t, bd, cfg, vm.EngineFused)
					sw := runEngine(t, bd, cfg, vm.EngineSwitch)
					assertIdentical(t, fused, sw)
					if oracle && fused.ElisionChecks == 0 && dc.analysis.Mode != core.ModeNone {
						t.Error("oracle ran but validated no elided stores")
					}
				})
			}
		}
	}
}

// TestEngineDifferentialQuantumBoundaries stresses the fused-op gating at
// scheduler quantum boundaries: tiny odd quanta force superinstructions
// to straddle quantum ends and fall back to the per-instruction path
// mid-sequence, which must not perturb any observable result.
func TestEngineDifferentialQuantumBoundaries(t *testing.T) {
	w, err := workloads.Get("jbb")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, quantum := range []int{1, 2, 3, 5, 7, 13, 64} {
		cfg := vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 32,
			Quantum:            quantum,
		}
		fused := runEngine(t, bd, cfg, vm.EngineFused)
		sw := runEngine(t, bd, cfg, vm.EngineSwitch)
		t.Run("quantum", func(t *testing.T) { assertIdentical(t, fused, sw) })
	}
}

// TestEngineDifferentialStepBudget verifies that budget exhaustion
// surfaces at the identical instruction on both engines (a fused form
// must never over- or under-run MaxSteps).
func TestEngineDifferentialStepBudget(t *testing.T) {
	w, err := workloads.Get("db")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 7, 100, 1001, 4999} {
		cfg := vm.Config{Barrier: satb.ModeAlwaysLog, MaxSteps: budget}
		cfg.Engine = vm.EngineFused
		_, ferr := bd.Run(cfg)
		cfg.Engine = vm.EngineSwitch
		_, serr := bd.Run(cfg)
		if ferr == nil || serr == nil {
			t.Fatalf("budget %d: expected exhaustion on both engines (fused=%v switch=%v)", budget, ferr, serr)
		}
		if ferr.Error() != serr.Error() {
			t.Errorf("budget %d: fused error %q, switch error %q", budget, ferr, serr)
		}
	}
}
