package vm_test

// Differential harness for the three execution engines: every workload
// runs under the pre-decoded fused engine, the reference switch
// interpreter, and the compiled hot-method tier across the barrier modes
// and analysis configurations of the paper's evaluation, with and without
// the runtime elision oracle, and the Results must be bit-identical —
// output, step counts, GC cycles, allocation/sweep totals, oracle check
// counts, and the full per-site barrier counters. The compiled tier runs
// with an aggressive threshold so every workload actually tiers up, and
// a forced-deopt sweep proves that abandoning compiled code mid-run
// changes nothing observable.

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
	"satbelim/internal/workloads"
)

// diffConfig is one compile+run configuration of the sweep.
type diffConfig struct {
	name     string
	analysis core.Options
	run      vm.Config
}

func diffConfigs() []diffConfig {
	return []diffConfig{
		{
			name: "nobarrier",
			run:  vm.Config{Barrier: satb.ModeNoBarrier},
		},
		{
			name: "alwayslog",
			run:  vm.Config{Barrier: satb.ModeAlwaysLog},
		},
		{
			name:     "alwayslog-elim",
			analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true},
			run:      vm.Config{Barrier: satb.ModeAlwaysLog},
		},
		{
			name:     "conditional-gc",
			analysis: core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true},
			run: vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 64,
				CheckInvariant:     true,
			},
		},
	}
}

// diffTierThreshold tiers every method up almost immediately so the
// compiled tier, not its fused fallback, is what the sweep exercises.
const diffTierThreshold = 2

// runEngine executes one build on one engine.
func runEngine(t *testing.T, bd *pipeline.Build, cfg vm.Config, eng vm.Engine) *vm.Result {
	t.Helper()
	cfg.Engine = eng
	if eng == vm.EngineCompiled && cfg.TierThreshold == 0 {
		cfg.TierThreshold = diffTierThreshold
	}
	res, err := bd.Run(cfg)
	if err != nil {
		t.Fatalf("engine %v: %v", eng, err)
	}
	return res
}

// assertIdentical compares every semantic field of two Results (Engine
// and the tier counters are the intentionally differing, informational
// fields).
func assertIdentical(t *testing.T, a, b *vm.Result, an, bn string) {
	t.Helper()
	if a.Engine != an || b.Engine != bn {
		t.Fatalf("engine labels: got %q/%q, want %q/%q", a.Engine, b.Engine, an, bn)
	}
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Errorf("Output differs: %s %d values, %s %d values", an, len(a.Output), bn, len(b.Output))
	}
	if a.Steps != b.Steps {
		t.Errorf("Steps: %s %d, %s %d", an, a.Steps, bn, b.Steps)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("Cycles: %s %d, %s %d", an, a.Cycles, bn, b.Cycles)
	}
	if a.FinalPauseWork != b.FinalPauseWork {
		t.Errorf("FinalPauseWork: %s %d, %s %d", an, a.FinalPauseWork, bn, b.FinalPauseWork)
	}
	if a.Allocated != b.Allocated {
		t.Errorf("Allocated: %s %d, %s %d", an, a.Allocated, bn, b.Allocated)
	}
	if a.Swept != b.Swept {
		t.Errorf("Swept: %s %d, %s %d", an, a.Swept, bn, b.Swept)
	}
	if a.ElisionChecks != b.ElisionChecks {
		t.Errorf("ElisionChecks: %s %d, %s %d", an, a.ElisionChecks, bn, b.ElisionChecks)
	}
	if a.TotalCost() != b.TotalCost() {
		t.Errorf("TotalCost: %s %d, %s %d", an, a.TotalCost(), bn, b.TotalCost())
	}
	// The counters must match to the last per-site statistic, including
	// which sites exist at all (site stats are created lazily on first
	// execution in every engine).
	if !reflect.DeepEqual(a.Counters, b.Counters) {
		as, bs := a.Counters.Summarize(), b.Counters.Summarize()
		t.Errorf("Counters differ: %s {cost=%d logged=%d execs=%d sites=%d} %s {cost=%d logged=%d execs=%d sites=%d}",
			an, a.Counters.Cost, a.Counters.Logged, as.TotalExecs, len(a.Counters.Sites()),
			bn, b.Counters.Cost, b.Counters.Logged, bs.TotalExecs, len(b.Counters.Sites()))
	}
}

// TestEngineDifferentialWorkloads sweeps all six Table 1 workloads across
// barrier modes × analysis configurations × oracle on/off, on all three
// engines. The compiled tier must be bit-identical to both reference
// engines; under the oracle, tier-up is disabled and the run degrades to
// fused dispatch (TierUps must be 0), still bit-identical.
func TestEngineDifferentialWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		for _, dc := range diffConfigs() {
			bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
				InlineLimit: 100,
				Analysis:    dc.analysis,
			})
			if err != nil {
				t.Fatalf("%s/%s: compile: %v", w.Name, dc.name, err)
			}
			for _, oracle := range []bool{false, true} {
				name := w.Name + "/" + dc.name
				if oracle {
					name += "/oracle"
				}
				t.Run(name, func(t *testing.T) {
					cfg := dc.run
					cfg.CheckElisions = oracle
					fused := runEngine(t, bd, cfg, vm.EngineFused)
					sw := runEngine(t, bd, cfg, vm.EngineSwitch)
					comp := runEngine(t, bd, cfg, vm.EngineCompiled)
					assertIdentical(t, fused, sw, "fused", "switch")
					assertIdentical(t, comp, fused, "compiled", "fused")
					if oracle {
						if comp.TierUps != 0 || comp.TierSegExecs != 0 {
							t.Errorf("oracle run tiered up (ups=%d segExecs=%d); the tier must disable itself under the oracle",
								comp.TierUps, comp.TierSegExecs)
						}
						if fused.ElisionChecks == 0 && dc.analysis.Mode != core.ModeNone {
							t.Error("oracle ran but validated no elided stores")
						}
					} else {
						if comp.TierUps == 0 {
							t.Errorf("compiled run tiered up no methods at threshold %d", diffTierThreshold)
						}
						if comp.TierSegExecs == 0 {
							t.Error("compiled run executed no compiled segments")
						}
					}
				})
			}
		}
	}
}

// TestEngineDifferentialFlavorMatrix sweeps the new barrier flavors
// (yuasa, dijkstra, hybrid) across every safe collector pairing and
// oracle on/off, on all three engines, with the full analysis enabled.
// Every flavor must be bit-identical across engines; the projection of
// analysis verdicts through each flavor's soundness predicate happens
// per-engine (decode-time for fused/compiled, per-store for switch), so
// this is the test that a projection bug in any one path cannot hide.
func TestEngineDifferentialFlavorMatrix(t *testing.T) {
	analysis := core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true}
	pairings := []struct {
		mode satb.BarrierMode
		gc   vm.GCKind
	}{
		{satb.ModeYuasa, vm.GCNone},
		{satb.ModeYuasa, vm.GCSATB},
		{satb.ModeDijkstra, vm.GCNone},
		{satb.ModeDijkstra, vm.GCSATB},
		{satb.ModeDijkstra, vm.GCIncremental},
		{satb.ModeHybrid, vm.GCNone},
		{satb.ModeHybrid, vm.GCSATB},
		{satb.ModeHybrid, vm.GCIncremental},
	}
	gcName := map[vm.GCKind]string{vm.GCNone: "none", vm.GCSATB: "satb", vm.GCIncremental: "inc"}
	for _, w := range workloads.All() {
		bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: 100,
			Analysis:    analysis,
		})
		if err != nil {
			t.Fatalf("%s: compile: %v", w.Name, err)
		}
		for _, pr := range pairings {
			for _, oracle := range []bool{false, true} {
				name := w.Name + "/" + pr.mode.String() + "/" + gcName[pr.gc]
				if oracle {
					name += "/oracle"
				}
				t.Run(name, func(t *testing.T) {
					cfg := vm.Config{
						Barrier:            pr.mode,
						GC:                 pr.gc,
						TriggerEveryAllocs: 64,
						// Armed only on snapshot-sound flavors (yuasa,
						// hybrid); a no-op with GC off.
						CheckInvariant: true,
						CheckElisions:  oracle,
					}
					fused := runEngine(t, bd, cfg, vm.EngineFused)
					sw := runEngine(t, bd, cfg, vm.EngineSwitch)
					comp := runEngine(t, bd, cfg, vm.EngineCompiled)
					assertIdentical(t, fused, sw, "fused", "switch")
					assertIdentical(t, comp, fused, "compiled", "fused")
					if oracle {
						// Dijkstra projects every deletion-side verdict
						// away, so the oracle has nothing to validate;
						// the deletion-capable flavors must validate the
						// kept subset.
						if pr.mode == satb.ModeDijkstra && fused.ElisionChecks != 0 {
							t.Errorf("dijkstra validated %d elisions, want 0 (all verdicts projected)", fused.ElisionChecks)
						}
						if pr.mode != satb.ModeDijkstra && fused.ElisionChecks == 0 {
							t.Error("oracle ran but validated no elided stores")
						}
					}
					s := fused.Counters.Summarize()
					if len(s.UnsoundSites) > 0 {
						t.Errorf("unsound sites under %s: %v", pr.mode, s.UnsoundSites)
					}
					if pr.mode == satb.ModeDijkstra && s.ElidedExecs+s.NullOrSameExecs+s.RearrangeExecs != 0 {
						t.Errorf("dijkstra executed elided sites (prenull=%d nos=%d rearr=%d), projection leaked",
							s.ElidedExecs, s.NullOrSameExecs, s.RearrangeExecs)
					}
				})
			}
		}
	}
}

// TestEngineDifferentialQuantumBoundaries stresses boundary gating at
// scheduler quantum ends: tiny odd quanta force fused superinstructions
// and whole compiled segments to straddle quantum ends and fall back to
// the per-instruction path mid-sequence, which must not perturb any
// observable result. Quantum 1 is the extreme: no compiled segment longer
// than one instruction ever fits, so the compiled engine runs almost
// entirely on its deopt path.
func TestEngineDifferentialQuantumBoundaries(t *testing.T) {
	w, err := workloads.Get("jbb")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
		InlineLimit: 100,
		Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, quantum := range []int{1, 2, 3, 5, 7, 13, 64} {
		cfg := vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 32,
			Quantum:            quantum,
		}
		fused := runEngine(t, bd, cfg, vm.EngineFused)
		sw := runEngine(t, bd, cfg, vm.EngineSwitch)
		comp := runEngine(t, bd, cfg, vm.EngineCompiled)
		t.Run("quantum", func(t *testing.T) {
			assertIdentical(t, fused, sw, "fused", "switch")
			assertIdentical(t, comp, fused, "compiled", "fused")
		})
	}
}

// TestEngineDifferentialStepBudget verifies that budget exhaustion
// surfaces at the identical instruction on all three engines (a fused
// form or compiled segment must never over- or under-run MaxSteps).
func TestEngineDifferentialStepBudget(t *testing.T) {
	w, err := workloads.Get("db")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{InlineLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 7, 100, 1001, 4999} {
		cfg := vm.Config{Barrier: satb.ModeAlwaysLog, MaxSteps: budget}
		cfg.Engine = vm.EngineFused
		_, ferr := bd.Run(cfg)
		cfg.Engine = vm.EngineSwitch
		_, serr := bd.Run(cfg)
		cfg.Engine = vm.EngineCompiled
		cfg.TierThreshold = diffTierThreshold
		_, cerr := bd.Run(cfg)
		if ferr == nil || serr == nil || cerr == nil {
			t.Fatalf("budget %d: expected exhaustion on every engine (fused=%v switch=%v compiled=%v)",
				budget, ferr, serr, cerr)
		}
		if ferr.Error() != serr.Error() {
			t.Errorf("budget %d: fused error %q, switch error %q", budget, ferr, serr)
		}
		if cerr.Error() != ferr.Error() {
			t.Errorf("budget %d: compiled error %q, fused error %q", budget, cerr, ferr)
		}
	}
}

// TestEngineDifferentialForcedDeopt runs the compiled tier with forced
// deoptimization firing at varying points mid-execution — after the
// first compiled segment, mid-loop, deep into the run — and demands
// bit-identical results versus the fused engine. This is the deopt
// contract: abandoning compiled code at ANY segment boundary re-enters
// fused dispatch with no observable difference.
func TestEngineDifferentialForcedDeopt(t *testing.T) {
	for _, wname := range []string{"db", "mtrt"} {
		w, err := workloads.Get(wname)
		if err != nil {
			t.Fatal(err)
		}
		bd, err := pipeline.Compile(w.Name, w.Source, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true, Rearrange: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 64,
		}
		fused := runEngine(t, bd, cfg, vm.EngineFused)
		for _, after := range []int64{1, 5, 50, 500} {
			ccfg := cfg
			ccfg.TierForceDeoptAfter = after
			comp := runEngine(t, bd, ccfg, vm.EngineCompiled)
			t.Run(wname, func(t *testing.T) {
				assertIdentical(t, comp, fused, "compiled", "fused")
				if comp.TierSegExecs != after {
					t.Errorf("deopt after %d: TierSegExecs = %d, want exactly %d", after, comp.TierSegExecs, after)
				}
				if comp.TierDeopts == 0 {
					t.Errorf("deopt after %d: TierDeopts = 0, want forced deopt recorded", after)
				}
			})
		}
	}
}
