package vm

import (
	"errors"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/satb"
)

// findPutField returns (method, pc) of the first reference putfield of the
// named field in the program.
func findPutField(t *testing.T, p *bytecode.Program, field string) (*bytecode.Method, int) {
	t.Helper()
	for _, m := range p.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op == bytecode.OpPutField && in.Field.Name == field {
				return m, pc
			}
		}
	}
	t.Fatalf("no putfield %s in program", field)
	return nil, 0
}

// TestOracleCatchesNonNullOverwrite injects an unsound pre-null elision at
// a store that dynamically overwrites a non-null reference and checks the
// oracle reports it with a precise site diagnostic.
func TestOracleCatchesNonNullOverwrite(t *testing.T) {
	p := compileSrc(t, `
class N { N next; }
class A {
    static void main() {
        N n = new N();
        n.next = new N();   // pre-null: genuinely elidable
        n.next = new N();   // overwrites non-null: elision would be unsound
    }
}
`, 0)
	m, _ := findPutField(t, p, "next")
	// Mark *every* next-store elided: the second execution must trip.
	for i := range m.Code {
		if m.Code[i].Op == bytecode.OpPutField && m.Code[i].Field.Name == "next" {
			m.Code[i].Elide = true
		}
	}
	_, err := New(p, Config{CheckElisions: true}).Run()
	var sv *SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want *SoundnessViolation", err)
	}
	if sv.Method != m.QualifiedName() {
		t.Errorf("violation method = %s, want %s", sv.Method, m.QualifiedName())
	}
	if sv.Elide != satb.ElidePreNull || sv.Site != satb.FieldSite {
		t.Errorf("violation kind = %v/%v, want pre-null field", sv.Elide, sv.Site)
	}
	if !strings.Contains(sv.Reason, "non-null") {
		t.Errorf("reason = %q, want non-null overwrite", sv.Reason)
	}
	if sv.AllocSite == "" {
		t.Error("violation should carry the target's allocation site")
	}
}

// TestOracleCatchesEscapedTarget injects an elision at a pre-null store
// whose target has been published through a static: the slot is null, but
// the thread-locality claim is false.
func TestOracleCatchesEscapedTarget(t *testing.T) {
	p := compileSrc(t, `
class N { N next; }
class A {
    static N shared;
    static void main() {
        N n = new N();
        A.shared = n;       // n escapes
        n.next = new N();   // pre-null, but target is published
    }
}
`, 0)
	m, pc := findPutField(t, p, "next")
	m.Code[pc].Elide = true
	_, err := New(p, Config{CheckElisions: true}).Run()
	var sv *SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want *SoundnessViolation", err)
	}
	if !strings.Contains(sv.Reason, "escaped") {
		t.Errorf("reason = %q, want escape diagnostic", sv.Reason)
	}
}

// TestOracleCatchesCrossThreadStore publishes an object to a spawned
// thread; a pre-null elision on a store the second thread performs must be
// flagged even though the slot is null.
func TestOracleCatchesCrossThreadStore(t *testing.T) {
	p := compileSrc(t, `
class W {
    W next;
    void work() { this.next = new W(); }
}
class A {
    static void main() {
        W w = new W();
        spawn w.work();
        print(0);
    }
}
`, 0)
	m, pc := findPutField(t, p, "next")
	m.Code[pc].Elide = true
	_, err := New(p, Config{CheckElisions: true}).Run()
	var sv *SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want *SoundnessViolation", err)
	}
	if !strings.Contains(sv.Reason, "escaped") {
		t.Errorf("reason = %q, want escape diagnostic", sv.Reason)
	}
}

// TestOracleCleanOnAnalyzedProgram runs a genuinely analyzed program under
// the oracle: elisions must validate, and the oracle must actually check
// them.
func TestOracleCleanOnAnalyzedProgram(t *testing.T) {
	p := compileSrc(t, `
class N { N next; }
class A {
    static void main() {
        int k = 0;
        for (int i = 0; i < 50; i = i + 1) {
            N head = new N();
            head.next = new N();   // pre-null every iteration
            N[] arr = new N[4];
            for (int j = 0; j < 4; j = j + 1) arr[j] = new N();
            k = k + 1;
        }
        print(k);
    }
}
`, 100)
	if _, err := core.AnalyzeProgram(p, core.Options{Mode: core.ModeFieldArray, NullOrSame: true}); err != nil {
		t.Fatal(err)
	}
	res, err := New(p, Config{
		Barrier:            satb.ModeConditional,
		GC:                 GCSATB,
		TriggerEveryAllocs: 20,
		CheckInvariant:     true,
		CheckElisions:      true,
	}).Run()
	if err != nil {
		t.Fatalf("oracle flagged an analyzed program: %v", err)
	}
	if res.ElisionChecks == 0 {
		t.Error("oracle ran but validated no elided stores (no elisions happened?)")
	}
	if s := res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
		t.Errorf("unsound sites: %v", s.UnsoundSites)
	}
}
