package vm_test

// Targeted tests for the compiled hot-method tier: counter-driven tier-up
// hysteresis (a method heats to the threshold, tiers up exactly once, and
// stays tiered), forced deoptimization mid-loop re-entering fused
// dispatch, and the tier knobs' defaulting behaviour. The differential
// harness in engine_diff_test.go covers whole-workload bit-parity; these
// tests pin the tier-up machinery itself on a program small enough to
// reason about by hand.

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

// tierTestSource has one hot helper with a store-heavy loop (called
// repeatedly so it heats through both call counts and back-edges) and a
// cold helper called exactly once.
const tierTestSource = `
class Node {
    int val;
    Node next;
    Node(int v) {
        val = v;
    }
}

class Hot {
    static int sum(int n) {
        Node head = null;
        int s = 0;
        for (int i = 0; i < n; i = i + 1) {
            Node x = new Node(i);
            x.next = head;     // pre-null chain store
            head = x;
            s = s + x.val;
        }
        while (head != null) {
            s = s + head.val;
            head = head.next;
        }
        return s;
    }

    static int once(int x) {
        return x * 3 + 1;
    }

    static void main() {
        int total = Hot.once(7);
        for (int r = 0; r < 24; r = r + 1) {
            total = total + Hot.sum(40);
        }
        print(total);
    }
}
`

func compileTierTest(t *testing.T) *pipeline.Build {
	t.Helper()
	bd, err := pipeline.Compile("tiertest", tierTestSource, pipeline.Options{
		InlineLimit: 0, // keep sum/once as real methods so call counts drive hotness
		Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return bd
}

func runTier(t *testing.T, bd *pipeline.Build, cfg vm.Config) *vm.Result {
	t.Helper()
	res, err := bd.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertSameRun demands identical observable results (the tier counters
// and engine label are the only fields allowed to differ).
func assertSameRun(t *testing.T, got, want *vm.Result, gn, wn string) {
	t.Helper()
	if !reflect.DeepEqual(got.Output, want.Output) {
		t.Errorf("Output: %s %v, %s %v", gn, got.Output, wn, want.Output)
	}
	if got.Steps != want.Steps {
		t.Errorf("Steps: %s %d, %s %d", gn, got.Steps, wn, want.Steps)
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Errorf("Counters differ between %s and %s", gn, wn)
	}
}

// TestTierUpHysteresis pins the counter-driven tier-up policy: below the
// threshold nothing compiles; once crossed, the hot method compiles
// exactly once and stays compiled (TierUps counts methods, not
// re-translations), and the run is bit-identical either way.
func TestTierUpHysteresis(t *testing.T) {
	bd := compileTierTest(t)
	base := runTier(t, bd, vm.Config{Barrier: satb.ModeAlwaysLog, Engine: vm.EngineFused})

	// Threshold far above anything the program can reach: the tier is
	// armed but no method ever heats up; the run stays on fused dispatch.
	cold := runTier(t, bd, vm.Config{
		Barrier: satb.ModeAlwaysLog, Engine: vm.EngineCompiled, TierThreshold: 1 << 40,
	})
	if cold.TierUps != 0 || cold.TierSegExecs != 0 {
		t.Errorf("unreachable threshold still tiered: ups=%d segExecs=%d", cold.TierUps, cold.TierSegExecs)
	}
	assertSameRun(t, cold, base, "cold-compiled", "fused")

	// Low threshold: the hot loop and its callee compile; the cold
	// helper (one call, no loop) must not. Repeating the run on a fresh
	// VM must tier up the same methods at the same points.
	hot := runTier(t, bd, vm.Config{
		Barrier: satb.ModeAlwaysLog, Engine: vm.EngineCompiled, TierThreshold: 8,
	})
	if hot.TierUps == 0 {
		t.Fatal("threshold 8 never tiered up")
	}
	if hot.TierSegExecs == 0 {
		t.Error("tiered run executed no compiled segments")
	}
	if hot.TierUps >= 4 {
		t.Errorf("TierUps = %d, want only the hot methods (sum, main), not every method", hot.TierUps)
	}
	assertSameRun(t, hot, base, "hot-compiled", "fused")

	again := runTier(t, bd, vm.Config{
		Barrier: satb.ModeAlwaysLog, Engine: vm.EngineCompiled, TierThreshold: 8,
	})
	if again.TierUps != hot.TierUps || again.TierSegExecs != hot.TierSegExecs || again.TierDeopts != hot.TierDeopts {
		t.Errorf("tiering not deterministic: run1 {ups=%d seg=%d deopt=%d} run2 {ups=%d seg=%d deopt=%d}",
			hot.TierUps, hot.TierSegExecs, hot.TierDeopts,
			again.TierUps, again.TierSegExecs, again.TierDeopts)
	}
}

// TestTierForcedDeoptMidLoop is the deopt contract on a method-scale
// program: the hot method tiers up, forced deopt fires mid-loop (well
// after tier-up, well before the program ends), execution re-enters fused
// dispatch for the rest of the run, and Output/Steps/Counters are
// identical to a never-tiered run.
func TestTierForcedDeoptMidLoop(t *testing.T) {
	bd := compileTierTest(t)
	base := runTier(t, bd, vm.Config{Barrier: satb.ModeAlwaysLog, Engine: vm.EngineFused})

	full := runTier(t, bd, vm.Config{
		Barrier: satb.ModeAlwaysLog, Engine: vm.EngineCompiled, TierThreshold: 8,
	})
	if full.TierSegExecs < 20 {
		t.Fatalf("need a long compiled run to deopt mid-way, got %d segment execs", full.TierSegExecs)
	}
	after := full.TierSegExecs / 2
	deopt := runTier(t, bd, vm.Config{
		Barrier: satb.ModeAlwaysLog, Engine: vm.EngineCompiled,
		TierThreshold: 8, TierForceDeoptAfter: after,
	})
	if deopt.TierUps == 0 {
		t.Fatal("deopt run never tiered up")
	}
	if deopt.TierSegExecs != after {
		t.Errorf("TierSegExecs = %d, want exactly %d (forced deopt must stop compiled execution)", deopt.TierSegExecs, after)
	}
	if deopt.TierDeopts == 0 {
		t.Error("forced deopt not recorded in TierDeopts")
	}
	assertSameRun(t, deopt, base, "deopted", "fused")
	assertSameRun(t, deopt, full, "deopted", "fully-compiled")
}

// TestTierConfigSurface pins the knob defaults: threshold 0 means
// DefaultTierThreshold, the compiled engine parses, and EngineUsed
// reports the capability on the Result.
func TestTierConfigSurface(t *testing.T) {
	if vm.DefaultTierThreshold != 64 {
		t.Errorf("DefaultTierThreshold = %d, want 64", vm.DefaultTierThreshold)
	}
	eng, err := vm.ParseEngine("compiled")
	if err != nil || eng != vm.EngineCompiled {
		t.Fatalf("ParseEngine(compiled) = %v, %v", eng, err)
	}
	if got := vm.EngineCompiled.String(); got != "compiled" {
		t.Errorf("EngineCompiled.String() = %q", got)
	}
	if _, err := vm.ParseEngine("jit"); err == nil {
		t.Error("ParseEngine(jit) should fail")
	}

	bd := compileTierTest(t)
	res := runTier(t, bd, vm.Config{Barrier: satb.ModeNoBarrier, Engine: vm.EngineCompiled})
	if res.Engine != "compiled" {
		t.Errorf("Result.Engine = %q, want compiled", res.Engine)
	}
	// The program's hot loop crosses the default threshold (24 calls +
	// ~40 back-edges per call), so even the default must tier up.
	if res.TierUps == 0 {
		t.Error("default threshold never tiered up on the hot loop")
	}
}
