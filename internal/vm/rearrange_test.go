package vm

import (
	"reflect"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/satb"
)

// shuffleSrc swaps array elements continuously while allocating garbage,
// so marking cycles overlap many rearrangements.
const shuffleSrc = `
class T { int v; T(int v0) { v = v0; } }
class Noise { int n; Noise next; Noise(int x) { n = x; } }
class App {
    static T[] data;
    static Noise keep;
    static void swap(int i, int j) {
        T a = App.data[i];
        T b = App.data[j];
        App.data[i] = b;
        App.data[j] = a;
    }
    static void main() {
        App.data = new T[16];
        for (int i = 0; i < 16; i = i + 1) App.data[i] = new T(i);
        int check = 0;
        for (int round = 0; round < 120; round = round + 1) {
            swap(round % 15, (round % 15) + 1);
            swap((round * 7) % 16, (round * 3) % 16);
            // Allocation noise triggers marking cycles mid-shuffle.
            Noise n = new Noise(round);
            n.next = App.keep;
            App.keep = n;
            check = check + App.data[round % 16].v;
        }
        print(check);
    }
}
`

func buildShuffle(t *testing.T, rearrange bool) *bytecode.Program {
	t.Helper()
	p := compileSrc(t, shuffleSrc, 100)
	opts := core.Options{Mode: core.ModeFieldArray, Rearrange: rearrange}
	if _, err := core.AnalyzeProgram(p, opts); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRearrangeProtocolPreservesSnapshotInvariant(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("SATB invariant violated with rearrangement elision: %v", r)
		}
	}()
	p := buildShuffle(t, true)
	// Tiny quanta and mark budgets force marker scans to interleave with
	// swap halves (including between the two stores of one swap).
	res, err := New(p, Config{
		Barrier:            satb.ModeConditional,
		GC:                 GCSATB,
		TriggerEveryAllocs: 10,
		MarkStepBudget:     1,
		Quantum:            3,
		CheckInvariant:     true,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("expected marking cycles")
	}
	s := res.Counters.Summarize()
	if s.RearrangeExecs == 0 {
		t.Fatal("expected rearrangement-elided executions")
	}
	if len(s.UnsoundSites) != 0 {
		t.Fatalf("unsound: %v", s.UnsoundSites)
	}
	t.Logf("cycles=%d rearrangeExecs=%d retraces=%d", res.Cycles, s.RearrangeExecs, s.Retraces)
}

func TestRearrangeSemanticsUnchanged(t *testing.T) {
	pOff := buildShuffle(t, false)
	pOn := buildShuffle(t, true)
	cfg := Config{
		Barrier:            satb.ModeConditional,
		GC:                 GCSATB,
		TriggerEveryAllocs: 10,
		MarkStepBudget:     1,
		Quantum:            3,
	}
	rOff, err := New(pOff, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := New(pOn, cfg).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rOff.Output, rOn.Output) {
		t.Errorf("rearrangement elision changed output: %v vs %v", rOff.Output, rOn.Output)
	}
	if !(rOn.Counters.Cost < rOff.Counters.Cost) {
		t.Errorf("rearrangement should cut barrier cost: %d -> %d", rOff.Counters.Cost, rOn.Counters.Cost)
	}
	if rOn.Counters.Logged >= rOff.Counters.Logged {
		t.Errorf("rearrangement should cut log traffic: %d -> %d", rOff.Counters.Logged, rOn.Counters.Logged)
	}
}

func TestRearrangeUnderCardMarkingFallsBack(t *testing.T) {
	p := buildShuffle(t, true)
	res, err := New(p, Config{
		Barrier:            satb.ModeCardMarking,
		GC:                 GCIncremental,
		TriggerEveryAllocs: 10,
		MarkStepBudget:     1,
		Quantum:            3,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.CardsDirtied == 0 {
		t.Error("flagged sites must degrade to card stores under incremental update")
	}
}
