package vm

import (
	"fmt"
	"math"

	"satbelim/internal/bytecode"
	"satbelim/internal/heap"
	"satbelim/internal/satb"
)

// This file implements the decode half of the pre-decoded execution
// engine: at VM construction every method's bytecode is translated into a
// dense internal form (dinstr) whose operands are fully resolved — field
// names become slot indices, method references become *dmethod pointers,
// barrier sites become pre-classified site records carrying the elision
// verdict decided once here instead of per execution. A second pass fuses
// the hottest instruction sequences (loop headers, local increments,
// array element stores, field stores from locals) into superinstructions.
//
// Fusion never changes semantics: the per-pc plain instructions are kept
// alongside each fused head, and the executor only takes the fused form
// when the whole sequence fits in the remaining scheduler quantum and
// instruction budget — otherwise it replays the exact per-instruction
// path of the reference interpreter, including mid-sequence thread
// rotation. Branches into the middle of a fused region simply execute the
// plain instructions at those pcs.

// dop is a dense decoded opcode.
type dop uint8

const (
	dNop dop = iota
	dConst
	dConstNull
	dLoad
	dStore
	dDup
	dPop
	dAdd
	dSub
	dMul
	dDiv
	dRem
	dNeg
	dAnd
	dOr
	dNot
	dCmpEQ
	dCmpNE
	dCmpLT
	dCmpLE
	dCmpGT
	dCmpGE
	dRefEQ
	dRefNE
	dGoto
	dIfTrue
	dIfFalse
	dIfNull
	dIfNonNull
	dGetFieldRef
	dGetFieldInt
	dPutFieldRef
	dPutFieldInt
	dGetStaticRef
	dGetStaticInt
	dPutStaticRef
	dPutStaticInt
	dNewInstance
	dNewArrayRef
	dNewArrayInt
	dArrayLength
	dAALoad
	dIALoad
	dAAStore
	dIAStore
	dInvoke
	dSpawn
	dReturn
	dReturnValue
	dPrint
	dTrap

	// Superinstructions (only ever appear in dmethod.fused, never in
	// dmethod.code). Naming: L = load local, C = constant.
	fLLCmpBr    // load x; load y; cmp; iftrue/iffalse
	fLCCmpBr    // load x; const; cmp; iftrue/iffalse
	fIncLocal   // load x; const; add/sub/mul; store y
	fLLArith    // load x; load y; add/sub/mul
	fLCArith    // load x; const; add/sub/mul
	fConstStore // const; store y
	fLGetFieldRef
	fLGetFieldInt // load obj; getfield
	fLLPutFieldRef
	fLLPutFieldInt // load obj; load val; putfield
	fLLAALoad
	fLLIALoad // load arr; load idx; aaload/iaload
	fLLLAAStore
	fLLLIAStore // load arr; load idx; load val; aastore/iastore
)

// dinstr is one decoded instruction. Operand meaning depends on op:
// slot index (load/store), branch target pc (branches), or an index into
// one of the method's operand tables (fields, statics, allocs, callees;
// b is the site-table index of barriered stores).
type dinstr struct {
	op   dop
	fuse int32 // index into dmethod.fused; -1 when this pc heads no fusion
	a    int32
	b    int32
	imm  int64
	line int32
}

// finstr is one superinstruction. n is the number of base instructions it
// covers (the unit the scheduler quantum and Result.Steps count in).
type finstr struct {
	op            dop
	n             int8
	a, b, c, d, e int32
	imm           int64
	site          int32
}

// fieldRec is a resolved instance-field operand.
type fieldRec struct {
	ref   bytecode.FieldRef
	idx   int32
	isRef bool
}

// staticRec is a resolved static-field operand.
type staticRec struct {
	ref   bytecode.FieldRef
	isRef bool
}

// allocRec is a resolved allocation site.
type allocRec struct {
	class   string
	nFields int
}

// calleeRec is a resolved call target. ref keeps the original method
// reference string for the null-receiver diagnostic.
type calleeRec struct {
	m   *dmethod
	ref string
}

// siteRec is a barriered store site with its decode-time elision verdict.
// stats is resolved against the VM's counters on first execution, so a
// never-executed site leaves no trace (matching the reference engine).
type siteRec struct {
	key   satb.SiteKey
	kind  satb.SiteKind
	elide satb.ElideKind
	stats *satb.SiteStats
}

// dmethod is one decoded method plus its frame pool.
type dmethod struct {
	src      *bytecode.Method
	name     string // qualified "Class.Name"
	static   bool
	numArgs  int
	numSlots int
	stackCap int

	code    []dinstr
	fused   []finstr
	fields  []fieldRec
	statics []staticRec
	allocs  []allocRec
	callees []calleeRec
	sites   []siteRec

	// pool recycles frames; steady-state call-heavy execution allocates
	// nothing per invoke. recycled counts pool hits for the
	// observability layer (plain counter: the VM is single-goroutine).
	pool     []*fframe
	recycled int64

	// Compiled-tier state (EngineCompiled only; all three are inert on
	// the other engines). hotness counts method entries plus loop
	// back-edges observed on fused dispatch; tier is the closure-threaded
	// translation installed at tier-up; tierFailed bars a method whose
	// translation was rejected from being retried every quantum.
	hotness    int64
	tier       *cmethod
	tierFailed bool
}

// maxFramePool bounds the per-method free list (deep recursion spikes
// should not pin frames forever).
const maxFramePool = 64

// acquire returns a frame with zeroed locals and an empty stack.
func (m *dmethod) acquire() *fframe {
	if n := len(m.pool); n > 0 {
		f := m.pool[n-1]
		m.pool = m.pool[:n-1]
		m.recycled++
		f.pc, f.sp = 0, 0
		loc := f.locals
		for i := range loc {
			loc[i] = heap.Value{}
		}
		return f
	}
	return &fframe{m: m, locals: make([]heap.Value, m.numSlots), stack: make([]heap.Value, m.stackCap)}
}

// release returns a frame to the pool.
func (m *dmethod) release(f *fframe) {
	if len(m.pool) < maxFramePool {
		m.pool = append(m.pool, f)
	}
}

// dprogram is a decoded program.
type dprogram struct {
	main    *dmethod
	methods map[*bytecode.Method]*dmethod
}

// decodeProgram translates a program into the dense executable form. Any
// unresolvable operand fails the whole decode; the caller then falls back
// to the switch interpreter, which reports such programs with its usual
// runtime errors. project maps each store's analysis verdict to the
// verdict used at runtime (the barrier flavor's soundness projection) —
// it runs once per site here, keeping flavor logic off the dispatch path.
func decodeProgram(p *bytecode.Program, layout *heap.Layout, project func(*bytecode.Instr) satb.ElideKind) (*dprogram, error) {
	mm := p.Method(p.Main)
	if mm == nil {
		return nil, fmt.Errorf("vm: no main method %s", p.Main)
	}
	d := &dprogram{methods: make(map[*bytecode.Method]*dmethod)}
	methods := p.Methods()
	for _, m := range methods {
		d.methods[m] = &dmethod{
			src:      m,
			name:     m.QualifiedName(),
			static:   m.Static,
			numArgs:  m.NumArgs(),
			numSlots: m.NumSlots,
			stackCap: m.MaxStack + 4,
		}
	}
	for _, m := range methods {
		if err := d.decodeMethod(p, layout, d.methods[m], project); err != nil {
			return nil, err
		}
	}
	d.main = d.methods[mm]
	return d, nil
}

// i32 guards an operand that must fit the decoded form exactly.
func i32(v int64) (int32, error) {
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("vm: decode: operand %d out of range", v)
	}
	return int32(v), nil
}

// decodeMethod fills in dm.code and the operand tables.
func (d *dprogram) decodeMethod(p *bytecode.Program, layout *heap.Layout, dm *dmethod, project func(*bytecode.Instr) satb.ElideKind) error {
	m := dm.src
	dm.code = make([]dinstr, len(m.Code))
	for pc := range m.Code {
		in := &m.Code[pc]
		di := &dm.code[pc]
		di.fuse = -1
		di.line = int32(in.Line)
		switch in.Op {
		case bytecode.OpNop:
			di.op = dNop
		case bytecode.OpConst, bytecode.OpConstBool:
			di.op = dConst
			di.imm = in.A
		case bytecode.OpConstNull:
			di.op = dConstNull
		case bytecode.OpLoad, bytecode.OpStore:
			a, err := i32(in.A)
			if err != nil {
				return err
			}
			di.op = dLoad
			if in.Op == bytecode.OpStore {
				di.op = dStore
			}
			di.a = a
		case bytecode.OpDup:
			di.op = dDup
		case bytecode.OpPop:
			di.op = dPop
		case bytecode.OpAdd:
			di.op = dAdd
		case bytecode.OpSub:
			di.op = dSub
		case bytecode.OpMul:
			di.op = dMul
		case bytecode.OpDiv:
			di.op = dDiv
		case bytecode.OpRem:
			di.op = dRem
		case bytecode.OpNeg:
			di.op = dNeg
		case bytecode.OpAnd:
			di.op = dAnd
		case bytecode.OpOr:
			di.op = dOr
		case bytecode.OpNot:
			di.op = dNot
		case bytecode.OpCmpEQ:
			di.op = dCmpEQ
		case bytecode.OpCmpNE:
			di.op = dCmpNE
		case bytecode.OpCmpLT:
			di.op = dCmpLT
		case bytecode.OpCmpLE:
			di.op = dCmpLE
		case bytecode.OpCmpGT:
			di.op = dCmpGT
		case bytecode.OpCmpGE:
			di.op = dCmpGE
		case bytecode.OpRefEQ:
			di.op = dRefEQ
		case bytecode.OpRefNE:
			di.op = dRefNE
		case bytecode.OpGoto, bytecode.OpIfTrue, bytecode.OpIfFalse, bytecode.OpIfNull, bytecode.OpIfNonNull:
			a, err := i32(in.A)
			if err != nil {
				return err
			}
			switch in.Op {
			case bytecode.OpGoto:
				di.op = dGoto
			case bytecode.OpIfTrue:
				di.op = dIfTrue
			case bytecode.OpIfFalse:
				di.op = dIfFalse
			case bytecode.OpIfNull:
				di.op = dIfNull
			default:
				di.op = dIfNonNull
			}
			di.a = a
		case bytecode.OpGetField, bytecode.OpPutField:
			idx, err := layout.FieldIndex(in.Field)
			if err != nil {
				return fmt.Errorf("vm: decode %s pc %d: %v", dm.name, pc, err)
			}
			isRef := p.FieldType(in.Field).IsRef()
			di.a = int32(len(dm.fields))
			dm.fields = append(dm.fields, fieldRec{ref: in.Field, idx: int32(idx), isRef: isRef})
			switch {
			case in.Op == bytecode.OpGetField && isRef:
				di.op = dGetFieldRef
			case in.Op == bytecode.OpGetField:
				di.op = dGetFieldInt
			case isRef:
				di.op = dPutFieldRef
				di.b = dm.addSite(pc, satb.FieldSite, project(in))
			default:
				di.op = dPutFieldInt
			}
		case bytecode.OpGetStatic, bytecode.OpPutStatic:
			ft := p.FieldType(in.Field)
			if ft == nil {
				return fmt.Errorf("vm: decode %s pc %d: unresolved static %s", dm.name, pc, in.Field)
			}
			isRef := ft.IsRef()
			di.a = int32(len(dm.statics))
			dm.statics = append(dm.statics, staticRec{ref: in.Field, isRef: isRef})
			switch {
			case in.Op == bytecode.OpGetStatic && isRef:
				di.op = dGetStaticRef
			case in.Op == bytecode.OpGetStatic:
				di.op = dGetStaticInt
			case isRef:
				di.op = dPutStaticRef
			default:
				di.op = dPutStaticInt
			}
		case bytecode.OpNewInstance:
			if in.Type == nil {
				return fmt.Errorf("vm: decode %s pc %d: newinstance missing type", dm.name, pc)
			}
			n, ok := layout.NumFields(in.Type.Class)
			if !ok {
				return fmt.Errorf("vm: decode %s pc %d: unknown class %s", dm.name, pc, in.Type.Class)
			}
			di.op = dNewInstance
			di.a = int32(len(dm.allocs))
			dm.allocs = append(dm.allocs, allocRec{class: in.Type.Class, nFields: n})
		case bytecode.OpNewArray:
			if in.Type == nil {
				return fmt.Errorf("vm: decode %s pc %d: newarray missing element type", dm.name, pc)
			}
			di.op = dNewArrayInt
			if in.Type.IsRef() {
				di.op = dNewArrayRef
			}
		case bytecode.OpArrayLength:
			di.op = dArrayLength
		case bytecode.OpAALoad:
			di.op = dAALoad
		case bytecode.OpIALoad:
			di.op = dIALoad
		case bytecode.OpAAStore:
			di.op = dAAStore
			di.b = dm.addSite(pc, satb.ArraySite, project(in))
		case bytecode.OpIAStore:
			di.op = dIAStore
		case bytecode.OpInvoke, bytecode.OpSpawn:
			callee := p.Method(in.Method)
			if callee == nil {
				return fmt.Errorf("vm: decode %s pc %d: unresolved method %s", dm.name, pc, in.Method)
			}
			di.op = dInvoke
			if in.Op == bytecode.OpSpawn {
				di.op = dSpawn
			}
			di.a = int32(len(dm.callees))
			dm.callees = append(dm.callees, calleeRec{m: d.methods[callee], ref: in.Method.String()})
		case bytecode.OpReturn:
			di.op = dReturn
		case bytecode.OpReturnValue:
			di.op = dReturnValue
		case bytecode.OpPrint:
			di.op = dPrint
		case bytecode.OpTrap:
			di.op = dTrap
		default:
			return fmt.Errorf("vm: decode %s pc %d: unknown opcode %v", dm.name, pc, in.Op)
		}
	}
	fuseMethod(dm)
	return nil
}

// addSite records a barriered store site.
func (dm *dmethod) addSite(pc int, kind satb.SiteKind, elide satb.ElideKind) int32 {
	dm.sites = append(dm.sites, siteRec{
		key:   satb.SiteKey{Method: dm.name, PC: pc},
		kind:  kind,
		elide: elide,
	})
	return int32(len(dm.sites) - 1)
}

// isArith reports the fusible arithmetic ops (div/rem are excluded: their
// zero checks would complicate the fused error paths for no gain).
func isArith(op dop) bool { return op == dAdd || op == dSub || op == dMul }

// isCmp reports the integer comparisons.
func isCmp(op dop) bool { return op >= dCmpEQ && op <= dCmpGE }

// fuseMethod detects superinstruction patterns at every pc. Patterns may
// overlap: each pc keeps its plain instruction, so fusing is purely an
// execution shortcut from that head.
func fuseMethod(dm *dmethod) {
	code := dm.code
	add := func(pc int, fi finstr) {
		dm.fused = append(dm.fused, fi)
		code[pc].fuse = int32(len(dm.fused) - 1)
	}
	for pc := 0; pc < len(code); pc++ {
		c0 := &code[pc]
		// Length-4 patterns.
		if pc+3 < len(code) {
			c1, c2, c3 := &code[pc+1], &code[pc+2], &code[pc+3]
			switch {
			case c0.op == dLoad && c1.op == dLoad && isCmp(c2.op) &&
				(c3.op == dIfTrue || c3.op == dIfFalse):
				add(pc, finstr{op: fLLCmpBr, n: 4, a: c0.a, b: c1.a,
					c: int32(c2.op), d: c3.a, e: brTrueFlag(c3.op)})
				continue
			case c0.op == dLoad && c1.op == dConst && isCmp(c2.op) &&
				(c3.op == dIfTrue || c3.op == dIfFalse):
				add(pc, finstr{op: fLCCmpBr, n: 4, a: c0.a, imm: c1.imm,
					c: int32(c2.op), d: c3.a, e: brTrueFlag(c3.op)})
				continue
			case c0.op == dLoad && c1.op == dConst && isArith(c2.op) && c3.op == dStore:
				add(pc, finstr{op: fIncLocal, n: 4, a: c0.a, imm: c1.imm,
					c: int32(c2.op), b: c3.a})
				continue
			case c0.op == dLoad && c1.op == dLoad && c2.op == dLoad && c3.op == dAAStore:
				add(pc, finstr{op: fLLLAAStore, n: 4, a: c0.a, b: c1.a, c: c2.a, site: c3.b})
				continue
			case c0.op == dLoad && c1.op == dLoad && c2.op == dLoad && c3.op == dIAStore:
				add(pc, finstr{op: fLLLIAStore, n: 4, a: c0.a, b: c1.a, c: c2.a})
				continue
			}
		}
		// Length-3 patterns.
		if pc+2 < len(code) {
			c1, c2 := &code[pc+1], &code[pc+2]
			switch {
			case c0.op == dLoad && c1.op == dLoad && c2.op == dPutFieldRef:
				add(pc, finstr{op: fLLPutFieldRef, n: 3, a: c0.a, b: c1.a, c: c2.a, site: c2.b})
				continue
			case c0.op == dLoad && c1.op == dLoad && c2.op == dPutFieldInt:
				add(pc, finstr{op: fLLPutFieldInt, n: 3, a: c0.a, b: c1.a, c: c2.a})
				continue
			case c0.op == dLoad && c1.op == dLoad && c2.op == dAALoad:
				add(pc, finstr{op: fLLAALoad, n: 3, a: c0.a, b: c1.a})
				continue
			case c0.op == dLoad && c1.op == dLoad && c2.op == dIALoad:
				add(pc, finstr{op: fLLIALoad, n: 3, a: c0.a, b: c1.a})
				continue
			case c0.op == dLoad && c1.op == dLoad && isArith(c2.op):
				add(pc, finstr{op: fLLArith, n: 3, a: c0.a, b: c1.a, c: int32(c2.op)})
				continue
			case c0.op == dLoad && c1.op == dConst && isArith(c2.op):
				add(pc, finstr{op: fLCArith, n: 3, a: c0.a, imm: c1.imm, c: int32(c2.op)})
				continue
			}
		}
		// Length-2 patterns.
		if pc+1 < len(code) {
			c1 := &code[pc+1]
			switch {
			case c0.op == dLoad && c1.op == dGetFieldRef:
				add(pc, finstr{op: fLGetFieldRef, n: 2, a: c0.a, b: c1.a})
			case c0.op == dLoad && c1.op == dGetFieldInt:
				add(pc, finstr{op: fLGetFieldInt, n: 2, a: c0.a, b: c1.a})
			case c0.op == dConst && c1.op == dStore:
				add(pc, finstr{op: fConstStore, n: 2, imm: c0.imm, b: c1.a})
			}
		}
	}
}

// brTrueFlag encodes whether the fused branch fires on a true condition.
func brTrueFlag(op dop) int32 {
	if op == dIfTrue {
		return 1
	}
	return 0
}
