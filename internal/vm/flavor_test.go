package vm

// Per-flavor soundness tests: the oracle must reject analysis verdicts
// that leak past a flavor's soundness predicate (Config.ForceRawElide
// bypasses the projection to prove that), and the projection itself must
// make every flavor run clean on the same analyzed program.

import (
	"errors"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/core"
	"satbelim/internal/satb"
)

// flavorSrc has a genuinely pre-null field store and a genuinely
// null-or-same array rewrite, so mode-A analysis with the null-or-same
// extension produces one verdict of each kind.
const flavorSrc = `
class N { N next; }
class A {
    static void main() {
        int k = 0;
        for (int i = 0; i < 60; i = i + 1) {
            N head = new N();
            head.next = new N();     // pre-null every iteration
            head.next = head.next;   // null-or-same recopy
            head.next = new N();     // overwrites non-null: kept barrier
            N[] arr = new N[4];
            for (int j = 0; j < 4; j = j + 1) arr[j] = new N();
            k = k + 1;
        }
        print(k);
    }
}
`

// analyzedFlavorProgram compiles and analyzes flavorSrc, asserting both
// verdict kinds are present.
func analyzedFlavorProgram(t *testing.T) *bytecode.Program {
	t.Helper()
	p := compileSrc(t, flavorSrc, 100)
	if _, err := core.AnalyzeProgram(p, core.Options{Mode: core.ModeFieldArray, NullOrSame: true}); err != nil {
		t.Fatal(err)
	}
	var prenull, nos bool
	for _, m := range p.Methods() {
		for i := range m.Code {
			prenull = prenull || m.Code[i].Elide
			nos = nos || m.Code[i].ElideNullOrSame
		}
	}
	if !prenull || !nos {
		t.Fatalf("analysis produced prenull=%v nullorsame=%v, want both", prenull, nos)
	}
	return p
}

// TestFlavorOracleCatchesCrossFlavorElision proves the oracle rejects a
// pre-null verdict executed under the insertion-only dijkstra flavor
// when the projection is bypassed: dijkstra shades new values, so an
// un-logged overwrite of a live pre-value is exactly the deletion-side
// hole the verdict cannot excuse.
func TestFlavorOracleCatchesCrossFlavorElision(t *testing.T) {
	p := analyzedFlavorProgram(t)
	_, err := New(p, Config{
		Barrier:       satb.ModeDijkstra,
		CheckElisions: true,
		ForceRawElide: true,
	}).Run()
	var sv *SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want *SoundnessViolation", err)
	}
	if !strings.Contains(sv.Reason, "unsound under the dijkstra barrier flavor") {
		t.Errorf("reason = %q, want cross-flavor diagnostic", sv.Reason)
	}
}

// TestFlavorOracleCatchesHybridNullOrSame: the hybrid flavor accepts
// pre-null verdicts but not null-or-same (the same-value rewrite still
// needs its insertion-side shade), so a raw null-or-same elision must
// trip the oracle.
func TestFlavorOracleCatchesHybridNullOrSame(t *testing.T) {
	p := analyzedFlavorProgram(t)
	_, err := New(p, Config{
		Barrier:       satb.ModeHybrid,
		CheckElisions: true,
		ForceRawElide: true,
	}).Run()
	var sv *SoundnessViolation
	if !errors.As(err, &sv) {
		t.Fatalf("err = %v, want *SoundnessViolation", err)
	}
	if sv.Elide != satb.ElideNullOrSame {
		t.Errorf("violation kind = %v, want null-or-same", sv.Elide)
	}
	if !strings.Contains(sv.Reason, "unsound under the hybrid barrier flavor") {
		t.Errorf("reason = %q, want cross-flavor diagnostic", sv.Reason)
	}
}

// TestFlavorOracleCleanRuns runs the analyzed program under every
// flavor WITH projection: each flavor consumes only the verdicts its
// predicate accepts, so the oracle must stay silent, and the check
// counts must reflect the per-flavor verdict subset (yuasa validates
// everything, hybrid only the pre-null sites, dijkstra nothing).
func TestFlavorOracleCleanRuns(t *testing.T) {
	p := analyzedFlavorProgram(t)
	for _, tc := range []struct {
		mode   satb.BarrierMode
		checks string // "all", "some", "none"
	}{
		{satb.ModeYuasa, "all"},
		{satb.ModeHybrid, "some"},
		{satb.ModeDijkstra, "none"},
	} {
		res, err := New(p, Config{
			Barrier:            tc.mode,
			GC:                 GCSATB,
			TriggerEveryAllocs: 20,
			CheckInvariant:     true,
			CheckElisions:      true,
		}).Run()
		if err != nil {
			t.Fatalf("%s: oracle flagged a projected run: %v", tc.mode, err)
		}
		switch tc.checks {
		case "none":
			if res.ElisionChecks != 0 {
				t.Errorf("%s: ElisionChecks = %d, want 0 (all verdicts projected away)", tc.mode, res.ElisionChecks)
			}
		default:
			if res.ElisionChecks == 0 {
				t.Errorf("%s: ElisionChecks = 0, want > 0", tc.mode)
			}
		}
		if s := res.Counters.Summarize(); len(s.UnsoundSites) > 0 {
			t.Errorf("%s: unsound sites %v", tc.mode, s.UnsoundSites)
		}
	}
}

// TestFlavorShadeTraffic checks each flavor generates the barrier
// traffic its spec declares while marking is active: deletion-side
// flavors log pre-values, insertion-side flavors shade new values, the
// hybrid does both.
func TestFlavorShadeTraffic(t *testing.T) {
	p := analyzedFlavorProgram(t)
	for _, tc := range []struct {
		mode           satb.BarrierMode
		logged, shaded bool
	}{
		{satb.ModeConditional, true, false},
		{satb.ModeYuasa, true, false},
		{satb.ModeDijkstra, false, true},
		{satb.ModeHybrid, true, true},
	} {
		res, err := New(p, Config{
			Barrier:            tc.mode,
			GC:                 GCSATB,
			TriggerEveryAllocs: 20,
		}).Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		if got := res.Counters.Logged > 0; got != tc.logged {
			t.Errorf("%s: Logged = %d, want >0 = %v", tc.mode, res.Counters.Logged, tc.logged)
		}
		if got := res.Counters.Shaded > 0; got != tc.shaded {
			t.Errorf("%s: Shaded = %d, want >0 = %v", tc.mode, res.Counters.Shaded, tc.shaded)
		}
		if res.Flavor != tc.mode.String() {
			t.Errorf("Result.Flavor = %q, want %q", res.Flavor, tc.mode.String())
		}
	}
}

// TestFlavorInvariantGating: the snapshot-invariant checker must arm
// only on snapshot-sound flavors — a dijkstra run does not maintain the
// mark-start snapshot and would be falsely rejected.
func TestFlavorInvariantGating(t *testing.T) {
	p := analyzedFlavorProgram(t)
	for _, mode := range []satb.BarrierMode{satb.ModeDijkstra, satb.ModeHybrid, satb.ModeYuasa} {
		res, err := New(p, Config{
			Barrier:            mode,
			GC:                 GCSATB,
			TriggerEveryAllocs: 20,
			CheckInvariant:     true,
		}).Run()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%s: no marking cycles ran", mode)
		}
	}
}
