package vm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"satbelim/internal/satb"
)

// ctxTestSrc spins long enough that cancellation lands mid-run.
const ctxTestSrc = `
class N { N next; int v; }
class A {
    static void main() {
        int s = 0;
        for (int i = 0; i < 1000000; i = i + 1) {
            N n = new N();
            n.v = i;
            s = s + n.v;
        }
        print(s);
    }
}
`

// TestRunContextCancellationAbortsBothEngines: a cancelled context stops
// the run at a scheduler-quantum boundary with identical error text on
// the fused and switch engines (parity), and an expired deadline surfaces
// as context.DeadlineExceeded through errors.Is.
func TestRunContextCancellationAbortsBothEngines(t *testing.T) {
	p := compileSrc(t, ctxTestSrc, 100)
	for _, engine := range []Engine{EngineFused, EngineSwitch} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		v := New(p, Config{Barrier: satb.ModeConditional, Engine: engine})
		start := time.Now()
		_, err := v.RunContext(ctx)
		if err == nil {
			t.Fatalf("%v: cancelled run returned no error", engine)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: error %v does not wrap context.Canceled", engine, err)
		}
		if !strings.Contains(err.Error(), "vm: run cancelled") {
			t.Errorf("%v: error text %q", engine, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("%v: cancelled run took %v, want abort within a quantum", engine, elapsed)
		}
	}

	// Deadline flavor: must surface as DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	v := New(p, Config{Barrier: satb.ModeConditional})
	_, err := v.RunContext(ctx)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline run: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextBackgroundIsIdentical: RunContext with a background
// (non-cancellable) context must behave exactly like Run.
func TestRunContextBackgroundIsIdentical(t *testing.T) {
	src := `
class A {
    static void main() {
        int s = 0;
        for (int i = 0; i < 100; i = i + 1) { s = s + i; }
        print(s);
    }
}
`
	p := compileSrc(t, src, 100)
	r1, err := New(p, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(p, Config{}).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Steps != r2.Steps || len(r1.Output) != len(r2.Output) || r1.Output[0] != r2.Output[0] {
		t.Errorf("RunContext(Background) diverged from Run: %+v vs %+v", r1, r2)
	}
}
