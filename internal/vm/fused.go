package vm

import (
	"fmt"

	"satbelim/internal/heap"
	"satbelim/internal/obs"
	"satbelim/internal/satb"
)

// This file is the execution half of the pre-decoded engine. It mirrors
// the reference switch interpreter instruction for instruction — same
// step accounting, same scheduler-quantum boundaries, same error strings
// and error pcs, same barrier/oracle call order — so results are
// bit-identical. The wins are structural: operands resolved at decode
// time, pooled frames, an explicit stack pointer instead of slice
// reslicing, and superinstructions that collapse the hottest 2–4
// instruction sequences into one dispatch.

// fframe is a pooled activation record. stack is used with an explicit
// stack pointer (sp) and grows on demand, so unverified programs with an
// understated MaxStack behave like the baseline's append-based stack.
type fframe struct {
	m      *dmethod
	pc     int32
	sp     int32
	locals []heap.Value
	stack  []heap.Value
}

func (f *fframe) push(val heap.Value) {
	if int(f.sp) == len(f.stack) {
		f.stack = append(f.stack, heap.Value{})
	}
	f.stack[f.sp] = val
	f.sp++
}

func (f *fframe) pop() heap.Value {
	f.sp--
	return f.stack[f.sp]
}

// fthread is one cooperative thread of the fused engine.
type fthread struct {
	id     int
	frames []*fframe
	done   bool
	// span is the thread's observability lane span (inert when tracing
	// is disabled).
	span obs.Span
}

// ferrf builds a RuntimeError at the frame's current pc.
func (v *VM) ferrf(f *fframe, format string, args ...any) error {
	line := 0
	if int(f.pc) < len(f.m.code) {
		line = int(f.m.code[f.pc].line)
	}
	return &RuntimeError{Method: f.m.name, PC: int(f.pc), Line: line, Msg: fmt.Sprintf(format, args...)}
}

// refStoreBarrier runs the oracle check and the write barrier for one
// reference store, identical in order and observable effect to the switch
// interpreter's putfield/aastore tail. Site statistics are resolved
// lazily so that never-executed sites leave no trace in the counters.
func (v *VM) refStoreBarrier(t *fthread, f *fframe, pc int, kind satb.SiteKind, siteIdx int32, pre, newR, target heap.Ref) error {
	rec := &f.m.sites[siteIdx]
	if v.oracle != nil {
		if err := v.oracle.checkStore(f.m.name, pc, int(f.m.code[pc].line), t.id, kind, rec.elide, pre, newR, target); err != nil {
			return err
		}
	}
	if rec.stats == nil {
		rec.stats = v.counters.Site(rec.key, rec.kind, rec.elide)
	}
	v.counters.BarrierSiteSpec(v.spec, v.logger(), rec.stats, rec.elide, pre, newR, target)
	return nil
}

// runFused executes the program on the pre-decoded engine. The loop shape
// is the switch engine's: round-robin over live threads, one quantum
// each, collector tick after every quantum.
func (v *VM) runFused() (*Result, error) {
	v.fthreads = []*fthread{{frames: []*fframe{v.dprog.main.acquire()}, span: threadSpan(0)}}
	if v.cfg.ForceMarkingAlways && v.marker != nil {
		v.startCycle()
	}

	for {
		live := 0
		for _, t := range v.fthreads {
			if !t.done {
				live++
			}
		}
		if live == 0 {
			break
		}
		for _, t := range v.fthreads {
			if t.done {
				continue
			}
			if err := v.cancelled(); err != nil {
				return nil, err
			}
			if err := v.runFusedQuantum(t); err != nil {
				return nil, err
			}
			v.gcTick()
		}
	}
	if v.marker != nil && v.marker.MarkingActive() {
		v.finishCycle()
	}
	return v.result(), nil
}

// runFusedQuantum executes up to Quantum base instructions on one thread.
// A superinstruction covering n base instructions executes only when all
// n fit in both the remaining quantum and the remaining instruction
// budget; otherwise the plain per-pc instructions run, so thread rotation
// and budget exhaustion happen at exactly the same instruction as in the
// reference engine.
func (v *VM) runFusedQuantum(t *fthread) error {
	q := v.cfg.Quantum
	for i := 0; i < q; {
		if len(t.frames) == 0 {
			t.done = true
			t.span.End()
			return nil
		}
		if v.steps >= v.maxSteps {
			return fmt.Errorf("vm: instruction budget exhausted (%d)", v.maxSteps)
		}
		f := t.frames[len(t.frames)-1]
		if int(f.pc) >= len(f.m.code) {
			return v.ferrf(f, "pc past end of method")
		}
		in := &f.m.code[f.pc]
		if in.fuse >= 0 {
			fi := &f.m.fused[in.fuse]
			n := int(fi.n)
			if i+n <= q && v.steps+int64(n) <= v.maxSteps {
				if err := v.execFused(t, f, fi); err != nil {
					return err
				}
				i += n
				continue
			}
		}
		if err := v.stepFused(t, f, in); err != nil {
			return err
		}
		i++
	}
	return nil
}

// stepFused executes one plain decoded instruction. It is the switch
// interpreter's step() over the resolved form.
func (v *VM) stepFused(t *fthread, f *fframe, in *dinstr) error {
	v.steps++

	switch in.op {
	case dNop:
	case dConst:
		f.push(heap.IntVal(in.imm))
	case dConstNull:
		f.push(heap.NullVal())
	case dLoad:
		f.push(f.locals[in.a])
	case dStore:
		f.locals[in.a] = f.pop()
	case dDup:
		f.push(f.stack[f.sp-1])
	case dPop:
		f.sp--
	case dAdd, dSub, dMul:
		y, x := f.pop().I, f.pop().I
		f.push(heap.IntVal(arith(in.op, x, y)))
	case dDiv, dRem:
		y, x := f.pop().I, f.pop().I
		if y == 0 {
			return v.ferrf(f, "division by zero")
		}
		if in.op == dDiv {
			f.push(heap.IntVal(x / y))
		} else {
			f.push(heap.IntVal(x % y))
		}
	case dNeg:
		f.push(heap.IntVal(-f.pop().I))
	case dAnd:
		y, x := f.pop().I, f.pop().I
		f.push(heap.IntVal(x & y))
	case dOr:
		y, x := f.pop().I, f.pop().I
		f.push(heap.IntVal(x | y))
	case dNot:
		f.push(heap.IntVal(1 - f.pop().I))
	case dCmpEQ, dCmpNE, dCmpLT, dCmpLE, dCmpGT, dCmpGE:
		y, x := f.pop().I, f.pop().I
		f.push(heap.IntVal(b2i(intCmp(in.op, x, y))))
	case dRefEQ:
		y, x := f.pop().R, f.pop().R
		f.push(heap.IntVal(b2i(x == y)))
	case dRefNE:
		y, x := f.pop().R, f.pop().R
		f.push(heap.IntVal(b2i(x != y)))

	case dGoto:
		f.pc = in.a
		return nil
	case dIfTrue:
		if f.pop().I != 0 {
			f.pc = in.a
			return nil
		}
	case dIfFalse:
		if f.pop().I == 0 {
			f.pc = in.a
			return nil
		}
	case dIfNull:
		if f.pop().R == heap.Null {
			f.pc = in.a
			return nil
		}
	case dIfNonNull:
		if f.pop().R != heap.Null {
			f.pc = in.a
			return nil
		}

	case dGetFieldRef, dGetFieldInt:
		obj := f.pop()
		fr := &f.m.fields[in.a]
		if obj.R == heap.Null {
			return v.ferrf(f, "null pointer dereference reading %s", fr.ref)
		}
		o := v.heap.Get(obj.R)
		if o == nil {
			return v.ferrf(f, "heap: null dereference reading %s", fr.ref)
		}
		val := o.Fields[fr.idx]
		if in.op == dGetFieldRef {
			val.IsRef = true
		}
		f.push(val)
	case dPutFieldRef, dPutFieldInt:
		val := f.pop()
		obj := f.pop()
		fr := &f.m.fields[in.a]
		if obj.R == heap.Null {
			return v.ferrf(f, "null pointer dereference writing %s", fr.ref)
		}
		o := v.heap.Get(obj.R)
		if o == nil {
			return v.ferrf(f, "heap: null dereference writing %s", fr.ref)
		}
		old := o.Fields[fr.idx]
		o.Fields[fr.idx] = val
		if in.op == dPutFieldRef {
			if err := v.refStoreBarrier(t, f, int(f.pc), satb.FieldSite, in.b, old.R, val.R, obj.R); err != nil {
				return err
			}
		}
	case dGetStaticRef, dGetStaticInt:
		val := v.heap.GetStatic(f.m.statics[in.a].ref)
		if in.op == dGetStaticRef {
			val.IsRef = true
		}
		f.push(val)
	case dPutStaticRef:
		val := f.pop()
		old := v.heap.SetStatic(f.m.statics[in.a].ref, val)
		if v.oracle != nil {
			// Statics are globally reachable: the stored object (and
			// everything it reaches) is published.
			v.oracle.escape(val.R)
		}
		v.counters.StaticBarrierSpec(v.spec, v.logger(), old.R, val.R)
	case dPutStaticInt:
		v.heap.SetStatic(f.m.statics[in.a].ref, f.pop())

	case dNewInstance:
		al := &f.m.allocs[in.a]
		r := v.heap.AllocObjectN(al.class, al.nFields)
		v.allocSinceGC++
		if v.oracle != nil {
			v.oracle.noteAlloc(r, f.m.name, int(f.pc), t.id)
		}
		f.push(heap.RefVal(r))
	case dNewArrayRef, dNewArrayInt:
		n := f.pop().I
		if n < 0 {
			return v.ferrf(f, "negative array size %d", n)
		}
		r, err := v.heap.AllocArray(in.op == dNewArrayRef, n)
		if err != nil {
			return v.ferrf(f, "%v", err)
		}
		v.allocSinceGC++
		if v.oracle != nil {
			v.oracle.noteAlloc(r, f.m.name, int(f.pc), t.id)
		}
		f.push(heap.RefVal(r))
	case dArrayLength:
		arr := f.pop()
		if arr.R == heap.Null {
			return v.ferrf(f, "null pointer dereference in arraylength")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			return v.ferrf(f, "heap: null array dereference")
		}
		f.push(heap.IntVal(int64(len(o.Elems))))

	case dAALoad, dIALoad:
		idx := f.pop().I
		arr := f.pop()
		if arr.R == heap.Null {
			return v.ferrf(f, "null pointer dereference in array load")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			return v.ferrf(f, "heap: null array dereference")
		}
		if idx < 0 || idx >= int64(len(o.Elems)) {
			return v.ferrf(f, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
		}
		val := o.Elems[idx]
		if in.op == dAALoad {
			val.IsRef = true
		}
		f.push(val)
	case dAAStore, dIAStore:
		val := f.pop()
		idx := f.pop().I
		arr := f.pop()
		if arr.R == heap.Null {
			return v.ferrf(f, "null pointer dereference in array store")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			return v.ferrf(f, "heap: null array dereference")
		}
		if idx < 0 || idx >= int64(len(o.Elems)) {
			return v.ferrf(f, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
		}
		old := o.Elems[idx]
		o.Elems[idx] = val
		if in.op == dAAStore {
			if err := v.refStoreBarrier(t, f, int(f.pc), satb.ArraySite, in.b, old.R, val.R, arr.R); err != nil {
				return err
			}
		}

	case dInvoke:
		cr := &f.m.callees[in.a]
		callee := cr.m
		nf := callee.acquire()
		n := int32(callee.numArgs)
		base := f.sp - n
		copy(nf.locals[:n], f.stack[base:f.sp])
		f.sp = base
		if !callee.static && nf.locals[0].R == heap.Null {
			callee.release(nf)
			return v.ferrf(f, "null receiver calling %s", cr.ref)
		}
		f.pc++
		t.frames = append(t.frames, nf)
		return nil
	case dSpawn:
		recv := f.pop()
		if recv.R == heap.Null {
			return v.ferrf(f, "null receiver in spawn")
		}
		nf := f.m.callees[in.a].m.acquire()
		nf.locals[0] = recv
		if v.oracle != nil {
			// The receiver (and everything it reaches) becomes visible to
			// the spawned thread.
			v.oracle.escape(recv.R)
		}
		v.fthreads = append(v.fthreads, &fthread{id: len(v.fthreads), frames: []*fframe{nf}, span: threadSpan(len(v.fthreads))})
	case dReturn:
		t.frames = t.frames[:len(t.frames)-1]
		f.m.release(f)
		return nil
	case dReturnValue:
		rv := f.pop()
		t.frames = t.frames[:len(t.frames)-1]
		f.m.release(f)
		if len(t.frames) > 0 {
			t.frames[len(t.frames)-1].push(rv)
		}
		return nil
	case dPrint:
		v.output = append(v.output, f.pop().I)
	case dTrap:
		return v.ferrf(f, "missing return value")
	}
	f.pc++
	return nil
}

// execFused executes one superinstruction covering fi.n base
// instructions. Steps are credited up front: every error a fused form can
// raise occurs at its final component, by which point the baseline would
// have counted all n components too. Error paths first move f.pc to the
// failing component so diagnostics match the reference engine exactly.
func (v *VM) execFused(t *fthread, f *fframe, fi *finstr) error {
	v.steps += int64(fi.n)
	v.fusedExecs++

	switch fi.op {
	case fLLCmpBr, fLCCmpBr:
		x := f.locals[fi.a].I
		y := fi.imm
		if fi.op == fLLCmpBr {
			y = f.locals[fi.b].I
		}
		if intCmp(dop(fi.c), x, y) == (fi.e != 0) {
			f.pc = fi.d
		} else {
			f.pc += int32(fi.n)
		}
	case fIncLocal:
		f.locals[fi.b] = heap.IntVal(arith(dop(fi.c), f.locals[fi.a].I, fi.imm))
		f.pc += 4
	case fLLArith:
		f.push(heap.IntVal(arith(dop(fi.c), f.locals[fi.a].I, f.locals[fi.b].I)))
		f.pc += 3
	case fLCArith:
		f.push(heap.IntVal(arith(dop(fi.c), f.locals[fi.a].I, fi.imm)))
		f.pc += 3
	case fConstStore:
		f.locals[fi.b] = heap.IntVal(fi.imm)
		f.pc += 2

	case fLGetFieldRef, fLGetFieldInt:
		obj := f.locals[fi.a]
		fr := &f.m.fields[fi.b]
		if obj.R == heap.Null {
			f.pc++
			return v.ferrf(f, "null pointer dereference reading %s", fr.ref)
		}
		o := v.heap.Get(obj.R)
		if o == nil {
			f.pc++
			return v.ferrf(f, "heap: null dereference reading %s", fr.ref)
		}
		val := o.Fields[fr.idx]
		if fi.op == fLGetFieldRef {
			val.IsRef = true
		}
		f.push(val)
		f.pc += 2
	case fLLPutFieldRef, fLLPutFieldInt:
		obj := f.locals[fi.a]
		val := f.locals[fi.b]
		fr := &f.m.fields[fi.c]
		if obj.R == heap.Null {
			f.pc += 2
			return v.ferrf(f, "null pointer dereference writing %s", fr.ref)
		}
		o := v.heap.Get(obj.R)
		if o == nil {
			f.pc += 2
			return v.ferrf(f, "heap: null dereference writing %s", fr.ref)
		}
		old := o.Fields[fr.idx]
		o.Fields[fr.idx] = val
		if fi.op == fLLPutFieldRef {
			if err := v.refStoreBarrier(t, f, int(f.pc)+2, satb.FieldSite, fi.site, old.R, val.R, obj.R); err != nil {
				return err
			}
		}
		f.pc += 3

	case fLLAALoad, fLLIALoad:
		arr := f.locals[fi.a]
		idx := f.locals[fi.b].I
		if arr.R == heap.Null {
			f.pc += 2
			return v.ferrf(f, "null pointer dereference in array load")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			f.pc += 2
			return v.ferrf(f, "heap: null array dereference")
		}
		if idx < 0 || idx >= int64(len(o.Elems)) {
			f.pc += 2
			return v.ferrf(f, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
		}
		val := o.Elems[idx]
		if fi.op == fLLAALoad {
			val.IsRef = true
		}
		f.push(val)
		f.pc += 3
	case fLLLAAStore, fLLLIAStore:
		arr := f.locals[fi.a]
		idx := f.locals[fi.b].I
		val := f.locals[fi.c]
		if arr.R == heap.Null {
			f.pc += 3
			return v.ferrf(f, "null pointer dereference in array store")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			f.pc += 3
			return v.ferrf(f, "heap: null array dereference")
		}
		if idx < 0 || idx >= int64(len(o.Elems)) {
			f.pc += 3
			return v.ferrf(f, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
		}
		old := o.Elems[idx]
		o.Elems[idx] = val
		if fi.op == fLLLAAStore {
			if err := v.refStoreBarrier(t, f, int(f.pc)+3, satb.ArraySite, fi.site, old.R, val.R, arr.R); err != nil {
				return err
			}
		}
		f.pc += 4
	}
	return nil
}

// arith evaluates the fusible arithmetic ops.
func arith(op dop, x, y int64) int64 {
	switch op {
	case dAdd:
		return x + y
	case dSub:
		return x - y
	default:
		return x * y
	}
}

// intCmp evaluates the integer comparisons.
func intCmp(op dop, x, y int64) bool {
	switch op {
	case dCmpEQ:
		return x == y
	case dCmpNE:
		return x != y
	case dCmpLT:
		return x < y
	case dCmpLE:
		return x <= y
	case dCmpGT:
		return x > y
	default:
		return x >= y
	}
}
