// Package vm interprets bytecode programs over the heap, executing SATB
// (or card-marking) write barriers at reference stores and driving the
// concurrent collector in deterministic steps. Threads created by spawn
// are scheduled cooperatively (fixed round-robin quanta) so that every
// run — including the mutator/collector interleaving — is reproducible.
package vm

import (
	"context"
	"fmt"

	"satbelim/internal/bytecode"
	"satbelim/internal/gc"
	"satbelim/internal/heap"
	"satbelim/internal/num"
	"satbelim/internal/obs"
	"satbelim/internal/satb"
)

// GCKind selects the collector.
type GCKind int

const (
	// GCNone runs without a collector (barriers may still execute,
	// feeding a no-op logger).
	GCNone GCKind = iota
	// GCSATB runs the snapshot-at-the-beginning concurrent marker.
	GCSATB
	// GCIncremental runs the mostly-parallel incremental-update marker.
	GCIncremental
)

// Engine selects the execution engine.
type Engine int

const (
	// EngineFused (the default) runs the pre-decoded execution engine:
	// bytecode is translated at VM construction into a dense internal form
	// with resolved operands (field offsets, call targets, site records),
	// hot instruction sequences are fused into superinstructions, and
	// frames are pooled. Results are bit-identical to EngineSwitch. When a
	// program cannot be decoded (unresolved references), the VM silently
	// falls back to the switch interpreter, which reports the failure with
	// its usual runtime errors.
	EngineFused Engine = iota
	// EngineSwitch is the reference interpreter: a giant switch over the
	// raw bytecode, kept as the differential-testing baseline.
	EngineSwitch
	// EngineCompiled is the tiered execution engine: methods start on
	// fused dispatch and, once their exec counter (entries + loop
	// back-edges) crosses Config.TierThreshold, are translated to
	// closure-threaded compiled code — an array of per-segment
	// continuations with branch targets resolved to segment indices,
	// fused superinstructions preserved, and elided stores compiled to
	// raw writes with no barrier-test residue. Scheduler-quantum and
	// step-budget checks happen only at segment boundaries (loop
	// back-edges, branches, calls); a segment that does not fit the
	// remaining quantum or budget deopts to fused dispatch for the tail,
	// so thread interleaving and results stay bit-identical to the other
	// engines. The runtime elision oracle disables tier-up entirely
	// (oracle runs execute on fused dispatch with identical semantics).
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineSwitch:
		return "switch"
	case EngineCompiled:
		return "compiled"
	}
	return "fused"
}

// ParseEngine parses an engine name ("fused", "switch", or "compiled").
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "fused", "":
		return EngineFused, nil
	case "switch":
		return EngineSwitch, nil
	case "compiled":
		return EngineCompiled, nil
	}
	return EngineFused, fmt.Errorf("unknown engine %q (want fused, switch, or compiled)", s)
}

// ParseGCKind parses a collector name ("none", "satb", or "inc"). All
// CLIs share it so the flag vocabulary cannot drift.
func ParseGCKind(s string) (GCKind, error) {
	switch s {
	case "none", "":
		return GCNone, nil
	case "satb":
		return GCSATB, nil
	case "inc":
		return GCIncremental, nil
	}
	return GCNone, fmt.Errorf("unknown gc %q (want none, satb, or inc)", s)
}

// Config controls one VM run.
type Config struct {
	Barrier satb.BarrierMode
	GC      GCKind
	// Engine selects the execution engine (default EngineFused).
	Engine Engine
	// TriggerEveryAllocs starts a marking cycle each time this many
	// allocations accumulate (0 = never).
	TriggerEveryAllocs int64
	// MarkStepBudget is the marking work granted per scheduler quantum.
	MarkStepBudget int
	// Quantum is the number of instructions one thread runs before the
	// scheduler rotates (and the marker steps).
	Quantum int
	// MaxSteps bounds total executed instructions (0 = default bound).
	MaxSteps int64
	// CheckInvariant records a snapshot at each mark start and verifies
	// the SATB reachability invariant at each mark end. Armed only for
	// snapshot-sound barrier flavors (see satb.BarrierSpec.SnapshotSound):
	// an insertion-only barrier keeps live objects reachable but does not
	// maintain the mark-start snapshot, so the check would reject correct
	// runs.
	CheckInvariant bool
	// ForceMarkingAlways keeps a marking cycle permanently active
	// (starting a new cycle as soon as one finishes).
	ForceMarkingAlways bool
	// CheckElisions enables the runtime elision-soundness oracle: every
	// elided reference store asserts the analysis claim that justified
	// the elision (overwritten slot null / null-or-same, target object
	// still thread-local). A contradicted claim aborts the run with a
	// structured *SoundnessViolation instead of silently corrupting
	// marking.
	CheckElisions bool
	// TierThreshold is the hot-method exec count (method entries + loop
	// back-edges observed on fused dispatch) at which EngineCompiled
	// translates a method to closure-threaded compiled code (0 = default
	// 64). Ignored by the other engines.
	TierThreshold int64
	// TierForceDeoptAfter, when > 0, abandons ALL compiled methods after
	// that many compiled-segment executions and permanently re-enters
	// fused dispatch (simulating tier invalidation). A deliberately
	// non-production knob for deopt testing and chaos runs; results stay
	// bit-identical because fused dispatch is the tier's deopt target.
	TierForceDeoptAfter int64
	// ForceRawElide bypasses the barrier flavor's soundness projection
	// and applies every analysis verdict as-is — deliberately unsound
	// under flavors whose spec rejects a verdict. A testing-only knob:
	// the per-flavor oracle violation tests use it to prove the oracle
	// catches cross-flavor elisions.
	ForceRawElide bool
}

// Result summarizes a run.
type Result struct {
	Output   []int64
	Steps    int64 // executed instructions (base cost units)
	Counters *satb.Counters
	// Cycles is the number of completed marking cycles.
	Cycles int
	// FinalPauseWork sums the final-pause work of all cycles.
	FinalPauseWork int
	// Allocated counts heap allocations.
	Allocated int64
	// Swept counts objects reclaimed.
	Swept int
	// ElisionChecks counts elided-store executions validated by the
	// soundness oracle (0 unless Config.CheckElisions was set).
	ElisionChecks int64
	// Engine names the execution engine that produced the result
	// ("fused", "switch", or "compiled"); informational only, never part
	// of the semantics.
	Engine string
	// Flavor names the barrier flavor the run executed under
	// (satb.BarrierSpec.Name).
	Flavor string
	// TierUps counts methods translated to the compiled tier during this
	// run; TierDeopts counts fallbacks from compiled code to fused
	// dispatch (quantum-tail, step-budget, or forced deopts); TierSegExecs
	// counts compiled-segment dispatches. All zero unless EngineCompiled
	// was selected. Informational only — never part of the semantics, and
	// excluded from engine-parity comparisons (like Engine).
	TierUps      int
	TierDeopts   int64
	TierSegExecs int64
}

// TotalCost is the deterministic cost-model total: instructions executed
// plus barrier cost units (overflow-safe: saturates instead of wrapping).
func (r *Result) TotalCost() uint64 { return num.AddSat(num.U64(r.Steps), r.Counters.Cost) }

// RuntimeError is a VM execution failure with location.
type RuntimeError struct {
	Method string
	PC     int
	Line   int
	Msg    string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("runtime error at %s pc %d (line %d): %s", e.Method, e.PC, e.Line, e.Msg)
}

type frame struct {
	m      *bytecode.Method
	pc     int
	locals []heap.Value
	stack  []heap.Value
}

type thread struct {
	id     int
	frames []*frame
	done   bool
	// span is the thread's observability lane span (inert when tracing
	// is disabled).
	span obs.Span
}

// VM is one interpreter instance.
type VM struct {
	prog     *bytecode.Program
	cfg      Config
	heap     *heap.Heap
	counters *satb.Counters
	marker   gc.Marker
	noplog   satb.NopLogger
	threads  []*thread
	output   []int64
	oracle   *oracle

	// spec is the resolved barrier-flavor descriptor for cfg.Barrier; all
	// engines consult it for costs, shading, and verdict projection.
	// checkInv is CheckInvariant gated on the flavor maintaining the
	// snapshot at all.
	spec     *satb.BarrierSpec
	checkInv bool

	// dprog is the pre-decoded program (nil when the switch engine is
	// selected or the program could not be decoded); fthreads are the
	// fused engine's threads.
	dprog    *dprogram
	fthreads []*fthread

	steps          int64
	maxSteps       int64
	allocSinceGC   int64
	cycles         int
	finalPauseWork int
	swept          int

	// fusedExecs counts superinstruction dispatches (fused engine only);
	// cycleSpan is the open observability span of the current marking
	// cycle (inert when tracing is disabled). Plain counters, never
	// synchronized: the VM runs on one goroutine.
	fusedExecs int64
	cycleSpan  obs.Span

	// Compiled-tier state (EngineCompiled only). tierThreshold is the
	// resolved hot counter; tierOff is set by a forced deopt and
	// permanently pins execution to fused dispatch; the counters feed
	// Result and the observability registry.
	tierThreshold int64
	tierOff       bool
	tierUps       int
	tierDeopts    int64
	tierSegExecs  int64
	// opEntered is the error-path side channel for compiled-segment step
	// accounting: when a compiled op fails it records how many base
	// instructions were entered within that op, so the segment runner can
	// charge exactly what the reference interpreter would have counted.
	opEntered int32

	// ctx/cancel carry RunContext's cancellation; cancel is nil for the
	// plain Run path, so the scheduler loop pays one nil check per
	// quantum and nothing more.
	ctx    context.Context
	cancel <-chan struct{}
}

// New prepares a VM for the program.
func New(p *bytecode.Program, cfg Config) *VM {
	if cfg.Quantum <= 0 {
		cfg.Quantum = 64
	}
	if cfg.MarkStepBudget <= 0 {
		cfg.MarkStepBudget = 32
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.TierThreshold <= 0 {
		cfg.TierThreshold = DefaultTierThreshold
	}
	v := &VM{
		prog:          p,
		cfg:           cfg,
		heap:          heap.New(heap.NewLayout(p)),
		counters:      satb.NewCounters(),
		maxSteps:      cfg.MaxSteps,
		tierThreshold: cfg.TierThreshold,
		spec:          cfg.Barrier.Spec(),
	}
	v.checkInv = cfg.CheckInvariant && v.spec.SnapshotSound
	switch cfg.GC {
	case GCSATB:
		v.marker = gc.NewSATB(v.heap)
	case GCIncremental:
		v.marker = gc.NewInc(v.heap)
	}
	if cfg.CheckElisions {
		v.oracle = newOracle(v.heap, v.spec)
	}
	if cfg.Engine != EngineSwitch {
		// Decode failures (unresolved refs, missing main) fall back to the
		// switch interpreter, which reports them as runtime errors.
		sp := obs.StartSpan("main", "pipeline", "decode")
		d, err := decodeProgram(p, v.heap.Layout(), v.projectElide)
		if err == nil {
			v.dprog = d
		}
		sp.EndArgs(obs.KV{K: "ok", V: b2i(err == nil)})
	}
	return v
}

// projectElide maps an instruction's analysis verdict through the barrier
// flavor's soundness predicate: verdicts the flavor cannot honor keep
// their barrier. Engines call it once per site — at decode/compile time
// or per switch-interpreter store — so flavor soundness costs nothing on
// the decoded fast paths.
func (v *VM) projectElide(in *bytecode.Instr) satb.ElideKind {
	k := elideKind(in)
	if v.cfg.ForceRawElide {
		return k
	}
	return v.spec.Project(k)
}

// EngineUsed reports the engine this VM actually executes with (the fused
// and compiled engines fall back to the switch interpreter on undecodable
// programs). A compiled-tier VM reports "compiled" even when no method
// crossed the hot threshold — tier capability, not tier occupancy; the
// Result's TierUps says how many methods actually compiled.
func (v *VM) EngineUsed() Engine {
	if v.dprog != nil {
		if v.cfg.Engine == EngineCompiled {
			return EngineCompiled
		}
		return EngineFused
	}
	return EngineSwitch
}

// Heap exposes the heap (tests and tools).
func (v *VM) Heap() *heap.Heap { return v.heap }

// logger returns the barrier sink.
func (v *VM) logger() satb.Logger {
	if v.marker != nil {
		return v.marker
	}
	return &v.noplog
}

// RunContext executes main to completion (all threads), aborting with an
// error when ctx is cancelled or its deadline passes. Cancellation is
// observed at scheduler-quantum boundaries — the same points where the
// collector steps and threads rotate — so the abort latency is bounded by
// one quantum (default 64 instructions) per live thread and the hot
// per-instruction loops stay untouched. Both engines check at identical
// points and return identical error text, preserving engine parity.
func (v *VM) RunContext(ctx context.Context) (*Result, error) {
	if ctx != nil && ctx.Done() != nil {
		v.ctx = ctx
		v.cancel = ctx.Done()
	}
	return v.Run()
}

// Run executes main to completion (all threads).
func (v *VM) Run() (*Result, error) {
	sp := obs.StartSpan("vm", "vm", "run")
	res, err := v.run()
	if sp.Recording() {
		sp.EndArgs(obs.KV{K: "engine", S: v.EngineUsed().String()},
			obs.KV{K: "steps", V: v.steps},
			obs.KV{K: "cycles", V: int64(v.cycles)})
		v.publishObs(err == nil)
	}
	return res, err
}

func (v *VM) run() (*Result, error) {
	if v.dprog != nil {
		if v.tierEnabled() {
			return v.runTiered()
		}
		return v.runFused()
	}
	return v.runSwitch()
}

// tierEnabled reports whether this run may tier methods up to compiled
// code. The runtime elision oracle instruments every elided store with
// per-object shadow checks the compiled store paths deliberately omit, so
// oracle runs stay on fused dispatch — the tier's deopt target — with
// identical semantics.
func (v *VM) tierEnabled() bool {
	return v.cfg.Engine == EngineCompiled && v.oracle == nil
}

// publishObs flushes the run's execution counters into the observability
// registry. Called once per run, only when tracing is enabled — the VM's
// hot loops carry no hooks at all, so the disabled path is untouched and
// the enabled path's overhead is O(sites), not O(instructions).
func (v *VM) publishObs(ok bool) {
	obs.Count("vm.runs", 1)
	obs.Count("vm.engine."+v.EngineUsed().String(), 1)
	obs.Count("vm.steps", v.steps)
	obs.Count("vm.cycles", int64(v.cycles))
	obs.Count("vm.final_pause_work", int64(v.finalPauseWork))
	obs.Count("vm.allocated", v.heap.Allocated)
	obs.Count("vm.swept", int64(v.swept))
	obs.Count("vm.fused_execs", v.fusedExecs)
	if v.cfg.Engine == EngineCompiled {
		obs.Count("vm.tier.ups", int64(v.tierUps))
		obs.Count("vm.tier.deopts", v.tierDeopts)
		obs.Count("vm.tier.seg_execs", v.tierSegExecs)
	}
	if !ok {
		obs.Count("vm.failed_runs", 1)
	}
	if v.dprog != nil {
		recycles := int64(0)
		for _, m := range v.dprog.methods {
			recycles += m.recycled
		}
		obs.Count("vm.frame_pool.recycles", recycles)
	}
	if v.oracle != nil {
		obs.Count("vm.oracle.checks", v.oracle.checks)
	}
	obs.Count("vm.barrier.cost", int64(v.counters.Cost))
	obs.Count("vm.barrier.logged", int64(v.counters.Logged))
	obs.Count("vm.barrier.shaded", int64(v.counters.Shaded))
	obs.Count("vm.barrier.cards_dirtied", int64(v.counters.CardsDirtied))
	obs.Count("vm.barrier.static_execs", int64(v.counters.StaticExecs))
	// Per-site barrier hit/elide counts, keyed by method and pc so every
	// compiled store site's dynamic behaviour is inspectable.
	for _, s := range v.counters.Sites() {
		sum := s.Execs
		elided := uint64(0)
		if s.Elide != satb.ElideNone {
			elided = s.Execs
		}
		obs.Count(fmt.Sprintf("vm.site.%s.%d.execs", s.Key.Method, s.Key.PC), int64(sum))
		if elided > 0 {
			obs.Count(fmt.Sprintf("vm.site.%s.%d.elided", s.Key.Method, s.Key.PC), int64(elided))
		}
	}
	sum := v.counters.Summarize()
	obs.Count("vm.barrier.execs", int64(sum.TotalExecs))
	obs.Count("vm.barrier.elided_execs", int64(sum.ElidedExecs))
	obs.Count("vm.barrier.null_or_same_execs", int64(sum.NullOrSameExecs))
	obs.Count("vm.barrier.rearrange_execs", int64(sum.RearrangeExecs))
	// Per-flavor counters: one run uses one flavor, so these aggregate
	// cleanly across runs of different flavors (satbd /metrics, traced
	// multi-config benchmarks).
	obs.Count("vm.barrier.flavor."+v.spec.Name+".execs", int64(sum.TotalExecs))
	obs.Count("vm.barrier.flavor."+v.spec.Name+".logged", int64(v.counters.Logged))
	obs.Count("vm.barrier.flavor."+v.spec.Name+".shaded", int64(v.counters.Shaded))
}

// threadSpan opens a lane span covering one VM thread's lifetime (inert
// when tracing is disabled; the Enabled guard keeps the lane-name format
// off the disabled path).
func threadSpan(id int) obs.Span {
	if !obs.Enabled() {
		return obs.Span{}
	}
	return obs.StartSpan(fmt.Sprintf("vm/thread%d", id), "vm", "thread")
}

// runSwitch executes the program on the reference switch interpreter.
func (v *VM) runSwitch() (*Result, error) {
	main := v.prog.Method(v.prog.Main)
	if main == nil {
		return nil, fmt.Errorf("vm: no main method %s", v.prog.Main)
	}
	v.threads = []*thread{{frames: []*frame{newFrame(main)}, span: threadSpan(0)}}
	if v.cfg.ForceMarkingAlways && v.marker != nil {
		v.startCycle()
	}

	for {
		live := 0
		for _, t := range v.threads {
			if !t.done {
				live++
			}
		}
		if live == 0 {
			break
		}
		for _, t := range v.threads {
			if t.done {
				continue
			}
			if err := v.cancelled(); err != nil {
				return nil, err
			}
			if err := v.runQuantum(t); err != nil {
				return nil, err
			}
			v.gcTick()
		}
	}
	// Wind down any active cycle.
	if v.marker != nil && v.marker.MarkingActive() {
		v.finishCycle()
	}
	return v.result(), nil
}

// result assembles the Result shared by both engines.
func (v *VM) result() *Result {
	res := &Result{
		Output:         v.output,
		Steps:          v.steps,
		Counters:       v.counters,
		Cycles:         v.cycles,
		FinalPauseWork: v.finalPauseWork,
		Allocated:      v.heap.Allocated,
		Swept:          v.swept,
		Engine:         v.EngineUsed().String(),
		Flavor:         v.spec.Name,
		TierUps:        v.tierUps,
		TierDeopts:     v.tierDeopts,
		TierSegExecs:   v.tierSegExecs,
	}
	if v.oracle != nil {
		res.ElisionChecks = v.oracle.checks
	}
	return res
}

func newFrame(m *bytecode.Method) *frame {
	return &frame{m: m, locals: make([]heap.Value, m.NumSlots), stack: make([]heap.Value, 0, m.MaxStack+4)}
}

// roots collects the current GC roots: every reference in every thread's
// frames, plus static fields. Both engines contribute in the same order
// (threads, frames bottom-up, locals by slot, then stack bottom-up) so
// the deterministic marker sees an identical work queue.
func (v *VM) roots() []heap.Ref {
	var out []heap.Ref
	for _, t := range v.threads {
		for _, f := range t.frames {
			for _, val := range f.locals {
				if val.IsRef && val.R != heap.Null {
					out = append(out, val.R)
				}
			}
			for _, val := range f.stack {
				if val.IsRef && val.R != heap.Null {
					out = append(out, val.R)
				}
			}
		}
	}
	for _, t := range v.fthreads {
		for _, f := range t.frames {
			for _, val := range f.locals {
				if val.IsRef && val.R != heap.Null {
					out = append(out, val.R)
				}
			}
			for _, val := range f.stack[:f.sp] {
				if val.IsRef && val.R != heap.Null {
					out = append(out, val.R)
				}
			}
		}
	}
	return append(out, v.heap.StaticRoots()...)
}

// startCycle begins a marking cycle.
func (v *VM) startCycle() {
	v.cycleSpan = obs.StartSpan("vm/gc", "gc", "mark-cycle")
	v.marker.Start(v.roots(), v.checkInv)
	v.allocSinceGC = 0
}

// finishCycle completes the cycle, checks the invariant, and sweeps.
func (v *VM) finishCycle() {
	v.finalPauseWork += v.marker.Finish(v.roots())
	v.cycles++
	if v.checkInv {
		if m, ok := v.marker.(*gc.SATBMarker); ok {
			if err := m.CheckSnapshotInvariant(); err != nil {
				panic(err) // soundness bug: tests convert via recover
			}
		}
	}
	swept := v.heap.Sweep()
	v.swept += swept
	if v.cycleSpan.Recording() {
		cs := v.marker.Stats()
		v.cycleSpan.EndArgs(
			obs.KV{K: "marked", V: int64(cs.Marked)},
			obs.KV{K: "mark_steps", V: int64(cs.Steps)},
			obs.KV{K: "final_pause_work", V: int64(cs.FinalPauseWork)},
			obs.KV{K: "log_entries", V: int64(cs.LogEntries)},
			obs.KV{K: "cards_seen", V: int64(cs.CardsSeen)},
			obs.KV{K: "retraces", V: int64(cs.Retraces)},
			obs.KV{K: "swept", V: int64(swept)},
		)
		v.cycleSpan = obs.Span{}
		obs.Count("gc.cycles", 1)
		obs.Count("gc.marked", int64(cs.Marked))
		obs.Count("gc.log_entries", int64(cs.LogEntries))
		obs.Count("gc.final_pause_work", int64(cs.FinalPauseWork))
	}
}

// cancelled polls the RunContext cancellation channel. Nil-check only on
// the plain Run path; a non-blocking select per scheduler quantum when a
// cancellable context was supplied.
func (v *VM) cancelled() error {
	if v.cancel == nil {
		return nil
	}
	select {
	case <-v.cancel:
		return fmt.Errorf("vm: run cancelled: %w", v.ctx.Err())
	default:
		return nil
	}
}

// gcTick advances the collector after each quantum.
func (v *VM) gcTick() {
	if v.marker == nil {
		return
	}
	if v.marker.MarkingActive() {
		if v.marker.Step(v.cfg.MarkStepBudget) {
			v.finishCycle()
			if v.cfg.ForceMarkingAlways {
				v.startCycle()
			}
		}
		return
	}
	if v.cfg.ForceMarkingAlways {
		v.startCycle()
		return
	}
	if v.cfg.TriggerEveryAllocs > 0 && v.allocSinceGC >= v.cfg.TriggerEveryAllocs {
		v.startCycle()
	}
}

func (v *VM) errf(f *frame, format string, args ...any) error {
	line := 0
	if f.pc < len(f.m.Code) {
		line = f.m.Code[f.pc].Line
	}
	return &RuntimeError{Method: f.m.QualifiedName(), PC: f.pc, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// runQuantum executes up to Quantum instructions on one thread.
func (v *VM) runQuantum(t *thread) error {
	for i := 0; i < v.cfg.Quantum; i++ {
		if len(t.frames) == 0 {
			t.done = true
			t.span.End()
			return nil
		}
		if v.steps >= v.maxSteps {
			return fmt.Errorf("vm: instruction budget exhausted (%d)", v.maxSteps)
		}
		if err := v.step(t); err != nil {
			return err
		}
	}
	return nil
}

// step executes one instruction of the thread's top frame.
func (v *VM) step(t *thread) error {
	f := t.frames[len(t.frames)-1]
	if f.pc >= len(f.m.Code) {
		return v.errf(f, "pc past end of method")
	}
	in := &f.m.Code[f.pc]
	v.steps++

	push := func(val heap.Value) { f.stack = append(f.stack, val) }
	pop := func() heap.Value {
		val := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return val
	}

	switch in.Op {
	case bytecode.OpNop:
	case bytecode.OpConst, bytecode.OpConstBool:
		push(heap.IntVal(in.A))
	case bytecode.OpConstNull:
		push(heap.NullVal())
	case bytecode.OpLoad:
		push(f.locals[in.A])
	case bytecode.OpStore:
		f.locals[in.A] = pop()
	case bytecode.OpDup:
		push(f.stack[len(f.stack)-1])
	case bytecode.OpPop:
		pop()
	case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpRem:
		y, x := pop().I, pop().I
		var r int64
		switch in.Op {
		case bytecode.OpAdd:
			r = x + y
		case bytecode.OpSub:
			r = x - y
		case bytecode.OpMul:
			r = x * y
		case bytecode.OpDiv:
			if y == 0 {
				return v.errf(f, "division by zero")
			}
			r = x / y
		case bytecode.OpRem:
			if y == 0 {
				return v.errf(f, "division by zero")
			}
			r = x % y
		}
		push(heap.IntVal(r))
	case bytecode.OpNeg:
		push(heap.IntVal(-pop().I))
	case bytecode.OpAnd:
		y, x := pop().I, pop().I
		push(heap.IntVal(x & y))
	case bytecode.OpOr:
		y, x := pop().I, pop().I
		push(heap.IntVal(x | y))
	case bytecode.OpNot:
		push(heap.IntVal(1 - pop().I))
	case bytecode.OpCmpEQ, bytecode.OpCmpNE, bytecode.OpCmpLT, bytecode.OpCmpLE,
		bytecode.OpCmpGT, bytecode.OpCmpGE:
		y, x := pop().I, pop().I
		var b bool
		switch in.Op {
		case bytecode.OpCmpEQ:
			b = x == y
		case bytecode.OpCmpNE:
			b = x != y
		case bytecode.OpCmpLT:
			b = x < y
		case bytecode.OpCmpLE:
			b = x <= y
		case bytecode.OpCmpGT:
			b = x > y
		case bytecode.OpCmpGE:
			b = x >= y
		}
		push(heap.IntVal(b2i(b)))
	case bytecode.OpRefEQ:
		y, x := pop().R, pop().R
		push(heap.IntVal(b2i(x == y)))
	case bytecode.OpRefNE:
		y, x := pop().R, pop().R
		push(heap.IntVal(b2i(x != y)))

	case bytecode.OpGoto:
		f.pc = int(in.A)
		return nil
	case bytecode.OpIfTrue:
		if pop().I != 0 {
			f.pc = int(in.A)
			return nil
		}
	case bytecode.OpIfFalse:
		if pop().I == 0 {
			f.pc = int(in.A)
			return nil
		}
	case bytecode.OpIfNull:
		if pop().R == heap.Null {
			f.pc = int(in.A)
			return nil
		}
	case bytecode.OpIfNonNull:
		if pop().R != heap.Null {
			f.pc = int(in.A)
			return nil
		}

	case bytecode.OpGetField:
		obj := pop()
		if obj.R == heap.Null {
			return v.errf(f, "null pointer dereference reading %s", in.Field)
		}
		val, err := v.heap.GetField(obj.R, in.Field)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		if v.prog.FieldType(in.Field).IsRef() {
			val.IsRef = true
		}
		push(val)
	case bytecode.OpPutField:
		val := pop()
		obj := pop()
		if obj.R == heap.Null {
			return v.errf(f, "null pointer dereference writing %s", in.Field)
		}
		old, err := v.heap.SetField(obj.R, in.Field, val)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		if v.prog.FieldType(in.Field).IsRef() {
			elide := v.projectElide(in)
			if v.oracle != nil {
				if err := v.oracle.checkStore(f.m.QualifiedName(), f.pc, in.Line, t.id, satb.FieldSite, elide, old.R, val.R, obj.R); err != nil {
					return err
				}
			}
			key := satb.SiteKey{Method: f.m.QualifiedName(), PC: f.pc}
			v.counters.BarrierSiteSpec(v.spec, v.logger(), v.counters.Site(key, satb.FieldSite, elide),
				elide, old.R, val.R, obj.R)
		}
	case bytecode.OpGetStatic:
		val := v.heap.GetStatic(in.Field)
		if v.prog.FieldType(in.Field).IsRef() {
			val.IsRef = true
		}
		push(val)
	case bytecode.OpPutStatic:
		val := pop()
		old := v.heap.SetStatic(in.Field, val)
		if v.prog.FieldType(in.Field).IsRef() {
			if v.oracle != nil {
				// Statics are globally reachable: the stored object (and
				// everything it reaches) is published.
				v.oracle.escape(val.R)
			}
			v.counters.StaticBarrierSpec(v.spec, v.logger(), old.R, val.R)
		}

	case bytecode.OpNewInstance:
		r, err := v.heap.AllocObject(in.Type.Class)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		v.allocSinceGC++
		if v.oracle != nil {
			v.oracle.noteAlloc(r, f.m.QualifiedName(), f.pc, t.id)
		}
		push(heap.RefVal(r))
	case bytecode.OpNewArray:
		n := pop().I
		if n < 0 {
			return v.errf(f, "negative array size %d", n)
		}
		r, err := v.heap.AllocArray(in.Type.IsRef(), n)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		v.allocSinceGC++
		if v.oracle != nil {
			v.oracle.noteAlloc(r, f.m.QualifiedName(), f.pc, t.id)
		}
		push(heap.RefVal(r))
	case bytecode.OpArrayLength:
		arr := pop()
		if arr.R == heap.Null {
			return v.errf(f, "null pointer dereference in arraylength")
		}
		n, err := v.heap.ArrayLen(arr.R)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		push(heap.IntVal(n))

	case bytecode.OpAALoad, bytecode.OpIALoad:
		idx := pop().I
		arr := pop()
		if arr.R == heap.Null {
			return v.errf(f, "null pointer dereference in array load")
		}
		val, err := v.heap.GetElem(arr.R, idx)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		if in.Op == bytecode.OpAALoad {
			val.IsRef = true
		}
		push(val)
	case bytecode.OpAAStore:
		val := pop()
		idx := pop().I
		arr := pop()
		if arr.R == heap.Null {
			return v.errf(f, "null pointer dereference in array store")
		}
		old, err := v.heap.SetElem(arr.R, idx, val)
		if err != nil {
			return v.errf(f, "%v", err)
		}
		elide := v.projectElide(in)
		if v.oracle != nil {
			if err := v.oracle.checkStore(f.m.QualifiedName(), f.pc, in.Line, t.id, satb.ArraySite, elide, old.R, val.R, arr.R); err != nil {
				return err
			}
		}
		key := satb.SiteKey{Method: f.m.QualifiedName(), PC: f.pc}
		v.counters.BarrierSiteSpec(v.spec, v.logger(), v.counters.Site(key, satb.ArraySite, elide),
			elide, old.R, val.R, arr.R)
	case bytecode.OpIAStore:
		val := pop()
		idx := pop().I
		arr := pop()
		if arr.R == heap.Null {
			return v.errf(f, "null pointer dereference in array store")
		}
		if _, err := v.heap.SetElem(arr.R, idx, val); err != nil {
			return v.errf(f, "%v", err)
		}

	case bytecode.OpInvoke:
		callee := v.prog.Method(in.Method)
		if callee == nil {
			return v.errf(f, "unresolved method %s", in.Method)
		}
		nf := newFrame(callee)
		n := callee.NumArgs()
		for i := n - 1; i >= 0; i-- {
			nf.locals[i] = pop()
		}
		if !callee.Static && nf.locals[0].R == heap.Null {
			return v.errf(f, "null receiver calling %s", in.Method)
		}
		f.pc++
		t.frames = append(t.frames, nf)
		return nil
	case bytecode.OpSpawn:
		recv := pop()
		if recv.R == heap.Null {
			return v.errf(f, "null receiver in spawn")
		}
		callee := v.prog.Method(in.Method)
		if callee == nil {
			return v.errf(f, "unresolved method %s", in.Method)
		}
		nf := newFrame(callee)
		nf.locals[0] = recv
		if v.oracle != nil {
			// The receiver (and everything it reaches) becomes visible to
			// the spawned thread.
			v.oracle.escape(recv.R)
		}
		v.threads = append(v.threads, &thread{id: len(v.threads), frames: []*frame{nf}, span: threadSpan(len(v.threads))})
	case bytecode.OpReturn:
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) > 0 {
			// Caller's pc was already advanced at the invoke.
		}
		return nil
	case bytecode.OpReturnValue:
		rv := pop()
		t.frames = t.frames[:len(t.frames)-1]
		if len(t.frames) > 0 {
			caller := t.frames[len(t.frames)-1]
			caller.stack = append(caller.stack, rv)
		}
		return nil
	case bytecode.OpPrint:
		v.output = append(v.output, pop().I)
	case bytecode.OpTrap:
		return v.errf(f, "missing return value")
	default:
		return v.errf(f, "unknown opcode %v", in.Op)
	}
	f.pc++
	return nil
}

// elideKind maps instruction flags to the barrier verdict.
func elideKind(in *bytecode.Instr) satb.ElideKind {
	switch {
	case in.Elide:
		return satb.ElidePreNull
	case in.ElideNullOrSame:
		return satb.ElideNullOrSame
	case in.ElideRearrange:
		return satb.ElideRearrange
	default:
		return satb.ElideNone
	}
}

// b2i is the shared bool→int conversion (kept as a local alias so the hot
// interpreter loop reads naturally).
func b2i(b bool) int64 { return num.B2I(b) }
