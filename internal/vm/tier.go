package vm

import (
	"fmt"

	"satbelim/internal/heap"
	"satbelim/internal/obs"
	"satbelim/internal/satb"
)

// This file is the compiled hot-method tier (EngineCompiled), the third
// execution engine. Methods start on fused dispatch; once a method's exec
// counter (entries + loop back-edges) crosses Config.TierThreshold it is
// translated to closure-threaded code: the decoded body is partitioned
// into straight-line segments (every branch target, call return point,
// and post-terminator pc is a segment leader), each segment becomes an
// array of continuation closures plus one terminator closure whose branch
// targets are resolved to segment indices.
//
// Translation is a real compile, not a re-packaging of dispatch:
//
//   - The operand stack is simulated symbolically. Producers (constants,
//     local loads, static loads through translation-resolved slot
//     pointers, field/array loads, arithmetic) become value thunks that
//     are composed directly into their consumers, so a statement like
//     `a[i] = x.f` runs as ONE closure with no push/pop traffic and no
//     per-instruction dispatch between its parts. Thunks whose deferral
//     could reorder side effects are materialized first (only constants
//     may stay deferred past another emitted operation), so evaluation
//     order — including error order — is exactly the reference
//     interpreter's.
//   - Elided reference stores compile to raw writes followed only by the
//     per-site instrumentation counters — no barrier-mode switch, no
//     marking-phase test, no logger dispatch: the compile-time elision
//     proof pays off at full speed, which is the paper's payoff this tier
//     exists to demonstrate. Kept barriers and rearrangement stores keep
//     the exact shared satb.BarrierSite path so cost accounting stays
//     bit-identical.
//   - Fused superinstructions are preserved: non-branch forms become
//     thunks or standalone compiled ops covering the same base span;
//     compare-and-branch forms become segment terminators.
//
// Parity with the other engines is structural, not hoped for:
//
//   - Scheduler-quantum and step-budget checks run only at segment
//     boundaries (loop back-edges, branches, calls — the places the
//     ROADMAP names), but a segment executes ONLY when all of its base
//     instructions fit in both the remaining quantum and the remaining
//     instruction budget. Anything that would straddle a boundary deopts
//     to fused dispatch for the tail, which rotates threads and exhausts
//     budgets at exactly the same instruction as the reference engines.
//     Thread interleaving — and therefore GC timing, barrier logging, and
//     RunContext cancellation points — is reproduced bit for bit.
//   - Step accounting is exact on every path. Each compiled op knows the
//     base-instruction prefix that precedes it (cseg.wbefore); on an
//     error the failing op reports how many base instructions it entered
//     (VM.opEntered, maintained compositionally through nested thunks),
//     and the segment runner charges prefix + entered — precisely the
//     reference interpreter's count-at-entry total. On success one
//     addition charges the whole segment.
//   - Every error path first moves f.pc to the failing instruction so
//     RuntimeError diagnostics are identical.
//   - Conditions the tier cannot handle fall back mid-run with identical
//     semantics: the oracle disables tier-up entirely (tierEnabled), a
//     forced deopt (Config.TierForceDeoptAfter) permanently re-enters
//     fused dispatch, and a pc that is not a segment leader (resuming a
//     quantum mid-segment) simply interprets until the next leader.

// DefaultTierThreshold is the exec count (method entries + loop
// back-edges) at which a method tiers up when Config.TierThreshold is 0.
const DefaultTierThreshold = 64

// cop is one compiled operation: a continuation with operands, error pc,
// and barrier decision baked in at translation time. It never touches
// f.pc except on its error path and never touches v.steps (the segment
// runner accounts steps in bulk). On error it must leave VM.opEntered
// equal to the number of base instructions entered within it.
type cop func(t *fthread, f *fframe) error

// cval is a compiled value producer (a deferred expression). On error the
// same opEntered contract as cop applies, relative to the thunk's own
// first base instruction — composers add static offsets for operands
// evaluated before it.
type cval func(t *fthread, f *fframe) (heap.Value, error)

// cterm is a segment terminator: it performs the control transfer,
// updates f.pc, and returns the next segment index in the same method, or
// termToDriver when control left the method (call, return, fallthrough
// off the end) and the driver must re-resolve.
type cterm func(t *fthread, f *fframe) (int32, error)

// termToDriver tells the segment loop to return to the quantum driver.
const termToDriver = int32(-1)

// termSwitchFrame tells the segment loop that control moved to a
// different frame (call or return): the chain re-resolves the new top
// frame's compiled entry and keeps running without a driver round trip.
const termSwitchFrame = int32(-2)

// cseg is one straight-line compiled segment.
type cseg struct {
	pc    int32 // head pc (the segment's leader)
	n     int32 // base instructions covered, terminator included
	termW int32 // of which, the terminator (with any composed operand)
	// ops is the compiled body; wbefore[i] is the base-instruction
	// prefix preceding op i (charged together with opEntered when op i
	// errors).
	ops     []cop
	wbefore []int32
	term    cterm
	// entries are the segment's resumable entry points in ascending
	// order (op index, weight covered before it, pc), used both to
	// resume after a quantum rotation and to stop a partial run at the
	// furthest boundary that still fits the remaining quantum.
	entries []segEntry
}

// segEntry is one resumable boundary inside a segment.
type segEntry struct{ op, w, pc int32 }

// cmethod is the compiled form of one method. segOf maps each pc to its
// segment index (-1 when the pc is not a leader). eSeg/eOp/eW are the
// mid-segment entry tables: every instruction boundary where the
// translation-time symbolic stack was empty is a resumable entry point —
// the real operand stack there holds exactly what the remaining compiled
// ops expect, whichever engine produced it — recording the segment, the
// op index to resume at, and the base-instruction weight already covered
// (so a resumed run charges only the remainder). This is what keeps
// compiled occupancy high across scheduler-quantum rotations: a quantum
// that ends mid-segment resumes compiled execution at the very next
// entry point instead of interpreting to the next leader.
type cmethod struct {
	segs  []cseg
	segOf []int32
	eSeg  []int32
	eOp   []int32
	eW    []int32
}

// setEntry records a resumable entry point at pc.
func (cm *cmethod) setEntry(pc, si, opIdx, wbase int32) {
	cm.eSeg[pc] = si
	cm.eOp[pc] = opIdx
	cm.eW[pc] = wbase
}

// cerr builds a runtime error at pc, recording how many base
// instructions the failing compiled op (or terminator) had entered —
// the opEntered charge protocol shared by cop, cval, and cterm.
func (v *VM) cerr(f *fframe, pc, entered int32, format string, args ...any) error {
	f.pc = pc
	v.opEntered = entered
	return v.ferrf(f, format, args...)
}

// runTiered executes the program under the tiered engine. The loop shape
// is the fused engine's: round-robin over live threads, one quantum each,
// collector tick after every quantum — only the per-quantum body differs.
func (v *VM) runTiered() (*Result, error) {
	v.fthreads = []*fthread{{frames: []*fframe{v.dprog.main.acquire()}, span: threadSpan(0)}}
	if v.cfg.ForceMarkingAlways && v.marker != nil {
		v.startCycle()
	}

	for {
		live := 0
		for _, t := range v.fthreads {
			if !t.done {
				live++
			}
		}
		if live == 0 {
			break
		}
		for _, t := range v.fthreads {
			if t.done {
				continue
			}
			if err := v.cancelled(); err != nil {
				return nil, err
			}
			if err := v.runTieredQuantum(t); err != nil {
				return nil, err
			}
			v.gcTick()
		}
	}
	if v.marker != nil && v.marker.MarkingActive() {
		v.finishCycle()
	}
	return v.result(), nil
}

// runTieredQuantum executes up to Quantum base instructions on one
// thread. Compiled segments execute only when they fit the remaining
// quantum and instruction budget in full; everything else — cold methods,
// mid-segment resume points, quantum tails, budget tails, forced deopt —
// runs on the fused per-instruction path, which is the reference
// behaviour instruction for instruction.
func (v *VM) runTieredQuantum(t *fthread) error {
	q := v.cfg.Quantum
	for i := 0; i < q; {
		if len(t.frames) == 0 {
			t.done = true
			t.span.End()
			return nil
		}
		if v.steps >= v.maxSteps {
			return fmt.Errorf("vm: instruction budget exhausted (%d)", v.maxSteps)
		}
		f := t.frames[len(t.frames)-1]
		if int(f.pc) >= len(f.m.code) {
			return v.ferrf(f, "pc past end of method")
		}

		if cm := f.m.tier; cm != nil && !v.tierOff {
			if si := cm.eSeg[f.pc]; si >= 0 {
				k, wbase := cm.eOp[f.pc], cm.eW[f.pc]
				ran := false
				deoptAfter := v.cfg.TierForceDeoptAfter
				// Steps still runnable before the quantum or the
				// instruction budget rotates us out, whichever is nearer.
				avail := q - i
				if bs := v.maxSteps - v.steps; bs < int64(avail) {
					avail = int(bs)
				}
				for si >= 0 {
					seg := &cm.segs[si]
					need := int(seg.n - wbase)
					if need > avail {
						// The full remainder straddles the quantum or
						// budget boundary: run compiled ops up to the
						// furthest entry point that still fits, so only
						// sub-expression tails fall back to dispatch.
						rem := avail
						var pe *segEntry
						for j := range seg.entries {
							e := &seg.entries[j]
							if e.w <= wbase {
								continue
							}
							if int(e.w-wbase) > rem {
								break
							}
							pe = e
						}
						if pe != nil {
							if err := v.runSegPart(t, f, seg, k, pe.op, wbase, pe.w); err != nil {
								return err
							}
							f.pc = pe.pc
							i += int(pe.w - wbase)
							ran = true
							v.tierSegExecs++
							if deoptAfter > 0 && v.tierSegExecs >= deoptAfter {
								v.forceDeopt()
							}
						}
						break
					}
					// Segment body inlined (a call per segment is
					// measurable at this granularity): remaining ops,
					// terminator, one bulk step charge on success.
					ops := seg.ops
					for oi := int(k); oi < len(ops); oi++ {
						if err := ops[oi](t, f); err != nil {
							v.steps += int64(seg.wbefore[oi]-wbase) + int64(v.opEntered)
							return err
						}
					}
					var err error
					si, err = seg.term(t, f)
					if err != nil {
						v.steps += int64(seg.n-seg.termW-wbase) + int64(v.opEntered)
						return err
					}
					v.steps += int64(seg.n - wbase)
					i += need
					avail -= need
					ran = true
					k, wbase = 0, 0
					v.tierSegExecs++
					if deoptAfter > 0 && v.tierSegExecs >= deoptAfter {
						v.forceDeopt()
						break
					}
					if si == termSwitchFrame {
						// Control moved to another frame (call/return):
						// continue the chain there if its code is
						// compiled and the pc is an entry point. The
						// outer loop re-raises thread-done and
						// pc-past-end conditions when we break instead.
						if len(t.frames) == 0 {
							break
						}
						f = t.frames[len(t.frames)-1]
						if int(f.pc) >= len(f.m.code) || f.m.tier == nil {
							break
						}
						cm = f.m.tier
						si = cm.eSeg[f.pc]
					}
				}
				if ran {
					continue
				}
				// Compiled code was available but not even one entry
				// boundary fit the remaining quantum or budget: deopt to
				// fused dispatch until one does.
				v.tierDeopts++
			}
		}

		in := &f.m.code[f.pc]
		if !v.tierOff {
			v.tierNote(f, in)
		}
		if in.fuse >= 0 {
			fi := &f.m.fused[in.fuse]
			n := int(fi.n)
			if i+n <= q && v.steps+int64(n) <= v.maxSteps {
				if err := v.execFused(t, f, fi); err != nil {
					return err
				}
				i += n
				continue
			}
		}
		if err := v.stepFused(t, f, in); err != nil {
			return err
		}
		i++
	}
	return nil
}

// runSegPart executes compiled ops [k, k2) covering base instructions
// (wbase, w2] of a segment — a partial run that stops at an entry
// boundary instead of reaching the terminator (the caller moves f.pc to
// the boundary's pc). Used when the whole remainder would straddle a
// quantum or budget boundary.
func (v *VM) runSegPart(t *fthread, f *fframe, seg *cseg, k, k2, wbase, w2 int32) error {
	ops := seg.ops
	for i := int(k); i < int(k2); i++ {
		if err := ops[i](t, f); err != nil {
			v.steps += int64(seg.wbefore[i]-wbase) + int64(v.opEntered)
			return err
		}
	}
	v.steps += int64(w2 - wbase)
	return nil
}

// tierNote is the hotness probe on the fused per-instruction path: loop
// back-edges (plain or at the head of a fused compare-and-branch) heat
// the current method, calls heat the callee. Crossing the threshold
// translates the method immediately, so a hot loop tiers up mid-method.
func (v *VM) tierNote(f *fframe, in *dinstr) {
	switch in.op {
	case dInvoke, dSpawn:
		v.tierBump(f.m.callees[in.a].m)
	case dGoto, dIfTrue, dIfFalse, dIfNull, dIfNonNull:
		if in.a <= f.pc {
			v.tierBump(f.m)
		}
	case dLoad:
		if in.fuse >= 0 {
			if fi := &f.m.fused[in.fuse]; (fi.op == fLLCmpBr || fi.op == fLCCmpBr) && fi.d <= f.pc {
				v.tierBump(f.m)
			}
		}
	}
}

// tierBump heats a method and tiers it up at the threshold.
func (v *VM) tierBump(dm *dmethod) {
	if dm.tier != nil || dm.tierFailed {
		return
	}
	dm.hotness++
	if dm.hotness >= v.tierThreshold {
		v.tierUp(dm)
	}
}

// tierUp translates a hot method to closure-threaded code. A method whose
// translation is rejected is barred from retrying (hysteresis: the
// counter check above short-circuits on tierFailed forever after).
func (v *VM) tierUp(dm *dmethod) {
	cm := v.compileMethod(dm)
	if cm == nil {
		dm.tierFailed = true
		return
	}
	dm.tier = cm
	v.tierUps++
	if obs.Enabled() {
		obs.Instant("vm", "tier", "tier-up:"+dm.name)
		obs.Count("vm.tier.compiled_methods", 1)
	}
}

// forceDeopt abandons all compiled methods for the rest of the run
// (Config.TierForceDeoptAfter): execution permanently re-enters fused
// dispatch, the tier's deopt target, with identical semantics.
func (v *VM) forceDeopt() {
	v.tierOff = true
	v.tierDeopts++
	if obs.Enabled() {
		obs.Instant("vm", "tier", "forced-deopt")
	}
}

// ---------------------------------------------------------------------
// Translation
// ---------------------------------------------------------------------

// thunk is a deferred expression on the translation-time symbolic stack.
// w is the base-instruction weight attributed to the thunk (0 when the
// weight was charged eagerly, as for constants). isConst marks
// order-insensitive thunks that may stay deferred past other emitted
// operations; pure marks infallible, side-effect-free thunks that may be
// dropped or duplicated.
type thunk struct {
	ev      cval
	w       int32
	isConst bool
	canFail bool
	pure    bool
	isLocal bool // exactly "load local" (reads f.locals[local])
	local   int32
	cv      heap.Value // the constant, when isConst
}

// segBuilder accumulates one segment's compiled ops while simulating the
// operand stack symbolically.
type segBuilder struct {
	v    *VM
	ops  []cop
	wb   []int32
	wAcc int32
	sym  []thunk
}

// charge attributes base instructions to the running prefix without
// emitting an op (constants, nops, dead pure code — all infallible, so
// counting them eagerly matches the reference engine, which would have
// executed them before any later failure point).
func (sb *segBuilder) charge(w int32) { sb.wAcc += w }

// appendOp appends a compiled op covering w base instructions.
func (sb *segBuilder) appendOp(op cop, w int32) {
	sb.ops = append(sb.ops, op)
	sb.wb = append(sb.wb, sb.wAcc)
	sb.wAcc += w
}

// flush materializes the whole symbolic stack onto the real operand
// stack, in push order, as one compiled op.
func (sb *segBuilder) flush() {
	if len(sb.sym) == 0 {
		return
	}
	ths := sb.sym
	sb.sym = nil
	simple := true
	for i := range ths {
		if !ths[i].isLocal && !ths[i].isConst {
			simple = false
			break
		}
	}
	if simple {
		// Locals and constants push with no nested evaluation and no
		// error paths (the common shape under a call's argument pushes).
		srcs := append([]thunk(nil), ths...)
		var w int32
		for i := range srcs {
			w += srcs[i].w
		}
		sb.appendOp(func(t *fthread, f *fframe) error {
			for i := range srcs {
				if srcs[i].isLocal {
					f.push(f.locals[srcs[i].local])
				} else {
					f.push(srcs[i].cv)
				}
			}
			return nil
		}, w)
		return
	}
	if len(ths) == 1 {
		th := ths[0]
		sb.appendOp(func(t *fthread, f *fframe) error {
			val, err := th.ev(t, f)
			if err != nil {
				return err
			}
			f.push(val)
			return nil
		}, th.w)
		return
	}
	offs := make([]int32, len(ths))
	var w int32
	for i := range ths {
		offs[i] = w
		w += ths[i].w
	}
	v := sb.v
	sb.appendOp(func(t *fthread, f *fframe) error {
		for i := range ths {
			val, err := ths[i].ev(t, f)
			if err != nil {
				v.opEntered += offs[i]
				return err
			}
			f.push(val)
		}
		return nil
	}, w)
}

// emit appends a side-effecting op. Any deferred non-const thunks are
// materialized first so side effects keep program order.
func (sb *segBuilder) emit(op cop, w int32) {
	for _, th := range sb.sym {
		if !th.isConst {
			sb.flush()
			break
		}
	}
	sb.appendOp(op, w)
}

// push defers a value producer.
func (sb *segBuilder) push(th thunk) { sb.sym = append(sb.sym, th) }

// take removes the top k thunks for composition into a consumer. It
// refuses (materializing everything, so the caller must fall back to a
// stack-consuming op) when fewer than k thunks are deferred or when a
// deeper non-const thunk would be reordered past the consumer's side
// effect.
func (sb *segBuilder) take(k int) ([]thunk, bool) {
	if len(sb.sym) >= k {
		ok := true
		for _, th := range sb.sym[:len(sb.sym)-k] {
			if !th.isConst {
				ok = false
				break
			}
		}
		if ok {
			ths := append([]thunk(nil), sb.sym[len(sb.sym)-k:]...)
			sb.sym = sb.sym[:len(sb.sym)-k]
			return ths, true
		}
	}
	sb.flush()
	return nil, false
}

// isTermOp reports the decoded ops that end a segment.
func isTermOp(op dop) bool {
	switch op {
	case dGoto, dIfTrue, dIfFalse, dIfNull, dIfNonNull, dInvoke, dSpawn, dReturn, dReturnValue, dTrap:
		return true
	}
	return false
}

// compileMethod translates one decoded method into its closure-threaded
// form, or nil when the method cannot be compiled (empty body).
func (v *VM) compileMethod(dm *dmethod) *cmethod {
	code := dm.code
	if len(code) == 0 {
		return nil
	}

	// Pass 1: segment leaders — entry, branch targets, and every pc after
	// a terminator (branch fallthroughs and call return points).
	leader := make([]bool, len(code)+1)
	leader[0] = true
	for pc := range code {
		switch code[pc].op {
		case dGoto, dIfTrue, dIfFalse, dIfNull, dIfNonNull:
			leader[code[pc].a] = true
			leader[pc+1] = true
		case dInvoke, dSpawn, dReturn, dReturnValue, dTrap:
			leader[pc+1] = true
		}
	}

	cm := &cmethod{
		segOf: make([]int32, len(code)),
		eSeg:  make([]int32, len(code)),
		eOp:   make([]int32, len(code)),
		eW:    make([]int32, len(code)),
	}
	for pc := range cm.segOf {
		cm.segOf[pc] = -1
		cm.eSeg[pc] = -1
	}
	// Segment boundaries first (terminator closures need segOf for their
	// resolved branch-target indices), bodies second.
	var segBounds []segBlock
	for pc := 0; pc < len(code); {
		head := pc
		term := -1
		for pc < len(code) {
			if isTermOp(code[pc].op) {
				term = pc
				pc++
				break
			}
			pc++
			if pc < len(code) && leader[pc] {
				break
			}
		}
		cm.segOf[head] = int32(len(segBounds))
		segBounds = append(segBounds, segBlock{head: head, end: pc, term: term})
	}

	cm.segs = make([]cseg, len(segBounds))
	for i, sb := range segBounds {
		v.compileSeg(dm, cm, int32(i), &cm.segs[i], segBounds, sb.head, sb.end, sb.term)
	}
	return cm
}

// segBlock is one basic block's bounds (term == -1: fallthrough).
type segBlock struct{ head, end, term int }

// segIdxAt resolves a pc to its segment index for terminator targets
// (termToDriver when pc is past the end of the method).
func (cm *cmethod) segIdxAt(pc int) int32 {
	if pc >= len(cm.segOf) {
		return termToDriver
	}
	return cm.segOf[pc]
}

// compileSeg fills one segment: the ops region [head, termPC) translated
// with symbolic-stack composition, then the terminator (explicit at
// termPC, or the implicit fallthrough). Every instruction boundary whose
// symbolic stack is empty is recorded as a mid-segment entry point: at
// those pcs the interpreter's operand stack holds exactly what the
// remaining compiled ops expect (deferred-but-unconsumed thunks are the
// only translation state, and there are none), so a quantum rotation
// that interrupted the segment can resume compiled execution there. A
// composed terminator condition is the one exception — its operand is
// deferred across the terminator, so no entry is recorded at it.
func (v *VM) compileSeg(dm *dmethod, cm *cmethod, si int32, seg *cseg, blocks []segBlock, head, end, termPC int) {
	code := dm.code
	seg.pc = int32(head)
	sb := &segBuilder{v: v}
	// entry records a resumable entry point at pc: the next op to run is
	// the one about to be appended, with sb.wAcc base instructions
	// already covered. Duplicate re-records at the same state collapse.
	entry := func(pc int) {
		op, w := int32(len(sb.ops)), sb.wAcc
		if n := len(seg.entries); n > 0 && seg.entries[n-1].op == op && seg.entries[n-1].w == w {
			return
		}
		cm.setEntry(int32(pc), si, op, w)
		seg.entries = append(seg.entries, segEntry{op: op, w: w, pc: int32(pc)})
	}

	// Superblock growth: a block ending in an unconditional goto or a
	// plain fallthrough keeps translating at its successor (tail
	// duplication — the successor also keeps its own segment for other
	// predecessors), so loop bodies and join chains run as one segment
	// instead of bouncing through the driver per block. visited stops
	// cycles; the cap bounds the duplication.
	const mergeCap = 64
	visited := map[int]bool{head: true}

	var termW int32
	done := false
	for !done {
		opsEnd := end
		if termPC >= 0 {
			opsEnd = termPC
		}
		for pc := head; pc < opsEnd; {
			if in := &code[pc]; in.fuse >= 0 {
				fi := &dm.fused[in.fuse]
				if fi.op == fLLCmpBr || fi.op == fLCCmpBr {
					// A fused compare-and-branch whose branch is this
					// segment's terminator becomes the terminator itself
					// (it reads locals only, so post-flush it is a valid
					// entry point).
					if termPC >= 0 && pc+int(fi.n)-1 == termPC {
						done = true
						sb.flush()
						entry(pc)
						seg.term = v.compileFusedBranch(cm, fi, pc)
						termW = int32(fi.n)
						break
					}
				} else if pc+int(fi.n) <= opsEnd {
					if len(sb.sym) == 0 {
						entry(pc)
					}
					if v.addFused(sb, dm, fi, pc) {
						pc += int(fi.n)
						continue
					}
				}
			}
			if len(sb.sym) == 0 {
				entry(pc)
			}
			v.addPlain(sb, dm, pc)
			pc++
		}
		if done {
			break
		}
		if termPC >= 0 {
			if code[termPC].op == dGoto {
				if tgt := int(code[termPC].a); int(sb.wAcc) < mergeCap && tgt < len(code) && !visited[tgt] {
					// The goto disappears into an eager charge (it is
					// infallible and has no effect beyond control flow);
					// deferred thunks stay deferred across it.
					if len(sb.sym) == 0 {
						entry(termPC)
					}
					sb.charge(1)
					visited[tgt] = true
					nb := blocks[cm.segOf[tgt]]
					head, end, termPC = nb.head, nb.end, nb.term
					continue
				}
			}
			if term, w, ok := v.composedTerm(sb, dm, cm, termPC); ok {
				seg.term, termW = term, w
			} else {
				sb.flush()
				entry(termPC)
				seg.term = v.compileTerm(dm, cm, termPC)
				termW = 1
			}
		} else {
			if int(sb.wAcc) < mergeCap && end < len(code) && !visited[end] {
				// Fallthrough merge: no instruction executes at the
				// boundary, translation just continues at the join.
				visited[end] = true
				nb := blocks[cm.segOf[end]]
				head, end, termPC = nb.head, nb.end, nb.term
				continue
			}
			// Fallthrough into the next leader (weight 0: no instruction
			// executes at the boundary).
			sb.flush()
			next := cm.segIdxAt(end)
			endPC := int32(end)
			seg.term = func(t *fthread, f *fframe) (int32, error) {
				f.pc = endPC
				return next, nil
			}
		}
		break
	}
	seg.ops = sb.ops
	seg.wbefore = sb.wb
	seg.termW = termW
	seg.n = sb.wAcc + termW
}

// compileBarrier bakes one store site's barrier decision into a closure.
// This is the tier's reason to exist: a site whose (flavor-projected)
// verdict is pre-null or null-or-same compiles to its instrumentation
// counters and nothing else — no spec dispatch, no marking-phase check,
// no logger — and under a flavor that shades nothing (no-barrier) every
// site drops to the same raw path. The site verdicts were projected
// through the flavor's soundness predicate at decode time, so a verdict
// the flavor cannot honor never reaches the raw path. Kept and
// rearrangement barriers route through the shared satb.BarrierSiteSpec
// so cost, logging, shading, and card accounting stay bit-identical to
// the other engines. Site statistics stay lazily resolved so
// never-executed sites leave no trace, exactly like the fused engine.
func (v *VM) compileBarrier(dm *dmethod, siteIdx int32) func(pre, newR, target heap.Ref) {
	rec := &dm.sites[siteIdx]
	counters := v.counters
	spec := v.spec
	if rec.elide == satb.ElidePreNull || rec.elide == satb.ElideNullOrSame ||
		(!spec.ShadesPre && !spec.ShadesNew && !spec.Card) {
		return func(pre, newR, target heap.Ref) {
			st := rec.stats
			if st == nil {
				st = counters.Site(rec.key, rec.kind, rec.elide)
				rec.stats = st
			}
			st.Execs++
			if pre == heap.Null {
				st.PreNull++
			}
			if pre == heap.Null || pre == newR {
				st.NullOrSame++
			}
		}
	}
	log := v.logger()
	return func(pre, newR, target heap.Ref) {
		st := rec.stats
		if st == nil {
			st = counters.Site(rec.key, rec.kind, rec.elide)
			rec.stats = st
		}
		counters.BarrierSiteSpec(spec, log, st, rec.elide, pre, newR, target)
	}
}

// ---------------------------------------------------------------------
// Producers (thunks)
// ---------------------------------------------------------------------

func constThunk(val heap.Value) thunk {
	return thunk{
		ev:      func(t *fthread, f *fframe) (heap.Value, error) { return val, nil },
		isConst: true, pure: true, cv: val,
	}
}

func loadThunk(a int32) thunk {
	return thunk{
		ev:      func(t *fthread, f *fframe) (heap.Value, error) { return f.locals[a], nil },
		w:       1,
		pure:    true,
		isLocal: true, local: a,
	}
}

func (v *VM) getStaticThunk(dm *dmethod, in *dinstr) thunk {
	ref := dm.statics[in.a].ref
	isRef := in.op == dGetStaticRef
	if slot := v.heap.StaticSlot(ref); slot != nil {
		// Statics resolve to a stable slot pointer at translation time —
		// no per-access map lookup.
		return thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				val := *slot
				if isRef {
					val.IsRef = true
				}
				return val, nil
			},
			w: 1, pure: true,
		}
	}
	// Undeclared refs (unverified programs only) keep the map path.
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			val := v.heap.GetStatic(ref)
			if isRef {
				val.IsRef = true
			}
			return val, nil
		},
		w: 1, pure: true,
	}
}

func (v *VM) getFieldThunk(obj thunk, fr *fieldRec, isRef bool, pc int32) thunk {
	w := obj.w + 1
	if obj.isLocal {
		a := obj.local
		return thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				objv := f.locals[a]
				if objv.R == heap.Null {
					return objv, v.cerr(f, pc, w, "null pointer dereference reading %s", fr.ref)
				}
				o := v.heap.Get(objv.R)
				if o == nil {
					return objv, v.cerr(f, pc, w, "heap: null dereference reading %s", fr.ref)
				}
				val := o.Fields[fr.idx]
				if isRef {
					val.IsRef = true
				}
				return val, nil
			},
			w: w, canFail: true,
		}
	}
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			objv, err := obj.ev(t, f)
			if err != nil {
				return objv, err
			}
			if objv.R == heap.Null {
				return objv, v.cerr(f, pc, w, "null pointer dereference reading %s", fr.ref)
			}
			o := v.heap.Get(objv.R)
			if o == nil {
				return objv, v.cerr(f, pc, w, "heap: null dereference reading %s", fr.ref)
			}
			val := o.Fields[fr.idx]
			if isRef {
				val.IsRef = true
			}
			return val, nil
		},
		w: w, canFail: true,
	}
}

func (v *VM) aaloadThunk(arr, idx thunk, isRef bool, pc int32) thunk {
	w := arr.w + idx.w + 1
	aw := arr.w
	if arr.isLocal && (idx.isLocal || idx.isConst) {
		ai := arr.local
		ii, ic, idxLocal := idx.local, idx.cv, idx.isLocal
		return thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				arrv := f.locals[ai]
				idxv := ic
				if idxLocal {
					idxv = f.locals[ii]
				}
				if arrv.R == heap.Null {
					return arrv, v.cerr(f, pc, w, "null pointer dereference in array load")
				}
				o := v.heap.Get(arrv.R)
				if o == nil {
					return arrv, v.cerr(f, pc, w, "heap: null array dereference")
				}
				if idxv.I < 0 || idxv.I >= int64(len(o.Elems)) {
					return arrv, v.cerr(f, pc, w, "heap: index %d out of bounds [0,%d)", idxv.I, len(o.Elems))
				}
				val := o.Elems[idxv.I]
				if isRef {
					val.IsRef = true
				}
				return val, nil
			},
			w: w, canFail: true,
		}
	}
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			arrv, err := arr.ev(t, f)
			if err != nil {
				return arrv, err
			}
			idxv, err := idx.ev(t, f)
			if err != nil {
				v.opEntered += aw
				return idxv, err
			}
			if arrv.R == heap.Null {
				return arrv, v.cerr(f, pc, w, "null pointer dereference in array load")
			}
			o := v.heap.Get(arrv.R)
			if o == nil {
				return arrv, v.cerr(f, pc, w, "heap: null array dereference")
			}
			if idxv.I < 0 || idxv.I >= int64(len(o.Elems)) {
				return arrv, v.cerr(f, pc, w, "heap: index %d out of bounds [0,%d)", idxv.I, len(o.Elems))
			}
			val := o.Elems[idxv.I]
			if isRef {
				val.IsRef = true
			}
			return val, nil
		},
		w: w, canFail: true,
	}
}

func (v *VM) arrayLengthThunk(arr thunk, pc int32) thunk {
	w := arr.w + 1
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			arrv, err := arr.ev(t, f)
			if err != nil {
				return arrv, err
			}
			if arrv.R == heap.Null {
				return arrv, v.cerr(f, pc, w, "null pointer dereference in arraylength")
			}
			o := v.heap.Get(arrv.R)
			if o == nil {
				return arrv, v.cerr(f, pc, w, "heap: null array dereference")
			}
			return heap.IntVal(int64(len(o.Elems))), nil
		},
		w: w, canFail: true,
	}
}

func (v *VM) newInstanceThunk(al *allocRec) thunk {
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			r := v.heap.AllocObjectN(al.class, al.nFields)
			v.allocSinceGC++
			return heap.RefVal(r), nil
		},
		w: 1,
	}
}

func (v *VM) newArrayThunk(n thunk, isRef bool, pc int32) thunk {
	w := n.w + 1
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			nv, err := n.ev(t, f)
			if err != nil {
				return nv, err
			}
			if nv.I < 0 {
				return nv, v.cerr(f, pc, w, "negative array size %d", nv.I)
			}
			r, aerr := v.heap.AllocArray(isRef, nv.I)
			if aerr != nil {
				return nv, v.cerr(f, pc, w, "%v", aerr)
			}
			v.allocSinceGC++
			return heap.RefVal(r), nil
		},
		w: w, canFail: true,
	}
}

// arithThunk composes a binary integer operation (div/rem are the only
// fallible ones).
func (v *VM) arithThunk(op dop, a, b thunk, pc int32) thunk {
	w := a.w + b.w + 1
	aw := a.w
	var eval2 func(t *fthread, f *fframe) (int64, int64, error)
	switch {
	case a.isLocal && b.isLocal:
		ai, bi := a.local, b.local
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			return f.locals[ai].I, f.locals[bi].I, nil
		}
	case a.isLocal && b.isConst:
		ai, bc := a.local, b.cv.I
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			return f.locals[ai].I, bc, nil
		}
	case a.isConst && b.isLocal:
		ac, bi := a.cv.I, b.local
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			return ac, f.locals[bi].I, nil
		}
	case a.isLocal:
		// A local is a pure read: deferring it past b's evaluation is
		// unobservable, and an error in b still charges a's weight.
		ai, evB := a.local, b.ev
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			bv, err := evB(t, f)
			if err != nil {
				v.opEntered += aw
				return 0, 0, err
			}
			return f.locals[ai].I, bv.I, nil
		}
	case b.isConst:
		evA, bc := a.ev, b.cv.I
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			av, err := evA(t, f)
			return av.I, bc, err
		}
	case b.isLocal:
		evA, bi := a.ev, b.local
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			av, err := evA(t, f)
			return av.I, f.locals[bi].I, err
		}
	default:
		evA, evB := a.ev, b.ev
		eval2 = func(t *fthread, f *fframe) (int64, int64, error) {
			av, err := evA(t, f)
			if err != nil {
				return 0, 0, err
			}
			bv, err := evB(t, f)
			if err != nil {
				v.opEntered += aw
				return 0, 0, err
			}
			return av.I, bv.I, nil
		}
	}
	var ev cval
	canFail := a.canFail || b.canFail
	switch op {
	case dAdd:
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(x + y), err
		}
	case dSub:
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(x - y), err
		}
	case dMul:
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(x * y), err
		}
	case dAnd:
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(x & y), err
		}
	case dOr:
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(x | y), err
		}
	case dDiv, dRem:
		canFail = true
		isDiv := op == dDiv
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			if err != nil {
				return heap.Value{}, err
			}
			if y == 0 {
				return heap.Value{}, v.cerr(f, pc, w, "division by zero")
			}
			if isDiv {
				return heap.IntVal(x / y), nil
			}
			return heap.IntVal(x % y), nil
		}
	default: // comparisons
		cmp := op
		ev = func(t *fthread, f *fframe) (heap.Value, error) {
			x, y, err := eval2(t, f)
			return heap.IntVal(b2i(intCmp(cmp, x, y))), err
		}
	}
	return thunk{ev: ev, w: w, canFail: canFail, pure: a.pure && b.pure && !canFail}
}

func (v *VM) refCmpThunk(eq bool, a, b thunk) thunk {
	if a.isLocal && b.isLocal {
		ai, bi := a.local, b.local
		return thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				return heap.IntVal(b2i((f.locals[ai].R == f.locals[bi].R) == eq)), nil
			},
			w: a.w + b.w + 1, pure: true,
		}
	}
	aw := a.w
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			av, err := a.ev(t, f)
			if err != nil {
				return av, err
			}
			bv, err := b.ev(t, f)
			if err != nil {
				v.opEntered += aw
				return bv, err
			}
			return heap.IntVal(b2i((av.R == bv.R) == eq)), nil
		},
		w: a.w + b.w + 1, canFail: a.canFail || b.canFail, pure: a.pure && b.pure,
	}
}

func unaryThunk(op dop, x thunk) thunk {
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			xv, err := x.ev(t, f)
			if err != nil {
				return xv, err
			}
			if op == dNeg {
				return heap.IntVal(-xv.I), nil
			}
			return heap.IntVal(1 - xv.I), nil
		},
		w: x.w + 1, canFail: x.canFail, pure: x.pure,
	}
}

// popThunk reads an operand from the real stack at run time (used by the
// stack-consuming fallbacks when nothing is deferred).
func popThunk() thunk {
	return thunk{ev: func(t *fthread, f *fframe) (heap.Value, error) { return f.pop(), nil }, pure: true}
}

// ---------------------------------------------------------------------
// Consumers
// ---------------------------------------------------------------------

// operand pops one deferred thunk or falls back to a runtime stack pop.
// Single-operand consumers can always compose; take() handles the
// multi-operand ordering constraints.
func (sb *segBuilder) operand() thunk {
	if ths, ok := sb.take(1); ok {
		return ths[0]
	}
	return popThunk()
}

func (v *VM) storeOp(a int32, val thunk) cop {
	if val.isLocal {
		b := val.local
		return func(t *fthread, f *fframe) error {
			f.locals[a] = f.locals[b]
			return nil
		}
	}
	return func(t *fthread, f *fframe) error {
		valv, err := val.ev(t, f)
		if err != nil {
			return err
		}
		f.locals[a] = valv
		return nil
	}
}

func (v *VM) printOp(val thunk) cop {
	return func(t *fthread, f *fframe) error {
		valv, err := val.ev(t, f)
		if err != nil {
			return err
		}
		v.output = append(v.output, valv.I)
		return nil
	}
}

// discardOp evaluates a fallible/impure deferred thunk for its effects
// (dPop of something that can fail must still fail there).
func discardOp(val thunk) cop {
	return func(t *fthread, f *fframe) error {
		_, err := val.ev(t, f)
		return err
	}
}

func (v *VM) putFieldOp(obj, val thunk, fr *fieldRec, barrier func(pre, newR, target heap.Ref), pc int32) cop {
	w := obj.w + val.w + 1
	ow := obj.w
	if obj.isLocal && (val.isLocal || val.isConst) {
		oi := obj.local
		vi, vc, valLocal := val.local, val.cv, val.isLocal
		return func(t *fthread, f *fframe) error {
			objv := f.locals[oi]
			valv := vc
			if valLocal {
				valv = f.locals[vi]
			}
			if objv.R == heap.Null {
				return v.cerr(f, pc, w, "null pointer dereference writing %s", fr.ref)
			}
			o := v.heap.Get(objv.R)
			if o == nil {
				return v.cerr(f, pc, w, "heap: null dereference writing %s", fr.ref)
			}
			old := o.Fields[fr.idx]
			o.Fields[fr.idx] = valv
			if barrier != nil {
				barrier(old.R, valv.R, objv.R)
			}
			return nil
		}
	}
	if obj.isLocal {
		oi := obj.local
		evV := val.ev
		return func(t *fthread, f *fframe) error {
			valv, err := evV(t, f)
			if err != nil {
				v.opEntered += ow
				return err
			}
			objv := f.locals[oi]
			if objv.R == heap.Null {
				return v.cerr(f, pc, w, "null pointer dereference writing %s", fr.ref)
			}
			o := v.heap.Get(objv.R)
			if o == nil {
				return v.cerr(f, pc, w, "heap: null dereference writing %s", fr.ref)
			}
			old := o.Fields[fr.idx]
			o.Fields[fr.idx] = valv
			if barrier != nil {
				barrier(old.R, valv.R, objv.R)
			}
			return nil
		}
	}
	return func(t *fthread, f *fframe) error {
		objv, err := obj.ev(t, f)
		if err != nil {
			return err
		}
		valv, err := val.ev(t, f)
		if err != nil {
			v.opEntered += ow
			return err
		}
		if objv.R == heap.Null {
			return v.cerr(f, pc, w, "null pointer dereference writing %s", fr.ref)
		}
		o := v.heap.Get(objv.R)
		if o == nil {
			return v.cerr(f, pc, w, "heap: null dereference writing %s", fr.ref)
		}
		old := o.Fields[fr.idx]
		o.Fields[fr.idx] = valv
		if barrier != nil {
			barrier(old.R, valv.R, objv.R)
		}
		return nil
	}
}

func (v *VM) putStaticOp(dm *dmethod, in *dinstr, val thunk) cop {
	ref := dm.statics[in.a].ref
	slot := v.heap.StaticSlot(ref)
	if in.op == dPutStaticInt {
		if slot == nil {
			return func(t *fthread, f *fframe) error {
				valv, err := val.ev(t, f)
				if err != nil {
					return err
				}
				v.heap.SetStatic(ref, valv)
				return nil
			}
		}
		return func(t *fthread, f *fframe) error {
			valv, err := val.ev(t, f)
			if err != nil {
				return err
			}
			*slot = valv
			return nil
		}
	}
	spec := v.spec
	log := v.logger()
	if slot == nil {
		return func(t *fthread, f *fframe) error {
			valv, err := val.ev(t, f)
			if err != nil {
				return err
			}
			old := v.heap.SetStatic(ref, valv)
			v.counters.StaticBarrierSpec(spec, log, old.R, valv.R)
			return nil
		}
	}
	return func(t *fthread, f *fframe) error {
		valv, err := val.ev(t, f)
		if err != nil {
			return err
		}
		old := *slot
		*slot = valv
		v.counters.StaticBarrierSpec(spec, log, old.R, valv.R)
		return nil
	}
}

func (v *VM) arrayStoreOp(arr, idx, val thunk, barrier func(pre, newR, target heap.Ref), pc int32) cop {
	w := arr.w + idx.w + val.w + 1
	aw, iw := arr.w, idx.w
	return func(t *fthread, f *fframe) error {
		arrv, err := arr.ev(t, f)
		if err != nil {
			return err
		}
		idxv, err := idx.ev(t, f)
		if err != nil {
			v.opEntered += aw
			return err
		}
		valv, err := val.ev(t, f)
		if err != nil {
			v.opEntered += aw + iw
			return err
		}
		if arrv.R == heap.Null {
			return v.cerr(f, pc, w, "null pointer dereference in array store")
		}
		o := v.heap.Get(arrv.R)
		if o == nil {
			return v.cerr(f, pc, w, "heap: null array dereference")
		}
		if idxv.I < 0 || idxv.I >= int64(len(o.Elems)) {
			return v.cerr(f, pc, w, "heap: index %d out of bounds [0,%d)", idxv.I, len(o.Elems))
		}
		old := o.Elems[idxv.I]
		o.Elems[idxv.I] = valv
		if barrier != nil {
			barrier(old.R, valv.R, arrv.R)
		}
		return nil
	}
}

// ---------------------------------------------------------------------
// Per-instruction translation
// ---------------------------------------------------------------------

// addPlain translates one plain decoded instruction into the builder:
// producers defer as thunks, consumers compose or fall back to
// stack-consuming ops, stack shuffles materialize as needed.
func (v *VM) addPlain(sb *segBuilder, dm *dmethod, pc int) {
	in := &dm.code[pc]
	pcc := int32(pc)
	switch in.op {
	case dNop:
		sb.charge(1)
	case dConst:
		sb.push(constThunk(heap.IntVal(in.imm)))
		sb.charge(1)
	case dConstNull:
		sb.push(constThunk(heap.NullVal()))
		sb.charge(1)
	case dLoad:
		sb.push(loadThunk(in.a))
	case dGetStaticRef, dGetStaticInt:
		sb.push(v.getStaticThunk(dm, in))
	case dGetFieldRef, dGetFieldInt:
		sb.push(v.getFieldThunk(sb.operand(), &dm.fields[in.a], in.op == dGetFieldRef, pcc))
	case dAALoad, dIALoad:
		if ths, ok := sb.take(2); ok {
			sb.push(v.aaloadThunk(ths[0], ths[1], in.op == dAALoad, pcc))
		} else {
			idx := popThunk()
			arr := popThunk()
			// Runtime pops run in pop order (idx first), so the thunk
			// evaluation order inside aaloadThunk must see arr first:
			// wrap to pop both up front.
			sb.push(v.stackAALoadThunk(in.op == dAALoad, pcc))
			_ = idx
			_ = arr
		}
	case dArrayLength:
		sb.push(v.arrayLengthThunk(sb.operand(), pcc))
	case dNewInstance:
		sb.push(v.newInstanceThunk(&dm.allocs[in.a]))
	case dNewArrayRef, dNewArrayInt:
		sb.push(v.newArrayThunk(sb.operand(), in.op == dNewArrayRef, pcc))
	case dAdd, dSub, dMul, dDiv, dRem, dAnd, dOr,
		dCmpEQ, dCmpNE, dCmpLT, dCmpLE, dCmpGT, dCmpGE:
		if ths, ok := sb.take(2); ok {
			sb.push(v.arithThunk(in.op, ths[0], ths[1], pcc))
		} else {
			sb.push(v.stackArithThunk(in.op, pcc))
		}
	case dRefEQ, dRefNE:
		if ths, ok := sb.take(2); ok {
			sb.push(v.refCmpThunk(in.op == dRefEQ, ths[0], ths[1]))
		} else {
			sb.push(v.stackRefCmpThunk(in.op == dRefEQ))
		}
	case dNeg, dNot:
		sb.push(unaryThunk(in.op, sb.operand()))

	case dDup:
		if n := len(sb.sym); n > 0 && sb.sym[n-1].isConst {
			sb.push(sb.sym[n-1])
			sb.charge(1)
		} else {
			sb.flush()
			sb.appendOp(func(t *fthread, f *fframe) error {
				f.push(f.stack[f.sp-1])
				return nil
			}, 1)
		}
	case dPop:
		if n := len(sb.sym); n > 0 {
			th := sb.sym[n-1]
			sb.sym = sb.sym[:n-1]
			if th.pure {
				sb.charge(th.w + 1)
			} else {
				sb.emit(discardOp(th), th.w+1)
			}
		} else {
			sb.appendOp(func(t *fthread, f *fframe) error {
				f.sp--
				return nil
			}, 1)
		}

	case dStore:
		val := sb.operand()
		sb.emit(v.storeOp(in.a, val), val.w+1)
	case dPrint:
		val := sb.operand()
		sb.emit(v.printOp(val), val.w+1)
	case dPutFieldRef:
		barrier := v.compileBarrier(dm, in.b)
		if ths, ok := sb.take(2); ok {
			sb.emit(v.putFieldOp(ths[0], ths[1], &dm.fields[in.a], barrier, pcc), ths[0].w+ths[1].w+1)
		} else {
			sb.emit(v.stackPutFieldOp(&dm.fields[in.a], barrier, pcc), 1)
		}
	case dPutFieldInt:
		if ths, ok := sb.take(2); ok {
			sb.emit(v.putFieldOp(ths[0], ths[1], &dm.fields[in.a], nil, pcc), ths[0].w+ths[1].w+1)
		} else {
			sb.emit(v.stackPutFieldOp(&dm.fields[in.a], nil, pcc), 1)
		}
	case dPutStaticRef, dPutStaticInt:
		val := sb.operand()
		sb.emit(v.putStaticOp(dm, in, val), val.w+1)
	case dAAStore:
		barrier := v.compileBarrier(dm, in.b)
		if ths, ok := sb.take(3); ok {
			sb.emit(v.arrayStoreOp(ths[0], ths[1], ths[2], barrier, pcc), ths[0].w+ths[1].w+ths[2].w+1)
		} else {
			sb.emit(v.stackArrayStoreOp(barrier, pcc), 1)
		}
	case dIAStore:
		if ths, ok := sb.take(3); ok {
			sb.emit(v.arrayStoreOp(ths[0], ths[1], ths[2], nil, pcc), ths[0].w+ths[1].w+ths[2].w+1)
		} else {
			sb.emit(v.stackArrayStoreOp(nil, pcc), 1)
		}

	default:
		// Terminator ops never reach addPlain (compileSeg routes them to
		// the terminator builders); an unknown op would be a decode bug —
		// fail loudly at the instruction, like the reference engine.
		sb.emit(func(t *fthread, f *fframe) error {
			return v.cerr(f, pcc, 1, "compiled tier: unexpected opcode at pc %d", pcc)
		}, 1)
	}
}

// Stack-consuming fallbacks: operands come off the real operand stack at
// run time, in pop order, exactly like the reference interpreter.

func (v *VM) stackArithThunk(op dop, pc int32) thunk {
	canFail := op == dDiv || op == dRem
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			y, x := f.pop().I, f.pop().I
			switch op {
			case dAdd:
				return heap.IntVal(x + y), nil
			case dSub:
				return heap.IntVal(x - y), nil
			case dMul:
				return heap.IntVal(x * y), nil
			case dAnd:
				return heap.IntVal(x & y), nil
			case dOr:
				return heap.IntVal(x | y), nil
			case dDiv, dRem:
				if y == 0 {
					return heap.Value{}, v.cerr(f, pc, 1, "division by zero")
				}
				if op == dDiv {
					return heap.IntVal(x / y), nil
				}
				return heap.IntVal(x % y), nil
			default:
				return heap.IntVal(b2i(intCmp(op, x, y))), nil
			}
		},
		w: 1, canFail: canFail,
	}
}

func (v *VM) stackRefCmpThunk(eq bool) thunk {
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			y, x := f.pop().R, f.pop().R
			return heap.IntVal(b2i((x == y) == eq)), nil
		},
		w: 1, pure: true,
	}
}

func (v *VM) stackAALoadThunk(isRef bool, pc int32) thunk {
	return thunk{
		ev: func(t *fthread, f *fframe) (heap.Value, error) {
			idx := f.pop().I
			arr := f.pop()
			if arr.R == heap.Null {
				return arr, v.cerr(f, pc, 1, "null pointer dereference in array load")
			}
			o := v.heap.Get(arr.R)
			if o == nil {
				return arr, v.cerr(f, pc, 1, "heap: null array dereference")
			}
			if idx < 0 || idx >= int64(len(o.Elems)) {
				return arr, v.cerr(f, pc, 1, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
			}
			val := o.Elems[idx]
			if isRef {
				val.IsRef = true
			}
			return val, nil
		},
		w: 1, canFail: true,
	}
}

func (v *VM) stackPutFieldOp(fr *fieldRec, barrier func(pre, newR, target heap.Ref), pc int32) cop {
	return func(t *fthread, f *fframe) error {
		val := f.pop()
		obj := f.pop()
		if obj.R == heap.Null {
			return v.cerr(f, pc, 1, "null pointer dereference writing %s", fr.ref)
		}
		o := v.heap.Get(obj.R)
		if o == nil {
			return v.cerr(f, pc, 1, "heap: null dereference writing %s", fr.ref)
		}
		old := o.Fields[fr.idx]
		o.Fields[fr.idx] = val
		if barrier != nil {
			barrier(old.R, val.R, obj.R)
		}
		return nil
	}
}

func (v *VM) stackArrayStoreOp(barrier func(pre, newR, target heap.Ref), pc int32) cop {
	return func(t *fthread, f *fframe) error {
		val := f.pop()
		idx := f.pop().I
		arr := f.pop()
		if arr.R == heap.Null {
			return v.cerr(f, pc, 1, "null pointer dereference in array store")
		}
		o := v.heap.Get(arr.R)
		if o == nil {
			return v.cerr(f, pc, 1, "heap: null array dereference")
		}
		if idx < 0 || idx >= int64(len(o.Elems)) {
			return v.cerr(f, pc, 1, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
		}
		old := o.Elems[idx]
		o.Elems[idx] = val
		if barrier != nil {
			barrier(old.R, val.R, arr.R)
		}
		return nil
	}
}

// addFused translates one non-branch fused superinstruction, preserving
// execFused's error pcs and all-steps-credited-up-front accounting (fused
// patterns only fail at their final component). Returns false for forms
// the caller should fall back to plain per-instruction translation on.
func (v *VM) addFused(sb *segBuilder, dm *dmethod, fi *finstr, pc int) bool {
	pcc := int32(pc)
	n := int32(fi.n)
	switch fi.op {
	case fLGetFieldRef, fLGetFieldInt:
		a, fr, isRef := fi.a, &dm.fields[fi.b], fi.op == fLGetFieldRef
		sb.push(thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				obj := f.locals[a]
				if obj.R == heap.Null {
					return obj, v.cerr(f, pcc+1, n, "null pointer dereference reading %s", fr.ref)
				}
				o := v.heap.Get(obj.R)
				if o == nil {
					return obj, v.cerr(f, pcc+1, n, "heap: null dereference reading %s", fr.ref)
				}
				val := o.Fields[fr.idx]
				if isRef {
					val.IsRef = true
				}
				return val, nil
			},
			w: n, canFail: true,
		})
	case fLLAALoad, fLLIALoad:
		a, b, isRef := fi.a, fi.b, fi.op == fLLAALoad
		sb.push(thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				arr := f.locals[a]
				idx := f.locals[b].I
				if arr.R == heap.Null {
					return arr, v.cerr(f, pcc+2, n, "null pointer dereference in array load")
				}
				o := v.heap.Get(arr.R)
				if o == nil {
					return arr, v.cerr(f, pcc+2, n, "heap: null array dereference")
				}
				if idx < 0 || idx >= int64(len(o.Elems)) {
					return arr, v.cerr(f, pcc+2, n, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
				}
				val := o.Elems[idx]
				if isRef {
					val.IsRef = true
				}
				return val, nil
			},
			w: n, canFail: true,
		})
	case fLLArith:
		a, b, aop := fi.a, fi.b, dop(fi.c)
		sb.push(thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				return heap.IntVal(arith(aop, f.locals[a].I, f.locals[b].I)), nil
			},
			w: n, pure: true,
		})
	case fLCArith:
		a, aop, imm := fi.a, dop(fi.c), fi.imm
		sb.push(thunk{
			ev: func(t *fthread, f *fframe) (heap.Value, error) {
				return heap.IntVal(arith(aop, f.locals[a].I, imm)), nil
			},
			w: n, pure: true,
		})

	case fIncLocal:
		src, dst, aop, imm := fi.a, fi.b, dop(fi.c), fi.imm
		sb.emit(func(t *fthread, f *fframe) error {
			f.locals[dst] = heap.IntVal(arith(aop, f.locals[src].I, imm))
			return nil
		}, n)
	case fConstStore:
		dst, imm := fi.b, fi.imm
		sb.emit(func(t *fthread, f *fframe) error {
			f.locals[dst] = heap.IntVal(imm)
			return nil
		}, n)
	case fLLPutFieldRef, fLLPutFieldInt:
		a, b, fr := fi.a, fi.b, &dm.fields[fi.c]
		var barrier func(pre, newR, target heap.Ref)
		if fi.op == fLLPutFieldRef {
			barrier = v.compileBarrier(dm, fi.site)
		}
		sb.emit(func(t *fthread, f *fframe) error {
			obj := f.locals[a]
			val := f.locals[b]
			if obj.R == heap.Null {
				return v.cerr(f, pcc+2, n, "null pointer dereference writing %s", fr.ref)
			}
			o := v.heap.Get(obj.R)
			if o == nil {
				return v.cerr(f, pcc+2, n, "heap: null dereference writing %s", fr.ref)
			}
			old := o.Fields[fr.idx]
			o.Fields[fr.idx] = val
			if barrier != nil {
				barrier(old.R, val.R, obj.R)
			}
			return nil
		}, n)
	case fLLLAAStore, fLLLIAStore:
		a, b, c := fi.a, fi.b, fi.c
		var barrier func(pre, newR, target heap.Ref)
		if fi.op == fLLLAAStore {
			barrier = v.compileBarrier(dm, fi.site)
		}
		sb.emit(func(t *fthread, f *fframe) error {
			arr := f.locals[a]
			idx := f.locals[b].I
			val := f.locals[c]
			if arr.R == heap.Null {
				return v.cerr(f, pcc+3, n, "null pointer dereference in array store")
			}
			o := v.heap.Get(arr.R)
			if o == nil {
				return v.cerr(f, pcc+3, n, "heap: null array dereference")
			}
			if idx < 0 || idx >= int64(len(o.Elems)) {
				return v.cerr(f, pcc+3, n, "heap: index %d out of bounds [0,%d)", idx, len(o.Elems))
			}
			old := o.Elems[idx]
			o.Elems[idx] = val
			if barrier != nil {
				barrier(old.R, val.R, arr.R)
			}
			return nil
		}, n)
	default:
		return false
	}
	return true
}

// ---------------------------------------------------------------------
// Terminators
// ---------------------------------------------------------------------

// compileFusedBranch translates a fused compare-and-branch terminator
// with both edges resolved to segment indices.
func (v *VM) compileFusedBranch(cm *cmethod, fi *finstr, pc int) cterm {
	target := fi.d
	tsi := cm.segIdxAt(int(fi.d))
	fallPC := int32(pc + int(fi.n))
	fsi := cm.segIdxAt(pc + int(fi.n))
	wantTrue := fi.e != 0
	cmp := dop(fi.c)
	a := fi.a
	if fi.op == fLLCmpBr {
		b := fi.b
		return func(t *fthread, f *fframe) (int32, error) {
			if intCmp(cmp, f.locals[a].I, f.locals[b].I) == wantTrue {
				f.pc = target
				return tsi, nil
			}
			f.pc = fallPC
			return fsi, nil
		}
	}
	imm := fi.imm
	return func(t *fthread, f *fframe) (int32, error) {
		if intCmp(cmp, f.locals[a].I, imm) == wantTrue {
			f.pc = target
			return tsi, nil
		}
		f.pc = fallPC
		return fsi, nil
	}
}

// composedTerm tries to build the terminator at pc with a single
// infallible deferred condition/operand composed into it (a fallible
// thunk would make the terminator fail before its final base
// instruction, breaking the charge-whole-weight-then-run accounting).
// Returns false when the terminator must take the flush + stack-operand
// path instead.
func (v *VM) composedTerm(sb *segBuilder, dm *dmethod, cm *cmethod, pc int) (cterm, int32, bool) {
	in := &dm.code[pc]
	pcc := int32(pc)
	if in.op == dInvoke {
		// A call whose arguments are all still deferred writes them into
		// the callee frame directly — the push-then-pop round trip
		// through the caller's operand stack disappears. Argument order
		// and error charging follow the flush protocol (left to right,
		// prefix weights added on a later argument's failure).
		cr := &dm.callees[in.a]
		n := int(cr.m.numArgs)
		if len(sb.sym) > n {
			// Deeper deferred thunks belong to whatever consumes this
			// call's result (an outer call's earlier operands, usually):
			// materialize only those and keep the top n composed.
			deeper := sb.sym[:len(sb.sym)-n]
			args := append([]thunk(nil), sb.sym[len(sb.sym)-n:]...)
			sb.sym = deeper
			sb.flush()
			sb.sym = args
		}
		k := len(sb.sym)
		if n > 0 && n <= 8 && k > 0 && k <= n {
			// The top k args are deferred thunks; the bottom n-k (already
			// materialized, e.g. a nested call's return value) come off
			// the real stack. Stack operands were charged when pushed, so
			// the terminator's weight covers only the deferred ones.
			ths := append([]thunk(nil), sb.sym...)
			sb.sym = nil
			stackN := int32(n - k)
			offs := make([]int32, k)
			var w int32
			for i := range ths {
				offs[i] = w
				w += ths[i].w
			}
			w++
			threshold := v.tierThreshold
			isStatic := cr.m.static
			return func(t *fthread, f *fframe) (int32, error) {
				var buf [8]heap.Value
				for i := range ths {
					av, err := ths[i].ev(t, f)
					if err != nil {
						v.opEntered += offs[i]
						return termToDriver, err
					}
					buf[int(stackN)+i] = av
				}
				if stackN > 0 {
					f.sp -= stackN
					copy(buf[:stackN], f.stack[f.sp:f.sp+stackN])
				}
				callee := cr.m
				if callee.tier == nil && !callee.tierFailed {
					callee.hotness++
					if callee.hotness >= threshold {
						v.tierUp(callee)
					}
				}
				if !isStatic && buf[0].R == heap.Null {
					return termToDriver, v.cerr(f, pcc, w, "null receiver calling %s", cr.ref)
				}
				nf := callee.acquire()
				copy(nf.locals[:n], buf[:n])
				f.pc = pcc + 1
				t.frames = append(t.frames, nf)
				return termSwitchFrame, nil
			}, w, true
		}
		return nil, 0, false
	}
	if len(sb.sym) == 1 {
		th := sb.sym[0]
		w := th.w + 1
		switch in.op {
		case dIfTrue, dIfFalse, dIfNull, dIfNonNull:
			op := in.op
			target := in.a
			tsi := cm.segIdxAt(int(in.a))
			fsi := cm.segIdxAt(pc + 1)
			sb.sym = nil
			return func(t *fthread, f *fframe) (int32, error) {
				cond, err := th.ev(t, f)
				if err != nil {
					return termToDriver, err
				}
				var taken bool
				switch op {
				case dIfTrue:
					taken = cond.I != 0
				case dIfFalse:
					taken = cond.I == 0
				case dIfNull:
					taken = cond.R == heap.Null
				default:
					taken = cond.R != heap.Null
				}
				if taken {
					f.pc = target
					return tsi, nil
				}
				f.pc = pcc + 1
				return fsi, nil
			}, w, true
		case dReturnValue:
			sb.sym = nil
			return func(t *fthread, f *fframe) (int32, error) {
				rv, err := th.ev(t, f)
				if err != nil {
					return termToDriver, err
				}
				t.frames = t.frames[:len(t.frames)-1]
				f.m.release(f)
				if len(t.frames) > 0 {
					t.frames[len(t.frames)-1].push(rv)
				}
				return termSwitchFrame, nil
			}, w, true
		case dSpawn:
			cr := &dm.callees[in.a]
			nsi := cm.segIdxAt(pc + 1)
			sb.sym = nil
			return func(t *fthread, f *fframe) (int32, error) {
				recv, err := th.ev(t, f)
				if err != nil {
					return termToDriver, err
				}
				if recv.R == heap.Null {
					return termToDriver, v.cerr(f, pcc, w, "null receiver in spawn")
				}
				nf := cr.m.acquire()
				nf.locals[0] = recv
				v.fthreads = append(v.fthreads, &fthread{id: len(v.fthreads), frames: []*fframe{nf}, span: threadSpan(len(v.fthreads))})
				f.pc = pcc + 1
				return nsi, nil
			}, w, true
		}
	}
	return nil, 0, false
}

// compileTerm translates the explicit terminator instruction at pc with
// its operands on the real operand stack.
func (v *VM) compileTerm(dm *dmethod, cm *cmethod, pc int) cterm {
	in := &dm.code[pc]
	pcc := int32(pc)
	switch in.op {
	case dGoto:
		target := in.a
		tsi := cm.segIdxAt(int(in.a))
		return func(t *fthread, f *fframe) (int32, error) {
			f.pc = target
			return tsi, nil
		}
	case dIfTrue, dIfFalse, dIfNull, dIfNonNull:
		op := in.op
		target := in.a
		tsi := cm.segIdxAt(int(in.a))
		fsi := cm.segIdxAt(pc + 1)
		return func(t *fthread, f *fframe) (int32, error) {
			var taken bool
			switch op {
			case dIfTrue:
				taken = f.pop().I != 0
			case dIfFalse:
				taken = f.pop().I == 0
			case dIfNull:
				taken = f.pop().R == heap.Null
			default:
				taken = f.pop().R != heap.Null
			}
			if taken {
				f.pc = target
				return tsi, nil
			}
			f.pc = pcc + 1
			return fsi, nil
		}
	case dInvoke:
		cr := &dm.callees[in.a]
		threshold := v.tierThreshold
		return func(t *fthread, f *fframe) (int32, error) {
			callee := cr.m
			// Calls made from compiled code still heat their callee, so a
			// method whose only callers are compiled can itself tier up.
			if callee.tier == nil && !callee.tierFailed {
				callee.hotness++
				if callee.hotness >= threshold {
					v.tierUp(callee)
				}
			}
			nf := callee.acquire()
			n := int32(callee.numArgs)
			base := f.sp - n
			copy(nf.locals[:n], f.stack[base:f.sp])
			f.sp = base
			if !callee.static && nf.locals[0].R == heap.Null {
				callee.release(nf)
				return termToDriver, v.cerr(f, pcc, 1, "null receiver calling %s", cr.ref)
			}
			f.pc = pcc + 1
			t.frames = append(t.frames, nf)
			return termSwitchFrame, nil
		}
	case dSpawn:
		cr := &dm.callees[in.a]
		nsi := cm.segIdxAt(pc + 1)
		return func(t *fthread, f *fframe) (int32, error) {
			recv := f.pop()
			if recv.R == heap.Null {
				return termToDriver, v.cerr(f, pcc, 1, "null receiver in spawn")
			}
			nf := cr.m.acquire()
			nf.locals[0] = recv
			v.fthreads = append(v.fthreads, &fthread{id: len(v.fthreads), frames: []*fframe{nf}, span: threadSpan(len(v.fthreads))})
			f.pc = pcc + 1
			return nsi, nil
		}
	case dReturn:
		return func(t *fthread, f *fframe) (int32, error) {
			t.frames = t.frames[:len(t.frames)-1]
			f.m.release(f)
			return termSwitchFrame, nil
		}
	case dReturnValue:
		return func(t *fthread, f *fframe) (int32, error) {
			rv := f.pop()
			t.frames = t.frames[:len(t.frames)-1]
			f.m.release(f)
			if len(t.frames) > 0 {
				t.frames[len(t.frames)-1].push(rv)
			}
			return termSwitchFrame, nil
		}
	default: // dTrap
		return func(t *fthread, f *fframe) (int32, error) {
			return termToDriver, v.cerr(f, pcc, 1, "missing return value")
		}
	}
}
