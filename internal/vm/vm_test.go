package vm

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/core"
	"satbelim/internal/inline"
	"satbelim/internal/minijava"
	"satbelim/internal/satb"
	"satbelim/internal/verifier"
)

// compileSrc compiles MiniJava source at the given inline level.
func compileSrc(t *testing.T, src string, inlineLimit int) *bytecode.Program {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := codegen.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	p = inline.Apply(p, inline.Options{Limit: inlineLimit}).Program
	if err := verifier.VerifyProgram(p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return p
}

func run(t *testing.T, src string) []int64 {
	t.Helper()
	p := compileSrc(t, src, 0)
	res, err := New(p, Config{}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res.Output
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out := run(t, `
class A {
    static void main() {
        print(2 + 3 * 4);          // 14
        print((2 + 3) * 4);        // 20
        print(17 / 5);             // 3
        print(17 % 5);             // 2
        print(-7);                 // -7
        int s = 0;
        for (int i = 1; i <= 10; i = i + 1) s = s + i;
        print(s);                  // 55
        int f = 1;
        int i = 5;
        while (i > 1) { f = f * i; i = i - 1; }
        print(f);                  // 120
        if (3 < 4 && !(2 == 3)) print(1); else print(0); // 1
        if (3 > 4 || false) print(1); else print(0);     // 0
    }
}
`)
	want := []int64{14, 20, 3, 2, -7, 55, 120, 1, 0}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestRecursion(t *testing.T) {
	out := run(t, `
class A {
    static int fib(int n) { if (n < 2) return n; return A.fib(n-1) + A.fib(n-2); }
    static void main() { print(A.fib(10)); }
}
`)
	if !reflect.DeepEqual(out, []int64{55}) {
		t.Errorf("fib output = %v", out)
	}
}

func TestObjectsAndLinkedList(t *testing.T) {
	out := run(t, `
class Node {
    int v; Node next;
    Node(int v0, Node n) { v = v0; next = n; }
}
class A {
    static void main() {
        Node head = null;
        for (int i = 1; i <= 5; i = i + 1) head = new Node(i, head);
        int s = 0;
        Node c = head;
        while (c != null) { s = s + c.v; c = c.next; }
        print(s); // 15
    }
}
`)
	if !reflect.DeepEqual(out, []int64{15}) {
		t.Errorf("list sum = %v", out)
	}
}

func TestArraysAnd2D(t *testing.T) {
	out := run(t, `
class A {
    static void main() {
        int[] xs = new int[5];
        for (int i = 0; i < xs.length; i = i + 1) xs[i] = i * i;
        print(xs[4]); // 16
        int[][] g = new int[3][];
        for (int i = 0; i < 3; i = i + 1) {
            g[i] = new int[3];
            for (int j = 0; j < 3; j = j + 1) g[i][j] = i * 3 + j;
        }
        print(g[2][2]); // 8
        boolean[] bs = new boolean[2];
        bs[1] = true;
        if (bs[1] && !bs[0]) print(1); // 1
    }
}
`)
	if !reflect.DeepEqual(out, []int64{16, 8, 1}) {
		t.Errorf("arrays = %v", out)
	}
}

func TestStaticsAndMethods(t *testing.T) {
	out := run(t, `
class Counter {
    static int n;
    static void inc() { n = n + 1; }
    static int get() { return n; }
}
class A {
    static void main() {
        Counter.inc();
        Counter.inc();
        Counter.inc();
        print(Counter.get()); // 3
    }
}
`)
	if !reflect.DeepEqual(out, []int64{3}) {
		t.Errorf("statics = %v", out)
	}
}

func TestSpawnedThreadRuns(t *testing.T) {
	out := run(t, `
class Flag { static int done; }
class W {
    void run() { Flag.done = 41; }
}
class A {
    static void main() {
        W w = new W();
        spawn w.run();
        // Busy-wait cooperatively until the spawned thread sets the flag.
        int guard = 0;
        while (Flag.done == 0 && guard < 100000) { guard = guard + 1; }
        print(Flag.done + 1); // 42
    }
}
`)
	if !reflect.DeepEqual(out, []int64{42}) {
		t.Errorf("spawn = %v", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"npe", `class T { T f; static void main() { T t = null; t.f = null; } }`, "null pointer"},
		{"div0", `class A { static void main() { int x = 0; print(1 / x); } }`, "division by zero"},
		{"bounds", `class A { static void main() { int[] a = new int[2]; a[2] = 1; } }`, "out of bounds"},
		{"negsize", `class A { static void main() { int n = 0 - 3; int[] a = new int[n]; } }`, "negative array size"},
		{"nullarr", `class A { static void main() { int[] a = null; print(a.length); } }`, "null pointer"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := compileSrc(t, c.src, 0)
			_, err := New(p, Config{}).Run()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
}

func TestStepBudget(t *testing.T) {
	p := compileSrc(t, `class A { static void main() { while (true) { } } }`, 0)
	_, err := New(p, Config{MaxSteps: 1000}).Run()
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

// workloadSrc exercises objects, arrays, loops, calls and statics at once.
const workloadSrc = `
class Item {
    int v; Item next;
    Item(int v0) { v = v0; }
}
class Box {
    Item[] items;
    int n;
    Box(int cap) { items = new Item[cap]; }
    void add(Item it) { items[n] = it; n = n + 1; }
    int sum() {
        int s = 0;
        for (int i = 0; i < n; i = i + 1) s = s + items[i].v;
        return s;
    }
}
class A {
    static void main() {
        Box b = new Box(64);
        for (int i = 0; i < 64; i = i + 1) b.add(new Item(i));
        print(b.sum()); // 2016
    }
}
`

func TestInlineLevelsPreserveSemantics(t *testing.T) {
	var first []int64
	for _, limit := range []int{0, 25, 50, 100, 200} {
		p := compileSrc(t, workloadSrc, limit)
		res, err := New(p, Config{}).Run()
		if err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		if first == nil {
			first = res.Output
			if !reflect.DeepEqual(first, []int64{2016}) {
				t.Fatalf("base output = %v", first)
			}
			continue
		}
		if !reflect.DeepEqual(res.Output, first) {
			t.Errorf("limit %d changed output: %v vs %v", limit, res.Output, first)
		}
	}
}

func TestBarrierModesPreserveSemanticsAndOrderCosts(t *testing.T) {
	p := compileSrc(t, workloadSrc, 100)
	costs := map[satb.BarrierMode]uint64{}
	for _, mode := range []satb.BarrierMode{satb.ModeNoBarrier, satb.ModeConditional, satb.ModeAlwaysLog, satb.ModeCardMarking} {
		res, err := New(p, Config{Barrier: mode}).Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(res.Output, []int64{2016}) {
			t.Errorf("%v output = %v", mode, res.Output)
		}
		costs[mode] = res.TotalCost()
	}
	if !(costs[satb.ModeNoBarrier] < costs[satb.ModeAlwaysLog]) {
		t.Errorf("no-barrier (%d) should be cheaper than always-log (%d)", costs[satb.ModeNoBarrier], costs[satb.ModeAlwaysLog])
	}
	if !(costs[satb.ModeNoBarrier] < costs[satb.ModeConditional]) {
		t.Errorf("no-barrier should be cheaper than conditional")
	}
}

func TestElisionReducesCost(t *testing.T) {
	p := compileSrc(t, workloadSrc, 100)
	res0, err := New(p, Config{Barrier: satb.ModeAlwaysLog}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AnalyzeProgram(p, core.Options{Mode: core.ModeFieldArray}); err != nil {
		t.Fatal(err)
	}
	res1, err := New(p, Config{Barrier: satb.ModeAlwaysLog}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !(res1.Counters.Cost < res0.Counters.Cost) {
		t.Errorf("elision should cut barrier cost: %d -> %d", res0.Counters.Cost, res1.Counters.Cost)
	}
	sum := res1.Counters.Summarize()
	if sum.ElidedExecs == 0 {
		t.Error("expected some elided executions")
	}
	if len(sum.UnsoundSites) != 0 {
		t.Errorf("unsound elisions: %v", sum.UnsoundSites)
	}
}

// gcWorkload allocates heavily and drops references so sweeps reclaim.
const gcWorkload = `
class Node { int v; Node next; Node(int v0) { v = v0; } }
class A {
    static Node keep;
    static void main() {
        int total = 0;
        for (int round = 0; round < 20; round = round + 1) {
            Node head = null;
            for (int i = 0; i < 50; i = i + 1) {
                Node n = new Node(i);
                n.next = head;
                head = n;
            }
            A.keep = head; // previous round's list becomes garbage
            total = total + head.v;
        }
        print(total); // 20 * 49 = 980
    }
}
`

func TestSATBGCCollectsAndPreservesInvariant(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("SATB invariant violated: %v", r)
		}
	}()
	p := compileSrc(t, gcWorkload, 100)
	if _, err := core.AnalyzeProgram(p, core.Options{Mode: core.ModeFieldArray}); err != nil {
		t.Fatal(err)
	}
	res, err := New(p, Config{
		Barrier:            satb.ModeConditional,
		GC:                 GCSATB,
		TriggerEveryAllocs: 100,
		MarkStepBudget:     8,
		Quantum:            32,
		CheckInvariant:     true,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{980}) {
		t.Errorf("output = %v", res.Output)
	}
	if res.Cycles == 0 {
		t.Error("expected at least one marking cycle")
	}
	if res.Swept == 0 {
		t.Error("expected garbage to be swept")
	}
	sum := res.Counters.Summarize()
	if len(sum.UnsoundSites) != 0 {
		t.Errorf("unsound elisions under concurrent marking: %v", sum.UnsoundSites)
	}
}

func TestIncrementalGCCollectsToo(t *testing.T) {
	p := compileSrc(t, gcWorkload, 100)
	res, err := New(p, Config{
		Barrier:            satb.ModeCardMarking,
		GC:                 GCIncremental,
		TriggerEveryAllocs: 100,
		MarkStepBudget:     8,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{980}) {
		t.Errorf("output = %v", res.Output)
	}
	if res.Swept == 0 {
		t.Error("expected garbage to be swept")
	}
}

func TestSATBFinalPauseSmallerThanIncremental(t *testing.T) {
	p := compileSrc(t, gcWorkload, 100)
	runWith := func(kind GCKind, mode satb.BarrierMode) *Result {
		res, err := New(p, Config{
			Barrier:            mode,
			GC:                 kind,
			TriggerEveryAllocs: 200,
			MarkStepBudget:     4,
		}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rs := runWith(GCSATB, satb.ModeConditional)
	ri := runWith(GCIncremental, satb.ModeCardMarking)
	if rs.Cycles == 0 || ri.Cycles == 0 {
		t.Fatalf("cycles: satb=%d inc=%d", rs.Cycles, ri.Cycles)
	}
	satbPause := float64(rs.FinalPauseWork) / float64(rs.Cycles)
	incPause := float64(ri.FinalPauseWork) / float64(ri.Cycles)
	if satbPause >= incPause {
		t.Errorf("SATB mean final pause (%.1f) should be below incremental update's (%.1f)", satbPause, incPause)
	}
}

func TestSpawnedThreadSharedObjectSoundness(t *testing.T) {
	// A multi-threaded mutator with concurrent marking: the spawned
	// thread mutates shared structures; the analysis must not have
	// elided anything that breaks the snapshot invariant.
	src := `
class Shared { static Node head; static int done; }
class Node { int v; Node next; Node(int v0) { v = v0; } }
class W {
    void run() {
        // Unlink every other node.
        Node c = Shared.head;
        while (c != null && c.next != null) {
            c.next = c.next.next;
            c = c.next;
        }
        Shared.done = 1;
    }
}
class A {
    static void main() {
        Node head = null;
        for (int i = 0; i < 100; i = i + 1) {
            Node n = new Node(i);
            n.next = head;
            head = n;
        }
        Shared.head = head;
        W w = new W();
        spawn w.run();
        int guard = 0;
        int churn = 0;
        while (Shared.done == 0 && guard < 1000000) {
            guard = guard + 1;
            Node extra = new Node(guard);
            extra.next = null;
            churn = churn + extra.v;
        }
        print(Shared.done);
    }
}
`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("SATB invariant violated with threads: %v", r)
		}
	}()
	p := compileSrc(t, src, 100)
	if _, err := core.AnalyzeProgram(p, core.Options{Mode: core.ModeFieldArray}); err != nil {
		t.Fatal(err)
	}
	res, err := New(p, Config{
		Barrier:            satb.ModeConditional,
		GC:                 GCSATB,
		TriggerEveryAllocs: 50,
		MarkStepBudget:     4,
		Quantum:            16,
		CheckInvariant:     true,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{1}) {
		t.Errorf("output = %v", res.Output)
	}
	if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
		t.Errorf("unsound: %v", s.UnsoundSites)
	}
}
