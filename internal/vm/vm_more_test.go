package vm

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/satb"
)

// TestBooleanOpsAndRefCompare exercises the and/or/not and refne paths.
func TestBooleanOpsAndRefCompare(t *testing.T) {
	out := run(t, `
class T { int v; }
class A {
    static void main() {
        boolean a = true;
        boolean b = false;
        if (a && !b) print(1);
        if (a || b) print(2);
        T x = new T();
        T y = new T();
        if (x != y) print(3);
        T z = x;
        if (x == z) print(4);
        if (x != null) print(5);
    }
}
`)
	want := []int64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("output = %v, want %v", out, want)
	}
}

func TestNegativeModuloSemantics(t *testing.T) {
	// Go-style (truncated) division and remainder, like Java.
	out := run(t, `
class A { static void main() {
    print(-7 / 2);   // -3
    print(-7 % 2);   // -1
    print(7 % -2);   // 1
} }
`)
	if !reflect.DeepEqual(out, []int64{-3, -1, 1}) {
		t.Errorf("output = %v", out)
	}
}

func TestDeepCallStack(t *testing.T) {
	out := run(t, `
class A {
    static int down(int n) { if (n == 0) return 0; return 1 + A.down(n - 1); }
    static void main() { print(A.down(500)); }
}
`)
	if !reflect.DeepEqual(out, []int64{500}) {
		t.Errorf("output = %v", out)
	}
}

func TestNullReceiverCall(t *testing.T) {
	p := compileSrc(t, `
class T { void m() { } static void main() { T t = null; t.m(); } }
`, 0)
	_, err := New(p, Config{}).Run()
	if err == nil || !strings.Contains(err.Error(), "null receiver") {
		t.Fatalf("err = %v", err)
	}
}

func TestTrapSurfacesMissingReturn(t *testing.T) {
	// Hand-build a method that falls into its trap.
	prog := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "bad", true)
	b.SetReturn(bytecode.Int)
	b.Op(bytecode.OpTrap)
	cls.Methods = append(cls.Methods, b.Build())
	mb := bytecode.NewBuilder("T", "main", true)
	mb.Invoke(bytecode.MethodRef{Class: "T", Name: "bad"})
	mb.Op(bytecode.OpPop)
	mb.Return()
	cls.Methods = append(cls.Methods, mb.Build())
	prog.AddClass(cls)
	prog.Main = bytecode.MethodRef{Class: "T", Name: "main"}
	_, err := New(prog, Config{}).Run()
	if err == nil || !strings.Contains(err.Error(), "missing return") {
		t.Fatalf("err = %v", err)
	}
}

func TestForceMarkingAlways(t *testing.T) {
	p := compileSrc(t, gcWorkload, 100)
	res, err := New(p, Config{
		Barrier:            satb.ModeAlwaysLog,
		GC:                 GCSATB,
		ForceMarkingAlways: true,
		MarkStepBudget:     16,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 2 {
		t.Errorf("forced marking should run many cycles, got %d", res.Cycles)
	}
	if !reflect.DeepEqual(res.Output, []int64{980}) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestResultTotalCost(t *testing.T) {
	p := compileSrc(t, workloadSrc, 100)
	res, err := New(p, Config{Barrier: satb.ModeAlwaysLog}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost() != uint64(res.Steps)+res.Counters.Cost {
		t.Error("TotalCost must sum instruction and barrier cost")
	}
	if res.Allocated == 0 {
		t.Error("allocation counter not maintained")
	}
}

func TestRuntimeErrorFormatting(t *testing.T) {
	e := &RuntimeError{Method: "T.m", PC: 4, Line: 12, Msg: "boom"}
	s := e.Error()
	for _, want := range []string{"T.m", "pc 4", "line 12", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("error %q missing %q", s, want)
		}
	}
}
