package vm

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/heap"
)

// fusedOpsByHead decodes a program and returns the superinstruction kind
// at each fused head pc of the main method.
func fusedOpsByHead(t *testing.T, p *bytecode.Program) map[int]dop {
	t.Helper()
	d, err := decodeProgram(p, heap.NewLayout(p), elideKind)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	out := map[int]dop{}
	for pc := range d.main.code {
		if fu := d.main.code[pc].fuse; fu >= 0 {
			out[pc] = d.main.fused[fu].op
		}
	}
	return out
}

// buildBranchIntoFused hand-builds a program whose first loop entry jumps
// into the MIDDLE of a fused region (pc 8, the second component of the
// fLLArith at pc 7), exercising the plain-instruction path that fusion
// must leave intact at every pc.
//
//	 0: const 5      ┐ fConstStore
//	 1: store i      ┘
//	 2: const 0      ┐ fConstStore
//	 3: store acc    ┘
//	 4: load acc     ; push acc before entering mid-region
//	 5: goto 8
//	 6: nop
//	 7: load acc     ┐
//	 8: load i       │ fLLArith (head 7)
//	 9: add          ┘
//	10: store acc
//	11: load i       ┐
//	12: const 1      │ fIncLocal (head 11)
//	13: sub          │
//	14: store i      ┘
//	15: load i       ┐
//	16: const 0      │ fLCCmpBr (head 15)
//	17: cmpgt        │
//	18: iftrue 7     ┘
//	19: load acc
//	20: print
//	21: return
func buildBranchIntoFused() *bytecode.Program {
	prog := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "main", true)
	i := b.DeclareSlot(bytecode.Int)
	acc := b.DeclareSlot(bytecode.Int)
	b.Const(5)
	b.Store(i)
	b.Const(0)
	b.Store(acc)
	b.Load(acc)
	b.Emit(bytecode.Instr{Op: bytecode.OpGoto, A: 8})
	b.Op(bytecode.OpNop)
	b.Load(acc) // pc 7: loop head and fused head
	b.Load(i)   // pc 8: mid-region branch target
	b.Op(bytecode.OpAdd)
	b.Store(acc)
	b.Load(i)
	b.Const(1)
	b.Op(bytecode.OpSub)
	b.Store(i)
	b.Load(i)
	b.Const(0)
	b.Op(bytecode.OpCmpGT)
	b.Emit(bytecode.Instr{Op: bytecode.OpIfTrue, A: 7})
	b.Load(acc)
	b.Op(bytecode.OpPrint)
	b.Return()
	cls.Methods = append(cls.Methods, b.Build())
	prog.AddClass(cls)
	prog.Main = bytecode.MethodRef{Class: "T", Name: "main"}
	return prog
}

func TestFusionPatternDetection(t *testing.T) {
	fused := fusedOpsByHead(t, buildBranchIntoFused())
	want := map[int]dop{
		0:  fConstStore,
		2:  fConstStore,
		7:  fLLArith,
		11: fIncLocal,
		15: fLCCmpBr,
	}
	for pc, op := range want {
		if fused[pc] != op {
			t.Errorf("pc %d: fused op %d, want %d (all: %v)", pc, fused[pc], op, fused)
		}
	}
}

func TestBranchIntoFusedRegion(t *testing.T) {
	p := buildBranchIntoFused()
	var results []*Result
	for _, eng := range []Engine{EngineFused, EngineSwitch} {
		// Quantum 3 additionally forces fused ops to straddle quantum
		// boundaries and fall back to single-instruction execution.
		for _, quantum := range []int{0, 3} {
			res, err := New(p, Config{Engine: eng, Quantum: quantum}).Run()
			if err != nil {
				t.Fatalf("engine %v quantum %d: %v", eng, quantum, err)
			}
			if !reflect.DeepEqual(res.Output, []int64{15}) {
				t.Errorf("engine %v quantum %d: output = %v, want [15]", eng, quantum, res.Output)
			}
			results = append(results, res)
		}
	}
	for _, res := range results[1:] {
		if res.Steps != results[0].Steps {
			t.Errorf("step counts diverge across engines/quanta: %d vs %d", res.Steps, results[0].Steps)
		}
	}
}

func TestDecodeFallbackOnUnresolvedMethod(t *testing.T) {
	prog := bytecode.NewProgram()
	cls := &bytecode.Class{Name: "T"}
	b := bytecode.NewBuilder("T", "main", true)
	b.Invoke(bytecode.MethodRef{Class: "T", Name: "nope"})
	b.Return()
	cls.Methods = append(cls.Methods, b.Build())
	prog.AddClass(cls)
	prog.Main = bytecode.MethodRef{Class: "T", Name: "main"}

	v := New(prog, Config{})
	if v.EngineUsed() != EngineSwitch {
		t.Fatalf("undecodable program must fall back to the switch engine, got %v", v.EngineUsed())
	}
	_, err := v.Run()
	if err == nil || !strings.Contains(err.Error(), "unresolved method T.nope") {
		t.Fatalf("err = %v, want unresolved-method runtime error", err)
	}
}

func TestEngineSelection(t *testing.T) {
	p := compileSrc(t, `class A { static void main() { print(7); } }`, 0)
	fused := New(p, Config{})
	if fused.EngineUsed() != EngineFused {
		t.Errorf("default engine = %v, want fused", fused.EngineUsed())
	}
	sw := New(p, Config{Engine: EngineSwitch})
	if sw.EngineUsed() != EngineSwitch {
		t.Errorf("explicit switch engine not honored")
	}
	fres, err := fused.Run()
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fres.Engine != "fused" || sres.Engine != "switch" {
		t.Errorf("Result.Engine: fused=%q switch=%q", fres.Engine, sres.Engine)
	}
}

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
		err  bool
	}{
		{"fused", EngineFused, false},
		{"", EngineFused, false},
		{"switch", EngineSwitch, false},
		{"jit", EngineFused, true},
	} {
		got, err := ParseEngine(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestFramePoolReuse(t *testing.T) {
	// Enough calls to cycle frames through the pool many times; a stale
	// local or stack slot would corrupt the running sum.
	out := run(t, `
class A {
    static int add(int a, int b) { int s = a + b; return s; }
    static void main() {
        int total = 0;
        int i = 0;
        while (i < 1000) { total = A.add(total, i); i = i + 1; }
        print(total);
    }
}
`)
	if !reflect.DeepEqual(out, []int64{499500}) {
		t.Errorf("output = %v, want [499500]", out)
	}
}
