// Package progen generates random, type-correct, terminating MiniJava
// programs for differential testing: generated programs must verify,
// produce identical output at every inline level and barrier mode, never
// trip the analysis soundness counters, and preserve the SATB snapshot
// invariant under concurrent marking.
//
// Generated programs are total by construction: loops are bounded
// counting loops, the call graph is acyclic (a method only calls methods
// with larger indices), reference variables visible to the general
// statement pool are always initialized with allocations (the AllocReuse
// idiom's null-initialized loop-carried variable stays private to its
// pattern and is dereferenced only behind a null guard), array indices
// are reduced modulo the (constant, non-zero) array length, array
// elements are written but never read (so partially initialized arrays
// are inert), and divisions use non-zero constant divisors.
//
// Beyond the size bounds, Config carries campaign knobs (StridedInit,
// AllocReuse, Aliasing, EscapeStores) that add statement shapes targeting
// the specific facts the barrier analyses reason about: strided
// array-initialization loops (merge_intvals stride discovery),
// loop-carried allocation-site reuse (the R_id/A → R_id/B strong-update
// demotion), alias chains, and stores into escaped objects. All knobs
// default off, and with every knob off the generator reproduces its
// historical output bit-for-bit for any seed; CampaignConfig enables them
// all for the satbtest metamorphic campaigns.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program. The boolean knobs enable the
// campaign idioms — statement shapes targeting the specific facts the
// barrier analyses reason about. All default off; with every knob false
// the generator's output is identical to what it produced before the
// knobs existed (same seed, same program), so historical corpora replay.
type Config struct {
	Classes     int // number of data classes (≥1)
	Methods     int // number of static methods besides main (≥0)
	MaxStmts    int // statements per block (≥1)
	MaxDepth    int // statement nesting depth
	MaxExprSize int // expression size budget

	// StridedInit emits strided array-initialization loops
	// (for i = 0; i < len; i = i + s) a[i] = new C(i), exercising the
	// merge_intvals stride discovery (paper Figure 1) with strides > 1
	// and partially initialized arrays.
	StridedInit bool
	// AllocReuse emits loop-carried allocation-site reuse: a variable
	// keeps the previous iteration's object alive while the site
	// re-executes, so the analysis must demote the site's R_id/A
	// reference to the R_id/B summary (weak updates only) before
	// judging stores through the stale name.
	AllocReuse bool
	// Aliasing emits alias chains: a second local naming an existing
	// object, with stores through either name.
	Aliasing bool
	// EscapeStores emits stores into already-published objects
	// (G.g<i>.link = ...), whose barriers must always be kept.
	EscapeStores bool
	// MutualRecursion emits a mutually recursive helper pair (Main.ra ⇄
	// Main.rb) plus call sites followed by stores into the passed
	// object: the callgraph gains a cyclic SCC the inliner never
	// flattens, so only the interprocedural summary fixed point decides
	// whether the post-call store keeps its elision. rb's effect arm
	// (publish / ref-mutate / int-mutate / read-only) is drawn once per
	// program, covering every summary verdict across seeds.
	MutualRecursion bool
	// DeepCalls emits a three-deep helper chain (Main.d0 → d1 → d2)
	// whose leaf effect only transitive summary propagation can see,
	// plus call sites with post-call stores.
	DeepCalls bool
}

// DefaultConfig is a moderate size suitable for quick differential runs.
func DefaultConfig() Config {
	return Config{Classes: 3, Methods: 4, MaxStmts: 6, MaxDepth: 3, MaxExprSize: 6}
}

// CampaignConfig is DefaultConfig with every campaign idiom enabled —
// the configuration the satbtest metamorphic campaigns generate from.
func CampaignConfig() Config {
	c := DefaultConfig()
	c.StridedInit = true
	c.AllocReuse = true
	c.Aliasing = true
	c.EscapeStores = true
	c.MutualRecursion = true
	c.DeepCalls = true
	return c
}

// Generate returns the source of a random program for the seed.
func Generate(seed int64, cfg Config) string {
	if cfg.Classes < 1 {
		cfg.Classes = 1
	}
	g := &gen{
		r:   rand.New(rand.NewSource(seed)),
		cfg: cfg,
	}
	if cfg.StridedInit {
		g.extras = append(g.extras, extraStridedInit)
	}
	if cfg.AllocReuse {
		g.extras = append(g.extras, extraAllocReuse)
	}
	if cfg.Aliasing {
		g.extras = append(g.extras, extraAliasing)
	}
	if cfg.EscapeStores {
		g.extras = append(g.extras, extraEscapeStore)
	}
	if cfg.MutualRecursion {
		g.extras = append(g.extras, extraMutualCall)
	}
	if cfg.DeepCalls {
		g.extras = append(g.extras, extraDeepCall)
	}
	return g.program()
}

// arrayLen is the fixed length of generated arrays: indices are reduced
// mod this constant, so every access is in bounds.
const arrayLen = 4

type variable struct {
	name string
	typ  string // "int", "boolean", "C<i>", "C<i>[]", "int[]"
}

type gen struct {
	r   *rand.Rand
	cfg Config
	buf strings.Builder

	// extras lists the enabled campaign statement kinds; stmt draws from
	// 10+len(extras) choices so that with no knobs enabled the random
	// stream (and thus every historical seed's program) is unchanged.
	extras []extraKind

	// scope is the stack of visible locals.
	scope []variable
	// methodIdx is the index of the method being generated; it may only
	// call methods with larger indices (acyclic call graph).
	methodIdx int
	depth     int
	labelSeq  int
}

func (g *gen) class(i int) string { return fmt.Sprintf("C%d", i) }

func (g *gen) program() string {
	fmt.Fprintf(&g.buf, "// generated by progen\n")
	// Data classes: two int fields, one ref field to the next class
	// (cyclically), one ref array, and a constructor setting the ints.
	for i := 0; i < g.cfg.Classes; i++ {
		next := g.class((i + 1) % g.cfg.Classes)
		fmt.Fprintf(&g.buf, "class %s {\n", g.class(i))
		fmt.Fprintf(&g.buf, "    int a; int b;\n")
		fmt.Fprintf(&g.buf, "    %s link;\n", next)
		fmt.Fprintf(&g.buf, "    %s[] items;\n", next)
		fmt.Fprintf(&g.buf, "    %s(int a0) { a = a0; b = a0 * 3; }\n", g.class(i))
		fmt.Fprintf(&g.buf, "}\n")
	}
	// A globals holder: one static per class plus an accumulator.
	fmt.Fprintf(&g.buf, "class G {\n")
	fmt.Fprintf(&g.buf, "    static int acc;\n")
	for i := 0; i < g.cfg.Classes; i++ {
		fmt.Fprintf(&g.buf, "    static %s g%d;\n", g.class(i), i)
	}
	fmt.Fprintf(&g.buf, "}\n")

	fmt.Fprintf(&g.buf, "class Main {\n")
	g.recursionHelpers()
	for m := 0; m < g.cfg.Methods; m++ {
		g.methodIdx = m
		g.method(m)
	}
	g.methodIdx = -1 // main may call every method
	fmt.Fprintf(&g.buf, "    static void main() {\n")
	g.scope = nil
	g.depth = 1
	g.block(2, g.cfg.MaxStmts+2)
	fmt.Fprintf(&g.buf, "        print(G.acc);\n")
	fmt.Fprintf(&g.buf, "    }\n")
	fmt.Fprintf(&g.buf, "}\n")
	return g.buf.String()
}

// method emits static int m<i>(int p0, C0 q0).
func (g *gen) method(i int) {
	fmt.Fprintf(&g.buf, "    static int m%d(int p, %s q) {\n", i, g.class(0))
	g.scope = []variable{{"p", "int"}, {"q", g.class(0)}}
	g.depth = 1
	g.block(2, g.cfg.MaxStmts)
	fmt.Fprintf(&g.buf, "        return %s;\n", g.intExpr(g.cfg.MaxExprSize))
	fmt.Fprintf(&g.buf, "    }\n")
	g.scope = nil
}

func (g *gen) indent(level int) string { return strings.Repeat("    ", level) }

// block emits up to n statements at the given indent level, managing
// scope save/restore.
func (g *gen) block(level, n int) {
	mark := len(g.scope)
	count := 1 + g.r.Intn(n)
	for i := 0; i < count; i++ {
		g.stmt(level)
	}
	g.scope = g.scope[:mark]
}

func (g *gen) fresh(prefix string) string {
	g.labelSeq++
	return fmt.Sprintf("%s%d", prefix, g.labelSeq)
}

// varsOf returns visible locals with the exact type.
func (g *gen) varsOf(typ string) []variable {
	var out []variable
	for _, v := range g.scope {
		if v.typ == typ {
			out = append(out, v)
		}
	}
	return out
}

func (g *gen) anyClass() string { return g.class(g.r.Intn(g.cfg.Classes)) }

func (g *gen) stmt(level int) {
	ind := g.indent(level)
	deep := g.depth >= g.cfg.MaxDepth
	choice := g.r.Intn(10 + len(g.extras))
	if deep && choice >= 6 {
		choice = g.r.Intn(6)
	}
	if choice >= 10 {
		g.extraStmt(g.extras[choice-10], level)
		return
	}
	switch choice {
	case 0: // int local
		name := g.fresh("x")
		fmt.Fprintf(&g.buf, "%sint %s = %s;\n", ind, name, g.intExpr(g.cfg.MaxExprSize))
		g.scope = append(g.scope, variable{name, "int"})
	case 1: // object local (always initialized with an allocation)
		cls := g.anyClass()
		name := g.fresh("o")
		fmt.Fprintf(&g.buf, "%s%s %s = new %s(%s);\n", ind, cls, name, cls, g.intExpr(3))
		g.scope = append(g.scope, variable{name, cls})
	case 2: // ref-array local, fully initialized
		cls := g.anyClass()
		name := g.fresh("arr")
		idx := g.fresh("i")
		fmt.Fprintf(&g.buf, "%s%s[] %s = new %s[%d];\n", ind, cls, name, cls, arrayLen)
		fmt.Fprintf(&g.buf, "%sfor (int %s = 0; %s < %d; %s = %s + 1) %s[%s] = new %s(%s);\n",
			ind, idx, idx, arrayLen, idx, idx, name, idx, cls, idx)
		g.scope = append(g.scope, variable{name, cls + "[]"})
	case 3: // int accumulation into the global
		fmt.Fprintf(&g.buf, "%sG.acc = G.acc + %s;\n", ind, g.intExpr(g.cfg.MaxExprSize))
	case 4: // field store (ref or int)
		if objs := g.refVars(); len(objs) > 0 {
			o := objs[g.r.Intn(len(objs))]
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.buf, "%s%s.a = %s;\n", ind, o.name, g.intExpr(4))
			} else {
				next := g.linkClassOf(o.typ)
				fmt.Fprintf(&g.buf, "%s%s.link = new %s(%s);\n", ind, o.name, next, g.intExpr(3))
			}
		} else {
			fmt.Fprintf(&g.buf, "%sG.acc = G.acc + 1;\n", ind)
		}
	case 5: // publish an object into a global (escape)
		if g.cfg.Classes > 0 {
			ci := g.r.Intn(g.cfg.Classes)
			objs := g.varsOf(g.class(ci))
			if len(objs) > 0 {
				fmt.Fprintf(&g.buf, "%sG.g%d = %s;\n", ind, ci, objs[g.r.Intn(len(objs))].name)
			} else {
				fmt.Fprintf(&g.buf, "%sG.g%d = new %s(%s);\n", ind, ci, g.class(ci), g.intExpr(3))
			}
		}
	case 6: // bounded for loop
		idx := g.fresh("i")
		bound := 2 + g.r.Intn(5)
		fmt.Fprintf(&g.buf, "%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n",
			ind, idx, idx, bound, idx, idx)
		g.scope = append(g.scope, variable{idx, "int"})
		g.depth++
		g.block(level+1, g.cfg.MaxStmts/2+1)
		g.depth--
		g.scope = g.scope[:len(g.scope)-1]
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case 7: // if/else
		fmt.Fprintf(&g.buf, "%sif (%s) {\n", ind, g.boolExpr(3))
		g.depth++
		g.block(level+1, g.cfg.MaxStmts/2+1)
		fmt.Fprintf(&g.buf, "%s} else {\n", ind)
		g.block(level+1, g.cfg.MaxStmts/2+1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case 8: // array element store (in bounds by construction)
		arrs := g.arrayVars()
		if len(arrs) == 0 {
			fmt.Fprintf(&g.buf, "%sprint(%s);\n", ind, g.intExpr(3))
			return
		}
		a := arrs[g.r.Intn(len(arrs))]
		elem := strings.TrimSuffix(a.typ, "[]")
		fmt.Fprintf(&g.buf, "%s%s[%s] = new %s(%s);\n",
			ind, a.name, g.idxExpr(), elem, g.intExpr(3))
	case 9: // call a later method (acyclic), or print
		callee := g.callableMethod()
		if callee < 0 {
			fmt.Fprintf(&g.buf, "%sprint(%s);\n", ind, g.intExpr(4))
			return
		}
		recv := fmt.Sprintf("new %s(%s)", g.class(0), g.intExpr(2))
		if objs := g.varsOf(g.class(0)); len(objs) > 0 && g.r.Intn(2) == 0 {
			recv = objs[g.r.Intn(len(objs))].name
		}
		fmt.Fprintf(&g.buf, "%sG.acc = G.acc + Main.m%d(%s, %s);\n",
			ind, callee, g.intExpr(3), recv)
	}
}

// extraKind names a campaign statement shape (see the Config knobs).
type extraKind int

const (
	extraStridedInit extraKind = iota
	extraAllocReuse
	extraAliasing
	extraEscapeStore
	extraMutualCall
	extraDeepCall
)

// recursionHelpers emits the fixed-shape recursive helpers the
// MutualRecursion and DeepCalls knobs call into. They are emitted only
// when their knob is on, so the all-knobs-off random stream (and every
// historical seed's program) is untouched. Each helper's leaf effect on
// the passed object is drawn once per program: publish (compromises),
// ref-field write (dirty field), int-field write (int taint), or
// read-only (clean summary).
func (g *gen) recursionHelpers() {
	c0 := g.class(0)
	c1 := g.linkClassOf(c0)
	effect := func() string {
		switch g.r.Intn(4) {
		case 0:
			return "G.g0 = q; "
		case 1:
			return fmt.Sprintf("q.link = new %s(n); ", c1)
		case 2:
			return "q.a = q.a + n; "
		default:
			return ""
		}
	}
	if g.cfg.MutualRecursion {
		fmt.Fprintf(&g.buf, "    static int ra(int n, %s q) {\n", c0)
		fmt.Fprintf(&g.buf, "        if (n <= 0) return q.a;\n")
		fmt.Fprintf(&g.buf, "        return Main.rb(n - 1, q) + 1;\n")
		fmt.Fprintf(&g.buf, "    }\n")
		fmt.Fprintf(&g.buf, "    static int rb(int n, %s q) {\n", c0)
		fmt.Fprintf(&g.buf, "        %sif (n <= 0) return q.b;\n", effect())
		fmt.Fprintf(&g.buf, "        return Main.ra(n - 1, q);\n")
		fmt.Fprintf(&g.buf, "    }\n")
	}
	if g.cfg.DeepCalls {
		fmt.Fprintf(&g.buf, "    static int d0(%s q, int n) { return Main.d1(q, n + 1); }\n", c0)
		fmt.Fprintf(&g.buf, "    static int d1(%s q, int n) { return Main.d2(q, n * 2); }\n", c0)
		fmt.Fprintf(&g.buf, "    static int d2(%s q, int n) { %sreturn q.a + n; }\n", c0, effect())
	}
}

// extraStmt emits one campaign-idiom statement.
func (g *gen) extraStmt(kind extraKind, level int) {
	ind := g.indent(level)
	switch kind {
	case extraStridedInit:
		// A strided fill initializes only every s-th slot; nothing ever
		// loads array elements, so the nulls left behind are inert. The
		// i = i + s update is what drives merge_intvals to invent a
		// stride-s variable unknown for the loop index and the array's
		// uninitialized-range bound together.
		cls := g.anyClass()
		name := g.fresh("sa")
		idx := g.fresh("i")
		stride := 2 + g.r.Intn(2)
		length := arrayLen * stride
		fmt.Fprintf(&g.buf, "%s%s[] %s = new %s[%d];\n", ind, cls, name, cls, length)
		fmt.Fprintf(&g.buf, "%sfor (int %s = 0; %s < %d; %s = %s + %d) %s[%s] = new %s(%s);\n",
			ind, idx, idx, length, idx, idx, stride, name, idx, cls, idx)
		g.scope = append(g.scope, variable{name, cls + "[]"})
	case extraAllocReuse:
		// Loop-carried allocation-site reuse: prev holds the previous
		// iteration's object while the site re-executes, so the analysis
		// must demote R_site/A to the R_site/B summary before judging
		// prev.link — that store overwrites the non-null link set in
		// prev's own iteration and its barrier must be kept. The locals
		// deliberately stay out of scope: prev is null on the first
		// iteration and must only be dereferenced behind its guard.
		ci := g.r.Intn(g.cfg.Classes)
		cls, next := g.class(ci), g.class((ci+1)%g.cfg.Classes)
		prev, o, idx := g.fresh("prev"), g.fresh("o"), g.fresh("i")
		bound := 3 + g.r.Intn(3)
		fmt.Fprintf(&g.buf, "%s%s %s = null;\n", ind, cls, prev)
		fmt.Fprintf(&g.buf, "%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n",
			ind, idx, idx, bound, idx, idx)
		fmt.Fprintf(&g.buf, "%s    %s %s = new %s(%s);\n", ind, cls, o, cls, idx)
		fmt.Fprintf(&g.buf, "%s    %s.link = new %s(%s);\n", ind, o, next, idx)
		fmt.Fprintf(&g.buf, "%s    if (%s != null) { %s.link = new %s(7); }\n", ind, prev, prev, next)
		fmt.Fprintf(&g.buf, "%s    %s = %s;\n", ind, prev, o)
		fmt.Fprintf(&g.buf, "%s}\n", ind)
		if g.r.Intn(2) == 0 {
			// Sometimes publish the survivor (escape after the loop).
			fmt.Fprintf(&g.buf, "%sG.g%d = %s;\n", ind, ci, prev)
		} else {
			fmt.Fprintf(&g.buf, "%sif (%s != null) { G.acc = G.acc + %s.a; }\n", ind, prev, prev)
		}
	case extraAliasing:
		// Alias chain: a second name for an existing object, with a
		// store through the alias — the analysis must see both names hit
		// the same abstract reference.
		objs := g.refVars()
		if len(objs) == 0 {
			fmt.Fprintf(&g.buf, "%sG.acc = G.acc + 1;\n", ind)
			return
		}
		o := objs[g.r.Intn(len(objs))]
		al := g.fresh("al")
		fmt.Fprintf(&g.buf, "%s%s %s = %s;\n", ind, o.typ, al, o.name)
		fmt.Fprintf(&g.buf, "%s%s.link = new %s(%s);\n", ind, al, g.linkClassOf(o.typ), g.intExpr(3))
		fmt.Fprintf(&g.buf, "%sG.acc = G.acc + %s.b;\n", ind, al)
		g.scope = append(g.scope, variable{al, o.typ})
	case extraEscapeStore:
		// Store into an already-published object: the target is
		// non-thread-local at the store, so the barrier must be kept.
		ci := g.r.Intn(g.cfg.Classes)
		next := g.class((ci + 1) % g.cfg.Classes)
		fmt.Fprintf(&g.buf, "%sG.g%d = new %s(%s);\n", ind, ci, g.class(ci), g.intExpr(3))
		fmt.Fprintf(&g.buf, "%sG.g%d.link = new %s(%s);\n", ind, ci, next, g.intExpr(3))
	case extraMutualCall:
		// Call into the mutually recursive pair, then store into the
		// passed object: whether the store's elision survives is exactly
		// the cyclic-SCC summary verdict (the inliner never flattens
		// recursion, so inlining cannot rescue the fact).
		c0 := g.class(0)
		name := g.fresh("mr")
		fmt.Fprintf(&g.buf, "%s%s %s = new %s(%s);\n", ind, c0, name, c0, g.intExpr(2))
		fmt.Fprintf(&g.buf, "%sG.acc = G.acc + Main.ra(%d, %s);\n", ind, 2+g.r.Intn(3), name)
		fmt.Fprintf(&g.buf, "%s%s.link = new %s(%s);\n", ind, name, g.linkClassOf(c0), g.intExpr(2))
		g.scope = append(g.scope, variable{name, c0})
	case extraDeepCall:
		// Call through the three-deep helper chain, then store into the
		// passed object: the leaf effect must propagate up the summaries.
		c0 := g.class(0)
		name := g.fresh("dc")
		fmt.Fprintf(&g.buf, "%s%s %s = new %s(%s);\n", ind, c0, name, c0, g.intExpr(2))
		fmt.Fprintf(&g.buf, "%sG.acc = G.acc + Main.d0(%s, %s);\n", ind, name, g.intExpr(2))
		fmt.Fprintf(&g.buf, "%s%s.link = new %s(%s);\n", ind, name, g.linkClassOf(c0), g.intExpr(2))
		g.scope = append(g.scope, variable{name, c0})
	}
}

// callableMethod picks a method index the current method may call.
func (g *gen) callableMethod() int {
	lo := g.methodIdx + 1
	if g.methodIdx < 0 {
		lo = 0
	}
	if lo >= g.cfg.Methods {
		return -1
	}
	return lo + g.r.Intn(g.cfg.Methods-lo)
}

// refVars returns visible locals of any class type.
func (g *gen) refVars() []variable {
	var out []variable
	for _, v := range g.scope {
		if strings.HasPrefix(v.typ, "C") && !strings.HasSuffix(v.typ, "[]") {
			out = append(out, v)
		}
	}
	return out
}

// arrayVars returns visible ref-array locals.
func (g *gen) arrayVars() []variable {
	var out []variable
	for _, v := range g.scope {
		if strings.HasSuffix(v.typ, "[]") {
			out = append(out, v)
		}
	}
	return out
}

// linkClassOf returns the class of C<i>.link (the next class cyclically).
func (g *gen) linkClassOf(cls string) string {
	var i int
	fmt.Sscanf(cls, "C%d", &i)
	return g.class((i + 1) % g.cfg.Classes)
}

// idxExpr yields an always-in-bounds index expression.
func (g *gen) idxExpr() string {
	if ints := g.varsOf("int"); len(ints) > 0 && g.r.Intn(2) == 0 {
		v := ints[g.r.Intn(len(ints))]
		// ((v % L) + L) % L is non-negative for any v.
		return fmt.Sprintf("((%s %% %d) + %d) %% %d", v.name, arrayLen, arrayLen, arrayLen)
	}
	return fmt.Sprintf("%d", g.r.Intn(arrayLen))
}

// intExpr yields an int expression within the size budget.
func (g *gen) intExpr(budget int) string {
	if budget <= 1 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(20)-5)
		case 1:
			if ints := g.varsOf("int"); len(ints) > 0 {
				return ints[g.r.Intn(len(ints))].name
			}
			return fmt.Sprintf("%d", g.r.Intn(9))
		default:
			if objs := g.refVars(); len(objs) > 0 {
				o := objs[g.r.Intn(len(objs))]
				f := "a"
				if g.r.Intn(2) == 0 {
					f = "b"
				}
				return fmt.Sprintf("%s.%s", o.name, f)
			}
			return fmt.Sprintf("%d", g.r.Intn(9))
		}
	}
	l := g.intExpr(budget / 2)
	r := g.intExpr(budget / 2)
	switch g.r.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r)
	case 3:
		// Division by a non-zero constant keeps the program total.
		return fmt.Sprintf("(%s / %d)", l, 1+g.r.Intn(6))
	default:
		return fmt.Sprintf("(%s %% %d)", l, 1+g.r.Intn(6))
	}
}

// boolExpr yields a boolean expression.
func (g *gen) boolExpr(budget int) string {
	if budget <= 1 || g.r.Intn(3) == 0 {
		ops := []string{"<", "<=", ">", ">=", "==", "!="}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(2), ops[g.r.Intn(len(ops))], g.intExpr(2))
	}
	l := g.boolExpr(budget / 2)
	r := g.boolExpr(budget / 2)
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("(%s && %s)", l, r)
	}
	return fmt.Sprintf("(%s || %s)", l, r)
}

// Corpus returns n generated programs for consecutive seeds starting at
// base — the shared seed set for differential and oracle test sweeps.
func Corpus(base int64, n int, cfg Config) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = Generate(base+int64(i), cfg)
	}
	return out
}
