package progen

import (
	"reflect"
	"strings"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const seeds = 60

// TestGeneratedProgramsCompileVerifyAndRun is the front-to-back smoke
// property: every generated program parses, checks, verifies, and runs to
// completion with bounded work.
func TestGeneratedProgramsCompileVerifyAndRun(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: 100})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		res, err := b.Run(vm.Config{MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if len(res.Output) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
	}
}

// TestGeneratedProgramsInlineInvariance: inlining must never change
// program semantics.
func TestGeneratedProgramsInlineInvariance(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		var base []int64
		for _, limit := range []int{0, 50, 200} {
			b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: limit})
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			res, err := b.Run(vm.Config{MaxSteps: 20_000_000})
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			if base == nil {
				base = res.Output
			} else if !reflect.DeepEqual(base, res.Output) {
				t.Fatalf("seed %d: limit %d changed output %v -> %v\n%s",
					seed, limit, base, res.Output, src)
			}
		}
	}
}

// TestGeneratedProgramsElisionSoundness: the analysis may never elide a
// barrier that dynamically observes a non-null pre-value (or, for
// null-or-same sites, a different value), on any generated program.
func TestGeneratedProgramsElisionSoundness(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := b.Run(vm.Config{Barrier: satb.ModeConditional, MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
			t.Fatalf("seed %d: unsound elisions %v\n%s", seed, s.UnsoundSites, src)
		}
	}
}

// TestGeneratedProgramsSATBInvariant runs a sample of generated programs
// under concurrent SATB marking with elided barriers and verifies the
// snapshot invariant every cycle.
func TestGeneratedProgramsSATBInvariant(t *testing.T) {
	for seed := int64(0); seed < seeds/2; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: SATB invariant violated: %v\n%s", seed, r, src)
				}
			}()
			if _, err := b.Run(vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 20,
				MarkStepBudget:     3,
				CheckInvariant:     true,
				MaxSteps:           20_000_000,
			}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}()
	}
}

// TestGeneratedProgramsBarrierModeInvariance: barrier mode and collector
// choice never change results.
func TestGeneratedProgramsBarrierModeInvariance(t *testing.T) {
	for seed := int64(0); seed < seeds/2; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: 100})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var base []int64
		for _, cfg := range []vm.Config{
			{Barrier: satb.ModeNoBarrier},
			{Barrier: satb.ModeConditional},
			{Barrier: satb.ModeAlwaysLog},
			{Barrier: satb.ModeCardMarking, GC: vm.GCIncremental, TriggerEveryAllocs: 30},
			{Barrier: satb.ModeConditional, GC: vm.GCSATB, TriggerEveryAllocs: 30},
		} {
			cfg.MaxSteps = 20_000_000
			res, err := b.Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if base == nil {
				base = res.Output
			} else if !reflect.DeepEqual(base, res.Output) {
				t.Fatalf("seed %d: output changed under %+v: %v vs %v", seed, cfg, base, res.Output)
			}
		}
	}
}

// TestCampaignConfigIdiomsAppearAndRunSound checks that the campaign
// knobs actually emit their idioms across a seed range and that every
// campaign-config program still compiles, runs, and survives the runtime
// elision oracle under concurrent marking.
func TestCampaignConfigIdiomsAppearAndRunSound(t *testing.T) {
	idioms := map[string]int{"prev": 0, "sa": 0, "al": 0, ".link = new": 0, "mr": 0, "dc": 0}
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, CampaignConfig())
		for marker := range idioms {
			if containsIdent(src, marker) {
				idioms[marker]++
			}
		}
		b, err := pipeline.Compile("gen", src, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		res, err := b.Run(vm.Config{
			Barrier:            satb.ModeConditional,
			GC:                 vm.GCSATB,
			TriggerEveryAllocs: 64,
			CheckInvariant:     true,
			CheckElisions:      true,
			MaxSteps:           20_000_000,
		})
		if err != nil {
			t.Fatalf("seed %d: oracle run: %v\n%s", seed, err, src)
		}
		if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
			t.Fatalf("seed %d: unsound elisions %v\n%s", seed, s.UnsoundSites, src)
		}
	}
	for marker, n := range idioms {
		if n == 0 {
			t.Errorf("idiom %q never appeared in %d campaign seeds", marker, seeds)
		}
	}
}

// containsIdent reports whether src mentions an identifier with the given
// prefix followed by a digit (progen's fresh-name shape), or the literal
// marker when it is not an identifier prefix.
func containsIdent(src, marker string) bool {
	if marker == ".link = new" {
		return strings.Contains(src, marker)
	}
	for d := '1'; d <= '9'; d++ {
		if strings.Contains(src, " "+marker+string(d)) {
			return true
		}
	}
	return false
}

// TestKnobsOffMatchesHistoricalStream: with every campaign knob false the
// generator must consume the random stream exactly as it always has, so
// historical seeds reproduce. CampaignConfig programs must differ (the
// knobs really change the draw space).
func TestKnobsOffMatchesHistoricalStream(t *testing.T) {
	plain := Config{Classes: 3, Methods: 4, MaxStmts: 6, MaxDepth: 3, MaxExprSize: 6}
	for seed := int64(100); seed < 110; seed++ {
		if Generate(seed, plain) != Generate(seed, DefaultConfig()) {
			t.Fatalf("seed %d: zero-knob Config differs from DefaultConfig", seed)
		}
	}
	same := 0
	for seed := int64(100); seed < 110; seed++ {
		if Generate(seed, DefaultConfig()) == Generate(seed, CampaignConfig()) {
			same++
		}
	}
	if same == 10 {
		t.Error("campaign knobs never changed any generated program")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a != b {
		t.Error("generation must be deterministic per seed")
	}
	c := Generate(43, DefaultConfig())
	if a == c {
		t.Error("different seeds should differ")
	}
}

// TestGeneratedProgramsInterproceduralSoundness: summaries must never
// produce an elision that a dynamic run refutes, at any inline level.
func TestGeneratedProgramsInterproceduralSoundness(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		for _, limit := range []int{0, 100} {
			b, err := pipeline.Compile("gen", src, pipeline.Options{
				InlineLimit: limit,
				Analysis:    core.Options{Mode: core.ModeFieldArray, Interprocedural: true},
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := b.Run(vm.Config{Barrier: satb.ModeConditional, MaxSteps: 20_000_000})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
				t.Fatalf("seed %d limit %d: unsound %v\n%s", seed, limit, s.UnsoundSites, src)
			}
		}
	}
}
