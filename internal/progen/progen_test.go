package progen

import (
	"reflect"
	"testing"

	"satbelim/internal/core"
	"satbelim/internal/pipeline"
	"satbelim/internal/satb"
	"satbelim/internal/vm"
)

const seeds = 60

// TestGeneratedProgramsCompileVerifyAndRun is the front-to-back smoke
// property: every generated program parses, checks, verifies, and runs to
// completion with bounded work.
func TestGeneratedProgramsCompileVerifyAndRun(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: 100})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		res, err := b.Run(vm.Config{MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		if len(res.Output) == 0 {
			t.Fatalf("seed %d: no output", seed)
		}
	}
}

// TestGeneratedProgramsInlineInvariance: inlining must never change
// program semantics.
func TestGeneratedProgramsInlineInvariance(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		var base []int64
		for _, limit := range []int{0, 50, 200} {
			b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: limit})
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			res, err := b.Run(vm.Config{MaxSteps: 20_000_000})
			if err != nil {
				t.Fatalf("seed %d limit %d: %v", seed, limit, err)
			}
			if base == nil {
				base = res.Output
			} else if !reflect.DeepEqual(base, res.Output) {
				t.Fatalf("seed %d: limit %d changed output %v -> %v\n%s",
					seed, limit, base, res.Output, src)
			}
		}
	}
}

// TestGeneratedProgramsElisionSoundness: the analysis may never elide a
// barrier that dynamically observes a non-null pre-value (or, for
// null-or-same sites, a different value), on any generated program.
func TestGeneratedProgramsElisionSoundness(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray, NullOrSame: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := b.Run(vm.Config{Barrier: satb.ModeConditional, MaxSteps: 20_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
			t.Fatalf("seed %d: unsound elisions %v\n%s", seed, s.UnsoundSites, src)
		}
	}
}

// TestGeneratedProgramsSATBInvariant runs a sample of generated programs
// under concurrent SATB marking with elided barriers and verifies the
// snapshot invariant every cycle.
func TestGeneratedProgramsSATBInvariant(t *testing.T) {
	for seed := int64(0); seed < seeds/2; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{
			InlineLimit: 100,
			Analysis:    core.Options{Mode: core.ModeFieldArray},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: SATB invariant violated: %v\n%s", seed, r, src)
				}
			}()
			if _, err := b.Run(vm.Config{
				Barrier:            satb.ModeConditional,
				GC:                 vm.GCSATB,
				TriggerEveryAllocs: 20,
				MarkStepBudget:     3,
				CheckInvariant:     true,
				MaxSteps:           20_000_000,
			}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}()
	}
}

// TestGeneratedProgramsBarrierModeInvariance: barrier mode and collector
// choice never change results.
func TestGeneratedProgramsBarrierModeInvariance(t *testing.T) {
	for seed := int64(0); seed < seeds/2; seed++ {
		src := Generate(seed, DefaultConfig())
		b, err := pipeline.Compile("gen", src, pipeline.Options{InlineLimit: 100})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var base []int64
		for _, cfg := range []vm.Config{
			{Barrier: satb.ModeNoBarrier},
			{Barrier: satb.ModeConditional},
			{Barrier: satb.ModeAlwaysLog},
			{Barrier: satb.ModeCardMarking, GC: vm.GCIncremental, TriggerEveryAllocs: 30},
			{Barrier: satb.ModeConditional, GC: vm.GCSATB, TriggerEveryAllocs: 30},
		} {
			cfg.MaxSteps = 20_000_000
			res, err := b.Run(cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if base == nil {
				base = res.Output
			} else if !reflect.DeepEqual(base, res.Output) {
				t.Fatalf("seed %d: output changed under %+v: %v vs %v", seed, cfg, base, res.Output)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, DefaultConfig())
	b := Generate(42, DefaultConfig())
	if a != b {
		t.Error("generation must be deterministic per seed")
	}
	c := Generate(43, DefaultConfig())
	if a == c {
		t.Error("different seeds should differ")
	}
}

// TestGeneratedProgramsInterproceduralSoundness: summaries must never
// produce an elision that a dynamic run refutes, at any inline level.
func TestGeneratedProgramsInterproceduralSoundness(t *testing.T) {
	for seed := int64(0); seed < seeds; seed++ {
		src := Generate(seed, DefaultConfig())
		for _, limit := range []int{0, 100} {
			b, err := pipeline.Compile("gen", src, pipeline.Options{
				InlineLimit: limit,
				Analysis:    core.Options{Mode: core.ModeFieldArray, Interprocedural: true},
			})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := b.Run(vm.Config{Barrier: satb.ModeConditional, MaxSteps: 20_000_000})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if s := res.Counters.Summarize(); len(s.UnsoundSites) != 0 {
				t.Fatalf("seed %d limit %d: unsound %v\n%s", seed, limit, s.UnsoundSites, src)
			}
		}
	}
}
