// Package inline implements call-site inlining over bytecode with the
// "inline limit" knob from the paper (§4.4): a callee is expanded at its
// call sites only when its bytecode size does not exceed the limit.
//
// The barrier-elision analyses are intra-procedural and run after inlining
// (paper §2.4): without inlining, every allocation's constructor call
// makes the fresh object escape immediately, so inlining constructors is
// what exposes pre-null initializing stores to the field analysis.
//
// Inlining proceeds bottom-up over the call graph's strongly connected
// components, so a callee's body is fully expanded before its callers
// consider it, and no member of a cycle is ever inlined into another
// (which would not terminate).
package inline

import (
	"sort"

	"satbelim/internal/bytecode"
	"satbelim/internal/obs"
)

// Options configure inlining.
type Options struct {
	// Limit is the maximum bytecode size (in bytes) of a method that may
	// be inlined. Zero disables inlining entirely.
	Limit int
	// CallerCap bounds the size a caller may grow to; call sites whose
	// expansion would exceed it are left as calls. Zero means the
	// default (DefaultCallerCap).
	CallerCap int
}

// DefaultCallerCap bounds caller growth, mirroring the compiled-method
// size caps real JITs apply on top of the per-callee limit.
const DefaultCallerCap = 8000

// Result reports what inlining did, for the compile-time experiments.
type Result struct {
	Program *bytecode.Program
	// Expanded counts inlined call sites.
	Expanded int
	// Remaining counts invoke sites left in the output program (too big,
	// recursive, or caller at cap — plus every site when Limit is 0).
	Remaining int
}

// Apply returns a new program with eligible call sites expanded. The input
// program is not modified.
func Apply(p *bytecode.Program, opts Options) *Result {
	out := p.Clone()
	res := &Result{Program: out}
	if opts.Limit > 0 {
		callerCap := opts.CallerCap
		if callerCap <= 0 {
			callerCap = DefaultCallerCap
		}
		methods := out.Methods()
		index := map[bytecode.MethodRef]int{}
		for i, m := range methods {
			index[m.Ref()] = i
		}
		order := processingOrder(methods, index)
		inl := &inliner{prog: out, limit: opts.Limit, callerCap: callerCap, res: res}
		for _, mi := range order {
			inl.inlineInto(methods[mi])
		}
	}
	for _, m := range out.Methods() {
		for pc := range m.Code {
			if m.Code[pc].Op == bytecode.OpInvoke {
				res.Remaining++
			}
		}
	}
	obs.Count("inline.expanded", int64(res.Expanded))
	obs.Count("inline.remaining", int64(res.Remaining))
	return res
}

// processingOrder returns method indices in bottom-up call-graph order
// (callees before callers), using Tarjan's SCC algorithm. Members of the
// same SCC keep index order; inlineInto itself refuses same-SCC targets via
// the recursion check below (a callee inside a cycle keeps growing only if
// we allowed it — we re-check sizes at expansion time, and a method never
// inlines itself, so cycles are handled by the SCC condensation order plus
// the direct-recursion guard).
func processingOrder(methods []*bytecode.Method, index map[bytecode.MethodRef]int) []int {
	n := len(methods)
	adj := make([][]int, n)
	for i, m := range methods {
		seen := map[int]bool{}
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != bytecode.OpInvoke {
				continue
			}
			if j, ok := index[in.Method]; ok && !seen[j] {
				seen[j] = true
				adj[i] = append(adj[i], j)
			}
		}
		sort.Ints(adj[i])
	}

	// Tarjan's algorithm, iterative state kept in slices.
	const unvisited = -1
	indexNum := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range indexNum {
		indexNum[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	counter := 0
	ncomp := 0
	var order []int // methods appended as their SCC completes = bottom-up

	var strongconnect func(v int)
	strongconnect = func(v int) {
		indexNum[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if indexNum[w] == unvisited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexNum[w] < low[v] {
				low[v] = indexNum[w]
			}
		}
		if low[v] == indexNum[v] {
			var members []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Ints(members)
			order = append(order, members...)
			ncomp++
		}
	}
	for v := 0; v < n; v++ {
		if indexNum[v] == unvisited {
			strongconnect(v)
		}
	}
	return order
}

type inliner struct {
	prog      *bytecode.Program
	limit     int
	callerCap int
	res       *Result
	recursive map[bytecode.MethodRef]bool
}

// inlineInto expands eligible call sites within m, in place.
func (ix *inliner) inlineInto(m *bytecode.Method) {
	for {
		site := ix.findSite(m)
		if site < 0 {
			return
		}
		ix.expand(m, site)
		ix.res.Expanded++
	}
}

// findSite returns the pc of the next expandable call site, or -1. Sites
// rejected once stay rejected (they are counted in Skipped and marked via
// a side table keyed by identity — since expansion rebuilds the code
// slice, we simply re-scan and re-apply the same deterministic checks; a
// site rejected for size reasons can never become eligible because callee
// bodies are final by the bottom-up order).
func (ix *inliner) findSite(m *bytecode.Method) int {
	for pc := range m.Code {
		in := &m.Code[pc]
		if in.Op != bytecode.OpInvoke {
			continue
		}
		callee := ix.prog.Method(in.Method)
		if callee == nil {
			continue
		}
		if callee.QualifiedName() == m.QualifiedName() {
			continue // direct recursion
		}
		if callee.Size() > ix.limit {
			continue
		}
		if m.Size()+callee.Size() > ix.callerCap {
			continue
		}
		if ix.isRecursive(callee) {
			// A (self-)recursive callee would splice fresh call sites
			// to itself at every expansion round; leave it out-of-line.
			continue
		}
		if ix.callsBackInto(callee, m) {
			continue // same-SCC cycle
		}
		return pc
	}
	return -1
}

// isRecursive reports (with memoization) whether m can transitively
// invoke itself.
func (ix *inliner) isRecursive(m *bytecode.Method) bool {
	if ix.recursive == nil {
		ix.recursive = map[bytecode.MethodRef]bool{}
	}
	if r, ok := ix.recursive[m.Ref()]; ok {
		return r
	}
	r := ix.callsBackInto(m, m)
	ix.recursive[m.Ref()] = r
	return r
}

// callsBackInto reports whether callee (transitively) invokes target,
// which would make inlining it into target non-terminating. Bottom-up SCC
// order makes this rare; the check makes it impossible.
func (ix *inliner) callsBackInto(callee, target *bytecode.Method) bool {
	seen := map[bytecode.MethodRef]bool{}
	var walk func(m *bytecode.Method) bool
	walk = func(m *bytecode.Method) bool {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != bytecode.OpInvoke {
				continue
			}
			if in.Method == target.Ref() {
				return true
			}
			if seen[in.Method] {
				continue
			}
			seen[in.Method] = true
			if next := ix.prog.Method(in.Method); next != nil && walk(next) {
				return true
			}
		}
		return false
	}
	return walk(callee)
}

// expand splices the callee's body in place of the invoke at site.
func (ix *inliner) expand(m *bytecode.Method, site int) {
	callee := ix.prog.Method(m.Code[site].Method)

	// Allocate caller slots for every callee slot.
	base := len(m.SlotTypes)
	m.SlotTypes = append(m.SlotTypes, callee.SlotTypes...)
	m.NumSlots = len(m.SlotTypes)

	// The spliced sequence: stores of the stacked arguments into the
	// callee's parameter slots (top of stack is the last argument), then
	// the remapped body.
	var splice []bytecode.Instr
	nargs := callee.NumArgs()
	for i := nargs - 1; i >= 0; i-- {
		splice = append(splice, bytecode.Instr{Op: bytecode.OpStore, A: int64(base + i), Line: m.Code[site].Line})
	}
	bodyStart := len(splice)
	for pc := range callee.Code {
		in := callee.Code[pc] // copy
		switch {
		case in.Op == bytecode.OpLoad || in.Op == bytecode.OpStore:
			in.A += int64(base)
		case in.IsBranch():
			in.A += int64(bodyStart) // patched again below with the splice offset
		case in.Op == bytecode.OpReturn || in.Op == bytecode.OpReturnValue:
			// Jump past the body; any return value stays on the stack.
			in = bytecode.Instr{Op: bytecode.OpGoto, A: int64(len(callee.Code) + bodyStart), Line: in.Line}
		}
		splice = append(splice, in)
	}

	// Rebuild the caller's code with the splice in place of the invoke,
	// remapping caller branch targets across the insertion.
	newCode := make([]bytecode.Instr, 0, len(m.Code)+len(splice)-1)
	newCode = append(newCode, m.Code[:site]...)
	spliceAt := len(newCode)
	for _, in := range splice {
		if in.IsBranch() {
			in.A += int64(spliceAt)
		}
		newCode = append(newCode, in)
	}
	newCode = append(newCode, m.Code[site+1:]...)

	delta := int64(len(splice) - 1)
	mapPC := func(old int64) int64 {
		if old > int64(site) {
			return old + delta
		}
		return old
	}
	for pc := range newCode {
		if pc >= spliceAt && pc < spliceAt+len(splice) {
			continue // callee-internal branches already absolute
		}
		if newCode[pc].IsBranch() {
			newCode[pc].A = mapPC(newCode[pc].A)
		}
	}
	m.Code = newCode
}
