package inline

import (
	"testing"

	"satbelim/internal/bytecode"
	"satbelim/internal/codegen"
	"satbelim/internal/minijava"
	"satbelim/internal/verifier"
)

func compileSrc(t *testing.T, src string) *bytecode.Program {
	t.Helper()
	ast, err := minijava.Parse("t.mj", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ch, err := minijava.Check("t.mj", ast)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	p, err := codegen.Compile(ch)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func countOp(m *bytecode.Method, op bytecode.Op) int {
	n := 0
	for pc := range m.Code {
		if m.Code[pc].Op == op {
			n++
		}
	}
	return n
}

const ctorSrc = `
class P { int x; P(int x0) { x = x0; } int get() { return x; } }
class T { static void main() { P p = new P(3); print(p.get()); } }
`

func TestInlineZeroLimitIsIdentityShape(t *testing.T) {
	p := compileSrc(t, ctorSrc)
	res := Apply(p, Options{Limit: 0})
	if res.Expanded != 0 {
		t.Errorf("Expanded = %d, want 0", res.Expanded)
	}
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if countOp(m, bytecode.OpInvoke) != 2 {
		t.Errorf("invokes = %d, want 2", countOp(m, bytecode.OpInvoke))
	}
	if res.Remaining != 2 {
		t.Errorf("Remaining = %d, want 2", res.Remaining)
	}
}

func TestInlineDoesNotMutateInput(t *testing.T) {
	p := compileSrc(t, ctorSrc)
	before := p.Method(bytecode.MethodRef{Class: "T", Name: "main"}).Size()
	Apply(p, Options{Limit: 100})
	after := p.Method(bytecode.MethodRef{Class: "T", Name: "main"}).Size()
	if before != after {
		t.Errorf("input program mutated: size %d -> %d", before, after)
	}
}

func TestInlineCtorAndGetter(t *testing.T) {
	p := compileSrc(t, ctorSrc)
	res := Apply(p, Options{Limit: 100})
	if res.Expanded != 2 {
		t.Errorf("Expanded = %d, want 2", res.Expanded)
	}
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if got := countOp(m, bytecode.OpInvoke); got != 0 {
		t.Errorf("invokes after inlining = %d, want 0:\n%s", got, bytecode.Disassemble(m))
	}
	// The inlined body must still be verifiable and valid.
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Constructor's putfield must now appear inside main.
	if countOp(m, bytecode.OpPutField) != 1 {
		t.Errorf("putfield not inlined into main:\n%s", bytecode.Disassemble(m))
	}
}

func TestInlineRespectsLimit(t *testing.T) {
	// get is tiny; a method with a long body stays out at small limits.
	src := `
class P {
    int x;
    int get() { return x; }
    int big(int a) {
        int s = 0;
        s = s + a * 3; s = s + a * 5; s = s + a * 7; s = s + a * 11;
        s = s + a * 13; s = s + a * 17; s = s + a * 19; s = s + a * 23;
        return s;
    }
}
class T { static void main() { P p = new P(); print(p.get() + p.big(2)); } }
`
	p := compileSrc(t, src)
	big := p.Method(bytecode.MethodRef{Class: "P", Name: "big"})
	small := p.Method(bytecode.MethodRef{Class: "P", Name: "get"})
	limit := small.Size() + 1
	if big.Size() <= limit {
		t.Fatalf("test premise broken: big=%d small=%d", big.Size(), small.Size())
	}
	res := Apply(p, Options{Limit: limit})
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if got := countOp(m, bytecode.OpInvoke); got != 1 {
		t.Errorf("invokes = %d, want 1 (big only):\n%s", got, bytecode.Disassemble(m))
	}
	for pc := range m.Code {
		if m.Code[pc].Op == bytecode.OpInvoke && m.Code[pc].Method.Name != "big" {
			t.Errorf("wrong call left behind: %s", m.Code[pc].Method)
		}
	}
}

func TestInlineTransitiveChain(t *testing.T) {
	src := `
class C {
    static int a() { return b() + 1; }
    static int b() { return c() + 1; }
    static int c() { return 40; }
}
class T { static void main() { print(C.a()); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 200})
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if got := countOp(m, bytecode.OpInvoke); got != 0 {
		t.Errorf("chain not fully inlined, %d invokes left:\n%s", got, bytecode.Disassemble(m))
	}
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInlineDirectRecursionNotExpanded(t *testing.T) {
	src := `
class C { static int fact(int n) { if (n <= 1) return 1; return n * C.fact(n - 1); } }
class T { static void main() { print(C.fact(5)); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 1000})
	fact := res.Program.Method(bytecode.MethodRef{Class: "C", Name: "fact"})
	if got := countOp(fact, bytecode.OpInvoke); got != 1 {
		t.Errorf("fact should keep its recursive call, invokes = %d", got)
	}
	// main may inline fact's body once; the recursive call inside stays.
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInlineMutualRecursionTerminates(t *testing.T) {
	src := `
class C {
    static int even(int n) { if (n == 0) return 1; return C.odd(n - 1); }
    static int odd(int n) { if (n == 0) return 0; return C.even(n - 1); }
}
class T { static void main() { print(C.even(10)); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 1000})
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Neither even nor odd may have absorbed the other into a cycle:
	// each keeps at least one invoke.
	even := res.Program.Method(bytecode.MethodRef{Class: "C", Name: "even"})
	odd := res.Program.Method(bytecode.MethodRef{Class: "C", Name: "odd"})
	if countOp(even, bytecode.OpInvoke) == 0 && countOp(odd, bytecode.OpInvoke) == 0 {
		t.Error("mutual recursion cannot be fully inlined away")
	}
}

func TestInlineBranchTargetsRemapped(t *testing.T) {
	src := `
class C { static int abs(int x) { if (x < 0) return -x; return x; } }
class T {
    static void main() {
        int i = 0;
        while (i < 3) {
            print(C.abs(i - 1));
            i = i + 1;
        }
    }
}
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 100})
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if countOp(m, bytecode.OpInvoke) != 0 {
		t.Errorf("abs not inlined:\n%s", bytecode.Disassemble(m))
	}
}

func TestInlineCallerCap(t *testing.T) {
	src := `
class C { static int f() { return 1; } }
class T { static void main() { print(C.f() + C.f() + C.f()); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 100, CallerCap: p.Method(bytecode.MethodRef{Class: "T", Name: "main"}).Size() + 3})
	// Cap allows at most one expansion (f is ~4 bytes); at least one call
	// must remain.
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if countOp(m, bytecode.OpInvoke) == 0 {
		t.Error("caller cap should have stopped full expansion")
	}
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestInlineSlotRemapPreservesSemantics(t *testing.T) {
	// Callee uses several locals; ensure remapped slots don't collide
	// with caller slots (verified stack discipline plus valid slots).
	src := `
class C {
    static int mix(int a, int b) {
        int t1 = a * 2;
        int t2 = b * 3;
        int t3 = t1 + t2;
        return t3;
    }
}
class T { static void main() { int x = 5; int y = 7; print(C.mix(x, y)); print(x + y); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 100})
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if countOp(m, bytecode.OpInvoke) != 0 {
		t.Fatalf("mix not inlined:\n%s", bytecode.Disassemble(m))
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.NumSlots < 7 {
		t.Errorf("expected extra slots for callee locals, NumSlots = %d", m.NumSlots)
	}
}

func TestInlineMultipleReturnPaths(t *testing.T) {
	src := `
class C { static int sign(int x) { if (x < 0) return -1; if (x > 0) return 1; return 0; } }
class T { static void main() { print(C.sign(-5) + C.sign(5) + C.sign(0)); } }
`
	p := compileSrc(t, src)
	res := Apply(p, Options{Limit: 100})
	if err := verifier.VerifyProgram(res.Program); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	m := res.Program.Method(bytecode.MethodRef{Class: "T", Name: "main"})
	if countOp(m, bytecode.OpInvoke) != 0 {
		t.Errorf("sign not inlined at all 3 sites")
	}
}

func TestProcessingOrderBottomUp(t *testing.T) {
	src := `
class C {
    static int leaf() { return 1; }
    static int mid() { return C.leaf() + 1; }
    static int top() { return C.mid() + 1; }
}
class T { static void main() { print(C.top()); } }
`
	p := compileSrc(t, src)
	methods := p.Methods()
	index := map[bytecode.MethodRef]int{}
	for i, m := range methods {
		index[m.Ref()] = i
	}
	order := processingOrder(methods, index)
	pos := map[string]int{}
	for i, mi := range order {
		pos[methods[mi].QualifiedName()] = i
	}
	if !(pos["C.leaf"] < pos["C.mid"] && pos["C.mid"] < pos["C.top"] && pos["C.top"] < pos["T.main"]) {
		t.Errorf("order not bottom-up: %v", pos)
	}
	if len(order) != len(methods) {
		t.Errorf("order misses methods: %d vs %d", len(order), len(methods))
	}
}
